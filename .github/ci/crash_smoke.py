#!/usr/bin/env python3
"""CI crash-recovery smoke for `mimdmap_cli serve --journal` (ISSUE 10).

Starts a journaled daemon on a Unix socket, submits a mixed workload of
fast and deliberately slow jobs, waits for every accepted frame, then
SIGKILLs the daemon mid-flight. A restart on the same journal directory
must replay the unfinished jobs through the normal scheduler: the smoke
polls op=stats until journal-pending and outstanding both reach zero,
asserts at least one job was replayed and that every accepted job got
exactly one terminal frame, then drains. The daemon's own exit status
enforces accepted == terminal_frames a second time.

Usage: crash_smoke.py <path-to-mimdmap_cli> [socket] [journal-dir]
"""

import os
import signal
import socket
import subprocess
import sys
import time

CLI = sys.argv[1]
SOCK = sys.argv[2] if len(sys.argv) > 2 else "/tmp/mimdmap-crash.sock"
JDIR = sys.argv[3] if len(sys.argv) > 3 else "/tmp/mimdmap-crash-wal"


def start_daemon():
    return subprocess.Popen(
        [CLI, "serve", "--socket", SOCK, "--journal", JDIR,
         "--journal-fsync", "always", "--cache-bytes", "1048576", "--quiet"]
    )


def connect(timeout=60.0):
    deadline = time.time() + timeout
    while True:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            s.connect(SOCK)
            return s
        except OSError:
            s.close()
            if time.time() > deadline:
                raise SystemExit(f"crash smoke: daemon never bound {SOCK}")
            time.sleep(0.05)


def frames(sock_file):
    for line in sock_file:
        line = line.strip()
        if line:
            yield dict(kv.split("=", 1) for kv in line.split(" "))


if os.path.exists(SOCK):
    os.unlink(SOCK)

# Phase 1: journaled daemon, mixed workload, kill -9 mid-flight. The slow
# jobs carry a deadline so a sanitizer-slowed replay still terminates.
daemon = start_daemon()
sock = connect()
reader = sock.makefile("r")
fast = "gen=diamond gen-a=4 gen-b=4 spec=mesh-2x2 trials=200"
slow = ("gen=layered gen-a=400 gen-b=10 gen-seed=1 spec=hypercube-3 "
        "trials=50000 deadline-ms=60000")
jobs = [f"id=fast-{i} {fast} seed={i + 1}" for i in range(4)]
jobs += [f"id=slow-{i} {slow} seed={i + 1}" for i in range(4)]
sock.sendall("".join(j + "\n" for j in jobs).encode())
accepted = 0
for frame in frames(reader):
    event = frame.get("event")
    if event == "accepted":
        accepted += 1
        if accepted == len(jobs):
            break
    elif event in ("overloaded", "error"):
        raise SystemExit(f"crash smoke: unexpected frame during submit: {frame}")
print(f"phase 1: {accepted} jobs accepted and journaled, SIGKILL mid-flight")
daemon.send_signal(signal.SIGKILL)
daemon.wait()
sock.close()

# Phase 2: restart on the same journal; recovery replays the unfinished
# tail. Poll op=stats until the backlog settles.
daemon = start_daemon()
sock = connect()
reader = sock.makefile("r")
deadline = time.time() + 240
stats = {}
while True:
    sock.sendall(b"op=stats\n")
    stats = next(f for f in frames(reader) if f.get("event") == "stats")
    if stats.get("journal-pending") == "0" and stats.get("outstanding") == "0":
        break
    if time.time() > deadline:
        raise SystemExit(f"crash smoke: recovery never settled: {stats}")
    time.sleep(0.5)

replayed = int(stats.get("replayed", "0"))
assert replayed >= 1, f"crash smoke: nothing was replayed after kill -9: {stats}"
assert int(stats.get("journal-recovered", "0")) >= 1, stats
assert stats["accepted"] == stats["results"], (
    f"crash smoke: accepted != terminal frames after recovery: {stats}")
print(f"phase 2: recovery settled, replayed={replayed} "
      f"accepted={stats['accepted']} results={stats['results']} "
      f"cached-results={stats.get('cached-results', '0')}")

# Drain shuts the daemon down; its exit code re-asserts the invariant.
sock.sendall(b"op=drain\n")
for frame in frames(reader):
    if frame.get("event") == "bye":
        break
sock.close()
code = daemon.wait(timeout=120)
assert code == 0, f"crash smoke: restarted daemon exited {code}"
print("crash-recovery smoke OK")
