// Mapping a stencil (wavefront) computation onto a 2-D processor mesh.
//
// A rows x cols diamond DAG — cell (i,j) feeds (i+1,j) and (i,j+1) — is the
// dependence structure of wavefront kernels (triangular solves, dynamic
// programming, Gauss-Seidel sweeps). Blocks of the iteration space become
// clusters; this example maps them onto a mesh whose shape matches and
// compares the paper's mapper against random placement, also showing the
// serialized-processor evaluation extension.
//
// Usage: stencil_mesh [grid] [mesh_rows] [mesh_cols] [seed]
//        defaults:     8      2           3           1
#include <cstdio>
#include <cstdlib>

#include "analysis/gantt.hpp"
#include "analysis/metrics.hpp"
#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "topology/topology.hpp"
#include "workload/structured.hpp"

using namespace mimdmap;

int main(int argc, char** argv) {
  const NodeId grid = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 8;
  const NodeId mesh_rows = argc > 2 ? static_cast<NodeId>(std::atoi(argv[2])) : 2;
  const NodeId mesh_cols = argc > 3 ? static_cast<NodeId>(std::atoi(argv[3])) : 3;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;

  StructuredWeights weights;
  weights.node_weight = {3, 5};
  weights.edge_weight = {1, 4};
  weights.seed = seed;
  const TaskGraph stencil = make_diamond(grid, grid, weights);
  const SystemGraph mesh = make_mesh(mesh_rows, mesh_cols);

  std::printf("== %dx%d stencil wavefront on %s ==\n", grid, grid, mesh.name().c_str());

  // Block clustering keeps spatially close cells together — the natural
  // decomposition for a stencil.
  Clustering clustering = block_clustering(stencil, mesh.node_count());
  MappingInstance instance(stencil, std::move(clustering), mesh);

  const MappingReport report = map_instance(instance);
  const RandomMappingStats random = evaluate_random_mappings(instance, 20, seed + 5);

  const std::int64_t ours_pct =
      percent_over_lower_bound(report.total_time(), report.lower_bound);
  const std::int64_t rand_pct = percent_over_lower_bound(random.mean(), report.lower_bound);

  std::printf("tasks: %d   inter-cluster traffic: %lld units\n", stencil.node_count(),
              static_cast<long long>(
                  inter_cluster_traffic(instance.problem(), instance.clustering())));
  std::printf("lower bound:        %lld\n", static_cast<long long>(report.lower_bound));
  std::printf("critical edges:     %zu (guide the initial assignment)\n",
              report.critical.critical_edges.size());
  std::printf("initial assignment: %lld\n", static_cast<long long>(report.initial_total));
  std::printf("after refinement:   %lld  (%lld%% of bound, %lld trials%s)\n",
              static_cast<long long>(report.total_time()), static_cast<long long>(ours_pct),
              static_cast<long long>(report.refinement_trials),
              report.reached_lower_bound ? ", provably optimal" : "");
  std::printf("random mapping:     %.1f on average over 20 trials (%lld%%)\n", random.mean(),
              static_cast<long long>(rand_pct));
  std::printf("improvement:        %lld percentage points\n\n",
              static_cast<long long>(improvement_points(ours_pct, rand_pct)));

  // The paper's model lets same-processor tasks overlap; the serialized
  // extension forbids that. Compare both readings of the final mapping.
  const Weight serialized = total_time(instance, report.assignment,
                                       EvalOptions{.serialize_within_processor = true});
  std::printf("model check: paper model %lld vs serialized-processor extension %lld\n\n",
              static_cast<long long>(report.total_time()),
              static_cast<long long>(serialized));

  std::printf("first time units of the mapped schedule:\n%s",
              render_gantt(instance, report.assignment, report.schedule, 24).c_str());
  return 0;
}
