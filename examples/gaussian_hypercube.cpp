// Mapping a Gaussian-elimination task DAG onto a hypercube.
//
// The paper cites DAG scheduling for Gaussian elimination ([10], [11]) as a
// motivating workload for clustering + mapping. This example builds the
// GE(n) task graph, clusters it with each available strategy, maps the
// clustered graph onto a hypercube, and reports how clustering quality and
// the critical-edge-guided mapping interact.
//
// Usage: gaussian_hypercube [matrix_order] [hypercube_dim] [seed]
//        defaults:           12             3               1
#include <cstdio>
#include <cstdlib>

#include "analysis/metrics.hpp"
#include "analysis/table.hpp"
#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "topology/topology.hpp"
#include "workload/structured.hpp"

using namespace mimdmap;

int main(int argc, char** argv) {
  const NodeId order = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 12;
  const NodeId dim = argc > 2 ? static_cast<NodeId>(std::atoi(argv[2])) : 3;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  StructuredWeights weights;
  weights.node_weight = {2, 6};
  weights.edge_weight = {1, 8};
  weights.seed = seed;
  const TaskGraph ge = make_gaussian_elimination(order, weights);
  const SystemGraph cube = make_hypercube(dim);

  std::printf("== Gaussian elimination GE(%d) on %s ==\n", order, cube.name().c_str());
  std::printf("tasks: %d, edges: %zu, processors: %d\n\n", ge.node_count(), ge.edge_count(),
              cube.node_count());

  TextTable table({"clustering", "lower bound", "ours", "ours %", "random %", "improvement",
                   "optimal?"});

  for (const std::string& strategy : clustering_strategies()) {
    Clustering clustering = make_clustering(strategy, ge, cube.node_count(), seed + 17);
    MappingInstance instance(ge, std::move(clustering), cube);
    const MappingReport report = map_instance(instance);
    const RandomMappingStats random = evaluate_random_mappings(instance, 10, seed + 23);

    const std::int64_t ours_pct =
        percent_over_lower_bound(report.total_time(), report.lower_bound);
    const std::int64_t random_pct =
        percent_over_lower_bound(random.mean(), report.lower_bound);
    table.add_row({strategy, std::to_string(report.lower_bound),
                   std::to_string(report.total_time()), std::to_string(ours_pct),
                   std::to_string(random_pct),
                   std::to_string(improvement_points(ours_pct, random_pct)),
                   report.reached_lower_bound ? "yes" : "no"});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("notes: 'lower bound' is the ideal-graph makespan for that clustering\n"
              "       (clustering changes the clustered graph, hence the bound);\n"
              "       'optimal?' marks runs stopped by the termination condition.\n");
  return 0;
}
