// The mimdmap command-line driver — see `mimdmap_cli help` or
// src/cli/commands.hpp for the full command set. A typical session:
//
//   mimdmap_cli generate --workload cholesky --tiles 6 --out prog.txt
//   mimdmap_cli topology --spec hypercube-3 --out machine.txt
//   mimdmap_cli map --problem prog.txt --system machine.txt \
//                   --strategy linear --random-trials 10 --gantt
#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  return mimdmap::cli::run(argc, argv, std::cout, std::cerr);
}
