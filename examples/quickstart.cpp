// Quickstart: the complete mimdmap pipeline on the paper's running example
// (11 tasks, 4 clusters, 4-processor cycle — sections 2-4 of the paper).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Walks through every stage: the ideal schedule and its lower bound, the
// critical edges, the critical-edge-guided initial assignment, and the
// refinement with the lower-bound termination condition.
#include <cstdio>

#include "analysis/gantt.hpp"
#include "cluster/clustering.hpp"
#include "core/mapper.hpp"
#include "graph/graph_io.hpp"
#include "topology/topology.hpp"

using namespace mimdmap;

int main() {
  // ---- 1. Describe the parallel program (problem graph, paper Fig. 2) ----
  TaskGraph program(11);
  const Weight task_times[11] = {1, 1, 2, 3, 3, 1, 3, 2, 2, 3, 1};
  for (NodeId v = 0; v < 11; ++v) program.set_node_weight(v, task_times[idx(v)]);
  // add_edge(from, to, communication_time)
  program.add_edge(0, 1, 1);
  program.add_edge(0, 2, 2);
  program.add_edge(0, 3, 2);
  program.add_edge(2, 4, 1);
  program.add_edge(3, 5, 3);
  program.add_edge(2, 6, 2);
  program.add_edge(3, 7, 3);
  program.add_edge(6, 8, 2);
  program.add_edge(4, 8, 1);
  program.add_edge(5, 8, 1);
  program.add_edge(6, 9, 2);
  program.add_edge(9, 10, 1);
  program.add_edge(5, 10, 1);

  // ---- 2. Cluster the tasks (paper assumes an external clustering) ----
  Clustering clustering({0, 1, 2, 0, 3, 1, 0, 3, 2, 0, 0}, 4);

  // ---- 3. Describe the machine (system graph, paper Fig. 5-a) ----
  SystemGraph machine = make_ring(4);

  // ---- 4. Map ----
  MappingInstance instance(program, clustering, machine);
  const MappingReport report = map_instance(instance);

  std::printf("== mimdmap quickstart ==\n\n");
  std::printf("problem graph: %d tasks, %zu edges\n", program.node_count(),
              program.edge_count());
  std::printf("system graph:  %s (%d processors)\n\n", machine.name().c_str(),
              machine.node_count());

  std::printf("ideal schedule on the fully connected closure (paper Fig. 6):\n%s\n",
              render_ideal_gantt(instance, report.ideal).c_str());

  std::printf("lower bound on total time: %lld\n",
              static_cast<long long>(report.lower_bound));
  std::printf("critical problem edges (zero-slack chains to the latest task):\n");
  for (const TaskEdge& e : report.critical.critical_edges) {
    std::printf("  task %d -> task %d (weight %lld)\n", e.from, e.to,
                static_cast<long long>(e.weight));
  }

  std::printf("\nfinal assignment (cluster -> processor):\n");
  for (NodeId c = 0; c < 4; ++c) {
    std::printf("  cluster %d -> P%d%s\n", c, report.assignment.host_of(c),
                report.pinned[idx(c)] ? "  [pinned: critical abstract node]" : "");
  }

  std::printf("\nmapped schedule (paper Fig. 24):\n%s\n",
              render_gantt(instance, report.assignment, report.schedule).c_str());

  std::printf("total time: %lld (%lld%% of the lower bound)\n",
              static_cast<long long>(report.total_time()),
              static_cast<long long>(report.percent_over_lower_bound()));
  if (report.reached_lower_bound) {
    std::printf("the termination condition fired: this mapping is provably optimal "
                "(Theorem 3); %lld refinement trials were needed\n",
                static_cast<long long>(report.refinement_trials));
  }
  return 0;
}
