// Extensions tour: a heterogeneous interconnect (weighted links), the
// store-and-forward contention model, and a Cholesky factorization DAG.
//
// The paper assumes homogeneous unit links and contention-free routing;
// this example shows the two extension knobs on a machine whose backbone
// links are fast (cost 1) and whose leaf links are slow (cost 3):
//
//        P0 ══ P1            ══  backbone, cost 1
//       ╱│      │╲            —  leaf links, cost 3
//     P2 P3    P4 P5
//
// Usage: heterogeneous_network [tiles] [seed]     defaults: 6  1
#include <cstdio>
#include <cstdlib>

#include "analysis/metrics.hpp"
#include "analysis/table.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "workload/structured.hpp"

using namespace mimdmap;

int main(int argc, char** argv) {
  const NodeId tiles = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 6;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  // The machine: two fast backbone routers, four slow leaves.
  SystemGraph machine(6, "dumbbell-6");
  machine.add_link(0, 1, 1);  // backbone
  machine.add_link(0, 2, 3);
  machine.add_link(0, 3, 3);
  machine.add_link(1, 4, 3);
  machine.add_link(1, 5, 3);

  StructuredWeights weights;
  weights.node_weight = {3, 8};
  weights.edge_weight = {1, 5};
  weights.seed = seed;
  const TaskGraph cholesky = make_cholesky(tiles, weights);

  std::printf("== tiled Cholesky (%d tiles, %d tasks) on a heterogeneous machine ==\n\n",
              tiles, cholesky.node_count());

  Clustering clustering = linear_clustering(cholesky, machine.node_count());

  TextTable table({"distance model", "contention", "lower bound", "total", "% over bound",
                   "optimal?"});
  for (const DistanceModel model : {DistanceModel::kHops, DistanceModel::kWeightedLinks}) {
    const MappingInstance instance(cholesky, clustering, machine, model);
    for (const bool contention : {false, true}) {
      MapperOptions opts;
      opts.refine.eval.link_contention = contention;
      opts.refine.seed = seed + 99;
      const MappingReport report = map_instance(instance, opts);
      table.add_row({model == DistanceModel::kHops ? "hops (paper)" : "weighted links",
                     contention ? "store-and-forward" : "none (paper)",
                     std::to_string(report.lower_bound), std::to_string(report.total_time()),
                     std::to_string(report.percent_over_lower_bound()),
                     report.reached_lower_bound ? "yes" : "no"});
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "notes:\n"
      " * 'hops' charges every link one unit (the paper's model) — it cannot tell\n"
      "   the fast backbone from the slow leaf links;\n"
      " * 'weighted links' routes through Floyd-Warshall costs, so the bound and\n"
      "   the mapping react to the slow leaves;\n"
      " * the contention rows serialize messages sharing a physical link, which\n"
      "   penalizes mappings that funnel traffic through the backbone.\n");
  return 0;
}
