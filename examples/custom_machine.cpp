// Bring-your-own machine and program: the text file interface.
//
// mimdmap's graph_io text format lets you describe your own problem and
// system graphs in plain text and replay them. This example embeds the two
// files inline (so it runs without arguments), parses them, maps, and dumps
// DOT renderings you can feed to Graphviz.
//
// Usage: custom_machine                      (uses the built-in demo files)
//        custom_machine prog.txt machine.txt (reads your files)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/gantt.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "graph/graph_io.hpp"

using namespace mimdmap;

namespace {

constexpr const char* kDemoProgram = R"(# a small irregular program: 10 tasks
taskgraph 10
node 0 2
node 1 4
node 2 3
node 3 1
node 4 5
node 5 2
node 6 3
node 7 2
node 8 4
node 9 1
edge 0 1 3
edge 0 2 1
edge 1 3 2
edge 1 4 4
edge 2 4 2
edge 2 5 1
edge 3 6 2
edge 4 6 3
edge 4 7 1
edge 5 7 2
edge 6 8 2
edge 7 8 1
edge 7 9 3
)";

constexpr const char* kDemoMachine = R"(# an asymmetric 5-processor machine
systemgraph 5 demo-machine
link 0 1 1
link 0 2 1
link 1 2 1
link 2 3 1
link 3 4 1
)";

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string program_text = argc > 2 ? slurp(argv[1]) : kDemoProgram;
  const std::string machine_text = argc > 2 ? slurp(argv[2]) : kDemoMachine;

  const TaskGraph program = task_graph_from_text(program_text);
  const SystemGraph machine = system_graph_from_text(machine_text);

  std::printf("== custom program on '%s' ==\n", machine.name().c_str());

  // Cluster with list scheduling (a sensible default when the user has no
  // clustering of their own), then map.
  Clustering clustering = list_scheduling_clustering(program, machine.node_count());
  MappingInstance instance(program, std::move(clustering), machine);
  const MappingReport report = map_instance(instance);

  std::printf("lower bound %lld, mapped total %lld (%lld%%)%s\n\n",
              static_cast<long long>(report.lower_bound),
              static_cast<long long>(report.total_time()),
              static_cast<long long>(report.percent_over_lower_bound()),
              report.reached_lower_bound ? " — provably optimal" : "");

  std::printf("mapped schedule:\n%s\n",
              render_gantt(instance, report.assignment, report.schedule).c_str());

  std::printf("Graphviz DOT of the problem graph (pipe into `dot -Tpng`):\n%s\n",
              to_dot(program).c_str());
  std::printf("Graphviz DOT of the machine:\n%s", to_dot(machine).c_str());
  return 0;
}
