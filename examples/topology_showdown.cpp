// One workload, many machines: how interconnect topology affects the
// mapped execution time.
//
// The paper evaluates hypercubes, meshes and random topologies (section 5).
// This example fixes one random problem graph + clustering and maps it onto
// eight different 8-processor interconnects, reporting the topology
// diameter, mean distance, and the mapped total time against the (topology-
// independent) lower bound.
//
// Usage: topology_showdown [num_tasks] [seed]
//        defaults:          120         3
#include <cstdio>
#include <cstdlib>

#include "analysis/metrics.hpp"
#include "analysis/table.hpp"
#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "graph/shortest_paths.hpp"
#include "topology/factory.hpp"
#include "workload/random_dag.hpp"

using namespace mimdmap;

int main(int argc, char** argv) {
  const NodeId num_tasks = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 120;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  LayeredDagParams params;
  params.num_tasks = num_tasks;
  params.num_layers = 10;
  const TaskGraph program = make_layered_dag(params, seed);

  const char* specs[] = {"hypercube-3", "mesh-2x4",  "torus-2x4",     "ring-8",
                         "star-8",      "chain-8",   "random-8-30-7", "complete-8"};

  std::printf("== one workload (%d tasks), eight 8-processor machines ==\n\n", num_tasks);
  TextTable table({"topology", "links", "diameter", "mean dist", "ours", "ours %",
                   "random %", "optimal?"});

  for (const char* spec : specs) {
    const SystemGraph machine = make_topology(spec);
    // Same clustering for every machine: the lower bound is identical, so
    // the 'ours %' column isolates the topology's effect.
    Clustering clustering = random_clustering(program, machine.node_count(), seed + 11);
    MappingInstance instance(program, std::move(clustering), machine);
    const MappingReport report = map_instance(instance);
    const RandomMappingStats random = evaluate_random_mappings(instance, 10, seed + 13);

    char mean_dist[16];
    std::snprintf(mean_dist, sizeof mean_dist, "%.2f",
                  static_cast<double>(mean_distance_milli(machine)) / 1000.0);
    table.add_row(
        {machine.name(), std::to_string(machine.link_count()),
         std::to_string(diameter(machine)), mean_dist, std::to_string(report.total_time()),
         std::to_string(percent_over_lower_bound(report.total_time(), report.lower_bound)),
         std::to_string(percent_over_lower_bound(random.mean(), report.lower_bound)),
         report.reached_lower_bound ? "yes" : "no"});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("the complete machine always reaches the lower bound (Theorem 3: it *is*\n"
              "the closure); sparser machines pay for multi-hop messages, and the gap\n"
              "to random mapping widens with the mean distance.\n");
  return 0;
}
