// A heterogeneous mapping portfolio served by MapService.
//
// Twelve jobs spanning four interconnects and six workload families —
// structured kernels (FFT, Gaussian elimination, diamond stencil) and
// random DAGs — are submitted as ONE batch. The service shards the shared
// worker pool across concurrently-running jobs and returns every job's
// full report plus wall time; the summary table is the kind of portfolio
// overview a mapping service answers for a resource manager.
//
// Usage: portfolio_batch [lanes]
//        lanes 0 (default) = the pool's full budget
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/table.hpp"
#include "cluster/strategies.hpp"
#include "service/map_service.hpp"
#include "topology/factory.hpp"
#include "workload/random_dag.hpp"
#include "workload/structured.hpp"

using namespace mimdmap;

int main(int argc, char** argv) {
  const int lanes = argc > 1 ? std::atoi(argv[1]) : 0;

  // The portfolio: (workload, topology, clustering strategy) triples.
  const StructuredWeights sw{{1, 9}, {1, 9}, 2024};
  struct Item {
    std::string name;
    TaskGraph problem;
    std::string topology;
    std::string strategy;
  };
  LayeredDagParams layered;
  layered.num_tasks = 120;
  ErdosRenyiDagParams erdos;
  erdos.num_tasks = 90;
  erdos.edge_probability = 0.06;
  std::vector<Item> items;
  items.push_back({"fft16/cube", make_fft(16, sw), "hypercube-3", "level"});
  items.push_back({"fft16/mesh", make_fft(16, sw), "mesh-2x4", "level"});
  items.push_back({"gauss8/cube", make_gaussian_elimination(8, sw), "hypercube-3", "block"});
  items.push_back({"gauss8/ring", make_gaussian_elimination(8, sw), "ring-8", "block"});
  items.push_back({"diamond/mesh", make_diamond(7, 7, sw), "mesh-2x4", "block"});
  items.push_back({"diamond/star", make_diamond(7, 7, sw), "star-8", "block"});
  items.push_back({"layer120/cube", make_layered_dag(layered, 7), "hypercube-3", "random"});
  items.push_back({"layer120/tree", make_layered_dag(layered, 7), "tree-2x3", "random"});
  items.push_back({"erdos90/cube", make_erdos_renyi_dag(erdos, 13), "hypercube-3", "block"});
  items.push_back({"erdos90/star", make_erdos_renyi_dag(erdos, 13), "star-8", "block"});
  items.push_back({"cholesky6/mesh", make_cholesky(6, sw), "mesh-2x4", "list"});
  items.push_back({"lu5/ring", make_lu(5, sw), "ring-6", "list"});

  std::deque<MappingInstance> instances;
  std::vector<MapJob> jobs;
  for (const Item& item : items) {
    SystemGraph system = make_topology(item.topology);
    Clustering clustering =
        make_clustering(item.strategy, item.problem, system.node_count(), 1);
    instances.emplace_back(item.problem, std::move(clustering), std::move(system));
    MapJob job;
    job.instance = &instances.back();
    job.name = item.name;
    job.random_trials = 10;  // the paper's baseline column, same engine
    jobs.push_back(std::move(job));
  }

  MapServiceOptions options;
  options.lanes = lanes;
  MapService service(options);
  std::printf("== mapping a %zu-job portfolio (lane budget %d, max %d concurrent) ==\n\n",
              jobs.size(), service.lane_budget(), service.max_concurrent_jobs());

  const std::size_t total = jobs.size();
  const auto results = service.map_batch(std::move(jobs), [&](const BatchProgress& p) {
    std::fprintf(stderr, "\r[%zu/%zu] %-16s", p.completed, p.total, p.last->name.c_str());
    if (p.completed == total) std::fprintf(stderr, "\n\n");
  });

  TextTable table({"job", "topology", "np", "ns", "bound", "ours", "ours %", "random %",
                   "optimal?", "lanes", "ms"});
  double batch_ms = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MapJobResult& r = results[i];
    const MappingInstance& inst = instances[i];
    char ms[32];
    std::snprintf(ms, sizeof ms, "%.1f", r.wall_ms);
    const std::int64_t random_pct =
        percent_over_lower_bound(r.random.mean(), r.report.lower_bound);
    table.add_row({r.name, inst.system().name(), std::to_string(inst.num_tasks()),
                   std::to_string(inst.num_processors()),
                   std::to_string(r.report.lower_bound),
                   std::to_string(r.report.total_time()),
                   std::to_string(r.report.percent_over_lower_bound()),
                   std::to_string(random_pct),
                   r.report.reached_lower_bound ? "yes" : "-", std::to_string(r.lanes), ms});
    batch_ms += r.wall_ms;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("sum of per-job wall times: %.1f ms (concurrent jobs overlap on the shared "
              "pool)\n",
              batch_ms);
  return 0;
}
