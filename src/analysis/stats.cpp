#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mimdmap {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double sq = 0.0;
    for (const double v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.count - 1));
  }
  return s;
}

Summary summarize(const std::vector<long long>& values) {
  std::vector<double> d(values.begin(), values.end());
  return summarize(d);
}

}  // namespace mimdmap
