// Experiment harness: regenerates the paper's evaluation protocol
// (section 5).
//
// One experiment =
//   1. generate a random problem graph (np in [30, 300], random weights),
//   2. cluster it randomly into ns clusters (the paper's random clustering
//      program),
//   3. build the instance against the chosen topology,
//   4. run our mapping pipeline,
//   5. run `random_trials` random mappings and average their total times,
//   6. report both as percent over the ideal-graph lower bound plus the
//      improvement (the columns of Tables 1-3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/chart.hpp"
#include "core/mapper.hpp"
#include "service/map_service.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {

/// Which random problem-graph generator an experiment draws from.
enum class WorkloadKind {
  kLayered,
  kErdosRenyi,
  kSeriesParallel,
};

struct ExperimentConfig {
  /// Topology spec for make_topology ("hypercube-4", "mesh-3x4",
  /// "random-12-20-7", ...).
  std::string topology;
  /// Generator family; the matching parameter block below is used.
  WorkloadKind workload_kind = WorkloadKind::kLayered;
  /// Problem-graph generator parameters; num_tasks is taken as-is.
  LayeredDagParams workload;
  ErdosRenyiDagParams erdos;
  SeriesParallelParams series_parallel;
  /// Clustering strategy name for make_clustering (the paper uses
  /// "random").
  std::string clustering = "random";
  /// Master seed; workload, clustering, refinement and the random baseline
  /// derive independent streams from it.
  std::uint64_t seed = 1;
  /// Random mappings averaged for the baseline column (paper: "several").
  std::int64_t random_trials = 10;
  MapperOptions mapper;
};

struct ExperimentRow {
  int id = 0;
  std::string topology;
  NodeId np = 0;
  NodeId ns = 0;
  Weight lower_bound = 0;
  Weight ours_total = 0;
  double random_mean = 0.0;
  std::int64_t ours_pct = 0;    // column "our approach"
  std::int64_t random_pct = 0;  // column "random"
  std::int64_t improvement = 0; // column "improvement"
  bool reached_lower_bound = false;
  bool terminated_early = false;
  std::int64_t refinement_trials = 0;
  /// kOk, or kCancelled / kDeadlineExceeded for a degraded row (the
  /// mapping columns then reflect the best incumbent at the signal).
  /// run_suite never returns error-status rows — a job that failed
  /// (kInvalidInput / kInternalError) is rethrown as an exception.
  MapStatus status = MapStatus::kOk;
};

/// Steps 1-5 of the protocol as one deferred-build MapService job: the
/// instance (steps 1-3) is generated *inside* the job (MapJob::build) from
/// the config's derived sub-seeds and dropped before the result is
/// delivered, so a suite's peak instance count is bounded by the service's
/// runner concurrency instead of the matrix size (ROADMAP "windowed suite
/// building" — enforced by the MappingInstance::peak_live_count regression
/// test). Deterministic: the job result is a pure function of the config.
[[nodiscard]] MapJob experiment_job(const ExperimentConfig& config, int id);

/// Step 6: folds the job result into a table row (the instance summary —
/// topology, np, ns — travels in the MapJobResult).
[[nodiscard]] ExperimentRow assemble_row(const MapJobResult& result, int id);

/// Runs one experiment (sequential; bit-identical to the batched path).
[[nodiscard]] ExperimentRow run_experiment(const ExperimentConfig& config, int id);

/// Runs a batch: all rows are submitted to one MapService and mapped
/// concurrently on the shared pool. Per-row results are bit-identical to
/// calling run_experiment in a serial loop, for any lane count.
[[nodiscard]] std::vector<ExperimentRow> run_suite(const std::vector<ExperimentConfig>& configs);

/// As above on a caller-owned service (shared across suites).
[[nodiscard]] std::vector<ExperimentRow> run_suite(const std::vector<ExperimentConfig>& configs,
                                                   MapService& service);

/// Renders rows in the layout of the paper's Tables 1-3.
[[nodiscard]] std::string format_paper_table(const std::vector<ExperimentRow>& rows);

/// CSV with full diagnostics.
[[nodiscard]] std::string format_csv(const std::vector<ExperimentRow>& rows);

/// Renders the matching figure (paper Figs. 25-27).
[[nodiscard]] std::string render_figure(const std::vector<ExperimentRow>& rows);

/// Aggregate line: mean percentages, improvement range, lower-bound hits —
/// the quantities the paper quotes in prose ("improvements ranging from 29
/// to 77%", "in 2 out of 10 cases, our results reached the lower bound").
[[nodiscard]] std::string summarize_suite(const std::vector<ExperimentRow>& rows);

}  // namespace mimdmap
