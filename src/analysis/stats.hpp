// Small descriptive-statistics helpers for experiment summaries.
#pragma once

#include <vector>

namespace mimdmap {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
};

/// Summary of a sample; all-zero for an empty vector.
[[nodiscard]] Summary summarize(const std::vector<double>& values);
[[nodiscard]] Summary summarize(const std::vector<long long>& values);

}  // namespace mimdmap
