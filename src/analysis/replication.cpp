#include "analysis/replication.hpp"

#include <cstdio>
#include <stdexcept>

#include "analysis/table.hpp"
#include "workload/rng.hpp"

namespace mimdmap {
namespace {

std::string mean_pm_std(const Summary& s) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%.1f +/- %.1f", s.mean, s.stddev);
  return buffer;
}

}  // namespace

namespace {

/// Folds one configuration's replica rows into its mean +/- std row.
ReplicatedRow aggregate_replicas(const std::vector<ExperimentRow>& results, int id) {
  ReplicatedRow row;
  row.id = id;
  row.replicas = static_cast<int>(results.size());

  std::vector<double> ours;
  std::vector<double> random;
  std::vector<double> improvement;
  for (const ExperimentRow& result : results) {
    row.topology = result.topology;
    ours.push_back(static_cast<double>(result.ours_pct));
    random.push_back(static_cast<double>(result.random_pct));
    improvement.push_back(static_cast<double>(result.improvement));
    if (result.reached_lower_bound) ++row.lower_bound_hits;
  }
  row.ours_pct = summarize(ours);
  row.random_pct = summarize(random);
  row.improvement = summarize(improvement);
  return row;
}

std::vector<ReplicatedRow> run_replicated_matrix(const std::vector<ExperimentConfig>& configs,
                                                 int replicas, int first_id) {
  if (replicas <= 0) throw std::invalid_argument("run_replicated: replicas must be > 0");

  // The whole (configuration x replica) matrix goes to the service as one
  // batch: every replica is an independent deferred-build job (derived
  // seed), so they map concurrently on the shared pool while only the
  // running jobs hold instances — peak memory is bounded by the runner
  // count, not the matrix size — and the aggregation below stays
  // bit-identical to the legacy serial double loop.
  std::vector<MapJob> jobs;
  jobs.reserve(configs.size() * static_cast<std::size_t>(replicas));
  for (std::size_t c = 0; c < configs.size(); ++c) {
    std::uint64_t chain = configs[c].seed;
    for (int r = 0; r < replicas; ++r) {
      ExperimentConfig replica = configs[c];
      replica.seed = splitmix64(chain);
      MapJob job = experiment_job(replica, first_id + static_cast<int>(c));
      job.name += "-rep" + std::to_string(r);
      jobs.push_back(std::move(job));
    }
  }
  MapService service;
  const std::vector<MapJobResult> results = service.map_batch(std::move(jobs));
  // Same policy as run_suite: service-isolated job failures must not
  // silently become zeroed aggregate rows.
  for (const MapJobResult& result : results) {
    if (result.status == MapStatus::kInvalidInput) {
      throw std::invalid_argument("run_replicated: " + result.name + ": " + result.error);
    }
    if (result.status == MapStatus::kInternalError) {
      throw std::runtime_error("run_replicated: " + result.name + ": " + result.error);
    }
  }

  std::vector<ReplicatedRow> rows;
  rows.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    std::vector<ExperimentRow> replica_rows;
    replica_rows.reserve(static_cast<std::size_t>(replicas));
    for (int r = 0; r < replicas; ++r) {
      const std::size_t i = c * static_cast<std::size_t>(replicas) + static_cast<std::size_t>(r);
      replica_rows.push_back(assemble_row(results[i], first_id + static_cast<int>(c)));
    }
    rows.push_back(aggregate_replicas(replica_rows, first_id + static_cast<int>(c)));
  }
  return rows;
}

}  // namespace

ReplicatedRow run_replicated(const ExperimentConfig& config, int id, int replicas) {
  return run_replicated_matrix({config}, replicas, id).front();
}

std::vector<ReplicatedRow> run_replicated_suite(const std::vector<ExperimentConfig>& configs,
                                                int replicas) {
  return run_replicated_matrix(configs, replicas, 1);
}

std::string format_replicated_table(const std::vector<ReplicatedRow>& rows) {
  TextTable table(
      {"expts", "topology", "our approach", "random", "improvement", "lb hits"});
  for (const ReplicatedRow& row : rows) {
    table.add_row({std::to_string(row.id), row.topology, mean_pm_std(row.ours_pct),
                   mean_pm_std(row.random_pct), mean_pm_std(row.improvement),
                   std::to_string(row.lower_bound_hits) + "/" +
                       std::to_string(row.replicas)});
  }
  return table.to_string();
}

}  // namespace mimdmap
