#include "analysis/replication.hpp"

#include <cstdio>
#include <stdexcept>

#include "analysis/table.hpp"
#include "workload/rng.hpp"

namespace mimdmap {
namespace {

std::string mean_pm_std(const Summary& s) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%.1f +/- %.1f", s.mean, s.stddev);
  return buffer;
}

}  // namespace

ReplicatedRow run_replicated(const ExperimentConfig& config, int id, int replicas) {
  if (replicas <= 0) throw std::invalid_argument("run_replicated: replicas must be > 0");
  ReplicatedRow row;
  row.id = id;
  row.replicas = replicas;

  std::vector<double> ours;
  std::vector<double> random;
  std::vector<double> improvement;
  std::uint64_t chain = config.seed;
  for (int r = 0; r < replicas; ++r) {
    ExperimentConfig replica = config;
    replica.seed = splitmix64(chain);
    const ExperimentRow result = run_experiment(replica, id);
    row.topology = result.topology;
    ours.push_back(static_cast<double>(result.ours_pct));
    random.push_back(static_cast<double>(result.random_pct));
    improvement.push_back(static_cast<double>(result.improvement));
    if (result.reached_lower_bound) ++row.lower_bound_hits;
  }
  row.ours_pct = summarize(ours);
  row.random_pct = summarize(random);
  row.improvement = summarize(improvement);
  return row;
}

std::vector<ReplicatedRow> run_replicated_suite(const std::vector<ExperimentConfig>& configs,
                                                int replicas) {
  std::vector<ReplicatedRow> rows;
  rows.reserve(configs.size());
  int id = 1;
  for (const ExperimentConfig& config : configs) {
    rows.push_back(run_replicated(config, id++, replicas));
  }
  return rows;
}

std::string format_replicated_table(const std::vector<ReplicatedRow>& rows) {
  TextTable table(
      {"expts", "topology", "our approach", "random", "improvement", "lb hits"});
  for (const ReplicatedRow& row : rows) {
    table.add_row({std::to_string(row.id), row.topology, mean_pm_std(row.ours_pct),
                   mean_pm_std(row.random_pct), mean_pm_std(row.improvement),
                   std::to_string(row.lower_bound_hits) + "/" +
                       std::to_string(row.replicas)});
  }
  return table.to_string();
}

}  // namespace mimdmap
