#include "analysis/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace mimdmap {
namespace {

/// Shared renderer: `column_of[task]` gives the drawing column; times come
/// from start/end vectors.
std::string render(const TaskGraph& problem, const std::vector<NodeId>& column_of,
                   NodeId num_columns, const std::vector<Weight>& start,
                   const std::vector<Weight>& end, const std::string& column_title,
                   std::size_t max_rows) {
  const NodeId np = problem.node_count();
  Weight horizon = 0;
  for (const Weight e : end) horizon = std::max(horizon, e);

  constexpr int kCellWidth = 5;
  std::ostringstream os;

  // Header.
  os << "time |";
  for (NodeId c = 0; c < num_columns; ++c) {
    std::string label = column_title + std::to_string(c);
    if (label.size() > kCellWidth - 1) label.resize(kCellWidth - 1);
    os << std::string(kCellWidth - label.size(), ' ') << label;
  }
  os << "\n-----+" << std::string(idx(num_columns) * kCellWidth, '-') << "\n";

  const auto rows = static_cast<std::size_t>(horizon);
  const std::size_t shown = std::min(rows, max_rows);

  // cells[t][c] holds the rendering for time unit t, column c.
  std::vector<std::vector<std::string>> cells(shown,
                                              std::vector<std::string>(idx(num_columns)));
  // Draw longer-running tasks first so later-starting tasks overwrite and
  // overlaps become visible.
  std::vector<NodeId> order(idx(np));
  for (NodeId v = 0; v < np; ++v) order[idx(v)] = v;
  std::stable_sort(order.begin(), order.end(), [&start](NodeId a, NodeId b) {
    return start[idx(a)] < start[idx(b)];
  });

  for (const NodeId v : order) {
    const NodeId c = column_of[idx(v)];
    for (Weight t = start[idx(v)]; t < end[idx(v)]; ++t) {
      if (static_cast<std::size_t>(t) >= shown) break;
      std::string& cell = cells[static_cast<std::size_t>(t)][idx(c)];
      std::string drawn = (t == start[idx(v)]) ? std::to_string(v) : "|";
      if (!cell.empty()) drawn += "+";  // overlap marker
      cell = std::move(drawn);
    }
  }

  for (std::size_t t = 0; t < shown; ++t) {
    std::string label = std::to_string(t);
    os << std::string(5 - std::min<std::size_t>(5, label.size()), ' ') << label << "|";
    for (NodeId c = 0; c < num_columns; ++c) {
      std::string cell = cells[t][idx(c)];
      if (cell.size() > kCellWidth - 1) cell.resize(kCellWidth - 1);
      os << std::string(kCellWidth - cell.size(), ' ') << cell;
    }
    os << "\n";
  }
  if (shown < rows) os << "  ... (" << rows - shown << " more time units)\n";
  os << "total time: " << horizon << "\n";
  return os.str();
}

}  // namespace

std::string render_gantt(const MappingInstance& instance, const Assignment& assignment,
                         const ScheduleResult& schedule, std::size_t max_rows) {
  const NodeId np = instance.num_tasks();
  std::vector<NodeId> column_of(idx(np));
  for (NodeId v = 0; v < np; ++v) {
    column_of[idx(v)] = assignment.host_of(instance.clustering().cluster_of(v));
  }
  return render(instance.problem(), column_of, instance.num_processors(), schedule.start,
                schedule.end, "P", max_rows);
}

std::string render_ideal_gantt(const MappingInstance& instance, const IdealSchedule& ideal,
                               std::size_t max_rows) {
  const NodeId np = instance.num_tasks();
  std::vector<NodeId> column_of(idx(np));
  for (NodeId v = 0; v < np; ++v) column_of[idx(v)] = instance.clustering().cluster_of(v);
  return render(instance.problem(), column_of, instance.num_processors(), ideal.start,
                ideal.end, "C", max_rows);
}

}  // namespace mimdmap
