// Replicated experiments: the paper's tables are single runs per row; for
// statistically defensible comparisons each configuration can be replayed
// under several derived seeds and summarised as mean +/- sample stddev.
#pragma once

#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/stats.hpp"

namespace mimdmap {

struct ReplicatedRow {
  int id = 0;
  std::string topology;
  int replicas = 0;
  Summary ours_pct;
  Summary random_pct;
  Summary improvement;
  /// Runs whose final total equalled the lower bound.
  int lower_bound_hits = 0;
};

/// Runs `replicas` copies of the configuration with seeds derived from
/// config.seed (SplitMix64 chain), aggregating the paper's three columns.
[[nodiscard]] ReplicatedRow run_replicated(const ExperimentConfig& config, int id,
                                           int replicas);

/// Runs a batch of configurations.
[[nodiscard]] std::vector<ReplicatedRow> run_replicated_suite(
    const std::vector<ExperimentConfig>& configs, int replicas);

/// "mean +/- std" table in the layout of the paper's Tables 1-3.
[[nodiscard]] std::string format_replicated_table(const std::vector<ReplicatedRow>& rows);

}  // namespace mimdmap
