// ASCII range charts in the style of the paper's Figs. 25-27.
//
// Each experiment is one column; a vertical dashed segment runs from the
// mapped result ('o', lower end — our approach) up to the random-mapping
// result ('x', higher end), both as percent over the lower bound. "For
// example, a lower end value of 110 and an upper end value of 160 mean that
// a program mapped by using our approach requires only 10% more time than
// the lower bound, while a random mapping would result in a 60% increase."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mimdmap {

struct ChartSeries {
  /// Percent-over-lower-bound per experiment, ours and random.
  std::vector<std::int64_t> ours_pct;
  std::vector<std::int64_t> random_pct;
};

/// Renders the histogram; `y_step` is the percent granularity per text row
/// (the paper's figures use 5-10%).
[[nodiscard]] std::string render_range_chart(const ChartSeries& series,
                                             std::int64_t y_step = 5);

}  // namespace mimdmap
