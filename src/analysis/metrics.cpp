#include "analysis/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace mimdmap {

std::int64_t percent_over_lower_bound(Weight total, Weight lower_bound) {
  if (lower_bound <= 0) throw std::invalid_argument("percent_over_lower_bound: bound <= 0");
  return (total * 100 + lower_bound / 2) / lower_bound;
}

std::int64_t percent_over_lower_bound(double total, Weight lower_bound) {
  if (lower_bound <= 0) throw std::invalid_argument("percent_over_lower_bound: bound <= 0");
  return static_cast<std::int64_t>(
      std::llround(total * 100.0 / static_cast<double>(lower_bound)));
}

std::int64_t improvement_points(std::int64_t ours_pct, std::int64_t random_pct) {
  return random_pct - ours_pct;
}

}  // namespace mimdmap
