#include "analysis/experiment.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "analysis/metrics.hpp"
#include "analysis/table.hpp"
#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/instance.hpp"
#include "topology/factory.hpp"
#include "workload/rng.hpp"

namespace mimdmap {

BuiltExperiment build_experiment(const ExperimentConfig& config) {
  // The paper's protocol always pairs the mapping with the random
  // baseline; catch a zeroed-out config here (the legacy serial loop threw
  // from evaluate_random_mappings) instead of tabulating random_pct = 0.
  if (config.random_trials <= 0) {
    throw std::invalid_argument("build_experiment: random_trials must be > 0");
  }
  // Independent deterministic sub-seeds for each random component.
  std::uint64_t sm = config.seed;
  const std::uint64_t workload_seed = splitmix64(sm);
  const std::uint64_t clustering_seed = splitmix64(sm);
  const std::uint64_t refine_seed = splitmix64(sm);
  const std::uint64_t random_baseline_seed = splitmix64(sm);

  SystemGraph system = make_topology(config.topology);
  TaskGraph problem = [&]() {
    switch (config.workload_kind) {
      case WorkloadKind::kErdosRenyi:
        return make_erdos_renyi_dag(config.erdos, workload_seed);
      case WorkloadKind::kSeriesParallel:
        return make_series_parallel(config.series_parallel, workload_seed);
      case WorkloadKind::kLayered:
        break;
    }
    return make_layered_dag(config.workload, workload_seed);
  }();
  Clustering clustering =
      make_clustering(config.clustering, problem, system.node_count(), clustering_seed);

  BuiltExperiment built{
      MappingInstance(std::move(problem), std::move(clustering), std::move(system)),
      config.mapper, config.random_trials, random_baseline_seed};
  built.mapper.refine.seed = refine_seed;
  return built;
}

MapJob experiment_job(const BuiltExperiment& built, int id) {
  MapJob job;
  job.instance = &built.instance;
  job.options = built.mapper;
  job.name = "expt-" + std::to_string(id);
  job.random_trials = built.random_trials;
  job.random_seed = built.random_seed;
  return job;
}

ExperimentRow assemble_row(const BuiltExperiment& built, const MapJobResult& result, int id) {
  const MappingReport& report = result.report;
  ExperimentRow row;
  row.id = id;
  row.topology = built.instance.system().name();
  row.np = built.instance.num_tasks();
  row.ns = built.instance.num_processors();
  row.lower_bound = report.lower_bound;
  row.ours_total = report.total_time();
  row.random_mean = result.random.mean();
  row.ours_pct = percent_over_lower_bound(row.ours_total, row.lower_bound);
  row.random_pct = percent_over_lower_bound(row.random_mean, row.lower_bound);
  row.improvement = improvement_points(row.ours_pct, row.random_pct);
  row.reached_lower_bound = report.reached_lower_bound;
  row.terminated_early = report.terminated_early;
  row.refinement_trials = report.refinement_trials;
  return row;
}

ExperimentRow run_experiment(const ExperimentConfig& config, int id) {
  const BuiltExperiment built = build_experiment(config);
  return assemble_row(built, run_map_job(experiment_job(built, id)), id);
}

std::vector<ExperimentRow> run_suite(const std::vector<ExperimentConfig>& configs,
                                     MapService& service) {
  std::vector<BuiltExperiment> built;
  built.reserve(configs.size());
  for (const ExperimentConfig& config : configs) built.push_back(build_experiment(config));

  std::vector<MapJob> jobs;
  jobs.reserve(built.size());
  for (std::size_t i = 0; i < built.size(); ++i) {
    jobs.push_back(experiment_job(built[i], static_cast<int>(i) + 1));
  }
  const std::vector<MapJobResult> results = service.map_batch(std::move(jobs));

  std::vector<ExperimentRow> rows;
  rows.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    rows.push_back(assemble_row(built[i], results[i], static_cast<int>(i) + 1));
  }
  return rows;
}

std::vector<ExperimentRow> run_suite(const std::vector<ExperimentConfig>& configs) {
  MapService service;
  return run_suite(configs, service);
}

std::string format_paper_table(const std::vector<ExperimentRow>& rows) {
  TextTable table({"expts", "our approach", "random", "improvement"});
  for (const ExperimentRow& row : rows) {
    table.add_row({std::to_string(row.id), std::to_string(row.ours_pct),
                   std::to_string(row.random_pct), std::to_string(row.improvement)});
  }
  return table.to_string();
}

std::string format_csv(const std::vector<ExperimentRow>& rows) {
  TextTable table({"expt", "topology", "np", "ns", "lower_bound", "ours_total", "random_mean",
                   "ours_pct", "random_pct", "improvement", "reached_lb", "terminated_early",
                   "refine_trials"});
  for (const ExperimentRow& row : rows) {
    std::ostringstream mean;
    mean << row.random_mean;
    table.add_row({std::to_string(row.id), row.topology, std::to_string(row.np),
                   std::to_string(row.ns), std::to_string(row.lower_bound),
                   std::to_string(row.ours_total), mean.str(), std::to_string(row.ours_pct),
                   std::to_string(row.random_pct), std::to_string(row.improvement),
                   row.reached_lower_bound ? "1" : "0", row.terminated_early ? "1" : "0",
                   std::to_string(row.refinement_trials)});
  }
  return table.to_csv();
}

std::string render_figure(const std::vector<ExperimentRow>& rows) {
  ChartSeries series;
  for (const ExperimentRow& row : rows) {
    series.ours_pct.push_back(row.ours_pct);
    series.random_pct.push_back(row.random_pct);
  }
  return render_range_chart(series);
}

std::string summarize_suite(const std::vector<ExperimentRow>& rows) {
  if (rows.empty()) return "(no experiments)\n";
  std::int64_t min_impr = rows.front().improvement;
  std::int64_t max_impr = rows.front().improvement;
  std::int64_t sum_ours = 0;
  std::int64_t sum_random = 0;
  std::size_t lb_hits = 0;
  std::size_t early = 0;
  for (const ExperimentRow& row : rows) {
    min_impr = std::min(min_impr, row.improvement);
    max_impr = std::max(max_impr, row.improvement);
    sum_ours += row.ours_pct;
    sum_random += row.random_pct;
    if (row.reached_lower_bound) ++lb_hits;
    if (row.terminated_early) ++early;
  }
  const auto n = static_cast<std::int64_t>(rows.size());
  std::ostringstream os;
  os << "experiments: " << n << ", mean ours: " << sum_ours / n
     << "%, mean random: " << sum_random / n << "%, improvement: " << min_impr << ".."
     << max_impr << " points, reached lower bound: " << lb_hits << "/" << n
     << ", early termination: " << early << "/" << n << "\n";
  return os.str();
}

}  // namespace mimdmap
