#include "analysis/experiment.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "analysis/metrics.hpp"
#include "analysis/table.hpp"
#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/instance.hpp"
#include "topology/factory.hpp"
#include "workload/rng.hpp"

namespace mimdmap {

namespace {

/// Independent deterministic sub-seeds for each random component of one
/// experiment, derived from the config's master seed. Every consumer —
/// the job options built up front and the instance built inside the job —
/// derives through this one chain, which is what keeps them coherent.
struct DerivedSeeds {
  std::uint64_t workload = 0;
  std::uint64_t clustering = 0;
  std::uint64_t refine = 0;
  std::uint64_t random_baseline = 0;
};

DerivedSeeds derive_seeds(std::uint64_t master) {
  std::uint64_t sm = master;
  DerivedSeeds seeds;
  seeds.workload = splitmix64(sm);
  seeds.clustering = splitmix64(sm);
  seeds.refine = splitmix64(sm);
  seeds.random_baseline = splitmix64(sm);
  return seeds;
}

/// Steps 1-3 of the protocol: workload + clustering + instance.
MappingInstance build_instance(const ExperimentConfig& config, const DerivedSeeds& seeds) {
  SystemGraph system = make_topology(config.topology);
  TaskGraph problem = [&]() {
    switch (config.workload_kind) {
      case WorkloadKind::kErdosRenyi:
        return make_erdos_renyi_dag(config.erdos, seeds.workload);
      case WorkloadKind::kSeriesParallel:
        return make_series_parallel(config.series_parallel, seeds.workload);
      case WorkloadKind::kLayered:
        break;
    }
    return make_layered_dag(config.workload, seeds.workload);
  }();
  Clustering clustering =
      make_clustering(config.clustering, problem, system.node_count(), seeds.clustering);
  return MappingInstance(std::move(problem), std::move(clustering), std::move(system));
}

/// The paper's protocol always pairs the mapping with the random baseline;
/// catch a zeroed-out config at job-creation time (the legacy serial loop
/// threw from evaluate_random_mappings) instead of tabulating
/// random_pct = 0 — or worse, throwing from inside a runner thread.
void require_random_baseline(const ExperimentConfig& config, const char* caller) {
  if (config.random_trials <= 0) {
    throw std::invalid_argument(std::string(caller) + ": random_trials must be > 0");
  }
}

}  // namespace

MapJob experiment_job(const ExperimentConfig& config, int id) {
  require_random_baseline(config, "experiment_job");
  const DerivedSeeds seeds = derive_seeds(config.seed);
  MapJob job;
  // Steps 1-3 run inside the job, on whichever runner picks it up; the
  // config copy is all the closure needs, so a queued suite holds configs
  // (bytes) instead of instances (matrices).
  job.build = [config] { return build_instance(config, derive_seeds(config.seed)); };
  job.options = config.mapper;
  job.options.refine.seed = seeds.refine;
  job.name = "expt-" + std::to_string(id);
  job.random_trials = config.random_trials;
  job.random_seed = seeds.random_baseline;
  return job;
}

namespace {

ExperimentRow make_row(const MapJobResult& result, std::string topology, NodeId np, NodeId ns,
                       int id) {
  const MappingReport& report = result.report;
  ExperimentRow row;
  row.id = id;
  row.topology = std::move(topology);
  row.np = np;
  row.ns = ns;
  row.lower_bound = report.lower_bound;
  row.ours_total = report.total_time();
  row.random_mean = result.random.mean();
  row.ours_pct = percent_over_lower_bound(row.ours_total, row.lower_bound);
  row.random_pct = percent_over_lower_bound(row.random_mean, row.lower_bound);
  row.improvement = improvement_points(row.ours_pct, row.random_pct);
  row.reached_lower_bound = report.reached_lower_bound;
  row.terminated_early = report.terminated_early;
  row.refinement_trials = report.refinement_trials;
  row.status = result.status;
  return row;
}

}  // namespace

ExperimentRow assemble_row(const MapJobResult& result, int id) {
  return make_row(result, result.system_name, result.np, result.ns, id);
}

ExperimentRow run_experiment(const ExperimentConfig& config, int id) {
  return assemble_row(run_map_job(experiment_job(config, id)), id);
}

std::vector<ExperimentRow> run_suite(const std::vector<ExperimentConfig>& configs,
                                     MapService& service) {
  // Deferred-build jobs: the whole suite is submitted up front, but each
  // instance is materialized inside its job and dropped with it, so peak
  // instance memory tracks the service's runner concurrency, not the
  // suite size.
  std::vector<MapJob> jobs;
  jobs.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    jobs.push_back(experiment_job(configs[i], static_cast<int>(i) + 1));
  }
  const std::vector<MapJobResult> results = service.map_batch(std::move(jobs));

  std::vector<ExperimentRow> rows;
  rows.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    // The service isolates job failures into statuses; for the experiment
    // harness an errored row would silently corrupt the table, so failures
    // surface as exceptions here (matching run_experiment's sequential
    // semantics). Cancelled/deadline rows pass through as degraded data
    // with the status recorded.
    const MapJobResult& result = results[i];
    if (result.status == MapStatus::kInvalidInput) {
      throw std::invalid_argument("run_suite: " + result.name + ": " + result.error);
    }
    if (result.status == MapStatus::kInternalError) {
      throw std::runtime_error("run_suite: " + result.name + ": " + result.error);
    }
    rows.push_back(assemble_row(result, static_cast<int>(i) + 1));
  }
  return rows;
}

std::vector<ExperimentRow> run_suite(const std::vector<ExperimentConfig>& configs) {
  MapService service;
  return run_suite(configs, service);
}

namespace {

/// A degraded row's mapping columns hold the best incumbent at the cancel
/// or deadline signal, not a completed run — analysis output marks them
/// instead of silently mixing them with finished rows.
bool is_degraded(const ExperimentRow& row) { return row.status != MapStatus::kOk; }

}  // namespace

std::string format_paper_table(const std::vector<ExperimentRow>& rows) {
  TextTable table({"expts", "our approach", "random", "improvement"});
  std::size_t degraded = 0;
  for (const ExperimentRow& row : rows) {
    const char* mark = is_degraded(row) ? "*" : "";
    if (is_degraded(row)) ++degraded;
    table.add_row({std::to_string(row.id) + mark, std::to_string(row.ours_pct) + mark,
                   std::to_string(row.random_pct), std::to_string(row.improvement) + mark});
  }
  std::string out = table.to_string();
  if (degraded > 0) {
    out += "* " + std::to_string(degraded) +
           " degraded row(s) (cancelled/deadline): best incumbent at the signal, not a "
           "completed mapping\n";
  }
  return out;
}

std::string format_csv(const std::vector<ExperimentRow>& rows) {
  TextTable table({"expt", "topology", "np", "ns", "lower_bound", "ours_total", "random_mean",
                   "ours_pct", "random_pct", "improvement", "reached_lb", "terminated_early",
                   "refine_trials", "status"});
  for (const ExperimentRow& row : rows) {
    std::ostringstream mean;
    mean << row.random_mean;
    table.add_row({std::to_string(row.id), row.topology, std::to_string(row.np),
                   std::to_string(row.ns), std::to_string(row.lower_bound),
                   std::to_string(row.ours_total), mean.str(), std::to_string(row.ours_pct),
                   std::to_string(row.random_pct), std::to_string(row.improvement),
                   row.reached_lower_bound ? "1" : "0", row.terminated_early ? "1" : "0",
                   std::to_string(row.refinement_trials), to_string(row.status)});
  }
  return table.to_csv();
}

std::string render_figure(const std::vector<ExperimentRow>& rows) {
  ChartSeries series;
  for (const ExperimentRow& row : rows) {
    series.ours_pct.push_back(row.ours_pct);
    series.random_pct.push_back(row.random_pct);
  }
  return render_range_chart(series);
}

std::string summarize_suite(const std::vector<ExperimentRow>& rows) {
  if (rows.empty()) return "(no experiments)\n";
  // Degraded rows (cancelled/deadline incumbents) are counted but kept out
  // of the aggregates — mixing partial mappings into the means would skew
  // the paper-protocol numbers without any visible trace.
  std::int64_t min_impr = 0;
  std::int64_t max_impr = 0;
  std::int64_t sum_ours = 0;
  std::int64_t sum_random = 0;
  std::size_t lb_hits = 0;
  std::size_t early = 0;
  std::int64_t complete = 0;
  std::size_t degraded = 0;
  for (const ExperimentRow& row : rows) {
    if (is_degraded(row)) {
      ++degraded;
      continue;
    }
    if (complete == 0) {
      min_impr = row.improvement;
      max_impr = row.improvement;
    }
    ++complete;
    min_impr = std::min(min_impr, row.improvement);
    max_impr = std::max(max_impr, row.improvement);
    sum_ours += row.ours_pct;
    sum_random += row.random_pct;
    if (row.reached_lower_bound) ++lb_hits;
    if (row.terminated_early) ++early;
  }
  const auto n = static_cast<std::int64_t>(rows.size());
  std::ostringstream os;
  if (complete == 0) {
    os << "experiments: " << n << ", all " << degraded
       << " degraded (cancelled/deadline) — no completed rows to aggregate\n";
    return os.str();
  }
  os << "experiments: " << n << ", mean ours: " << sum_ours / complete
     << "%, mean random: " << sum_random / complete << "%, improvement: " << min_impr << ".."
     << max_impr << " points, reached lower bound: " << lb_hits << "/" << complete
     << ", early termination: " << early << "/" << complete;
  if (degraded > 0) os << ", degraded (excluded): " << degraded << "/" << n;
  os << "\n";
  return os.str();
}

}  // namespace mimdmap
