// ASCII Gantt (time-line) charts in the style of the paper's Figs. 6, 10,
// 12 and 24: processors across, time units down, each task drawn from its
// start to its end time in its processor's column.
//
// Because the paper's evaluation model does not serialise tasks sharing a
// processor, two tasks may overlap in one column; the later-starting task
// wins the cell and the overlap is marked with '+'.
#pragma once

#include <string>

#include "core/evaluation.hpp"
#include "core/ideal_graph.hpp"
#include "core/instance.hpp"

namespace mimdmap {

/// Gantt chart of a schedule under an assignment. Rows beyond `max_rows`
/// are elided with a trailing "..." line.
[[nodiscard]] std::string render_gantt(const MappingInstance& instance,
                                       const Assignment& assignment,
                                       const ScheduleResult& schedule,
                                       std::size_t max_rows = 100);

/// Gantt chart of the ideal schedule (paper Fig. 6): clusters play the role
/// of processors of the fully connected closure.
[[nodiscard]] std::string render_ideal_gantt(const MappingInstance& instance,
                                             const IdealSchedule& ideal,
                                             std::size_t max_rows = 100);

}  // namespace mimdmap
