#include "analysis/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mimdmap {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row has wrong number of cells");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::string(width[c] - row[c].size(), ' ') << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total - 2, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c == 0 ? "" : ",") << row[c];
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace mimdmap
