// Fixed-width text tables and CSV output for bench/experiment reports.
#pragma once

#include <string>
#include <vector>

namespace mimdmap {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Right-aligned fixed-width rendering with a header separator.
  [[nodiscard]] std::string to_string() const;

  /// RFC-4180-lite CSV (no quoting needed for our numeric content).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mimdmap
