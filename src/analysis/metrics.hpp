// Quality metrics for mappings.
//
// The paper's tables report total times normalised by the ideal-graph lower
// bound: "the lower bound is used as the basis for comparisons and is set
// to 100 percent" (section 5). A value of 104 means the mapped program
// needs 4% more time than the lower bound; the improvement column is the
// difference between the random-mapping percentage and ours.
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace mimdmap {

/// round(100 * total / lower_bound) — the unit of Tables 1-3. Requires
/// lower_bound > 0.
[[nodiscard]] std::int64_t percent_over_lower_bound(Weight total, Weight lower_bound);

/// Same, for a fractional total (the random-mapping column averages several
/// trials).
[[nodiscard]] std::int64_t percent_over_lower_bound(double total, Weight lower_bound);

/// The paper's "improvement" column: random% - ours% (percentage points).
[[nodiscard]] std::int64_t improvement_points(std::int64_t ours_pct, std::int64_t random_pct);

}  // namespace mimdmap
