#include "analysis/chart.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mimdmap {

std::string render_range_chart(const ChartSeries& series, std::int64_t y_step) {
  if (series.ours_pct.size() != series.random_pct.size()) {
    throw std::invalid_argument("render_range_chart: series size mismatch");
  }
  if (y_step <= 0) throw std::invalid_argument("render_range_chart: y_step must be positive");
  const std::size_t n = series.ours_pct.size();
  if (n == 0) return "(no data)\n";

  std::int64_t top = 100;
  for (std::size_t i = 0; i < n; ++i) {
    top = std::max({top, series.ours_pct[i], series.random_pct[i]});
  }
  // Round up to the next step boundary.
  top = ((top + y_step - 1) / y_step) * y_step;

  std::ostringstream os;
  os << "% over lower bound\n";
  constexpr int kColWidth = 4;
  for (std::int64_t y = top; y >= 100; y -= y_step) {
    std::string label = std::to_string(y);
    os << std::string(5 - std::min<std::size_t>(5, label.size()), ' ') << label << " |";
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t lo = series.ours_pct[i];
      const std::int64_t hi = series.random_pct[i];
      char mark = ' ';
      // A row covers (y - y_step, y]; the endpoint marks win over the dash.
      const auto in_row = [y, y_step](std::int64_t v) {
        return v <= y && v > y - y_step;
      };
      if (in_row(hi)) {
        mark = 'x';
      } else if (in_row(lo) || (y == 100 && lo <= 100)) {
        mark = 'o';
      } else if (lo < y && y < hi) {
        mark = ':';
      }
      os << std::string(kColWidth - 1, ' ') << mark;
    }
    os << "\n";
  }
  os << "      +" << std::string(n * kColWidth, '-') << "\n";
  os << "       ";
  for (std::size_t i = 0; i < n; ++i) {
    std::string label = std::to_string(i + 1);
    if (label.size() > kColWidth - 1) label.resize(kColWidth - 1);
    os << std::string(kColWidth - label.size(), ' ') << label;
  }
  os << "  (experiment)\n";
  os << "       o = our approach, x = random mapping\n";
  return os.str();
}

}  // namespace mimdmap
