// Umbrella header: pulls in the entire mimdmap public API.
//
// Fine-grained headers remain the recommended include style inside larger
// projects; this header is for quick starts and example code.
#pragma once

#include "analysis/chart.hpp"        // IWYU pragma: export
#include "analysis/experiment.hpp"   // IWYU pragma: export
#include "analysis/gantt.hpp"        // IWYU pragma: export
#include "analysis/metrics.hpp"      // IWYU pragma: export
#include "analysis/stats.hpp"        // IWYU pragma: export
#include "analysis/table.hpp"        // IWYU pragma: export
#include "baseline/annealing.hpp"    // IWYU pragma: export
#include "baseline/bokhari.hpp"      // IWYU pragma: export
#include "baseline/exhaustive.hpp"   // IWYU pragma: export
#include "baseline/lee.hpp"          // IWYU pragma: export
#include "baseline/pairwise.hpp"     // IWYU pragma: export
#include "baseline/random_mapping.hpp"  // IWYU pragma: export
#include "cli/commands.hpp"          // IWYU pragma: export
#include "cli/flags.hpp"             // IWYU pragma: export
#include "cluster/abstract_graph.hpp"   // IWYU pragma: export
#include "cluster/cluster_io.hpp"    // IWYU pragma: export
#include "cluster/clustering.hpp"    // IWYU pragma: export
#include "cluster/strategies.hpp"    // IWYU pragma: export
#include "core/assignment.hpp"       // IWYU pragma: export
#include "core/critical.hpp"         // IWYU pragma: export
#include "core/eval_engine.hpp"      // IWYU pragma: export
#include "core/evaluation.hpp"       // IWYU pragma: export
#include "core/ideal_graph.hpp"      // IWYU pragma: export
#include "core/initial_assignment.hpp"  // IWYU pragma: export
#include "core/instance.hpp"         // IWYU pragma: export
#include "core/mapper.hpp"           // IWYU pragma: export
#include "core/refinement.hpp"       // IWYU pragma: export
#include "core/validate.hpp"         // IWYU pragma: export
#include "graph/graph_io.hpp"        // IWYU pragma: export
#include "graph/matrix.hpp"          // IWYU pragma: export
#include "graph/routing.hpp"         // IWYU pragma: export
#include "graph/shortest_paths.hpp"  // IWYU pragma: export
#include "graph/system_graph.hpp"    // IWYU pragma: export
#include "graph/task_graph.hpp"      // IWYU pragma: export
#include "graph/topological.hpp"     // IWYU pragma: export
#include "graph/types.hpp"           // IWYU pragma: export
#include "service/map_service.hpp"   // IWYU pragma: export
#include "service/thread_pool.hpp"   // IWYU pragma: export
#include "topology/factory.hpp"      // IWYU pragma: export
#include "topology/topology.hpp"     // IWYU pragma: export
#include "workload/random_dag.hpp"   // IWYU pragma: export
#include "workload/rng.hpp"          // IWYU pragma: export
#include "workload/structured.hpp"   // IWYU pragma: export
