#include "core/cancellation.hpp"

namespace mimdmap {

const char* to_string(MapStatus status) noexcept {
  switch (status) {
    case MapStatus::kOk:
      return "ok";
    case MapStatus::kCancelled:
      return "cancelled";
    case MapStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case MapStatus::kInvalidInput:
      return "invalid_input";
    case MapStatus::kInternalError:
      return "internal_error";
  }
  return "unknown";
}

namespace {

/// One tripped/deadline check over a single state node (no parent walk,
/// no poll counting).
bool node_signalled(const CancelShared& s) noexcept {
  if (s.tripped.load(std::memory_order_acquire)) return true;
  const std::int64_t deadline = s.deadline_ns.load(std::memory_order_relaxed);
  if (deadline != CancelShared::kNoDeadline) {
    const std::int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count();
    if (now >= deadline) {
      // trip() is morally non-const state mutation, but every field is an
      // atomic and the channel is designed for concurrent observers —
      // detecting an expired deadline IS a state transition of the
      // channel, whichever poller gets there first.
      const_cast<CancelShared&>(s).trip(MapStatus::kDeadlineExceeded);
      return true;
    }
  }
  return false;
}

}  // namespace

bool CancelToken::signalled() const noexcept {
  for (const CancelShared* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (node_signalled(*s)) return true;
  }
  return false;
}

bool CancelToken::stop_requested() const noexcept {
  bool hit = false;
  for (const CancelShared* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (node_signalled(*s)) {
      hit = true;
      continue;  // keep counting deeper nodes' poll budgets deterministic
    }
    const std::int64_t after = s->trip_after.load(std::memory_order_relaxed);
    if (after >= 0) {
      auto& counter = const_cast<CancelShared*>(s)->polls;
      if (counter.fetch_add(1, std::memory_order_relaxed) >= after) {
        const_cast<CancelShared*>(s)->trip(MapStatus::kCancelled);
        hit = true;
      }
    }
  }
  return hit;
}

CancelSource::CancelSource(CancelToken parent) : state_(std::make_shared<CancelShared>()) {
  state_->parent = std::move(parent.state_);
}

}  // namespace mimdmap
