// Refinement with the lower-bound termination condition (paper sections
// 4.3.1 and 4.3.3).
//
// Starting from the initial assignment, up to ns trials each randomly
// re-place the *non-critical* abstract nodes onto the processors not
// occupied by critical abstract nodes (the pinned set from the initial
// assignment); a trial is kept iff it strictly improves total time. The
// search stops immediately when the total time reaches the ideal-graph
// lower bound — by Theorem 3 that assignment is optimal, so any further
// refinement would be wasted ("stops unnecessary refinement and reduces
// both searching space and mapping time").
//
// Deviation (documented in DESIGN.md section 6): when pinning leaves fewer
// than two movable clusters — possible on dense abstract graphs where
// almost every cluster touches a critical edge, a case the paper does not
// discuss — refinement falls back to re-placing *all* clusters. The
// keep-iff-better rule makes the fallback strictly safe.
#pragma once

#include <cstdint>

#include "core/assignment.hpp"
#include "core/cancellation.hpp"
#include "core/eval_engine.hpp"
#include "core/evaluation.hpp"
#include "core/ideal_graph.hpp"
#include "core/initial_assignment.hpp"
#include "core/instance.hpp"

namespace mimdmap {

struct RefineOptions {
  /// Number of random re-placement trials; -1 means ns (the paper's
  /// choice: "A total of ns changes are allowed").
  std::int64_t max_trials = -1;

  /// Seed for the random re-placements.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;

  /// Keep the paper's pinning of critical abstract nodes. Disabling it
  /// lets every cluster move (ablation).
  bool respect_pinned = true;

  /// Disable the lower-bound termination condition (ablation: measures how
  /// many trials the condition saves).
  bool use_termination_condition = true;

  /// Evaluation model used for all trials.
  EvalOptions eval;

  /// Worker threads for trial evaluation. The candidate re-placements
  /// depend only on the RNG stream — never on which trials were accepted —
  /// so they are generated lazily in fixed-size chunks and evaluated
  /// speculatively in parallel on the engine's persistent pool, then
  /// scanned in order; the result is bit-identical to the sequential run
  /// for any thread count, and early termination still skips the chunks it
  /// never reaches. 0 means "auto": the engine calibrates with a few timed
  /// warm-up trials and drops to sequential when the per-trial cost is
  /// below the measured chunk-sync overhead
  /// (EvalEngine::resolve_num_threads). Negative values and 1 run
  /// sequentially (chunk size 1, fully lazy).
  int num_threads = 1;

  /// Candidates per SoA evaluation wave (EvalEngine::evaluate_batch_soa):
  /// each wave scores its candidates in one walk over the topo order, with
  /// per-lane early exit against the incumbent best. > 0 forces the width;
  /// 0 means "auto" — the MIMDMAP_EVAL_WIDTH environment variable when
  /// set, else a width fitted to the per-lane cache footprint
  /// (EvalEngine::resolve_batch_width). Negative values and 1 keep every
  /// candidate on the scalar trial kernel. The trial sequence, accept
  /// stream and final report are bit-identical for every width.
  int eval_width = 0;

  /// Cooperative cancellation / deadline (core/cancellation.hpp). Polled
  /// once per evaluation wave (refine) or per move (the local-move
  /// refiners): a tripped token makes the loop stop at the next poll and
  /// return the best incumbent found so far with RefineResult::status set
  /// — a degraded but valid result, never garbage. An empty token (the
  /// default) costs one null check per poll, and any run whose token never
  /// trips is bit-identical to a run without one.
  CancelToken cancel;
};

struct RefineResult {
  Assignment assignment;
  ScheduleResult schedule;
  Weight lower_bound = 0;
  Weight initial_total = 0;
  /// True iff the final total time equals the lower bound (optimal by
  /// Theorem 3).
  bool reached_lower_bound = false;
  /// True iff the search stopped early *because of* the termination
  /// condition (i.e. before exhausting the trial budget).
  bool terminated_early = false;
  std::int64_t trials_used = 0;
  std::int64_t improvements = 0;
  /// Incremental-evaluation counters, filled by the local-move refiners
  /// (baseline/pairwise.hpp) that score trials on a DeltaEval; refine()'s
  /// whole-assignment re-placements stay on the batched full kernel and
  /// leave this zeroed.
  DeltaStats delta;
  /// kOk for a full run; kCancelled / kDeadlineExceeded when
  /// RefineOptions::cancel stopped the search early — assignment/schedule
  /// then hold the best incumbent reached before the signal.
  MapStatus status = MapStatus::kOk;
};

/// Runs the refinement procedure of section 4.3.3 from a given initial
/// assignment, hammering the given evaluation engine. Trial evaluation
/// performs zero steady-state heap allocations; candidates are generated in
/// chunks that reuse one scratch host vector per lane.
[[nodiscard]] RefineResult refine(const EvalEngine& engine, const IdealSchedule& ideal,
                                  const InitialAssignmentResult& initial,
                                  const RefineOptions& options = {});

/// Convenience overload that builds a one-shot engine for the instance.
[[nodiscard]] RefineResult refine(const MappingInstance& instance, const IdealSchedule& ideal,
                                  const InitialAssignmentResult& initial,
                                  const RefineOptions& options = {});

}  // namespace mimdmap
