#include "core/mapper.hpp"

#include "obs/trace.hpp"

namespace mimdmap {

std::int64_t MappingReport::percent_over_lower_bound() const {
  if (lower_bound <= 0) return 0;
  return (schedule.total_time * 100 + lower_bound / 2) / lower_bound;
}

MappingReport map_instance(const MappingInstance& instance, const MapperOptions& options) {
  const EvalEngine engine(instance);
  return map_instance(engine, options);
}

MappingReport map_instance(const EvalEngine& engine, const MapperOptions& options) {
  if (options.multilevel.enabled) return map_multilevel(engine, options);
  return detail::map_flat(engine, options);
}

MappingReport detail::map_flat(const EvalEngine& engine, const MapperOptions& options) {
  const MappingInstance& instance = engine.instance();
  MappingReport report;
  {
    const obs::Span span("ideal_schedule", "mapper");
    report.ideal = compute_ideal_schedule(instance);
  }
  report.lower_bound = report.ideal.lower_bound;
  {
    const obs::Span span("find_critical", "mapper");
    report.critical = find_critical(instance, report.ideal, options.critical);
  }

  obs::Span initial_span("initial_assignment", "mapper");
  const InitialAssignmentResult initial = initial_assignment(instance, report.critical);
  report.initial_assignment = initial.assignment;
  report.pinned = initial.pinned;
  report.initial_total =
      engine.evaluate(initial.assignment, options.refine.eval).total_time;
  initial_span.end();

  // Stage boundary: a signal that lands before refinement starts skips it
  // entirely and ships the initial assignment as the (degraded but valid)
  // final result. Non-counting poll — the deterministic per-move counters
  // only start inside the refinement loops.
  if (options.refine.cancel.signalled()) {
    report.assignment = initial.assignment;
    report.schedule = engine.evaluate(initial.assignment, options.refine.eval);
    report.reached_lower_bound = report.schedule.total_time == report.lower_bound;
    report.status = options.refine.cancel.status();
    report.eval_width =
        engine.resolve_batch_width(options.refine.eval_width, options.refine.eval);
    return report;
  }

  const obs::Span refine_span("refine", "mapper");
  const RefineResult refined = refine(engine, report.ideal, initial, options.refine);
  report.assignment = refined.assignment;
  report.schedule = refined.schedule;
  report.reached_lower_bound = refined.reached_lower_bound;
  report.terminated_early = refined.terminated_early;
  report.refinement_trials = refined.trials_used;
  report.improvements = refined.improvements;
  report.delta = refined.delta;
  report.status = refined.status;
  report.eval_width = engine.resolve_batch_width(options.refine.eval_width, options.refine.eval);
  return report;
}

}  // namespace mimdmap
