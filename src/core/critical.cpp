#include "core/critical.hpp"

#include <vector>

namespace mimdmap {

Weight CriticalInfo::critical_weight(NodeId from, NodeId to) const {
  for (const TaskEdge& e : critical_edges) {
    if (e.from == from && e.to == to) return e.weight;
  }
  return 0;
}

CriticalInfo find_critical(const MappingInstance& instance, const IdealSchedule& ideal,
                           const CriticalOptions& options) {
  const TaskGraph& problem = instance.problem();
  const Clustering& clustering = instance.clustering();
  const NodeId np = problem.node_count();
  const NodeId na = instance.num_processors();

  CriticalInfo info;
  info.c_abs_edge = Matrix<Weight>::square(idx(na), 0);
  info.critical_degree.assign(idx(na), 0);

  // Worklist LS, seeded with the latest tasks (paper algorithm I, step 1).
  std::vector<char> in_ls(idx(np), 0);
  std::vector<NodeId> worklist;
  for (const NodeId v : ideal.latest_tasks) {
    in_ls[idx(v)] = 1;
    worklist.push_back(v);
  }

  // Step 2: walk backward through zero-slack edges.
  while (!worklist.empty()) {
    const NodeId i = worklist.back();
    worklist.pop_back();
    for (const auto& [j, prob_w] : problem.predecessors(i)) {
      const Weight cw = clustering.same_cluster(j, i) ? 0 : prob_w;
      if (cw > 0) {
        // Inter-cluster edge: critical iff i_edge[j][i] == clus_edge[j][i],
        // i.e. end[j] + cw == start[i] (zero slack).
        if (ideal.end[idx(j)] + cw == ideal.start[idx(i)]) {
          // Each node i is popped at most once (in_ls guards every push)
          // and predecessors are duplicate-free, so edge (j, i) is examined
          // exactly once — no dedup needed.
          info.critical_edges.push_back(TaskEdge{j, i, cw});
          if (!in_ls[idx(j)]) {
            in_ls[idx(j)] = 1;
            worklist.push_back(j);
          }
        }
      } else if (options.propagate_through_intra_cluster) {
        // Intra-cluster precedence (weight removed by clustering): it can
        // never itself be critical, but a zero-slack one transmits delay
        // upstream exactly like Lemma 1 with zero communication.
        if (ideal.end[idx(j)] == ideal.start[idx(i)] && !in_ls[idx(j)]) {
          in_ls[idx(j)] = 1;
          worklist.push_back(j);
        }
      }
    }
  }

  // Algorithms II-III: aggregate to abstract edges and critical degrees.
  for (const TaskEdge& e : info.critical_edges) {
    const NodeId ca = clustering.cluster_of(e.from);
    const NodeId cb = clustering.cluster_of(e.to);
    info.c_abs_edge(idx(ca), idx(cb)) += e.weight;
    info.c_abs_edge(idx(cb), idx(ca)) += e.weight;
  }
  for (NodeId a = 0; a < na; ++a) {
    Weight sum = 0;
    for (NodeId b = 0; b < na; ++b) sum += info.c_abs_edge(idx(a), idx(b));
    info.critical_degree[idx(a)] = sum;
  }
  return info;
}

std::vector<TaskEdge> critical_edges_oracle(const TaskGraph& problem,
                                            const Matrix<Weight>& clus_edge) {
  const Weight base = compute_ideal_schedule(problem, clus_edge).lower_bound;
  std::vector<TaskEdge> critical;
  Matrix<Weight> perturbed = clus_edge;
  for (const TaskEdge& e : problem.edges()) {
    Weight& cell = perturbed(idx(e.from), idx(e.to));
    if (cell == 0) continue;  // intra-cluster: not part of the clustered graph
    cell += 1;
    const Weight bumped = compute_ideal_schedule(problem, perturbed).lower_bound;
    cell -= 1;
    if (bumped > base) critical.push_back(TaskEdge{e.from, e.to, cell});
  }
  return critical;
}

}  // namespace mimdmap
