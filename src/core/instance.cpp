#include "core/instance.hpp"

#include <stdexcept>

#include "graph/shortest_paths.hpp"

namespace mimdmap {

MappingInstance::MappingInstance(TaskGraph problem, Clustering clustering, SystemGraph system,
                                 DistanceModel distance_model)
    : problem_(std::move(problem)),
      clustering_(std::move(clustering)),
      system_(std::move(system)),
      distance_model_(distance_model) {
  problem_.validate();
  system_.validate();
  if (clustering_.num_tasks() != problem_.node_count()) {
    throw std::invalid_argument("MappingInstance: clustering covers wrong task count");
  }
  if (clustering_.num_clusters() != system_.node_count()) {
    throw std::invalid_argument(
        "MappingInstance: cluster count must equal processor count (na == ns)");
  }
  abstract_ = AbstractGraph(problem_, clustering_);
  clus_edge_ = clustered_edge_matrix(problem_, clustering_);
  hops_ = distance_model_ == DistanceModel::kHops ? all_pairs_hops(system_)
                                                  : floyd_warshall(system_);
}

}  // namespace mimdmap
