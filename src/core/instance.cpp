#include "core/instance.hpp"

#include <atomic>
#include <stdexcept>

#include "graph/shortest_paths.hpp"

namespace mimdmap {
namespace {

std::atomic<int> g_live_instances{0};
std::atomic<int> g_peak_live_instances{0};

void count_instance_up() noexcept {
  const int now = g_live_instances.fetch_add(1, std::memory_order_relaxed) + 1;
  int peak = g_peak_live_instances.load(std::memory_order_relaxed);
  while (peak < now &&
         !g_peak_live_instances.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

}  // namespace

MappingInstance::LiveCounter::LiveCounter() noexcept { count_instance_up(); }
MappingInstance::LiveCounter::LiveCounter(const LiveCounter&) noexcept { count_instance_up(); }
MappingInstance::LiveCounter::LiveCounter(LiveCounter&&) noexcept { count_instance_up(); }
MappingInstance::LiveCounter::~LiveCounter() {
  g_live_instances.fetch_sub(1, std::memory_order_relaxed);
}

int MappingInstance::live_count() noexcept {
  return g_live_instances.load(std::memory_order_relaxed);
}

int MappingInstance::peak_live_count() noexcept {
  return g_peak_live_instances.load(std::memory_order_relaxed);
}

void MappingInstance::reset_peak_live_count() noexcept {
  g_peak_live_instances.store(g_live_instances.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
}

const Matrix<Weight>& MappingInstance::clus_edge() const {
  const std::lock_guard<std::mutex> lock(*clus_edge_mutex_);
  if (!clus_edge_built_) {
    clus_edge_ = clustered_edge_matrix(problem_, clustering_);
    clus_edge_built_ = true;
  }
  return clus_edge_;
}

MappingInstance::MappingInstance(TaskGraph problem, Clustering clustering, SystemGraph system,
                                 DistanceModel distance_model)
    : problem_(std::move(problem)),
      clustering_(std::move(clustering)),
      system_(std::move(system)),
      distance_model_(distance_model) {
  init_derived();
}

MappingInstance::MappingInstance(TaskGraph problem, Clustering clustering, SystemGraph system,
                                 std::shared_ptr<const TopologyTables> tables)
    : problem_(std::move(problem)),
      clustering_(std::move(clustering)),
      system_(std::move(system)),
      tables_(std::move(tables)) {
  if (tables_ == nullptr) {
    throw std::invalid_argument("MappingInstance: shared topology tables are null");
  }
  if (tables_->ns != system_.node_count()) {
    throw std::invalid_argument(
        "MappingInstance: shared topology tables were built for a different machine size");
  }
  distance_model_ = tables_->model;
  init_derived();
}

void MappingInstance::init_derived() {
  problem_.validate();
  system_.validate();
  if (clustering_.num_tasks() != problem_.node_count()) {
    throw std::invalid_argument("MappingInstance: clustering covers wrong task count");
  }
  if (clustering_.num_clusters() != system_.node_count()) {
    throw std::invalid_argument(
        "MappingInstance: cluster count must equal processor count (na == ns)");
  }
  abstract_ = AbstractGraph(problem_, clustering_);
  if (tables_ == nullptr) {
    hops_ = distance_model_ == DistanceModel::kHops ? all_pairs_hops(system_)
                                                    : floyd_warshall(system_);
  }
}

}  // namespace mimdmap
