// Cooperative cancellation, deadlines and the job-status taxonomy — the
// fault-tolerance substrate under MapService (ROADMAP "MapService ->
// mapping server": deadline-aware scheduling with cooperative
// cancellation).
//
// Design constraints, in order:
//
//  * poll-only, no locks on the hot path: the refinement loops poll a
//    CancelToken once per wave/move; an unset token costs one pointer
//    null-check, a set one a relaxed atomic load (plus a steady_clock read
//    only when a deadline is armed). Nothing here blocks, allocates after
//    construction, or takes a mutex;
//  * graceful degradation, never garbage: a tripped token makes the search
//    loops stop *at the next poll* and return their best incumbent so far
//    as a valid (degraded) result carrying a MapStatus — it never corrupts
//    or truncates state mid-move. Jobs whose token never trips are
//    bit-identical to a run without any token (polling reads nothing that
//    feeds back into mapping decisions);
//  * first cause wins: a token trips exactly once (cancel vs deadline race
//    resolves to whichever CAS lands first) and the status is sticky;
//  * deterministic test hook: CancelSource::cancel_after_polls(k) trips
//    the token on its (k+1)-th *counting* poll — the refiners' documented
//    per-move/per-wave poll points — so tests can cancel at an exact move
//    index and compare against the truncated sequential run
//    (tests/cancellation_test.cpp). The non-counting signalled() check
//    used at finer granularity (inside SoA wave fan-out, pipeline stage
//    boundaries) never consumes the counter.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace mimdmap {

/// Terminal status of a mapping job. Everything except kOk means the
/// result is degraded: kCancelled / kDeadlineExceeded reports still carry
/// the best incumbent found before the signal (valid, just not the full
/// search), kInvalidInput / kInternalError reports carry no mapping at all
/// (the error message says why).
enum class MapStatus : std::uint8_t {
  kOk = 0,
  kCancelled,
  kDeadlineExceeded,
  kInvalidInput,
  kInternalError,
};

[[nodiscard]] const char* to_string(MapStatus status) noexcept;

/// Shared state behind a CancelSource and its tokens. All fields are
/// atomics; polling never locks.
struct CancelShared {
  static constexpr std::int64_t kNoDeadline = std::numeric_limits<std::int64_t>::max();

  std::atomic<bool> tripped{false};
  std::atomic<std::uint8_t> reason{static_cast<std::uint8_t>(MapStatus::kOk)};
  /// Absolute deadline in steady_clock nanoseconds-since-epoch.
  std::atomic<std::int64_t> deadline_ns{kNoDeadline};
  /// Deterministic trip: >= 0 arms "trip after this many counting polls".
  std::atomic<std::int64_t> trip_after{-1};
  std::atomic<std::int64_t> polls{0};
  /// Chained parent (a service-level cancel_all token under a per-job
  /// token, or a caller token under the service's per-job source). Set at
  /// construction, immutable afterwards.
  std::shared_ptr<const CancelShared> parent;

  /// Trips with `cause` unless already tripped (first cause wins).
  void trip(MapStatus cause) noexcept {
    std::uint8_t expected = static_cast<std::uint8_t>(MapStatus::kOk);
    reason.compare_exchange_strong(expected, static_cast<std::uint8_t>(cause),
                                   std::memory_order_relaxed);
    tripped.store(true, std::memory_order_release);
  }
};

/// Poll-only view of a cancellation request. Default-constructed tokens
/// are empty: they never trip and polling them is a single null check, so
/// every options struct can carry one at zero cost to callers that never
/// set it.
class CancelToken {
 public:
  CancelToken() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Counting poll — the refinement loops' documented cancellation points
  /// (one per wave / move). Checks the deadline clock and the
  /// cancel_after_polls counter, trips the shared state when either
  /// fires, and returns whether the token has tripped.
  [[nodiscard]] bool stop_requested() const noexcept;

  /// Non-counting check: tripped flag + deadline clock only; never
  /// consumes cancel_after_polls budget. Used at sub-wave granularity
  /// (inside SoA wave fan-out) and at pipeline stage boundaries so the
  /// deterministic counting contract stays "one poll per wave/move".
  [[nodiscard]] bool signalled() const noexcept;

  /// Why the token tripped; kOk while it has not.
  [[nodiscard]] MapStatus status() const noexcept {
    const CancelShared* s = state_.get();
    while (s != nullptr) {
      if (s->tripped.load(std::memory_order_acquire)) {
        return static_cast<MapStatus>(s->reason.load(std::memory_order_relaxed));
      }
      s = s->parent.get();
    }
    return MapStatus::kOk;
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const CancelShared> state) : state_(std::move(state)) {}

  std::shared_ptr<const CancelShared> state_;
};

/// Owning side of a cancellation channel. Copyable (copies share the same
/// channel); hand out token() to the job path.
class CancelSource {
 public:
  /// A fresh channel, optionally chained under `parent`: tokens of this
  /// source also trip when the parent trips (MapService chains its
  /// per-job source under the submitter's token and its service-wide
  /// cancel_all source).
  explicit CancelSource(CancelToken parent = {});

  [[nodiscard]] CancelToken token() const noexcept { return CancelToken(state_); }

  /// Requests cancellation (status kCancelled unless something tripped
  /// the channel first). Thread-safe, idempotent.
  void request_cancel() const noexcept { state_->trip(MapStatus::kCancelled); }

  /// Arms an absolute deadline; polls after this instant trip the token
  /// with kDeadlineExceeded.
  void set_deadline(std::chrono::steady_clock::time_point when) const noexcept {
    state_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(when.time_since_epoch()).count(),
        std::memory_order_relaxed);
  }

  /// Convenience: deadline `ms` milliseconds from now (ms <= 0 trips the
  /// very next poll — an already-expired budget).
  void set_deadline_after_ms(std::int64_t ms) const noexcept {
    set_deadline(std::chrono::steady_clock::now() + std::chrono::milliseconds(ms));
  }

  /// Deterministic trip after exactly `polls` counting polls: the first
  /// `polls` stop_requested() calls return false, every later one true.
  /// Test/chaos hook; see the header comment.
  void cancel_after_polls(std::int64_t polls) const noexcept {
    state_->trip_after.store(polls, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<CancelShared> state_;
};

}  // namespace mimdmap
