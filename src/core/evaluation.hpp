// Total-time evaluation of an assignment (paper section 4.3.4).
//
// Under an assignment, a message between tasks i and j costs
// clus_edge[i][j] * hops(host(i), host(j)) — the paper's communication
// matrix comm[np][np] (algorithm I, Fig. 23-c). Scheduling then follows the
// same recurrence as the ideal graph (algorithm II); the total time is the
// latest end time (algorithm III).
//
// The paper's model starts a task as soon as its precedence+communication
// constraints allow, even if another task of the same cluster is still
// running (processors are not serialised — visible in Fig. 24 where tasks
// of one cluster simply stack by dependence). `EvalOptions::
// serialize_within_processor` adds the realistic constraint that one
// processor executes one task at a time (list scheduling in topological
// order), as an extension; all paper benches leave it off.
#pragma once

#include <vector>

#include "core/assignment.hpp"
#include "core/instance.hpp"
#include "graph/matrix.hpp"

namespace mimdmap {

struct EvalOptions {
  /// Extension: serialise tasks that share a processor (earliest-ready
  /// first in deterministic topological order).
  bool serialize_within_processor = false;

  /// Extension: store-and-forward link contention. The paper charges a
  /// k-hop message k * weight time units regardless of traffic; with this
  /// flag each message follows a fixed deterministic shortest route
  /// (RoutingTable) and every link carries one message at a time, so
  /// messages sharing a link serialise. Without competing traffic the cost
  /// reduces exactly to the paper's k * weight. Messages claim links in
  /// deterministic order (receivers in topological order, predecessors in
  /// edge-insertion order).
  bool link_contention = false;
};

/// Schedule of the clustered problem graph under a concrete assignment —
/// the paper's start[np] / end[np] matrices (Fig. 23-d).
struct ScheduleResult {
  std::vector<Weight> start;
  std::vector<Weight> end;
  /// The paper's total_time = max end (algorithm III).
  Weight total_time = 0;
  /// Tasks whose end time equals total_time.
  std::vector<NodeId> latest_tasks;
};

/// The communication matrix comm[np][np] under an assignment (algorithm I).
/// comm[i][j] = clus_edge[i][j] * hops(host(i), host(j)); intra-cluster
/// pairs and non-edges are 0.
[[nodiscard]] Matrix<Weight> communication_matrix(const MappingInstance& instance,
                                                  const Assignment& assignment);

/// Evaluates the total time of an assignment (algorithms I-III).
///
/// Thin wrapper that builds a one-shot EvalEngine (core/eval_engine.hpp);
/// search loops that evaluate many assignments of one instance should build
/// the engine once and reuse it.
[[nodiscard]] ScheduleResult evaluate(const MappingInstance& instance,
                                      const Assignment& assignment,
                                      const EvalOptions& options = {});

/// Convenience: just the total time.
[[nodiscard]] Weight total_time(const MappingInstance& instance, const Assignment& assignment,
                                const EvalOptions& options = {});

/// The original straight-line evaluation, retained verbatim as the oracle
/// for the engine-equivalence suite (tests/eval_engine_test.cpp) and the
/// legacy side of the bench/micro_core.cpp engine-vs-legacy benchmarks.
/// Recomputes the topological order, reallocates every buffer and (under
/// link_contention) rebuilds a RoutingTable per call; bit-identical results
/// to evaluate() in all three modes.
[[nodiscard]] ScheduleResult evaluate_reference(const MappingInstance& instance,
                                                const Assignment& assignment,
                                                const EvalOptions& options = {});

}  // namespace mimdmap
