// Ideal graph Gi and the lower bound (paper sections 2.1, 4.1).
//
// The ideal graph is the schedule of the clustered problem graph on the
// *system graph closure* (fully connected topology): every inter-cluster
// message costs exactly its clustered edge weight, so
//
//     i_start[i] = max over predecessors j of (i_end[j] + clus_edge[j][i])
//     i_end[i]   = i_start[i] + task_size[i]
//
// Predecessors come from the *problem* graph — an intra-cluster edge is
// removed from clus_edge but its precedence still constrains the schedule
// with zero communication (paper's worked example: task 4 depends on task 1
// through a removed edge).
//
// The makespan of this schedule is a lower bound on the total time of any
// assignment (Theorem 3) and drives the refinement termination condition.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "graph/matrix.hpp"

namespace mimdmap {

/// Start/end times of every task on the closure; the paper's i_start[np] /
/// i_end[np] matrices (Fig. 22-b).
struct IdealSchedule {
  std::vector<Weight> start;
  std::vector<Weight> end;
  /// max over tasks of end time — the lower bound on total time.
  Weight lower_bound = 0;
  /// The paper's "latest tasks": all tasks whose end time equals the lower
  /// bound (Fig. 6 has two, tasks 9 and 11).
  std::vector<NodeId> latest_tasks;
};

/// Computes the ideal schedule for an instance (paper algorithm I/II of
/// section 4.1).
[[nodiscard]] IdealSchedule compute_ideal_schedule(const MappingInstance& instance);

/// As above but against an explicit clustered-edge matrix; used internally
/// and by the criticality oracle, which perturbs single entries.
[[nodiscard]] IdealSchedule compute_ideal_schedule(const TaskGraph& problem,
                                                   const Matrix<Weight>& clus_edge);

/// The ideal edge matrix i_edge[np][np] (paper algorithm III, Fig. 22-a):
/// for every clustered edge (j, i), i_edge[j][i] = i_start[i] - i_end[j].
/// Entries for absent or intra-cluster edges stay 0. Every entry satisfies
/// i_edge[j][i] >= clus_edge[j][i] (slack is non-negative).
[[nodiscard]] Matrix<Weight> ideal_edge_matrix(const TaskGraph& problem,
                                               const Matrix<Weight>& clus_edge,
                                               const IdealSchedule& schedule);

}  // namespace mimdmap
