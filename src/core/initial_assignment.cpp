#include "core/initial_assignment.hpp"

#include <vector>

namespace mimdmap {
namespace {

/// Bundles the bookkeeping shared by the three steps.
class Builder {
 public:
  Builder(const MappingInstance& instance, const CriticalInfo& critical)
      : instance_(instance),
        critical_(critical),
        n_(instance.num_processors()),
        assignment_(Assignment::partial(n_)),
        visited_abs_(idx(n_), false),
        visited_sys_(idx(n_), false),
        pinned_(idx(n_), false) {}

  InitialAssignmentResult run() {
    seed();
    grow_critical();
    grow_remainder();
    return InitialAssignmentResult{assignment_, pinned_};
  }

 private:
  // ---- ranking helpers (ties always break toward the smaller id) ----

  /// Unvisited system node with maximum degree.
  NodeId best_free_processor() const {
    NodeId best = Assignment::kUnassigned;
    for (NodeId p = 0; p < n_; ++p) {
      if (visited_sys_[idx(p)]) continue;
      if (best == Assignment::kUnassigned ||
          instance_.system().degree(p) > instance_.system().degree(best)) {
        best = p;
      }
    }
    return best;
  }

  /// Unvisited system node adjacent to `anchor_proc` with maximum degree;
  /// kUnassigned when every neighbour is taken.
  NodeId best_free_neighbor(NodeId anchor_proc) const {
    NodeId best = Assignment::kUnassigned;
    for (const auto& [p, w] : instance_.system().neighbors(anchor_proc)) {
      if (visited_sys_[idx(p)]) continue;
      if (best == Assignment::kUnassigned ||
          instance_.system().degree(p) > instance_.system().degree(best) ||
          (instance_.system().degree(p) == instance_.system().degree(best) && p < best)) {
        best = p;
      }
    }
    return best;
  }

  /// Unvisited system node closest to `anchor_proc` (paper step 2c/3c);
  /// ties by larger degree, then smaller id.
  NodeId closest_free_processor(NodeId anchor_proc) const {
    const auto& hops = instance_.hops();
    NodeId best = Assignment::kUnassigned;
    for (NodeId p = 0; p < n_; ++p) {
      if (visited_sys_[idx(p)]) continue;
      if (best == Assignment::kUnassigned) {
        best = p;
        continue;
      }
      const Weight dp = hops(idx(anchor_proc), idx(p));
      const Weight db = hops(idx(anchor_proc), idx(best));
      if (dp < db || (dp == db && instance_.system().degree(p) > instance_.system().degree(best))) {
        best = p;
      }
    }
    return best;
  }

  /// Places `cluster` anchored at placed cluster `anchor` (steps 2b/2c and
  /// 3b/3c): adjacent free processor if possible (returns true → caller may
  /// pin), else the closest free processor (returns false).
  bool place_anchored(NodeId cluster, NodeId anchor) {
    const NodeId anchor_proc = assignment_.host_of(anchor);
    NodeId p = best_free_neighbor(anchor_proc);
    const bool adjacent = p != Assignment::kUnassigned;
    if (!adjacent) p = closest_free_processor(anchor_proc);
    place(cluster, p);
    return adjacent;
  }

  void place(NodeId cluster, NodeId processor) {
    assignment_.place(cluster, processor);
    visited_abs_[idx(cluster)] = true;
    visited_sys_[idx(processor)] = true;
  }

  // ---- the three steps ----

  void seed() {
    if (n_ == 0) return;
    // Step 1a: system node of maximum degree.
    const NodeId vs = best_free_processor();
    // Step 1b: abstract node of maximum critical degree.
    NodeId va = 0;
    for (NodeId a = 1; a < n_; ++a) {
      if (critical_.critical_degree[idx(a)] > critical_.critical_degree[idx(va)]) va = a;
    }
    // Step 1c. The paper marks the seed as a critical abstract node
    // unconditionally; definition 5 requires a critical edge, so the mark
    // is only meaningful when one exists.
    place(va, vs);
    if (critical_.critical_degree[idx(va)] > 0) pinned_[idx(va)] = true;
  }

  /// Step 2: place every abstract node that has critical abstract edges.
  void grow_critical() {
    while (true) {
      // Candidate pool: unvisited nodes with a positive critical degree.
      bool any_left = false;
      NodeId best = Assignment::kUnassigned;   // max critical degree w/ anchor
      NodeId best_anchor = Assignment::kUnassigned;
      NodeId orphan = Assignment::kUnassigned;  // max critical degree w/o anchor
      for (NodeId a = 0; a < n_; ++a) {
        if (visited_abs_[idx(a)] || critical_.critical_degree[idx(a)] <= 0) continue;
        any_left = true;
        const NodeId anchor = critical_anchor(a);
        if (anchor != Assignment::kUnassigned) {
          if (best == Assignment::kUnassigned ||
              critical_.critical_degree[idx(a)] > critical_.critical_degree[idx(best)]) {
            best = a;
            best_anchor = anchor;
          }
        } else if (orphan == Assignment::kUnassigned ||
                   critical_.critical_degree[idx(a)] > critical_.critical_degree[idx(orphan)]) {
          orphan = a;
        }
      }
      if (!any_left) return;

      if (best != Assignment::kUnassigned) {
        // Steps 2a/2b/2c.
        const bool adjacent = place_anchored(best, best_anchor);
        if (adjacent) pinned_[idx(best)] = true;
      } else {
        // Fallback (disconnected critical subgraph): seed a new region.
        place(orphan, best_free_processor());
        pinned_[idx(orphan)] = true;
      }
    }
  }

  /// Placed cluster connected to `a` through a critical abstract edge;
  /// prefers the heaviest such edge. kUnassigned when none exists.
  NodeId critical_anchor(NodeId a) const {
    NodeId anchor = Assignment::kUnassigned;
    Weight best_w = 0;
    for (NodeId b = 0; b < n_; ++b) {
      if (!visited_abs_[idx(b)]) continue;
      const Weight w = critical_.c_abs_edge(idx(a), idx(b));
      if (w > best_w) {
        best_w = w;
        anchor = b;
      }
    }
    return anchor;
  }

  /// Step 3: place the remaining abstract nodes by communication intensity.
  void grow_remainder() {
    const AbstractGraph& abs = instance_.abstract();
    while (true) {
      bool any_left = false;
      NodeId best = Assignment::kUnassigned;
      NodeId best_anchor = Assignment::kUnassigned;
      NodeId orphan = Assignment::kUnassigned;
      for (NodeId a = 0; a < n_; ++a) {
        if (visited_abs_[idx(a)]) continue;
        any_left = true;
        const NodeId anchor = traffic_anchor(a);
        if (anchor != Assignment::kUnassigned) {
          if (best == Assignment::kUnassigned || abs.mca(a) > abs.mca(best)) {
            best = a;
            best_anchor = anchor;
          }
        } else if (orphan == Assignment::kUnassigned || abs.mca(a) > abs.mca(orphan)) {
          orphan = a;
        }
      }
      if (!any_left) return;

      if (best != Assignment::kUnassigned) {
        place_anchored(best, best_anchor);  // steps 3a/3b/3c; never pins
      } else {
        // Fallback (abstract graph disconnected): new region.
        place(orphan, best_free_processor());
      }
    }
  }

  /// Placed cluster connected to `a` through the heaviest abstract edge.
  NodeId traffic_anchor(NodeId a) const {
    const AbstractGraph& abs = instance_.abstract();
    NodeId anchor = Assignment::kUnassigned;
    Weight best_w = 0;
    for (const NodeId b : abs.neighbors(a)) {
      if (!visited_abs_[idx(b)]) continue;
      const Weight w = abs.edge_traffic(a, b);
      if (w > best_w || (w == best_w && anchor != Assignment::kUnassigned && b < anchor)) {
        best_w = w;
        anchor = b;
      }
    }
    return anchor;
  }

  const MappingInstance& instance_;
  const CriticalInfo& critical_;
  NodeId n_;
  Assignment assignment_;
  std::vector<bool> visited_abs_;
  std::vector<bool> visited_sys_;
  std::vector<bool> pinned_;
};

}  // namespace

InitialAssignmentResult initial_assignment(const MappingInstance& instance,
                                           const CriticalInfo& critical) {
  return Builder(instance, critical).run();
}

}  // namespace mimdmap
