#include "core/ideal_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/topological.hpp"

namespace mimdmap {

IdealSchedule compute_ideal_schedule(const MappingInstance& instance) {
  // Same recurrence as the matrix overload below, but the clustered weight
  // comes straight off the adjacency lists (0 intra-cluster, edge weight
  // otherwise) so huge instances never materialize the dense clus_edge.
  const TaskGraph& problem = instance.problem();
  const Clustering& clustering = instance.clustering();
  const auto order = topological_order(problem);
  if (!order) throw std::invalid_argument("compute_ideal_schedule: problem graph has a cycle");

  const NodeId np = problem.node_count();
  IdealSchedule s;
  s.start.assign(idx(np), 0);
  s.end.assign(idx(np), 0);

  for (const NodeId v : *order) {
    Weight start = 0;
    for (const auto& [pred, w] : problem.predecessors(v)) {
      const Weight cw = clustering.same_cluster(pred, v) ? 0 : w;
      start = std::max(start, s.end[idx(pred)] + cw);
    }
    s.start[idx(v)] = start;
    s.end[idx(v)] = start + problem.node_weight(v);
    s.lower_bound = std::max(s.lower_bound, s.end[idx(v)]);
  }
  for (NodeId v = 0; v < np; ++v) {
    if (s.end[idx(v)] == s.lower_bound) s.latest_tasks.push_back(v);
  }
  return s;
}

IdealSchedule compute_ideal_schedule(const TaskGraph& problem, const Matrix<Weight>& clus_edge) {
  const auto order = topological_order(problem);
  if (!order) throw std::invalid_argument("compute_ideal_schedule: problem graph has a cycle");

  const NodeId np = problem.node_count();
  IdealSchedule s;
  s.start.assign(idx(np), 0);
  s.end.assign(idx(np), 0);

  for (const NodeId v : *order) {
    Weight start = 0;
    // Predecessors from the *problem* graph; communication weight from the
    // clustered matrix (0 for intra-cluster precedences).
    for (const auto& [pred, w] : problem.predecessors(v)) {
      start = std::max(start, s.end[idx(pred)] + clus_edge(idx(pred), idx(v)));
    }
    s.start[idx(v)] = start;
    s.end[idx(v)] = start + problem.node_weight(v);
    s.lower_bound = std::max(s.lower_bound, s.end[idx(v)]);
  }
  for (NodeId v = 0; v < np; ++v) {
    if (s.end[idx(v)] == s.lower_bound) s.latest_tasks.push_back(v);
  }
  return s;
}

Matrix<Weight> ideal_edge_matrix(const TaskGraph& problem, const Matrix<Weight>& clus_edge,
                                 const IdealSchedule& schedule) {
  auto m = Matrix<Weight>::square(idx(problem.node_count()), 0);
  for (const TaskEdge& e : problem.edges()) {
    if (clus_edge(idx(e.from), idx(e.to)) > 0) {
      m(idx(e.from), idx(e.to)) = schedule.start[idx(e.to)] - schedule.end[idx(e.from)];
    }
  }
  return m;
}

}  // namespace mimdmap
