// Assignment: the bijection between abstract nodes (clusters) and system
// nodes (processors) — the paper's assi[ns] matrix (section 3.7, Fig. 23).
//
// Since na == ns, a complete assignment is a permutation. We maintain both
// directions (assi[s] = cluster on processor s, and its inverse
// host_of[c] = processor hosting cluster c) so lookups are O(1) either way.
// The initial-assignment algorithm grows a *partial* assignment one pair at
// a time; unpaired slots hold kUnassigned (-1).
#pragma once

#include <vector>

#include "graph/types.hpp"

namespace mimdmap {

class Assignment {
 public:
  /// Marks an unpaired slot in a partial assignment.
  static constexpr NodeId kUnassigned = -1;

  Assignment() = default;

  /// Identity assignment: cluster i on processor i.
  static Assignment identity(NodeId n);

  /// All-unassigned partial assignment of the given size.
  static Assignment partial(NodeId n);

  /// From the paper's representation: on_processor[s] is the cluster
  /// mapped to system node s. Throws std::invalid_argument unless the
  /// vector is a permutation of 0..n-1.
  static Assignment from_cluster_on(std::vector<NodeId> on_processor);

  /// From the inverse representation: host[c] is the processor hosting
  /// cluster c.
  static Assignment from_host_of(std::vector<NodeId> host);

  [[nodiscard]] NodeId size() const noexcept { return node_id(cluster_on_.size()); }

  /// Cluster occupying the given processor (the paper's assi[s]);
  /// kUnassigned if the processor is still free.
  [[nodiscard]] NodeId cluster_on(NodeId processor) const {
    return cluster_on_.at(idx(processor));
  }
  /// Processor hosting the given cluster; kUnassigned if not yet placed.
  [[nodiscard]] NodeId host_of(NodeId cluster) const { return host_of_.at(idx(cluster)); }

  [[nodiscard]] const std::vector<NodeId>& cluster_on_vector() const noexcept {
    return cluster_on_;
  }
  [[nodiscard]] const std::vector<NodeId>& host_of_vector() const noexcept { return host_of_; }

  /// Places `cluster` on `processor`; both must currently be unpaired.
  void place(NodeId cluster, NodeId processor);

  /// Exchanges the clusters hosted by two processors (both must be
  /// occupied).
  void swap_processors(NodeId p1, NodeId p2);

  /// True once every cluster has a processor.
  [[nodiscard]] bool complete() const;

  friend bool operator==(const Assignment&, const Assignment&) = default;

 private:
  std::vector<NodeId> cluster_on_;
  std::vector<NodeId> host_of_;
};

}  // namespace mimdmap
