// Critical problem edges, critical abstract edges and critical degrees
// (paper section 4.2, Theorems 1-2, Lemmas 1-3).
//
// A clustered edge is *critical* when increasing its weight by any amount
// lengthens the total time of the ideal graph. Theorems 1-2 characterise
// the critical set recursively: an ideal edge is critical iff it has zero
// slack (i_edge == clus_edge) and either ends at a latest task or feeds a
// task with an outgoing critical edge. The paper's algorithm walks backward
// from the latest tasks through zero-slack *clustered* edges.
//
// Two deliberate knobs beyond the paper:
//  * CriticalOptions::propagate_through_intra_cluster — the paper's walk
//    only passes through clustered (inter-cluster) edges; a zero-slack
//    *intra-cluster* precedence also transmits delay (Lemma 1's argument
//    applies with communication 0), so the paper's set can be incomplete.
//    Enabling this flag yields the exact critical set. Default off
//    (paper-faithful).
//  * critical_edges_oracle — brute-force ground truth by perturbing each
//    clustered edge weight by +1 and recomputing the ideal schedule. Used
//    by the test suite to verify both modes (schedule makespan is a
//    max-of-path-sums, i.e. piecewise linear with slope 0/1 in each single
//    weight, so "+1 increases makespan" is equivalent to "any increase
//    increases makespan").
#pragma once

#include <vector>

#include "core/ideal_graph.hpp"
#include "core/instance.hpp"
#include "graph/matrix.hpp"
#include "graph/task_graph.hpp"

namespace mimdmap {

struct CriticalOptions {
  /// Also propagate criticality through zero-slack intra-cluster
  /// precedences (exact mode). Off = paper's published algorithm.
  bool propagate_through_intra_cluster = false;
};

struct CriticalInfo {
  /// The critical problem edges as a list (from, to, clustered weight).
  std::vector<TaskEdge> critical_edges;

  /// The clustered weight where edge (from, to) is critical, 0 elsewhere —
  /// the lookup the paper's dense crit_edge[np][np] matrix (Fig. 22-c)
  /// provided, backed by the edge list so huge instances never pay np^2
  /// cells. O(|critical_edges|); diagnostics/tests only.
  [[nodiscard]] Weight critical_weight(NodeId from, NodeId to) const;

  /// c_abs_edge[na][na] (paper Fig. 20-b, first na columns): summed
  /// critical problem-edge weight between each pair of clusters.
  /// Symmetric.
  Matrix<Weight> c_abs_edge;

  /// Critical degree of each abstract node (the paper's extra column of
  /// c_abs_edge): row sums of c_abs_edge.
  std::vector<Weight> critical_degree;

  [[nodiscard]] bool has_critical_edges() const noexcept { return !critical_edges.empty(); }

  /// True iff at least one critical problem edge connects clusters a and b.
  [[nodiscard]] bool abstract_edge_critical(NodeId a, NodeId b) const {
    return c_abs_edge(idx(a), idx(b)) > 0;
  }
};

/// Runs the paper's algorithms I-III of section 4.2 on an instance whose
/// ideal schedule has already been computed.
[[nodiscard]] CriticalInfo find_critical(const MappingInstance& instance,
                                         const IdealSchedule& ideal,
                                         const CriticalOptions& options = {});

/// Ground-truth critical edges by perturbation (see file comment). Returns
/// edges in problem-edge insertion order. O(E * (V + E)).
[[nodiscard]] std::vector<TaskEdge> critical_edges_oracle(const TaskGraph& problem,
                                                          const Matrix<Weight>& clus_edge);

}  // namespace mimdmap
