// Mapper facade: the complete pipeline of paper Fig. 1.
//
//   clustered problem graph + system graph
//     -> ideal schedule (lower bound)
//     -> critical problem / abstract edges
//     -> initial assignment
//     -> refinement with termination condition
//     -> final assignment + schedule + diagnostics
//
// This is the one-call public entry point used by the examples and the
// experiment harness.
#pragma once

#include <cstdint>
#include <vector>

#include "core/critical.hpp"
#include "core/eval_engine.hpp"
#include "core/evaluation.hpp"
#include "core/ideal_graph.hpp"
#include "core/initial_assignment.hpp"
#include "core/instance.hpp"
#include "core/refinement.hpp"

namespace mimdmap {

/// Multilevel coarsen–map–refine (DESIGN.md section 18): coarsen the task
/// graph *within clusters* (cluster/coarsen.hpp), run the flat pipeline on
/// the coarsest graph, then uncoarsen level by level, locally refining the
/// assignment on each level's delta evaluator. Because coarsening never
/// crosses clusters, every level shares the original ns clusters and the
/// coarse assignment projects down as the identity on host_of.
struct MultilevelOptions {
  /// Master switch. Off = the flat paper pipeline, untouched.
  bool enabled = false;
  /// Coarsening stop size (tasks); 0 = auto (max(8 * ns, 64)). A target
  /// >= np yields the trivial hierarchy, which reproduces the flat
  /// pipeline bit-for-bit (test-enforced).
  NodeId coarsen_target = 0;
  /// Per-level refinement trial budget during uncoarsening; -1 = ns per
  /// level (the paper's flat budget applied at each level).
  std::int64_t level_trials = -1;
  /// Coarsening pass caps (CoarsenOptions).
  int max_levels = 32;
  double min_reduction = 0.02;
};

/// Per-level diagnostics of a multilevel run, in execution order: the
/// coarsest level (mapped by the flat pipeline) first, level 0 (the
/// original problem) last.
struct MultilevelLevelStats {
  /// 0 = original problem; k = k-th coarse level below it.
  int level = 0;
  NodeId np = 0;            ///< tasks in this level's graph
  std::size_t edges = 0;    ///< edges in this level's graph
  std::int64_t trials = 0;  ///< refinement trials spent at this level
  std::int64_t improvements = 0;
  /// Level-graph makespan before/after this level's refinement (for the
  /// coarsest level: initial-assignment total vs mapped total).
  Weight total_before = 0;
  Weight total_after = 0;
  double ms = 0.0;  ///< wall time of the level's map/refine stage
};

struct MapperOptions {
  CriticalOptions critical;
  RefineOptions refine;
  MultilevelOptions multilevel;
};

/// Everything the pipeline produced, for inspection and reporting.
struct MappingReport {
  IdealSchedule ideal;
  CriticalInfo critical;

  Assignment initial_assignment;
  Weight initial_total = 0;
  std::vector<bool> pinned;

  Assignment assignment;    // final
  ScheduleResult schedule;  // final

  Weight lower_bound = 0;
  bool reached_lower_bound = false;
  bool terminated_early = false;
  std::int64_t refinement_trials = 0;
  std::int64_t improvements = 0;
  /// Incremental-evaluation counters of the refinement stage (zero for the
  /// paper's whole-assignment re-placement, which runs on the full kernel).
  DeltaStats delta;
  /// Resolved SoA wave width the refinement's candidate evaluation ran at
  /// (EvalEngine::resolve_batch_width of RefineOptions::eval_width; 1 =
  /// scalar kernel). Diagnostics only — results are width-invariant.
  int eval_width = 1;
  /// kOk for a full pipeline run. kCancelled / kDeadlineExceeded when
  /// MapperOptions::refine.cancel tripped mid-run: the report is then
  /// degraded but valid — assignment/schedule hold the best incumbent the
  /// refinement reached (or the initial assignment when the signal landed
  /// before refinement started), never garbage.
  MapStatus status = MapStatus::kOk;
  /// Per-level diagnostics of a multilevel run, coarsest first, level 0
  /// last. Empty for flat runs and for multilevel runs whose hierarchy was
  /// trivial (those take the flat path bit-for-bit).
  std::vector<MultilevelLevelStats> levels;

  [[nodiscard]] Weight total_time() const noexcept { return schedule.total_time; }

  /// Total time as percent of the lower bound, rounded to the nearest
  /// integer — the unit of the paper's Tables 1-3 (100 == optimal).
  [[nodiscard]] std::int64_t percent_over_lower_bound() const;
};

/// Runs the full mapping pipeline on an instance.
[[nodiscard]] MappingReport map_instance(const MappingInstance& instance,
                                         const MapperOptions& options = {});

/// As above, reusing a caller-owned evaluation engine (and its worker pool)
/// across the whole pipeline — the entry point for callers that map one
/// instance repeatedly or follow up with baselines on the same engine.
/// Dispatches to the multilevel pipeline when options.multilevel.enabled.
[[nodiscard]] MappingReport map_instance(const EvalEngine& engine,
                                         const MapperOptions& options = {});

/// The multilevel coarsen–map–refine pipeline (core/multilevel.cpp). Called
/// by map_instance when options.multilevel.enabled; exposed for tests. A
/// trivial hierarchy (coarsen_target >= np, or nothing contractible) falls
/// through to the flat pipeline on the caller's engine, bit-for-bit.
[[nodiscard]] MappingReport map_multilevel(const EvalEngine& engine,
                                           const MapperOptions& options = {});

namespace detail {
/// The flat (paper) pipeline, never dispatching on multilevel — the shared
/// backend of map_instance and map_multilevel's coarsest-level map.
[[nodiscard]] MappingReport map_flat(const EvalEngine& engine, const MapperOptions& options);
}  // namespace detail

}  // namespace mimdmap
