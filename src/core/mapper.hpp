// Mapper facade: the complete pipeline of paper Fig. 1.
//
//   clustered problem graph + system graph
//     -> ideal schedule (lower bound)
//     -> critical problem / abstract edges
//     -> initial assignment
//     -> refinement with termination condition
//     -> final assignment + schedule + diagnostics
//
// This is the one-call public entry point used by the examples and the
// experiment harness.
#pragma once

#include <cstdint>

#include "core/critical.hpp"
#include "core/eval_engine.hpp"
#include "core/evaluation.hpp"
#include "core/ideal_graph.hpp"
#include "core/initial_assignment.hpp"
#include "core/instance.hpp"
#include "core/refinement.hpp"

namespace mimdmap {

struct MapperOptions {
  CriticalOptions critical;
  RefineOptions refine;
};

/// Everything the pipeline produced, for inspection and reporting.
struct MappingReport {
  IdealSchedule ideal;
  CriticalInfo critical;

  Assignment initial_assignment;
  Weight initial_total = 0;
  std::vector<bool> pinned;

  Assignment assignment;    // final
  ScheduleResult schedule;  // final

  Weight lower_bound = 0;
  bool reached_lower_bound = false;
  bool terminated_early = false;
  std::int64_t refinement_trials = 0;
  std::int64_t improvements = 0;
  /// Incremental-evaluation counters of the refinement stage (zero for the
  /// paper's whole-assignment re-placement, which runs on the full kernel).
  DeltaStats delta;
  /// Resolved SoA wave width the refinement's candidate evaluation ran at
  /// (EvalEngine::resolve_batch_width of RefineOptions::eval_width; 1 =
  /// scalar kernel). Diagnostics only — results are width-invariant.
  int eval_width = 1;
  /// kOk for a full pipeline run. kCancelled / kDeadlineExceeded when
  /// MapperOptions::refine.cancel tripped mid-run: the report is then
  /// degraded but valid — assignment/schedule hold the best incumbent the
  /// refinement reached (or the initial assignment when the signal landed
  /// before refinement started), never garbage.
  MapStatus status = MapStatus::kOk;

  [[nodiscard]] Weight total_time() const noexcept { return schedule.total_time; }

  /// Total time as percent of the lower bound, rounded to the nearest
  /// integer — the unit of the paper's Tables 1-3 (100 == optimal).
  [[nodiscard]] std::int64_t percent_over_lower_bound() const;
};

/// Runs the full mapping pipeline on an instance.
[[nodiscard]] MappingReport map_instance(const MappingInstance& instance,
                                         const MapperOptions& options = {});

/// As above, reusing a caller-owned evaluation engine (and its worker pool)
/// across the whole pipeline — the entry point for callers that map one
/// instance repeatedly or follow up with baselines on the same engine.
[[nodiscard]] MappingReport map_instance(const EvalEngine& engine,
                                         const MapperOptions& options = {});

}  // namespace mimdmap
