#include "core/validate.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mimdmap {

std::vector<std::string> schedule_violations(const MappingInstance& instance,
                                             const Assignment& assignment,
                                             const ScheduleResult& schedule,
                                             const EvalOptions& options) {
  std::vector<std::string> violations;
  const auto complain = [&violations](const std::string& what) { violations.push_back(what); };

  const TaskGraph& problem = instance.problem();
  const NodeId np = problem.node_count();
  if (schedule.start.size() != idx(np) || schedule.end.size() != idx(np)) {
    complain("start/end tables have the wrong size");
    return violations;
  }
  if (!assignment.complete() || assignment.size() != instance.num_processors()) {
    complain("assignment is not a complete bijection");
    return violations;
  }

  Weight max_end = 0;
  for (NodeId v = 0; v < np; ++v) {
    if (schedule.start[idx(v)] < 0) {
      complain("task " + std::to_string(v) + " starts before time 0");
    }
    if (schedule.end[idx(v)] != schedule.start[idx(v)] + problem.node_weight(v)) {
      complain("task " + std::to_string(v) + " does not run for exactly its weight");
    }
    max_end = std::max(max_end, schedule.end[idx(v)]);
  }
  if (schedule.total_time != max_end) {
    complain("total_time is not the maximum end time");
  }
  for (const NodeId v : schedule.latest_tasks) {
    if (v < 0 || v >= np || schedule.end[idx(v)] != schedule.total_time) {
      complain("latest_tasks contains a non-latest task");
      break;
    }
  }

  // Precedence + minimum communication.
  for (const TaskEdge& e : problem.edges()) {
    Weight comm = 0;
    const Weight cw =
        instance.clustering().same_cluster(e.from, e.to) ? 0 : e.weight;
    if (cw > 0) {
      const NodeId pa = assignment.host_of(instance.clustering().cluster_of(e.from));
      const NodeId pb = assignment.host_of(instance.clustering().cluster_of(e.to));
      comm = cw * instance.hops()(idx(pa), idx(pb));
    }
    if (schedule.start[idx(e.to)] < schedule.end[idx(e.from)] + comm) {
      std::ostringstream os;
      os << "edge (" << e.from << "," << e.to << ") violated: start " << schedule.start[idx(e.to)]
         << " < " << schedule.end[idx(e.from)] << " + " << comm;
      complain(os.str());
    }
  }

  if (options.serialize_within_processor) {
    // Tasks sharing a processor must not overlap in time.
    for (NodeId a = 0; a < np; ++a) {
      for (NodeId b = a + 1; b < np; ++b) {
        const NodeId pa = assignment.host_of(instance.clustering().cluster_of(a));
        const NodeId pb = assignment.host_of(instance.clustering().cluster_of(b));
        if (pa != pb) continue;
        const bool overlap = schedule.start[idx(a)] < schedule.end[idx(b)] &&
                             schedule.start[idx(b)] < schedule.end[idx(a)];
        if (overlap) {
          complain("tasks " + std::to_string(a) + " and " + std::to_string(b) +
                   " overlap on processor " + std::to_string(pa));
        }
      }
    }
  }
  return violations;
}

void validate_schedule(const MappingInstance& instance, const Assignment& assignment,
                       const ScheduleResult& schedule, const EvalOptions& options) {
  const auto violations = schedule_violations(instance, assignment, schedule, options);
  if (!violations.empty()) {
    std::string message = "invalid schedule:";
    for (const std::string& v : violations) message += "\n  " + v;
    throw std::logic_error(message);
  }
}

}  // namespace mimdmap
