// Schedule feasibility checking.
//
// Independent re-verification of a ScheduleResult against the model's
// constraints — used by the property tests as an oracle and available to
// users who build schedules by other means:
//
//  * every task runs for exactly its weight,
//  * no task starts before any predecessor's end plus the *minimum*
//    communication cost (clustered weight x hop distance; this is
//    necessary under every supported model, since contention and
//    serialization only delay),
//  * total_time and latest_tasks are consistent with the start/end tables,
//  * under serialize_within_processor, tasks sharing a processor do not
//    overlap.
#pragma once

#include <string>
#include <vector>

#include "core/assignment.hpp"
#include "core/evaluation.hpp"
#include "core/instance.hpp"

namespace mimdmap {

/// Returns human-readable descriptions of every violated constraint;
/// empty means the schedule is feasible.
[[nodiscard]] std::vector<std::string> schedule_violations(const MappingInstance& instance,
                                                           const Assignment& assignment,
                                                           const ScheduleResult& schedule,
                                                           const EvalOptions& options = {});

/// Throws std::logic_error listing the violations, if any.
void validate_schedule(const MappingInstance& instance, const Assignment& assignment,
                       const ScheduleResult& schedule, const EvalOptions& options = {});

}  // namespace mimdmap
