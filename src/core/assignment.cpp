#include "core/assignment.hpp"

#include <stdexcept>
#include <string>

namespace mimdmap {

Assignment Assignment::identity(NodeId n) {
  Assignment a = partial(n);
  for (NodeId i = 0; i < n; ++i) {
    a.cluster_on_[idx(i)] = i;
    a.host_of_[idx(i)] = i;
  }
  return a;
}

Assignment Assignment::partial(NodeId n) {
  if (n < 0) throw std::invalid_argument("Assignment: negative size");
  Assignment a;
  a.cluster_on_.assign(idx(n), kUnassigned);
  a.host_of_.assign(idx(n), kUnassigned);
  return a;
}

Assignment Assignment::from_cluster_on(std::vector<NodeId> on_processor) {
  const NodeId n = node_id(on_processor.size());
  Assignment a = partial(n);
  a.cluster_on_ = std::move(on_processor);
  for (NodeId p = 0; p < n; ++p) {
    const NodeId c = a.cluster_on_[idx(p)];
    if (c < 0 || c >= n) {
      throw std::invalid_argument("Assignment: cluster id out of range");
    }
    if (a.host_of_[idx(c)] != kUnassigned) {
      throw std::invalid_argument("Assignment: cluster " + std::to_string(c) +
                                  " appears on two processors");
    }
    a.host_of_[idx(c)] = p;
  }
  return a;
}

Assignment Assignment::from_host_of(std::vector<NodeId> host) {
  const NodeId n = node_id(host.size());
  Assignment a = partial(n);
  a.host_of_ = std::move(host);
  for (NodeId c = 0; c < n; ++c) {
    const NodeId p = a.host_of_[idx(c)];
    if (p < 0 || p >= n) {
      throw std::invalid_argument("Assignment: processor id out of range");
    }
    if (a.cluster_on_[idx(p)] != kUnassigned) {
      throw std::invalid_argument("Assignment: processor " + std::to_string(p) +
                                  " hosts two clusters");
    }
    a.cluster_on_[idx(p)] = c;
  }
  return a;
}

void Assignment::place(NodeId cluster, NodeId processor) {
  if (cluster < 0 || idx(cluster) >= host_of_.size() || processor < 0 ||
      idx(processor) >= cluster_on_.size()) {
    throw std::out_of_range("Assignment::place: id out of range");
  }
  if (host_of_[idx(cluster)] != kUnassigned) {
    throw std::invalid_argument("Assignment::place: cluster already placed");
  }
  if (cluster_on_[idx(processor)] != kUnassigned) {
    throw std::invalid_argument("Assignment::place: processor already occupied");
  }
  host_of_[idx(cluster)] = processor;
  cluster_on_[idx(processor)] = cluster;
}

void Assignment::swap_processors(NodeId p1, NodeId p2) {
  const NodeId c1 = cluster_on(p1);
  const NodeId c2 = cluster_on(p2);
  if (c1 == kUnassigned || c2 == kUnassigned) {
    throw std::invalid_argument("Assignment::swap_processors: empty processor");
  }
  cluster_on_[idx(p1)] = c2;
  cluster_on_[idx(p2)] = c1;
  host_of_[idx(c1)] = p2;
  host_of_[idx(c2)] = p1;
}

bool Assignment::complete() const {
  for (const NodeId c : cluster_on_) {
    if (c == kUnassigned) return false;
  }
  return true;
}

}  // namespace mimdmap
