#include "core/refinement.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/trace.hpp"
#include "workload/rng.hpp"

namespace mimdmap {

RefineResult refine(const EvalEngine& engine, const IdealSchedule& ideal,
                    const InitialAssignmentResult& initial, const RefineOptions& options) {
  const MappingInstance& instance = engine.instance();
  if (!initial.assignment.complete()) {
    throw std::invalid_argument("refine: initial assignment is incomplete");
  }

  RefineResult result;
  result.assignment = initial.assignment;
  result.schedule = engine.evaluate(result.assignment, options.eval);
  result.lower_bound = ideal.lower_bound;
  result.initial_total = result.schedule.total_time;

  // Step 3: the initial assignment may already be optimal (the paper's
  // running example, Fig. 24).
  if (options.use_termination_condition &&
      result.schedule.total_time == result.lower_bound) {
    result.reached_lower_bound = true;
    result.terminated_early = true;
    return result;
  }

  // The movable clusters and the processors they occupy. Pinned (critical)
  // clusters never move, so the free processor set is fixed.
  const NodeId n = instance.num_processors();
  std::vector<NodeId> free_clusters;
  std::vector<NodeId> free_procs;
  for (NodeId c = 0; c < n; ++c) {
    if (options.respect_pinned && initial.pinned[idx(c)]) continue;
    free_clusters.push_back(c);
    free_procs.push_back(initial.assignment.host_of(c));
  }

  const std::int64_t budget =
      options.max_trials >= 0 ? options.max_trials : static_cast<std::int64_t>(n);

  if (free_clusters.size() < 2) {
    // Pin saturation: on dense abstract graphs nearly every cluster can be
    // a critical abstract node, leaving refinement nothing to move — a case
    // the paper never discusses. Fall back to moving everything; the
    // keep-iff-better rule still guarantees the result never regresses
    // below the initial assignment (DESIGN.md section 6).
    free_clusters.clear();
    free_procs.clear();
    for (NodeId c = 0; c < n; ++c) {
      free_clusters.push_back(c);
      free_procs.push_back(initial.assignment.host_of(c));
    }
    if (free_clusters.size() < 2) {
      result.reached_lower_bound = result.schedule.total_time == result.lower_bound;
      return result;
    }
  }

  Rng rng(options.seed);
  std::vector<NodeId> shuffled = free_clusters;

  // Step 4a: the candidate re-placements depend only on the RNG stream
  // (the paper re-places the free clusters afresh each trial, not relative
  // to the current assignment), so candidates can be generated ahead of
  // their scan — but only one chunk at a time, reusing the same scratch
  // host vectors, so memory stays O(chunk) instead of O(budget * n) and
  // early termination skips the trailing chunks entirely. Every pinned
  // slot keeps its initial host and every free slot is rewritten each
  // trial, so recycling a scratch vector never leaks a previous candidate.
  // A chunk is evaluated as SoA waves of `width` candidates (one topo walk
  // per wave, per-lane early exit against the incumbent); 4 waves per lane
  // keep the pool's work stealing fed. Width 1 degenerates to the scalar
  // kernel, chunk size 1 when sequential (fully lazy).
  const int threads = std::max(1, engine.resolve_num_threads(options.num_threads, options.eval));
  const int width = std::max(1, engine.resolve_batch_width(options.eval_width, options.eval));
  const std::size_t chunk_capacity =
      (threads > 1 ? static_cast<std::size_t>(threads) * 4 : std::size_t{1}) *
      static_cast<std::size_t>(width);
  const std::vector<NodeId>& initial_host = initial.assignment.host_of_vector();
  std::vector<std::vector<NodeId>> chunk(chunk_capacity, initial_host);
  std::vector<Weight> totals(chunk_capacity, 0);

  std::vector<NodeId> best_host = initial_host;
  Weight best_total = result.initial_total;
  bool improved_any = false;

  for (std::int64_t done = 0; done < budget;) {
    // Cancellation point (one counting poll per chunk; sequential mode's
    // chunk is a single wave). A tripped token ends the search here with
    // the incumbent-so-far — the epilogue below materializes it exactly as
    // a budget exhaustion would.
    if (options.cancel.stop_requested()) {
      result.status = options.cancel.status();
      break;
    }
    const std::size_t m = static_cast<std::size_t>(
        std::min<std::int64_t>(static_cast<std::int64_t>(chunk_capacity), budget - done));
    for (std::size_t i = 0; i < m; ++i) {
      rng.shuffle(shuffled);
      std::vector<NodeId>& host = chunk[i];
      for (std::size_t k = 0; k < shuffled.size(); ++k) {
        host[idx(shuffled[k])] = free_procs[k];
      }
    }

    // Step 4b: evaluate the chunk. Parallel mode fans SoA waves across the
    // engine's persistent worker pool; sequential mode evaluates wave by
    // wave so the early termination saves every skipped wave. The incumbent
    // best is passed as the waves' shared cutoff: a lane that can no longer
    // beat it early-exits and reports a certified ">= best" bound, which
    // the in-order scan below rejects exactly as it would the exact value.
    // The termination check stays exact too: while it is live, best is
    // strictly above the lower bound (step 3 / 4c return on equality), so a
    // lower-bound-reaching candidate is never cut off and a cut-off lane's
    // bound can never equal the lower bound. Hence the whole scan is
    // bit-identical for any thread count and width.
    const obs::Span chunk_span("refine_chunk", "mapper", "candidates",
                               static_cast<std::int64_t>(m));
    engine.batch_total_times(std::span(chunk.data(), m), options.eval, threads, width,
                             std::span(totals.data(), m), best_total, options.cancel);

    for (std::size_t i = 0; i < m; ++i) {
      ++result.trials_used;

      // Step 4c: termination condition.
      if (options.use_termination_condition && totals[i] == result.lower_bound) {
        result.assignment = Assignment::from_host_of(chunk[i]);
        result.schedule = engine.evaluate(result.assignment, options.eval);
        result.reached_lower_bound = true;
        result.terminated_early = result.trials_used < budget;
        ++result.improvements;
        return result;
      }

      // Step 4d: keep iff strictly better.
      if (totals[i] < best_total) {
        best_total = totals[i];
        best_host = chunk[i];
        improved_any = true;
        ++result.improvements;
      }
    }
    done += static_cast<std::int64_t>(m);
  }

  if (improved_any) {
    result.assignment = Assignment::from_host_of(best_host);
    result.schedule = engine.evaluate(result.assignment, options.eval);
  }
  result.reached_lower_bound = result.schedule.total_time == result.lower_bound;
  return result;
}

RefineResult refine(const MappingInstance& instance, const IdealSchedule& ideal,
                    const InitialAssignmentResult& initial, const RefineOptions& options) {
  const EvalEngine engine(instance);
  return refine(engine, ideal, initial, options);
}

}  // namespace mimdmap
