#include "core/refinement.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "workload/rng.hpp"

namespace mimdmap {
namespace {

/// Evaluates `candidates` with `num_threads` workers; results land at the
/// matching indices. Each evaluate() call only reads shared state, so plain
/// index partitioning by an atomic counter is race-free.
std::vector<ScheduleResult> evaluate_parallel(const MappingInstance& instance,
                                              const std::vector<Assignment>& candidates,
                                              const EvalOptions& eval, int num_threads) {
  std::vector<ScheduleResult> results(candidates.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= candidates.size()) return;
      results[i] = evaluate(instance, candidates[i], eval);
    }
  };
  const int workers = std::min<int>(num_threads, static_cast<int>(candidates.size()));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace

RefineResult refine(const MappingInstance& instance, const IdealSchedule& ideal,
                    const InitialAssignmentResult& initial, const RefineOptions& options) {
  if (!initial.assignment.complete()) {
    throw std::invalid_argument("refine: initial assignment is incomplete");
  }

  RefineResult result;
  result.assignment = initial.assignment;
  result.schedule = evaluate(instance, result.assignment, options.eval);
  result.lower_bound = ideal.lower_bound;
  result.initial_total = result.schedule.total_time;

  // Step 3: the initial assignment may already be optimal (the paper's
  // running example, Fig. 24).
  if (options.use_termination_condition &&
      result.schedule.total_time == result.lower_bound) {
    result.reached_lower_bound = true;
    result.terminated_early = true;
    return result;
  }

  // The movable clusters and the processors they occupy. Pinned (critical)
  // clusters never move, so the free processor set is fixed.
  const NodeId n = instance.num_processors();
  std::vector<NodeId> free_clusters;
  std::vector<NodeId> free_procs;
  for (NodeId c = 0; c < n; ++c) {
    if (options.respect_pinned && initial.pinned[idx(c)]) continue;
    free_clusters.push_back(c);
    free_procs.push_back(initial.assignment.host_of(c));
  }

  const std::int64_t budget =
      options.max_trials >= 0 ? options.max_trials : static_cast<std::int64_t>(n);

  if (free_clusters.size() < 2) {
    // Pin saturation: on dense abstract graphs nearly every cluster can be
    // a critical abstract node, leaving refinement nothing to move — a case
    // the paper never discusses. Fall back to moving everything; the
    // keep-iff-better rule still guarantees the result never regresses
    // below the initial assignment (DESIGN.md section 6).
    free_clusters.clear();
    free_procs.clear();
    for (NodeId c = 0; c < n; ++c) {
      free_clusters.push_back(c);
      free_procs.push_back(initial.assignment.host_of(c));
    }
    if (free_clusters.size() < 2) {
      result.reached_lower_bound = result.schedule.total_time == result.lower_bound;
      return result;
    }
  }

  Rng rng(options.seed);
  std::vector<NodeId> shuffled = free_clusters;

  // Step 4a: the candidate re-placements depend only on the RNG stream
  // (the paper re-places the free clusters afresh each trial, not relative
  // to the current assignment), so they can all be generated up front.
  std::vector<Assignment> candidates;
  candidates.reserve(static_cast<std::size_t>(budget));
  for (std::int64_t trial = 0; trial < budget; ++trial) {
    rng.shuffle(shuffled);
    std::vector<NodeId> host = initial.assignment.host_of_vector();
    for (std::size_t k = 0; k < shuffled.size(); ++k) {
      host[idx(shuffled[k])] = free_procs[k];
    }
    candidates.push_back(Assignment::from_host_of(std::move(host)));
  }

  // Step 4b: evaluate. Parallel mode evaluates every candidate
  // speculatively (trading the termination condition's evaluation savings
  // for wall-clock speed); sequential mode evaluates lazily so the early
  // exit still saves work. Both produce identical results.
  std::vector<ScheduleResult> evaluated;
  const bool parallel = options.num_threads > 1 && candidates.size() > 1;
  if (parallel) {
    evaluated = evaluate_parallel(instance, candidates, options.eval, options.num_threads);
  }

  for (std::int64_t trial = 0; trial < budget; ++trial) {
    ++result.trials_used;
    const auto i = static_cast<std::size_t>(trial);
    const Assignment& candidate = candidates[i];
    const ScheduleResult cand_schedule =
        parallel ? std::move(evaluated[i]) : evaluate(instance, candidate, options.eval);

    // Step 4c: termination condition.
    if (options.use_termination_condition &&
        cand_schedule.total_time == result.lower_bound) {
      result.assignment = candidate;
      result.schedule = cand_schedule;
      result.reached_lower_bound = true;
      result.terminated_early = trial + 1 < budget;
      ++result.improvements;
      return result;
    }

    // Step 4d: keep iff strictly better.
    if (cand_schedule.total_time < result.schedule.total_time) {
      result.assignment = candidate;
      result.schedule = cand_schedule;
      ++result.improvements;
    }
  }

  result.reached_lower_bound = result.schedule.total_time == result.lower_bound;
  return result;
}

}  // namespace mimdmap
