#include "core/eval_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string_view>

#include "graph/topological.hpp"
#include "obs/trace.hpp"

namespace mimdmap {

EvalEngine::EvalEngine(const MappingInstance& instance, std::shared_ptr<ThreadPool> pool)
    : instance_(instance), pool_(pool ? std::move(pool) : ThreadPool::shared()) {
  if (instance.shared_tables()) adopt_topology(instance.shared_tables());
  const TaskGraph& problem = instance.problem();
  const auto order = topological_order(problem);
  if (!order) throw std::invalid_argument("evaluate: problem graph has a cycle");
  topo_order_ = *order;

  cluster_of_ = instance.clustering().cluster_map();
  node_weight_ = problem.node_weights();

  const NodeId np = problem.node_count();
  std::size_t total_arcs = 0;
  for (NodeId v = 0; v < np; ++v) total_arcs += problem.predecessors(v).size();
  pred_arcs_.reserve(total_arcs);
  pred_offset_.assign(idx(np) + 1, 0);
  for (NodeId v = 0; v < np; ++v) {
    pred_offset_[idx(v)] = static_cast<std::uint32_t>(pred_arcs_.size());
    // Same edge-insertion order as TaskGraph::predecessors(v) — the legacy
    // evaluation's iteration order, which link_contention results depend on.
    // Clustered weight straight off the adjacency (0 intra-cluster) keeps
    // construction free of the dense np x np clus_edge matrix.
    for (const auto& [pred, edge_w] : problem.predecessors(v)) {
      const NodeId pc = cluster_of_[idx(pred)];
      pred_arcs_.push_back({pred, pc, pc == cluster_of_[idx(v)] ? 0 : edge_w});
    }
  }
  pred_offset_[idx(np)] = static_cast<std::uint32_t>(pred_arcs_.size());

  topo_pos_.assign(idx(np), 0);
  for (std::size_t pos = 0; pos < topo_order_.size(); ++pos) {
    topo_pos_[idx(topo_order_[pos])] = static_cast<std::uint32_t>(pos);
  }

  // Successor CSR mirroring the predecessor CSR — the delta evaluator's
  // dirty-set propagation walks it forward, and seeds per arc off the
  // pre-resolved successor cluster.
  succ_arcs_.reserve(total_arcs);
  succ_offset_.assign(idx(np) + 1, 0);
  for (NodeId v = 0; v < np; ++v) {
    succ_offset_[idx(v)] = static_cast<std::uint32_t>(succ_arcs_.size());
    for (const auto& [succ, edge_w] : problem.successors(v)) {
      const NodeId sc = cluster_of_[idx(succ)];
      succ_arcs_.push_back({succ, sc, sc == cluster_of_[idx(v)] ? 0 : edge_w});
    }
  }
  succ_offset_[idx(np)] = static_cast<std::uint32_t>(succ_arcs_.size());

  // Ancestor-cluster bitmasks (one forward pass over the predecessor CSR).
  // With more than 64 clusters the masks degrade to all-ones, which only
  // disables the certificate that reads them, never falsifies it.
  reach_clusters_.assign(idx(np), ~std::uint64_t{0});
  if (idx(instance.num_processors()) <= 64) {
    for (const NodeId v : topo_order_) {
      std::uint64_t mask = std::uint64_t{1} << idx(cluster_of_[idx(v)]);
      for (std::uint32_t a = pred_offset_[idx(v)]; a < pred_offset_[idx(v) + 1]; ++a) {
        mask |= reach_clusters_[idx(pred_arcs_[a].pred)];
      }
      reach_clusters_[idx(v)] = mask;
    }
  }

  // Downstream node-weight potential (one reverse pass over the successor
  // CSR): tail0_[v] = max over successors of (weight(succ) + tail0_[succ]).
  tail0_.assign(idx(np), 0);
  for (std::size_t i = topo_order_.size(); i-- > 0;) {
    const NodeId v = topo_order_[i];
    Weight t = 0;
    for (std::uint32_t s = succ_offset_[idx(v)]; s < succ_offset_[idx(v) + 1]; ++s) {
      const NodeId succ = succ_arcs_[s].succ;
      t = std::max(t, node_weight_[idx(succ)] + tail0_[idx(succ)]);
    }
    tail0_[idx(v)] = t;
  }

  // Per-cluster inter-cluster arc lists plus earliest member position —
  // the delta evaluator's seed scan touches exactly these arcs instead of
  // walking every member's adjacency.
  const NodeId nc = instance.num_processors();
  cluster_min_pos_.assign(idx(nc), static_cast<std::uint32_t>(idx(np)));
  for (NodeId v = 0; v < np; ++v) {
    std::uint32_t& mp = cluster_min_pos_[idx(cluster_of_[idx(v)])];
    mp = std::min(mp, topo_pos_[idx(v)]);
  }
  std::vector<std::vector<ClusterArc>> by_cluster(idx(nc));
  for (const TaskEdge& e : problem.edges()) {
    const NodeId cu = cluster_of_[idx(e.from)];
    const NodeId cv = cluster_of_[idx(e.to)];
    if (cu == cv) continue;
    const Weight cw = e.weight;  // inter-cluster: clustered weight == edge weight
    by_cluster[idx(cv)].push_back({e.to, topo_pos_[idx(e.to)], cu, true, e.from, cw});
    by_cluster[idx(cu)].push_back({e.to, topo_pos_[idx(e.to)], cv, false, e.from, cw});
  }
  // Within each cluster, group the arcs by (other_cluster, incoming) so
  // the delta engines can select whole groups off their per-cluster-pair
  // distance-change masks (one branch per pair instead of per arc).
  const std::size_t groups_per_cluster = 2 * idx(nc);
  cluster_pair_offset_.assign(idx(nc) * groups_per_cluster + 1, 0);
  cluster_pair_min_pos_.assign(idx(nc) * groups_per_cluster,
                               static_cast<std::uint32_t>(idx(np)));
  cluster_arc_offset_.assign(idx(nc) + 1, 0);
  for (NodeId c = 0; c < nc; ++c) {
    cluster_arc_offset_[idx(c)] = static_cast<std::uint32_t>(cluster_arcs_.size());
    std::vector<ClusterArc>& list = by_cluster[idx(c)];
    std::stable_sort(list.begin(), list.end(),
                     [](const ClusterArc& a, const ClusterArc& b) {
                       if (a.other_cluster != b.other_cluster) {
                         return a.other_cluster < b.other_cluster;
                       }
                       return a.incoming < b.incoming;
                     });
    for (const ClusterArc& arc : list) {
      const std::size_t g = idx(c) * groups_per_cluster + idx(arc.other_cluster) * 2 +
                            (arc.incoming ? 1 : 0);
      cluster_pair_min_pos_[g] = std::min(cluster_pair_min_pos_[g], arc.head_pos);
    }
    // Group offsets: count per group, then prefix-sum over this cluster's
    // contiguous span (arcs are appended in sorted order right after).
    const std::uint32_t base = static_cast<std::uint32_t>(cluster_arcs_.size());
    std::size_t cursor = 0;
    for (std::size_t g = 0; g < groups_per_cluster; ++g) {
      cluster_pair_offset_[idx(c) * groups_per_cluster + g] =
          base + static_cast<std::uint32_t>(cursor);
      while (cursor < list.size()) {
        const ClusterArc& arc = list[cursor];
        const std::size_t ag = idx(arc.other_cluster) * 2 + (arc.incoming ? 1 : 0);
        if (ag != g) break;
        ++cursor;
      }
    }
    cluster_arcs_.insert(cluster_arcs_.end(), list.begin(), list.end());
  }
  cluster_arc_offset_[idx(nc)] = static_cast<std::uint32_t>(cluster_arcs_.size());
  cluster_pair_offset_.back() = static_cast<std::uint32_t>(cluster_arcs_.size());
}

EvalEngine::~EvalEngine() = default;

void EvalEngine::adopt_topology(std::shared_ptr<const TopologyTables> tables) const {
  if (tables == nullptr || routing_ptr_ != nullptr) return;  // already built/adopted
  if (tables->ns != instance_.num_processors()) {
    throw std::invalid_argument(
        "adopt_topology: tables were built for a different machine size");
  }
  shared_tables_ = std::move(tables);
}

void EvalEngine::ensure_routing() const {
  std::call_once(routing_once_, [&] {
    if (shared_tables_) {
      // Shared tables (TopologyCache): byte-identical to a private build,
      // so adopters and self-builders issue identical claim sequences.
      routing_ptr_ = &shared_tables_->routing;
      route_offset_ptr_ = shared_tables_->route_offset.data();
      route_links_ptr_ = shared_tables_->route_links.data();
      return;
    }
    routing_ = std::make_unique<RoutingTable>(instance_.system());
    flatten_routes(*routing_, route_offset_, route_links_);
    routing_ptr_ = routing_.get();
    route_offset_ptr_ = route_offset_.data();
    route_links_ptr_ = route_links_.data();
  });
}

void EvalEngine::ensure_workspace(EvalWorkspace& ws, bool link_contention) const {
  const std::size_t np = idx(instance_.num_tasks());
  const std::size_t ns = idx(instance_.num_processors());
  if (ws.start.size() < np) ws.start.resize(np);
  if (ws.end.size() < np) ws.end.resize(np);
  if (ws.proc_free.size() < ns) ws.proc_free.resize(ns);
  if (link_contention && ws.link_free.size() < link_count()) {
    ws.link_free.resize(link_count());
  }
}

Weight EvalEngine::run_schedule(std::span<const NodeId> host_of, const EvalOptions& options,
                                EvalWorkspace& ws) const {
  const bool contention = options.link_contention;
  const bool serialize = options.serialize_within_processor;
  if (contention) ensure_routing();
  ensure_workspace(ws, contention);
  if (serialize) std::fill(ws.proc_free.begin(), ws.proc_free.end(), Weight{0});
  if (contention) std::fill(ws.link_free.begin(), ws.link_free.end(), Weight{0});

  const Matrix<Weight>& hops = instance_.hops();
  Weight* const start = ws.start.data();
  Weight* const end = ws.end.data();
  Weight* const proc_free = ws.proc_free.data();
  Weight* const link_free = ws.link_free.data();
  const PredArc* const arcs = pred_arcs_.data();

  Weight total = 0;
  for (const NodeId v : topo_order_) {
    const NodeId pv = host_of[idx(cluster_of_[idx(v)])];
    Weight st = 0;
    const std::uint32_t lo = pred_offset_[idx(v)];
    const std::uint32_t hi = pred_offset_[idx(v) + 1];
    for (std::uint32_t a = lo; a < hi; ++a) {
      const PredArc& arc = arcs[a];
      Weight arrival = end[idx(arc.pred)];
      if (arc.weight > 0) {
        const NodeId pp = host_of[idx(arc.pred_cluster)];
        if (contention) {
          // Store-and-forward along the pre-flattened route; each hop holds
          // its link exclusively for the message's full weight.
          for (const std::int32_t li : route_links(pp, pv)) {
            const Weight depart = std::max(arrival, link_free[static_cast<std::size_t>(li)]);
            arrival = depart + arc.weight;
            link_free[static_cast<std::size_t>(li)] = arrival;
          }
        } else {
          arrival += arc.weight * hops(idx(pp), idx(pv));
        }
      }
      st = std::max(st, arrival);
    }
    if (serialize) st = std::max(st, proc_free[idx(pv)]);
    start[idx(v)] = st;
    const Weight en = st + node_weight_[idx(v)];
    end[idx(v)] = en;
    if (serialize) proc_free[idx(pv)] = en;
    total = std::max(total, en);
  }
  return total;
}

Weight EvalEngine::trial_total_time(std::span<const NodeId> host_of, const EvalOptions& options,
                                    EvalWorkspace& ws) const {
  return run_schedule(host_of, options, ws);
}

Weight EvalEngine::run_schedule_verdict(std::span<const NodeId> host_of,
                                        const EvalOptions& options, EvalWorkspace& ws,
                                        Weight cutoff, const Weight* potential,
                                        bool* certified, std::size_t* scheduled,
                                        std::size_t start_pos) const {
  const bool contention = options.link_contention;
  const bool serialize = options.serialize_within_processor;
  if (contention) ensure_routing();
  ensure_workspace(ws, contention);
  if (start_pos == 0) {
    if (serialize) std::fill(ws.proc_free.begin(), ws.proc_free.end(), Weight{0});
    if (contention) std::fill(ws.link_free.begin(), ws.link_free.end(), Weight{0});
  }

  const Matrix<Weight>& hops = instance_.hops();
  Weight* const start = ws.start.data();
  Weight* const end = ws.end.data();
  Weight* const proc_free = ws.proc_free.data();
  Weight* const link_free = ws.link_free.data();
  const PredArc* const arcs = pred_arcs_.data();

  Weight total = 0;
  std::size_t done = 0;
  const std::size_t np = topo_order_.size();
  for (std::size_t pos = start_pos; pos < np; ++pos) {
    const NodeId v = topo_order_[pos];
    ++done;
    const NodeId pv = host_of[idx(cluster_of_[idx(v)])];
    Weight st = 0;
    const std::uint32_t lo = pred_offset_[idx(v)];
    const std::uint32_t hi = pred_offset_[idx(v) + 1];
    for (std::uint32_t a = lo; a < hi; ++a) {
      const PredArc& arc = arcs[a];
      Weight arrival = end[idx(arc.pred)];
      if (arc.weight > 0) {
        const NodeId pp = host_of[idx(arc.pred_cluster)];
        if (contention) {
          for (const std::int32_t li : route_links(pp, pv)) {
            const Weight depart = std::max(arrival, link_free[static_cast<std::size_t>(li)]);
            arrival = depart + arc.weight;
            link_free[static_cast<std::size_t>(li)] = arrival;
          }
        } else {
          arrival += arc.weight * hops(idx(pp), idx(pv));
        }
      }
      st = std::max(st, arrival);
    }
    if (serialize) st = std::max(st, proc_free[idx(pv)]);
    start[idx(v)] = st;
    const Weight en = st + node_weight_[idx(v)];
    end[idx(v)] = en;
    if (en + potential[idx(v)] >= cutoff) {
      // en is exact and the potential schedule-independent for this
      // trial, so the makespan is at least en + potential >= cutoff —
      // certified without the schedule tail.
      *certified = true;
      if (scheduled != nullptr) *scheduled += done;
      return en + potential[idx(v)];
    }
    if (serialize) proc_free[idx(pv)] = en;
    total = std::max(total, en);
  }
  *certified = false;
  if (scheduled != nullptr) *scheduled += done;
  // A suffix launch computes the max over the suffix only; the caller
  // folds in the untouched prefix's committed max.
  return total;
}

// The SoA batch kernel body. Every per-candidate value lives at
// [entity * W + lane], so the lane loops below read and write contiguous
// W-wide rows; with kCutoff == false the lane index is the loop counter
// itself and the loops vectorize. With kCutoff == true lanes are fetched
// through the live-lane list: a lane whose running makespan reaches the
// shared cutoff is swapped out and costs nothing from that task on (its
// state rows go stale, but no other lane ever reads them). Per-lane
// arithmetic is exactly the scalar kernel's — arcs in CSR order, hops in
// route order — so live lanes finish bit-identical to trial_total_time.
template <bool kSerialize, bool kContention, bool kCutoff>
void EvalEngine::soa_schedule(std::span<const std::vector<NodeId>> hosts, SoaWorkspace& ws,
                              std::span<Weight> totals, Weight cutoff) const {
  const std::size_t W = hosts.size();
  const std::size_t np = idx(instance_.num_tasks());
  const std::size_t ns = idx(instance_.num_processors());

  if (ws.end.size() < np * W) ws.end.resize(np * W);
  if (ws.host.size() < ns * W) ws.host.resize(ns * W);
  for (std::size_t c = 0; c < ns; ++c) {
    NodeId* const row = ws.host.data() + c * W;
    for (std::size_t l = 0; l < W; ++l) row[l] = hosts[l][c];
  }
  if constexpr (kSerialize) ws.proc_free.assign(ns * W, Weight{0});
  if constexpr (kContention) ws.link_free.assign(link_count() * W, Weight{0});
  ws.total.assign(W, Weight{0});
  std::size_t nlive = W;
  std::uint32_t* lanes = nullptr;
  if constexpr (kCutoff) {
    ws.live.resize(W);
    lanes = ws.live.data();
    for (std::size_t l = 0; l < W; ++l) lanes[l] = static_cast<std::uint32_t>(l);
  }

  const Matrix<Weight>& hops = instance_.hops();
  Weight* const end = ws.end.data();
  const NodeId* const host = ws.host.data();
  Weight* const proc_free = ws.proc_free.data();
  Weight* const link_free = ws.link_free.data();
  Weight* const total = ws.total.data();
  const PredArc* const arcs = pred_arcs_.data();

  for (const NodeId v : topo_order_) {
    const NodeId* const hv = host + idx(cluster_of_[idx(v)]) * W;
    Weight* const endv = end + idx(v) * W;  // start-time accumulator, then end
    for (std::size_t k = 0; k < nlive; ++k) {
      endv[kCutoff ? lanes[k] : k] = 0;
    }
    const std::uint32_t lo = pred_offset_[idx(v)];
    const std::uint32_t hi = pred_offset_[idx(v) + 1];
    for (std::uint32_t a = lo; a < hi; ++a) {
      const PredArc& arc = arcs[a];
      const Weight* const endp = end + idx(arc.pred) * W;
      if (arc.weight <= 0) {
        // Intra-cluster precedence: a pure max over two contiguous rows.
        for (std::size_t k = 0; k < nlive; ++k) {
          const std::size_t l = kCutoff ? lanes[k] : k;
          endv[l] = std::max(endv[l], endp[l]);
        }
        continue;
      }
      const NodeId* const hp = host + idx(arc.pred_cluster) * W;
      if constexpr (kContention) {
        for (std::size_t k = 0; k < nlive; ++k) {
          const std::size_t l = kCutoff ? lanes[k] : k;
          Weight arrival = endp[l];
          for (const std::int32_t li : route_links(hp[l], hv[l])) {
            Weight& free = link_free[static_cast<std::size_t>(li) * W + l];
            arrival = std::max(arrival, free) + arc.weight;
            free = arrival;
          }
          endv[l] = std::max(endv[l], arrival);
        }
      } else {
        for (std::size_t k = 0; k < nlive; ++k) {
          const std::size_t l = kCutoff ? lanes[k] : k;
          endv[l] = std::max(endv[l], endp[l] + arc.weight * hops(idx(hp[l]), idx(hv[l])));
        }
      }
    }
    const Weight nw = node_weight_[idx(v)];
    if constexpr (kSerialize) {
      for (std::size_t k = 0; k < nlive; ++k) {
        const std::size_t l = kCutoff ? lanes[k] : k;
        Weight& free = proc_free[idx(hv[l]) * W + l];
        const Weight en = std::max(endv[l], free) + nw;
        endv[l] = en;
        free = en;
        total[l] = std::max(total[l], en);
      }
    } else {
      for (std::size_t k = 0; k < nlive; ++k) {
        const std::size_t l = kCutoff ? lanes[k] : k;
        const Weight en = endv[l] + nw;
        endv[l] = en;
        total[l] = std::max(total[l], en);
      }
    }
    if constexpr (kCutoff) {
      // The running makespan only grows, so a lane at or past the cutoff
      // is certified ">= incumbent" and drops out of every later loop.
      for (std::size_t k = 0; k < nlive;) {
        const std::uint32_t l = lanes[k];
        if (total[l] >= cutoff) {
          totals[l] = total[l];
          lanes[k] = lanes[--nlive];
        } else {
          ++k;
        }
      }
      if (nlive == 0) return;
    }
  }
  for (std::size_t k = 0; k < nlive; ++k) {
    const std::size_t l = kCutoff ? lanes[k] : k;
    totals[l] = total[l];
  }
}

void EvalEngine::evaluate_batch_soa(std::span<const std::vector<NodeId>> hosts,
                                    const EvalOptions& options, SoaWorkspace& ws,
                                    std::span<Weight> totals, Weight cutoff) const {
  if (totals.size() < hosts.size()) {
    throw std::invalid_argument("evaluate_batch_soa: totals span too small");
  }
  const std::size_t ns = idx(instance_.num_processors());
  for (const std::vector<NodeId>& host : hosts) {
    if (host.size() != ns) {
      throw std::invalid_argument("evaluate_batch_soa: candidate host map has the wrong size");
    }
  }
  if (hosts.empty()) return;
  if (options.link_contention) ensure_routing();
  const int mode = (options.serialize_within_processor ? 1 : 0) |
                   (options.link_contention ? 2 : 0) | (cutoff != kNoCutoff ? 4 : 0);
  switch (mode) {
    case 0: return soa_schedule<false, false, false>(hosts, ws, totals, cutoff);
    case 1: return soa_schedule<true, false, false>(hosts, ws, totals, cutoff);
    case 2: return soa_schedule<false, true, false>(hosts, ws, totals, cutoff);
    case 3: return soa_schedule<true, true, false>(hosts, ws, totals, cutoff);
    case 4: return soa_schedule<false, false, true>(hosts, ws, totals, cutoff);
    case 5: return soa_schedule<true, false, true>(hosts, ws, totals, cutoff);
    case 6: return soa_schedule<false, true, true>(hosts, ws, totals, cutoff);
    default: return soa_schedule<true, true, true>(hosts, ws, totals, cutoff);
  }
}

int EvalEngine::resolve_batch_width(int requested, const EvalOptions& options) const {
  // Hard cap on any resolved width: wave state is W * per-lane bytes, so an
  // absurd request (CLI typo, wild env var) must degrade to a big wave, not
  // a multi-terabyte allocation.
  constexpr int kMaxWidth = 4096;
  if (requested > 0) return std::min(requested, kMaxWidth);
  if (requested < 0) return 1;
  // MIMDMAP_EVAL_WIDTH=<N> forces the width; "auto" (the CI matrix's other
  // leg) or empty/unset defers to the footprint tuner below. Anything else
  // is ignored rather than trusted.
  if (const char* env = std::getenv("MIMDMAP_EVAL_WIDTH");
      env != nullptr && *env != '\0' && std::string_view(env) != "auto") {
    char* tail = nullptr;
    const long v = std::strtol(env, &tail, 10);
    if (tail != nullptr && *tail == '\0' && v > 0) {
      return static_cast<int>(std::min<long>(v, kMaxWidth));
    }
  }
  // Auto: fit one wave's per-lane state into a conservative cache budget
  // (small enough to leave L2 room for the CSR arcs and hops matrix the
  // walk streams alongside it). Per lane the wave keeps np end times, the
  // transposed host map, and the mode tables.
  std::size_t per_lane = idx(instance_.num_tasks()) * sizeof(Weight) +
                         idx(instance_.num_processors()) * sizeof(NodeId);
  if (options.serialize_within_processor) {
    per_lane += idx(instance_.num_processors()) * sizeof(Weight);
  }
  if (options.link_contention) {
    ensure_routing();
    per_lane += link_count() * sizeof(Weight);
  }
  constexpr std::size_t kCacheBudget = 256 * 1024;
  const std::size_t w = kCacheBudget / std::max<std::size_t>(1, per_lane);
  // Huge instances: once a single lane outgrows the whole budget the
  // quotient collapses to 0, and the old clamp quietly degraded that to
  // width 1 — discarding the SoA walk amortization exactly where it pays
  // most (one CSR stream per wave serves every lane regardless of np, and
  // cache residency is already lost either way). Hold a floor width
  // instead; the fix is behavior-neutral for results (width invariance).
  constexpr std::size_t kHugeInstanceFloor = 8;
  if (w == 0) return static_cast<int>(kHugeInstanceFloor);
  return static_cast<int>(std::clamp<std::size_t>(w, 1, 32));
}

ScheduleResult EvalEngine::workspace_to_result(const EvalWorkspace& ws, Weight total) const {
  const std::size_t np = idx(instance_.num_tasks());
  ScheduleResult r;
  r.start.assign(ws.start.begin(), ws.start.begin() + static_cast<std::ptrdiff_t>(np));
  r.end.assign(ws.end.begin(), ws.end.begin() + static_cast<std::ptrdiff_t>(np));
  r.total_time = total;
  for (std::size_t v = 0; v < np; ++v) {
    if (r.end[v] == total) r.latest_tasks.push_back(node_id(v));
  }
  return r;
}

ScheduleResult EvalEngine::evaluate(const Assignment& assignment,
                                    const EvalOptions& options) const {
  if (assignment.size() != instance_.num_processors() || !assignment.complete()) {
    throw std::invalid_argument("evaluate: assignment is not a complete mapping of all clusters");
  }
  return evaluate(std::span<const NodeId>(assignment.host_of_vector()), options, caller_ws_);
}

ScheduleResult EvalEngine::evaluate(std::span<const NodeId> host_of, const EvalOptions& options,
                                    EvalWorkspace& ws) const {
  const Weight total = run_schedule(host_of, options, ws);
  return workspace_to_result(ws, total);
}

void EvalEngine::for_each_parallel(
    std::size_t count, int num_threads,
    const std::function<void(std::size_t, EvalWorkspace&)>& fn) const {
  // Clamp to the batch size and to the pool's lane budget: lanes beyond
  // count would spawn (or wake) workers with nothing to do, and lanes
  // beyond the budget only add scheduler churn.
  num_threads = std::min(num_threads, pool_->lane_limit());
  if (count < static_cast<std::size_t>(std::numeric_limits<int>::max())) {
    num_threads = std::min(num_threads, static_cast<int>(count));
  }
  if (num_threads < 2 || count < 2) {
    for (std::size_t i = 0; i < count; ++i) fn(i, caller_ws_);
    return;
  }
  // Lane workspaces are (re)sized before the chunk is posted, so workers
  // only ever see stable storage.
  const std::size_t lanes = static_cast<std::size_t>(num_threads);
  if (lane_ws_.size() < lanes - 1) lane_ws_.resize(lanes - 1);
  pool_->run_chunk(count, static_cast<int>(lanes), [&](std::size_t i, int lane) {
    fn(i, lane == 0 ? caller_ws_ : lane_ws_[static_cast<std::size_t>(lane - 1)]);
  });
}

int EvalEngine::pool_thread_count() const noexcept { return pool_->thread_count(); }

int EvalEngine::resolve_num_threads(int requested, const EvalOptions& options) const {
  if (requested != 0) return requested;
  const int lanes = pool_->lane_limit();
  if (lanes < 2) return 1;

  const std::lock_guard<std::mutex> lock(calib_mutex_);
  const int mode = (options.serialize_within_processor ? 1 : 0) |
                   (options.link_contention ? 2 : 0);
  if (auto_threads_[mode] > 0) return auto_threads_[mode];

  using clock = std::chrono::steady_clock;
  if (options.link_contention) ensure_routing();

  // Per-trial cost: a handful of warm-up trials on the caller workspace
  // (identity host map — representative, and always a valid cluster ->
  // processor map), minimum over a few timed batches.
  std::vector<NodeId> host(idx(instance_.num_processors()));
  std::iota(host.begin(), host.end(), NodeId{0});
  for (int i = 0; i < 2; ++i) (void)trial_total_time(host, options, caller_ws_);
  double trial_ns = std::numeric_limits<double>::max();
  for (int rep = 0; rep < 4; ++rep) {
    const auto t0 = clock::now();
    for (int i = 0; i < 4; ++i) (void)trial_total_time(host, options, caller_ws_);
    const auto dt = std::chrono::duration<double, std::nano>(clock::now() - t0).count();
    trial_ns = std::min(trial_ns, dt / 4.0);
  }

  // Chunk-sync overhead of one pool dispatch: measured once per *pool*
  // (process-wide cache), so batch submission of many small instances
  // doesn't re-pay the measurement per engine.
  const double sync_overhead_ns = pool_->chunk_sync_overhead_ns();

  // A refinement chunk hands 4 * lanes trials to the pool, so the extra
  // lanes save roughly 4 * (lanes - 1) trials of wall clock per dispatch;
  // below that the sync overhead eats the gain and sequential wins
  // (DESIGN.md 9.4).
  const bool parallel_pays = trial_ns * 4.0 * static_cast<double>(lanes - 1) > sync_overhead_ns;
  auto_threads_[mode] = parallel_pays ? lanes : 1;
  return auto_threads_[mode];
}

void EvalEngine::batch_total_times(std::span<const std::vector<NodeId>> hosts,
                                   const EvalOptions& options, int num_threads,
                                   std::span<Weight> totals) const {
  batch_total_times(hosts, options, num_threads, /*width=*/0, totals, kNoCutoff);
}

void EvalEngine::batch_total_times(std::span<const std::vector<NodeId>> hosts,
                                   const EvalOptions& options, int num_threads, int width,
                                   std::span<Weight> totals, Weight cutoff,
                                   const CancelToken& cancel) const {
  if (totals.size() < hosts.size()) {
    throw std::invalid_argument("batch_total_times: totals span too small");
  }
  // All validation happens here, on the calling thread: waves dispatched to
  // pool workers must not throw (ThreadPool contract), so a bad candidate
  // has to be rejected before anything is posted.
  const std::size_t ns = idx(instance_.num_processors());
  for (const std::vector<NodeId>& host : hosts) {
    if (host.size() != ns) {
      throw std::invalid_argument("batch_total_times: candidate host map has the wrong size");
    }
  }
  num_threads = resolve_num_threads(num_threads, options);
  // Contention tables are built once up front so pooled lanes never race on
  // first use (call_once would serialise them anyway; this keeps the lanes'
  // first trials warm).
  if (options.link_contention) ensure_routing();
  width = resolve_batch_width(width, options);
  if (width <= 1) {
    // Scalar fallback path (width 1 / MIMDMAP_EVAL_WIDTH=1): one trial per
    // work item on the streaming kernel, exact totals even past the cutoff.
    // A tripped cancel token turns the remaining trials into kNoCutoff
    // sentinels ("cannot beat any incumbent") instead of scheduling them.
    for_each_parallel(hosts.size(), num_threads, [&](std::size_t i, EvalWorkspace& ws) {
      totals[i] =
          cancel.signalled() ? kNoCutoff : trial_total_time(hosts[i], options, ws);
    });
    return;
  }
  // SoA waves: each work item scores one wave of up to `width` candidates
  // in a single topo walk (the tail wave is ragged). Waves are disjoint
  // index ranges, so any lane assignment writes the same totals.
  const auto wave = static_cast<std::size_t>(width);
  const std::size_t waves = (hosts.size() + wave - 1) / wave;
  const auto run_wave = [&](std::size_t w, SoaWorkspace& ws) {
    const std::size_t begin = w * wave;
    const std::size_t count = std::min(wave, hosts.size() - begin);
    const obs::Span span("soa_wave", "eval", "width", static_cast<std::int64_t>(count));
    if (cancel.signalled()) {
      // Cancellation latency bound: a signal lands within one wave — waves
      // that have not started yet report the reject sentinel instead of
      // evaluating.
      std::fill_n(totals.begin() + static_cast<std::ptrdiff_t>(begin), count, kNoCutoff);
      return;
    }
    evaluate_batch_soa(hosts.subspan(begin, count), options, ws,
                       totals.subspan(begin, count), cutoff);
  };
  int lanes = std::min(num_threads, pool_->lane_limit());
  if (waves < static_cast<std::size_t>(std::numeric_limits<int>::max())) {
    lanes = std::min(lanes, static_cast<int>(waves));
  }
  if (lanes < 2 || waves < 2) {
    for (std::size_t w = 0; w < waves; ++w) run_wave(w, caller_soa_);
    return;
  }
  if (lane_soa_.size() < static_cast<std::size_t>(lanes) - 1) {
    lane_soa_.resize(static_cast<std::size_t>(lanes) - 1);
  }
  pool_->run_chunk(waves, lanes, [&](std::size_t w, int lane) {
    run_wave(w, lane == 0 ? caller_soa_ : lane_soa_[static_cast<std::size_t>(lane - 1)]);
  });
}

DeltaEval EvalEngine::begin_delta(const Assignment& committed, const EvalOptions& options,
                                  const DeltaOptions& delta_options) const {
  if (committed.size() != instance_.num_processors() || !committed.complete()) {
    throw std::invalid_argument("begin_delta: assignment is not a complete mapping");
  }
  return begin_delta(std::span<const NodeId>(committed.host_of_vector()), options,
                     delta_options);
}

DeltaEval EvalEngine::begin_delta(std::span<const NodeId> host_of, const EvalOptions& options,
                                  const DeltaOptions& delta_options) const {
  return DeltaEval(*this, host_of, options, delta_options);
}

}  // namespace mimdmap
