// Initial assignment (paper section 4.3.2).
//
// Greedy three-step construction guided by critical abstract edges:
//
//  1. Seed: the abstract node with the maximum critical degree goes onto
//     the system node with the maximum degree.
//  2. Critical growth: repeatedly take the unvisited abstract node with the
//     maximum critical degree that touches a placed node through a critical
//     abstract edge; put it on an unvisited system node *adjacent* to that
//     anchor's processor (maximum degree preferred). If no adjacent
//     processor is free, use the closest free one. Nodes placed adjacently
//     across a critical edge are marked as *critical abstract nodes*
//     (paper definition 5) — the refinement stage pins them.
//  3. Remainder: place the remaining abstract nodes the same way, ranked by
//     communication intensity mca and anchored through ordinary abstract
//     edges; no pinning.
//
// Where the paper says "select any qualifying node arbitrarily" we take the
// smallest id, making the construction deterministic.
//
// Documented fallbacks for cases the paper leaves open (each exercised by
// unit tests):
//  * disconnected critical subgraph / abstract graph: the best-ranked
//    unvisited abstract node seeds a new region on the best free system
//    node;
//  * no critical edges at all: step 2 is empty and nothing is pinned
//    (the paper's step 1 would pin the seed; definition 5 requires a
//    critical edge, so we pin the seed only when its critical degree is
//    positive).
#pragma once

#include <vector>

#include "core/assignment.hpp"
#include "core/critical.hpp"
#include "core/instance.hpp"

namespace mimdmap {

struct InitialAssignmentResult {
  Assignment assignment;
  /// pinned[cluster] — true for critical abstract nodes (definition 5);
  /// the refinement stage never moves them.
  std::vector<bool> pinned;
};

[[nodiscard]] InitialAssignmentResult initial_assignment(const MappingInstance& instance,
                                                         const CriticalInfo& critical);

}  // namespace mimdmap
