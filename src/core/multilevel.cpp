// Multilevel coarsen–map–refine pipeline (DESIGN.md section 18).
//
//   coarsen within clusters (cluster/coarsen.hpp)
//     -> flat paper pipeline on the coarsest graph
//     -> uncoarsen level by level, each level locally refined on its own
//        delta evaluator (verdict trials, pairwise_exchange_refine)
//     -> final assignment scored on the caller's level-0 engine
//
// Every level shares the original ns clusters (coarsening never crosses
// cluster boundaries), so the cluster -> processor assignment projects
// down unchanged between levels; only the evaluation graph refines.
#include <chrono>
#include <optional>
#include <utility>

#include "baseline/pairwise.hpp"
#include "cluster/coarsen.hpp"
#include "core/mapper.hpp"
#include "obs/trace.hpp"

namespace mimdmap {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
      .count();
}

void accumulate(DeltaStats& into, const DeltaStats& from) {
  into.trials += from.trials;
  into.delta_trials += from.delta_trials;
  into.full_fallbacks += from.full_fallbacks;
  into.commits += from.commits;
  into.tasks_rescheduled += from.tasks_rescheduled;
  into.positions_scanned += from.positions_scanned;
  into.shift_fast_paths += from.shift_fast_paths;
  into.verdict_exits += from.verdict_exits;
  into.claims_skipped += from.claims_skipped;
  into.potential_cache_disabled += from.potential_cache_disabled;
}

}  // namespace

MappingReport map_multilevel(const EvalEngine& engine, const MapperOptions& options) {
  const MappingInstance& instance = engine.instance();

  CoarsenOptions coarsen_options;
  coarsen_options.target = options.multilevel.coarsen_target;
  coarsen_options.max_levels = options.multilevel.max_levels;
  coarsen_options.min_reduction = options.multilevel.min_reduction;

  CoarseningHierarchy hierarchy;
  {
    const obs::Span span("coarsen", "mapper", "np", instance.num_tasks());
    hierarchy = coarsen_hierarchy(instance.problem(), instance.clustering(), coarsen_options);
  }
  // Trivial hierarchy (target >= np or nothing contractible): the flat
  // pipeline on the caller's engine, bit-for-bit.
  if (hierarchy.trivial()) return detail::map_flat(engine, options);

  // Per-level instances share the caller's topology (tables when present,
  // otherwise the same distance model) and worker pool.
  const auto make_level_instance = [&instance](const CoarseLevel& level) {
    if (instance.shared_tables()) {
      return MappingInstance(level.graph, level.clustering, instance.system(),
                             instance.shared_tables());
    }
    return MappingInstance(level.graph, level.clustering, instance.system(),
                           instance.distance_model());
  };

  MappingReport report;
  const int num_coarse = static_cast<int>(hierarchy.levels.size());
  report.levels.reserve(static_cast<std::size_t>(num_coarse) + 1);

  // Level-0 diagnostics up front, exactly like the flat pipeline's opening
  // stages — the lower bound is level-invariant in spirit but only exact
  // here, and report consumers expect ideal/critical of the real problem.
  {
    const obs::Span span("ideal_schedule", "mapper");
    report.ideal = compute_ideal_schedule(instance);
  }
  report.lower_bound = report.ideal.lower_bound;
  {
    const obs::Span span("find_critical", "mapper");
    report.critical = find_critical(instance, report.ideal, options.critical);
  }
  report.eval_width = engine.resolve_batch_width(options.refine.eval_width, options.refine.eval);

  // 1. Map the coarsest graph with the full paper pipeline.
  Assignment host;
  MapStatus status = MapStatus::kOk;
  {
    const CoarseLevel& coarsest = hierarchy.coarsest();
    const obs::Span span("map_coarse", "mapper", "np", coarsest.graph.node_count());
    const auto start = std::chrono::steady_clock::now();
    const MappingInstance coarse_instance = make_level_instance(coarsest);
    const EvalEngine coarse_engine(coarse_instance, engine.pool());
    MapperOptions coarse_options = options;
    coarse_options.multilevel.enabled = false;
    const MappingReport coarse = detail::map_flat(coarse_engine, coarse_options);
    host = coarse.assignment;
    status = coarse.status;
    report.refinement_trials += coarse.refinement_trials;
    report.improvements += coarse.improvements;
    accumulate(report.delta, coarse.delta);
    report.levels.push_back({num_coarse, coarsest.graph.node_count(),
                             coarsest.graph.edge_count(), coarse.refinement_trials,
                             coarse.improvements, coarse.initial_total,
                             coarse.schedule.total_time, elapsed_ms(start)});
  }

  // The multilevel "initial assignment": the coarse mapping projected to
  // level 0 (identity on host_of), scored exactly on the caller's engine.
  report.initial_assignment = host;
  report.pinned.assign(idx(instance.num_processors()), false);
  report.initial_total = engine.evaluate(host, options.refine.eval).total_time;

  // 2. Uncoarsen: refine the projected assignment at every finer level on
  // that level's delta evaluator. Level k (k >= 1) is hierarchy.levels[k-1];
  // level 0 is the caller's instance/engine.
  bool base_refined = false;
  for (int level = num_coarse - 1; level >= 0 && status == MapStatus::kOk; --level) {
    // Stage boundary between levels: a tripped token ships the current
    // projection (valid at every level) scored at level 0 below.
    if (options.refine.cancel.signalled()) {
      status = options.refine.cancel.status();
      break;
    }
    const obs::Span span("uncoarsen_refine", "mapper", "level", level);
    const auto start = std::chrono::steady_clock::now();

    std::optional<MappingInstance> level_instance;
    std::optional<EvalEngine> level_engine;
    const EvalEngine* eng = &engine;
    if (level > 0) {
      level_instance.emplace(make_level_instance(hierarchy.levels[static_cast<std::size_t>(level - 1)]));
      level_engine.emplace(*level_instance, engine.pool());
      eng = &*level_engine;
    }

    const IdealSchedule level_ideal =
        level > 0 ? compute_ideal_schedule(eng->instance()) : report.ideal;
    InitialAssignmentResult projected;
    projected.assignment = host;
    projected.pinned.assign(idx(instance.num_processors()), false);

    RefineOptions level_options = options.refine;
    level_options.max_trials = options.multilevel.level_trials;
    level_options.respect_pinned = false;
    // Decorrelate the per-level trial streams deterministically.
    level_options.seed =
        options.refine.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(level + 1);

    const RefineResult refined = pairwise_exchange_refine(*eng, level_ideal, projected, level_options);
    host = refined.assignment;
    status = refined.status;
    report.refinement_trials += refined.trials_used;
    report.improvements += refined.improvements;
    accumulate(report.delta, refined.delta);
    report.levels.push_back({level, eng->instance().num_tasks(),
                             eng->instance().problem().edge_count(), refined.trials_used,
                             refined.improvements, refined.initial_total,
                             refined.schedule.total_time, elapsed_ms(start)});
    if (level == 0 && status == MapStatus::kOk) {
      base_refined = true;
      report.assignment = refined.assignment;
      report.schedule = refined.schedule;
      report.terminated_early = refined.terminated_early;
    }
  }

  // Cancelled (or base level reported a tripped token mid-refine): the
  // incumbent projection is still a complete, valid assignment — score it
  // exactly at level 0 and ship it degraded, never garbage.
  if (!base_refined) {
    report.assignment = host;
    report.schedule = engine.evaluate(host, options.refine.eval);
  }
  report.reached_lower_bound = report.schedule.total_time == report.lower_bound;
  report.status = status;
  return report;
}

}  // namespace mimdmap
