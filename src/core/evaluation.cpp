#include "core/evaluation.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/eval_engine.hpp"
#include "graph/routing.hpp"
#include "graph/topological.hpp"

namespace mimdmap {
namespace {

void check_assignment(const MappingInstance& instance, const Assignment& assignment) {
  if (assignment.size() != instance.num_processors() || !assignment.complete()) {
    throw std::invalid_argument("evaluate: assignment is not a complete mapping of all clusters");
  }
}

}  // namespace

Matrix<Weight> communication_matrix(const MappingInstance& instance,
                                    const Assignment& assignment) {
  check_assignment(instance, assignment);
  const TaskGraph& problem = instance.problem();
  const Clustering& clustering = instance.clustering();
  auto comm = Matrix<Weight>::square(idx(problem.node_count()), 0);
  for (const TaskEdge& e : problem.edges()) {
    const NodeId ca = clustering.cluster_of(e.from);
    const NodeId cb = clustering.cluster_of(e.to);
    if (ca == cb) continue;
    const NodeId pa = assignment.host_of(ca);
    const NodeId pb = assignment.host_of(cb);
    comm(idx(e.from), idx(e.to)) = e.weight * instance.hops()(idx(pa), idx(pb));
  }
  return comm;
}

ScheduleResult evaluate(const MappingInstance& instance, const Assignment& assignment,
                        const EvalOptions& options) {
  const EvalEngine engine(instance);
  return engine.evaluate(assignment, options);
}

ScheduleResult evaluate_reference(const MappingInstance& instance, const Assignment& assignment,
                                  const EvalOptions& options) {
  check_assignment(instance, assignment);
  const TaskGraph& problem = instance.problem();
  const Clustering& clustering = instance.clustering();
  const Matrix<Weight>& hops = instance.hops();

  const auto order = topological_order(problem);
  if (!order) throw std::invalid_argument("evaluate: problem graph has a cycle");

  const NodeId np = problem.node_count();
  ScheduleResult r;
  r.start.assign(idx(np), 0);
  r.end.assign(idx(np), 0);

  std::vector<Weight> proc_free(idx(instance.num_processors()), 0);

  // Contention state (extension): one busy-until time per physical link.
  std::unique_ptr<RoutingTable> routing;
  std::vector<Weight> link_free;
  if (options.link_contention) {
    routing = std::make_unique<RoutingTable>(instance.system());
    link_free.assign(routing->link_count(), 0);
  }

  for (const NodeId v : *order) {
    const NodeId cv = clustering.cluster_of(v);
    const NodeId pv = assignment.host_of(cv);
    Weight start = 0;
    for (const auto& [pred, w] : problem.predecessors(v)) {
      // Communication cost: clustered weight times hop distance between the
      // hosting processors (0 for intra-cluster precedences).
      const Weight cw = clustering.same_cluster(pred, v) ? 0 : w;
      Weight arrival = r.end[idx(pred)];
      if (cw > 0) {
        const NodeId pp = assignment.host_of(clustering.cluster_of(pred));
        if (options.link_contention) {
          // Store-and-forward along the fixed route; each hop holds its
          // link exclusively for the message's full weight.
          const std::vector<NodeId> path = routing->route(pp, pv);
          for (std::size_t k = 0; k + 1 < path.size(); ++k) {
            const auto li = static_cast<std::size_t>(
                routing->link_index(path[k], path[k + 1]));
            const Weight depart = std::max(arrival, link_free[li]);
            arrival = depart + cw;
            link_free[li] = arrival;
          }
        } else {
          arrival += cw * hops(idx(pp), idx(pv));
        }
      }
      start = std::max(start, arrival);
    }
    if (options.serialize_within_processor) {
      start = std::max(start, proc_free[idx(pv)]);
    }
    r.start[idx(v)] = start;
    r.end[idx(v)] = start + problem.node_weight(v);
    proc_free[idx(pv)] = std::max(proc_free[idx(pv)], r.end[idx(v)]);
    r.total_time = std::max(r.total_time, r.end[idx(v)]);
  }
  for (NodeId v = 0; v < np; ++v) {
    if (r.end[idx(v)] == r.total_time) r.latest_tasks.push_back(v);
  }
  return r;
}

Weight total_time(const MappingInstance& instance, const Assignment& assignment,
                  const EvalOptions& options) {
  return evaluate(instance, assignment, options).total_time;
}

}  // namespace mimdmap
