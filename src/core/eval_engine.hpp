// EvalEngine: the precomputed schedule-evaluation engine.
//
// The whole mapping pipeline (paper sections 4.3.1-4.3.4) is "generate a
// candidate assignment, evaluate its total time, keep iff better" — so
// evaluation throughput *is* mapper throughput. The free evaluate() in
// evaluation.hpp recomputes the topological order, re-walks pointer-chasing
// adjacency lists, reallocates every schedule buffer and (under
// link_contention) rebuilds a RoutingTable on every call. EvalEngine hoists
// all of that per-*instance* work out of the per-*trial* loop:
//
//  * the topological order of the problem graph (fixed per instance),
//  * a flat CSR predecessor array whose arcs carry pre-resolved
//    (pred, cluster_of(pred), clus_edge(pred, v)) triples — one contiguous
//    scan per trial instead of nested vector-of-pair walks plus two matrix
//    lookups per precedence,
//  * a flat cluster_of / node-weight lookup,
//  * one shared RoutingTable with every route pre-flattened to a link-index
//    sequence (built lazily, only when link_contention is first requested),
//  * a persistent worker pool so parallel search loops stop paying
//    thread-spawn latency per call,
//  * per-lane EvalWorkspace scratch buffers, so steady-state trial
//    evaluation performs ZERO heap allocations.
//
// Determinism guarantee: the trial kernel visits tasks in exactly the order
// the legacy evaluate() did (topological order, ties by node id;
// predecessors in edge-insertion order), so every result is bit-identical
// to evaluate_reference() in all three modes (plain,
// serialize_within_processor, link_contention) — the equivalence suite in
// tests/eval_engine_test.cpp enforces this.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/assignment.hpp"
#include "core/evaluation.hpp"
#include "core/instance.hpp"
#include "graph/routing.hpp"

namespace mimdmap {

/// Reusable scratch buffers for one evaluation lane. Sized by the engine on
/// first use and reused for every subsequent trial; after warm-up a trial
/// touches no allocator. One workspace must never be shared by two
/// concurrent evaluations.
struct EvalWorkspace {
  std::vector<Weight> start;
  std::vector<Weight> end;
  std::vector<Weight> proc_free;
  std::vector<Weight> link_free;
};

class EvalEngine {
 public:
  /// Precomputes the evaluation tables for `instance`. The instance must
  /// outlive the engine (the engine keeps a reference).
  explicit EvalEngine(const MappingInstance& instance);
  ~EvalEngine();

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  [[nodiscard]] const MappingInstance& instance() const noexcept { return instance_; }

  /// Full schedule of a complete assignment — same checks and bit-identical
  /// results as the legacy free evaluate(). Writes through the shared
  /// caller workspace, so despite being const it must not be called from
  /// two threads concurrently on one engine; concurrent evaluators must use
  /// the span overload below with private workspaces (the engine's own
  /// pool already does).
  [[nodiscard]] ScheduleResult evaluate(const Assignment& assignment,
                                        const EvalOptions& options = {}) const;

  /// As above against an explicit host_of vector (host[c] = processor of
  /// cluster c), writing through the caller's workspace.
  [[nodiscard]] ScheduleResult evaluate(std::span<const NodeId> host_of,
                                        const EvalOptions& options, EvalWorkspace& ws) const;

  /// Hot path: total time only. No argument validation, no allocations at
  /// steady state. `host_of` must be a complete cluster -> processor map;
  /// concurrent callers must each bring a private workspace.
  [[nodiscard]] Weight trial_total_time(std::span<const NodeId> host_of,
                                        const EvalOptions& options, EvalWorkspace& ws) const;

  /// A workspace for the calling thread (lane 0 of the pool). Not
  /// thread-safe: concurrent callers must bring their own EvalWorkspace.
  [[nodiscard]] EvalWorkspace& caller_workspace() const noexcept { return caller_ws_; }

  /// Runs fn(i, workspace) for every i in [0, count) across the persistent
  /// worker pool: the caller participates plus up to num_threads - 1 pooled
  /// workers, each with a private lane workspace. Blocks until all indices
  /// are done. Iteration order across lanes is unspecified, so fn must only
  /// write to per-index slots; with num_threads < 2 it degenerates to an
  /// inline sequential loop.
  void for_each_parallel(std::size_t count, int num_threads,
                         const std::function<void(std::size_t, EvalWorkspace&)>& fn) const;

  /// Convenience batch used by the search loops: totals[i] =
  /// trial_total_time(hosts[i]). Deterministic for any thread count.
  void batch_total_times(std::span<const std::vector<NodeId>> hosts, const EvalOptions& options,
                         int num_threads, std::span<Weight> totals) const;

 private:
  /// One pre-resolved precedence arc into a task.
  struct PredArc {
    NodeId pred = 0;          // predecessor task
    NodeId pred_cluster = 0;  // cluster_of(pred)
    Weight weight = 0;        // clus_edge(pred, task); 0 for intra-cluster
  };

  /// Persistent worker pool: threads are spawned on the first parallel call
  /// and parked on a condition variable between jobs, replacing the legacy
  /// per-call std::thread spawning in evaluate_parallel().
  class WorkerPool {
   public:
    ~WorkerPool();
    /// Runs fn(index, lane) for index in [0, count); the caller drives lane
    /// 0 and pooled workers drive lanes [1, lanes).
    void run(std::size_t count, int lanes, const std::function<void(std::size_t, int)>& fn);

   private:
    void worker_main(int slot);

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> threads_;
    const std::function<void(std::size_t, int)>* job_ = nullptr;
    std::atomic<std::size_t> next_{0};
    std::size_t count_ = 0;
    std::uint64_t generation_ = 0;
    int participants_ = 0;  // pooled workers admitted to the current job
    int pending_ = 0;       // admitted workers not yet finished
    bool shutdown_ = false;
  };

  void ensure_workspace(EvalWorkspace& ws, bool link_contention) const;
  void ensure_routing() const;
  /// Shared kernel: schedules every task, filling ws.start / ws.end, and
  /// returns the makespan.
  Weight run_schedule(std::span<const NodeId> host_of, const EvalOptions& options,
                      EvalWorkspace& ws) const;
  ScheduleResult workspace_to_result(const EvalWorkspace& ws, Weight total) const;

  const MappingInstance& instance_;
  std::vector<NodeId> topo_order_;
  std::vector<std::uint32_t> pred_offset_;  // CSR: arcs of task v are
  std::vector<PredArc> pred_arcs_;          // pred_arcs_[pred_offset_[v] .. [v+1])
  std::vector<NodeId> cluster_of_;
  std::vector<Weight> node_weight_;

  // Lazily built contention tables (plain evaluations never pay for them).
  mutable std::once_flag routing_once_;
  mutable std::unique_ptr<RoutingTable> routing_;
  mutable std::vector<std::uint32_t> route_offset_;  // CSR over (from * ns + to)
  mutable std::vector<std::int32_t> route_links_;    // link indices along each route

  mutable WorkerPool pool_;
  mutable EvalWorkspace caller_ws_;
  mutable std::vector<EvalWorkspace> lane_ws_;  // lane i >= 1 -> lane_ws_[i - 1]
};

}  // namespace mimdmap
