// EvalEngine: the precomputed schedule-evaluation engine.
//
// The whole mapping pipeline (paper sections 4.3.1-4.3.4) is "generate a
// candidate assignment, evaluate its total time, keep iff better" — so
// evaluation throughput *is* mapper throughput. The free evaluate() in
// evaluation.hpp recomputes the topological order, re-walks pointer-chasing
// adjacency lists, reallocates every schedule buffer and (under
// link_contention) rebuilds a RoutingTable on every call. EvalEngine hoists
// all of that per-*instance* work out of the per-*trial* loop:
//
//  * the topological order of the problem graph (fixed per instance),
//  * a flat CSR predecessor array whose arcs carry pre-resolved
//    (pred, cluster_of(pred), clus_edge(pred, v)) triples — one contiguous
//    scan per trial instead of nested vector-of-pair walks plus two matrix
//    lookups per precedence,
//  * a flat cluster_of / node-weight lookup,
//  * one shared RoutingTable with every route pre-flattened to a link-index
//    sequence (built lazily, only when link_contention is first requested),
//  * a handle on the process-wide shared ThreadPool (service/thread_pool.hpp)
//    so parallel search loops stop paying thread-spawn latency per call and
//    many engines mapping concurrently shard one pool instead of
//    oversubscribing the machine,
//  * per-lane EvalWorkspace scratch buffers, so steady-state trial
//    evaluation performs ZERO heap allocations.
//
// Determinism guarantee: the trial kernel visits tasks in exactly the order
// the legacy evaluate() did (topological order, ties by node id;
// predecessors in edge-insertion order), so every result is bit-identical
// to evaluate_reference() in all three modes (plain,
// serialize_within_processor, link_contention) — the equivalence suite in
// tests/eval_engine_test.cpp enforces this.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/assignment.hpp"
#include "core/evaluation.hpp"
#include "core/instance.hpp"
#include "graph/routing.hpp"
#include "service/thread_pool.hpp"

namespace mimdmap {

class DeltaEval;

/// Reusable scratch buffers for one evaluation lane. Sized by the engine on
/// first use and reused for every subsequent trial; after warm-up a trial
/// touches no allocator. One workspace must never be shared by two
/// concurrent evaluations.
struct EvalWorkspace {
  std::vector<Weight> start;
  std::vector<Weight> end;
  std::vector<Weight> proc_free;
  std::vector<Weight> link_free;
};

/// Scratch buffers for one structure-of-arrays batch-evaluation lane
/// (EvalEngine::evaluate_batch_soa). All per-candidate state is laid out
/// `[entity][lane]` — `end[idx(task) * W + lane]`, `proc_free[idx(proc) * W
/// + lane]`, `link_free[link * W + lane]` — so the kernel's inner loops run
/// over contiguous lanes. Grown on demand and reused across waves; one
/// workspace must never be shared by two concurrent evaluations.
struct SoaWorkspace {
  std::vector<Weight> end;        // [task][lane] end times
  std::vector<NodeId> host;       // [cluster][lane] transposed candidates
  std::vector<Weight> proc_free;  // [proc][lane] (serialize mode)
  std::vector<Weight> link_free;  // [link][lane] (contention mode)
  std::vector<Weight> total;      // [lane] running makespan
  std::vector<std::uint32_t> live;  // live lane ids (early-exit compaction)
};

/// "No early exit" sentinel for the SoA kernel's cutoff parameter.
inline constexpr Weight kNoCutoff = std::numeric_limits<Weight>::max();

/// Tuning knobs for the incremental delta evaluator (see DeltaEval below).
struct DeltaOptions {
  /// A trial falls back to the full kernel once it has rescheduled more
  /// than this fraction of all tasks — beyond that point the incremental
  /// bookkeeping costs more than it saves (a delta recompute carries about
  /// 3x the per-task cost of the streaming kernel, so the break-even sits
  /// near a third of the graph). 0 forces every trial onto the full kernel
  /// (useful for testing); 1 disables the fallback. The result is
  /// bit-identical either way.
  double fallback_fraction = 0.3;
};

/// Counters accumulated by a DeltaEval across its lifetime.
struct DeltaStats {
  std::int64_t trials = 0;            ///< try_move + try_swap calls
  std::int64_t delta_trials = 0;      ///< trials served by suffix rescheduling
  std::int64_t full_fallbacks = 0;    ///< trials served by the full kernel
  std::int64_t commits = 0;
  std::int64_t tasks_rescheduled = 0;  ///< recomputed tasks over all delta trials
  std::int64_t positions_scanned = 0;  ///< suffix positions visited (incl. clean)
};

class EvalEngine {
 public:
  /// Precomputes the evaluation tables for `instance`. The instance must
  /// outlive the engine (the engine keeps a reference). `pool` is the
  /// worker pool parallel calls dispatch to — batch orchestrators
  /// (MapService) thread one handle through every engine they create;
  /// nullptr acquires the process-wide ThreadPool::shared().
  explicit EvalEngine(const MappingInstance& instance,
                      std::shared_ptr<ThreadPool> pool = nullptr);
  ~EvalEngine();

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  [[nodiscard]] const MappingInstance& instance() const noexcept { return instance_; }

  /// Full schedule of a complete assignment — same checks and bit-identical
  /// results as the legacy free evaluate(). Writes through the shared
  /// caller workspace, so despite being const it must not be called from
  /// two threads concurrently on one engine; concurrent evaluators must use
  /// the span overload below with private workspaces (the engine's own
  /// pool already does).
  [[nodiscard]] ScheduleResult evaluate(const Assignment& assignment,
                                        const EvalOptions& options = {}) const;

  /// As above against an explicit host_of vector (host[c] = processor of
  /// cluster c), writing through the caller's workspace.
  [[nodiscard]] ScheduleResult evaluate(std::span<const NodeId> host_of,
                                        const EvalOptions& options, EvalWorkspace& ws) const;

  /// Hot path: total time only. No argument validation, no allocations at
  /// steady state. `host_of` must be a complete cluster -> processor map;
  /// concurrent callers must each bring a private workspace.
  [[nodiscard]] Weight trial_total_time(std::span<const NodeId> host_of,
                                        const EvalOptions& options, EvalWorkspace& ws) const;

  /// A workspace for the calling thread (lane 0 of the pool). Not
  /// thread-safe: concurrent callers must bring their own EvalWorkspace.
  [[nodiscard]] EvalWorkspace& caller_workspace() const noexcept { return caller_ws_; }

  /// Starts an incremental delta-evaluation session anchored at `committed`
  /// (which must be a complete assignment). The returned DeltaEval scores
  /// single-cluster moves and cluster swaps by rescheduling only the
  /// affected suffix of the topological order — see the DeltaEval class
  /// comment. The engine must outlive the returned object.
  [[nodiscard]] DeltaEval begin_delta(const Assignment& committed,
                                      const EvalOptions& options = {},
                                      const DeltaOptions& delta_options = {}) const;

  /// As above against an explicit host_of vector (host[c] = processor of
  /// cluster c; need not be a permutation).
  [[nodiscard]] DeltaEval begin_delta(std::span<const NodeId> host_of,
                                      const EvalOptions& options,
                                      const DeltaOptions& delta_options = {}) const;

  /// Resolves a RefineOptions-style thread count: values > 0 pass through,
  /// 0 means "auto" — a handful of timed warm-up trials pick between
  /// sequential and the pool's full lane budget, dropping to sequential
  /// when the measured per-trial cost is below the measured per-lane share
  /// of the pool's chunk-sync overhead (DESIGN.md 9.4). The sync overhead
  /// is measured once per *pool* (process-wide) and the per-mode decision
  /// once per engine; results are bit-identical either way, so the timing
  /// nondeterminism never leaks into mapping output.
  [[nodiscard]] int resolve_num_threads(int requested, const EvalOptions& options = {}) const;

  /// The worker pool this engine dispatches to (shared, never null).
  [[nodiscard]] const std::shared_ptr<ThreadPool>& pool() const noexcept { return pool_; }

  /// Worker threads of the underlying shared pool spawned so far
  /// (diagnostics; the caller's own thread is not counted).
  [[nodiscard]] int pool_thread_count() const noexcept;

  /// Runs fn(i, workspace) for every i in [0, count) across the shared
  /// worker pool: the caller participates plus up to num_threads - 1 pooled
  /// workers, each with a private lane workspace. num_threads is clamped to
  /// count and to the pool's lane budget so tiny batches neither spawn nor
  /// wake more workers than they can feed. Blocks until all indices are
  /// done. Iteration order across lanes is unspecified, so fn must only
  /// write to per-index slots; with num_threads < 2 it degenerates to an
  /// inline sequential loop.
  void for_each_parallel(std::size_t count, int num_threads,
                         const std::function<void(std::size_t, EvalWorkspace&)>& fn) const;

  /// Convenience batch used by the search loops: totals[i] =
  /// trial_total_time(hosts[i]). Deterministic for any thread count;
  /// num_threads = 0 resolves via resolve_num_threads(). Candidates are
  /// evaluated in SoA waves of resolve_batch_width(0) lanes.
  void batch_total_times(std::span<const std::vector<NodeId>> hosts, const EvalOptions& options,
                         int num_threads, std::span<Weight> totals) const;

  /// Full form: `width` lanes per SoA wave (resolved via
  /// resolve_batch_width; 1 keeps every candidate on the scalar trial
  /// kernel) and an optional shared incumbent. With cutoff != kNoCutoff a
  /// lane whose *partial* makespan already reaches the cutoff early-exits:
  /// its reported total is then a certified lower bound >= cutoff on the
  /// exact makespan (i.e. "cannot beat the incumbent") instead of the exact
  /// value. Lanes reported below the cutoff are always exact, so
  /// keep-iff-better scans make bit-identical decisions for every width,
  /// thread count and cutoff.
  void batch_total_times(std::span<const std::vector<NodeId>> hosts, const EvalOptions& options,
                         int num_threads, int width, std::span<Weight> totals,
                         Weight cutoff = kNoCutoff) const;

  /// The SoA batch kernel: schedules all hosts.size() candidates in ONE
  /// walk over the topological order and CSR predecessor arcs, with
  /// lane-contiguous inner loops over the `[task][lane]` state arrays
  /// (DESIGN.md 12). totals[l] receives candidate l's makespan —
  /// bit-identical to trial_total_time(hosts[l]) / evaluate_reference —
  /// except for lanes early-exited by `cutoff` (see batch_total_times
  /// above), which report a lower bound >= cutoff. Runs on the calling
  /// thread; concurrent callers must bring private workspaces. Zero heap
  /// allocations once the workspace is warm.
  void evaluate_batch_soa(std::span<const std::vector<NodeId>> hosts,
                          const EvalOptions& options, SoaWorkspace& ws,
                          std::span<Weight> totals, Weight cutoff = kNoCutoff) const;

  /// Resolves a RefineOptions-style SoA wave width: values > 0 pass
  /// through (capped at 4096 — wave state scales with W, so absurd
  /// requests degrade instead of exhausting memory), negative values mean
  /// 1 (scalar path), 0 means "auto" — the
  /// MIMDMAP_EVAL_WIDTH environment variable when set to a positive
  /// integer ("auto", empty and malformed values defer to the tuner),
  /// else a width that fits the wave's per-lane state (end times
  /// plus mode-dependent proc/link arrays) into a fixed L1/L2 cache budget
  /// (DESIGN.md 12.2). Deterministic — no timing feeds into it — so any
  /// resolved width yields bit-identical mapping results.
  [[nodiscard]] int resolve_batch_width(int requested, const EvalOptions& options = {}) const;

 private:
  /// One pre-resolved precedence arc into a task.
  struct PredArc {
    NodeId pred = 0;          // predecessor task
    NodeId pred_cluster = 0;  // cluster_of(pred)
    Weight weight = 0;        // clus_edge(pred, task); 0 for intra-cluster
  };

  /// One pre-resolved successor arc (the delta evaluator's forward mirror
  /// of PredArc; inter-cluster iff succ_cluster != cluster_of(task)).
  struct SuccArc {
    NodeId succ = 0;
    NodeId succ_cluster = 0;
  };

  /// One inter-cluster arc adjacent to a cluster, from that cluster's
  /// perspective — the delta evaluator's seed unit. `head` is the arc's
  /// receiver (the task whose start-time recurrence carries the cost term),
  /// `other_cluster` the far endpoint's cluster, `incoming` whether the
  /// cluster under consideration is the receiver side.
  struct ClusterArc {
    NodeId head = 0;
    std::uint32_t head_pos = 0;  // topo position of head
    NodeId other_cluster = 0;
    bool incoming = false;
  };

  void ensure_workspace(EvalWorkspace& ws, bool link_contention) const;
  void ensure_routing() const;
  /// Pre-flattened link-index sequence of the fixed route pp -> pv.
  /// ensure_routing() must have completed. Shared by the scalar kernel,
  /// the SoA kernel and DeltaEval's claim replay so all three issue link
  /// claims along byte-identical hop sequences.
  [[nodiscard]] std::span<const std::int32_t> route_links(NodeId pp, NodeId pv) const noexcept {
    const std::size_t r = idx(pp) * idx(instance_.num_processors()) + idx(pv);
    return {route_links_.data() + route_offset_[r], route_offset_[r + 1] - route_offset_[r]};
  }
  /// Shared kernel: schedules every task, filling ws.start / ws.end, and
  /// returns the makespan.
  Weight run_schedule(std::span<const NodeId> host_of, const EvalOptions& options,
                      EvalWorkspace& ws) const;
  ScheduleResult workspace_to_result(const EvalWorkspace& ws, Weight total) const;
  /// Mode-specialized body of evaluate_batch_soa. kCutoff selects the
  /// live-lane-compaction variant; without it the lane loops stay dense.
  template <bool kSerialize, bool kContention, bool kCutoff>
  void soa_schedule(std::span<const std::vector<NodeId>> hosts, SoaWorkspace& ws,
                    std::span<Weight> totals, Weight cutoff) const;

  const MappingInstance& instance_;
  std::vector<NodeId> topo_order_;
  std::vector<std::uint32_t> topo_pos_;     // inverse of topo_order_
  std::vector<std::uint32_t> pred_offset_;  // CSR: arcs of task v are
  std::vector<PredArc> pred_arcs_;          // pred_arcs_[pred_offset_[v] .. [v+1])
  std::vector<std::uint32_t> succ_offset_;  // CSR mirror of pred_offset_:
  std::vector<SuccArc> succ_arcs_;          // successors of v, edge-insertion order
  std::vector<std::uint32_t> cluster_arc_offset_;  // CSR over clusters:
  std::vector<ClusterArc> cluster_arcs_;           // inter-cluster arcs of cluster c
  std::vector<std::uint32_t> cluster_min_pos_;     // earliest member topo position
  std::vector<NodeId> cluster_of_;
  std::vector<Weight> node_weight_;

  // Lazily built contention tables (plain evaluations never pay for them).
  mutable std::once_flag routing_once_;
  mutable std::unique_ptr<RoutingTable> routing_;
  mutable std::vector<std::uint32_t> route_offset_;  // CSR over (from * ns + to)
  mutable std::vector<std::int32_t> route_links_;    // link indices along each route

  std::shared_ptr<ThreadPool> pool_;  // shared, never null
  mutable EvalWorkspace caller_ws_;
  mutable std::vector<EvalWorkspace> lane_ws_;  // lane i >= 1 -> lane_ws_[i - 1]
  mutable SoaWorkspace caller_soa_;
  mutable std::vector<SoaWorkspace> lane_soa_;  // lane i >= 1 -> lane_soa_[i - 1]

  // Auto-thread calibration cache (resolve_num_threads). The pool-dispatch
  // sync overhead lives in the shared ThreadPool (measured once
  // process-wide); only the per-mode decision is cached here.
  mutable std::mutex calib_mutex_;
  mutable int auto_threads_[4] = {0, 0, 0, 0};  // per (serialize, contention) mode

  friend class DeltaEval;
};

/// Incremental delta evaluation for local-move search loops (pairwise
/// exchange, annealing). Holds a *committed* schedule — start/end per task,
/// the accepted host_of map and mode-specific auxiliary state — against
/// which a trial move (reassign one cluster, or swap two clusters) is
/// scored by rescheduling only the affected suffix of the engine's
/// precomputed topological order:
///
///  * the dirty seed set is per-arc tight: a task is seeded only when one
///    of its inter-cluster arcs actually changes cost — the hop distance
///    between its endpoints' hosts differs (plain/serialize), or the arc
///    carries a message at all (contention: the route itself changes);
///  * plain mode processes dirty tasks through a bitmask worklist in
///    topological-position order — clean tasks are never visited, and the
///    makespan closes in O(1) through a committed max-holder count (with
///    an O(np) max re-scan only when every committed makespan holder was
///    itself rescheduled);
///  * the serialize/contention modes scan the suffix from the earliest
///    affected position: clean tasks cost one epoch-stamp check plus the
///    replay of their committed processor/link contributions, dirty tasks
///    are recomputed with the exact full-kernel arithmetic;
///  * a recomputed task whose end time is unchanged stops propagating
///    (early cutoff);
///  * serialize_within_processor conservatively widens the dirty set to
///    every later task sharing a processor with a dirty task;
///    link_contention stores the committed per-hop link claims so clean
///    messages replay in O(1) per hop and divergence is detected per link;
///  * once a trial reschedules more than DeltaOptions::fallback_fraction of
///    all tasks it falls back to the full kernel, so correctness never
///    depends on the widening analysis being tight.
///
/// Totals are bit-identical to evaluate_reference() on the materialized
/// assignment in every mode (enforced by tests/delta_eval_test.cpp).
/// Steady-state trials perform zero heap allocations; commits may allocate
/// (they rebuild the contention claim tables).
///
/// Usage: t = try_swap(c1, c2); then commit() to accept (the move becomes
/// the new committed state) or revert()/another try_* to discard. Not
/// thread-safe; create one DeltaEval per search loop.
class DeltaEval {
 public:
  DeltaEval(DeltaEval&&) = default;
  DeltaEval& operator=(DeltaEval&&) = delete;
  DeltaEval(const DeltaEval&) = delete;
  DeltaEval& operator=(const DeltaEval&) = delete;

  [[nodiscard]] Weight committed_total() const noexcept { return committed_total_; }
  [[nodiscard]] std::span<const NodeId> committed_host() const noexcept { return host_; }
  [[nodiscard]] NodeId committed_host_of(NodeId cluster) const { return host_.at(idx(cluster)); }
  [[nodiscard]] const DeltaStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool has_pending() const noexcept { return pending_ != Pending::kNone; }
  [[nodiscard]] const EvalOptions& options() const noexcept { return options_; }

  /// Total time with cluster `cluster` reassigned to `processor` (every
  /// other cluster keeps its committed host). The result may place two
  /// clusters on one processor — evaluation is well defined on any
  /// cluster -> processor map, not just permutations.
  Weight try_move(NodeId cluster, NodeId processor);

  /// Total time with clusters c1 and c2 exchanging their committed hosts.
  Weight try_swap(NodeId c1, NodeId c2);

  /// Folds the most recent try_move/try_swap into the committed state.
  /// Requires has_pending().
  void commit();

  /// Discards the most recent trial (cheap; a subsequent try_* call
  /// discards it implicitly as well).
  void revert() noexcept { pending_ = Pending::kNone; }

 private:
  friend class EvalEngine;
  DeltaEval(const EvalEngine& engine, std::span<const NodeId> host_of,
            const EvalOptions& options, const DeltaOptions& delta_options);

  enum class Pending : std::uint8_t { kNone, kDelta, kFull };

  [[nodiscard]] bool cluster_moved(NodeId c) const noexcept {
    return c == moved_clusters_[0] || (moved_count_ == 2 && c == moved_clusters_[1]);
  }
  /// Committed host of a cluster while host_ temporarily holds trial hosts.
  [[nodiscard]] NodeId committed_host_during_trial(NodeId c) const noexcept {
    if (c == moved_clusters_[0]) return moved_old_hosts_[0];
    if (moved_count_ == 2 && c == moved_clusters_[1]) return moved_old_hosts_[1];
    return host_[idx(c)];
  }
  Weight run_trial();          // scores host_ (holding trial hosts) vs committed state
  Weight run_trial_plain();    // sparse bitmask-worklist path (no shared state)
  Weight run_trial_scan();     // suffix-scan path (serialize / contention)
  Weight run_full_trial();     // fallback: full kernel into full_ws_
  std::size_t seed_dirty();    // marks the dirty seeds; returns scan anchor position
  void apply_pending_hosts();
  void restore_committed_hosts();
  void rebuild_committed_aux();  // prefix max / max-holder count + contention claims

  const EvalEngine* engine_;
  EvalOptions options_;
  DeltaOptions dopt_;
  std::size_t np_ = 0;
  std::size_t ns_ = 0;

  // Committed state.
  std::vector<NodeId> host_;    // cluster -> processor (trial hosts during run_trial)
  std::vector<Weight> start_;   // committed schedule, bit-identical to reference
  std::vector<Weight> end_;
  Weight committed_total_ = 0;
  std::size_t count_at_max_ = 0;        // tasks with end == committed_total_
  std::vector<Weight> prefix_max_end_;  // [i] = max end over topo positions [0, i)
  // Committed link claims (contention mode): claim k of topo position p is
  // claim_links_/claim_values_[claim_pos_offset_[p] .. [p+1]) — the link it
  // lands on and the link's busy-until time after the claim, in the exact
  // order the kernel issues them.
  std::vector<std::uint32_t> claim_pos_offset_;
  std::vector<std::int32_t> claim_links_;
  std::vector<Weight> claim_values_;

  // Epoch-stamped trial scratch (bumping epoch_ invalidates all of it),
  // plus the plain-mode dirty bitmask (self-cleaning: every set bit is
  // cleared when its position is popped, so it is all-zero between trials).
  // During a trial, recomputed tasks write their trial end times *in place*
  // into end_ (so downstream reads are a single load) and run_trial()
  // rolls them back from touched_old_end_ before returning; trial values
  // survive in trial_start_/trial_end_ for commit().
  std::uint32_t epoch_ = 0;
  std::vector<std::uint64_t> dirty_bits_;    // plain mode, indexed by topo position
  std::vector<std::uint32_t> dirty_stamp_;   // scan modes: task must be recomputed
  std::vector<Weight> trial_start_;
  std::vector<Weight> trial_end_;
  std::vector<std::uint32_t> proc_dirty_stamp_;  // serialize widening
  std::vector<std::uint32_t> link_dirty_stamp_;  // contention widening
  std::vector<Weight> proc_free_;
  std::vector<Weight> link_free_;
  std::vector<NodeId> touched_;          // recomputed tasks of the pending trial
  std::vector<Weight> touched_old_end_;  // their committed end times (undo log)
  std::vector<unsigned char> in_changed_;   // per other-cluster distance-change
  std::vector<unsigned char> out_changed_;  // masks of the current moved cluster
  std::size_t seed_count_ = 0;   // distinct tasks seeded by the current trial
  std::size_t scan_anchor_ = 0;  // earliest affected topo position of the trial
  bool conservative_ = false;    // adaptive: fallbacks dominate, skip the scan

  // Pending trial bookkeeping.
  Pending pending_ = Pending::kNone;
  int moved_count_ = 0;
  NodeId moved_clusters_[2] = {-1, -1};
  NodeId moved_old_hosts_[2] = {-1, -1};
  NodeId moved_new_hosts_[2] = {-1, -1};
  Weight pending_total_ = 0;
  EvalWorkspace full_ws_;  // holds the schedule of a full-fallback trial

  DeltaStats stats_;
};

}  // namespace mimdmap
