// EvalEngine: the precomputed schedule-evaluation engine.
//
// The whole mapping pipeline (paper sections 4.3.1-4.3.4) is "generate a
// candidate assignment, evaluate its total time, keep iff better" — so
// evaluation throughput *is* mapper throughput. The free evaluate() in
// evaluation.hpp recomputes the topological order, re-walks pointer-chasing
// adjacency lists, reallocates every schedule buffer and (under
// link_contention) rebuilds a RoutingTable on every call. EvalEngine hoists
// all of that per-*instance* work out of the per-*trial* loop:
//
//  * the topological order of the problem graph (fixed per instance),
//  * a flat CSR predecessor array whose arcs carry pre-resolved
//    (pred, cluster_of(pred), clus_edge(pred, v)) triples — one contiguous
//    scan per trial instead of nested vector-of-pair walks plus two matrix
//    lookups per precedence,
//  * a flat cluster_of / node-weight lookup,
//  * one shared RoutingTable with every route pre-flattened to a link-index
//    sequence (built lazily, only when link_contention is first requested),
//  * a handle on the process-wide shared ThreadPool (service/thread_pool.hpp)
//    so parallel search loops stop paying thread-spawn latency per call and
//    many engines mapping concurrently shard one pool instead of
//    oversubscribing the machine,
//  * per-lane EvalWorkspace scratch buffers, so steady-state trial
//    evaluation performs ZERO heap allocations.
//
// Determinism guarantee: the trial kernel visits tasks in exactly the order
// the legacy evaluate() did (topological order, ties by node id;
// predecessors in edge-insertion order), so every result is bit-identical
// to evaluate_reference() in all three modes (plain,
// serialize_within_processor, link_contention) — the equivalence suite in
// tests/eval_engine_test.cpp enforces this.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/assignment.hpp"
#include "core/cancellation.hpp"
#include "core/evaluation.hpp"
#include "core/instance.hpp"
#include "graph/routing.hpp"
#include "service/thread_pool.hpp"

namespace mimdmap {

class DeltaEval;

/// Reusable scratch buffers for one evaluation lane. Sized by the engine on
/// first use and reused for every subsequent trial; after warm-up a trial
/// touches no allocator. One workspace must never be shared by two
/// concurrent evaluations.
struct EvalWorkspace {
  std::vector<Weight> start;
  std::vector<Weight> end;
  std::vector<Weight> proc_free;
  std::vector<Weight> link_free;
};

/// Scratch buffers for one structure-of-arrays batch-evaluation lane
/// (EvalEngine::evaluate_batch_soa). All per-candidate state is laid out
/// `[entity][lane]` — `end[idx(task) * W + lane]`, `proc_free[idx(proc) * W
/// + lane]`, `link_free[link * W + lane]` — so the kernel's inner loops run
/// over contiguous lanes. Grown on demand and reused across waves; one
/// workspace must never be shared by two concurrent evaluations.
struct SoaWorkspace {
  std::vector<Weight> end;        // [task][lane] end times
  std::vector<NodeId> host;       // [cluster][lane] transposed candidates
  std::vector<Weight> proc_free;  // [proc][lane] (serialize mode)
  std::vector<Weight> link_free;  // [link][lane] (contention mode)
  std::vector<Weight> total;      // [lane] running makespan
  std::vector<std::uint32_t> live;  // live lane ids (early-exit compaction)
};

/// "No early exit" sentinel for the SoA kernel's cutoff parameter.
inline constexpr Weight kNoCutoff = std::numeric_limits<Weight>::max();

/// Tuning knobs for the incremental delta evaluator (see DeltaEval below).
struct DeltaOptions {
  /// A trial falls back to the full kernel once it has rescheduled more
  /// than this fraction of all tasks — beyond that point the incremental
  /// bookkeeping costs more than it saves (a delta recompute carries about
  /// 3x the per-task cost of the streaming kernel, so the break-even sits
  /// near a third of the graph). 0 forces every trial onto the full kernel
  /// (useful for testing); 1 disables the fallback. The result is
  /// bit-identical either way. Verdict trials (a cutoff was passed to
  /// try_move/try_swap) fall back onto the *verdict* kernel instead — the
  /// dense kernel with the same certified ">= cutoff" early exit.
  double fallback_fraction = 0.3;

  /// Delta-engine generation: 2 is the shift-compressed engine
  /// (DESIGN.md 13 — δ-shift markers, verdict trials, link-bucketed
  /// contention claims), 1 the PR 2 suffix rescheduler retained as the
  /// oracle fallback. 0 resolves through the MIMDMAP_DELTA_MODE
  /// environment variable ("v1"/"1" or "v2"/"2"; default v2). Totals and
  /// accept streams are bit-identical across versions.
  int version = 0;

  /// Slots of the v2 per-pair potential cache (direct-mapped; DESIGN.md
  /// 13.3). > 0 explicit, 0 disables the cache outright, -1 (default)
  /// resolves through MIMDMAP_DELTA_CACHE ("slots" / "slots,max_np" /
  /// "off"), else 64. Every configuration is bit-identical on accept
  /// streams — a weaker potential only loosens certified bounds of
  /// rejected trials, never an accepted total.
  int potential_cache_slots = -1;

  /// Task-count ceiling above which the cache is bypassed (each slot
  /// stores two np-sized tables, so giant graphs would make the slots
  /// themselves the memory hog). > 0 explicit, 0 removes the ceiling, -1
  /// (default) resolves through MIMDMAP_DELTA_CACHE's second field, else
  /// 100000. Bypassed lookups fall back to the static tail0 potential —
  /// always valid, just weaker — and are counted in
  /// DeltaStats::potential_cache_disabled so the degradation is visible
  /// instead of silent.
  std::int64_t potential_cache_max_np = -1;
};

/// Counters accumulated by a DeltaEval across its lifetime.
struct DeltaStats {
  std::int64_t trials = 0;            ///< try_move + try_swap calls
  std::int64_t delta_trials = 0;      ///< trials served by suffix rescheduling
  std::int64_t full_fallbacks = 0;    ///< trials served by the full kernel
  std::int64_t commits = 0;
  std::int64_t tasks_rescheduled = 0;  ///< recomputed tasks over all delta trials
  std::int64_t positions_scanned = 0;  ///< suffix positions visited (incl. clean)
  std::int64_t shift_fast_paths = 0;   ///< v2: tasks closed by the δ-shift rule
  std::int64_t verdict_exits = 0;      ///< v2: trials ended by a ">= cutoff" verdict
  std::int64_t claims_skipped = 0;     ///< v2: committed link claims never replayed
  /// v2: pair-potential lookups served by the static tail0 fallback
  /// because the cache is disabled (slots == 0) or bypassed (np above the
  /// configured ceiling). Nonzero means the verdicts ran on the weaker
  /// potential — tune DeltaOptions / MIMDMAP_DELTA_CACHE to re-enable.
  std::int64_t potential_cache_disabled = 0;
};

class EvalEngine {
 public:
  /// Precomputes the evaluation tables for `instance`. The instance must
  /// outlive the engine (the engine keeps a reference). `pool` is the
  /// worker pool parallel calls dispatch to — batch orchestrators
  /// (MapService) thread one handle through every engine they create;
  /// nullptr acquires the process-wide ThreadPool::shared().
  explicit EvalEngine(const MappingInstance& instance,
                      std::shared_ptr<ThreadPool> pool = nullptr);
  ~EvalEngine();

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  [[nodiscard]] const MappingInstance& instance() const noexcept { return instance_; }

  /// Full schedule of a complete assignment — same checks and bit-identical
  /// results as the legacy free evaluate(). Writes through the shared
  /// caller workspace, so despite being const it must not be called from
  /// two threads concurrently on one engine; concurrent evaluators must use
  /// the span overload below with private workspaces (the engine's own
  /// pool already does).
  [[nodiscard]] ScheduleResult evaluate(const Assignment& assignment,
                                        const EvalOptions& options = {}) const;

  /// As above against an explicit host_of vector (host[c] = processor of
  /// cluster c), writing through the caller's workspace.
  [[nodiscard]] ScheduleResult evaluate(std::span<const NodeId> host_of,
                                        const EvalOptions& options, EvalWorkspace& ws) const;

  /// Hot path: total time only. No argument validation, no allocations at
  /// steady state. `host_of` must be a complete cluster -> processor map;
  /// concurrent callers must each bring a private workspace.
  [[nodiscard]] Weight trial_total_time(std::span<const NodeId> host_of,
                                        const EvalOptions& options, EvalWorkspace& ws) const;

  /// A workspace for the calling thread (lane 0 of the pool). Not
  /// thread-safe: concurrent callers must bring their own EvalWorkspace.
  [[nodiscard]] EvalWorkspace& caller_workspace() const noexcept { return caller_ws_; }

  /// Starts an incremental delta-evaluation session anchored at `committed`
  /// (which must be a complete assignment). The returned DeltaEval scores
  /// single-cluster moves and cluster swaps by rescheduling only the
  /// affected suffix of the topological order — see the DeltaEval class
  /// comment. The engine must outlive the returned object.
  [[nodiscard]] DeltaEval begin_delta(const Assignment& committed,
                                      const EvalOptions& options = {},
                                      const DeltaOptions& delta_options = {}) const;

  /// As above against an explicit host_of vector (host[c] = processor of
  /// cluster c; need not be a permutation).
  [[nodiscard]] DeltaEval begin_delta(std::span<const NodeId> host_of,
                                      const EvalOptions& options,
                                      const DeltaOptions& delta_options = {}) const;

  /// Resolves a RefineOptions-style thread count: values > 0 pass through,
  /// 0 means "auto" — a handful of timed warm-up trials pick between
  /// sequential and the pool's full lane budget, dropping to sequential
  /// when the measured per-trial cost is below the measured per-lane share
  /// of the pool's chunk-sync overhead (DESIGN.md 9.4). The sync overhead
  /// is measured once per *pool* (process-wide) and the per-mode decision
  /// once per engine; results are bit-identical either way, so the timing
  /// nondeterminism never leaks into mapping output.
  [[nodiscard]] int resolve_num_threads(int requested, const EvalOptions& options = {}) const;

  /// The worker pool this engine dispatches to (shared, never null).
  [[nodiscard]] const std::shared_ptr<ThreadPool>& pool() const noexcept { return pool_; }

  /// Adopts shared topology tables (TopologyCache): contention-mode
  /// evaluation then reads the shared RoutingTable and pre-flattened route
  /// CSR instead of building private copies. Called automatically when the
  /// instance carries shared tables; batch orchestrators (run_map_job)
  /// call it for borrowed instances. Must happen before the first
  /// contention-mode evaluation — once the private tables are built the
  /// call is ignored. The tables must describe this instance's machine
  /// (same processor count; TopologyCache keys guarantee structural
  /// identity). Results are bit-identical with or without adoption.
  void adopt_topology(std::shared_ptr<const TopologyTables> tables) const;

  /// Worker threads of the underlying shared pool spawned so far
  /// (diagnostics; the caller's own thread is not counted).
  [[nodiscard]] int pool_thread_count() const noexcept;

  /// Runs fn(i, workspace) for every i in [0, count) across the shared
  /// worker pool: the caller participates plus up to num_threads - 1 pooled
  /// workers, each with a private lane workspace. num_threads is clamped to
  /// count and to the pool's lane budget so tiny batches neither spawn nor
  /// wake more workers than they can feed. Blocks until all indices are
  /// done. Iteration order across lanes is unspecified, so fn must only
  /// write to per-index slots; with num_threads < 2 it degenerates to an
  /// inline sequential loop.
  void for_each_parallel(std::size_t count, int num_threads,
                         const std::function<void(std::size_t, EvalWorkspace&)>& fn) const;

  /// Convenience batch used by the search loops: totals[i] =
  /// trial_total_time(hosts[i]). Deterministic for any thread count;
  /// num_threads = 0 resolves via resolve_num_threads(). Candidates are
  /// evaluated in SoA waves of resolve_batch_width(0) lanes.
  void batch_total_times(std::span<const std::vector<NodeId>> hosts, const EvalOptions& options,
                         int num_threads, std::span<Weight> totals) const;

  /// Full form: `width` lanes per SoA wave (resolved via
  /// resolve_batch_width; 1 keeps every candidate on the scalar trial
  /// kernel) and an optional shared incumbent. With cutoff != kNoCutoff a
  /// lane whose *partial* makespan already reaches the cutoff early-exits:
  /// its reported total is then a certified lower bound >= cutoff on the
  /// exact makespan (i.e. "cannot beat the incumbent") instead of the exact
  /// value. Lanes reported below the cutoff are always exact, so
  /// keep-iff-better scans make bit-identical decisions for every width,
  /// thread count and cutoff.
  ///
  /// `cancel` bounds cancellation latency to ONE wave: each wave (and each
  /// scalar trial on the width-1 path) makes a non-counting
  /// CancelToken::signalled() check before evaluating and, once the token
  /// has tripped, writes kNoCutoff into its lanes instead of scheduling —
  /// a certified "cannot beat any incumbent" sentinel the caller's
  /// keep-iff-better scan rejects like any cutoff bound. An untripped
  /// token never changes any total (bit-identity preserved).
  void batch_total_times(std::span<const std::vector<NodeId>> hosts, const EvalOptions& options,
                         int num_threads, int width, std::span<Weight> totals,
                         Weight cutoff = kNoCutoff, const CancelToken& cancel = {}) const;

  /// The SoA batch kernel: schedules all hosts.size() candidates in ONE
  /// walk over the topological order and CSR predecessor arcs, with
  /// lane-contiguous inner loops over the `[task][lane]` state arrays
  /// (DESIGN.md 12). totals[l] receives candidate l's makespan —
  /// bit-identical to trial_total_time(hosts[l]) / evaluate_reference —
  /// except for lanes early-exited by `cutoff` (see batch_total_times
  /// above), which report a lower bound >= cutoff. Runs on the calling
  /// thread; concurrent callers must bring private workspaces. Zero heap
  /// allocations once the workspace is warm.
  void evaluate_batch_soa(std::span<const std::vector<NodeId>> hosts,
                          const EvalOptions& options, SoaWorkspace& ws,
                          std::span<Weight> totals, Weight cutoff = kNoCutoff) const;

  /// Resolves a RefineOptions-style SoA wave width: values > 0 pass
  /// through (capped at 4096 — wave state scales with W, so absurd
  /// requests degrade instead of exhausting memory), negative values mean
  /// 1 (scalar path), 0 means "auto" — the
  /// MIMDMAP_EVAL_WIDTH environment variable when set to a positive
  /// integer ("auto", empty and malformed values defer to the tuner),
  /// else a width that fits the wave's per-lane state (end times
  /// plus mode-dependent proc/link arrays) into a fixed L1/L2 cache budget
  /// (DESIGN.md 12.2). Deterministic — no timing feeds into it — so any
  /// resolved width yields bit-identical mapping results.
  [[nodiscard]] int resolve_batch_width(int requested, const EvalOptions& options = {}) const;

 private:
  /// One pre-resolved precedence arc into a task.
  struct PredArc {
    NodeId pred = 0;          // predecessor task
    NodeId pred_cluster = 0;  // cluster_of(pred)
    Weight weight = 0;        // clus_edge(pred, task); 0 for intra-cluster
  };

  /// One pre-resolved successor arc (the delta evaluator's forward mirror
  /// of PredArc; inter-cluster iff succ_cluster != cluster_of(task)).
  /// `weight` is clus_edge(task, succ) — the v2 delta engine's δ-shift
  /// markers carry the successor's trial arrival, computed at mark time
  /// from this weight and the hosts' hop distance.
  struct SuccArc {
    NodeId succ = 0;
    NodeId succ_cluster = 0;
    Weight weight = 0;
  };

  /// One inter-cluster arc adjacent to a cluster, from that cluster's
  /// perspective — the delta evaluator's seed unit. `head` is the arc's
  /// receiver (the task whose start-time recurrence carries the cost term),
  /// `tail` its sender, `weight` the clustered edge weight, `other_cluster`
  /// the far endpoint's cluster, `incoming` whether the cluster under
  /// consideration is the receiver side. tail/weight feed the v2 verdict
  /// probe (lower-bound arrival over the re-costed arc).
  struct ClusterArc {
    NodeId head = 0;
    std::uint32_t head_pos = 0;  // topo position of head
    NodeId other_cluster = 0;
    bool incoming = false;
    NodeId tail = 0;
    Weight weight = 0;
  };

  void ensure_workspace(EvalWorkspace& ws, bool link_contention) const;
  void ensure_routing() const;
  /// Pre-flattened link-index sequence of the fixed route pp -> pv.
  /// ensure_routing() must have completed. Shared by the scalar kernel,
  /// the SoA kernel and DeltaEval's claim replay so all three issue link
  /// claims along byte-identical hop sequences.
  [[nodiscard]] std::span<const std::int32_t> route_links(NodeId pp, NodeId pv) const noexcept {
    const std::size_t r = idx(pp) * idx(instance_.num_processors()) + idx(pv);
    return {route_links_ptr_ + route_offset_ptr_[r], route_offset_ptr_[r + 1] - route_offset_ptr_[r]};
  }
  /// Link count of the routing tables; ensure_routing() must have completed.
  [[nodiscard]] std::size_t link_count() const noexcept { return routing_ptr_->link_count(); }
  /// Shared kernel: schedules every task, filling ws.start / ws.end, and
  /// returns the makespan.
  Weight run_schedule(std::span<const NodeId> host_of, const EvalOptions& options,
                      EvalWorkspace& ws) const;
  /// run_schedule with a certified early exit (the scalar sibling of the
  /// SoA kernel's cutoff lanes): the moment a finalized end plus the
  /// caller's downstream `potential` (a valid per-task lower bound on any
  /// schedule's remaining path, e.g. tail0_ or DeltaEval's per-pair
  /// potential) reaches `cutoff`, scheduling stops and the bound is
  /// returned with *certified = true (the exact makespan can only be
  /// larger; ws then holds a partial schedule). Otherwise the exact
  /// makespan is returned with *certified = false and ws is fully filled,
  /// bit-identical to run_schedule.
  /// `start_pos` launches the kernel mid-order: the caller guarantees the
  /// schedule of every position before it is already in ws (bit-identical
  /// to what the kernel would have produced) along with the matching
  /// proc_free/link_free running state — DeltaEval seeds these from its
  /// committed schedule and checkpoints, since nothing before a trial's
  /// anchor can change.
  Weight run_schedule_verdict(std::span<const NodeId> host_of, const EvalOptions& options,
                              EvalWorkspace& ws, Weight cutoff, const Weight* potential,
                              bool* certified, std::size_t* scheduled = nullptr,
                              std::size_t start_pos = 0) const;
  ScheduleResult workspace_to_result(const EvalWorkspace& ws, Weight total) const;
  /// Mode-specialized body of evaluate_batch_soa. kCutoff selects the
  /// live-lane-compaction variant; without it the lane loops stay dense.
  template <bool kSerialize, bool kContention, bool kCutoff>
  void soa_schedule(std::span<const std::vector<NodeId>> hosts, SoaWorkspace& ws,
                    std::span<Weight> totals, Weight cutoff) const;

  const MappingInstance& instance_;
  std::vector<NodeId> topo_order_;
  std::vector<std::uint32_t> topo_pos_;     // inverse of topo_order_
  std::vector<std::uint32_t> pred_offset_;  // CSR: arcs of task v are
  std::vector<PredArc> pred_arcs_;          // pred_arcs_[pred_offset_[v] .. [v+1])
  std::vector<std::uint32_t> succ_offset_;  // CSR mirror of pred_offset_:
  std::vector<SuccArc> succ_arcs_;          // successors of v, edge-insertion order
  std::vector<std::uint32_t> cluster_arc_offset_;  // CSR over clusters:
  std::vector<ClusterArc> cluster_arcs_;           // inter-cluster arcs of cluster c
  // Sub-CSR of cluster_arcs_: within cluster c the arcs are sorted by
  // (other_cluster, incoming), and group (c, oc, incoming) spans
  // [cluster_pair_offset_[g], cluster_pair_offset_[g + 1]) with
  // g = c * 2 * ns + oc * 2 + incoming. The v2 delta engine selects whole
  // groups off its distance-change masks instead of filtering arc by arc;
  // cluster_pair_min_pos_[g] is the earliest head position in the group.
  std::vector<std::uint32_t> cluster_pair_offset_;
  std::vector<std::uint32_t> cluster_pair_min_pos_;
  std::vector<std::uint32_t> cluster_min_pos_;     // earliest member topo position
  std::vector<NodeId> cluster_of_;
  std::vector<Weight> node_weight_;
  // tail0_[v]: largest sum of node weights along any v -> sink path,
  // excluding v itself. Communication costs are nonnegative in every mode,
  // so end(v) + tail0_[v] lower-bounds the makespan of ANY schedule — the
  // v2 delta engine's verdict potential (a trial whose running end crosses
  // cutoff - tail0 is certified hopeless long before the cascade tail).
  std::vector<Weight> tail0_;
  // reach_clusters_[v]: bitmask of the clusters of v and all its
  // ancestors (all-ones when > 64 clusters). In plain mode a task whose
  // mask excludes both moved clusters provably keeps its committed end —
  // the v2 verdict probe's untouched-makespan-holder certificate.
  std::vector<std::uint64_t> reach_clusters_;

  // Lazily built contention tables (plain evaluations never pay for them).
  // When shared_tables_ is set (adopt_topology) the pointers alias the
  // shared immutable tables and the private storage stays empty.
  mutable std::once_flag routing_once_;
  mutable std::shared_ptr<const TopologyTables> shared_tables_;
  mutable std::unique_ptr<RoutingTable> routing_;
  mutable std::vector<std::uint32_t> route_offset_;  // CSR over (from * ns + to)
  mutable std::vector<std::int32_t> route_links_;    // link indices along each route
  mutable const RoutingTable* routing_ptr_ = nullptr;
  mutable const std::uint32_t* route_offset_ptr_ = nullptr;
  mutable const std::int32_t* route_links_ptr_ = nullptr;

  std::shared_ptr<ThreadPool> pool_;  // shared, never null
  mutable EvalWorkspace caller_ws_;
  mutable std::vector<EvalWorkspace> lane_ws_;  // lane i >= 1 -> lane_ws_[i - 1]
  mutable SoaWorkspace caller_soa_;
  mutable std::vector<SoaWorkspace> lane_soa_;  // lane i >= 1 -> lane_soa_[i - 1]

  // Auto-thread calibration cache (resolve_num_threads). The pool-dispatch
  // sync overhead lives in the shared ThreadPool (measured once
  // process-wide); only the per-mode decision is cached here.
  mutable std::mutex calib_mutex_;
  mutable int auto_threads_[4] = {0, 0, 0, 0};  // per (serialize, contention) mode

  friend class DeltaEval;
};

/// Incremental delta evaluation for local-move search loops (pairwise
/// exchange, annealing). Holds a *committed* schedule — start/end per task,
/// the accepted host_of map and mode-specific auxiliary state — against
/// which a trial move (reassign one cluster, or swap two clusters) is
/// scored by rescheduling only the affected suffix of the engine's
/// precomputed topological order:
///
///  * the dirty seed set is per-arc tight: a task is seeded only when one
///    of its inter-cluster arcs actually changes cost — the hop distance
///    between its endpoints' hosts differs (plain/serialize), or the arc
///    carries a message at all (contention: the route itself changes);
///  * plain mode processes dirty tasks through a bitmask worklist in
///    topological-position order — clean tasks are never visited, and the
///    makespan closes in O(1) through a committed max-holder count (with
///    an O(np) max re-scan only when every committed makespan holder was
///    itself rescheduled);
///  * the serialize/contention modes scan the suffix from the earliest
///    affected position: clean tasks cost one epoch-stamp check plus the
///    replay of their committed processor/link contributions, dirty tasks
///    are recomputed with the exact full-kernel arithmetic;
///  * a recomputed task whose end time is unchanged stops propagating
///    (early cutoff);
///  * serialize_within_processor conservatively widens the dirty set to
///    every later task sharing a processor with a dirty task;
///    link_contention stores the committed per-hop link claims so clean
///    messages replay in O(1) per hop and divergence is detected per link;
///  * once a trial reschedules more than DeltaOptions::fallback_fraction of
///    all tasks it falls back to the full kernel, so correctness never
///    depends on the widening analysis being tight.
///
/// Version 2 (the default; DeltaOptions::version / MIMDMAP_DELTA_MODE)
/// additionally breaks the dense-cascade floor three ways (DESIGN.md 13):
/// δ-shift markers carry each changed predecessor's trial arrival to its
/// successors, so a task inside a uniformly-shifted region closes in O(1)
/// without rescanning its in-arcs (exact materialization at max-merge
/// points where shifted and clean frontiers meet); verdict trials
/// (try_move/try_swap with a cutoff) stop the moment the running result
/// certifies ">= cutoff", skipping the cascade tail of rejected hill-climb
/// candidates; and contention-mode claims are bucketed per link, so clean
/// suffix positions skip untouched links wholesale instead of replaying
/// every claim.
///
/// Totals are bit-identical to evaluate_reference() on the materialized
/// assignment in every mode and version (enforced by
/// tests/delta_eval_test.cpp).
/// Steady-state trials perform zero heap allocations; commits may allocate
/// (they rebuild the contention claim tables).
///
/// Usage: t = try_swap(c1, c2); then commit() to accept (the move becomes
/// the new committed state) or revert()/another try_* to discard. Not
/// thread-safe; create one DeltaEval per search loop.
class DeltaEval {
 public:
  DeltaEval(DeltaEval&&) = default;
  DeltaEval& operator=(DeltaEval&&) = delete;
  DeltaEval(const DeltaEval&) = delete;
  DeltaEval& operator=(const DeltaEval&) = delete;

  [[nodiscard]] Weight committed_total() const noexcept { return committed_total_; }
  [[nodiscard]] std::span<const NodeId> committed_host() const noexcept { return host_; }
  [[nodiscard]] NodeId committed_host_of(NodeId cluster) const { return host_.at(idx(cluster)); }
  [[nodiscard]] const DeltaStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool has_pending() const noexcept { return pending_ != Pending::kNone; }
  [[nodiscard]] const EvalOptions& options() const noexcept { return options_; }

  /// Total time with cluster `cluster` reassigned to `processor` (every
  /// other cluster keeps its committed host). The result may place two
  /// clusters on one processor — evaluation is well defined on any
  /// cluster -> processor map, not just permutations.
  Weight try_move(NodeId cluster, NodeId processor) {
    return try_move(cluster, processor, kNoCutoff);
  }

  /// Total time with clusters c1 and c2 exchanging their committed hosts.
  Weight try_swap(NodeId c1, NodeId c2) { return try_swap(c1, c2, kNoCutoff); }

  /// Verdict trials (v2; hill-climb accept tests only need `total <
  /// incumbent`): as above, but the trial may stop the moment its running
  /// result is certified to reach `cutoff`. The returned value is the
  /// exact total when it is below the cutoff; otherwise it is a certified
  /// lower bound >= cutoff on the exact total (and may or may not be
  /// exact). Only a trial that ran to completion is committable — after a
  /// verdict exit has_pending() is false and commit() throws, which is
  /// never hit by keep-iff-better loops (they only commit totals below
  /// the incumbent they passed as the cutoff). Under version 1 the cutoff
  /// is ignored and every total is exact. kNoCutoff disables the verdict.
  Weight try_move(NodeId cluster, NodeId processor, Weight cutoff);
  Weight try_swap(NodeId c1, NodeId c2, Weight cutoff);

  /// Folds the most recent try_move/try_swap into the committed state.
  /// Requires has_pending().
  void commit();

  /// Discards the most recent trial (cheap; a subsequent try_* call
  /// discards it implicitly as well).
  void revert() noexcept { pending_ = Pending::kNone; }

 private:
  friend class EvalEngine;
  DeltaEval(const EvalEngine& engine, std::span<const NodeId> host_of,
            const EvalOptions& options, const DeltaOptions& delta_options);

  enum class Pending : std::uint8_t { kNone, kDelta, kFull };

  [[nodiscard]] bool cluster_moved(NodeId c) const noexcept {
    return c == moved_clusters_[0] || (moved_count_ == 2 && c == moved_clusters_[1]);
  }
  /// Committed host of a cluster while host_ temporarily holds trial hosts.
  [[nodiscard]] NodeId committed_host_during_trial(NodeId c) const noexcept {
    if (c == moved_clusters_[0]) return moved_old_hosts_[0];
    if (moved_count_ == 2 && c == moved_clusters_[1]) return moved_old_hosts_[1];
    return host_[idx(c)];
  }
  Weight run_trial(Weight cutoff);  // scores host_ (holding trial hosts) vs committed
  Weight run_trial_plain();     // v1 sparse bitmask-worklist path (no shared state)
  Weight run_trial_scan();      // v1 suffix-scan path (serialize / contention)
  Weight run_trial_plain_v2();  // v2: δ-shift markers + verdict exits
  Weight run_trial_scan_v2();   // v2: + link-bucketed claims (contention)
  Weight run_full_trial();      // fallback: full kernel into full_ws_
  /// v2 cutoff fallback: the dense kernel with certified early exit
  /// (EvalEngine::run_schedule_verdict). Certified -> sets verdict_exit_
  /// and leaves nothing pending; exact -> behaves like run_full_trial.
  Weight run_verdict_full_trial();
  std::size_t seed_dirty();     // marks the dirty seeds; returns scan anchor position

  /// v2 cutoff flow, stage 1: computes the distance-change masks and
  /// collects every cost-changed boundary-arc GROUP (the engine's
  /// per-cluster-pair sub-CSR) into probe_groups_ WITHOUT touching any
  /// dirty state, returning the scan anchor (np_ when the trial provably
  /// equals the committed schedule). One branch per cluster pair instead
  /// of per arc, and the cheap common case — a verdict — then leaves no
  /// marks to clean up.
  std::size_t collect_probe_groups();
  /// v2 cutoff flow, stage 2: tries to certify "total >= cutoff" from
  /// (a) the untouched prefix's committed end + tail0 potential and (b) a
  /// read-only greedy walk down ONE path from the strongest re-costed
  /// collected arc, accumulating exact lower-bound arrivals (comm costs
  /// included) against the tail0 potential. Returns a certified bound
  /// >= cutoff, or -1 when it cannot decide. O(collected arcs + DAG
  /// depth); touches no trial state.
  Weight verdict_probe(std::size_t anchor) const;
  /// The probe's greedy downstream walk from task v with lower-bound
  /// trial end b; returns a certified bound >= the trial cutoff, or -1.
  /// Also re-run mid-cascade from the first exactly-recomputed task,
  /// whose true end often clears what the probe's arc bounds could not.
  Weight greedy_walk_bound(NodeId v, Weight b) const;
  /// v2 cutoff flow, stage 3 (probe undecided): marks the collected
  /// groups' heads dirty, exactly as seed_dirty would have.
  void seed_from_collected();
  void apply_pending_hosts();
  void restore_committed_hosts();
  void rebuild_committed_aux();  // prefix max / max-holder count + contention claims
  /// v2 contention: link `li` diverges from the committed claim stream at
  /// bucket rank `rank` — record its live busy-until time and mark every
  /// later committed claimant of the link dirty (they must recompute).
  /// rank == -1 marks the whole bucket.
  void make_link_dirty(std::size_t li, std::int64_t rank, Weight live);

  const EvalEngine* engine_;
  EvalOptions options_;
  DeltaOptions dopt_;
  int version_ = 2;  // resolved engine generation (DeltaOptions::version)
  std::size_t np_ = 0;
  std::size_t ns_ = 0;

  // Committed state.
  std::vector<NodeId> host_;    // cluster -> processor (trial hosts during run_trial)
  std::vector<Weight> start_;   // committed schedule, bit-identical to reference
  std::vector<Weight> end_;
  Weight committed_total_ = 0;
  std::size_t count_at_max_ = 0;        // tasks with end == committed_total_
  std::vector<Weight> prefix_max_end_;  // [i] = max end over topo positions [0, i)
  // v2: [i] = max of end + tail0 over topo positions [0, i) — the verdict
  // bound the untouched prefix alone certifies for any trial.
  std::vector<Weight> prefix_max_bound_;
  // v2 plain mode: ancestor-cluster masks of (up to a handful of) committed
  // makespan holders — a holder whose mask excludes both moved clusters
  // certifies total' >= committed total without any scan.
  std::vector<std::uint64_t> holder_reach_;
  // v2 verdict potentials. A trial moving only clusters {c1, c2} keeps
  // the exact committed transmission cost on every arc not adjacent to
  // them, so tail_pair(v) — the longest downstream path costing adjacent
  // arcs 0 and everything else its committed cost — is a far stronger
  // valid potential than the static node-weight-only tail0. Cached per
  // unordered pair (direct-mapped, invalidated on commit);
  // trial_potential_ points at the active potential for the running
  // trial's verdict checks.
  struct PairPotential {
    std::uint32_t key = ~0u;
    std::uint64_t commit_epoch = ~std::uint64_t{0};
    std::vector<Weight> tail;    // per-task downstream potential
    std::vector<Weight> prefix;  // [i] = max of end + tail over positions [0, i)
  };
  std::vector<PairPotential> pair_cache_;
  // Resolved cache configuration (DeltaOptions::potential_cache_* plus the
  // MIMDMAP_DELTA_CACHE env fallback; resolved once at construction).
  std::size_t cache_slots_ = 64;
  std::size_t cache_max_np_ = 100000;  // 0 = no ceiling
  std::uint64_t commit_epoch_ = 0;
  const Weight* trial_potential_ = nullptr;
  const Weight* trial_prefix_bound_ = nullptr;
  // v2: committed running-state checkpoints every 64 positions (proc_free
  // under serialize, link_free under contention), so a verdict-kernel
  // launch from a trial's anchor replays at most 63 positions of prefix
  // state instead of scheduling the whole prefix.
  std::vector<Weight> proc_ckpt_;
  std::vector<Weight> link_ckpt_;
  /// Returns the pair potential for the current moved clusters (computing
  /// or refreshing the cache slot as needed) and points
  /// trial_prefix_bound_ at the matching prefix table; engine tail0 /
  /// prefix_max_bound_ when disabled.
  const Weight* pair_potential();
  // Committed link claims (contention mode): claim k of topo position p is
  // claim_links_/claim_values_[claim_pos_offset_[p] .. [p+1]) — the link it
  // lands on and the link's busy-until time after the claim, in the exact
  // order the kernel issues them.
  std::vector<std::uint32_t> claim_pos_offset_;
  std::vector<std::int32_t> claim_links_;
  std::vector<Weight> claim_values_;
  // v2: per-claim sender task and message weight — the pair potential's
  // link-congestion floor attributes each claim's suffix load to the task
  // whose message holds the link.
  std::vector<NodeId> claim_senders_;
  std::vector<Weight> claim_weights_;
  // v2: the same committed claims bucketed by link (bucket entries of link
  // l are [bucket_offset_[l], bucket_offset_[l+1]), in claim-stream order),
  // so a link that diverges can mark exactly its later claimants dirty and
  // clean positions skip untouched links wholesale. claim_bucket_rank_
  // maps a global claim index to its rank inside its link's bucket — the
  // entry at rank - 1 holds the link's committed busy-until time right
  // before the claim.
  std::vector<std::uint32_t> bucket_offset_;
  std::vector<std::uint32_t> bucket_pos_;    // claiming task's topo position
  std::vector<Weight> bucket_value_;         // busy-until after the claim
  std::vector<std::uint32_t> bucket_claim_;  // global claim index (ascending)
  std::vector<std::uint32_t> claim_bucket_rank_;

  // Epoch-stamped trial scratch (bumping epoch_ invalidates all of it),
  // plus the plain-mode dirty bitmask (self-cleaning: every set bit is
  // cleared when its position is popped, so it is all-zero between trials).
  // During a trial, recomputed tasks write their trial end times *in place*
  // into end_ (so downstream reads are a single load) and run_trial()
  // rolls them back from touched_old_end_ before returning; trial values
  // survive in trial_start_/trial_end_ for commit().
  std::uint32_t epoch_ = 0;
  std::vector<std::uint64_t> dirty_bits_;    // plain mode, indexed by topo position
  std::vector<std::uint32_t> dirty_stamp_;   // scan modes: task must be recomputed
                                             // (v2 plain: task was *seeded*)
  // v2 δ-shift markers: a recomputed task whose end moved pushes its
  // successors' trial arrivals here at mark time; a popped task whose
  // marker max covers its committed start (or that heard from every
  // predecessor) closes in O(1) without rescanning its in-arcs.
  std::vector<std::uint32_t> marker_stamp_;
  std::vector<Weight> marker_max_;
  std::vector<std::uint32_t> marker_count_;
  std::vector<Weight> trial_start_;
  std::vector<Weight> trial_end_;
  std::vector<std::uint32_t> proc_dirty_stamp_;  // serialize widening
  std::vector<std::uint32_t> link_dirty_stamp_;  // contention widening
  std::vector<Weight> proc_free_;
  std::vector<Weight> link_free_;
  std::vector<NodeId> touched_;          // recomputed tasks of the pending trial
  std::vector<Weight> touched_old_end_;  // their committed end times (undo log)
  std::vector<unsigned char> in_changed_;   // per other-cluster distance-change
  std::vector<unsigned char> out_changed_;  // masks, [mover * ns + other]
  std::size_t seed_count_ = 0;   // distinct tasks seeded by the current trial
  std::size_t scan_anchor_ = 0;  // earliest affected topo position of the trial
  bool conservative_ = false;    // adaptive: fallbacks dominate, skip the scan
  std::vector<std::uint32_t> probe_groups_;  // v2 cutoff flow: changed arc groups

  // Pending trial bookkeeping.
  Pending pending_ = Pending::kNone;
  Weight trial_cutoff_ = kNoCutoff;  // verdict threshold of the running trial
  bool verdict_exit_ = false;        // current trial ended on a ">= cutoff" verdict
  int moved_count_ = 0;
  NodeId moved_clusters_[2] = {-1, -1};
  NodeId moved_old_hosts_[2] = {-1, -1};
  NodeId moved_new_hosts_[2] = {-1, -1};
  Weight pending_total_ = 0;
  EvalWorkspace full_ws_;  // holds the schedule of a full-fallback trial
  std::size_t full_start_pos_ = 0;  // anchored-launch position of full_ws_'s content

  DeltaStats stats_;
};

}  // namespace mimdmap
