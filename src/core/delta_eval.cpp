// DeltaEval: incremental suffix rescheduling for local-move search loops.
//
// See the class comment in core/eval_engine.hpp for the design. The
// invariants this file maintains:
//
//  * start_/end_/committed_total_ are always bit-identical to what
//    evaluate_reference() produces for the committed host map — commits
//    fold in trial values computed with the exact full-kernel arithmetic,
//    or (after a fallback) copy the full kernel's own output;
//  * during a trial, host_ temporarily holds the *trial* hosts (restored
//    before try_* returns); committed hosts of the <= 2 moved clusters are
//    recoverable through committed_host_during_trial();
//  * every epoch-stamped scratch array is invalidated wholesale by bumping
//    epoch_, and the plain-mode dirty bitmask is self-cleaning (all-zero
//    between trials), so steady-state trials never touch the allocator;
//  * the per-mode dirty analysis is conservative, never tight: a task is
//    recomputed when (a) it is seeded (an inter-cluster arc of its own
//    changed cost or route) or a predecessor's end time changed, (b) in
//    serialize mode its processor carries a dirty flag, or (c) in
//    contention mode an earlier claim on one of its committed links
//    diverged. Clean tasks keep their committed values verbatim.
//
// Two engine generations share this file (DeltaOptions::version /
// MIMDMAP_DELTA_MODE). Version 1 is the PR 2 suffix rescheduler, retained
// verbatim as the oracle fallback. Version 2 (default; DESIGN.md 13) adds:
//
//  * δ-shift markers (plain + serialize): a recomputed task whose end
//    moved pushes each successor's *trial arrival* into a per-task marker
//    accumulator at mark time. A popped task that was never seeded and
//    whose marker max reaches its committed start (or that heard from
//    every predecessor) is exactly the "suffix shifted by δ" case of
//    DESIGN.md 10.3 — its new start IS the marker max, closed in O(1)
//    with no in-arc rescan. Max-merge points where the shifted frontier
//    meets a possibly-dominant clean frontier (marker max below the
//    committed start) are materialized exactly by the ordinary rescan, so
//    ties are handled bit-exactly.
//  * verdict trials: with a cutoff, every end time finalized by the scan
//    is a lower bound on the trial total, so the trial stops the moment
//    one reaches the cutoff ("cannot beat the incumbent" — certified, not
//    heuristic). Verdict trials never fall back mid-scan.
//  * link-bucketed claims (contention): committed claims are bucketed per
//    link; when a claim diverges (or evaporates on a re-routed arc) the
//    link records its live busy-until time and marks exactly its later
//    committed claimants dirty. Clean positions then cost O(1) — no
//    per-claim link checks, no claim replay — and dirty tasks read clean
//    links' committed state straight out of the buckets, which also
//    removes v1's O(prefix) claim replay before the scan anchor.
#include <algorithm>
#include <bit>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string_view>

#include "core/eval_engine.hpp"

namespace mimdmap {

namespace {

/// DeltaOptions::version == 0 resolves through MIMDMAP_DELTA_MODE
/// ("v1"/"1" keeps the PR 2 engine as oracle, "v2"/"2" the default).
int resolve_delta_version(int requested) {
  if (requested == 1 || requested == 2) return requested;
  if (const char* env = std::getenv("MIMDMAP_DELTA_MODE"); env != nullptr && *env != '\0') {
    const std::string_view v(env);
    if (v == "v1" || v == "1") return 1;
    if (v == "v2" || v == "2") return 2;
  }
  return 2;
}

/// Resolves DeltaOptions::potential_cache_slots / potential_cache_max_np.
/// -1 defers to MIMDMAP_DELTA_CACHE: "off" (cache disabled), "<slots>" or
/// "<slots>,<max_np>" (max_np 0 = no ceiling); malformed values are
/// ignored rather than trusted. Defaults: 64 slots, 100000 ceiling.
struct DeltaCacheConfig {
  std::size_t slots = 64;
  std::size_t max_np = 100000;
};

DeltaCacheConfig resolve_delta_cache(int slots, std::int64_t max_np) {
  DeltaCacheConfig cfg;
  bool env_parsed = false;
  DeltaCacheConfig env_cfg;
  if (slots < 0 || max_np < 0) {
    if (const char* env = std::getenv("MIMDMAP_DELTA_CACHE");
        env != nullptr && *env != '\0') {
      const std::string_view v(env);
      if (v == "off") {
        env_cfg.slots = 0;
        env_parsed = true;
      } else {
        char* tail = nullptr;
        const long s = std::strtol(env, &tail, 10);
        if (tail != nullptr && s >= 0) {
          if (*tail == '\0') {
            env_cfg.slots = static_cast<std::size_t>(s);
            env_parsed = true;
          } else if (*tail == ',') {
            char* tail2 = nullptr;
            const long m = std::strtol(tail + 1, &tail2, 10);
            if (tail2 != nullptr && *tail2 == '\0' && m >= 0) {
              env_cfg.slots = static_cast<std::size_t>(s);
              env_cfg.max_np = static_cast<std::size_t>(m);
              env_parsed = true;
            }
          }
        }
      }
    }
  }
  if (slots >= 0) {
    cfg.slots = static_cast<std::size_t>(slots);
  } else if (env_parsed) {
    cfg.slots = env_cfg.slots;
  }
  if (max_np >= 0) {
    cfg.max_np = static_cast<std::size_t>(max_np);
  } else if (env_parsed) {
    cfg.max_np = env_cfg.max_np;
  }
  return cfg;
}

}  // namespace

DeltaEval::DeltaEval(const EvalEngine& engine, std::span<const NodeId> host_of,
                     const EvalOptions& options, const DeltaOptions& delta_options)
    : engine_(&engine),
      options_(options),
      dopt_(delta_options),
      version_(resolve_delta_version(delta_options.version)),
      np_(idx(engine.instance().num_tasks())),
      ns_(idx(engine.instance().num_processors())) {
  if (host_of.size() != ns_) {
    throw std::invalid_argument("begin_delta: host map has the wrong size");
  }
  for (const NodeId p : host_of) {
    if (p < 0 || idx(p) >= ns_) {
      throw std::invalid_argument("begin_delta: host map is incomplete");
    }
  }
  const DeltaCacheConfig cache = resolve_delta_cache(delta_options.potential_cache_slots,
                                                     delta_options.potential_cache_max_np);
  cache_slots_ = cache.slots;
  cache_max_np_ = cache.max_np;
  host_.assign(host_of.begin(), host_of.end());
  if (options_.link_contention) engine_->ensure_routing();

  dirty_bits_.assign((np_ + 63) / 64, 0);
  dirty_stamp_.assign(np_, 0);
  trial_start_.assign(np_, 0);
  trial_end_.assign(np_, 0);
  proc_dirty_stamp_.assign(ns_, 0);
  proc_free_.assign(ns_, 0);
  if (options_.link_contention) {
    link_dirty_stamp_.assign(engine_->link_count(), 0);
    link_free_.assign(engine_->link_count(), 0);
  }
  if (version_ == 2) {
    marker_stamp_.assign(np_, 0);
    marker_max_.assign(np_, 0);
    marker_count_.assign(np_, 0);
  }
  touched_.reserve(np_);
  touched_old_end_.reserve(np_);
  in_changed_.assign(2 * ns_, 0);
  out_changed_.assign(2 * ns_, 0);

  // Committed schedule: one full-kernel pass, then the auxiliary tables
  // (the claims replay in rebuild_committed_aux needs link_free_ sized).
  EvalWorkspace ws;
  committed_total_ = engine_->run_schedule(host_, options_, ws);
  start_.assign(ws.start.begin(), ws.start.begin() + static_cast<std::ptrdiff_t>(np_));
  end_.assign(ws.end.begin(), ws.end.begin() + static_cast<std::ptrdiff_t>(np_));
  prefix_max_end_.assign(np_ + 1, 0);
  claim_pos_offset_.assign(options_.link_contention ? np_ + 1 : 0, 0);
  rebuild_committed_aux();
}

void DeltaEval::rebuild_committed_aux() {
  const std::vector<NodeId>& topo = engine_->topo_order_;
  Weight total = 0;
  for (std::size_t i = 0; i < np_; ++i) {
    prefix_max_end_[i] = total;
    total = std::max(total, end_[idx(topo[i])]);
  }
  prefix_max_end_[np_] = total;
  if (version_ == 2) {
    prefix_max_bound_.resize(np_ + 1);
    Weight bound = 0;
    for (std::size_t i = 0; i < np_; ++i) {
      prefix_max_bound_[i] = bound;
      bound = std::max(bound, end_[idx(topo[i])] + engine_->tail0_[idx(topo[i])]);
    }
    prefix_max_bound_[np_] = bound;
    // Ancestor-cluster masks of the committed makespan holders (plain-mode
    // untouched-holder certificate; a handful is plenty — any untouched
    // one certifies). Disabled beyond 64 clusters: the engine's masks are
    // degenerate all-ones there, and a mover whose id cannot be
    // represented in the 64-bit moved mask would otherwise slip through
    // the intersection test and certify falsely.
    holder_reach_.clear();
    if (!options_.serialize_within_processor && !options_.link_contention && ns_ <= 64) {
      for (std::size_t v = 0; v < np_ && holder_reach_.size() < 8; ++v) {
        if (end_[v] == total) holder_reach_.push_back(engine_->reach_clusters_[v]);
      }
    }
    // Committed proc_free checkpoints every 64 positions (anchored
    // verdict-kernel launches replay at most 63 positions of prefix).
    if (options_.serialize_within_processor) {
      const std::size_t nck = np_ / 64 + 1;
      proc_ckpt_.assign(nck * ns_, 0);
      std::vector<Weight> run(ns_, 0);
      for (std::size_t pos = 0; pos < np_; ++pos) {
        if (pos % 64 == 0) {
          std::copy(run.begin(), run.end(),
                    proc_ckpt_.begin() + static_cast<std::ptrdiff_t>((pos / 64) * ns_));
        }
        const NodeId v = topo[pos];
        Weight& free = run[idx(host_[idx(engine_->cluster_of_[idx(v)])])];
        free = std::max(free, end_[idx(v)]);
      }
    }
  }
  committed_total_ = total;
  count_at_max_ = 0;
  for (std::size_t v = 0; v < np_; ++v) {
    if (end_[v] == total) ++count_at_max_;
  }

  if (!options_.link_contention) return;
  // Replay every message's link claims in kernel order (receivers in
  // topological order, arcs in edge-insertion order, hops along the fixed
  // route) so a clean message can later be replayed as stored (link, value)
  // pairs without redoing the max/add chain.
  claim_links_.clear();
  claim_values_.clear();
  claim_senders_.clear();
  claim_weights_.clear();
  std::fill(link_free_.begin(), link_free_.end(), Weight{0});
  const EvalEngine::PredArc* const arcs = engine_->pred_arcs_.data();
  if (version_ == 2) {
    link_ckpt_.assign((np_ / 64 + 1) * link_free_.size(), 0);
  }
  for (std::size_t pos = 0; pos < np_; ++pos) {
    if (version_ == 2 && pos % 64 == 0) {
      // Committed link_free checkpoint (see proc_ckpt_ above).
      std::copy(link_free_.begin(), link_free_.end(),
                link_ckpt_.begin() +
                    static_cast<std::ptrdiff_t>((pos / 64) * link_free_.size()));
    }
    claim_pos_offset_[pos] = static_cast<std::uint32_t>(claim_links_.size());
    const NodeId v = topo[pos];
    const NodeId pv = host_[idx(engine_->cluster_of_[idx(v)])];
    const std::uint32_t lo = engine_->pred_offset_[idx(v)];
    const std::uint32_t hi = engine_->pred_offset_[idx(v) + 1];
    for (std::uint32_t a = lo; a < hi; ++a) {
      const EvalEngine::PredArc& arc = arcs[a];
      if (arc.weight <= 0) continue;
      const NodeId pp = host_[idx(arc.pred_cluster)];
      Weight arrival = end_[idx(arc.pred)];
      for (const std::int32_t li : engine_->route_links(pp, pv)) {
        const Weight depart = std::max(arrival, link_free_[static_cast<std::size_t>(li)]);
        arrival = depart + arc.weight;
        link_free_[static_cast<std::size_t>(li)] = arrival;
        claim_links_.push_back(li);
        claim_values_.push_back(arrival);
        if (version_ == 2) {
          claim_senders_.push_back(arc.pred);
          claim_weights_.push_back(arc.weight);
        }
      }
    }
  }
  claim_pos_offset_[np_] = static_cast<std::uint32_t>(claim_links_.size());

  if (version_ != 2) return;
  // v2: the same claims bucketed by link, in claim-stream order, plus the
  // claim -> bucket-rank map. The entry at rank - 1 is the link's
  // committed busy-until time right before a claim — the state a dirty
  // task reads for a still-clean link without any replay.
  const std::size_t links = link_free_.size();
  const std::size_t n_claims = claim_links_.size();
  bucket_offset_.assign(links + 1, 0);
  for (const std::int32_t li : claim_links_) {
    ++bucket_offset_[static_cast<std::size_t>(li) + 1];
  }
  for (std::size_t l = 0; l < links; ++l) bucket_offset_[l + 1] += bucket_offset_[l];
  bucket_pos_.resize(n_claims);
  bucket_value_.resize(n_claims);
  bucket_claim_.resize(n_claims);
  claim_bucket_rank_.resize(n_claims);
  std::vector<std::uint32_t> fill(bucket_offset_.begin(), bucket_offset_.end() - 1);
  for (std::size_t pos = 0; pos < np_; ++pos) {
    for (std::uint32_t k = claim_pos_offset_[pos]; k < claim_pos_offset_[pos + 1]; ++k) {
      const auto li = static_cast<std::size_t>(claim_links_[k]);
      const std::uint32_t e = fill[li]++;
      bucket_pos_[e] = static_cast<std::uint32_t>(pos);
      bucket_value_[e] = claim_values_[k];
      bucket_claim_[e] = k;
      claim_bucket_rank_[k] = e - bucket_offset_[li];
    }
  }
}

void DeltaEval::apply_pending_hosts() {
  for (int i = 0; i < moved_count_; ++i) {
    host_[idx(moved_clusters_[i])] = moved_new_hosts_[i];
  }
}

void DeltaEval::restore_committed_hosts() {
  for (int i = 0; i < moved_count_; ++i) {
    host_[idx(moved_clusters_[i])] = moved_old_hosts_[i];
  }
}

Weight DeltaEval::try_move(NodeId cluster, NodeId processor, Weight cutoff) {
  if (cluster < 0 || idx(cluster) >= ns_ || processor < 0 || idx(processor) >= ns_) {
    throw std::invalid_argument("try_move: cluster or processor out of range");
  }
  ++stats_.trials;
  if (host_[idx(cluster)] == processor) {
    // No-op move: the committed schedule is the trial schedule.
    pending_ = Pending::kDelta;
    verdict_exit_ = false;
    moved_count_ = 0;
    moved_clusters_[0] = moved_clusters_[1] = -1;
    pending_total_ = committed_total_;
    touched_.clear();
    ++epoch_;
    ++stats_.delta_trials;
    return committed_total_;
  }
  moved_count_ = 1;
  moved_clusters_[0] = cluster;
  moved_clusters_[1] = -1;
  moved_old_hosts_[0] = host_[idx(cluster)];
  moved_new_hosts_[0] = processor;
  return run_trial(cutoff);
}

Weight DeltaEval::try_swap(NodeId c1, NodeId c2, Weight cutoff) {
  if (c1 < 0 || idx(c1) >= ns_ || c2 < 0 || idx(c2) >= ns_) {
    throw std::invalid_argument("try_swap: cluster out of range");
  }
  if (c1 == c2 || host_[idx(c1)] == host_[idx(c2)]) {
    return try_move(c1, host_[idx(c1)], cutoff);
  }
  ++stats_.trials;
  moved_count_ = 2;
  moved_clusters_[0] = c1;
  moved_clusters_[1] = c2;
  moved_old_hosts_[0] = host_[idx(c1)];
  moved_old_hosts_[1] = host_[idx(c2)];
  moved_new_hosts_[0] = moved_old_hosts_[1];
  moved_new_hosts_[1] = moved_old_hosts_[0];
  return run_trial(cutoff);
}

Weight DeltaEval::run_full_trial() {
  ++stats_.full_fallbacks;
  full_start_pos_ = 0;
  // host_ already holds the trial hosts; the kernel writes the complete
  // trial schedule into full_ws_, which commit() can adopt wholesale.
  // run_trial() rolls back the in-place end_ writes and host_.
  pending_total_ = engine_->run_schedule(host_, options_, full_ws_);
  pending_ = Pending::kFull;
  return pending_total_;
}

Weight DeltaEval::run_verdict_full_trial() {
  // Anchored launch: nothing before scan_anchor_ can change in any mode,
  // so seed the workspace with the committed prefix (full start/end copy —
  // suffix slots are overwritten before any read — plus the running
  // proc/link state from the nearest <=63-position checkpoint) and only
  // schedule the suffix.
  const std::size_t start_pos = scan_anchor_;
  const bool serialize = options_.serialize_within_processor;
  const bool contention = options_.link_contention;
  full_start_pos_ = start_pos;
  if (start_pos > 0) {
    engine_->ensure_workspace(full_ws_, contention);
    // The kernel reads committed end times of prefix predecessors; starts
    // are write-only, so commit() merges the prefix from the committed
    // arrays instead of copying them here.
    std::copy_n(end_.begin(), np_, full_ws_.end.begin());
    const std::vector<NodeId>& topo = engine_->topo_order_;
    if (serialize) {
      const std::size_t ck = start_pos / 64;
      std::copy_n(proc_ckpt_.begin() + static_cast<std::ptrdiff_t>(ck * ns_), ns_,
                  full_ws_.proc_free.begin());
      for (std::size_t pos = ck * 64; pos < start_pos; ++pos) {
        const NodeId v = topo[pos];
        Weight& free = full_ws_.proc_free[idx(host_[idx(engine_->cluster_of_[idx(v)])])];
        free = std::max(free, end_[idx(v)]);
      }
    }
    if (contention) {
      const std::size_t links = link_free_.size();
      const std::size_t ck = start_pos / 64;
      std::copy_n(link_ckpt_.begin() + static_cast<std::ptrdiff_t>(ck * links), links,
                  full_ws_.link_free.begin());
      for (std::uint32_t k = claim_pos_offset_[ck * 64]; k < claim_pos_offset_[start_pos];
           ++k) {
        full_ws_.link_free[static_cast<std::size_t>(claim_links_[k])] = claim_values_[k];
      }
    }
  }
  bool certified = false;
  std::size_t scheduled = 0;
  Weight t = engine_->run_schedule_verdict(host_, options_, full_ws_, trial_cutoff_,
                                           trial_potential_, &certified, &scheduled,
                                           start_pos);
  stats_.positions_scanned += static_cast<std::int64_t>(scheduled);
  if (!certified) {
    // Ran to completion: an exact, committable trial. The suffix launch
    // returns the suffix max; the untouched prefix's committed max folds
    // the rest in exactly.
    t = std::max(t, prefix_max_end_[start_pos]);
    ++stats_.full_fallbacks;
    pending_total_ = t;
    pending_ = Pending::kFull;
    return t;
  }
  verdict_exit_ = true;  // run_trial's tail books the verdict
  return t;
}

std::size_t DeltaEval::seed_dirty() {
  // Per-arc seeding over the engine's precomputed per-cluster boundary-arc
  // lists: an arc's cost term changes only when the hop distance between
  // its endpoints' hosts differs between the committed and the trial
  // placement — under link contention any inter-cluster arc of a moved
  // cluster counts, since the message's *route* changes even at equal hop
  // distance. Whether a distance changed depends only on the (moved
  // cluster, other cluster, direction) triple, so those <= 2 * ns compares
  // are hoisted out of the arc loop into two masks per moved cluster; on
  // distance-regular interconnects (star, complete) most trials resolve to
  // empty masks and never touch an arc. host_ already holds the trial
  // hosts.
  const bool contention = options_.link_contention;
  const Matrix<Weight>& hops = engine_->instance_.hops();
  const EvalEngine::ClusterArc* const carcs = engine_->cluster_arcs_.data();
  const bool plain_bits = !options_.serialize_within_processor && !contention;

  std::size_t min_pos = np_;
  seed_count_ = 0;
  for (int m = 0; m < moved_count_; ++m) {
    const NodeId c = moved_clusters_[m];
    const NodeId old_pv = moved_old_hosts_[m];
    const NodeId new_pv = moved_new_hosts_[m];
    // In serialize mode the processor task-sets change at every member's
    // position, so the scan must anchor no later than the first member
    // even when no arc cost changes.
    if (options_.serialize_within_processor) {
      min_pos = std::min(min_pos,
                         static_cast<std::size_t>(engine_->cluster_min_pos_[idx(c)]));
    }

    const std::uint32_t lo = engine_->cluster_arc_offset_[idx(c)];
    const std::uint32_t hi = engine_->cluster_arc_offset_[idx(c) + 1];
    bool any_changed = hi > lo;  // contention: any boundary arc reroutes
    if (!contention) {
      any_changed = false;
      const std::size_t base = static_cast<std::size_t>(m) * ns_;
      for (NodeId oc = 0; oc < node_id(ns_); ++oc) {
        const NodeId o_old = committed_host_during_trial(oc);
        const NodeId o_new = host_[idx(oc)];
        const bool in_ch = hops(idx(o_old), idx(old_pv)) != hops(idx(o_new), idx(new_pv));
        const bool out_ch = hops(idx(old_pv), idx(o_old)) != hops(idx(new_pv), idx(o_new));
        in_changed_[base + idx(oc)] = in_ch;
        out_changed_[base + idx(oc)] = out_ch;
        any_changed |= in_ch | out_ch;
      }
    }
    if (!any_changed) continue;
    if (conservative_ && trial_cutoff_ == kNoCutoff) {
      // Adaptive guard: this instance's moves have been cascading into
      // full-kernel fallbacks, so don't bother seeding — any distance
      // change goes straight to the full kernel (zero-dirt trials above
      // still short-circuit for free). Verdict trials are exempt: their
      // cost is bounded by the verdict exit, not the fallback.
      seed_count_ = np_;
      return 0;
    }
    for (std::uint32_t a = lo; a < hi; ++a) {
      const EvalEngine::ClusterArc& arc = carcs[a];
      if (!contention &&
          !(arc.incoming
                ? in_changed_[static_cast<std::size_t>(m) * ns_ + idx(arc.other_cluster)]
                : out_changed_[static_cast<std::size_t>(m) * ns_ + idx(arc.other_cluster)])) {
        continue;
      }
      const std::size_t pos = arc.head_pos;
      if (plain_bits) {
        const std::uint64_t bit = std::uint64_t{1} << (pos & 63);
        std::uint64_t& word = dirty_bits_[pos >> 6];
        seed_count_ += (word & bit) == 0;
        word |= bit;
        // v2 distinguishes seeded tasks (changed in-arc cost: must rescan
        // their in-arcs) from marker-reached tasks (may close via the
        // δ-shift rule).
        if (version_ == 2) dirty_stamp_[idx(arc.head)] = epoch_;
      } else {
        seed_count_ += dirty_stamp_[idx(arc.head)] != epoch_;
        dirty_stamp_[idx(arc.head)] = epoch_;
      }
      min_pos = std::min(min_pos, pos);
    }
  }
  return min_pos;
}

std::size_t DeltaEval::collect_probe_groups() {
  // seed_dirty's per-arc analysis at group granularity, collecting instead
  // of marking: the common cutoff-trial outcome is a probe verdict, which
  // then leaves no dirty state to clean up and pays no marking stores.
  // Whether an arc's cost changed depends only on its (moved cluster,
  // other cluster, direction) triple, which is exactly the engine's group
  // key — so group selection needs one mask branch per pair.
  const bool contention = options_.link_contention;
  const Matrix<Weight>& hops = engine_->instance_.hops();
  const std::uint32_t* const pair_off = engine_->cluster_pair_offset_.data();
  const std::uint32_t* const pair_min = engine_->cluster_pair_min_pos_.data();
  const std::size_t gpc = 2 * ns_;  // groups per cluster

  probe_groups_.clear();
  std::size_t min_pos = np_;
  for (int m = 0; m < moved_count_; ++m) {
    const NodeId c = moved_clusters_[m];
    const NodeId old_pv = moved_old_hosts_[m];
    const NodeId new_pv = moved_new_hosts_[m];
    if (options_.serialize_within_processor) {
      min_pos = std::min(min_pos,
                         static_cast<std::size_t>(engine_->cluster_min_pos_[idx(c)]));
    }
    for (NodeId oc = 0; oc < node_id(ns_); ++oc) {
      bool in_ch = true;   // contention: every boundary arc reroutes
      bool out_ch = true;
      if (!contention) {
        const NodeId o_old = committed_host_during_trial(oc);
        const NodeId o_new = host_[idx(oc)];
        in_ch = hops(idx(o_old), idx(old_pv)) != hops(idx(o_new), idx(new_pv));
        out_ch = hops(idx(old_pv), idx(o_old)) != hops(idx(new_pv), idx(o_new));
      }
      if (!in_ch && !out_ch) continue;
      const std::size_t gbase = idx(c) * gpc + idx(oc) * 2;
      // incoming groups carry the in-mask, outgoing the out-mask.
      if (out_ch && pair_off[gbase] != pair_off[gbase + 1]) {
        probe_groups_.push_back(static_cast<std::uint32_t>(gbase));
        min_pos = std::min(min_pos, static_cast<std::size_t>(pair_min[gbase]));
      }
      if (in_ch && pair_off[gbase + 1] != pair_off[gbase + 2]) {
        probe_groups_.push_back(static_cast<std::uint32_t>(gbase + 1));
        min_pos = std::min(min_pos, static_cast<std::size_t>(pair_min[gbase + 1]));
      }
    }
  }
  return min_pos;
}

void DeltaEval::seed_from_collected() {
  const bool plain_bits = !options_.serialize_within_processor && !options_.link_contention;
  const std::uint32_t* const pair_off = engine_->cluster_pair_offset_.data();
  const EvalEngine::ClusterArc* const carcs = engine_->cluster_arcs_.data();
  seed_count_ = 0;
  for (const std::uint32_t g : probe_groups_) {
    for (std::uint32_t a = pair_off[g]; a < pair_off[g + 1]; ++a) {
      const EvalEngine::ClusterArc& arc = carcs[a];
      if (plain_bits) {
        dirty_bits_[arc.head_pos >> 6] |= std::uint64_t{1} << (arc.head_pos & 63);
      }
      dirty_stamp_[idx(arc.head)] = epoch_;
      ++seed_count_;
    }
  }
}

const Weight* DeltaEval::pair_potential() {
  // Disabled (0 slots) or bypassed (np above the configured ceiling —
  // giant graphs would make the cache slots themselves the memory hog):
  // the static tail0 potential is always valid, just weaker. Counted so
  // the degradation is observable (CLI map stats / MappingReport) instead
  // of a silent cliff.
  if (cache_slots_ == 0 || (cache_max_np_ > 0 && np_ > cache_max_np_)) {
    ++stats_.potential_cache_disabled;
    trial_prefix_bound_ = prefix_max_bound_.data();
    return engine_->tail0_.data();
  }
  std::uint32_t a = static_cast<std::uint32_t>(idx(moved_clusters_[0]));
  std::uint32_t b =
      moved_count_ == 2 ? static_cast<std::uint32_t>(idx(moved_clusters_[1])) : a;
  if (a > b) std::swap(a, b);
  const std::uint32_t key = a * static_cast<std::uint32_t>(ns_) + b;
  if (pair_cache_.empty()) {
    pair_cache_.resize(std::min<std::size_t>(ns_ * ns_, cache_slots_));
  }
  PairPotential& slot = pair_cache_[key % pair_cache_.size()];
  if (slot.key == key && slot.commit_epoch == commit_epoch_) {
    trial_prefix_bound_ = slot.prefix.data();
    return slot.tail.data();
  }

  // A trial moving only clusters {c1, c2} leaves everything else in
  // place, which makes three downstream floors exact or valid:
  //  * path: an arc between unmoved clusters keeps its committed
  //    transmission cost (same hosts, same route; contention adds only
  //    nonnegative waits). Arcs adjacent to the pair cost >= 0.
  //  * serialization: unmoved tasks keep their processor, and the kernels
  //    serialize a processor's tasks in topological order, so the suffix
  //    weight-sum of unmoved tasks behind v on its processor must still
  //    run after v.
  //  * link congestion: unmoved messages keep their routes and every
  //    claim holds its link exclusively for the message weight, so once
  //    v's message claims a link, the suffix weight-sum of later unmoved
  //    claims on that link still serializes behind it (moved messages
  //    only add load).
  // The floors compose through the path recursion: makespan >= end(v) +
  // tail(v) with tail(v) = max(serial(v), link(v), max over succ arcs of
  // cost + weight(succ) + tail(succ)).
  const bool contention = options_.link_contention;
  const bool serialize = options_.serialize_within_processor;
  const Matrix<Weight>& hops = engine_->instance_.hops();
  const NodeId* const cluster_of = engine_->cluster_of_.data();
  const Weight* const node_weight = engine_->node_weight_.data();
  const NodeId c1 = moved_clusters_[0];
  const NodeId c2 = moved_count_ == 2 ? moved_clusters_[1] : moved_clusters_[0];
  slot.tail.assign(np_, 0);
  const std::vector<NodeId>& topo = engine_->topo_order_;

  std::vector<Weight> proc_suffix;  // serialize: remaining unmoved work per proc
  if (serialize) proc_suffix.assign(ns_, 0);
  std::vector<Weight> link_suffix;  // contention: remaining unmoved claim weight
  std::vector<Weight> link_floor;   // contention: strongest claim floor per task
  if (contention) {
    link_suffix.assign(link_free_.size(), 0);
    link_floor.assign(np_, 0);
  }

  for (std::size_t i = np_; i-- > 0;) {
    const NodeId v = topo[i];
    const NodeId vc = cluster_of[idx(v)];
    const bool moved_v = vc == c1 || vc == c2;

    if (contention) {
      // Claims of position i, processed in reverse stream order (claims
      // within one position included): accumulate the per-link suffix of
      // unmoved load and credit each claim's floor to its sender — the
      // suffix at credit time must contain exactly the claims at or after
      // this one, and senders sit at earlier positions, so their own tail
      // entries are finalized later in this reverse pass.
      for (std::uint32_t k = claim_pos_offset_[i + 1]; k-- > claim_pos_offset_[i];) {
        const NodeId sender = claim_senders_[k];
        const NodeId sc = cluster_of[idx(sender)];
        if (moved_v || sc == c1 || sc == c2) continue;  // rerouted message
        const auto li = static_cast<std::size_t>(claim_links_[k]);
        link_suffix[li] += claim_weights_[k];
        link_floor[idx(sender)] = std::max(link_floor[idx(sender)], link_suffix[li]);
      }
    }

    Weight t = 0;
    const std::uint32_t slo = engine_->succ_offset_[idx(v)];
    const std::uint32_t shi = engine_->succ_offset_[idx(v) + 1];
    for (std::uint32_t s = slo; s < shi; ++s) {
      const EvalEngine::SuccArc& sarc = engine_->succ_arcs_[s];
      Weight cost = 0;
      if (sarc.weight > 0 && !moved_v && sarc.succ_cluster != c1 &&
          sarc.succ_cluster != c2) {
        // Unmoved endpoints: host_ holds trial hosts, but they equal the
        // committed ones here.
        const NodeId pp = host_[idx(vc)];
        const NodeId pv = host_[idx(sarc.succ_cluster)];
        cost = contention
                   ? sarc.weight * static_cast<Weight>(engine_->route_links(pp, pv).size())
                   : sarc.weight * hops(idx(pp), idx(pv));
      }
      t = std::max(t, cost + node_weight[idx(sarc.succ)] + slot.tail[idx(sarc.succ)]);
    }
    if (serialize && !moved_v) {
      const std::size_t proc = idx(host_[idx(vc)]);  // unmoved: trial == committed
      t = std::max(t, proc_suffix[proc]);
      proc_suffix[proc] += node_weight[idx(v)];
    }
    if (contention) t = std::max(t, link_floor[idx(v)]);
    slot.tail[idx(v)] = t;
  }

  // Prefix table of the untouched-prefix certificate under this pair's
  // potential (strictly stronger than the static prefix_max_bound_).
  slot.prefix.resize(np_ + 1);
  Weight bound = 0;
  for (std::size_t i = 0; i < np_; ++i) {
    slot.prefix[i] = bound;
    bound = std::max(bound, end_[idx(topo[i])] + slot.tail[idx(topo[i])]);
  }
  slot.prefix[np_] = bound;

  slot.key = key;
  slot.commit_epoch = commit_epoch_;
  trial_prefix_bound_ = slot.prefix.data();
  return slot.tail.data();
}

Weight DeltaEval::verdict_probe(std::size_t anchor) const {
  const Weight cutoff = trial_cutoff_;
  // (a) The untouched prefix: every position before the anchor keeps its
  // committed schedule in every mode, so its strongest end + tail0
  // potential certifies any trial outright.
  if (trial_prefix_bound_[anchor] >= cutoff) {
    return trial_prefix_bound_[anchor];
  }

  // (a') Untouched makespan holder (plain mode only — serialize and
  // contention can contaminate through shared processors/links without a
  // graph path): a committed holder whose ancestor clusters exclude every
  // moved cluster keeps its committed end, so the trial total cannot drop
  // below the committed total.
  if (!holder_reach_.empty() && committed_total_ >= cutoff) {
    std::uint64_t moved_mask = 0;
    for (int m = 0; m < moved_count_; ++m) {
      if (idx(moved_clusters_[m]) < 64) {
        moved_mask |= std::uint64_t{1} << idx(moved_clusters_[m]);
      }
    }
    for (const std::uint64_t reach : holder_reach_) {
      if ((reach & moved_mask) == 0) return committed_total_;
    }
  }

  const bool contention = options_.link_contention;
  const Matrix<Weight>& hops = engine_->instance_.hops();
  const Weight* const tail0 = trial_potential_;
  const NodeId* const cluster_of = engine_->cluster_of_.data();
  const Weight* const node_weight = engine_->node_weight_.data();

  // Lower-bound cost of one arc under the trial hosts: exact in the
  // hop-product modes; under contention each route link adds at least the
  // message weight (store-and-forward), so weight * route length bounds
  // from below.
  const auto arc_cost = [&](NodeId pp, NodeId pv, Weight w) -> Weight {
    if (w <= 0) return 0;
    if (contention) return w * static_cast<Weight>(engine_->route_links(pp, pv).size());
    return w * hops(idx(pp), idx(pv));
  };

  // (b) Collected-arc candidates: a tail strictly before the anchor keeps
  // its committed end time (all dirt lies at or after the anchor), so
  // end(tail) + re-costed arc + head weight lower-bounds the head's trial
  // end. Any candidate whose potential-augmented score reaches the cutoff
  // certifies immediately; otherwise the strongest seeds the walk.
  const std::uint32_t* const pair_off = engine_->cluster_pair_offset_.data();
  const EvalEngine::ClusterArc* const carcs = engine_->cluster_arcs_.data();
  const std::uint32_t* const topo_pos = engine_->topo_pos_.data();
  NodeId best_head = -1;
  Weight best_end = 0;
  Weight best_score = -1;
  // Under contention the scan is capped: every boundary arc reroutes (the
  // group masks filter nothing), the route-length bounds are weak, and
  // when no candidate certifies quickly the verdict kernel is the better
  // spend than an exhaustive bound hunt. The hop-product modes keep the
  // full mask-filtered scan — their candidates certify most rejections,
  // so the early exit amortizes it.
  int budget = contention ? 48 : std::numeric_limits<int>::max();
  for (const std::uint32_t g : probe_groups_) {
    if (budget <= 0) break;
    for (std::uint32_t a = pair_off[g]; a < pair_off[g + 1]; ++a) {
      if (--budget < 0) break;
      const EvalEngine::ClusterArc& arc = carcs[a];
      if (topo_pos[idx(arc.tail)] >= anchor) continue;  // tail may itself shift
      const NodeId pp = host_[idx(cluster_of[idx(arc.tail)])];
      const NodeId pv = host_[idx(cluster_of[idx(arc.head)])];
      const Weight en =
          end_[idx(arc.tail)] + arc_cost(pp, pv, arc.weight) + node_weight[idx(arc.head)];
      const Weight score = en + tail0[idx(arc.head)];
      if (score >= cutoff) {
        return score;
      }
      if (score > best_score) {
        best_score = score;
        best_end = en;
        best_head = arc.head;
      }
    }
  }
  if (best_head < 0) return -1;
  return greedy_walk_bound(best_head, best_end);
}

Weight DeltaEval::greedy_walk_bound(NodeId v, Weight b) const {
  // Greedy single-path walk from task v with lower-bound trial end b: each
  // step extends the bound by one re-costed arc plus the successor's
  // weight, steering toward the largest potential-augmented continuation —
  // the best guess at the trial's critical path, at O(out-degree) per
  // step instead of the cascade's full frontier. Arc costs use the trial
  // hosts (host_ holds them during a trial): exact in the hop-product
  // modes, weight * route length (a store-and-forward lower bound) under
  // contention.
  const Weight cutoff = trial_cutoff_;
  const bool contention = options_.link_contention;
  const Matrix<Weight>& hops = engine_->instance_.hops();
  const Weight* const tail0 = trial_potential_;
  const NodeId* const cluster_of = engine_->cluster_of_.data();
  const Weight* const node_weight = engine_->node_weight_.data();
  while (true) {
    if (b + tail0[idx(v)] >= cutoff) {
      return b + tail0[idx(v)];
    }
    const std::uint32_t slo = engine_->succ_offset_[idx(v)];
    const std::uint32_t shi = engine_->succ_offset_[idx(v) + 1];
    if (slo == shi) return -1;  // reached a sink without certifying
    const NodeId pv = host_[idx(cluster_of[idx(v)])];
    Weight step_best = -1;
    Weight step_end = 0;
    NodeId next = -1;
    for (std::uint32_t s = slo; s < shi; ++s) {
      const EvalEngine::SuccArc& sarc = engine_->succ_arcs_[s];
      Weight en = b + node_weight[idx(sarc.succ)];
      if (sarc.weight > 0) {
        const NodeId sp = host_[idx(sarc.succ_cluster)];
        en += contention
                  ? sarc.weight * static_cast<Weight>(engine_->route_links(pv, sp).size())
                  : sarc.weight * hops(idx(pv), idx(sp));
      }
      const Weight score = en + tail0[idx(sarc.succ)];
      if (score > step_best) {
        step_best = score;
        step_end = en;
        next = sarc.succ;
      }
    }
    b = step_end;
    v = next;
  }
}

Weight DeltaEval::run_trial(Weight cutoff) {
  pending_ = Pending::kNone;  // discard any previous (uncommitted) trial
  verdict_exit_ = false;
  trial_cutoff_ = version_ == 2 ? cutoff : kNoCutoff;
  apply_pending_hosts();      // host_ holds the trial hosts until try_* returns
  ++epoch_;
  touched_.clear();
  touched_old_end_.clear();
  // Self-correcting economics: when most structure-changing trials have
  // been cascading into full-kernel fallbacks anyway, stop paying for the
  // aborted partial scans and reschedule only the provably-unaffected
  // (zero-dirt) trials incrementally. Zero-dirt trials keep the ratio
  // honest, so distance-regular instances never flip into this mode; the
  // flag is sticky so a ratio hovering at the boundary cannot flap between
  // the cheap and the aborting regime. (v2 verdict trials bypass the guard
  // in seed_dirty — they never fall back, so they never feed the ratio.)
  if (!conservative_) {
    conservative_ = dopt_.fallback_fraction < 1.0 && stats_.trials >= 64 &&
                    stats_.full_fallbacks * 5 > stats_.trials * 2;
  }
  const bool use_cutoff = trial_cutoff_ != kNoCutoff;
  // Cutoff trials run the collect-first flow: analyze without marking,
  // probe for a verdict, and only seed (stores, cleanup obligations) in
  // the rare undecided case. No-cutoff trials keep the v1 seed-then-scan
  // flow (and, under v1, the adaptive conservative guard).
  const std::size_t anchor = use_cutoff ? collect_probe_groups() : seed_dirty();
  if (anchor == np_) {
    // No arc changed cost and no shared-resource anchor: the committed
    // schedule is the trial schedule (e.g. an isolated or empty cluster
    // moved, or a swap whose hop distances all match).
    pending_ = Pending::kDelta;
    pending_total_ = committed_total_;
    ++stats_.delta_trials;
    restore_committed_hosts();
    return committed_total_;
  }
  const bool plain = !options_.serialize_within_processor && !options_.link_contention;
  if (use_cutoff) {
    trial_potential_ = pair_potential();  // also sets trial_prefix_bound_
  } else {
    trial_potential_ = engine_->tail0_.data();
    trial_prefix_bound_ = prefix_max_bound_.data();
  }
  if (use_cutoff) {
    // Pre-cascade verdict probe: most hill-climb rejections are certified
    // here, from the untouched prefix or one greedy path walk, without
    // having touched any trial state.
    const Weight probe = verdict_probe(anchor);
    if (probe >= 0) {
      restore_committed_hosts();
      ++stats_.delta_trials;
      ++stats_.verdict_exits;
      verdict_exit_ = true;
      return probe;
    }
    if (!plain && np_ - anchor > np_ / 8) {
      // Anchor outside the last eighth under serialize/contention:
      // shared-resource widening would storm the scan (and then still pay
      // the kernel after the threshold), so score through the dense
      // verdict kernel directly — launched from the anchor over committed
      // prefix state, with a certified exit the moment a finalized end
      // plus the pair potential reaches the cutoff, and an ordinary exact
      // (committable) trial otherwise.
      scan_anchor_ = anchor;
      const Weight t = run_verdict_full_trial();
      restore_committed_hosts();
      if (pending_ == Pending::kFull) return pending_total_;
      ++stats_.delta_trials;
      ++stats_.verdict_exits;
      return t;
    }
    seed_from_collected();
  }
  const auto threshold =
      static_cast<std::size_t>(dopt_.fallback_fraction * static_cast<double>(np_));
  // Scan economics: under v1 a clean suffix position still replays its
  // link claims (about the price of the kernel's own route walk) or its
  // proc_free contribution, so when the projected suffix work rivals a
  // full pass the full kernel wins outright. v2 clean positions are O(1)
  // (bucketed claims), so only the seed count matters there — and verdict
  // trials never pre-abort at all, their cost is bounded by the exit.
  const double clean_cost = options_.link_contention ? 1.0 : 0.35;
  const bool scan_uneconomic =
      version_ == 1 && !plain && dopt_.fallback_fraction < 1.0 &&
      clean_cost * static_cast<double>(np_ - anchor) + static_cast<double>(seed_count_) >=
          static_cast<double>(np_);
  if ((seed_count_ > threshold && !use_cutoff) || scan_uneconomic) {
    // The seeds alone already exceed the reschedule budget: go straight to
    // the full kernel instead of burning a partial scan first.
    if (plain) std::fill(dirty_bits_.begin(), dirty_bits_.end(), std::uint64_t{0});
    (void)run_full_trial();
    restore_committed_hosts();
    return pending_total_;
  }
  scan_anchor_ = anchor;
  Weight total = 0;
  if (version_ == 2) {
    total = plain ? run_trial_plain_v2() : run_trial_scan_v2();
  } else {
    total = plain ? run_trial_plain() : run_trial_scan();
  }
  // Roll back the in-place end_ writes (trial values survive in
  // trial_start_/trial_end_ for commit) and the trial hosts.
  for (std::size_t i = 0; i < touched_.size(); ++i) {
    end_[idx(touched_[i])] = touched_old_end_[i];
  }
  restore_committed_hosts();
  if (pending_ == Pending::kFull) return pending_total_;  // fell back mid-trial
  ++stats_.delta_trials;
  stats_.tasks_rescheduled += static_cast<std::int64_t>(touched_.size());
  if (verdict_exit_) {
    // Certified ">= cutoff": some finalized trial end reached the cutoff,
    // so the exact total can only be higher. Nothing is committable.
    ++stats_.verdict_exits;
    pending_ = Pending::kNone;
    return total;
  }
  pending_ = Pending::kDelta;
  pending_total_ = total;
  return total;
}

Weight DeltaEval::run_trial_plain() {
  // Sparse worklist: dirty topological positions live in dirty_bits_;
  // popping the lowest set bit processes tasks in topological order, and
  // successor marks always land at higher positions, so one forward pass
  // over the words drains the frontier. Clean tasks are never visited.
  const std::vector<NodeId>& topo = engine_->topo_order_;
  const std::uint32_t* const topo_pos = engine_->topo_pos_.data();
  const EvalEngine::PredArc* const arcs = engine_->pred_arcs_.data();
  const EvalEngine::SuccArc* const succ_arcs = engine_->succ_arcs_.data();
  const std::uint32_t* const pred_offset = engine_->pred_offset_.data();
  const std::uint32_t* const succ_offset = engine_->succ_offset_.data();
  const NodeId* const cluster_of = engine_->cluster_of_.data();
  const Weight* const node_weight = engine_->node_weight_.data();
  const NodeId* const host = host_.data();
  Weight* const end = end_.data();
  const Matrix<Weight>& hops = engine_->instance_.hops();

  const auto threshold =
      static_cast<std::size_t>(dopt_.fallback_fraction * static_cast<double>(np_));
  std::size_t rescheduled = 0;
  std::size_t removed_at_max = 0;
  Weight touched_max = 0;

  const std::size_t words = dirty_bits_.size();
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits;
    while ((bits = dirty_bits_[w]) != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(bits));
      dirty_bits_[w] = bits & (bits - 1);
      const std::size_t pos = (w << 6) | b;
      const NodeId v = topo[pos];

      if (++rescheduled > threshold) {
        // Too much of the graph went dirty: clear the remaining marks so
        // the bitmask stays self-cleaning, then run the full kernel.
        for (std::size_t ww = w; ww < words; ++ww) dirty_bits_[ww] = 0;
        stats_.positions_scanned += static_cast<std::int64_t>(rescheduled);
        return run_full_trial();
      }

      Weight st = 0;
      const NodeId pv = host[idx(cluster_of[idx(v)])];
      const std::uint32_t lo = pred_offset[idx(v)];
      const std::uint32_t hi = pred_offset[idx(v) + 1];
      for (std::uint32_t a = lo; a < hi; ++a) {
        const EvalEngine::PredArc& arc = arcs[a];
        Weight arrival = end[idx(arc.pred)];  // trial value if pred recomputed
        if (arc.weight > 0) {
          arrival += arc.weight * hops(idx(host[idx(arc.pred_cluster)]), idx(pv));
        }
        st = std::max(st, arrival);
      }
      const Weight en = st + node_weight[idx(v)];
      const Weight old_end = end[idx(v)];
      trial_start_[idx(v)] = st;
      trial_end_[idx(v)] = en;
      end[idx(v)] = en;
      touched_.push_back(v);
      touched_old_end_.push_back(old_end);
      touched_max = std::max(touched_max, en);
      if (en != old_end) {
        if (old_end == committed_total_) ++removed_at_max;
        const std::uint32_t slo = succ_offset[idx(v)];
        const std::uint32_t shi = succ_offset[idx(v) + 1];
        for (std::uint32_t s = slo; s < shi; ++s) {
          const std::size_t sp = topo_pos[idx(succ_arcs[s].succ)];
          dirty_bits_[sp >> 6] |= std::uint64_t{1} << (sp & 63);
        }
      }
    }
  }
  stats_.positions_scanned += static_cast<std::int64_t>(rescheduled);

  // Makespan: every untouched task keeps its committed end, so as long as
  // one committed makespan holder went untouched the old total still
  // stands on the untouched side; otherwise re-derive the max over end_,
  // which at this point holds trial values for touched tasks and committed
  // values everywhere else.
  if (removed_at_max < count_at_max_) return std::max(committed_total_, touched_max);
  Weight m = touched_max;
  for (std::size_t v = 0; v < np_; ++v) m = std::max(m, end[v]);
  return m;
}

Weight DeltaEval::run_trial_plain_v2() {
  // The v1 worklist drain, plus the three v2 attacks (file comment): a
  // popped task first tries the O(1) δ-shift closure off its marker
  // accumulator, every finalized end is tested against the verdict
  // cutoff, and recomputed tasks push their successors' trial arrivals at
  // mark time (one hops lookup per changed in-arc instead of a full
  // in-arc rescan at the successor).
  const std::vector<NodeId>& topo = engine_->topo_order_;
  const std::uint32_t* const topo_pos = engine_->topo_pos_.data();
  const EvalEngine::PredArc* const arcs = engine_->pred_arcs_.data();
  const EvalEngine::SuccArc* const succ_arcs = engine_->succ_arcs_.data();
  const std::uint32_t* const pred_offset = engine_->pred_offset_.data();
  const std::uint32_t* const succ_offset = engine_->succ_offset_.data();
  const NodeId* const cluster_of = engine_->cluster_of_.data();
  const Weight* const node_weight = engine_->node_weight_.data();
  const NodeId* const host = host_.data();
  Weight* const end = end_.data();
  const Weight* const tail0 = trial_potential_;
  const Matrix<Weight>& hops = engine_->instance_.hops();
  const Weight cutoff = trial_cutoff_;
  const bool use_cutoff = cutoff != kNoCutoff;

  const auto threshold =
      static_cast<std::size_t>(dopt_.fallback_fraction * static_cast<double>(np_));
  std::size_t rescheduled = 0;
  std::size_t removed_at_max = 0;
  Weight touched_max = 0;
  bool walked = false;  // one mid-cascade probe walk per trial

  const std::size_t words = dirty_bits_.size();
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits;
    while ((bits = dirty_bits_[w]) != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(bits));
      dirty_bits_[w] = bits & (bits - 1);
      const std::size_t pos = (w << 6) | b;
      const NodeId v = topo[pos];

      if (++rescheduled > threshold) {
        for (std::size_t ww = w; ww < words; ++ww) dirty_bits_[ww] = 0;
        stats_.positions_scanned += static_cast<std::int64_t>(rescheduled);
        // Cutoff trials fall back to the *verdict* kernel: certified exit
        // or an exact committable total, never wasted work past the bound.
        return use_cutoff ? run_verdict_full_trial() : run_full_trial();
      }

      const NodeId pv = host[idx(cluster_of[idx(v)])];
      Weight st;
      // δ-shift closure: v was reached only through markers (no seeded
      // in-arc changed cost), so every changed predecessor arrival is in
      // marker_max_. If that max reaches the committed start it dominates
      // every unchanged arrival (all <= committed start) — the exact new
      // start is the marker max. Ditto when every predecessor marked
      // (there are no unchanged arrivals). Otherwise this is a max-merge
      // point between the shifted and the clean frontier: materialize by
      // exact in-arc rescan.
      const std::uint32_t lo = pred_offset[idx(v)];
      const std::uint32_t hi = pred_offset[idx(v) + 1];
      if (dirty_stamp_[idx(v)] != epoch_ && marker_stamp_[idx(v)] == epoch_ &&
          (marker_max_[idx(v)] >= start_[idx(v)] || marker_count_[idx(v)] == hi - lo)) {
        st = marker_max_[idx(v)];
        ++stats_.shift_fast_paths;
      } else {
        st = 0;
        for (std::uint32_t a = lo; a < hi; ++a) {
          const EvalEngine::PredArc& arc = arcs[a];
          Weight arrival = end[idx(arc.pred)];  // trial value if pred recomputed
          if (arc.weight > 0) {
            arrival += arc.weight * hops(idx(host[idx(arc.pred_cluster)]), idx(pv));
          }
          st = std::max(st, arrival);
        }
      }
      const Weight en = st + node_weight[idx(v)];
      const Weight old_end = end[idx(v)];
      trial_start_[idx(v)] = st;
      trial_end_[idx(v)] = en;
      end[idx(v)] = en;
      touched_.push_back(v);
      touched_old_end_.push_back(old_end);
      touched_max = std::max(touched_max, en);
      if (en != old_end) {
        if (use_cutoff && !walked && en > old_end) {
          // Mid-cascade probe: this exact (post-max-merge) end is often
          // far above what the pre-cascade probe could bound; one greedy
          // walk from it certifies most of the remaining rejections.
          walked = true;
          const Weight wb = greedy_walk_bound(v, en);
          if (wb >= 0) {
            for (std::size_t ww = w; ww < words; ++ww) dirty_bits_[ww] = 0;
            stats_.positions_scanned += static_cast<std::int64_t>(rescheduled);
            verdict_exit_ = true;
            return wb;
          }
        }
        if (old_end == committed_total_) ++removed_at_max;
        const std::uint32_t slo = succ_offset[idx(v)];
        const std::uint32_t shi = succ_offset[idx(v) + 1];
        for (std::uint32_t s = slo; s < shi; ++s) {
          const EvalEngine::SuccArc& sarc = succ_arcs[s];
          const std::size_t sp = topo_pos[idx(sarc.succ)];
          dirty_bits_[sp >> 6] |= std::uint64_t{1} << (sp & 63);
          // Arrival-carrying marker: the successor's trial arrival over
          // this arc, under the trial hosts (the arc's cost is unchanged
          // unless the successor is seeded, in which case it rescans).
          Weight arr = en;
          if (sarc.weight > 0) {
            arr += sarc.weight * hops(idx(pv), idx(host[idx(sarc.succ_cluster)]));
          }
          if (marker_stamp_[idx(sarc.succ)] != epoch_) {
            marker_stamp_[idx(sarc.succ)] = epoch_;
            marker_max_[idx(sarc.succ)] = arr;
            marker_count_[idx(sarc.succ)] = 1;
          } else {
            marker_max_[idx(sarc.succ)] = std::max(marker_max_[idx(sarc.succ)], arr);
            ++marker_count_[idx(sarc.succ)];
          }
        }
      }
      if (use_cutoff && en + tail0[idx(v)] >= cutoff) {
        // en is a finalized trial end time and tail0 a schedule-independent
        // downstream potential, so the exact total is >= en + tail0 >=
        // cutoff — certified verdict; skip the rest of the cascade (the
        // potential usually fires at the cascade's *front*, where end
        // times are small but long weight chains still lie below).
        for (std::size_t ww = w; ww < words; ++ww) dirty_bits_[ww] = 0;
        stats_.positions_scanned += static_cast<std::int64_t>(rescheduled);
        verdict_exit_ = true;
        return en + tail0[idx(v)];
      }
    }
  }
  stats_.positions_scanned += static_cast<std::int64_t>(rescheduled);

  if (removed_at_max < count_at_max_) return std::max(committed_total_, touched_max);
  Weight m = touched_max;
  for (std::size_t v = 0; v < np_; ++v) m = std::max(m, end[v]);
  return m;
}

Weight DeltaEval::run_trial_scan() {
  const bool serialize = options_.serialize_within_processor;
  const bool contention = options_.link_contention;
  const std::vector<NodeId>& topo = engine_->topo_order_;
  const EvalEngine::PredArc* const arcs = engine_->pred_arcs_.data();
  const EvalEngine::SuccArc* const succ_arcs = engine_->succ_arcs_.data();
  const std::uint32_t* const pred_offset = engine_->pred_offset_.data();
  const std::uint32_t* const succ_offset = engine_->succ_offset_.data();
  const NodeId* const cluster_of = engine_->cluster_of_.data();
  const Weight* const node_weight = engine_->node_weight_.data();
  const Matrix<Weight>& hops = engine_->instance_.hops();

  // The scan anchor set by run_trial(): the earliest seeded position, or
  // (serialize) the earliest member of a moved cluster — nothing before it
  // can change in any mode.
  const std::size_t min_pos = scan_anchor_;

  // Mode widening seeds: both the vacated and the newly occupied processor
  // of each moved cluster carry changed task sets from min_pos onward.
  if (serialize) {
    for (int m = 0; m < moved_count_; ++m) {
      proc_dirty_stamp_[idx(moved_old_hosts_[m])] = epoch_;
      proc_dirty_stamp_[idx(moved_new_hosts_[m])] = epoch_;
    }
    // Running proc_free state at min_pos: the prefix is untouched (no
    // moved-cluster task precedes min_pos), so replay committed end times.
    std::fill(proc_free_.begin(), proc_free_.end(), Weight{0});
    for (std::size_t pos = 0; pos < min_pos; ++pos) {
      const NodeId v = topo[pos];
      Weight& free = proc_free_[idx(host_[idx(cluster_of[idx(v)])])];
      free = std::max(free, end_[idx(v)]);
    }
  }
  if (contention) {
    // Running link_free state at min_pos: replay the stored prefix claims.
    std::fill(link_free_.begin(), link_free_.end(), Weight{0});
    const std::uint32_t prefix_claims = claim_pos_offset_[min_pos];
    for (std::uint32_t k = 0; k < prefix_claims; ++k) {
      link_free_[static_cast<std::size_t>(claim_links_[k])] = claim_values_[k];
    }
  }

  const auto threshold =
      static_cast<std::size_t>(dopt_.fallback_fraction * static_cast<double>(np_));
  std::size_t rescheduled = 0;
  std::size_t scanned = 0;
  Weight total = prefix_max_end_[min_pos];

  for (std::size_t pos = min_pos; pos < np_; ++pos) {
    ++scanned;
    const NodeId v = topo[pos];
    const NodeId pv = host_[idx(cluster_of[idx(v)])];
    const std::uint32_t clo = contention ? claim_pos_offset_[pos] : 0;
    const std::uint32_t chi = contention ? claim_pos_offset_[pos + 1] : 0;

    bool recompute = dirty_stamp_[idx(v)] == epoch_;
    if (!recompute && serialize && proc_dirty_stamp_[idx(pv)] == epoch_) recompute = true;
    if (!recompute && contention) {
      for (std::uint32_t k = clo; k < chi; ++k) {
        if (link_dirty_stamp_[static_cast<std::size_t>(claim_links_[k])] == epoch_) {
          recompute = true;
          break;
        }
      }
    }

    if (!recompute) {
      // Clean: the committed values stand; replay their shared-resource
      // contributions so later dirty tasks see the right running state.
      if (serialize) {
        Weight& free = proc_free_[idx(pv)];
        free = std::max(free, end_[idx(v)]);
      }
      for (std::uint32_t k = clo; k < chi; ++k) {
        link_free_[static_cast<std::size_t>(claim_links_[k])] = claim_values_[k];
      }
      total = std::max(total, end_[idx(v)]);
      continue;
    }

    if (++rescheduled > threshold) {
      stats_.positions_scanned += static_cast<std::int64_t>(scanned);
      return run_full_trial();
    }

    // Recompute v with the exact full-kernel arithmetic.
    Weight st = 0;
    std::uint32_t cursor = clo;  // cursor through v's committed claims
    const std::uint32_t lo = pred_offset[idx(v)];
    const std::uint32_t hi = pred_offset[idx(v) + 1];
    for (std::uint32_t a = lo; a < hi; ++a) {
      const EvalEngine::PredArc& arc = arcs[a];
      Weight arrival = end_[idx(arc.pred)];  // trial value if pred recomputed
      if (arc.weight > 0) {
        const NodeId pp = host_[idx(arc.pred_cluster)];
        if (contention) {
          const bool route_changed =
              cluster_moved(arc.pred_cluster) || cluster_moved(cluster_of[idx(v)]);
          if (!route_changed) {
            // Same route as committed: claims align 1:1 — a claim that
            // lands on a different busy-until time dirties its link.
            for (const std::int32_t li0 : engine_->route_links(pp, pv)) {
              const auto li = static_cast<std::size_t>(li0);
              const Weight depart = std::max(arrival, link_free_[li]);
              arrival = depart + arc.weight;
              link_free_[li] = arrival;
              if (arrival != claim_values_[cursor]) link_dirty_stamp_[li] = epoch_;
              ++cursor;
            }
          } else {
            // Route changed: the committed claims evaporate from their
            // links and new claims land on the trial route — both link
            // sets diverge.
            const NodeId old_pp = committed_host_during_trial(arc.pred_cluster);
            const NodeId old_pv = committed_host_during_trial(cluster_of[idx(v)]);
            const auto old_len =
                static_cast<std::uint32_t>(engine_->route_links(old_pp, old_pv).size());
            for (std::uint32_t k = 0; k < old_len; ++k) {
              link_dirty_stamp_[static_cast<std::size_t>(claim_links_[cursor + k])] = epoch_;
            }
            cursor += old_len;
            for (const std::int32_t li0 : engine_->route_links(pp, pv)) {
              const auto li = static_cast<std::size_t>(li0);
              const Weight depart = std::max(arrival, link_free_[li]);
              arrival = depart + arc.weight;
              link_free_[li] = arrival;
              link_dirty_stamp_[li] = epoch_;
            }
          }
        } else {
          arrival += arc.weight * hops(idx(pp), idx(pv));
        }
      }
      st = std::max(st, arrival);
    }
    if (serialize) st = std::max(st, proc_free_[idx(pv)]);
    const Weight en = st + node_weight[idx(v)];
    const Weight old_end = end_[idx(v)];
    trial_start_[idx(v)] = st;
    trial_end_[idx(v)] = en;
    end_[idx(v)] = en;
    touched_.push_back(v);
    touched_old_end_.push_back(old_end);
    if (serialize) proc_free_[idx(pv)] = en;

    if (en != old_end) {
      // End time moved: successors must re-derive their starts, and (in
      // serialize mode) so must every later task on this processor.
      const std::uint32_t slo = succ_offset[idx(v)];
      const std::uint32_t shi = succ_offset[idx(v) + 1];
      for (std::uint32_t s = slo; s < shi; ++s) {
        dirty_stamp_[idx(succ_arcs[s].succ)] = epoch_;
      }
      if (serialize) proc_dirty_stamp_[idx(pv)] = epoch_;
    }
    total = std::max(total, en);
  }

  stats_.positions_scanned += static_cast<std::int64_t>(scanned);
  return total;
}

void DeltaEval::make_link_dirty(std::size_t li, std::int64_t rank, Weight live) {
  link_dirty_stamp_[li] = epoch_;
  link_free_[li] = live;
  // Every later committed claimant of this link sees a different link
  // state than the committed stream recorded — mark exactly those
  // positions dirty. Bucket entries are in claim-stream (= topological)
  // order, so the walk only marks the current position or later ones.
  const std::uint32_t base = bucket_offset_[li];
  const std::uint32_t bend = bucket_offset_[li + 1];
  const NodeId* const topo = engine_->topo_order_.data();
  for (std::uint32_t e = base + static_cast<std::uint32_t>(rank + 1); e < bend; ++e) {
    dirty_stamp_[idx(topo[bucket_pos_[e]])] = epoch_;
  }
}

Weight DeltaEval::run_trial_scan_v2() {
  // v2 suffix scan (serialize and/or contention). Differences from v1:
  //
  //  * contention claims are never replayed. A dirty task reads a clean
  //    link's committed busy-until time straight out of the link's bucket
  //    (the entry before its own claim's rank); a diverging claim calls
  //    make_link_dirty, which starts live tracking in link_free_ and
  //    marks the link's later committed claimants dirty. Clean positions
  //    therefore need no per-claim checks at all — if none of their links
  //    diverged upstream, nobody marked them.
  //  * serialize-only trials propagate through δ-shift markers and close
  //    uniformly-shifted tasks in O(1) (same rule as the plain worklist;
  //    the live proc_free_ replay supplies the serialization term).
  //  * every position's finalized contribution feeds the verdict check.
  const bool serialize = options_.serialize_within_processor;
  const bool contention = options_.link_contention;
  const bool use_markers = !contention;  // claims demand exact recomputes
  const std::vector<NodeId>& topo = engine_->topo_order_;
  const EvalEngine::PredArc* const arcs = engine_->pred_arcs_.data();
  const EvalEngine::SuccArc* const succ_arcs = engine_->succ_arcs_.data();
  const std::uint32_t* const pred_offset = engine_->pred_offset_.data();
  const std::uint32_t* const succ_offset = engine_->succ_offset_.data();
  const NodeId* const cluster_of = engine_->cluster_of_.data();
  const Weight* const node_weight = engine_->node_weight_.data();
  const Weight* const tail0 = trial_potential_;
  const Matrix<Weight>& hops = engine_->instance_.hops();
  const Weight cutoff = trial_cutoff_;
  const bool use_cutoff = cutoff != kNoCutoff;

  const std::size_t min_pos = scan_anchor_;

  if (serialize) {
    for (int m = 0; m < moved_count_; ++m) {
      proc_dirty_stamp_[idx(moved_old_hosts_[m])] = epoch_;
      proc_dirty_stamp_[idx(moved_new_hosts_[m])] = epoch_;
    }
    std::fill(proc_free_.begin(), proc_free_.end(), Weight{0});
    for (std::size_t pos = 0; pos < min_pos; ++pos) {
      const NodeId v = topo[pos];
      Weight& free = proc_free_[idx(host_[idx(cluster_of[idx(v)])])];
      free = std::max(free, end_[idx(v)]);
    }
  }
  // Contention needs no prefix replay: link_free_ only holds live values
  // for links make_link_dirty touched this epoch; clean-link state comes
  // from the buckets on demand.

  const auto threshold =
      static_cast<std::size_t>(dopt_.fallback_fraction * static_cast<double>(np_));
  std::size_t rescheduled = 0;
  std::size_t scanned = 0;
  bool walked = false;  // one mid-cascade probe walk per trial
  Weight total = prefix_max_end_[min_pos];
  if (use_cutoff && trial_prefix_bound_[min_pos] >= cutoff) {
    // The untouched prefix alone already certifies ">= cutoff" — the trial
    // rejects before scanning a single position.
    verdict_exit_ = true;
    return std::max(total, trial_prefix_bound_[min_pos]);
  }

  for (std::size_t pos = min_pos; pos < np_; ++pos) {
    ++scanned;
    const NodeId v = topo[pos];
    const NodeId pv = host_[idx(cluster_of[idx(v)])];
    const std::uint32_t clo = contention ? claim_pos_offset_[pos] : 0;
    const std::uint32_t chi = contention ? claim_pos_offset_[pos + 1] : 0;

    const bool seeded = dirty_stamp_[idx(v)] == epoch_;
    const bool marked = use_markers && marker_stamp_[idx(v)] == epoch_;
    bool recompute = seeded || marked;
    if (!recompute && serialize && proc_dirty_stamp_[idx(pv)] == epoch_) recompute = true;

    if (!recompute) {
      // Clean: committed values stand. Claims are skipped wholesale (their
      // links carry no live divergence, or this position would have been
      // marked); only the serialization term still replays, in O(1).
      if (serialize) {
        Weight& free = proc_free_[idx(pv)];
        free = std::max(free, end_[idx(v)]);
      }
      stats_.claims_skipped += chi - clo;
      total = std::max(total, end_[idx(v)]);
      if (use_cutoff && end_[idx(v)] + tail0[idx(v)] >= cutoff) {
        // A finalized end plus the schedule-independent downstream
        // potential certifies the verdict (see run_trial_plain_v2).
        stats_.positions_scanned += static_cast<std::int64_t>(scanned);
        verdict_exit_ = true;
        return std::max(total, end_[idx(v)] + tail0[idx(v)]);
      }
      continue;
    }

    if (++rescheduled > threshold) {
      stats_.positions_scanned += static_cast<std::int64_t>(scanned);
      return use_cutoff ? run_verdict_full_trial() : run_full_trial();
    }

    Weight st;
    const std::uint32_t lo = pred_offset[idx(v)];
    const std::uint32_t hi = pred_offset[idx(v) + 1];
    if (use_markers && marked && !seeded &&
        (marker_max_[idx(v)] >= start_[idx(v)] || marker_count_[idx(v)] == hi - lo)) {
      // δ-shift closure (see run_trial_plain_v2): the marker max covers
      // every unchanged arrival (all <= the committed start, which under
      // serialization already includes the old proc_free term). The live
      // serialization term is folded in below like any recompute.
      st = marker_max_[idx(v)];
      ++stats_.shift_fast_paths;
    } else {
      // Exact materialization (max-merge point, seeded task, or any
      // contention-mode recompute).
      st = 0;
      std::uint32_t cursor = clo;  // cursor through v's committed claims
      for (std::uint32_t a = lo; a < hi; ++a) {
        const EvalEngine::PredArc& arc = arcs[a];
        Weight arrival = end_[idx(arc.pred)];  // trial value if pred recomputed
        if (arc.weight > 0) {
          const NodeId pp = host_[idx(arc.pred_cluster)];
          if (contention) {
            const bool route_changed =
                cluster_moved(arc.pred_cluster) || cluster_moved(cluster_of[idx(v)]);
            if (!route_changed) {
              // Same route as committed: claims align 1:1. A clean link's
              // state is the bucket entry before this claim's rank; the
              // first diverging value flips the link to live tracking.
              for (const std::int32_t li0 : engine_->route_links(pp, pv)) {
                const auto li = static_cast<std::size_t>(li0);
                const bool live = link_dirty_stamp_[li] == epoch_;
                Weight state;
                if (live) {
                  state = link_free_[li];
                } else {
                  const std::uint32_t rank = claim_bucket_rank_[cursor];
                  state = rank > 0 ? bucket_value_[bucket_offset_[li] + rank - 1] : 0;
                }
                const Weight depart = std::max(arrival, state);
                arrival = depart + arc.weight;
                if (live) {
                  link_free_[li] = arrival;
                } else if (arrival != claim_values_[cursor]) {
                  make_link_dirty(li, static_cast<std::int64_t>(claim_bucket_rank_[cursor]),
                                  arrival);
                }
                ++cursor;
              }
            } else {
              // Route changed: the committed claims evaporate from their
              // links (state rolls back to just before each claim; later
              // claimants must recompute) and new claims land on the
              // trial route.
              const std::uint32_t c0 = cursor;
              const NodeId old_pp = committed_host_during_trial(arc.pred_cluster);
              const NodeId old_pv = committed_host_during_trial(cluster_of[idx(v)]);
              const auto old_len =
                  static_cast<std::uint32_t>(engine_->route_links(old_pp, old_pv).size());
              for (std::uint32_t k = 0; k < old_len; ++k, ++cursor) {
                const auto li = static_cast<std::size_t>(claim_links_[cursor]);
                if (link_dirty_stamp_[li] == epoch_) continue;  // already live
                const std::uint32_t rank = claim_bucket_rank_[cursor];
                const Weight before =
                    rank > 0 ? bucket_value_[bucket_offset_[li] + rank - 1] : 0;
                make_link_dirty(li, static_cast<std::int64_t>(rank), before);
              }
              for (const std::int32_t li0 : engine_->route_links(pp, pv)) {
                const auto li = static_cast<std::size_t>(li0);
                Weight state;
                if (link_dirty_stamp_[li] == epoch_) {
                  state = link_free_[li];
                } else {
                  // No committed claim of this arc on li: its committed
                  // state at this stream point is the last bucket entry
                  // issued before claim index c0.
                  const std::uint32_t base = bucket_offset_[li];
                  std::uint32_t blo = base;
                  std::uint32_t bhi = bucket_offset_[li + 1];
                  while (blo < bhi) {
                    const std::uint32_t mid = blo + (bhi - blo) / 2;
                    if (bucket_claim_[mid] < c0) {
                      blo = mid + 1;
                    } else {
                      bhi = mid;
                    }
                  }
                  const std::int64_t rank = static_cast<std::int64_t>(blo - base) - 1;
                  state = rank >= 0 ? bucket_value_[base + static_cast<std::uint32_t>(rank)]
                                    : 0;
                  make_link_dirty(li, rank, state);
                }
                const Weight depart = std::max(arrival, state);
                arrival = depart + arc.weight;
                link_free_[li] = arrival;
              }
            }
          } else {
            arrival += arc.weight * hops(idx(pp), idx(pv));
          }
        }
        st = std::max(st, arrival);
      }
    }
    if (serialize) st = std::max(st, proc_free_[idx(pv)]);
    const Weight en = st + node_weight[idx(v)];
    const Weight old_end = end_[idx(v)];
    trial_start_[idx(v)] = st;
    trial_end_[idx(v)] = en;
    end_[idx(v)] = en;
    touched_.push_back(v);
    touched_old_end_.push_back(old_end);
    if (serialize) proc_free_[idx(pv)] = en;

    if (en != old_end) {
      if (use_cutoff && !walked && en > old_end) {
        // Mid-cascade probe (see run_trial_plain_v2).
        walked = true;
        const Weight wb = greedy_walk_bound(v, en);
        if (wb >= 0) {
          stats_.positions_scanned += static_cast<std::int64_t>(scanned);
          verdict_exit_ = true;
          return wb;
        }
      }
      const std::uint32_t slo = succ_offset[idx(v)];
      const std::uint32_t shi = succ_offset[idx(v) + 1];
      for (std::uint32_t s = slo; s < shi; ++s) {
        const EvalEngine::SuccArc& sarc = succ_arcs[s];
        if (use_markers) {
          Weight arr = en;
          if (sarc.weight > 0) {
            arr += sarc.weight * hops(idx(pv), idx(host_[idx(sarc.succ_cluster)]));
          }
          if (marker_stamp_[idx(sarc.succ)] != epoch_) {
            marker_stamp_[idx(sarc.succ)] = epoch_;
            marker_max_[idx(sarc.succ)] = arr;
            marker_count_[idx(sarc.succ)] = 1;
          } else {
            marker_max_[idx(sarc.succ)] = std::max(marker_max_[idx(sarc.succ)], arr);
            ++marker_count_[idx(sarc.succ)];
          }
        } else {
          dirty_stamp_[idx(sarc.succ)] = epoch_;
        }
      }
      if (serialize) proc_dirty_stamp_[idx(pv)] = epoch_;
    }
    total = std::max(total, en);
    if (use_cutoff && en + tail0[idx(v)] >= cutoff) {
      stats_.positions_scanned += static_cast<std::int64_t>(scanned);
      verdict_exit_ = true;
      return std::max(total, en + tail0[idx(v)]);
    }
  }

  stats_.positions_scanned += static_cast<std::int64_t>(scanned);
  return total;
}

void DeltaEval::commit() {
  if (pending_ == Pending::kNone) {
    throw std::logic_error("DeltaEval::commit: no pending trial");
  }
  ++stats_.commits;
  apply_pending_hosts();
  if (pending_ == Pending::kFull) {
    if (full_start_pos_ == 0) {
      std::copy_n(full_ws_.start.begin(), np_, start_.begin());
      std::copy_n(full_ws_.end.begin(), np_, end_.begin());
    } else {
      // Anchored verdict-kernel trial: the prefix never left the committed
      // arrays, only the suffix was rescheduled.
      const std::vector<NodeId>& topo = engine_->topo_order_;
      for (std::size_t pos = full_start_pos_; pos < np_; ++pos) {
        const NodeId v = topo[pos];
        start_[idx(v)] = full_ws_.start[idx(v)];
        end_[idx(v)] = full_ws_.end[idx(v)];
      }
    }
  } else {
    for (const NodeId v : touched_) {
      start_[idx(v)] = trial_start_[idx(v)];
      end_[idx(v)] = trial_end_[idx(v)];
    }
  }
  rebuild_committed_aux();
  committed_total_ = pending_total_;
  pending_ = Pending::kNone;
  moved_count_ = 0;
  ++commit_epoch_;  // committed costs changed: pair potentials are stale
}

}  // namespace mimdmap
