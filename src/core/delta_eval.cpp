// DeltaEval: incremental suffix rescheduling for local-move search loops.
//
// See the class comment in core/eval_engine.hpp for the design. The
// invariants this file maintains:
//
//  * start_/end_/committed_total_ are always bit-identical to what
//    evaluate_reference() produces for the committed host map — commits
//    fold in trial values computed with the exact full-kernel arithmetic,
//    or (after a fallback) copy the full kernel's own output;
//  * during a trial, host_ temporarily holds the *trial* hosts (restored
//    before try_* returns); committed hosts of the <= 2 moved clusters are
//    recoverable through committed_host_during_trial();
//  * every epoch-stamped scratch array is invalidated wholesale by bumping
//    epoch_, and the plain-mode dirty bitmask is self-cleaning (all-zero
//    between trials), so steady-state trials never touch the allocator;
//  * the per-mode dirty analysis is conservative, never tight: a task is
//    recomputed when (a) it is seeded (an inter-cluster arc of its own
//    changed cost or route) or a predecessor's end time changed, (b) in
//    serialize mode its processor carries a dirty flag, or (c) in
//    contention mode any link of its committed claims carries a dirty
//    flag. Clean tasks keep their committed values verbatim.
#include <algorithm>
#include <bit>
#include <stdexcept>

#include "core/eval_engine.hpp"

namespace mimdmap {

DeltaEval::DeltaEval(const EvalEngine& engine, std::span<const NodeId> host_of,
                     const EvalOptions& options, const DeltaOptions& delta_options)
    : engine_(&engine),
      options_(options),
      dopt_(delta_options),
      np_(idx(engine.instance().num_tasks())),
      ns_(idx(engine.instance().num_processors())) {
  if (host_of.size() != ns_) {
    throw std::invalid_argument("begin_delta: host map has the wrong size");
  }
  for (const NodeId p : host_of) {
    if (p < 0 || idx(p) >= ns_) {
      throw std::invalid_argument("begin_delta: host map is incomplete");
    }
  }
  host_.assign(host_of.begin(), host_of.end());
  if (options_.link_contention) engine_->ensure_routing();

  dirty_bits_.assign((np_ + 63) / 64, 0);
  dirty_stamp_.assign(np_, 0);
  trial_start_.assign(np_, 0);
  trial_end_.assign(np_, 0);
  proc_dirty_stamp_.assign(ns_, 0);
  proc_free_.assign(ns_, 0);
  if (options_.link_contention) {
    link_dirty_stamp_.assign(engine_->routing_->link_count(), 0);
    link_free_.assign(engine_->routing_->link_count(), 0);
  }
  touched_.reserve(np_);
  touched_old_end_.reserve(np_);
  in_changed_.assign(ns_, 0);
  out_changed_.assign(ns_, 0);

  // Committed schedule: one full-kernel pass, then the auxiliary tables
  // (the claims replay in rebuild_committed_aux needs link_free_ sized).
  EvalWorkspace ws;
  committed_total_ = engine_->run_schedule(host_, options_, ws);
  start_.assign(ws.start.begin(), ws.start.begin() + static_cast<std::ptrdiff_t>(np_));
  end_.assign(ws.end.begin(), ws.end.begin() + static_cast<std::ptrdiff_t>(np_));
  prefix_max_end_.assign(np_ + 1, 0);
  claim_pos_offset_.assign(options_.link_contention ? np_ + 1 : 0, 0);
  rebuild_committed_aux();
}

void DeltaEval::rebuild_committed_aux() {
  const std::vector<NodeId>& topo = engine_->topo_order_;
  Weight total = 0;
  for (std::size_t i = 0; i < np_; ++i) {
    prefix_max_end_[i] = total;
    total = std::max(total, end_[idx(topo[i])]);
  }
  prefix_max_end_[np_] = total;
  committed_total_ = total;
  count_at_max_ = 0;
  for (std::size_t v = 0; v < np_; ++v) {
    if (end_[v] == total) ++count_at_max_;
  }

  if (!options_.link_contention) return;
  // Replay every message's link claims in kernel order (receivers in
  // topological order, arcs in edge-insertion order, hops along the fixed
  // route) so a clean message can later be replayed as stored (link, value)
  // pairs without redoing the max/add chain.
  claim_links_.clear();
  claim_values_.clear();
  std::fill(link_free_.begin(), link_free_.end(), Weight{0});
  const EvalEngine::PredArc* const arcs = engine_->pred_arcs_.data();
  for (std::size_t pos = 0; pos < np_; ++pos) {
    claim_pos_offset_[pos] = static_cast<std::uint32_t>(claim_links_.size());
    const NodeId v = topo[pos];
    const NodeId pv = host_[idx(engine_->cluster_of_[idx(v)])];
    const std::uint32_t lo = engine_->pred_offset_[idx(v)];
    const std::uint32_t hi = engine_->pred_offset_[idx(v) + 1];
    for (std::uint32_t a = lo; a < hi; ++a) {
      const EvalEngine::PredArc& arc = arcs[a];
      if (arc.weight <= 0) continue;
      const NodeId pp = host_[idx(arc.pred_cluster)];
      Weight arrival = end_[idx(arc.pred)];
      for (const std::int32_t li : engine_->route_links(pp, pv)) {
        const Weight depart = std::max(arrival, link_free_[static_cast<std::size_t>(li)]);
        arrival = depart + arc.weight;
        link_free_[static_cast<std::size_t>(li)] = arrival;
        claim_links_.push_back(li);
        claim_values_.push_back(arrival);
      }
    }
  }
  claim_pos_offset_[np_] = static_cast<std::uint32_t>(claim_links_.size());
}

void DeltaEval::apply_pending_hosts() {
  for (int i = 0; i < moved_count_; ++i) {
    host_[idx(moved_clusters_[i])] = moved_new_hosts_[i];
  }
}

void DeltaEval::restore_committed_hosts() {
  for (int i = 0; i < moved_count_; ++i) {
    host_[idx(moved_clusters_[i])] = moved_old_hosts_[i];
  }
}

Weight DeltaEval::try_move(NodeId cluster, NodeId processor) {
  if (cluster < 0 || idx(cluster) >= ns_ || processor < 0 || idx(processor) >= ns_) {
    throw std::invalid_argument("try_move: cluster or processor out of range");
  }
  ++stats_.trials;
  if (host_[idx(cluster)] == processor) {
    // No-op move: the committed schedule is the trial schedule.
    pending_ = Pending::kDelta;
    moved_count_ = 0;
    moved_clusters_[0] = moved_clusters_[1] = -1;
    pending_total_ = committed_total_;
    touched_.clear();
    ++epoch_;
    ++stats_.delta_trials;
    return committed_total_;
  }
  moved_count_ = 1;
  moved_clusters_[0] = cluster;
  moved_clusters_[1] = -1;
  moved_old_hosts_[0] = host_[idx(cluster)];
  moved_new_hosts_[0] = processor;
  return run_trial();
}

Weight DeltaEval::try_swap(NodeId c1, NodeId c2) {
  if (c1 < 0 || idx(c1) >= ns_ || c2 < 0 || idx(c2) >= ns_) {
    throw std::invalid_argument("try_swap: cluster out of range");
  }
  if (c1 == c2 || host_[idx(c1)] == host_[idx(c2)]) return try_move(c1, host_[idx(c1)]);
  ++stats_.trials;
  moved_count_ = 2;
  moved_clusters_[0] = c1;
  moved_clusters_[1] = c2;
  moved_old_hosts_[0] = host_[idx(c1)];
  moved_old_hosts_[1] = host_[idx(c2)];
  moved_new_hosts_[0] = moved_old_hosts_[1];
  moved_new_hosts_[1] = moved_old_hosts_[0];
  return run_trial();
}

Weight DeltaEval::run_full_trial() {
  ++stats_.full_fallbacks;
  // host_ already holds the trial hosts; the kernel writes the complete
  // trial schedule into full_ws_, which commit() can adopt wholesale.
  // run_trial() rolls back the in-place end_ writes and host_.
  pending_total_ = engine_->run_schedule(host_, options_, full_ws_);
  pending_ = Pending::kFull;
  return pending_total_;
}

std::size_t DeltaEval::seed_dirty() {
  // Per-arc seeding over the engine's precomputed per-cluster boundary-arc
  // lists: an arc's cost term changes only when the hop distance between
  // its endpoints' hosts differs between the committed and the trial
  // placement — under link contention any inter-cluster arc of a moved
  // cluster counts, since the message's *route* changes even at equal hop
  // distance. Whether a distance changed depends only on the (moved
  // cluster, other cluster, direction) triple, so those <= 2 * ns compares
  // are hoisted out of the arc loop into two masks per moved cluster; on
  // distance-regular interconnects (star, complete) most trials resolve to
  // empty masks and never touch an arc. host_ already holds the trial
  // hosts.
  const bool contention = options_.link_contention;
  const Matrix<Weight>& hops = engine_->instance_.hops();
  const EvalEngine::ClusterArc* const carcs = engine_->cluster_arcs_.data();
  const bool plain_bits = !options_.serialize_within_processor && !contention;

  std::size_t min_pos = np_;
  seed_count_ = 0;
  for (int m = 0; m < moved_count_; ++m) {
    const NodeId c = moved_clusters_[m];
    const NodeId old_pv = moved_old_hosts_[m];
    const NodeId new_pv = moved_new_hosts_[m];
    // In serialize mode the processor task-sets change at every member's
    // position, so the scan must anchor no later than the first member
    // even when no arc cost changes.
    if (options_.serialize_within_processor) {
      min_pos = std::min(min_pos,
                         static_cast<std::size_t>(engine_->cluster_min_pos_[idx(c)]));
    }

    const std::uint32_t lo = engine_->cluster_arc_offset_[idx(c)];
    const std::uint32_t hi = engine_->cluster_arc_offset_[idx(c) + 1];
    bool any_changed = hi > lo;  // contention: any boundary arc reroutes
    if (!contention) {
      any_changed = false;
      for (NodeId oc = 0; oc < node_id(ns_); ++oc) {
        const NodeId o_old = committed_host_during_trial(oc);
        const NodeId o_new = host_[idx(oc)];
        const bool in_ch = hops(idx(o_old), idx(old_pv)) != hops(idx(o_new), idx(new_pv));
        const bool out_ch = hops(idx(old_pv), idx(o_old)) != hops(idx(new_pv), idx(o_new));
        in_changed_[idx(oc)] = in_ch;
        out_changed_[idx(oc)] = out_ch;
        any_changed |= in_ch | out_ch;
      }
    }
    if (!any_changed) continue;
    if (conservative_) {
      // Adaptive guard: this instance's moves have been cascading into
      // full-kernel fallbacks, so don't bother seeding — any distance
      // change goes straight to the full kernel (zero-dirt trials above
      // still short-circuit for free).
      seed_count_ = np_;
      return 0;
    }
    for (std::uint32_t a = lo; a < hi; ++a) {
      const EvalEngine::ClusterArc& arc = carcs[a];
      if (!contention &&
          !(arc.incoming ? in_changed_[idx(arc.other_cluster)]
                         : out_changed_[idx(arc.other_cluster)])) {
        continue;
      }
      const std::size_t pos = arc.head_pos;
      if (plain_bits) {
        const std::uint64_t bit = std::uint64_t{1} << (pos & 63);
        std::uint64_t& word = dirty_bits_[pos >> 6];
        seed_count_ += (word & bit) == 0;
        word |= bit;
      } else {
        seed_count_ += dirty_stamp_[idx(arc.head)] != epoch_;
        dirty_stamp_[idx(arc.head)] = epoch_;
      }
      min_pos = std::min(min_pos, pos);
    }
  }
  return min_pos;
}

Weight DeltaEval::run_trial() {
  pending_ = Pending::kNone;  // discard any previous (uncommitted) trial
  apply_pending_hosts();      // host_ holds the trial hosts until try_* returns
  ++epoch_;
  touched_.clear();
  touched_old_end_.clear();
  // Self-correcting economics: when most structure-changing trials have
  // been cascading into full-kernel fallbacks anyway, stop paying for the
  // aborted partial scans and reschedule only the provably-unaffected
  // (zero-dirt) trials incrementally. Zero-dirt trials keep the ratio
  // honest, so distance-regular instances never flip into this mode; the
  // flag is sticky so a ratio hovering at the boundary cannot flap between
  // the cheap and the aborting regime.
  if (!conservative_) {
    conservative_ = dopt_.fallback_fraction < 1.0 && stats_.trials >= 64 &&
                    stats_.full_fallbacks * 5 > stats_.trials * 2;
  }
  const std::size_t anchor = seed_dirty();
  if (anchor == np_) {
    // No arc changed cost and no shared-resource anchor: the committed
    // schedule is the trial schedule (e.g. an isolated or empty cluster
    // moved, or a swap whose hop distances all match).
    pending_ = Pending::kDelta;
    pending_total_ = committed_total_;
    ++stats_.delta_trials;
    restore_committed_hosts();
    return committed_total_;
  }
  const bool plain = !options_.serialize_within_processor && !options_.link_contention;
  const auto threshold =
      static_cast<std::size_t>(dopt_.fallback_fraction * static_cast<double>(np_));
  // Scan economics: under contention a clean suffix position still replays
  // its link claims (about the price of the kernel's own route walk), and
  // under serialization it replays its proc_free contribution, so when the
  // projected suffix work rivals a full pass the full kernel wins outright.
  const double clean_cost = options_.link_contention ? 1.0 : 0.35;
  const bool scan_uneconomic =
      !plain && dopt_.fallback_fraction < 1.0 &&
      clean_cost * static_cast<double>(np_ - anchor) + static_cast<double>(seed_count_) >=
          static_cast<double>(np_);
  if (seed_count_ > threshold || scan_uneconomic) {
    // The seeds alone already exceed the reschedule budget: go straight to
    // the full kernel instead of burning a partial scan first.
    if (plain) std::fill(dirty_bits_.begin(), dirty_bits_.end(), std::uint64_t{0});
    (void)run_full_trial();
    restore_committed_hosts();
    return pending_total_;
  }
  scan_anchor_ = anchor;
  const Weight total = plain ? run_trial_plain() : run_trial_scan();
  // Roll back the in-place end_ writes (trial values survive in
  // trial_start_/trial_end_ for commit) and the trial hosts.
  for (std::size_t i = 0; i < touched_.size(); ++i) {
    end_[idx(touched_[i])] = touched_old_end_[i];
  }
  restore_committed_hosts();
  if (pending_ == Pending::kFull) return pending_total_;  // fell back mid-trial
  ++stats_.delta_trials;
  stats_.tasks_rescheduled += static_cast<std::int64_t>(touched_.size());
  pending_ = Pending::kDelta;
  pending_total_ = total;
  return total;
}

Weight DeltaEval::run_trial_plain() {
  // Sparse worklist: dirty topological positions live in dirty_bits_;
  // popping the lowest set bit processes tasks in topological order, and
  // successor marks always land at higher positions, so one forward pass
  // over the words drains the frontier. Clean tasks are never visited.
  const std::vector<NodeId>& topo = engine_->topo_order_;
  const std::uint32_t* const topo_pos = engine_->topo_pos_.data();
  const EvalEngine::PredArc* const arcs = engine_->pred_arcs_.data();
  const EvalEngine::SuccArc* const succ_arcs = engine_->succ_arcs_.data();
  const std::uint32_t* const pred_offset = engine_->pred_offset_.data();
  const std::uint32_t* const succ_offset = engine_->succ_offset_.data();
  const NodeId* const cluster_of = engine_->cluster_of_.data();
  const Weight* const node_weight = engine_->node_weight_.data();
  const NodeId* const host = host_.data();
  Weight* const end = end_.data();
  const Matrix<Weight>& hops = engine_->instance_.hops();

  const auto threshold =
      static_cast<std::size_t>(dopt_.fallback_fraction * static_cast<double>(np_));
  std::size_t rescheduled = 0;
  std::size_t removed_at_max = 0;
  Weight touched_max = 0;

  const std::size_t words = dirty_bits_.size();
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits;
    while ((bits = dirty_bits_[w]) != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(bits));
      dirty_bits_[w] = bits & (bits - 1);
      const std::size_t pos = (w << 6) | b;
      const NodeId v = topo[pos];

      if (++rescheduled > threshold) {
        // Too much of the graph went dirty: clear the remaining marks so
        // the bitmask stays self-cleaning, then run the full kernel.
        for (std::size_t ww = w; ww < words; ++ww) dirty_bits_[ww] = 0;
        stats_.positions_scanned += static_cast<std::int64_t>(rescheduled);
        return run_full_trial();
      }

      Weight st = 0;
      const NodeId pv = host[idx(cluster_of[idx(v)])];
      const std::uint32_t lo = pred_offset[idx(v)];
      const std::uint32_t hi = pred_offset[idx(v) + 1];
      for (std::uint32_t a = lo; a < hi; ++a) {
        const EvalEngine::PredArc& arc = arcs[a];
        Weight arrival = end[idx(arc.pred)];  // trial value if pred recomputed
        if (arc.weight > 0) {
          arrival += arc.weight * hops(idx(host[idx(arc.pred_cluster)]), idx(pv));
        }
        st = std::max(st, arrival);
      }
      const Weight en = st + node_weight[idx(v)];
      const Weight old_end = end[idx(v)];
      trial_start_[idx(v)] = st;
      trial_end_[idx(v)] = en;
      end[idx(v)] = en;
      touched_.push_back(v);
      touched_old_end_.push_back(old_end);
      touched_max = std::max(touched_max, en);
      if (en != old_end) {
        if (old_end == committed_total_) ++removed_at_max;
        const std::uint32_t slo = succ_offset[idx(v)];
        const std::uint32_t shi = succ_offset[idx(v) + 1];
        for (std::uint32_t s = slo; s < shi; ++s) {
          const std::size_t sp = topo_pos[idx(succ_arcs[s].succ)];
          dirty_bits_[sp >> 6] |= std::uint64_t{1} << (sp & 63);
        }
      }
    }
  }
  stats_.positions_scanned += static_cast<std::int64_t>(rescheduled);

  // Makespan: every untouched task keeps its committed end, so as long as
  // one committed makespan holder went untouched the old total still
  // stands on the untouched side; otherwise re-derive the max over end_,
  // which at this point holds trial values for touched tasks and committed
  // values everywhere else.
  if (removed_at_max < count_at_max_) return std::max(committed_total_, touched_max);
  Weight m = touched_max;
  for (std::size_t v = 0; v < np_; ++v) m = std::max(m, end[v]);
  return m;
}

Weight DeltaEval::run_trial_scan() {
  const bool serialize = options_.serialize_within_processor;
  const bool contention = options_.link_contention;
  const std::vector<NodeId>& topo = engine_->topo_order_;
  const EvalEngine::PredArc* const arcs = engine_->pred_arcs_.data();
  const EvalEngine::SuccArc* const succ_arcs = engine_->succ_arcs_.data();
  const std::uint32_t* const pred_offset = engine_->pred_offset_.data();
  const std::uint32_t* const succ_offset = engine_->succ_offset_.data();
  const NodeId* const cluster_of = engine_->cluster_of_.data();
  const Weight* const node_weight = engine_->node_weight_.data();
  const Matrix<Weight>& hops = engine_->instance_.hops();

  // The scan anchor set by run_trial(): the earliest seeded position, or
  // (serialize) the earliest member of a moved cluster — nothing before it
  // can change in any mode.
  const std::size_t min_pos = scan_anchor_;

  // Mode widening seeds: both the vacated and the newly occupied processor
  // of each moved cluster carry changed task sets from min_pos onward.
  if (serialize) {
    for (int m = 0; m < moved_count_; ++m) {
      proc_dirty_stamp_[idx(moved_old_hosts_[m])] = epoch_;
      proc_dirty_stamp_[idx(moved_new_hosts_[m])] = epoch_;
    }
    // Running proc_free state at min_pos: the prefix is untouched (no
    // moved-cluster task precedes min_pos), so replay committed end times.
    std::fill(proc_free_.begin(), proc_free_.end(), Weight{0});
    for (std::size_t pos = 0; pos < min_pos; ++pos) {
      const NodeId v = topo[pos];
      Weight& free = proc_free_[idx(host_[idx(cluster_of[idx(v)])])];
      free = std::max(free, end_[idx(v)]);
    }
  }
  if (contention) {
    // Running link_free state at min_pos: replay the stored prefix claims.
    std::fill(link_free_.begin(), link_free_.end(), Weight{0});
    const std::uint32_t prefix_claims = claim_pos_offset_[min_pos];
    for (std::uint32_t k = 0; k < prefix_claims; ++k) {
      link_free_[static_cast<std::size_t>(claim_links_[k])] = claim_values_[k];
    }
  }

  const auto threshold =
      static_cast<std::size_t>(dopt_.fallback_fraction * static_cast<double>(np_));
  std::size_t rescheduled = 0;
  std::size_t scanned = 0;
  Weight total = prefix_max_end_[min_pos];

  for (std::size_t pos = min_pos; pos < np_; ++pos) {
    ++scanned;
    const NodeId v = topo[pos];
    const NodeId pv = host_[idx(cluster_of[idx(v)])];
    const std::uint32_t clo = contention ? claim_pos_offset_[pos] : 0;
    const std::uint32_t chi = contention ? claim_pos_offset_[pos + 1] : 0;

    bool recompute = dirty_stamp_[idx(v)] == epoch_;
    if (!recompute && serialize && proc_dirty_stamp_[idx(pv)] == epoch_) recompute = true;
    if (!recompute && contention) {
      for (std::uint32_t k = clo; k < chi; ++k) {
        if (link_dirty_stamp_[static_cast<std::size_t>(claim_links_[k])] == epoch_) {
          recompute = true;
          break;
        }
      }
    }

    if (!recompute) {
      // Clean: the committed values stand; replay their shared-resource
      // contributions so later dirty tasks see the right running state.
      if (serialize) {
        Weight& free = proc_free_[idx(pv)];
        free = std::max(free, end_[idx(v)]);
      }
      for (std::uint32_t k = clo; k < chi; ++k) {
        link_free_[static_cast<std::size_t>(claim_links_[k])] = claim_values_[k];
      }
      total = std::max(total, end_[idx(v)]);
      continue;
    }

    if (++rescheduled > threshold) {
      stats_.positions_scanned += static_cast<std::int64_t>(scanned);
      return run_full_trial();
    }

    // Recompute v with the exact full-kernel arithmetic.
    Weight st = 0;
    std::uint32_t cursor = clo;  // cursor through v's committed claims
    const std::uint32_t lo = pred_offset[idx(v)];
    const std::uint32_t hi = pred_offset[idx(v) + 1];
    for (std::uint32_t a = lo; a < hi; ++a) {
      const EvalEngine::PredArc& arc = arcs[a];
      Weight arrival = end_[idx(arc.pred)];  // trial value if pred recomputed
      if (arc.weight > 0) {
        const NodeId pp = host_[idx(arc.pred_cluster)];
        if (contention) {
          const bool route_changed =
              cluster_moved(arc.pred_cluster) || cluster_moved(cluster_of[idx(v)]);
          if (!route_changed) {
            // Same route as committed: claims align 1:1 — a claim that
            // lands on a different busy-until time dirties its link.
            for (const std::int32_t li0 : engine_->route_links(pp, pv)) {
              const auto li = static_cast<std::size_t>(li0);
              const Weight depart = std::max(arrival, link_free_[li]);
              arrival = depart + arc.weight;
              link_free_[li] = arrival;
              if (arrival != claim_values_[cursor]) link_dirty_stamp_[li] = epoch_;
              ++cursor;
            }
          } else {
            // Route changed: the committed claims evaporate from their
            // links and new claims land on the trial route — both link
            // sets diverge.
            const NodeId old_pp = committed_host_during_trial(arc.pred_cluster);
            const NodeId old_pv = committed_host_during_trial(cluster_of[idx(v)]);
            const auto old_len =
                static_cast<std::uint32_t>(engine_->route_links(old_pp, old_pv).size());
            for (std::uint32_t k = 0; k < old_len; ++k) {
              link_dirty_stamp_[static_cast<std::size_t>(claim_links_[cursor + k])] = epoch_;
            }
            cursor += old_len;
            for (const std::int32_t li0 : engine_->route_links(pp, pv)) {
              const auto li = static_cast<std::size_t>(li0);
              const Weight depart = std::max(arrival, link_free_[li]);
              arrival = depart + arc.weight;
              link_free_[li] = arrival;
              link_dirty_stamp_[li] = epoch_;
            }
          }
        } else {
          arrival += arc.weight * hops(idx(pp), idx(pv));
        }
      }
      st = std::max(st, arrival);
    }
    if (serialize) st = std::max(st, proc_free_[idx(pv)]);
    const Weight en = st + node_weight[idx(v)];
    const Weight old_end = end_[idx(v)];
    trial_start_[idx(v)] = st;
    trial_end_[idx(v)] = en;
    end_[idx(v)] = en;
    touched_.push_back(v);
    touched_old_end_.push_back(old_end);
    if (serialize) proc_free_[idx(pv)] = en;

    if (en != old_end) {
      // End time moved: successors must re-derive their starts, and (in
      // serialize mode) so must every later task on this processor.
      const std::uint32_t slo = succ_offset[idx(v)];
      const std::uint32_t shi = succ_offset[idx(v) + 1];
      for (std::uint32_t s = slo; s < shi; ++s) {
        dirty_stamp_[idx(succ_arcs[s].succ)] = epoch_;
      }
      if (serialize) proc_dirty_stamp_[idx(pv)] = epoch_;
    }
    total = std::max(total, en);
  }

  stats_.positions_scanned += static_cast<std::int64_t>(scanned);
  return total;
}

void DeltaEval::commit() {
  if (pending_ == Pending::kNone) {
    throw std::logic_error("DeltaEval::commit: no pending trial");
  }
  ++stats_.commits;
  apply_pending_hosts();
  if (pending_ == Pending::kFull) {
    std::copy_n(full_ws_.start.begin(), np_, start_.begin());
    std::copy_n(full_ws_.end.begin(), np_, end_.begin());
  } else {
    for (const NodeId v : touched_) {
      start_[idx(v)] = trial_start_[idx(v)];
      end_[idx(v)] = trial_end_[idx(v)];
    }
  }
  rebuild_committed_aux();
  committed_total_ = pending_total_;
  pending_ = Pending::kNone;
  moved_count_ = 0;
}

}  // namespace mimdmap
