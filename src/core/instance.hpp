// MappingInstance: one complete mapping problem.
//
// Bundles the paper's inputs — problem graph Gp, clustering (defining the
// clustered problem graph Gc and abstract graph Ga), and system graph Gs —
// together with the derived tables the algorithms consume: the ns x ns
// distance matrix shortest[ns][ns] (Fig. 21-b) eagerly, and the paper's
// dense clus_edge[np][np] (Fig. 19-a) lazily — hot paths derive clustered
// weights from the adjacency lists, so np-scale memory stays O(V + E).
//
// Construction validates the paper's structural preconditions:
//  * the problem graph is a DAG with positive weights,
//  * the clustering covers exactly the problem's tasks,
//  * na == ns ("the second step only deals with graphs having the same
//    number of nodes", section 1),
//  * the system graph is connected.
#pragma once

#include <memory>
#include <mutex>

#include "cluster/abstract_graph.hpp"
#include "cluster/clustering.hpp"
#include "graph/matrix.hpp"
#include "graph/system_graph.hpp"
#include "graph/task_graph.hpp"
#include "graph/topology_cache.hpp"

namespace mimdmap {

class MappingInstance {
 public:
  MappingInstance(TaskGraph problem, Clustering clustering, SystemGraph system,
                  DistanceModel distance_model = DistanceModel::kHops);

  /// As above against pre-built shared topology tables (TopologyCache):
  /// the instance reads its distance matrix from the tables instead of
  /// recomputing it, and engines built on the instance adopt the shared
  /// routing. The tables must have been built from a system graph
  /// structurally identical to `system` (same node count, links and
  /// weights — TopologyCache keys guarantee this).
  MappingInstance(TaskGraph problem, Clustering clustering, SystemGraph system,
                  std::shared_ptr<const TopologyTables> tables);

  [[nodiscard]] const TaskGraph& problem() const noexcept { return problem_; }
  [[nodiscard]] const Clustering& clustering() const noexcept { return clustering_; }
  [[nodiscard]] const SystemGraph& system() const noexcept { return system_; }
  [[nodiscard]] const AbstractGraph& abstract() const noexcept { return abstract_; }

  /// Clustered-problem-graph edge matrix (paper's clus_edge). Dense
  /// np x np, built lazily on first call (thread-safe) — every hot path
  /// reads clustered weights straight off the problem adjacency lists
  /// (clustered weight = 0 intra-cluster, edge weight otherwise), so huge
  /// instances never materialize the np^2 cells. The matrix remains for
  /// the paper-faithful oracles and small-instance diagnostics.
  [[nodiscard]] const Matrix<Weight>& clus_edge() const;

  /// All-pairs distances in the system graph (paper's shortest matrix).
  /// Hop counts under DistanceModel::kHops, weighted path costs under
  /// kWeightedLinks.
  [[nodiscard]] const Matrix<Weight>& hops() const noexcept {
    return tables_ ? tables_->hops : hops_;
  }

  [[nodiscard]] DistanceModel distance_model() const noexcept { return distance_model_; }

  /// The shared topology tables this instance was built against, or null
  /// when it computed its own matrices. Engines adopt the shared routing
  /// from here (EvalEngine::adopt_topology).
  [[nodiscard]] const std::shared_ptr<const TopologyTables>& shared_tables() const noexcept {
    return tables_;
  }

  [[nodiscard]] NodeId num_tasks() const noexcept { return problem_.node_count(); }
  [[nodiscard]] NodeId num_processors() const noexcept { return system_.node_count(); }

  /// Clustered communication weight between two tasks (0 when they share a
  /// cluster or are not connected). O(out-degree of `from`); search loops
  /// should resolve weights from adjacency iteration instead.
  [[nodiscard]] Weight clustered_weight(NodeId from, NodeId to) const {
    return clustering_.same_cluster(from, to) ? 0 : problem_.edge_weight(from, to);
  }

  /// Process-wide count of currently-alive MappingInstance objects, and
  /// its high-water mark since the last reset. The derived matrices make
  /// instances the dominant memory of a batch, so these let tests pin the
  /// peak footprint of deferred-build batches (MapJob::build) to the
  /// runner concurrency instead of the batch size.
  [[nodiscard]] static int live_count() noexcept;
  [[nodiscard]] static int peak_live_count() noexcept;
  /// Resets the high-water mark to the current live count.
  static void reset_peak_live_count() noexcept;

 private:
  /// Shared construction tail: validation + derived matrices (the distance
  /// matrix only when no shared tables were given).
  void init_derived();

  /// Bumps the live/peak counters across every construction path.
  struct LiveCounter {
    LiveCounter() noexcept;
    LiveCounter(const LiveCounter&) noexcept;
    LiveCounter(LiveCounter&&) noexcept;
    LiveCounter& operator=(const LiveCounter&) noexcept = default;
    LiveCounter& operator=(LiveCounter&&) noexcept = default;
    ~LiveCounter();
  };
  LiveCounter live_counter_;
  TaskGraph problem_;
  Clustering clustering_;
  SystemGraph system_;
  AbstractGraph abstract_;
  // Lazy clus_edge storage. The mutex lives behind a shared_ptr so the
  // instance stays copyable/movable; copies share the lock but carry their
  // own (possibly already-built) matrix.
  mutable std::shared_ptr<std::mutex> clus_edge_mutex_ = std::make_shared<std::mutex>();
  mutable bool clus_edge_built_ = false;
  mutable Matrix<Weight> clus_edge_;
  Matrix<Weight> hops_;  // unused when tables_ provides the matrix
  std::shared_ptr<const TopologyTables> tables_;
  DistanceModel distance_model_ = DistanceModel::kHops;
};

}  // namespace mimdmap
