// Wire protocol of the mapping daemon (`mimdmap_cli serve`): newline-framed
// key=value request and response frames over a byte stream (Unix-domain
// socket or a stdin/stdout pipe).
//
// The request grammar deliberately reuses the fuzzed batch-manifest
// tokenizer (cli/manifest.hpp: whitespace-separated key=value tokens, bare
// key means "1") — one grammar, one fuzz target, one set of structural
// checks. On top of it this layer adds:
//
//  * FrameReader — incremental line extraction with a hard per-line byte
//    cap. An oversized line is reported as ONE overflow record and the
//    reader resyncs at the next '\n', so a hostile client costs bounded
//    memory and exactly one `invalid_input` answer, never a stalled or
//    crashed server. Embedded NUL bytes poison the line (reported via
//    Line::reject) instead of silently truncating downstream C-string
//    handling. A trailing un-terminated partial line at EOF is flagged
//    truncated — a dropped connection mid-frame must not execute half a
//    request.
//  * parse_request — tokenized line -> validated WireRequest (op dispatch,
//    known-key check, submit structural rules mirroring the manifest, all
//    numeric fields range-checked). Throws std::invalid_argument with a
//    human-readable reason; the server turns that into an `event=error`
//    frame and keeps serving.
//  * response frame builders — the server's only output surface, so the
//    exactly-one-terminal-frame invariant is auditable in one place.
//    Free-text fields (error messages, names) are percent-escaped: frames
//    stay one-line whitespace-separated key=value, always reparsable.
//
// Frames (see DESIGN.md section 16 for the full grammar):
//   client -> server: op=submit|cancel|stats|ping|drain + keys
//   server -> client: event=accepted|result|overloaded|error|stats|pong|
//                     draining|bye + keys
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mimdmap::serve {

/// Percent-escapes whitespace, '%', '=', and control bytes so any string
/// can travel as one key=value token. unescape() inverts it (lenient:
/// malformed escapes pass through verbatim — responses are for humans and
/// dashboards, not another security boundary).
[[nodiscard]] std::string escape(const std::string& text);
[[nodiscard]] std::string unescape(const std::string& text);

/// Incremental newline framing with a per-line byte cap.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_line_bytes = 64 * 1024);

  struct Line {
    std::string text;
    /// Line exceeded max_line_bytes; text holds a truncated prefix for
    /// diagnostics. The reader has already resynced to the next '\n'.
    bool overflow = false;
    /// Line contained a NUL byte (text preserved verbatim otherwise).
    bool reject = false;
    /// EOF arrived mid-line (finish() only): a truncated frame.
    bool truncated = false;

    [[nodiscard]] bool ok() const noexcept { return !overflow && !reject && !truncated; }
  };

  /// Feeds a chunk; returns every line completed by it ('\n' stripped,
  /// one trailing '\r' stripped — CRLF tolerated).
  [[nodiscard]] std::vector<Line> feed(const char* data, std::size_t size);

  /// Flushes the trailing partial line at EOF, if any (flagged truncated;
  /// empty partials yield nullopt).
  [[nodiscard]] std::optional<Line> finish();

  [[nodiscard]] std::size_t max_line_bytes() const noexcept { return max_line_bytes_; }

 private:
  std::size_t max_line_bytes_;
  std::string partial_;
  bool partial_overflow_ = false;
  bool partial_nul_ = false;
};

enum class RequestOp : std::uint8_t { kSubmit, kCancel, kStats, kMetrics, kPing, kDrain };

[[nodiscard]] const char* to_string(RequestOp op) noexcept;

/// One parsed and structurally validated request frame.
struct WireRequest {
  RequestOp op = RequestOp::kPing;
  /// Client-chosen job tag (echoed on every frame about this job). Empty
  /// for ops that do not target a job; the server assigns one for submits
  /// that omit it.
  std::string id;
  /// Submit payload: the manifest-grammar keys plus the serve extensions,
  /// validated but unresolved (file IO and graph building happen on the
  /// runner, where failures degrade to per-job statuses).
  std::map<std::string, std::string> kv;
  /// Parsed serve-extension fields (defaults when absent).
  int priority = 0;               // lower runs first; negatives allowed
  std::uint64_t size_hint = 0;    // estimated task count; 0 = unknown
  std::int64_t deadline_ms = 0;   // 0 = server default, < 0 = explicitly none
  /// drain only: finish in-flight work (true) or cancel it (false).
  bool drain_finish = true;
};

/// Tokenizes one frame line with the manifest grammar and validates it.
/// Throws std::invalid_argument on: unknown op, unknown key, missing or
/// conflicting submit keys (problem=/gen= + spec=/system=, clustering vs
/// strategy/seed), malformed numerics, NUL bytes, empty line.
[[nodiscard]] WireRequest parse_request(const std::string& line);

/// Submit-request workload: either problem=<path> (server-side file, as in
/// the batch manifest) or gen=<kind> with gen-a=/gen-b=/gen-seed= —
/// diamond (a x b), layered (a tasks, b layers), fork-join (a wide, b
/// stages), pipeline (length a). Returns the estimated task count of a
/// gen= spec (its size_hint default), 0 for file-backed problems.
[[nodiscard]] std::uint64_t gen_size_estimate(const std::map<std::string, std::string>& kv);

/// FNV-1a 64-bit over `text` — the hash under fingerprints and the
/// deterministic jitters below. Exposed for tests.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& text) noexcept;

/// Canonical request fingerprint: a 16-hex-digit digest over the sorted
/// mapping-relevant submit keys (problem source + engine options + seed).
/// Delivery-only keys — op, id, name, priority, size-hint, deadline-ms —
/// are excluded: two submits that differ only in those produce the same
/// ok mapping, so they share a fingerprint (and a cache slot). For the
/// file-backed keys (problem=/system=/clustering=) the file CONTENT is
/// hashed when readable (same bytes at a different path still hit; a
/// rewritten file misses), the path literal otherwise. Client and server
/// compute the identical value from the same kv map, which is what makes
/// resubmission after a disconnect idempotent.
[[nodiscard]] std::string request_fingerprint(
    const std::map<std::string, std::string>& kv);

/// Deterministic per-client spreading of a retry-ms hint: scales `hint_ms`
/// into [75%, 125%] by a hash of `client_id`, clamped to [min_ms, max_ms].
/// Synchronized clients shed in the same overload event get distinct
/// backoffs and do not re-stampede in lockstep; the same client always
/// gets the same spread for the same hint (testable, reproducible).
[[nodiscard]] std::int64_t jittered_retry_ms(std::int64_t hint_ms,
                                             std::uint64_t client_id,
                                             std::int64_t min_ms,
                                             std::int64_t max_ms) noexcept;

/// Client-side retry schedule for submits answered with `event=overloaded`
/// (or lost to a disconnect): capped exponential backoff that honors the
/// server's retry-ms hint, plus deterministic jitter from `seed` so a
/// fleet of clients with distinct seeds spreads out while each individual
/// schedule is reproducible. Resubmission is safe because requests are
/// idempotent by fingerprint — a journaled/cached server answers a repeat
/// with the cached terminal result instead of re-running the mapper.
struct RetryPolicy {
  int max_attempts = 5;        // total tries, including the first
  std::int64_t base_ms = 50;   // backoff before the first retry
  std::int64_t cap_ms = 5000;  // exponential ceiling
  std::uint64_t seed = 0;      // jitter stream; same seed = same schedule

  /// Backoff before retry number `attempt` (1-based), given the server's
  /// hint (<= 0 = none). max(hint, base * 2^(attempt-1) capped), then
  /// jittered into [75%, 125%]; always >= 1.
  [[nodiscard]] std::int64_t delay_ms(int attempt, std::int64_t server_hint_ms) const noexcept;
};

// -- Response frames ------------------------------------------------------
// Every builder returns one complete '\n'-terminated frame.

/// `fingerprint` is appended only when non-empty (the server sets it when
/// durability — journal or cache — is enabled), so plain daemons emit
/// byte-identical frames to previous releases.
[[nodiscard]] std::string accepted_frame(const std::string& id, std::uint64_t seq,
                                         std::size_t queue_depth,
                                         const std::string& fingerprint = {});
/// THE terminal frame: exactly one per accepted job.
struct ResultFrame {
  std::string id;
  std::string status;  // to_string(MapStatus)
  std::int64_t total = 0;
  std::int64_t lower_bound = 0;
  std::int64_t pct = 0;
  std::int64_t trials = 0;
  double wall_ms = 0.0;
  double queue_ms = 0.0;
  int lanes = 0;
  std::string error;  // escaped on emit; empty = omitted
  /// Durability keys, all omitted when unset (frames unchanged for
  /// servers without a journal or cache):
  std::string fingerprint;  // canonical request fingerprint
  bool cached = false;      // served from the result cache, pool untouched
  bool replayed = false;    // re-executed from the journal after a crash
};
[[nodiscard]] std::string result_frame(const ResultFrame& frame);
/// Load-shed answer: retryable, with an advisory client backoff.
/// retry_ms < 0 means "do not retry here" (the server is draining).
[[nodiscard]] std::string overloaded_frame(const std::string& id, std::int64_t retry_ms);
/// Protocol-level reject (parse/validation failure, unknown cancel id...).
/// Not terminal for any accepted job — the offending frame never became one.
[[nodiscard]] std::string error_frame(const std::string& id, const std::string& reason);
[[nodiscard]] std::string pong_frame();
/// Observability snapshot (`op=stats` answer): event=stats followed by the
/// given fields in order. Values are escaped.
[[nodiscard]] std::string stats_frame(
    const std::vector<std::pair<std::string, std::string>>& fields);
/// Full registry exposition (`op=metrics` answer): one frame whose data=
/// value is the percent-escaped multi-line Prometheus text — clients
/// unescape() it back into `name{label=...} value` lines.
[[nodiscard]] std::string metrics_frame(const std::string& exposition);
[[nodiscard]] std::string draining_frame();
[[nodiscard]] std::string bye_frame(std::uint64_t accepted, std::uint64_t terminal_frames);

/// Parses a response frame into its key=value map (event= included).
/// Throws std::invalid_argument on grammar violations — clients (the load
/// generator, tests) use this, the server never parses its own output.
[[nodiscard]] std::map<std::string, std::string> parse_response(const std::string& line);

}  // namespace mimdmap::serve
