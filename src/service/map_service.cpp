#include "service/map_service.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/eval_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/fault_injection.hpp"

namespace mimdmap {

namespace {

/// Registry instruments for the scheduler, resolved once. Gauges use
/// add() so concurrent services (tests spin up several) stay additive.
struct ServiceMetrics {
  obs::Counter& submitted =
      obs::registry().counter("mimdmap_service_jobs_submitted_total");
  obs::Counter& completed =
      obs::registry().counter("mimdmap_service_jobs_completed_total");
  obs::Counter& shed = obs::registry().counter("mimdmap_service_jobs_shed_total");
  obs::Counter& cancelled_queued =
      obs::registry().counter("mimdmap_service_jobs_cancelled_queued_total");
  obs::Gauge& queue_depth = obs::registry().gauge("mimdmap_service_queue_depth");
  obs::Gauge& active = obs::registry().gauge("mimdmap_service_active_jobs");
  obs::Histogram& queue_wait =
      obs::registry().histogram("mimdmap_service_queue_wait_us");
  obs::Histogram& wall = obs::registry().histogram("mimdmap_service_job_wall_us");
  /// Windowed completion rate: the batch progress line (and any metrics
  /// consumer) reads jobs/sec live instead of diffing counter snapshots.
  obs::Rate& jobs_per_sec = obs::registry().rate("mimdmap_service_jobs_per_sec");
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics metrics;
  return metrics;
}

/// Fold the per-search delta-engine counters of a delivered report into
/// process-wide totals (the per-report DeltaStats stays on the report).
void fold_delta_stats(const MappingReport& report) {
  static obs::Counter& trials =
      obs::registry().counter("mimdmap_delta_trials_total");
  static obs::Counter& commits =
      obs::registry().counter("mimdmap_delta_commits_total");
  static obs::Counter& fallbacks =
      obs::registry().counter("mimdmap_delta_full_fallbacks_total");
  if (report.delta.trials > 0) trials.add(static_cast<std::uint64_t>(report.delta.trials));
  if (report.delta.commits > 0) commits.add(static_cast<std::uint64_t>(report.delta.commits));
  if (report.delta.full_fallbacks > 0) {
    fallbacks.add(static_cast<std::uint64_t>(report.delta.full_fallbacks));
  }
}

}  // namespace

MapJobResult run_map_job(const MapJob& job, const std::shared_ptr<ThreadPool>& pool,
                         int lanes, TopologyCache* topo_cache) {
  if (job.instance == nullptr && !job.build) {
    throw std::invalid_argument("run_map_job: job has neither an instance nor a builder");
  }
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();

  MapperOptions options = job.options;
  if (job.seed != 0) options.refine.seed = job.seed;
  // lanes > 0 is a service sharding decision and overrides the job's own
  // inner thread count; lanes == 0 (direct sequential callers) leaves the
  // job's RefineOptions::num_threads in charge.
  if (lanes > 0) options.refine.num_threads = lanes;

  // Effective cancellation channel: the job's own token, with a local
  // deadline chained on top when the job carries one. The service consumes
  // deadline_ms at admission (queue wait counts against the budget) and
  // hands the job over with deadline_ms < 0; a direct sequential caller's
  // deadline starts here instead.
  CancelToken cancel = job.cancel;
  std::optional<CancelSource> deadline_source;
  if (job.deadline_ms > 0) {
    deadline_source.emplace(cancel);
    deadline_source->set_deadline_after_ms(job.deadline_ms);
    cancel = deadline_source->token();
  }
  options.refine.cancel = cancel;

  MapJobResult result;
  result.name = job.name;

  // A signal that lands before execution starts (a cancelled or expired
  // queued job) skips the job entirely: there is no incumbent to degrade
  // to, so the report stays empty and only the status carries information.
  if (cancel.signalled()) {
    result.status = cancel.status();
    result.report.status = result.status;
    result.wall_ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    return result;
  }

  fault_sleep_runner();

  obs::Span job_span("job", "job");

  // Deferred jobs materialize here and release at function exit — before
  // the result reaches the caller — so the alive-instance footprint of a
  // batch is one per busy runner.
  std::optional<MappingInstance> owned;
  const MappingInstance* instance = job.instance;
  if (instance == nullptr) {
    const obs::Span build_span("build", "job");
    const auto b0 = clock::now();
    fault_point_build();
    owned.emplace(job.build());
    instance = &*owned;
    result.stages.build_ms =
        std::chrono::duration<double, std::milli>(clock::now() - b0).count();
  }
  job_span.set_arg("np", static_cast<std::int64_t>(instance->num_tasks()));

  // Topology-table sharing: instances already carrying shared tables (a
  // cache-aware submitter, e.g. the CLI batch manifest) are adopted by the
  // engine automatically and share everything including the distance
  // matrix; otherwise the service cache supplies tables keyed by the
  // machine's structure, so only the first job per topology builds the
  // routing tables the engine adopts (the instance computed its own
  // distance matrix before reaching this point — that part is only
  // amortized by cache-aware construction).
  bool cache_hit = false;
  std::shared_ptr<const TopologyTables> tables = instance->shared_tables();
  if (topo_cache != nullptr && tables == nullptr) {
    const auto c0 = clock::now();
    tables = topo_cache->acquire(instance->system(), instance->distance_model(), &cache_hit);
    result.stages.topo_ms =
        std::chrono::duration<double, std::milli>(clock::now() - c0).count();
  }

  const EvalEngine engine(*instance, pool);
  if (tables) engine.adopt_topology(tables);
  result.topology_cache_hit = cache_hit;
  result.system_name = instance->system().name();
  result.np = instance->num_tasks();
  result.ns = instance->num_processors();
  fault_point_mapper();
  {
    const obs::Span map_span("mapper", "job");
    const auto m0 = clock::now();
    result.report = map_instance(engine, options);
    result.stages.map_ms =
        std::chrono::duration<double, std::milli>(clock::now() - m0).count();
  }
  fold_delta_stats(result.report);
  result.status = result.report.status;
  // Resolved width, not the request: with lanes == 0 the job's own setting
  // ran, which may itself have been 0 ("auto"); the resolution is cached
  // by now, so this is a lookup.
  result.lanes = lanes > 0
                     ? lanes
                     : engine.resolve_num_threads(options.refine.num_threads,
                                                  options.refine.eval);
  if (job.random_trials > 0 && !cancel.signalled()) {
    // Same engine: the baseline replays on the already-warm tables instead
    // of building a second engine per job like the legacy serial loop did.
    // Skipped when the job is already out of budget — the mapped result is
    // the part worth shipping degraded; an unpaired baseline is not.
    const obs::Span random_span("random_baseline", "job", "trials", job.random_trials);
    const auto r0 = clock::now();
    result.random =
        evaluate_random_mappings(engine, job.random_trials, job.random_seed, options.refine.eval);
    result.stages.random_ms =
        std::chrono::duration<double, std::milli>(clock::now() - r0).count();
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  return result;
}

MapService::MapService(MapServiceOptions options)
    : pool_(options.pool ? std::move(options.pool) : ThreadPool::shared()) {
  lane_budget_ = options.lanes > 0 ? options.lanes : pool_->lane_limit();
  lane_budget_ = std::max(1, lane_budget_);
  max_runners_ = options.max_concurrent_jobs > 0 ? options.max_concurrent_jobs : lane_budget_;
  max_runners_ = std::max(1, max_runners_);
  max_queue_ = options.max_queue;
  admission_ = options.admission;
  default_deadline_ms_ = options.default_deadline_ms;
  scheduler_ = options.scheduler;
  small_job_tasks_ = options.small_job_tasks;
  bulk_job_tasks_ = options.bulk_job_tasks;
  interactive_deadline_ms_ = options.interactive_deadline_ms;
  max_inflight_per_client_ = std::max(0, options.max_inflight_per_client);
  max_queued_size_hint_ = options.max_queued_size_hint;
}

MapService::~MapService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : runners_) t.join();
}

std::map<MapService::SchedKey, MapService::QueuedJob>::iterator
MapService::pop_candidate_locked() {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const std::uint64_t client = it->second.job.client_id;
    if (client != 0 && max_inflight_per_client_ > 0) {
      const auto cit = clients_.find(client);
      // The cap counts RUNNING jobs only: a capped client always has a
      // job on a runner, so progress (and eventual eligibility of its
      // queued backlog) is guaranteed even at shutdown.
      if (cit != clients_.end() && cit->second.running >= max_inflight_per_client_) {
        continue;
      }
    }
    return it;
  }
  return queue_.end();
}

MapService::QueuedJob MapService::extract_locked(std::map<SchedKey, QueuedJob>::iterator it) {
  QueuedJob queued = std::move(it->second);
  queue_index_.erase(queued.id);
  queued_size_sum_ -= std::min(queued_size_sum_, queued.job.size_hint);
  rank_floor_ = std::max(rank_floor_, it->first.fair_rank);
  queue_.erase(it);
  service_metrics().queue_depth.add(-1);
  const auto cit = clients_.find(queued.job.client_id);
  if (cit != clients_.end() && cit->second.queued > 0) --cit->second.queued;
  return queued;
}

void MapService::release_client_locked(std::uint64_t client_id) {
  const auto it = clients_.find(client_id);
  if (it == clients_.end()) return;
  if (it->second.running > 0) --it->second.running;
  if (it->second.forgotten && it->second.running == 0 && it->second.queued == 0) {
    clients_.erase(it);
  }
}

void MapService::runner_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return (shutdown_ && queue_.empty()) || pop_candidate_locked() != queue_.end();
    });
    const auto candidate = pop_candidate_locked();
    if (candidate == queue_.end()) {
      if (shutdown_ && queue_.empty()) return;  // drained: queued jobs finish even on shutdown
      continue;
    }
    QueuedJob queued = extract_locked(candidate);
    ++active_;
    const auto cit = clients_.find(queued.job.client_id);
    if (cit != clients_.end()) ++cit->second.running;
    // Scheduler observability: admission -> start wait, per priority.
    const double wait_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - queued.admitted)
                               .count();
    PriorityAgg& agg = priority_stats_[queued.job.priority];
    ++agg.started;
    agg.total_wait_ms += wait_ms;
    agg.max_wait_ms = std::max(agg.max_wait_ms, wait_ms);
    service_metrics().active.add(1);
    service_metrics().queue_wait.record(static_cast<std::int64_t>(wait_ms * 1000.0));
    if (obs::tracer().enabled()) {
      // The wait spans admission (another thread) to this pop; recorded
      // here as an explicit-time event ending now.
      obs::TraceEvent ev;
      ev.name = "queue_wait";
      ev.cat = "service";
      ev.end_ns = obs::Tracer::now_ns();
      ev.start_ns = ev.end_ns - static_cast<std::int64_t>(wait_ms * 1e6);
      ev.arg_name = "priority";
      ev.arg = queued.job.priority;
      obs::tracer().record(ev);
    }
    // Sharding policy: split the lane budget across everything running or
    // about to run. Small jobs flood the runners and each maps with one
    // lane; a job starting into an empty service (a lone submission, or
    // the batch tail) gets wide chunks.
    const int sharers = std::min(max_runners_, active_ + static_cast<int>(queue_.size()));
    const int lanes = std::max(1, lane_budget_ / std::max(1, sharers));
    lock.unlock();
    space_cv_.notify_one();

    // Error isolation: whatever the job does — invalid input, a throwing
    // deferred build(), an injected fault, an allocation failure in the
    // topology-cache fill — it is captured into this job's status and the
    // runner lives on. The future always gets a value, never an exception,
    // so one bad job cannot poison map_batch's drain or the progress
    // stream for its siblings.
    MapJobResult result;
    try {
      result = run_map_job(queued.job, pool_, lanes, &topo_cache_);
    } catch (const std::invalid_argument& e) {
      result = MapJobResult{};
      result.name = queued.job.name;
      result.status = MapStatus::kInvalidInput;
      result.error = e.what();
    } catch (const std::exception& e) {
      result = MapJobResult{};
      result.name = queued.job.name;
      result.status = MapStatus::kInternalError;
      result.error = e.what();
    } catch (...) {
      result = MapJobResult{};
      result.name = queued.job.name;
      result.status = MapStatus::kInternalError;
      result.error = "unknown exception";
    }
    result.queue_ms = wait_ms;
    service_metrics().wall.record(static_cast<std::int64_t>(result.wall_ms * 1000.0));
    if (queued.on_done) {
      // A throwing progress callback must not cost the job its result
      // delivery (the batch would deadlock waiting on the future).
      try {
        queued.on_done(result);
      } catch (...) {
      }
    }
    queued.promise.set_value(std::move(result));

    service_metrics().active.add(-1);
    service_metrics().completed.inc();
    service_metrics().jobs_per_sec.record();

    lock.lock();
    --active_;
    ++stat_completed_;
    sources_.erase(queued.id);
    release_client_locked(queued.job.client_id);
    // A freed client slot may make a passed-over queued job eligible.
    if (max_inflight_per_client_ > 0) work_cv_.notify_all();
  }
}

std::future<MapJobResult> MapService::enqueue_locked(
    std::unique_lock<std::mutex>& lock, MapJob job,
    std::function<void(const MapJobResult&)> on_done, const char* caller, JobId* id_out) {
  if (shutdown_) {
    throw std::logic_error(std::string(caller) + ": service is shutting down");
  }
  // Admission bounds: queue depth and the queued-size estimate. A lone
  // oversized job is always admitted into an EMPTY queue — the size bound
  // sheds load, it must not make a job undeliverable at any queue state.
  const auto over_limit = [&] {
    if (max_queue_ > 0 && queue_.size() >= max_queue_) return true;
    if (max_queued_size_hint_ > 0 && !queue_.empty() &&
        queued_size_sum_ + job.size_hint > max_queued_size_hint_) {
      return true;
    }
    return false;
  };
  const obs::Span admission_span("admission", "service");
  if (over_limit()) {
    if (admission_ == AdmissionPolicy::kReject) {
      ++stat_shed_;
      service_metrics().shed.inc();
      throw AdmissionRejectedError(std::string(caller) + ": admission queue is full (" +
                                   std::to_string(queue_.size()) + " jobs, " +
                                   std::to_string(queued_size_sum_) + " queued tasks)");
    }
    // Backpressure: wait for a slot. The lock is released while waiting,
    // so runners keep draining; a bulk enqueue that hits this loses its
    // single-lock atomicity, which only affects lane sharding, never
    // results.
    space_cv_.wait(lock, [&] { return shutdown_ || !over_limit(); });
    if (shutdown_) {
      throw std::logic_error(std::string(caller) + ": service is shutting down");
    }
  }

  QueuedJob queued;
  queued.job = std::move(job);
  queued.id = next_id_++;
  queued.on_done = std::move(on_done);
  queued.admitted = std::chrono::steady_clock::now();

  // Per-job cancellation channel, chained under the submitter's token, with
  // the queue-inclusive deadline armed now. The job carries the chained
  // token from here on; deadline_ms is consumed.
  CancelSource source(queued.job.cancel);
  const std::int64_t deadline_ms =
      queued.job.deadline_ms != 0 ? queued.job.deadline_ms : default_deadline_ms_;
  if (deadline_ms > 0) source.set_deadline_after_ms(deadline_ms);
  queued.job.cancel = source.token();
  queued.job.deadline_ms = -1;
  sources_.emplace(queued.id, std::move(source));

  // Urgency key (DESIGN.md 16.2). Everything is computed at admission and
  // immutable after: scheduling order never feeds back into job results,
  // so any pop order yields bit-identical per-job outputs.
  SchedKey key;
  key.seq = next_seq_++;
  key.deadline_ns = CancelShared::kNoDeadline;
  ClientState& client = clients_[queued.job.client_id];
  client.forgotten = false;
  ++client.submitted;
  ++client.queued;
  if (scheduler_ == SchedulerPolicy::kPriority) {
    key.priority = queued.job.priority;
    // Urgency class: tight wall budgets and small jobs are interactive,
    // large jobs bulk, unknown sizes normal. The deadline test uses the
    // REQUESTED budget, not the clock — admission-order deterministic.
    if (deadline_ms > 0 && deadline_ms <= interactive_deadline_ms_) {
      key.klass = 0;
    } else if (queued.job.size_hint == 0) {
      key.klass = 1;
    } else if (queued.job.size_hint <= small_job_tasks_) {
      key.klass = 0;
    } else if (queued.job.size_hint >= bulk_job_tasks_) {
      key.klass = 2;
    } else {
      key.klass = 1;
    }
    if (deadline_ms > 0) {
      key.deadline_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              (queued.admitted + std::chrono::milliseconds(deadline_ms)).time_since_epoch())
              .count();
    }
    // Start-time fair queuing: each client's next job ranks one past its
    // previous, floored at the rank of the last job popped — so a client
    // waking from idle competes level with the backlog's head instead of
    // carrying unbounded credit, and a flooding client's queue interleaves
    // one-per-round with everyone else's.
    key.fair_rank = std::max(client.next_rank, rank_floor_);
    client.next_rank = key.fair_rank + 1;
  } else {
    key.priority = 0;
    key.klass = 1;
    key.fair_rank = 0;
  }

  if (id_out != nullptr) *id_out = queued.id;
  queued_size_sum_ += queued.job.size_hint;
  ++stat_submitted_;
  service_metrics().submitted.inc();
  service_metrics().queue_depth.add(1);
  const JobId id = queued.id;
  queue_index_.emplace(id, key);
  auto [it, inserted] = queue_.emplace(std::move(key), std::move(queued));
  (void)inserted;  // seq is unique, keys never collide
  std::future<MapJobResult> future = it->second.promise.get_future();
  // Lazy runner spawn: one per job until the cap, so a service used for a
  // single submission never fields an idle army.
  const int wanted = std::min(max_runners_, active_ + static_cast<int>(queue_.size()));
  while (static_cast<int>(runners_.size()) < wanted) {
    runners_.emplace_back([this] { runner_main(); });
  }
  return future;
}

std::future<MapJobResult> MapService::submit(MapJob job, JobId* id,
                                             std::function<void(const MapJobResult&)> on_done) {
  if (job.instance == nullptr && !job.build) {
    throw std::invalid_argument("MapService::submit: job has neither an instance nor a builder");
  }
  std::future<MapJobResult> future;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    future = enqueue_locked(lock, std::move(job), std::move(on_done), "MapService::submit", id);
  }
  work_cv_.notify_one();
  return future;
}

void MapService::deliver_cancelled(std::vector<QueuedJob>& drained) {
  for (QueuedJob& queued : drained) {
    MapJobResult result;
    result.name = queued.job.name;
    // First cause wins: a deadline that expired while the job sat queued
    // beats the cancel that drained it.
    result.status = queued.job.cancel.signalled() ? queued.job.cancel.status()
                                                  : MapStatus::kCancelled;
    if (result.status == MapStatus::kOk) result.status = MapStatus::kCancelled;
    result.report.status = result.status;
    if (queued.on_done) {
      try {
        queued.on_done(result);
      } catch (...) {
      }
    }
    queued.promise.set_value(std::move(result));
  }
  if (!drained.empty()) space_cv_.notify_all();
}

bool MapService::cancel(JobId id) {
  std::vector<QueuedJob> drained;
  bool found = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sources_.find(id);
    if (it != sources_.end()) {
      it->second.request_cancel();
      found = true;
    }
    const auto idx = queue_index_.find(id);
    if (idx != queue_index_.end()) {
      const auto qit = queue_.find(idx->second);
      if (qit != queue_.end()) {
        drained.push_back(extract_locked(qit));
        sources_.erase(id);
        ++stat_cancelled_queued_;
        service_metrics().cancelled_queued.inc();
      }
    }
  }
  deliver_cancelled(drained);
  if (!drained.empty()) work_cv_.notify_all();
  return found;
}

std::size_t MapService::cancel_all() {
  std::vector<QueuedJob> drained;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, source] : sources_) source.request_cancel();
    drained.reserve(queue_.size());
    while (!queue_.empty()) {
      QueuedJob queued = extract_locked(queue_.begin());
      sources_.erase(queued.id);
      ++stat_cancelled_queued_;
      service_metrics().cancelled_queued.inc();
      drained.push_back(std::move(queued));
    }
  }
  deliver_cancelled(drained);
  if (!drained.empty()) work_cv_.notify_all();
  return drained.size();
}

ServiceStats MapService::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats s;
  s.submitted = stat_submitted_;
  s.completed = stat_completed_;
  s.shed = stat_shed_;
  s.cancelled_queued = stat_cancelled_queued_;
  s.queue_depth = queue_.size();
  s.queued_size_hint = queued_size_sum_;
  s.active = active_;
  s.priorities.reserve(priority_stats_.size());
  for (const auto& [priority, agg] : priority_stats_) {
    s.priorities.push_back({priority, agg.started, agg.total_wait_ms, agg.max_wait_ms});
  }
  for (const auto& [client_id, state] : clients_) {
    if (client_id == 0) continue;  // the anonymous shared stream is not a client
    s.clients.push_back({client_id, state.queued + state.running, state.submitted});
  }
  return s;
}

void MapService::forget_client(std::uint64_t client_id) {
  if (client_id == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = clients_.find(client_id);
  if (it == clients_.end()) return;
  if (it->second.queued == 0 && it->second.running == 0) {
    clients_.erase(it);
  } else {
    it->second.forgotten = true;
  }
}

std::vector<MapJobResult> MapService::map_batch(
    std::vector<MapJob> jobs, const std::function<void(const BatchProgress&)>& progress) {
  struct BatchState {
    std::mutex mutex;
    std::size_t completed = 0;
  };
  const auto state = std::make_shared<BatchState>();
  const std::size_t total = jobs.size();

  for (const MapJob& job : jobs) {
    if (job.instance == nullptr && !job.build) {
      throw std::invalid_argument(
          "MapService::map_batch: job has neither an instance nor a builder");
    }
  }

  std::vector<std::future<MapJobResult>> futures;
  futures.reserve(jobs.size());
  std::exception_ptr admission_error;
  try {
    // One lock for the whole batch: the first runner must not pop a job
    // before the rest are queued, or the sharding policy would see an
    // empty queue and grant the head job the full lane budget. (A full
    // admission queue under kBlock waives the atomicity — see
    // enqueue_locked.)
    std::unique_lock<std::mutex> lock(mutex_);
    for (MapJob& job : jobs) {
      std::function<void(const MapJobResult&)> on_done;
      if (progress) {
        // By value: if map_batch unwinds (admission rejected), closures of
        // still-queued jobs must not dangle into the caller's frame.
        on_done = [state, total, progress](const MapJobResult& result) {
          const std::lock_guard<std::mutex> batch_lock(state->mutex);
          BatchProgress p;
          p.completed = ++state->completed;
          p.total = total;
          p.last = &result;
          progress(p);
        };
      }
      futures.push_back(
          enqueue_locked(lock, std::move(job), std::move(on_done), "MapService::map_batch", nullptr));
      if (max_queue_ > 0 && queue_.size() >= max_queue_) {
        // The next enqueue would block holding every earlier job hostage;
        // release the dam so runners start on what is already queued.
        lock.unlock();
        work_cv_.notify_all();
        lock.lock();
      }
    }
  } catch (...) {
    // Admission rejected (or shutdown) mid-batch: the jobs already
    // admitted borrow caller-owned instances, so they must deliver before
    // this frame unwinds.
    admission_error = std::current_exception();
  }
  work_cv_.notify_all();

  // Drain every future before returning: submitted jobs borrow
  // caller-owned instances, so map_batch must not unwind into the caller's
  // frame while runners still execute against it. Per-job failures arrive
  // as statuses inside the results, so the drain itself never throws.
  std::vector<MapJobResult> results;
  results.reserve(futures.size());
  for (std::future<MapJobResult>& future : futures) {
    results.push_back(future.get());
  }
  if (admission_error) std::rethrow_exception(admission_error);
  return results;
}

}  // namespace mimdmap
