#include "service/map_service.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/eval_engine.hpp"

namespace mimdmap {

MapJobResult run_map_job(const MapJob& job, const std::shared_ptr<ThreadPool>& pool,
                         int lanes, TopologyCache* topo_cache) {
  if (job.instance == nullptr && !job.build) {
    throw std::invalid_argument("run_map_job: job has neither an instance nor a builder");
  }
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();

  MapperOptions options = job.options;
  if (job.seed != 0) options.refine.seed = job.seed;
  // lanes > 0 is a service sharding decision and overrides the job's own
  // inner thread count; lanes == 0 (direct sequential callers) leaves the
  // job's RefineOptions::num_threads in charge.
  if (lanes > 0) options.refine.num_threads = lanes;

  // Deferred jobs materialize here and release at function exit — before
  // the result reaches the caller — so the alive-instance footprint of a
  // batch is one per busy runner.
  std::optional<MappingInstance> owned;
  const MappingInstance* instance = job.instance;
  if (instance == nullptr) {
    owned.emplace(job.build());
    instance = &*owned;
  }

  // Topology-table sharing: instances already carrying shared tables (a
  // cache-aware submitter, e.g. the CLI batch manifest) are adopted by the
  // engine automatically and share everything including the distance
  // matrix; otherwise the service cache supplies tables keyed by the
  // machine's structure, so only the first job per topology builds the
  // routing tables the engine adopts (the instance computed its own
  // distance matrix before reaching this point — that part is only
  // amortized by cache-aware construction).
  bool cache_hit = false;
  std::shared_ptr<const TopologyTables> tables = instance->shared_tables();
  if (topo_cache != nullptr && tables == nullptr) {
    tables = topo_cache->acquire(instance->system(), instance->distance_model(), &cache_hit);
  }

  const EvalEngine engine(*instance, pool);
  if (tables) engine.adopt_topology(tables);
  MapJobResult result;
  result.topology_cache_hit = cache_hit;
  result.name = job.name;
  result.system_name = instance->system().name();
  result.np = instance->num_tasks();
  result.ns = instance->num_processors();
  result.report = map_instance(engine, options);
  // Resolved width, not the request: with lanes == 0 the job's own setting
  // ran, which may itself have been 0 ("auto"); the resolution is cached
  // by now, so this is a lookup.
  result.lanes = lanes > 0
                     ? lanes
                     : engine.resolve_num_threads(options.refine.num_threads,
                                                  options.refine.eval);
  if (job.random_trials > 0) {
    // Same engine: the baseline replays on the already-warm tables instead
    // of building a second engine per job like the legacy serial loop did.
    result.random =
        evaluate_random_mappings(engine, job.random_trials, job.random_seed, options.refine.eval);
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  return result;
}

MapService::MapService(MapServiceOptions options)
    : pool_(options.pool ? std::move(options.pool) : ThreadPool::shared()) {
  lane_budget_ = options.lanes > 0 ? options.lanes : pool_->lane_limit();
  lane_budget_ = std::max(1, lane_budget_);
  max_runners_ = options.max_concurrent_jobs > 0 ? options.max_concurrent_jobs : lane_budget_;
  max_runners_ = std::max(1, max_runners_);
}

MapService::~MapService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : runners_) t.join();
}

void MapService::runner_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;  // drained: queued jobs finish even on shutdown
      continue;
    }
    QueuedJob queued = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    // Sharding policy: split the lane budget across everything running or
    // about to run. Small jobs flood the runners and each maps with one
    // lane; a job starting into an empty service (a lone submission, or
    // the batch tail) gets wide chunks.
    const int sharers = std::min(max_runners_, active_ + static_cast<int>(queue_.size()));
    const int lanes = std::max(1, lane_budget_ / std::max(1, sharers));
    lock.unlock();

    try {
      MapJobResult result = run_map_job(queued.job, pool_, lanes, &topo_cache_);
      if (queued.on_done) queued.on_done(result);
      queued.promise.set_value(std::move(result));
    } catch (...) {
      queued.promise.set_exception(std::current_exception());
    }

    lock.lock();
    --active_;
  }
}

std::future<MapJobResult> MapService::enqueue_locked(QueuedJob queued, const char* caller) {
  if (shutdown_) {
    throw std::logic_error(std::string(caller) + ": service is shutting down");
  }
  queue_.push_back(std::move(queued));
  std::future<MapJobResult> future = queue_.back().promise.get_future();
  // Lazy runner spawn: one per job until the cap, so a service used for a
  // single submission never fields an idle army.
  const int wanted = std::min(max_runners_, active_ + static_cast<int>(queue_.size()));
  while (static_cast<int>(runners_.size()) < wanted) {
    runners_.emplace_back([this] { runner_main(); });
  }
  return future;
}

std::future<MapJobResult> MapService::submit(MapJob job) {
  if (job.instance == nullptr && !job.build) {
    throw std::invalid_argument("MapService::submit: job has neither an instance nor a builder");
  }
  std::future<MapJobResult> future;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    future = enqueue_locked(QueuedJob{std::move(job), {}, {}}, "MapService::submit");
  }
  work_cv_.notify_one();
  return future;
}

std::vector<MapJobResult> MapService::map_batch(
    std::vector<MapJob> jobs, const std::function<void(const BatchProgress&)>& progress) {
  struct BatchState {
    std::mutex mutex;
    std::size_t completed = 0;
  };
  const auto state = std::make_shared<BatchState>();
  const std::size_t total = jobs.size();

  for (const MapJob& job : jobs) {
    if (job.instance == nullptr && !job.build) {
      throw std::invalid_argument(
          "MapService::map_batch: job has neither an instance nor a builder");
    }
  }

  std::vector<std::future<MapJobResult>> futures;
  futures.reserve(jobs.size());
  {
    // One lock for the whole batch: the first runner must not pop a job
    // before the rest are queued, or the sharding policy would see an
    // empty queue and grant the head job the full lane budget.
    const std::lock_guard<std::mutex> lock(mutex_);
    for (MapJob& job : jobs) {
      QueuedJob queued{std::move(job), {}, {}};
      if (progress) {
        // By value: if map_batch unwinds (a job threw), closures of
        // still-queued jobs must not dangle into the caller's frame.
        queued.on_done = [state, total, progress](const MapJobResult& result) {
          const std::lock_guard<std::mutex> batch_lock(state->mutex);
          BatchProgress p;
          p.completed = ++state->completed;
          p.total = total;
          p.last = &result;
          progress(p);
        };
      }
      futures.push_back(enqueue_locked(std::move(queued), "MapService::map_batch"));
    }
  }
  work_cv_.notify_all();

  // Drain every future before rethrowing the first failure: submitted jobs
  // borrow caller-owned instances, so map_batch must not unwind into the
  // caller's frame while runners still execute against it.
  std::vector<MapJobResult> results;
  results.reserve(futures.size());
  std::exception_ptr first_error;
  for (std::future<MapJobResult>& future : futures) {
    try {
      results.push_back(future.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace mimdmap
