#include "service/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mimdmap {

namespace {

/// Registry instruments, resolved once (references are immortal).
struct PoolMetrics {
  obs::Counter& chunks = obs::registry().counter("mimdmap_pool_chunks_total");
  obs::Counter& sequential =
      obs::registry().counter("mimdmap_pool_chunks_sequential_total");
  obs::Counter& joins = obs::registry().counter("mimdmap_pool_worker_joins_total");
  obs::Counter& stolen = obs::registry().counter("mimdmap_pool_indices_stolen_total");
  obs::Counter& poisoned = obs::registry().counter("mimdmap_pool_chunks_poisoned_total");
  obs::Gauge& threads = obs::registry().gauge("mimdmap_pool_threads");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics metrics;
  return metrics;
}

int auto_worker_count() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  // hardware_concurrency() may legitimately return 0 ("unknown"); don't
  // let that strand explicit parallelism requests on a 1-lane pool — give
  // the pool a modest budget and let chunk lane caps do the clamping.
  if (hc == 0) return 3;
  return hc > 1 ? static_cast<int>(hc) - 1 : 0;
}

}  // namespace

std::shared_ptr<ThreadPool> ThreadPool::shared() {
  static std::mutex registry_mutex;
  static std::weak_ptr<ThreadPool> registry;
  const std::lock_guard<std::mutex> lock(registry_mutex);
  std::shared_ptr<ThreadPool> pool = registry.lock();
  if (!pool) {
    pool = std::make_shared<ThreadPool>();
    registry = pool;
  }
  return pool;
}

ThreadPool::ThreadPool(int workers)
    : max_workers_(workers < 0 ? auto_worker_count() : workers) {
  // Register the pool series eagerly so `op=metrics` exposes them (as
  // zeros) even before the first chunk runs — a dump that omits a series
  // is indistinguishable from a dump that never knew it.
  (void)pool_metrics();
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::drain(Chunk& chunk, int lane) {
  const obs::Span span("pool_drain", "pool", "lane", lane);
  std::uint64_t pulled = 0;  // folded into the steal counter once, on exit
  while (true) {
    // Poisoned chunks stop handing out work; whoever set the flag owns the
    // exception, everyone else just leaves.
    if (chunk.error_claimed.load(std::memory_order_acquire)) break;
    const std::size_t i = chunk.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= chunk.count) break;
    ++pulled;
    try {
      (*chunk.fn)(i, lane);
    } catch (...) {
      bool expected = false;
      if (chunk.error_claimed.compare_exchange_strong(expected, true,
                                                      std::memory_order_acq_rel)) {
        chunk.error = std::current_exception();
        pool_metrics().poisoned.inc();
      }
      break;
    }
  }
  // Lane 0 is the caller's own work; anything a pooled worker pulled was
  // "stolen" from the sequential baseline.
  if (lane != 0 && pulled > 0) pool_metrics().stolen.add(pulled);
}

void ThreadPool::detach_locked(Chunk* chunk) {
  const auto it = std::find(active_.begin(), active_.end(), chunk);
  if (it != active_.end()) active_.erase(it);
}

void ThreadPool::worker_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return shutdown_ || !active_.empty(); });
    if (active_.empty()) {
      if (shutdown_) return;
      continue;
    }
    Chunk* chunk = active_.front();
    if (chunk->next.load(std::memory_order_relaxed) >= chunk->count) {
      // Exhausted before this worker could join; stop admitting to it.
      detach_locked(chunk);
      continue;
    }
    const int lane = chunk->next_lane++;
    ++chunk->attached;
    ++attached_total_;
    pool_metrics().joins.inc();
    if (chunk->next_lane >= chunk->max_lanes) detach_locked(chunk);
    lock.unlock();
    drain(*chunk, lane);
    lock.lock();
    --attached_total_;
    if (--chunk->attached == 0) chunk->done_cv.notify_one();
  }
}

void ThreadPool::run_chunk(std::size_t count, int max_lanes,
                           const std::function<void(std::size_t, int)>& fn) {
  if (count == 0) return;
  max_lanes = std::min(max_lanes, lane_limit());
  if (count < static_cast<std::size_t>(std::numeric_limits<int>::max())) {
    max_lanes = std::min(max_lanes, static_cast<int>(count));
  }
  if (max_lanes < 2) {
    pool_metrics().sequential.inc();
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  pool_metrics().chunks.inc();

  Chunk chunk;
  chunk.fn = &fn;
  chunk.count = count;
  chunk.max_lanes = max_lanes;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    active_.push_back(&chunk);
    // Lazy spawn against the *summed* demand of every admitting chunk plus
    // the workers already busy draining (never beyond the pool-wide worker
    // budget), so concurrent chunks field enough workers between them even
    // when earlier chunks still hold workers.
    int demand = attached_total_;
    for (const Chunk* c : active_) demand += c->max_lanes - c->next_lane;
    const int target = std::min(max_workers_, demand);
    while (static_cast<int>(threads_.size()) < target) {
      threads_.emplace_back([this] { worker_main(); });
    }
    pool_metrics().threads.set(static_cast<std::int64_t>(threads_.size()));
  }
  work_cv_.notify_all();

  drain(chunk, 0);  // the caller is lane 0 and always makes progress

  {
    std::unique_lock<std::mutex> lock(mutex_);
    detach_locked(&chunk);  // stop admitting; workers already in keep going
    chunk.done_cv.wait(lock, [&] { return chunk.attached == 0; });
  }
  // Only now — with every lane detached and the chunk off active_ — may an
  // fn exception escape; earlier it would leave this stack frame's Chunk
  // dangling in the pool.
  if (chunk.error) std::rethrow_exception(chunk.error);
}

int ThreadPool::thread_count() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(threads_.size());
}

double ThreadPool::chunk_sync_overhead_ns() {
  const std::lock_guard<std::mutex> lock(calib_mutex_);
  if (sync_overhead_ns_ >= 0) return sync_overhead_ns_;
  if (max_workers_ < 1) {
    sync_overhead_ns_ = 0.0;  // sequential pool: dispatch is a plain loop
    return sync_overhead_ns_;
  }
  using clock = std::chrono::steady_clock;
  const auto noop = [](std::size_t, int) {};
  const auto width = static_cast<std::size_t>(lane_limit());
  // First dispatch spawns the workers; measure the steady state after it.
  run_chunk(width, lane_limit(), noop);
  double best = std::numeric_limits<double>::max();
  for (int rep = 0; rep < 8; ++rep) {
    const auto t0 = clock::now();
    run_chunk(width, lane_limit(), noop);
    best = std::min(best, std::chrono::duration<double, std::nano>(clock::now() - t0).count());
  }
  sync_overhead_ns_ = best;
  return sync_overhead_ns_;
}

}  // namespace mimdmap
