// ThreadPool: the process-wide shared worker pool behind every parallel
// loop in the library.
//
// PR 1 gave each EvalEngine a private persistent pool, which is exactly
// right for one engine hammered by one search loop — and exactly wrong the
// moment an experiment table, a replication matrix or a batch manifest maps
// many instances at once: E engines spawn E * (cores - 1) threads and the
// OS scheduler thrashes (ROADMAP "Engine-level sharding / multi-instance
// batching"). This class extracts that pool into one process-wide,
// reference-counted instance that every engine (and MapService job) shares:
//
//  * chunk API: run_chunk(count, max_lanes, fn) is the same fork-join shape
//    the engines already dispatch — the caller drives lane 0, pooled
//    workers join as lanes 1.. and all participants pull indices from one
//    atomic counter (work stealing at index granularity, so an uneven
//    chunk never strands a lane);
//  * concurrent chunks: any number of threads may be inside run_chunk at
//    once. Each chunk admits at most max_lanes - 1 workers (its lane
//    budget), so concurrently-running jobs shard the pool instead of
//    oversubscribing it — workers that finish one chunk immediately pick
//    up the next active one;
//  * lanes are dense per chunk: fn(i, lane) always sees lane in
//    [0, max_lanes), lane 0 being the caller, so per-lane scratch arrays
//    (EvalWorkspace) index directly;
//  * reference counting: ThreadPool::shared() hands out a shared_ptr to
//    one lazily-created process-wide pool; when the last holder releases
//    it the threads join and a later shared() builds a fresh pool;
//  * calibration: the chunk-dispatch sync overhead is measured once per
//    pool and cached (chunk_sync_overhead_ns), so auto-threading
//    (EvalEngine::resolve_num_threads) in a batch of N engines no longer
//    pays the measurement N times.
//
// Guarantees: run_chunk invokes fn at most once per index (exactly once
// when no invocation throws); it returns only after every invocation has
// finished; with max_lanes < 2 (or a worker-less pool) it degenerates to
// an inline sequential loop, so a caller that drives lane 0 always makes
// progress — nested run_chunk calls cannot deadlock.
//
// Exception safety: a throwing fn poisons its chunk — every lane stops
// pulling indices (remaining indices are skipped), the first exception is
// captured, and run_chunk rethrows it on the calling thread after all
// lanes have detached. A worker that caught an exception survives and
// moves on to other chunks; the pool itself is never poisoned. This
// matters beyond hygiene: the caller's Chunk lives on its stack, so an
// exception escaping through run_chunk while workers were still attached
// would leave a dangling pointer in the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mimdmap {

class ThreadPool {
 public:
  /// The process-wide shared pool (created on first use, sized for the
  /// hardware). Hold the returned pointer for as long as the pool is
  /// needed; when the last holder drops it the workers join.
  [[nodiscard]] static std::shared_ptr<ThreadPool> shared();

  /// workers < 0 means "auto": hardware_concurrency() - 1 (the caller of
  /// every chunk is itself a lane). An explicit count is honoured as given
  /// — tests use oversized pools to exercise concurrency on small hosts,
  /// and 0 yields an always-sequential pool.
  explicit ThreadPool(int workers = -1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i, lane) for every i in [0, count) across the caller (lane 0)
  /// and up to max_lanes - 1 pooled workers (lanes 1..). Blocks until all
  /// indices are done. Iteration order across lanes is unspecified; fn
  /// must only write per-index state. If fn throws, the chunk stops early
  /// and the first exception is rethrown here after every lane has
  /// detached (see the class comment). Thread-safe: concurrent chunks
  /// shard the pool via their lane budgets.
  void run_chunk(std::size_t count, int max_lanes,
                 const std::function<void(std::size_t, int)>& fn);

  /// Maximum lanes any chunk can use: the worker budget plus the caller.
  [[nodiscard]] int lane_limit() const noexcept { return max_workers_ + 1; }

  /// Workers spawned so far (lazy; never exceeds the worker budget).
  [[nodiscard]] int thread_count();

  /// Wall-clock cost of dispatching one no-op chunk at full width, in
  /// nanoseconds — the break-even constant for "is this loop worth
  /// parallelising". Measured once per pool and cached process-wide; a
  /// worker-less pool reports 0 without measuring.
  [[nodiscard]] double chunk_sync_overhead_ns();

 private:
  /// One in-flight run_chunk call. Stack-allocated by the caller; the pool
  /// only holds a pointer while the chunk is admitting workers.
  struct Chunk {
    const std::function<void(std::size_t, int)>* fn = nullptr;
    std::atomic<std::size_t> next{0};  // shared index cursor (work stealing)
    std::size_t count = 0;
    int max_lanes = 1;
    int next_lane = 1;  // lane tickets; caller holds lane 0 (guarded by pool mutex)
    int attached = 0;   // workers currently draining (guarded by pool mutex)
    std::condition_variable done_cv;
    /// Poison flag: set by the first lane whose fn threw; every lane stops
    /// pulling indices once it is up.
    std::atomic<bool> error_claimed{false};
    /// The first exception. Written only by the error_claimed winner before
    /// it re-enters the pool mutex, read by the caller after the done wait
    /// — the mutex orders the two.
    std::exception_ptr error;
  };

  void worker_main();
  static void drain(Chunk& chunk, int lane);
  void detach_locked(Chunk* chunk);

  const int max_workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::vector<std::thread> threads_;
  std::vector<Chunk*> active_;  // chunks still admitting workers
  int attached_total_ = 0;      // workers currently draining any chunk
  bool shutdown_ = false;

  std::mutex calib_mutex_;
  double sync_overhead_ns_ = -1.0;
};

}  // namespace mimdmap
