#include "service/fault_injection.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>

namespace mimdmap {
namespace {

struct FaultState {
  std::mutex mutex;          // guards config writes; reads copy under it
  FaultConfig config;
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> draws{0};
  std::once_flag env_once;
};

FaultState& state() {
  static FaultState s;
  return s;
}

/// splitmix64 over (seed, draw index): lock-free, reproducible for a fixed
/// opportunity interleaving.
double next_uniform01(FaultState& s, std::uint64_t seed) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                               (s.draws.fetch_add(1, std::memory_order_relaxed) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

void load_env_locked(FaultState& s) {
  const char* raw = std::getenv("MIMDMAP_FAULT");
  if (raw == nullptr || raw[0] == '\0') return;
  // A malformed env spec must not take the process down from inside an
  // innocent service call; it just disarms injection.
  try {
    s.config = parse_fault_spec(raw);
    s.enabled.store(s.config.any(), std::memory_order_relaxed);
  } catch (const std::exception&) {
    s.config = FaultConfig{};
    s.enabled.store(false, std::memory_order_relaxed);
  }
}

void ensure_env_loaded(FaultState& s) noexcept {
  std::call_once(s.env_once, [&s] {
    const std::lock_guard<std::mutex> lock(s.mutex);
    load_env_locked(s);
  });
}

/// Draws against `probability`; true means "inject here".
bool should_inject(double probability) {
  if (probability <= 0.0) return false;
  FaultState& s = state();
  std::uint64_t seed;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    seed = s.config.seed;
  }
  return next_uniform01(s, seed) < probability;
}

double armed_probability(double FaultConfig::* field) {
  FaultState& s = state();
  if (!fault_injection_enabled()) return 0.0;
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.config.*field;
}

}  // namespace

FaultConfig set_fault_config(const FaultConfig& config) {
  FaultState& s = state();
  ensure_env_loaded(s);
  const std::lock_guard<std::mutex> lock(s.mutex);
  FaultConfig previous = s.config;
  s.config = config;
  s.draws.store(0, std::memory_order_relaxed);
  s.enabled.store(config.any(), std::memory_order_relaxed);
  return previous;
}

FaultConfig fault_config() {
  FaultState& s = state();
  ensure_env_loaded(s);
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.config;
}

bool fault_injection_enabled() noexcept {
  FaultState& s = state();
  ensure_env_loaded(s);
  return s.enabled.load(std::memory_order_relaxed);
}

FaultConfig parse_fault_spec(const std::string& spec) {
  FaultConfig config;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      throw std::invalid_argument("MIMDMAP_FAULT: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    try {
      if (key == "build") {
        config.build_throw = std::stod(value);
      } else if (key == "mapper") {
        config.mapper_throw = std::stod(value);
      } else if (key == "topo-alloc") {
        config.topo_alloc_fail = std::stod(value);
      } else if (key == "slow-ms") {
        config.slow_runner_ms = std::stoi(value);
      } else if (key == "seed") {
        config.seed = std::stoull(value);
      } else {
        throw std::invalid_argument("MIMDMAP_FAULT: unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("MIMDMAP_FAULT: bad value for '" + key + "': " + value);
    }
  }
  if (config.build_throw < 0.0 || config.build_throw > 1.0 ||
      config.mapper_throw < 0.0 || config.mapper_throw > 1.0 ||
      config.topo_alloc_fail < 0.0 || config.topo_alloc_fail > 1.0 ||
      config.slow_runner_ms < 0) {
    throw std::invalid_argument("MIMDMAP_FAULT: probabilities must be in [0, 1]");
  }
  return config;
}

void fault_point_build() {
  if (should_inject(armed_probability(&FaultConfig::build_throw))) {
    throw std::runtime_error("fault: build");
  }
}

void fault_point_mapper() {
  if (should_inject(armed_probability(&FaultConfig::mapper_throw))) {
    throw std::runtime_error("fault: mapper");
  }
}

void fault_point_topo_alloc() {
  if (should_inject(armed_probability(&FaultConfig::topo_alloc_fail))) {
    throw std::bad_alloc();
  }
}

void fault_sleep_runner() {
  FaultState& s = state();
  if (!fault_injection_enabled()) return;
  int ms;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    ms = s.config.slow_runner_ms;
  }
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace mimdmap
