// MapServer: the crash-safe streaming mapping daemon (`mimdmap_cli serve`).
//
// A long-lived front-end over one warm process-wide MapService: any number
// of concurrent clients connect over a Unix-domain socket (or a single
// stdin/stdout pipe), stream newline-framed key=value job requests
// (service/wire.hpp) and receive per-job status/result frames back. All
// jobs share the service's ThreadPool and TopologyCache — the daemon stays
// warm across requests, which is the entire point.
//
// Robustness contract (DESIGN.md section 16; chaos-tested under
// MIMDMAP_FAULT storms and TSan):
//
//  * EXACTLY ONE terminal frame per accepted job. `event=accepted` is the
//    promise; `event=result` (status ok / cancelled / deadline_exceeded /
//    invalid_input / internal_error) is the one redemption. Requests that
//    are never accepted get exactly one non-accept answer instead
//    (`event=error` for protocol violations, `event=overloaded` for shed
//    load) — nothing is ever silently dropped, nothing answered twice.
//  * malformed input never kills the server: oversized lines, NUL bytes,
//    truncated frames and unparsable requests each cost one `event=error`
//    and the connection keeps serving. File/graph resolution runs inside
//    the job (deferred build), so a bad problem file is that job's
//    invalid_input result, not a connection error.
//  * overload is shed, not queued to death: admission runs the service's
//    bounded queue under AdmissionPolicy::kReject; rejected submits answer
//    `event=overloaded` with an advisory retry-ms backoff hint scaled to
//    the current backlog. The accept loop never blocks on a full queue.
//  * a dropped connection cancels its jobs: the per-connection
//    CancelSource is chained under every job the connection submitted, so
//    EOF/write failure trips them all (queued ones drain, running ones
//    stop within one evaluation wave) and the client's fairness state is
//    forgotten.
//  * graceful drain: request_drain() (SIGTERM/SIGINT in the CLI, or an
//    op=drain frame) stops accepting connections and submits, finishes or
//    cancels in-flight work per DrainMode, flushes every pending terminal
//    frame, says `event=bye` on each live connection and only then closes.
//    wait() returns with zero lost results.
//
// Threading: one accept thread (socket mode), one reader thread per
// connection, result frames written by whichever runner completes the job
// (MapService submit on_done) under a per-connection write mutex. Lock
// order is connection -> service; completion callbacks take only the
// connection lock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "service/journal.hpp"
#include "service/map_service.hpp"
#include "service/result_cache.hpp"
#include "service/wire.hpp"

namespace mimdmap::serve {

enum class DrainMode {
  /// Stop accepting, let queued + running jobs finish, flush, close.
  kFinish,
  /// Stop accepting, cancel queued + running jobs (they flush degraded
  /// terminal results), close.
  kCancel,
};

struct ServerOptions {
  /// Service configuration. The server forces admission to
  /// AdmissionPolicy::kReject (shedding; the accept loop must never
  /// block) and applies a bounded queue when none is configured.
  MapServiceOptions service;
  /// Per-line byte cap of the wire reader.
  std::size_t max_line_bytes = 64 * 1024;
  /// Clamp for the overload backoff hint.
  std::int64_t min_retry_ms = 10;
  std::int64_t max_retry_ms = 2000;
  /// Optional log sink for connection lifecycle lines (the CLI passes
  /// stderr); null = silent.
  std::ostream* log = nullptr;

  // -- Durability (DESIGN.md section 19) ----------------------------------
  /// Write-ahead journal directory; empty = no journal. With a journal,
  /// accepted submits are logged before the accepted frame and the
  /// constructor replays accepted-but-unfinished requests from a previous
  /// run (results marked replayed=1). A corrupt non-tail record makes the
  /// constructor throw JournalError unless journal_repair truncates it.
  std::string journal_dir;
  FsyncPolicy journal_fsync = FsyncPolicy::kBatch;
  bool journal_repair = false;
  /// Byte budget of the idempotent result cache (0 = disabled): repeat
  /// submits with an identical fingerprint answer cached=1 terminal
  /// frames without touching the pool.
  std::uint64_t cache_bytes = 0;
  /// Compact the journal (rewrite live cache state, drop old segments)
  /// once every journaled job is terminal and the segment exceeds this.
  std::uint64_t journal_rotate_bytes = 1u << 20;
};

/// Monotonic server-side counters (all frames ever written / read).
struct ServerStats {
  std::uint64_t connections_opened = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_read = 0;
  std::uint64_t parse_errors = 0;   // event=error answers
  std::uint64_t accepted = 0;       // event=accepted frames
  std::uint64_t terminal_frames = 0;  // event=result frames (incl. to dead peers)
  std::uint64_t shed = 0;           // event=overloaded answers
  std::uint64_t disconnect_cancels = 0;  // jobs cancelled by a vanished client
  std::uint64_t replayed = 0;       // journal-recovered jobs brought to terminal
  std::uint64_t cached_results = 0; // terminal frames served from the result cache
};

class MapServer {
 public:
  explicit MapServer(ServerOptions options = {});
  /// Drains (kCancel) if still serving.
  ~MapServer();

  MapServer(const MapServer&) = delete;
  MapServer& operator=(const MapServer&) = delete;

  /// Socket mode: binds + listens on `socket_path` (unlinking a stale
  /// socket file first) and starts the accept thread. Throws
  /// std::runtime_error on bind/listen failure.
  void listen_unix(const std::string& socket_path);

  /// Pipe mode / tests: serves one already-open duplex connection on the
  /// CALLING thread until the peer closes, a fatal read error, or drain.
  /// read_fd/write_fd may be the same fd (a socketpair end) or a pipe
  /// pair (0/1 for stdio). The fds are not closed (callers own them).
  void serve_fd(int read_fd, int write_fd);

  /// Initiates drain (idempotent; the first mode wins). Non-blocking: an
  /// internal drainer thread finishes the teardown, so a drain triggered
  /// by an op=drain frame (from a reader thread) or a signal watcher
  /// completes even when no thread is parked in wait().
  void request_drain(DrainMode mode);

  /// Blocks until a requested drain has fully completed: no outstanding
  /// jobs, every terminal frame flushed, bye sent, all connection threads
  /// joined. (Call request_drain first, or rely on an op=drain frame.)
  void wait();

  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] MapService& service() noexcept { return *service_; }
  /// Socket path bound by listen_unix (empty in pipe mode).
  [[nodiscard]] const std::string& socket_path() const noexcept { return socket_path_; }

 private:
  struct Connection;

  /// Per-job durability context captured into the on_done closure: what
  /// deliver_result needs to journal the terminal record, fill the cache,
  /// and flag the frame — without any lookup.
  struct JobTicket {
    std::string fingerprint;  // empty when durability is off
    std::uint64_t jid = 0;    // journal job id; 0 = not journaled
    bool replayed = false;    // job re-submitted from the journal
    std::string display_id;   // original client tag of a replayed job
  };

  void accept_main();
  /// Reader loop of one connection; returns when the peer closes, read
  /// fails, or the server drains.
  void connection_main(const std::shared_ptr<Connection>& conn);
  void handle_line(const std::shared_ptr<Connection>& conn, const FrameReader::Line& line);
  void handle_request(const std::shared_ptr<Connection>& conn, const std::string& line);
  void submit_request(const std::shared_ptr<Connection>& conn, WireRequest&& request,
                      const std::string& raw_line);
  /// on_done of every accepted job: writes THE terminal frame (even to a
  /// dead peer — the invariant is counted, not best-effort) and retires
  /// the job from the drain count.
  void deliver_result(const std::shared_ptr<Connection>& conn, const std::string& tag,
                      const JobTicket& ticket, const MapJobResult& result);
  /// Cancels every live job of the connection and forgets its client
  /// state (disconnect path). Idempotent.
  void abandon_connection(const std::shared_ptr<Connection>& conn);
  /// Body of the drainer thread: waits for outstanding_ to hit zero, then
  /// runs the teardown (bye frames, thread joins, socket cleanup) and
  /// flips drained_.
  void drain_main();
  /// Advisory backoff for overloaded answers: backlog scaled by the
  /// exponentially-smoothed job wall time, clamped to the options.
  [[nodiscard]] std::int64_t retry_hint_ms() const;
  void note_wall_ms(double wall_ms);
  [[nodiscard]] std::string build_stats_frame() const;
  void log_line(const std::string& text) const;

  /// Durability is on when either the journal or the cache is configured;
  /// fingerprints are computed (and echoed on frames) only then, so plain
  /// daemons keep byte-identical wire output.
  [[nodiscard]] bool durable() const noexcept {
    return journal_ != nullptr || cache_.enabled();
  }
  /// Constructor tail when journal_dir is set: scans the recovered
  /// records, warms the cache from journaled ok results, and re-submits
  /// every accepted-but-unfinished request through the normal scheduler.
  void recover_from_journal();
  void replay_entry(const JournalEntry& entry);
  /// Appends a terminal record and, when every journaled job is terminal
  /// and the segment is large, compacts. Caller holds journal_mutex_.
  void journal_result_locked(const JobTicket& ticket, const ResultFrame& frame,
                             bool cached);
  void maybe_compact_locked();

  ServerOptions options_;
  std::unique_ptr<MapService> service_;
  std::string socket_path_;
  int listen_fd_ = -1;

  /// Durability state. journal_mutex_ serializes the append/pending/
  /// compact protocol (lock order: connection -> journal; the journal's
  /// own mutex nests innermost). journal_pending_ counts journaled jobs
  /// whose terminal record is not yet written — compaction requires zero.
  std::unique_ptr<Journal> journal_;
  ResultCache cache_;
  mutable std::mutex journal_mutex_;
  std::int64_t journal_pending_ = 0;
  std::atomic<std::uint64_t> next_jid_{1};
  /// Synthetic connection owning replayed jobs: its peer is gone by
  /// definition, so frames are counted but written nowhere.
  std::shared_ptr<Connection> recovery_conn_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_cancel_{false};
  /// Jobs accepted but not yet terminal — drain waits for zero.
  std::atomic<std::int64_t> outstanding_{0};
  /// EWMA of completed-job wall time, in microseconds (atomic for the
  /// lock-free retry hint).
  std::atomic<std::int64_t> ewma_wall_us_{0};

  mutable std::mutex log_mutex_;  // serializes log sink lines only
  mutable std::mutex mutex_;  // connections_, threads_, stats_, drain cv
  std::condition_variable drain_cv_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> threads_;  // accept + per-connection readers
  std::thread drainer_;  // spawned once by the winning request_drain
  std::uint64_t next_client_id_ = 1;
  ServerStats stats_;
  bool drained_ = false;  // the drainer finished the teardown
};

}  // namespace mimdmap::serve
