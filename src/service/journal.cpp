#include "service/journal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "cli/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/wire.hpp"

namespace mimdmap::serve {
namespace {

/// Registry instruments for the durability layer, resolved once.
struct JournalMetrics {
  obs::Counter& appends = obs::registry().counter("mimdmap_journal_appends_total");
  obs::Counter& fsyncs = obs::registry().counter("mimdmap_journal_fsyncs_total");
  obs::Counter& recovered =
      obs::registry().counter("mimdmap_journal_recovered_records_total");
  obs::Counter& torn_bytes =
      obs::registry().counter("mimdmap_journal_torn_tail_bytes_total");
  obs::Counter& repaired =
      obs::registry().counter("mimdmap_journal_repaired_records_total");
  obs::Counter& rotations = obs::registry().counter("mimdmap_journal_rotations_total");
};

JournalMetrics& journal_metrics() {
  static JournalMetrics metrics;
  return metrics;
}

constexpr const char* kSegmentPrefix = "wal-";
constexpr const char* kSegmentSuffix = ".log";

[[nodiscard]] std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

[[nodiscard]] std::uint32_t read_le32(const unsigned char* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

void write_le32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

[[nodiscard]] std::string slurp_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("journal: cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void write_all(int fd, const char* data, std::size_t size, const std::string& what) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("journal: write(" + what + "): " + std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint32_t journal_crc32(const void* data, std::size_t size) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

FsyncPolicy parse_fsync_policy(const std::string& text) {
  if (text == "always") return FsyncPolicy::kAlways;
  if (text == "batch") return FsyncPolicy::kBatch;
  if (text == "none") return FsyncPolicy::kNone;
  throw std::invalid_argument("fsync policy must be always, batch, or none (got '" +
                              text + "')");
}

const char* to_string(FsyncPolicy policy) noexcept {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kNone:
      return "none";
  }
  return "unknown";
}

std::string encode_entry(const JournalEntry& entry) {
  std::ostringstream os;
  os << "type=" << (entry.kind == JournalEntry::Kind::kAccepted ? "accepted" : "result")
     << " jid=" << entry.jid;
  if (!entry.id.empty()) os << " id=" << escape(entry.id);
  if (!entry.fingerprint.empty()) os << " fingerprint=" << escape(entry.fingerprint);
  if (entry.client != 0) os << " client=" << entry.client;
  if (entry.kind == JournalEntry::Kind::kAccepted) {
    os << " request=" << escape(entry.request);
    return os.str();
  }
  os << " status=" << escape(entry.status) << " total=" << entry.total
     << " lower-bound=" << entry.lower_bound << " pct=" << entry.pct
     << " trials=" << entry.trials << " wall-ms=" << entry.wall_ms
     << " lanes=" << entry.lanes;
  if (!entry.error.empty()) os << " error=" << escape(entry.error);
  if (entry.replayed) os << " replayed=1";
  if (entry.cached) os << " cached=1";
  return os.str();
}

std::optional<JournalEntry> decode_entry(const std::string& payload) {
  std::map<std::string, std::string> kv;
  try {
    kv = cli::parse_manifest_line(payload, 0);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const auto get = [&kv](const char* key) -> std::string {
    const auto it = kv.find(key);
    return it == kv.end() ? std::string() : it->second;
  };
  JournalEntry entry;
  const std::string type = get("type");
  if (type == "accepted") {
    entry.kind = JournalEntry::Kind::kAccepted;
  } else if (type == "result") {
    entry.kind = JournalEntry::Kind::kResult;
  } else {
    return std::nullopt;
  }
  try {
    entry.jid = cli::manifest_seed(kv, "jid", 0, 0);
    entry.client = cli::manifest_seed(kv, "client", 0, 0);
    entry.id = unescape(get("id"));
    entry.fingerprint = unescape(get("fingerprint"));
    if (entry.kind == JournalEntry::Kind::kAccepted) {
      if (!kv.count("request")) return std::nullopt;
      entry.request = unescape(kv.at("request"));
      return entry;
    }
    entry.status = unescape(get("status"));
    if (entry.status.empty()) return std::nullopt;
    entry.total = cli::manifest_int(kv, "total", 0, 0);
    entry.lower_bound = cli::manifest_int(kv, "lower-bound", 0, 0);
    entry.pct = cli::manifest_int(kv, "pct", 0, 0);
    entry.trials = cli::manifest_int(kv, "trials", 0, 0);
    entry.lanes = static_cast<int>(cli::manifest_int(kv, "lanes", 0, 0));
    entry.replayed = cli::manifest_bool(kv, "replayed");
    entry.cached = cli::manifest_bool(kv, "cached");
    const std::string wall = get("wall-ms");
    if (!wall.empty()) {
      char* end = nullptr;
      const double value = std::strtod(wall.c_str(), &end);
      if (end != nullptr && *end == '\0') entry.wall_ms = value;
    }
    entry.error = unescape(get("error"));
  } catch (const std::exception&) {
    return std::nullopt;  // malformed numerics — a record we refuse, not a crash
  }
  return entry;
}

Journal::Journal(std::string dir, FsyncPolicy policy, bool repair)
    : dir_(std::move(dir)), policy_(policy) {
  if (dir_.empty()) throw std::invalid_argument("journal: empty directory path");
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    throw std::runtime_error("journal: mkdir(" + dir_ + "): " + std::strerror(errno));
  }
  scan_existing(repair);
}

Journal::~Journal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    if (policy_ != FsyncPolicy::kNone && unsynced_appends_ > 0) {
      (void)::fsync(fd_);
    }
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Journal::segment_path(std::uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%06llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(seq), kSegmentSuffix);
  return dir_ + "/" + name;
}

void Journal::sync_dir() const {
  // Directory fsync makes segment creation/removal itself durable; best
  // effort (some filesystems refuse O_RDONLY directory fsync).
  const int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

void Journal::open_segment_locked(std::uint64_t seq, bool truncate_existing) {
  if (fd_ >= 0) ::close(fd_);
  const std::string path = segment_path(seq);
  int flags = O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC;
  if (truncate_existing) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0666);
  if (fd_ < 0) {
    throw std::runtime_error("journal: open(" + path + "): " + std::strerror(errno));
  }
  seq_ = seq;
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  segment_bytes_ = end > 0 ? static_cast<std::uint64_t>(end) : 0;
}

void Journal::scan_existing(bool repair) {
  std::vector<std::uint64_t> seqs;
  if (DIR* d = ::opendir(dir_.c_str())) {
    while (const dirent* ent = ::readdir(d)) {
      const std::string name = ent->d_name;
      if (name.size() <= std::strlen(kSegmentPrefix) + std::strlen(kSegmentSuffix)) {
        continue;
      }
      if (name.rfind(kSegmentPrefix, 0) != 0) continue;
      if (name.compare(name.size() - std::strlen(kSegmentSuffix),
                       std::string::npos, kSegmentSuffix) != 0) {
        continue;
      }
      const std::string digits = name.substr(
          std::strlen(kSegmentPrefix),
          name.size() - std::strlen(kSegmentPrefix) - std::strlen(kSegmentSuffix));
      if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) {
        continue;
      }
      seqs.push_back(std::strtoull(digits.c_str(), nullptr, 10));
    }
    ::closedir(d);
  } else {
    throw std::runtime_error("journal: opendir(" + dir_ + "): " + std::strerror(errno));
  }
  std::sort(seqs.begin(), seqs.end());

  std::lock_guard<std::mutex> lock(mutex_);
  bool stop_after_repair = false;
  for (std::size_t si = 0; si < seqs.size() && !stop_after_repair; ++si) {
    const bool last_segment = si + 1 == seqs.size();
    const std::string path = segment_path(seqs[si]);
    const std::string data = slurp_file(path);
    std::size_t offset = 0;
    while (offset < data.size()) {
      const std::size_t remaining = data.size() - offset;
      const auto* bytes =
          reinterpret_cast<const unsigned char*>(data.data()) + offset;
      std::uint32_t length = 0;
      bool bad = false;         // structurally bad record starting here
      bool reaches_eof = true;  // the bad extent runs to the physical tail
      if (remaining < 8) {
        bad = true;
      } else {
        length = read_le32(bytes);
        if (length > kMaxRecordBytes) {
          bad = true;
          reaches_eof = true;  // length is garbage; extent unknowable
        } else if (remaining < 8 + static_cast<std::size_t>(length)) {
          bad = true;
        } else {
          const std::uint32_t want = read_le32(bytes + 4);
          const std::uint32_t got = journal_crc32(data.data() + offset + 8, length);
          if (want != got) {
            bad = true;
            reaches_eof = offset + 8 + length >= data.size();
          }
        }
      }
      if (!bad) {
        recovered_.emplace_back(data.data() + offset + 8, length);
        ++stats_.recovered_records;
        journal_metrics().recovered.inc();
        offset += 8 + length;
        continue;
      }
      if (last_segment && reaches_eof) {
        // Torn tail: the daemon died mid-append. Truncate and move on.
        const std::uint64_t torn = data.size() - offset;
        if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
          throw std::runtime_error("journal: truncate(" + path +
                                   "): " + std::strerror(errno));
        }
        stats_.torn_tail_bytes += torn;
        journal_metrics().torn_bytes.add(static_cast<std::int64_t>(torn));
        break;
      }
      if (!repair) {
        throw JournalError("journal: corrupt record in " + path + " at offset " +
                           std::to_string(offset) +
                           " (re-run with --journal-repair to truncate it)");
      }
      // Repair: keep the intact prefix, drop this record, the rest of the
      // segment, and every later segment — a conservative, auditable cut.
      if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
        throw std::runtime_error("journal: truncate(" + path +
                                 "): " + std::strerror(errno));
      }
      for (std::size_t di = si + 1; di < seqs.size(); ++di) {
        (void)::unlink(segment_path(seqs[di]).c_str());
      }
      ++stats_.repaired_records;
      journal_metrics().repaired.inc();
      seqs.resize(si + 1);
      stop_after_repair = true;
      break;
    }
  }
  sync_dir();
  open_segment_locked(seqs.empty() ? 1 : seqs.back(), false);
}

void Journal::append(const std::string& payload) {
  std::string record;
  record.reserve(payload.size() + 8);
  write_le32(record, static_cast<std::uint32_t>(payload.size()));
  write_le32(record, journal_crc32(payload.data(), payload.size()));
  record += payload;

  std::lock_guard<std::mutex> lock(mutex_);
  write_all(fd_, record.data(), record.size(), segment_path(seq_));
  segment_bytes_ += record.size();
  ++stats_.appends;
  ++unsynced_appends_;
  journal_metrics().appends.inc();
  if (policy_ == FsyncPolicy::kAlways ||
      (policy_ == FsyncPolicy::kBatch && unsynced_appends_ >= kBatchAppends)) {
    fsync_locked();
  }
}

void Journal::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (policy_ != FsyncPolicy::kNone && unsynced_appends_ > 0) fsync_locked();
}

void Journal::fsync_locked() {
  if (fd_ < 0) return;
  if (::fsync(fd_) != 0 && errno != EINVAL && errno != EROFS) {
    throw std::runtime_error("journal: fsync(" + segment_path(seq_) +
                             "): " + std::strerror(errno));
  }
  unsynced_appends_ = 0;
  ++stats_.fsyncs;
  journal_metrics().fsyncs.inc();
}

void Journal::compact(const std::vector<std::string>& live) {
  obs::Span span("journal_compact", "serve", "live_records",
                 static_cast<std::int64_t>(live.size()));
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t old_seq = seq_;
  open_segment_locked(seq_ + 1, /*truncate_existing=*/true);
  for (const std::string& payload : live) {
    std::string record;
    record.reserve(payload.size() + 8);
    write_le32(record, static_cast<std::uint32_t>(payload.size()));
    write_le32(record, journal_crc32(payload.data(), payload.size()));
    record += payload;
    write_all(fd_, record.data(), record.size(), segment_path(seq_));
    segment_bytes_ += record.size();
  }
  if (policy_ != FsyncPolicy::kNone) fsync_locked();
  // Old segments disappear only after the replacement is durable.
  for (std::uint64_t seq = 1; seq <= old_seq; ++seq) {
    (void)::unlink(segment_path(seq).c_str());
  }
  sync_dir();
  ++stats_.rotations;
  journal_metrics().rotations.inc();
}

std::uint64_t Journal::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segment_bytes_;
}

JournalStats Journal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mimdmap::serve
