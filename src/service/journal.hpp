// Write-ahead request journal of the mapping daemon (DESIGN.md section 19).
//
// The serve daemon's durability layer: every accepted submit is appended to
// an on-disk log BEFORE the client sees `event=accepted`, and every terminal
// result is appended before (well, atomically around) its `event=result`
// frame. After a crash (`kill -9`, OOM, power loss) the restarted daemon
// replays the log: accepted-but-unfinished requests re-enter the normal
// scheduler and produce terminal results marked `replayed=1`, and journaled
// ok results warm the fingerprint result cache — no accepted job is ever
// silently lost.
//
// Record format (binary framing over the text wire encoding):
//
//   [u32 length LE] [u32 crc32(payload) LE] [payload bytes]
//
// The payload is ONE line of the existing key=value wire grammar (the same
// fuzzed manifest tokenizer, values percent-escaped with serve::escape), so
// the journal inherits the protocol's parsing and fuzz coverage:
//
//   type=accepted jid=7 id=alpha client=3 fingerprint=1f2e... request=<esc>
//   type=result   jid=7 id=alpha fingerprint=1f2e... status=ok total=120 ...
//
// Crash-consistency rules on open:
//  * a record that runs past the end of the LAST segment (incomplete
//    header, short payload, or a CRC mismatch on the physically final
//    record) is a torn tail from a mid-write crash: silently truncated.
//  * any other bad record (CRC mismatch, absurd length, mid-file) is
//    corruption: the constructor throws JournalError unless `repair` is
//    set, in which case the segment is truncated at the bad record, later
//    segments are dropped, and recovery proceeds with the intact prefix.
//
// Segments are `wal-<seq>.log` files inside the journal directory. Once
// every journaled job is terminal the server compacts: live state (cached
// ok results) is rewritten into a fresh segment and the old ones are
// unlinked, so the journal's steady-state size tracks the cache, not the
// daemon's lifetime traffic.
//
// Fsync policy trades durability for append latency:
//   always — fsync after every append (no accepted job lost, ever)
//   batch  — fsync every kBatchAppends appends and on flush/compact/close
//   none   — rely on the OS page cache (crash may lose the tail)
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace mimdmap::serve {

enum class FsyncPolicy : std::uint8_t { kAlways, kBatch, kNone };

/// Parses "always" | "batch" | "none"; throws std::invalid_argument.
[[nodiscard]] FsyncPolicy parse_fsync_policy(const std::string& text);
[[nodiscard]] const char* to_string(FsyncPolicy policy) noexcept;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `size` bytes. Table
/// based, self-contained — the journal must not grow a zlib dependency.
[[nodiscard]] std::uint32_t journal_crc32(const void* data, std::size_t size) noexcept;

/// One decoded journal record. `kAccepted` records carry the original
/// submit line (re-parseable by parse_request); `kResult` records carry
/// the terminal frame fields so recovery can warm the result cache and
/// close the accepted promise without re-running anything.
struct JournalEntry {
  enum class Kind : std::uint8_t { kAccepted, kResult };
  Kind kind = Kind::kAccepted;
  /// Server-assigned journal job id: unique across clients (client tags
  /// are only unique per connection), pairs accepted <-> result records.
  std::uint64_t jid = 0;
  std::string id;           // client-visible job tag
  std::string fingerprint;  // canonical request fingerprint (wire.hpp)
  std::uint64_t client = 0; // originating client id (diagnostics only)
  std::string request;      // kAccepted: the original submit line, verbatim

  // kResult fields (mirror wire::ResultFrame).
  std::string status;
  std::int64_t total = 0;
  std::int64_t lower_bound = 0;
  std::int64_t pct = 0;
  std::int64_t trials = 0;
  double wall_ms = 0.0;
  int lanes = 0;
  std::string error;
  bool replayed = false;
  bool cached = false;
};

/// Entry -> one key=value payload line (no trailing newline).
[[nodiscard]] std::string encode_entry(const JournalEntry& entry);
/// Payload line -> entry. Returns nullopt on anything malformed — decoding
/// must never throw or crash, whatever the fuzzer left on disk.
[[nodiscard]] std::optional<JournalEntry> decode_entry(const std::string& payload);

struct JournalStats {
  std::uint64_t appends = 0;          // records appended this process
  std::uint64_t fsyncs = 0;
  std::uint64_t recovered_records = 0;  // CRC-valid records scanned at open
  std::uint64_t skipped_records = 0;    // CRC-valid but undecodable payloads
  std::uint64_t torn_tail_bytes = 0;    // silently truncated at open
  std::uint64_t repaired_records = 0;   // dropped by --journal-repair
  std::uint64_t rotations = 0;          // compactions
};

/// Corrupt non-tail record found at open without repair enabled.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only CRC-framed record log over one directory of segments.
/// Thread-safe: append/flush/compact serialize on an internal mutex.
class Journal {
 public:
  /// Opens (creating the directory if needed), scans existing segments,
  /// truncates a torn tail, and throws JournalError on a corrupt non-tail
  /// record unless `repair` truncates it away. After construction,
  /// recovered() holds every surviving payload in append order.
  Journal(std::string dir, FsyncPolicy policy, bool repair);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one payload record and applies the fsync policy. Throws
  /// std::runtime_error on IO failure.
  void append(const std::string& payload);

  /// Forces any batched writes to disk (no-op under kNone).
  void flush();

  /// Rewrites the journal as one fresh segment containing exactly `live`
  /// (the warm-cache state worth keeping) and unlinks all old segments.
  /// Callers must ensure no journaled job is still in flight.
  void compact(const std::vector<std::string>& live);

  /// Payloads recovered at open, in append order.
  [[nodiscard]] const std::vector<std::string>& recovered() const noexcept {
    return recovered_;
  }

  /// Bytes in the current (appendable) segment.
  [[nodiscard]] std::uint64_t bytes() const;

  [[nodiscard]] JournalStats stats() const;
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Records per fsync under FsyncPolicy::kBatch.
  static constexpr std::uint64_t kBatchAppends = 32;
  /// Sanity bound on one record's payload; larger lengths are corruption.
  static constexpr std::uint32_t kMaxRecordBytes = 16u * 1024 * 1024;

 private:
  [[nodiscard]] std::string segment_path(std::uint64_t seq) const;
  void open_segment_locked(std::uint64_t seq, bool truncate_existing);
  void scan_existing(bool repair);
  void fsync_locked();
  void sync_dir() const;

  std::string dir_;
  FsyncPolicy policy_;
  mutable std::mutex mutex_;
  int fd_ = -1;                 // current segment, O_APPEND
  std::uint64_t seq_ = 1;       // current segment sequence number
  std::uint64_t segment_bytes_ = 0;
  std::uint64_t unsynced_appends_ = 0;
  std::vector<std::string> recovered_;
  JournalStats stats_;
};

}  // namespace mimdmap::serve
