// Fault-injection harness for chaos testing the serving core.
//
// The service's fault-tolerance claims (one terminal status per job, no
// deadlock, no poisoned runners) are only worth what the tests can throw
// at them. This harness plants named failure points inside the serving
// path — deferred build(), the mapper body, the topology-cache fill, a
// slow-runner stall — and arms them either programmatically
// (set_fault_config, used by tests/chaos_test.cpp) or from the
// MIMDMAP_FAULT environment variable, e.g.
//
//   MIMDMAP_FAULT="build=0.1,mapper=0.05,topo-alloc=0.02,slow-ms=3,seed=7"
//
// Each probability is per-opportunity in [0, 1]. Draws come from one
// process-wide counter-based stream (seeded, lock-free), so a given seed
// yields a reproducible fault schedule for a fixed interleaving of
// opportunities. When no fault is armed — the production configuration —
// every hook is a single relaxed atomic load.
#pragma once

#include <cstdint>
#include <string>

namespace mimdmap {

struct FaultConfig {
  /// P(throw std::runtime_error) at the deferred-build site in run_map_job.
  double build_throw = 0.0;
  /// P(throw std::runtime_error) in the mapper body, after the engine is up.
  double mapper_throw = 0.0;
  /// P(throw std::bad_alloc) in the TopologyCache fill path.
  double topo_alloc_fail = 0.0;
  /// Stall each runner this long at job start (widens cancellation races).
  int slow_runner_ms = 0;
  /// Seed of the process-wide draw stream.
  std::uint64_t seed = 0x5eed;

  [[nodiscard]] bool any() const noexcept {
    return build_throw > 0.0 || mapper_throw > 0.0 || topo_alloc_fail > 0.0 ||
           slow_runner_ms > 0;
  }
};

/// Installs `config` process-wide and returns the previous one. Resets the
/// draw stream to config.seed. Tests install, run, then restore {}.
FaultConfig set_fault_config(const FaultConfig& config);

/// The active configuration (after env overlay, if any).
[[nodiscard]] FaultConfig fault_config();

/// True iff any fault is armed — the one-load fast path every hook checks
/// first. The first call parses MIMDMAP_FAULT (once per process).
[[nodiscard]] bool fault_injection_enabled() noexcept;

/// Parses a MIMDMAP_FAULT-style spec ("key=value,key=value"). Throws
/// std::invalid_argument on malformed specs. Exposed for tests.
[[nodiscard]] FaultConfig parse_fault_spec(const std::string& spec);

// -- Hook sites (no-ops unless armed) ------------------------------------

/// Deferred-build site: may throw std::runtime_error("fault: build").
void fault_point_build();
/// Mapper body: may throw std::runtime_error("fault: mapper").
void fault_point_mapper();
/// Topology-cache fill: may throw std::bad_alloc.
void fault_point_topo_alloc();
/// Runner stall at job start.
void fault_sleep_runner();

}  // namespace mimdmap
