// Idempotent result cache of the mapping daemon (DESIGN.md section 19).
//
// The TopologyCache pattern one level up: completed `status=ok` mapping
// results are kept under their canonical request fingerprint
// (wire.hpp request_fingerprint — problem source + engine options + seed),
// so a repeat submit with an identical fingerprint is answered as a
// `cached=1` terminal frame straight from memory, never touching the pool.
// That is what makes client-side resubmission after a disconnect or an
// `event=overloaded` shed safe AND cheap: retrying an already-computed job
// costs one map lookup.
//
// Bounded LRU with a byte budget: every insert charges the fingerprint plus
// a fixed per-entry footprint, and least-recently-used entries are evicted
// until the budget holds. A budget of 0 disables the cache entirely.
//
// Thread-safe; hit/miss/eviction counts are mirrored into the metrics
// registry (mimdmap_result_cache_*) and into local stats for `op=stats`.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mimdmap::serve {

/// The cacheable portion of a terminal result (mirrors wire::ResultFrame
/// minus the per-delivery fields: id, wall/queue times, flags).
struct CachedResult {
  std::string status;  // always "ok" today; kept for forward compatibility
  std::int64_t total = 0;
  std::int64_t lower_bound = 0;
  std::int64_t pct = 0;
  std::int64_t trials = 0;
  int lanes = 0;
};

struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

class ResultCache {
 public:
  /// max_bytes == 0 disables the cache (lookup always misses without
  /// counting, insert is a no-op).
  explicit ResultCache(std::uint64_t max_bytes);

  [[nodiscard]] bool enabled() const noexcept { return max_bytes_ > 0; }
  [[nodiscard]] std::uint64_t max_bytes() const noexcept { return max_bytes_; }

  /// Hit bumps the entry to most-recently-used.
  [[nodiscard]] std::optional<CachedResult> lookup(const std::string& fingerprint);

  /// Inserts (or refreshes) and evicts LRU entries past the byte budget.
  /// Oversized single entries are simply not retained.
  void insert(const std::string& fingerprint, const CachedResult& result);

  /// All live entries, LRU-first — the warm state a journal compaction
  /// rewrites so the next recovery starts with the cache it had.
  [[nodiscard]] std::vector<std::pair<std::string, CachedResult>> snapshot() const;

  [[nodiscard]] ResultCacheStats stats() const;

  /// Fixed accounting charge per entry on top of the fingerprint bytes
  /// (list/map nodes, the CachedResult itself).
  static constexpr std::uint64_t kEntryOverheadBytes = 160;

 private:
  void evict_to_budget_locked();

  std::uint64_t max_bytes_;
  mutable std::mutex mutex_;
  /// LRU order: front = least recently used, back = most recent.
  std::list<std::pair<std::string, CachedResult>> lru_;
  std::unordered_map<std::string, std::list<std::pair<std::string, CachedResult>>::iterator>
      index_;
  std::uint64_t bytes_ = 0;
  ResultCacheStats stats_;
};

}  // namespace mimdmap::serve
