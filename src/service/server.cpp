#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "cli/manifest.hpp"
#include "cluster/cluster_io.hpp"
#include "cluster/strategies.hpp"
#include "core/eval_engine.hpp"
#include "graph/graph_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topology/factory.hpp"
#include "workload/random_dag.hpp"
#include "workload/structured.hpp"

namespace mimdmap::serve {
namespace {

/// Registry instruments for the wire layer, resolved once. The per-op
/// latency histograms measure handle_request dispatch (parse excluded),
/// i.e. the server-side cost of answering each op.
struct ServerMetrics {
  obs::Counter& frames = obs::registry().counter("mimdmap_server_frames_read_total");
  obs::Counter& parse_errors =
      obs::registry().counter("mimdmap_server_parse_errors_total");
  obs::Counter& accepted = obs::registry().counter("mimdmap_server_accepted_total");
  obs::Counter& terminals =
      obs::registry().counter("mimdmap_server_terminal_frames_total");
  obs::Counter& shed = obs::registry().counter("mimdmap_server_shed_total");
  obs::Counter& disconnect_cancels =
      obs::registry().counter("mimdmap_server_disconnect_cancels_total");
  obs::Counter& connections =
      obs::registry().counter("mimdmap_server_connections_total");
  obs::Histogram& op_submit =
      obs::registry().histogram("mimdmap_wire_request_us", {{"op", "submit"}});
  obs::Histogram& op_cancel =
      obs::registry().histogram("mimdmap_wire_request_us", {{"op", "cancel"}});
  obs::Histogram& op_stats =
      obs::registry().histogram("mimdmap_wire_request_us", {{"op", "stats"}});
  obs::Histogram& op_metrics =
      obs::registry().histogram("mimdmap_wire_request_us", {{"op", "metrics"}});
  obs::Histogram& op_ping =
      obs::registry().histogram("mimdmap_wire_request_us", {{"op", "ping"}});
  obs::Histogram& op_drain =
      obs::registry().histogram("mimdmap_wire_request_us", {{"op", "drain"}});

  obs::Histogram& for_op(RequestOp op) noexcept {
    switch (op) {
      case RequestOp::kSubmit:
        return op_submit;
      case RequestOp::kCancel:
        return op_cancel;
      case RequestOp::kStats:
        return op_stats;
      case RequestOp::kMetrics:
        return op_metrics;
      case RequestOp::kPing:
        return op_ping;
      case RequestOp::kDrain:
        return op_drain;
    }
    return op_ping;
  }
};

ServerMetrics& server_metrics() {
  static ServerMetrics metrics;
  return metrics;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::invalid_argument("cannot open input file '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TaskGraph build_problem(const std::map<std::string, std::string>& kv) {
  const auto gen_it = kv.find("gen");
  if (gen_it == kv.end()) return task_graph_from_text(slurp(kv.at("problem")));
  const auto a = static_cast<NodeId>(cli::manifest_seed(kv, "gen-a", 4, 0));
  const auto b = static_cast<NodeId>(cli::manifest_seed(kv, "gen-b", 4, 0));
  const std::uint64_t seed = cli::manifest_seed(kv, "gen-seed", 1, 0);
  const StructuredWeights weights{{1, 9}, {1, 9}, seed};
  const std::string& kind = gen_it->second;
  if (kind == "diamond") return make_diamond(a, b, weights);
  if (kind == "fork-join") return make_fork_join(a, b, weights);
  if (kind == "pipeline") return make_pipeline(a, weights);
  LayeredDagParams params;
  params.num_tasks = a;
  params.num_layers = b;
  params.node_weight = weights.node_weight;
  params.edge_weight = weights.edge_weight;
  return make_layered_dag(params, seed);
}

/// Deferred per-job materialization: runs on whichever runner executes the
/// job, so a missing file or malformed graph is that job's
/// invalid_input/internal_error result — never a connection error, never a
/// server crash. Pure function of (kv, cache): the cache returns
/// bit-identical tables for a repeated machine, so determinism of the job
/// result is preserved.
MappingInstance build_instance(const std::map<std::string, std::string>& kv,
                               TopologyCache& topo_cache) {
  TaskGraph problem = build_problem(kv);
  SystemGraph machine = kv.count("system") ? system_graph_from_text(slurp(kv.at("system")))
                                           : make_topology(kv.at("spec"));
  const auto get = [&](const std::string& key, const std::string& fallback) {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  };
  Clustering clustering =
      kv.count("clustering")
          ? clustering_from_text(slurp(kv.at("clustering")))
          : make_clustering(get("strategy", "block"), problem, machine.node_count(),
                            cli::manifest_seed(kv, "seed", 1, 0));
  const DistanceModel model = cli::manifest_bool(kv, "weighted-links")
                                  ? DistanceModel::kWeightedLinks
                                  : DistanceModel::kHops;
  std::shared_ptr<const TopologyTables> tables = topo_cache.acquire(machine, model);
  return MappingInstance(std::move(problem), std::move(clustering), std::move(machine),
                         std::move(tables));
}

/// WireRequest -> MapJob with the exact engine-option mapping of the batch
/// manifest (same keys, same defaults — one grammar, one semantics).
MapJob make_job(const WireRequest& request, std::uint64_t client_id, CancelToken cancel,
                TopologyCache* topo_cache) {
  MapJob job;
  const auto kv = std::make_shared<const std::map<std::string, std::string>>(request.kv);
  job.build = [kv, topo_cache] { return build_instance(*kv, *topo_cache); };
  job.options.refine.eval.serialize_within_processor = cli::manifest_bool(*kv, "serialize");
  job.options.refine.eval.link_contention = cli::manifest_bool(*kv, "contention");
  job.options.refine.seed =
      cli::manifest_seed(*kv, "refine-seed", 0x9e3779b97f4a7c15ULL, 0);
  job.options.refine.max_trials = static_cast<std::int64_t>(
      cli::manifest_seed(*kv, "trials", static_cast<std::uint64_t>(-1), 0));
  job.options.critical.propagate_through_intra_cluster =
      cli::manifest_bool(*kv, "extended-critical");
  job.options.multilevel.enabled = cli::manifest_bool(*kv, "multilevel");
  job.options.multilevel.coarsen_target =
      static_cast<NodeId>(cli::manifest_seed(*kv, "coarsen-target", 0, 0));
  job.options.multilevel.level_trials = cli::manifest_int(*kv, "level-trials", -1, 0);
  job.random_trials =
      static_cast<std::int64_t>(cli::manifest_seed(*kv, "random-trials", 0, 0));
  job.random_seed = cli::manifest_seed(*kv, "random-seed", 99, 0);
  job.deadline_ms = request.deadline_ms;
  job.cancel = std::move(cancel);
  job.priority = request.priority;
  job.size_hint = request.size_hint;
  job.client_id = client_id;
  return job;
}

}  // namespace

/// One client. The mutex guards every field below it AND every byte
/// written to write_fd — frames from the reader (accepted, error,
/// overloaded, pong, stats) and from runner threads (result) interleave
/// whole-frame, never mid-line. Closing/teardown also happens under it, so
/// no write can race a close onto a recycled fd number.
struct MapServer::Connection {
  std::uint64_t client_id = 0;
  /// Chained under every job this connection submits: tripping it (peer
  /// vanished, drain kCancel) cancels them all wherever they are.
  CancelSource cancel;

  std::mutex mutex;
  int read_fd = -1;
  int write_fd = -1;
  bool owns_fd = false;  // accepted socket: closed by the server side
  /// Peer unreachable (write failed / reader saw EOF) — all further
  /// writes are dropped. Terminal frames are still COUNTED for the
  /// invariant; they just have nowhere to go.
  bool dead = false;
  bool abandoned = false;   // disconnect cancellation already ran
  bool bye_sent = false;    // drain teardown said goodbye; reader exits
  std::uint64_t auto_tag = 0;
  std::uint64_t accepted = 0;
  std::uint64_t terminals = 0;
  /// Live jobs: tag -> service id. Entries leave in deliver_result.
  std::unordered_map<std::string, MapService::JobId> jobs;

  /// Writes one complete frame; false = peer gone (and dead is latched).
  /// send() with MSG_NOSIGNAL on sockets; plain write() for pipes, where
  /// the CLI ignores SIGPIPE.
  bool write_frame_locked(const std::string& frame) {
    if (dead || write_fd < 0) return false;
    const char* p = frame.data();
    std::size_t left = frame.size();
    while (left > 0) {
      ssize_t n = ::send(write_fd, p, left, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) n = ::write(write_fd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        dead = true;
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  bool write_frame(const std::string& frame) {
    std::lock_guard<std::mutex> lock(mutex);
    return write_frame_locked(frame);
  }

  void close_fds_locked() {
    if (owns_fd && read_fd >= 0) ::close(read_fd);
    read_fd = -1;
    write_fd = -1;
    dead = true;
  }
};

MapServer::MapServer(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cache_bytes) {
  MapServiceOptions service_options = options_.service;
  // The accept loop must never block on a full queue: shed instead. A
  // daemon without an explicit bound still gets one — unbounded admission
  // would turn overload into unbounded memory, the opposite of shedding.
  service_options.admission = AdmissionPolicy::kReject;
  if (service_options.max_queue == 0) service_options.max_queue = 256;
  service_ = std::make_unique<MapService>(std::move(service_options));
  if (!options_.journal_dir.empty()) {
    // Throws JournalError on a corrupt non-tail record unless
    // options_.journal_repair truncates it — refusing to start beats
    // silently serving with holes in the durability story.
    journal_ = std::make_unique<Journal>(options_.journal_dir, options_.journal_fsync,
                                         options_.journal_repair);
    recover_from_journal();
  }
}

MapServer::~MapServer() {
  request_drain(DrainMode::kCancel);
  wait();
  if (drainer_.joinable()) drainer_.join();
}

void MapServer::listen_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unusable socket path '" + socket_path + "'");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(socket_path.c_str());  // stale socket from a crashed daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error("bind(" + socket_path + "): " + std::strerror(saved));
  }
  if (::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error("listen(" + socket_path + "): " + std::strerror(saved));
  }
  listen_fd_ = fd;
  socket_path_ = socket_path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads_.emplace_back([this] { accept_main(); });
  }
  log_line("listening on " + socket_path);
}

void MapServer::accept_main() {
  // Poll with a short timeout instead of blocking in accept(): the drain
  // flag is observed within ~100ms without signals or self-pipes.
  while (!draining_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) continue;
      break;
    }
    if (draining_.load(std::memory_order_acquire)) {
      // Drain raced the accept: one answer, never served.
      const std::string frame = overloaded_frame("-", -1);
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      break;
    }
    auto conn = std::make_shared<Connection>();
    conn->read_fd = fd;
    conn->write_fd = fd;
    conn->owns_fd = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      conn->client_id = next_client_id_++;
      connections_.push_back(conn);
      ++stats_.connections_opened;
      server_metrics().connections.inc();
      threads_.emplace_back([this, conn] { connection_main(conn); });
    }
    log_line("client " + std::to_string(conn->client_id) + " connected");
  }
}

void MapServer::serve_fd(int read_fd, int write_fd) {
  auto conn = std::make_shared<Connection>();
  conn->read_fd = read_fd;
  conn->write_fd = write_fd;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conn->client_id = next_client_id_++;
    connections_.push_back(conn);
    ++stats_.connections_opened;
    server_metrics().connections.inc();
  }
  log_line("client " + std::to_string(conn->client_id) + " connected (fd pair)");
  connection_main(conn);
}

void MapServer::connection_main(const std::shared_ptr<Connection>& conn) {
  FrameReader reader(options_.max_line_bytes);
  char buf[4096];
  bool drain_exit = false;
  bool half_close = false;  // pipe pair: EOF on input is not a disconnect
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    half_close = conn->read_fd != conn->write_fd;
  }
  while (true) {
    int read_fd = -1;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->bye_sent) {
        // Teardown already flushed the last result and said bye — this is
        // a drain exit, NOT a disconnect: the client's jobs (there are
        // none left) must not be cancelled and teardown owns the fd.
        drain_exit = true;
        break;
      }
      if (conn->dead) break;  // writes failed: the peer is gone
      read_fd = conn->read_fd;
    }
    pollfd pfd{};
    pfd.fd = read_fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    if ((pfd.revents & POLLNVAL) != 0) break;
    const ssize_t n = ::read(read_fd, buf, sizeof(buf));
    if (n == 0) {
      // EOF. On a duplex socket the peer is gone — disconnect path below.
      // On a distinct read/write pair (stdio) a closed stdin only means
      // "no more requests": live jobs must still flush their results out
      // the write side, so the reader retires WITHOUT abandoning and the
      // caller (cmd_serve) drains.
      if (half_close) {
        if (const std::optional<FrameReader::Line> last = reader.finish()) {
          handle_line(conn, *last);
        }
        drain_exit = true;
        log_line("client " + std::to_string(conn->client_id) +
                 " input closed (write side stays open for results)");
      }
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (const FrameReader::Line& line : reader.feed(buf, static_cast<std::size_t>(n))) {
      handle_line(conn, line);
    }
  }
  if (!drain_exit) {
    // Disconnect: a truncated trailing frame must not execute half a
    // request — it is reported (to a peer that likely can't hear) and
    // dropped; then every live job of this client is cancelled.
    if (const std::optional<FrameReader::Line> last = reader.finish()) {
      handle_line(conn, *last);
    }
    abandon_connection(conn);
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->close_fds_locked();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.connections_closed;
      connections_.erase(
          std::remove_if(connections_.begin(), connections_.end(),
                         [&](const std::shared_ptr<Connection>& c) { return c == conn; }),
          connections_.end());
    }
    drain_cv_.notify_all();
  }
  log_line("client " + std::to_string(conn->client_id) +
           (drain_exit ? " released (drain)" : " disconnected"));
}

void MapServer::handle_line(const std::shared_ptr<Connection>& conn,
                            const FrameReader::Line& line) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.frames_read;
  }
  server_metrics().frames.inc();
  if (!line.ok()) {
    const char* reason = line.overflow  ? "line exceeds the frame byte cap"
                         : line.reject ? "frame contains NUL bytes"
                                       : "truncated frame at end of stream";
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.parse_errors;
    }
    server_metrics().parse_errors.inc();
    conn->write_frame(error_frame("", reason));
    return;
  }
  // Blank lines and #-comments are free (humans drive this over nc/socat).
  const std::size_t first = line.text.find_first_not_of(" \t");
  if (first == std::string::npos || line.text[first] == '#') return;
  handle_request(conn, line.text);
}

void MapServer::handle_request(const std::shared_ptr<Connection>& conn,
                               const std::string& line) {
  WireRequest request;
  try {
    request = parse_request(line);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.parse_errors;
    }
    server_metrics().parse_errors.inc();
    // Best effort: echo the id when one survives tokenization, so the
    // client can match the reject to its request.
    std::string id;
    try {
      const auto kv = cli::parse_manifest_line(line, 0);
      const auto it = kv.find("id");
      if (it != kv.end()) id = escape(it->second);
    } catch (...) {
    }
    conn->write_frame(error_frame(id, e.what()));
    return;
  }

  // Per-op wire latency: dispatch cost of a validated request (submit
  // measures admission + accepted-frame, not job execution).
  const auto op_t0 = std::chrono::steady_clock::now();
  const auto record_op = [&] {
    server_metrics().for_op(request.op).record(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - op_t0)
            .count());
  };
  switch (request.op) {
    case RequestOp::kSubmit:
      submit_request(conn, std::move(request), line);
      record_op();
      return;
    case RequestOp::kCancel: {
      MapService::JobId job_id = 0;
      bool known = false;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        const auto it = conn->jobs.find(request.id);
        if (it != conn->jobs.end()) {
          known = true;
          job_id = it->second;
        }
      }
      if (!known) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.parse_errors;
      }
      if (known) {
        // No ack frame: the job's terminal result (status=cancelled, or
        // whatever beat the cancel) IS the answer — anything else would
        // break exactly-one-terminal-frame. Runs outside the connection
        // lock because a queued job delivers synchronously through
        // on_done, which takes it.
        (void)service_->cancel(job_id);
      } else {
        conn->write_frame(error_frame(request.id, "unknown or already finished job id"));
      }
      record_op();
      return;
    }
    case RequestOp::kStats:
      conn->write_frame(build_stats_frame());
      record_op();
      return;
    case RequestOp::kMetrics:
      conn->write_frame(metrics_frame(obs::registry().render_prometheus()));
      record_op();
      return;
    case RequestOp::kPing:
      conn->write_frame(pong_frame());
      record_op();
      return;
    case RequestOp::kDrain:
      conn->write_frame(draining_frame());
      request_drain(request.drain_finish ? DrainMode::kFinish : DrainMode::kCancel);
      record_op();
      return;
  }
}

void MapServer::submit_request(const std::shared_ptr<Connection>& conn,
                               WireRequest&& request, const std::string& raw_line) {
  // The fingerprint (which may hash problem files) is computed before any
  // lock — it is pure input work, and only when durability wants it.
  JobTicket ticket;
  if (durable()) ticket.fingerprint = request_fingerprint(request.kv);

  MapJob job = make_job(request, conn->client_id, conn->cancel.token(),
                        &service_->topology_cache());

  // The lock is held across the admission call AND the accepted frame so
  // no runner can slip a result frame in between (on_done takes this
  // lock). Holding a lock over submit is safe precisely because admission
  // is kReject: it never blocks. Lock order: connection -> service.
  std::unique_lock<std::mutex> lock(conn->mutex);
  const std::string tag =
      request.id.empty() ? "j" + std::to_string(++conn->auto_tag) : request.id;
  if (conn->jobs.count(tag) != 0) {
    {
      std::lock_guard<std::mutex> slock(mutex_);
      ++stats_.parse_errors;
    }
    server_metrics().parse_errors.inc();
    conn->write_frame_locked(error_frame(tag, "duplicate job id"));
    return;
  }
  job.name = tag;

  // Order matters: outstanding is raised BEFORE the drain check, and
  // wait() reads it AFTER raising the drain flag (both seq_cst). Either
  // this submit sees the flag and sheds, or wait() sees the job and waits
  // for its terminal frame — an accepted job can never slip past teardown.
  outstanding_.fetch_add(1);
  if (draining_.load()) {
    outstanding_.fetch_sub(1);
    {
      std::lock_guard<std::mutex> slock(mutex_);
      ++stats_.shed;
    }
    server_metrics().shed.inc();
    conn->write_frame_locked(overloaded_frame(tag, -1));
    drain_cv_.notify_all();
    return;
  }

  // Idempotent repeat: an identical fingerprint with a cached ok result is
  // answered accepted + cached=1 result immediately — the pool, the queue
  // and the scheduler are never touched. Both frames ride the same lock
  // hold, so nothing can interleave between promise and redemption.
  if (!ticket.fingerprint.empty()) {
    if (const std::optional<CachedResult> hit = cache_.lookup(ticket.fingerprint)) {
      ticket.jid = next_jid_.fetch_add(1);
      ResultFrame frame;
      frame.id = tag;
      frame.status = hit->status;
      frame.total = hit->total;
      frame.lower_bound = hit->lower_bound;
      frame.pct = hit->pct;
      frame.trials = hit->trials;
      frame.lanes = hit->lanes;
      frame.fingerprint = ticket.fingerprint;
      frame.cached = true;
      if (journal_) {
        // Uniform WAL discipline even for hits: accepted before the
        // accepted frame, result right behind it — a crash between the
        // two replays into another cache hit.
        JournalEntry acc;
        acc.kind = JournalEntry::Kind::kAccepted;
        acc.jid = ticket.jid;
        acc.id = tag;
        acc.fingerprint = ticket.fingerprint;
        acc.client = conn->client_id;
        acc.request = raw_line;
        try {
          std::lock_guard<std::mutex> jlock(journal_mutex_);
          journal_->append(encode_entry(acc));
          ++journal_pending_;
          journal_result_locked(ticket, frame, /*cached=*/true);
        } catch (const std::exception& e) {
          log_line(std::string("journal append failed (serving anyway): ") + e.what());
        }
      }
      ++conn->accepted;
      ++conn->terminals;
      {
        std::lock_guard<std::mutex> slock(mutex_);
        ++stats_.accepted;
        ++stats_.terminal_frames;
        ++stats_.cached_results;
      }
      server_metrics().accepted.inc();
      server_metrics().terminals.inc();
      outstanding_.fetch_sub(1);
      (void)conn->write_frame_locked(accepted_frame(
          tag, ticket.jid, service_->stats().queue_depth, ticket.fingerprint));
      (void)conn->write_frame_locked(result_frame(frame));
      drain_cv_.notify_all();
      return;
    }
  }

  MapService::JobId job_id = 0;
  try {
    std::shared_ptr<Connection> self = conn;
    std::string tag_copy = tag;
    if (journal_) ticket.jid = next_jid_.fetch_add(1);
    (void)service_->submit(std::move(job), &job_id,
                           [this, self = std::move(self), tag_copy = std::move(tag_copy),
                            ticket](const MapJobResult& result) {
                             deliver_result(self, tag_copy, ticket, result);
                           });
  } catch (const AdmissionRejectedError&) {
    outstanding_.fetch_sub(1);
    {
      std::lock_guard<std::mutex> slock(mutex_);
      ++stats_.shed;
    }
    server_metrics().shed.inc();
    // Deterministic per-client jitter: synchronized clients shed in the
    // same overload event back off at spread-out times instead of
    // re-stampeding in lockstep (the hint itself is backlog-global).
    conn->write_frame_locked(overloaded_frame(
        tag, jittered_retry_ms(retry_hint_ms(), conn->client_id, options_.min_retry_ms,
                               options_.max_retry_ms)));
    return;
  } catch (const std::exception& e) {
    // Submitter-contract violations (no instance/builder) can't happen —
    // make_job always sets build — but captured anyway: one error frame,
    // the connection lives.
    outstanding_.fetch_sub(1);
    {
      std::lock_guard<std::mutex> slock(mutex_);
      ++stats_.parse_errors;
    }
    server_metrics().parse_errors.inc();
    conn->write_frame_locked(error_frame(tag, e.what()));
    return;
  }

  if (journal_) {
    // WAL: the accepted record is durable (per policy) BEFORE the client
    // sees event=accepted. The job may already be running, but its
    // on_done blocks on conn->mutex (held here), so the result record
    // cannot precede this accepted record in the journal.
    JournalEntry acc;
    acc.kind = JournalEntry::Kind::kAccepted;
    acc.jid = ticket.jid;
    acc.id = tag;
    acc.fingerprint = ticket.fingerprint;
    acc.client = conn->client_id;
    acc.request = raw_line;
    try {
      std::lock_guard<std::mutex> jlock(journal_mutex_);
      journal_->append(encode_entry(acc));
      ++journal_pending_;
    } catch (const std::exception& e) {
      log_line(std::string("journal append failed (serving anyway): ") + e.what());
      ticket.jid = 0;  // its result record would dangle; skip it too
    }
  }

  conn->jobs.emplace(tag, job_id);
  ++conn->accepted;
  {
    std::lock_guard<std::mutex> slock(mutex_);
    ++stats_.accepted;
  }
  server_metrics().accepted.inc();
  conn->write_frame_locked(
      accepted_frame(tag, job_id, service_->stats().queue_depth, ticket.fingerprint));
}

void MapServer::deliver_result(const std::shared_ptr<Connection>& conn,
                               const std::string& tag, const JobTicket& ticket,
                               const MapJobResult& result) {
  note_wall_ms(result.wall_ms);
  ResultFrame frame;
  frame.id = ticket.display_id.empty() ? tag : ticket.display_id;
  frame.status = to_string(result.status);
  frame.total = result.report.total_time();
  frame.lower_bound = result.report.lower_bound;
  frame.pct = result.report.percent_over_lower_bound();
  frame.trials = result.report.refinement_trials;
  frame.wall_ms = result.wall_ms;
  frame.queue_ms = result.queue_ms;
  frame.lanes = result.lanes;
  frame.error = result.error;
  frame.fingerprint = ticket.fingerprint;
  frame.replayed = ticket.replayed;

  // Fill the cache before the frame goes out: a client retrying the same
  // fingerprint right after this result hits. Only clean ok results are
  // idempotent (degraded/cancelled/error outcomes must re-run).
  if (cache_.enabled() && !ticket.fingerprint.empty() &&
      result.status == MapStatus::kOk && result.error.empty()) {
    CachedResult entry;
    entry.status = frame.status;
    entry.total = frame.total;
    entry.lower_bound = frame.lower_bound;
    entry.pct = frame.pct;
    entry.trials = frame.trials;
    entry.lanes = frame.lanes;
    cache_.insert(ticket.fingerprint, entry);
  }
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->jobs.erase(tag);
    ++conn->terminals;
    if (journal_ && ticket.jid != 0) {
      try {
        std::lock_guard<std::mutex> jlock(journal_mutex_);
        journal_result_locked(ticket, frame, /*cached=*/false);
      } catch (const std::exception& e) {
        log_line(std::string("journal append failed (delivering anyway): ") + e.what());
      }
    }
    (void)conn->write_frame_locked(result_frame(frame));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.terminal_frames;
    if (ticket.replayed) ++stats_.replayed;
  }
  server_metrics().terminals.inc();
  outstanding_.fetch_sub(1);
  drain_cv_.notify_all();
}

void MapServer::journal_result_locked(const JobTicket& ticket, const ResultFrame& frame,
                                      bool cached) {
  JournalEntry rec;
  rec.kind = JournalEntry::Kind::kResult;
  rec.jid = ticket.jid;
  rec.id = frame.id;
  rec.fingerprint = ticket.fingerprint;
  rec.status = frame.status;
  rec.total = frame.total;
  rec.lower_bound = frame.lower_bound;
  rec.pct = frame.pct;
  rec.trials = frame.trials;
  rec.wall_ms = frame.wall_ms;
  rec.lanes = frame.lanes;
  rec.error = frame.error;
  rec.replayed = ticket.replayed;
  rec.cached = cached;
  journal_->append(encode_entry(rec));
  if (journal_pending_ > 0) --journal_pending_;
  maybe_compact_locked();
}

void MapServer::maybe_compact_locked() {
  if (journal_pending_ != 0) return;  // an accepted record would be dropped
  if (journal_->bytes() < options_.journal_rotate_bytes) return;
  // Live state worth carrying across the rotation: the cache contents as
  // jid=0 result records, so the next recovery warm-loads the same cache.
  std::vector<std::string> live;
  for (const auto& [fingerprint, cached] : cache_.snapshot()) {
    JournalEntry rec;
    rec.kind = JournalEntry::Kind::kResult;
    rec.jid = 0;
    rec.fingerprint = fingerprint;
    rec.status = cached.status;
    rec.total = cached.total;
    rec.lower_bound = cached.lower_bound;
    rec.pct = cached.pct;
    rec.trials = cached.trials;
    rec.lanes = cached.lanes;
    live.push_back(encode_entry(rec));
  }
  journal_->compact(live);
  log_line("journal compacted (" + std::to_string(live.size()) + " live records)");
}

void MapServer::recover_from_journal() {
  obs::Span span("journal_recover", "serve", "records",
                 static_cast<std::int64_t>(journal_->recovered().size()));

  // One pass over the recovered payloads: pair accepted records with their
  // terminal records by jid, warm the cache from every clean ok result
  // (including jid=0 compaction snapshots), and keep the unfinished
  // accepted records in journal order for replay.
  std::vector<JournalEntry> accepted;
  std::unordered_map<std::uint64_t, std::size_t> accepted_by_jid;
  std::unordered_map<std::uint64_t, bool> done;
  std::uint64_t max_jid = 0;
  std::uint64_t undecodable = 0;
  for (const std::string& payload : journal_->recovered()) {
    const std::optional<JournalEntry> entry = decode_entry(payload);
    if (!entry) {
      ++undecodable;
      continue;
    }
    max_jid = std::max(max_jid, entry->jid);
    if (entry->kind == JournalEntry::Kind::kAccepted) {
      // First record wins: a duplicate jid (hand-edited or replayed
      // journal) must not double-submit the job.
      if (accepted_by_jid.emplace(entry->jid, accepted.size()).second) {
        accepted.push_back(*entry);
      }
    } else {
      if (entry->jid != 0) done[entry->jid] = true;
      if (cache_.enabled() && !entry->fingerprint.empty() && entry->status == "ok" &&
          entry->error.empty()) {
        CachedResult warm;
        warm.status = entry->status;
        warm.total = entry->total;
        warm.lower_bound = entry->lower_bound;
        warm.pct = entry->pct;
        warm.trials = entry->trials;
        warm.lanes = entry->lanes;
        cache_.insert(entry->fingerprint, warm);
      }
    }
  }
  next_jid_.store(max_jid + 1);

  std::vector<const JournalEntry*> todo;
  for (const JournalEntry& entry : accepted) {
    if (done.count(entry.jid) == 0) todo.push_back(&entry);
  }
  {
    std::lock_guard<std::mutex> jlock(journal_mutex_);
    journal_pending_ = static_cast<std::int64_t>(todo.size());
  }
  if (undecodable > 0) {
    log_line("journal recovery: skipped " + std::to_string(undecodable) +
             " undecodable record(s)");
  }
  if (todo.empty()) {
    if (!journal_->recovered().empty()) {
      log_line("journal recovery: all " + std::to_string(accepted.size()) +
               " journaled job(s) already terminal");
    }
    return;
  }

  // Replayed jobs belong to a synthetic connection whose peer is gone by
  // definition: frames are counted for the exactly-one-terminal-frame
  // invariant but written nowhere, and drain teardown accounts for it like
  // any other connection.
  recovery_conn_ = std::make_shared<Connection>();
  recovery_conn_->client_id = 0;
  recovery_conn_->dead = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.push_back(recovery_conn_);
    ++stats_.connections_opened;
  }
  server_metrics().connections.inc();
  log_line("journal recovery: replaying " + std::to_string(todo.size()) +
           " unfinished job(s)");
  for (const JournalEntry* entry : todo) replay_entry(*entry);
}

void MapServer::replay_entry(const JournalEntry& entry) {
  JobTicket ticket;
  ticket.fingerprint = entry.fingerprint;
  ticket.jid = entry.jid;
  ticket.replayed = true;
  ticket.display_id = entry.id;
  // Unique internal tag: two clients may have used the same tag ("j1" is
  // every auto-tagged client's first job). The terminal frame still shows
  // the original tag via display_id.
  const std::string tag = "recover-" + std::to_string(entry.jid);

  const auto fail_inline = [&](const std::string& reason) {
    // The journaled request can no longer run (unparsable after a repair,
    // or admission rejected with no inline fallback). Close its promise
    // with a synthetic internal_error terminal record — the invariant is
    // one terminal per accepted, not one success.
    ResultFrame frame;
    frame.id = ticket.display_id;
    frame.status = "internal_error";
    frame.fingerprint = ticket.fingerprint;
    frame.replayed = true;
    frame.error = reason;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.accepted;
      ++stats_.terminal_frames;
      ++stats_.replayed;
    }
    server_metrics().accepted.inc();
    server_metrics().terminals.inc();
    try {
      std::lock_guard<std::mutex> jlock(journal_mutex_);
      journal_result_locked(ticket, frame, /*cached=*/false);
    } catch (const std::exception& e) {
      log_line(std::string("journal append failed during recovery: ") + e.what());
    }
    log_line("journal recovery: jid " + std::to_string(entry.jid) +
             " closed with internal_error (" + reason + ")");
  };

  WireRequest request;
  try {
    request = parse_request(entry.request);
  } catch (const std::exception& e) {
    fail_inline(std::string("journaled request no longer parses: ") + e.what());
    return;
  }

  // Cache hit during replay: redeem the journaled promise from the cache
  // (an identical-fingerprint job completed before the crash, or the warm
  // load above already has the answer). No pool work, no frame to a peer —
  // just the terminal record that closes the jid.
  if (const std::optional<CachedResult> hit = cache_.lookup(ticket.fingerprint)) {
    ResultFrame frame;
    frame.id = ticket.display_id;
    frame.status = hit->status;
    frame.total = hit->total;
    frame.lower_bound = hit->lower_bound;
    frame.pct = hit->pct;
    frame.trials = hit->trials;
    frame.lanes = hit->lanes;
    frame.fingerprint = ticket.fingerprint;
    frame.cached = true;
    frame.replayed = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.accepted;
      ++stats_.terminal_frames;
      ++stats_.replayed;
      ++stats_.cached_results;
    }
    server_metrics().accepted.inc();
    server_metrics().terminals.inc();
    try {
      std::lock_guard<std::mutex> jlock(journal_mutex_);
      journal_result_locked(ticket, frame, /*cached=*/true);
    } catch (const std::exception& e) {
      log_line(std::string("journal append failed during recovery: ") + e.what());
    }
    return;
  }

  MapJob job = make_job(request, /*client_id=*/0, recovery_conn_->cancel.token(),
                        &service_->topology_cache());
  job.name = tag;
  outstanding_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.accepted;
  }
  server_metrics().accepted.inc();
  std::shared_ptr<Connection> self = recovery_conn_;
  try {
    MapService::JobId job_id = 0;
    (void)service_->submit(std::move(job), &job_id,
                           [this, self, tag, ticket](const MapJobResult& result) {
                             deliver_result(self, tag, ticket, result);
                           });
    std::lock_guard<std::mutex> lock(recovery_conn_->mutex);
    recovery_conn_->jobs.emplace(tag, job_id);
    ++recovery_conn_->accepted;
  } catch (const AdmissionRejectedError&) {
    // A crash backlog larger than the admission queue must still drain:
    // run the job inline on this (startup) thread instead of dropping it.
    MapJob inline_job = make_job(request, /*client_id=*/0, recovery_conn_->cancel.token(),
                                 &service_->topology_cache());
    inline_job.name = tag;
    {
      std::lock_guard<std::mutex> lock(recovery_conn_->mutex);
      ++recovery_conn_->accepted;
    }
    const MapJobResult result = run_map_job(inline_job, service_->pool(),
                                            service_->lane_budget(),
                                            &service_->topology_cache());
    deliver_result(recovery_conn_, tag, ticket, result);
  } catch (const std::exception& e) {
    outstanding_.fetch_sub(1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --stats_.accepted;
    }
    fail_inline(std::string("replay submit failed: ") + e.what());
  }
}

void MapServer::abandon_connection(const std::shared_ptr<Connection>& conn) {
  std::vector<MapService::JobId> live;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->abandoned) return;
    conn->abandoned = true;
    conn->dead = true;  // nothing written to a vanished peer
    live.reserve(conn->jobs.size());
    for (const auto& [tag, id] : conn->jobs) live.push_back(id);
  }
  std::size_t cancelled = 0;
  if (!live.empty()) {
    // Trip the connection source first (running jobs observe it at their
    // next poll), then drain the queued ones — each still produces its
    // one terminal frame, counted against a peer that left.
    conn->cancel.request_cancel();
    for (const MapService::JobId id : live) {
      if (service_->cancel(id)) ++cancelled;
    }
  }
  if (cancelled > 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.disconnect_cancels += cancelled;
    }
    server_metrics().disconnect_cancels.add(cancelled);
  }
  service_->forget_client(conn->client_id);
}

void MapServer::request_drain(DrainMode mode) {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  drain_cancel_.store(mode == DrainMode::kCancel);
  log_line(mode == DrainMode::kCancel ? "drain requested (cancel in-flight)"
                                      : "drain requested (finish in-flight)");
  if (mode == DrainMode::kCancel) {
    std::vector<std::shared_ptr<Connection>> snapshot;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      snapshot = connections_;
    }
    for (const std::shared_ptr<Connection>& conn : snapshot) conn->cancel.request_cancel();
    (void)service_->cancel_all();
  }
  // The winning caller owns spawning the drainer — possibly from a reader
  // thread (op=drain): the drainer later joins that reader, never itself.
  drainer_ = std::thread([this] { drain_main(); });
  drain_cv_.notify_all();
}

void MapServer::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return drained_; });
}

void MapServer::drain_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return outstanding_.load() == 0; });
  std::vector<std::shared_ptr<Connection>> conns = connections_;
  connections_.clear();
  std::vector<std::thread> threads = std::move(threads_);
  threads_.clear();
  stats_.connections_closed += conns.size();
  lock.unlock();

  // Goodbyes go out while readers may still be polling; bye_sent makes
  // them exit (within one poll tick) without the disconnect path, so no
  // spurious cancellation and no frame after bye.
  for (const std::shared_ptr<Connection>& conn : conns) {
    std::lock_guard<std::mutex> clock(conn->mutex);
    (void)conn->write_frame_locked(bye_frame(conn->accepted, conn->terminals));
    conn->bye_sent = true;
    conn->dead = true;
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  for (const std::shared_ptr<Connection>& conn : conns) {
    std::lock_guard<std::mutex> clock(conn->mutex);
    conn->close_fds_locked();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
  }
  log_line("drain complete");
  {
    std::lock_guard<std::mutex> relock(mutex_);
    drained_ = true;
  }
  drain_cv_.notify_all();
}

ServerStats MapServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::int64_t MapServer::retry_hint_ms() const {
  const ServiceStats s = service_->stats();
  const std::int64_t wall_ms =
      std::max<std::int64_t>(1, ewma_wall_us_.load(std::memory_order_relaxed) / 1000);
  const int runners = std::max(1, service_->max_concurrent_jobs());
  const auto backlog = static_cast<std::int64_t>(s.queue_depth) + s.active;
  const std::int64_t hint = backlog * wall_ms / runners;
  return std::clamp(hint, options_.min_retry_ms, options_.max_retry_ms);
}

void MapServer::note_wall_ms(double wall_ms) {
  const auto us = static_cast<std::int64_t>(wall_ms * 1000.0);
  // Lossy under concurrent updates by design — the EWMA feeds an advisory
  // backoff hint, not a correctness decision.
  const std::int64_t prev = ewma_wall_us_.load(std::memory_order_relaxed);
  const std::int64_t next = prev == 0 ? us : (prev * 7 + us) / 8;
  ewma_wall_us_.store(next, std::memory_order_relaxed);
}

std::string MapServer::build_stats_frame() const {
  const ServiceStats s = service_->stats();
  ServerStats server;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    server = stats_;
  }
  std::vector<std::pair<std::string, std::string>> fields;
  const auto add = [&fields](const char* key, auto value) {
    fields.emplace_back(key, std::to_string(value));
  };
  add("connections", server.connections_opened - server.connections_closed);
  add("accepted", server.accepted);
  add("results", server.terminal_frames);
  add("outstanding", outstanding_.load());
  add("shed", server.shed);
  add("parse-errors", server.parse_errors);
  add("disconnect-cancels", server.disconnect_cancels);
  add("queue-depth", s.queue_depth);
  add("queued-size", s.queued_size_hint);
  add("active", s.active);
  add("service-submitted", s.submitted);
  add("service-completed", s.completed);
  add("service-shed", s.shed);
  add("cancelled-queued", s.cancelled_queued);
  add("topo-hits", service_->topology_cache().hits());
  add("topo-misses", service_->topology_cache().misses());
  add("pool-lanes", service_->pool()->lane_limit());
  add("replayed", server.replayed);
  add("cached-results", server.cached_results);
  if (cache_.enabled()) {
    const ResultCacheStats c = cache_.stats();
    add("cache-hits", c.hits);
    add("cache-misses", c.misses);
    add("cache-evictions", c.evictions);
    add("cache-entries", c.entries);
    add("cache-bytes", c.bytes);
  }
  if (journal_) {
    const JournalStats j = journal_->stats();
    std::int64_t pending = 0;
    {
      std::lock_guard<std::mutex> jlock(journal_mutex_);
      pending = journal_pending_;
    }
    add("journal-pending", pending);
    add("journal-appends", j.appends);
    add("journal-recovered", j.recovered_records);
    add("journal-rotations", j.rotations);
    add("journal-bytes", journal_->bytes());
  }
  for (const ServiceStats::PriorityLane& lane : s.priorities) {
    const std::string prefix = "prio" + std::to_string(lane.priority);
    fields.emplace_back(prefix + "-started", std::to_string(lane.started));
    const double avg = lane.started > 0 ? lane.total_wait_ms / static_cast<double>(lane.started)
                                        : 0.0;
    std::ostringstream wait;
    wait << avg << "/" << lane.max_wait_ms;
    fields.emplace_back(prefix + "-wait-ms", wait.str());
  }
  for (const ServiceStats::ClientGauge& client : s.clients) {
    fields.emplace_back("client" + std::to_string(client.client_id) + "-inflight",
                        std::to_string(client.inflight));
  }
  return stats_frame(fields);
}

void MapServer::log_line(const std::string& text) const {
  if (options_.log == nullptr) return;
  std::lock_guard<std::mutex> lock(log_mutex_);
  *options_.log << "serve: " << text << "\n";
  options_.log->flush();
}

}  // namespace mimdmap::serve
