#include "service/wire.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "cli/manifest.hpp"

namespace mimdmap::serve {
namespace {

[[nodiscard]] bool needs_escape(unsigned char c) {
  return c <= 0x20 || c == 0x7f || c == '%' || c == '=';
}

[[nodiscard]] char hex_digit(unsigned v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

[[nodiscard]] int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Keys a submit request may carry: the batch-manifest keys (same engine
/// options, same numeric rules) plus the serve extensions.
const std::set<std::string>& submit_keys() {
  static const std::set<std::string> keys = {
      // manifest family (cli/manifest.cpp known_keys)
      "problem", "system", "spec", "clustering", "strategy", "seed", "name", "trials",
      "refine-seed", "serialize", "contention", "weighted-links", "extended-critical",
      "random-trials", "random-seed", "deadline-ms", "multilevel", "coarsen-target",
      "level-trials",
      // serve extensions
      "op", "id", "priority", "size-hint",
      // generated workloads (no server-side files needed)
      "gen", "gen-a", "gen-b", "gen-seed"};
  return keys;
}

[[noreturn]] void fail(const std::string& what) { throw std::invalid_argument(what); }

/// `id` values travel unescaped inside frames, so they must be clean
/// tokens: non-empty handled by callers; no bytes the framing reserves.
void check_id(const std::string& id) {
  for (const char c : id) {
    if (needs_escape(static_cast<unsigned char>(c))) {
      fail("id contains reserved or control characters");
    }
  }
  if (id.size() > 256) fail("id longer than 256 bytes");
}

}  // namespace

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const auto uc = static_cast<unsigned char>(c);
    if (needs_escape(uc)) {
      out.push_back('%');
      out.push_back(hex_digit(uc >> 4));
      out.push_back(hex_digit(uc & 0xf));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string unescape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      const int hi = hex_value(text[i + 1]);
      const int lo = hex_value(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(text[i]);
  }
  return out;
}

FrameReader::FrameReader(std::size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes == 0 ? 1 : max_line_bytes) {}

std::vector<FrameReader::Line> FrameReader::feed(const char* data, std::size_t size) {
  std::vector<Line> lines;
  for (std::size_t i = 0; i < size; ++i) {
    const char c = data[i];
    if (c == '\n') {
      Line line;
      if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
      line.text = std::move(partial_);
      line.overflow = partial_overflow_;
      line.reject = partial_nul_;
      partial_.clear();
      partial_overflow_ = false;
      partial_nul_ = false;
      lines.push_back(std::move(line));
      continue;
    }
    if (c == '\0') partial_nul_ = true;
    if (partial_.size() >= max_line_bytes_) {
      // Overflow: keep the capped prefix for diagnostics, drop the rest of
      // the line — memory stays bounded no matter how long the client
      // rants; the next '\n' resyncs.
      partial_overflow_ = true;
      continue;
    }
    partial_.push_back(c);
  }
  return lines;
}

std::optional<FrameReader::Line> FrameReader::finish() {
  if (partial_.empty() && !partial_overflow_ && !partial_nul_) return std::nullopt;
  Line line;
  line.text = std::move(partial_);
  line.overflow = partial_overflow_;
  line.reject = partial_nul_;
  line.truncated = true;
  partial_.clear();
  partial_overflow_ = false;
  partial_nul_ = false;
  return line;
}

const char* to_string(RequestOp op) noexcept {
  switch (op) {
    case RequestOp::kSubmit:
      return "submit";
    case RequestOp::kCancel:
      return "cancel";
    case RequestOp::kStats:
      return "stats";
    case RequestOp::kMetrics:
      return "metrics";
    case RequestOp::kPing:
      return "ping";
    case RequestOp::kDrain:
      return "drain";
  }
  return "unknown";
}

std::uint64_t fnv1a64(const std::string& text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

/// splitmix64 finalizer: turns sequential ids into well-spread words.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Scales `value` into [75%, 125%] by hash word `h` (51 steps of 1%).
[[nodiscard]] std::int64_t spread_25pct(std::int64_t value, std::uint64_t h) noexcept {
  return value * static_cast<std::int64_t>(75 + h % 51) / 100;
}

/// Keys that do not change the mapping computation: identity, labels,
/// scheduling niceties. Everything else a submit may carry participates
/// in the fingerprint.
[[nodiscard]] bool delivery_only_key(const std::string& key) noexcept {
  return key == "op" || key == "id" || key == "name" || key == "priority" ||
         key == "size-hint" || key == "deadline-ms";
}

/// File-backed keys fingerprint by content: the job's result depends on
/// the bytes, not the path.
[[nodiscard]] bool file_backed_key(const std::string& key) noexcept {
  return key == "problem" || key == "system" || key == "clustering";
}

[[nodiscard]] std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string request_fingerprint(const std::map<std::string, std::string>& kv) {
  // std::map iterates sorted, so the canonical string is order-independent
  // of how the client typed the line.
  std::string canonical;
  for (const auto& [key, value] : kv) {
    if (delivery_only_key(key)) continue;
    canonical += key;
    canonical += '=';
    if (file_backed_key(key)) {
      std::ifstream file(value, std::ios::binary);
      if (file) {
        std::ostringstream content;
        content << file.rdbuf();
        canonical += "content:" + hex16(fnv1a64(content.str()));
      } else {
        canonical += "path:" + value;
      }
    } else {
      canonical += value;
    }
    canonical += '\n';
  }
  return hex16(fnv1a64(canonical));
}

std::int64_t jittered_retry_ms(std::int64_t hint_ms, std::uint64_t client_id,
                               std::int64_t min_ms, std::int64_t max_ms) noexcept {
  if (hint_ms <= 0) return hint_ms;  // "do not retry" sentinels pass through
  const std::int64_t spread = spread_25pct(hint_ms, mix64(client_id));
  return std::clamp(std::max<std::int64_t>(1, spread), min_ms, max_ms);
}

std::int64_t RetryPolicy::delay_ms(int attempt, std::int64_t server_hint_ms) const noexcept {
  if (attempt < 1) attempt = 1;
  std::int64_t backoff = base_ms;
  for (int i = 1; i < attempt && backoff < cap_ms; ++i) backoff *= 2;
  backoff = std::min(backoff, cap_ms);
  std::int64_t delay = std::max(backoff, server_hint_ms);
  delay = spread_25pct(delay, mix64(seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(attempt)));
  return std::max<std::int64_t>(1, delay);
}

std::uint64_t gen_size_estimate(const std::map<std::string, std::string>& kv) {
  const auto it = kv.find("gen");
  if (it == kv.end()) return 0;
  const std::uint64_t a = cli::manifest_seed(kv, "gen-a", 4, 0);
  const std::uint64_t b = cli::manifest_seed(kv, "gen-b", 4, 0);
  const std::string& kind = it->second;
  if (kind == "diamond") return a * b + 2;       // rows x cols grid + source/sink
  if (kind == "layered") return a;               // a tasks over b layers
  if (kind == "fork-join") return a * b + b + 1; // a-wide stages + joins
  if (kind == "pipeline") return a;
  return 0;  // validated upstream; unreachable for accepted requests
}

WireRequest parse_request(const std::string& line) {
  if (line.find('\0') != std::string::npos) fail("frame contains NUL bytes");
  // One grammar for everything framed: the fuzzed manifest tokenizer.
  const std::map<std::string, std::string> kv = cli::parse_manifest_line(line, 0);
  if (kv.empty()) fail("empty frame");

  WireRequest request;
  request.kv = kv;
  const auto op_it = kv.find("op");
  const std::string op = op_it == kv.end() ? "submit" : op_it->second;
  if (op == "submit") {
    request.op = RequestOp::kSubmit;
  } else if (op == "cancel") {
    request.op = RequestOp::kCancel;
  } else if (op == "stats") {
    request.op = RequestOp::kStats;
  } else if (op == "metrics") {
    request.op = RequestOp::kMetrics;
  } else if (op == "ping") {
    request.op = RequestOp::kPing;
  } else if (op == "drain") {
    request.op = RequestOp::kDrain;
  } else {
    fail("unknown op '" + op + "'");
  }

  const auto id_it = kv.find("id");
  if (id_it != kv.end()) {
    request.id = id_it->second;
    check_id(request.id);
  }

  switch (request.op) {
    case RequestOp::kSubmit: {
      for (const auto& [key, value] : kv) {
        (void)value;
        if (!submit_keys().count(key)) fail("unknown key '" + key + "'");
      }
      const bool has_problem = kv.count("problem") != 0;
      const bool has_gen = kv.count("gen") != 0;
      if (has_problem && has_gen) fail("give either problem= or gen=, not both");
      if (!has_problem && !has_gen) fail("missing required key 'problem' (or 'gen')");
      if (has_gen) {
        const std::string& kind = kv.at("gen");
        if (kind != "diamond" && kind != "layered" && kind != "fork-join" &&
            kind != "pipeline") {
          fail("unknown gen workload '" + kind + "'");
        }
        const std::uint64_t a = cli::manifest_seed(kv, "gen-a", 4, 0);
        const std::uint64_t b = cli::manifest_seed(kv, "gen-b", 4, 0);
        (void)cli::manifest_seed(kv, "gen-seed", 1, 0);
        if (a == 0 || b == 0) fail("gen dimensions must be positive");
        if (a > 100000 || b > 100000 || a * b > 1000000) {
          fail("gen workload too large (limit 1e6 tasks)");
        }
      } else if (kv.count("gen-a") || kv.count("gen-b") || kv.count("gen-seed")) {
        fail("gen-a=/gen-b=/gen-seed= require gen=");
      }
      if (kv.count("system") && kv.count("spec")) {
        fail("give either system= or spec=, not both");
      }
      if (!kv.count("system") && !kv.count("spec")) {
        fail("missing required key 'spec' (or 'system')");
      }
      if (kv.count("clustering") && (kv.count("strategy") || kv.count("seed"))) {
        fail("clustering= conflicts with strategy=/seed=");
      }
      // Numerics up front, exactly like the manifest validator: a bad value
      // is a protocol error before the job exists.
      (void)cli::manifest_seed(kv, "seed", 1, 0);
      (void)cli::manifest_seed(kv, "refine-seed", 0, 0);
      (void)cli::manifest_seed(kv, "trials", 0, 0);
      (void)cli::manifest_seed(kv, "random-trials", 0, 0);
      (void)cli::manifest_seed(kv, "random-seed", 0, 0);
      (void)cli::manifest_seed(kv, "coarsen-target", 0, 0);
      (void)cli::manifest_int(kv, "level-trials", -1, 0);
      request.deadline_ms = cli::manifest_int(kv, "deadline-ms", 0, 0);
      request.priority = static_cast<int>(cli::manifest_int(kv, "priority", 0, 0));
      if (request.priority < -1000000 || request.priority > 1000000) {
        fail("priority out of range");
      }
      request.size_hint = cli::manifest_seed(kv, "size-hint", 0, 0);
      if (request.size_hint == 0) request.size_hint = gen_size_estimate(kv);
      break;
    }
    case RequestOp::kCancel:
      if (request.id.empty()) fail("cancel needs id=");
      break;
    case RequestOp::kDrain: {
      const auto mode_it = kv.find("mode");
      const std::string mode = mode_it == kv.end() ? "finish" : mode_it->second;
      if (mode == "finish") {
        request.drain_finish = true;
      } else if (mode == "cancel") {
        request.drain_finish = false;
      } else {
        fail("drain mode must be finish or cancel");
      }
      break;
    }
    case RequestOp::kStats:
    case RequestOp::kMetrics:
    case RequestOp::kPing:
      break;
  }
  return request;
}

std::string accepted_frame(const std::string& id, std::uint64_t seq,
                           std::size_t queue_depth, const std::string& fingerprint) {
  std::ostringstream os;
  os << "event=accepted id=" << id << " seq=" << seq << " queue=" << queue_depth;
  if (!fingerprint.empty()) os << " fingerprint=" << fingerprint;
  os << "\n";
  return os.str();
}

std::string result_frame(const ResultFrame& frame) {
  std::ostringstream os;
  os << "event=result id=" << frame.id << " status=" << frame.status;
  if (frame.error.empty()) {
    os << " total=" << frame.total << " lower-bound=" << frame.lower_bound
       << " pct=" << frame.pct << " trials=" << frame.trials;
  } else {
    os << " error=" << escape(frame.error);
  }
  os << " wall-ms=" << frame.wall_ms << " queue-ms=" << frame.queue_ms
     << " lanes=" << frame.lanes;
  if (!frame.fingerprint.empty()) os << " fingerprint=" << frame.fingerprint;
  if (frame.cached) os << " cached=1";
  if (frame.replayed) os << " replayed=1";
  os << "\n";
  return os.str();
}

std::string overloaded_frame(const std::string& id, std::int64_t retry_ms) {
  std::ostringstream os;
  os << "event=overloaded id=" << id << " status=overloaded retry-ms=" << retry_ms << "\n";
  return os.str();
}

std::string error_frame(const std::string& id, const std::string& reason) {
  std::ostringstream os;
  os << "event=error id=" << (id.empty() ? "-" : id)
     << " status=invalid_input error=" << escape(reason) << "\n";
  return os.str();
}

std::string pong_frame() { return "event=pong\n"; }

std::string stats_frame(const std::vector<std::pair<std::string, std::string>>& fields) {
  std::ostringstream os;
  os << "event=stats";
  for (const auto& [key, value] : fields) os << " " << key << "=" << escape(value);
  os << "\n";
  return os.str();
}

std::string metrics_frame(const std::string& exposition) {
  return "event=metrics data=" + escape(exposition) + "\n";
}

std::string draining_frame() { return "event=draining\n"; }

std::string bye_frame(std::uint64_t accepted, std::uint64_t terminal_frames) {
  std::ostringstream os;
  os << "event=bye accepted=" << accepted << " results=" << terminal_frames << "\n";
  return os.str();
}

std::map<std::string, std::string> parse_response(const std::string& line) {
  const std::map<std::string, std::string> kv = cli::parse_manifest_line(line, 0);
  if (!kv.count("event")) throw std::invalid_argument("response frame has no event=");
  return kv;
}

}  // namespace mimdmap::serve
