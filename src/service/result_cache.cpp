#include "service/result_cache.hpp"

#include "obs/metrics.hpp"

namespace mimdmap::serve {
namespace {

/// Registry instruments, resolved once; shared across server instances
/// (tests run several), so assertions on them must be delta-style.
struct CacheMetrics {
  obs::Counter& hits = obs::registry().counter("mimdmap_result_cache_hits_total");
  obs::Counter& misses = obs::registry().counter("mimdmap_result_cache_misses_total");
  obs::Counter& evictions =
      obs::registry().counter("mimdmap_result_cache_evictions_total");
  obs::Gauge& entries = obs::registry().gauge("mimdmap_result_cache_entries");
  obs::Gauge& bytes = obs::registry().gauge("mimdmap_result_cache_bytes");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics metrics;
  return metrics;
}

[[nodiscard]] std::uint64_t entry_bytes(const std::string& fingerprint) {
  return fingerprint.size() + ResultCache::kEntryOverheadBytes;
}

}  // namespace

ResultCache::ResultCache(std::uint64_t max_bytes) : max_bytes_(max_bytes) {}

std::optional<CachedResult> ResultCache::lookup(const std::string& fingerprint) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    ++stats_.misses;
    cache_metrics().misses.inc();
    return std::nullopt;
  }
  lru_.splice(lru_.end(), lru_, it->second);  // bump to most-recently-used
  ++stats_.hits;
  cache_metrics().hits.inc();
  return it->second->second;
}

void ResultCache::insert(const std::string& fingerprint, const CachedResult& result) {
  if (!enabled()) return;
  const std::uint64_t cost = entry_bytes(fingerprint);
  if (cost > max_bytes_) return;  // would evict everything and still not fit
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    it->second->second = result;
    lru_.splice(lru_.end(), lru_, it->second);
    return;
  }
  lru_.emplace_back(fingerprint, result);
  index_.emplace(fingerprint, std::prev(lru_.end()));
  bytes_ += cost;
  evict_to_budget_locked();
  stats_.entries = index_.size();
  stats_.bytes = bytes_;
  cache_metrics().entries.set(static_cast<std::int64_t>(index_.size()));
  cache_metrics().bytes.set(static_cast<std::int64_t>(bytes_));
}

void ResultCache::evict_to_budget_locked() {
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const auto& victim = lru_.front();
    bytes_ -= entry_bytes(victim.first);
    index_.erase(victim.first);
    lru_.pop_front();
    ++stats_.evictions;
    cache_metrics().evictions.inc();
  }
}

std::vector<std::pair<std::string, CachedResult>> ResultCache::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {lru_.begin(), lru_.end()};
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ResultCacheStats out = stats_;
  out.entries = index_.size();
  out.bytes = bytes_;
  return out;
}

}  // namespace mimdmap::serve
