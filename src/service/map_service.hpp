// MapService: the batch/portfolio mapping orchestrator.
//
// Single-instance mapping got fast (PR 1/2); this is how mapping is
// *consumed* at scale — experiment tables, replication matrices, CLI batch
// manifests, anything that answers a stream of "map this instance" job
// requests. Submitting each job to map_instance() in a serial loop wastes
// the machine; giving every job its own worker pool oversubscribes it.
// MapService does neither:
//
//  * jobs are queued and executed by up to max_concurrent_jobs runner
//    threads (spawned lazily);
//  * every job's EvalEngine is constructed against ONE shared ThreadPool,
//    so all inner parallel chunks shard the same lane budget;
//  * lane sharding: a job starting while J runners are busy gets
//    max(1, lane_budget / J) inner lanes — many small jobs run sequentially
//    side by side (job-level parallelism), while a job running with the
//    queue drained (the tail, or a lone big job) gets the full width
//    (chunk-level parallelism). RefineOptions::num_threads is overridden
//    by this policy;
//  * results come back as futures carrying the full MappingReport (with
//    per-job DeltaStats) plus wall time and the lane budget used, or
//    collected in submission order by map_batch() with a live progress
//    callback.
//
// Determinism: a job's output depends only on (instance, options, seed) —
// per-job RNG streams are isolated, engine evaluation is bit-identical for
// any lane count, and nothing in the service feeds timing back into
// mapping decisions. Hence any submission order, any concurrency level and
// any lane sharding yield bit-identical per-job results
// (tests/map_service_test.cpp enforces this against the sequential path).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baseline/random_mapping.hpp"
#include "core/mapper.hpp"
#include "service/thread_pool.hpp"

namespace mimdmap {

/// One mapping job request. The instance is borrowed and must stay alive
/// until the job's result has been delivered — or, for batches too big to
/// materialize up front, `build` defers construction into the job itself.
struct MapJob {
  const MappingInstance* instance = nullptr;
  /// Deferred materialization (used when `instance` is null): the runner
  /// invokes this at execution time and destroys the built instance before
  /// the result is delivered, so a batch's peak instance count is bounded
  /// by the number of concurrently-running jobs instead of the batch size
  /// (ROADMAP "windowed suite building"). Must be a pure function of its
  /// captures — it may run on any runner thread, and determinism of the
  /// job result rests on it.
  std::function<MappingInstance()> build;
  MapperOptions options;
  /// Nonzero overrides options.refine.seed — convenience for submitters
  /// that fan one configuration across many seeds.
  std::uint64_t seed = 0;
  /// Label carried through to the result (progress lines, tables).
  std::string name;
  /// When > 0, the job also replays this many random mappings on the same
  /// engine (the paper's evaluation protocol pairs every mapped instance
  /// with a random baseline).
  std::int64_t random_trials = 0;
  std::uint64_t random_seed = 99;
};

struct MapJobResult {
  std::string name;
  MappingReport report;
  /// Filled iff the job requested random_trials > 0.
  RandomMappingStats random;
  double wall_ms = 0.0;
  /// Inner lane budget the sharding policy granted this job.
  int lanes = 1;
  /// True iff the job's topology tables were served from an earlier job's
  /// build in the service's TopologyCache instead of being rebuilt (false
  /// when no cache was in play, or when this job was the first for its
  /// topology). For jobs whose instance was built elsewhere, the hit
  /// amortizes the routing tables the engine adopts; the instance's own
  /// distance matrix was already built by then — full sharing (matrix
  /// included) needs the instance constructed against cache tables, as
  /// the CLI batch manifest does. Service-wide totals live on
  /// MapService::topology_cache().
  bool topology_cache_hit = false;
  /// Instance summary, filled by run_map_job — deferred-build jobs drop
  /// the instance before delivering, so consumers (experiment tables) read
  /// these instead of the instance.
  std::string system_name;
  NodeId np = 0;
  NodeId ns = 0;
};

struct MapServiceOptions {
  /// Total lane budget sharded across concurrent jobs; 0 means the pool's
  /// lane limit.
  int lanes = 0;
  /// Upper bound on concurrently-executing jobs; 0 means the lane budget.
  int max_concurrent_jobs = 0;
  /// Pool shared by every job's engine; null acquires ThreadPool::shared().
  std::shared_ptr<ThreadPool> pool;
};

/// Snapshot handed to the map_batch progress callback after each job.
struct BatchProgress {
  std::size_t completed = 0;
  std::size_t total = 0;
  /// The job that just finished (valid for the duration of the callback).
  const MapJobResult* last = nullptr;
};

/// Executes one job synchronously on the calling thread — the shared
/// kernel of MapService runners and of sequential callers
/// (run_experiment, benches) that must stay bit-identical to the batched
/// path. lanes > 0 overrides the job's RefineOptions::num_threads (the
/// service's sharding policy); lanes == 0 leaves the job's own setting in
/// charge. Null pool acquires ThreadPool::shared(). `topo_cache`, when
/// given, shares topology tables (distance matrix + routing) across jobs
/// with structurally identical machines — results are bit-identical with
/// or without it.
[[nodiscard]] MapJobResult run_map_job(const MapJob& job,
                                       const std::shared_ptr<ThreadPool>& pool = nullptr,
                                       int lanes = 0, TopologyCache* topo_cache = nullptr);

class MapService {
 public:
  explicit MapService(MapServiceOptions options = {});
  /// Drains: blocks until every queued and running job has delivered.
  ~MapService();

  MapService(const MapService&) = delete;
  MapService& operator=(const MapService&) = delete;

  /// Enqueues one job; the future carries the result (or the job's
  /// exception). Throws std::invalid_argument on a null instance.
  [[nodiscard]] std::future<MapJobResult> submit(MapJob job);

  /// Submits the whole batch and blocks until done, returning results in
  /// submission order (regardless of completion order). `progress`, when
  /// given, is invoked once per completed job from the completing runner
  /// thread — callbacks are serialized by the service, but must not call
  /// back into it. When jobs fail, every job still runs to completion
  /// before the first exception is rethrown (submitted jobs borrow
  /// caller-owned instances, so no runner may outlive this call).
  [[nodiscard]] std::vector<MapJobResult> map_batch(
      std::vector<MapJob> jobs,
      const std::function<void(const BatchProgress&)>& progress = nullptr);

  /// Total lane budget the sharding policy distributes.
  [[nodiscard]] int lane_budget() const noexcept { return lane_budget_; }
  [[nodiscard]] int max_concurrent_jobs() const noexcept { return max_runners_; }
  [[nodiscard]] const std::shared_ptr<ThreadPool>& pool() const noexcept { return pool_; }

  /// Service-level topology-table cache: jobs sharing a system graph
  /// (manifests and suites reuse a handful of machines) share one
  /// distance-matrix + routing build (ROADMAP "topology-table cache").
  /// Per-job hits are reported in MapJobResult::topology_cache_hit.
  [[nodiscard]] TopologyCache& topology_cache() noexcept { return topo_cache_; }
  [[nodiscard]] const TopologyCache& topology_cache() const noexcept { return topo_cache_; }

 private:
  struct QueuedJob {
    MapJob job;
    std::promise<MapJobResult> promise;
    /// Invoked after the job completes, before the future resolves (so a
    /// batch's last callback always precedes map_batch returning).
    std::function<void(const MapJobResult&)> on_done;
  };

  void runner_main();
  /// Pushes one job and tops up the runner count; mutex_ must be held.
  std::future<MapJobResult> enqueue_locked(QueuedJob queued, const char* caller);

  std::shared_ptr<ThreadPool> pool_;
  TopologyCache topo_cache_;
  int lane_budget_ = 1;
  int max_runners_ = 1;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<QueuedJob> queue_;
  std::vector<std::thread> runners_;
  int active_ = 0;  // runners currently executing a job
  bool shutdown_ = false;
};

}  // namespace mimdmap
