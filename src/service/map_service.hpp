// MapService: the batch/portfolio mapping orchestrator.
//
// Single-instance mapping got fast (PR 1/2); this is how mapping is
// *consumed* at scale — experiment tables, replication matrices, CLI batch
// manifests, anything that answers a stream of "map this instance" job
// requests. Submitting each job to map_instance() in a serial loop wastes
// the machine; giving every job its own worker pool oversubscribes it.
// MapService does neither:
//
//  * jobs are queued and executed by up to max_concurrent_jobs runner
//    threads (spawned lazily);
//  * every job's EvalEngine is constructed against ONE shared ThreadPool,
//    so all inner parallel chunks shard the same lane budget;
//  * lane sharding: a job starting while J runners are busy gets
//    max(1, lane_budget / J) inner lanes — many small jobs run sequentially
//    side by side (job-level parallelism), while a job running with the
//    queue drained (the tail, or a lone big job) gets the full width
//    (chunk-level parallelism). RefineOptions::num_threads is overridden
//    by this policy;
//  * results come back as futures carrying the full MappingReport (with
//    per-job DeltaStats) plus wall time and the lane budget used, or
//    collected in submission order by map_batch() with a live progress
//    callback.
//
// Determinism: a job's output depends only on (instance, options, seed) —
// per-job RNG streams are isolated, engine evaluation is bit-identical for
// any lane count, and nothing in the service feeds timing back into
// mapping decisions. Hence any submission order, any concurrency level and
// any lane sharding yield bit-identical per-job results
// (tests/map_service_test.cpp enforces this against the sequential path).
//
// Fault tolerance (DESIGN.md section 15): every submitted job reaches
// exactly one terminal MapStatus. Deadlines and cancellation are
// cooperative (core/cancellation.hpp) — a cancelled or expired job stops
// within one evaluation wave and delivers its best incumbent as a degraded
// but valid result; a throwing build()/mapper is captured into
// MapJobResult::status without poisoning the runner, the progress stream
// or any other job; admission is optionally bounded (block or reject);
// cancel(id)/cancel_all() drain queued-not-started jobs immediately and
// signal running ones.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baseline/random_mapping.hpp"
#include "core/cancellation.hpp"
#include "core/mapper.hpp"
#include "service/thread_pool.hpp"

namespace mimdmap {

/// One mapping job request. The instance is borrowed and must stay alive
/// until the job's result has been delivered — or, for batches too big to
/// materialize up front, `build` defers construction into the job itself.
struct MapJob {
  const MappingInstance* instance = nullptr;
  /// Deferred materialization (used when `instance` is null): the runner
  /// invokes this at execution time and destroys the built instance before
  /// the result is delivered, so a batch's peak instance count is bounded
  /// by the number of concurrently-running jobs instead of the batch size
  /// (ROADMAP "windowed suite building"). Must be a pure function of its
  /// captures — it may run on any runner thread, and determinism of the
  /// job result rests on it.
  std::function<MappingInstance()> build;
  MapperOptions options;
  /// Nonzero overrides options.refine.seed — convenience for submitters
  /// that fan one configuration across many seeds.
  std::uint64_t seed = 0;
  /// Label carried through to the result (progress lines, tables).
  std::string name;
  /// When > 0, the job also replays this many random mappings on the same
  /// engine (the paper's evaluation protocol pairs every mapped instance
  /// with a random baseline).
  std::int64_t random_trials = 0;
  std::uint64_t random_seed = 99;
  /// Per-job wall-clock budget, armed when the job is admitted (so queue
  /// wait counts against it). > 0: that many milliseconds; 0: the
  /// service's default_deadline_ms; < 0: explicitly no deadline even when
  /// the service has a default. An expired job delivers its best incumbent
  /// with status kDeadlineExceeded within one evaluation wave.
  std::int64_t deadline_ms = 0;
  /// Optional submitter-owned cancellation token; the service chains its
  /// per-job source under it, so tripping it cancels this job wherever it
  /// is (queued jobs are drained, running ones stop at the next poll).
  CancelToken cancel;
  /// Scheduling priority under SchedulerPolicy::kPriority: lower runs
  /// first, negatives allowed (more urgent than default work). Ignored
  /// under kFifo.
  int priority = 0;
  /// Estimated job size (task count) for the size-aware urgency classes
  /// and the queued-memory shed bound; 0 = unknown (treated as normal).
  std::uint64_t size_hint = 0;
  /// Fairness domain: jobs sharing a nonzero client_id round-robin against
  /// other clients (per-client fair-queuing rank) and count against
  /// MapServiceOptions::max_inflight_per_client. 0 = the anonymous shared
  /// stream (legacy batch path: plain FIFO among themselves, no cap).
  std::uint64_t client_id = 0;
};

struct MapJobResult {
  std::string name;
  MappingReport report;
  /// Filled iff the job requested random_trials > 0.
  RandomMappingStats random;
  double wall_ms = 0.0;
  /// Inner lane budget the sharding policy granted this job.
  int lanes = 1;
  /// True iff the job's topology tables were served from an earlier job's
  /// build in the service's TopologyCache instead of being rebuilt (false
  /// when no cache was in play, or when this job was the first for its
  /// topology). For jobs whose instance was built elsewhere, the hit
  /// amortizes the routing tables the engine adopts; the instance's own
  /// distance matrix was already built by then — full sharing (matrix
  /// included) needs the instance constructed against cache tables, as
  /// the CLI batch manifest does. Service-wide totals live on
  /// MapService::topology_cache().
  bool topology_cache_hit = false;
  /// Instance summary, filled by run_map_job — deferred-build jobs drop
  /// the instance before delivering, so consumers (experiment tables) read
  /// these instead of the instance.
  std::string system_name;
  NodeId np = 0;
  NodeId ns = 0;
  /// The job's one terminal status. kOk: full result. kCancelled /
  /// kDeadlineExceeded: report holds the best incumbent reached before the
  /// signal (or a default report if the job never started). kInvalidInput /
  /// kInternalError: the job threw; `error` says why and the report is
  /// empty. Runner exceptions land here, never on the future.
  MapStatus status = MapStatus::kOk;
  /// Diagnostic message for the error statuses (exception what()).
  std::string error;
  /// Milliseconds the job waited between admission and execution start
  /// (0 for direct run_map_job callers — there is no queue).
  double queue_ms = 0.0;
  /// Per-stage wall breakdown of run_map_job, always filled (a handful of
  /// clock reads per job). Stages not taken (no deferred build, no random
  /// trials) stay 0; wall_ms - sum(stages) is orchestration overhead.
  struct StageTimings {
    double build_ms = 0.0;   ///< deferred-instance materialization
    double topo_ms = 0.0;    ///< topology-table acquire (cache hit or build)
    double map_ms = 0.0;     ///< map_instance: schedule + assign + refine
    double random_ms = 0.0;  ///< random-baseline replay
  };
  StageTimings stages;

  [[nodiscard]] bool ok() const noexcept { return status == MapStatus::kOk; }
};

/// What submit() does when the admission queue is full (max_queue > 0).
enum class AdmissionPolicy {
  /// Block the submitter until a slot frees (backpressure). map_batch
  /// degrades gracefully: once the cap forces a wait, the batch is no
  /// longer enqueued atomically, so the sharding policy may grant the
  /// first jobs wider lanes — results stay bit-identical regardless.
  kBlock,
  /// Throw AdmissionRejectedError from submit()/map_batch() (load
  /// shedding).
  kReject,
};

/// Thrown by submit()/map_batch() under AdmissionPolicy::kReject when the
/// queue is at max_queue (or over the queued-size bound). Retryable: the
/// serving layer answers `overloaded` with a backoff hint instead of
/// failing the job.
class AdmissionRejectedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How queued-not-started jobs are ordered (DESIGN.md section 16.2).
enum class SchedulerPolicy {
  /// Urgency-ordered: (priority, urgency class, per-client fair rank,
  /// deadline, arrival). The urgency class is size- and deadline-aware —
  /// small jobs and jobs with tight wall budgets classify as interactive
  /// and pre-empt queued bulk work; the fair rank interleaves clients so a
  /// greedy client cannot starve the rest. Jobs with equal keys keep
  /// arrival order, so equal-priority single-client traffic degrades to
  /// FIFO exactly.
  kPriority,
  /// Strict arrival order (the pre-PR7 queue, kept for A/B benching).
  kFifo,
};

/// Scheduler observability snapshot (MapService::stats()). Counters are
/// cumulative over the service lifetime, gauges are instantaneous.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // terminal results delivered by runners
  std::uint64_t shed = 0;       // admissions rejected (queue/size bounds)
  std::uint64_t cancelled_queued = 0;  // drained before starting
  std::size_t queue_depth = 0;
  std::uint64_t queued_size_hint = 0;  // sum of size hints waiting
  int active = 0;
  struct PriorityLane {
    int priority = 0;
    std::uint64_t started = 0;    // jobs popped at this priority
    double total_wait_ms = 0.0;   // admission -> execution start
    double max_wait_ms = 0.0;
  };
  std::vector<PriorityLane> priorities;  // ascending priority
  struct ClientGauge {
    std::uint64_t client_id = 0;
    int inflight = 0;             // queued + running right now
    std::uint64_t submitted = 0;
  };
  std::vector<ClientGauge> clients;  // ascending client_id, excludes 0
};

struct MapServiceOptions {
  /// Total lane budget sharded across concurrent jobs; 0 means the pool's
  /// lane limit.
  int lanes = 0;
  /// Upper bound on concurrently-executing jobs; 0 means the lane budget.
  int max_concurrent_jobs = 0;
  /// Pool shared by every job's engine; null acquires ThreadPool::shared().
  std::shared_ptr<ThreadPool> pool;
  /// Bound on queued-not-started jobs; 0 means unbounded (no admission
  /// control, `admission` is irrelevant).
  std::size_t max_queue = 0;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Deadline applied to jobs that leave MapJob::deadline_ms == 0;
  /// 0 means none.
  std::int64_t default_deadline_ms = 0;
  SchedulerPolicy scheduler = SchedulerPolicy::kPriority;
  /// Urgency-class thresholds on MapJob::size_hint (task-count estimate):
  /// <= small_job_tasks classifies interactive, >= bulk_job_tasks bulk,
  /// everything else (and unknown 0) normal.
  std::uint64_t small_job_tasks = 64;
  std::uint64_t bulk_job_tasks = 256;
  /// Jobs whose requested wall budget (deadline_ms) is positive and at
  /// most this classify interactive regardless of size — a caller that
  /// can only wait a moment is interactive by definition.
  std::int64_t interactive_deadline_ms = 1000;
  /// Per-client cap on in-flight (queued + running) jobs; a client at the
  /// cap has further queued jobs passed over until one delivers. 0 = no
  /// cap; client_id 0 is never capped.
  int max_inflight_per_client = 0;
  /// Shed bound on the sum of queued size hints (a proxy for the memory
  /// the queue would pin once built); 0 = unbounded. Enforced like
  /// max_queue under the same AdmissionPolicy.
  std::uint64_t max_queued_size_hint = 0;
};

/// Snapshot handed to the map_batch progress callback after each job.
struct BatchProgress {
  std::size_t completed = 0;
  std::size_t total = 0;
  /// The job that just finished (valid for the duration of the callback).
  const MapJobResult* last = nullptr;
};

/// Executes one job synchronously on the calling thread — the shared
/// kernel of MapService runners and of sequential callers
/// (run_experiment, benches) that must stay bit-identical to the batched
/// path. lanes > 0 overrides the job's RefineOptions::num_threads (the
/// service's sharding policy); lanes == 0 leaves the job's own setting in
/// charge. Null pool acquires ThreadPool::shared(). `topo_cache`, when
/// given, shares topology tables (distance matrix + routing) across jobs
/// with structurally identical machines — results are bit-identical with
/// or without it.
///
/// Honors MapJob::cancel and (when > 0) MapJob::deadline_ms — the deadline
/// is armed here, at execution start; the service arms queue-inclusive
/// deadlines itself and hands the job over with deadline_ms consumed.
/// Cancellation/deadline outcomes come back as MapJobResult::status;
/// invalid jobs and runtime failures THROW (the MapService runner is the
/// layer that captures those into status — sequential callers keep plain
/// exception semantics).
[[nodiscard]] MapJobResult run_map_job(const MapJob& job,
                                       const std::shared_ptr<ThreadPool>& pool = nullptr,
                                       int lanes = 0, TopologyCache* topo_cache = nullptr);

class MapService {
 public:
  explicit MapService(MapServiceOptions options = {});
  /// Drains: blocks until every queued and running job has delivered.
  ~MapService();

  MapService(const MapService&) = delete;
  MapService& operator=(const MapService&) = delete;

  /// Identifies a submitted job for cancel(); never reused within a
  /// service.
  using JobId = std::uint64_t;

  /// Enqueues one job; the future always carries a result — job failures
  /// are captured into MapJobResult::status/error, never set as the
  /// future's exception. Throws std::invalid_argument synchronously on a
  /// job with neither instance nor builder (a submitter bug, not a job
  /// outcome), and AdmissionRejectedError when the queue is full under
  /// AdmissionPolicy::kReject; blocks for space under kBlock. `id`, when
  /// given, receives a handle for cancel(). `on_done`, when given, fires
  /// exactly once with the terminal result, before the future resolves,
  /// from the delivering thread (the serving layer streams result frames
  /// from it without a waiter thread per job) — it must not call back
  /// into the service.
  [[nodiscard]] std::future<MapJobResult> submit(
      MapJob job, JobId* id = nullptr,
      std::function<void(const MapJobResult&)> on_done = {});

  /// Submits the whole batch and blocks until done, returning results in
  /// submission order (regardless of completion order). `progress`, when
  /// given, is invoked once per completed job from the completing runner
  /// thread — callbacks are serialized by the service, but must not call
  /// back into it (cancel()/cancel_all() from OTHER threads mid-batch is
  /// fine and the intended SIGINT path: affected jobs come back with
  /// cancelled statuses). Per-job failures come back as statuses in the
  /// results, never as exceptions — every job reaches a terminal status
  /// before this returns (submitted jobs borrow caller-owned instances, so
  /// no runner may outlive this call).
  [[nodiscard]] std::vector<MapJobResult> map_batch(
      std::vector<MapJob> jobs,
      const std::function<void(const BatchProgress&)>& progress = nullptr);

  /// Cancels one job: a queued-not-started job is drained immediately (its
  /// future resolves with status kCancelled before this returns, on_done
  /// included); a running one is signalled and stops at its next poll.
  /// Returns false when the id is unknown or the job already delivered.
  bool cancel(JobId id);

  /// Cancels everything: drains the whole queue (delivering kCancelled
  /// results) and signals every running job. Returns the number of jobs
  /// drained from the queue.
  std::size_t cancel_all();

  /// Total lane budget the sharding policy distributes.
  [[nodiscard]] int lane_budget() const noexcept { return lane_budget_; }
  [[nodiscard]] int max_concurrent_jobs() const noexcept { return max_runners_; }
  [[nodiscard]] const std::shared_ptr<ThreadPool>& pool() const noexcept { return pool_; }
  [[nodiscard]] SchedulerPolicy scheduler() const noexcept { return scheduler_; }

  /// Scheduler observability snapshot: queue depth, shed count,
  /// per-priority wait times, per-client in-flight gauges. Safe to call
  /// from any thread at any time.
  [[nodiscard]] ServiceStats stats() const;

  /// Drops the fairness/cap bookkeeping of a client once its in-flight
  /// count reaches zero (immediately, or deferred to its last delivery).
  /// The serving layer calls this on disconnect so a long-lived daemon's
  /// client table tracks live connections, not history.
  void forget_client(std::uint64_t client_id);

  /// Service-level topology-table cache: jobs sharing a system graph
  /// (manifests and suites reuse a handful of machines) share one
  /// distance-matrix + routing build (ROADMAP "topology-table cache").
  /// Per-job hits are reported in MapJobResult::topology_cache_hit.
  [[nodiscard]] TopologyCache& topology_cache() noexcept { return topo_cache_; }
  [[nodiscard]] const TopologyCache& topology_cache() const noexcept { return topo_cache_; }

 private:
  /// Total order of the urgency queue. Lexicographic: priority, urgency
  /// class (0 interactive / 1 normal / 2 bulk), per-client fair rank,
  /// armed deadline, arrival sequence (unique — ties impossible). Under
  /// kFifo everything but seq is pinned to one value.
  struct SchedKey {
    int priority = 0;
    int klass = 1;
    std::uint64_t fair_rank = 0;
    std::int64_t deadline_ns = 0;
    std::uint64_t seq = 0;

    bool operator<(const SchedKey& o) const noexcept {
      if (priority != o.priority) return priority < o.priority;
      if (klass != o.klass) return klass < o.klass;
      if (fair_rank != o.fair_rank) return fair_rank < o.fair_rank;
      if (deadline_ns != o.deadline_ns) return deadline_ns < o.deadline_ns;
      return seq < o.seq;
    }
  };

  struct QueuedJob {
    MapJob job;
    JobId id = 0;
    std::promise<MapJobResult> promise;
    /// Invoked after the job completes, before the future resolves (so a
    /// batch's last callback always precedes map_batch returning).
    std::function<void(const MapJobResult&)> on_done;
    std::chrono::steady_clock::time_point admitted;
  };

  /// Fairness/cap bookkeeping per client_id (0 = the shared anonymous
  /// stream: ranked like any client but never capped, never forgotten).
  struct ClientState {
    int queued = 0;
    int running = 0;  // the in-flight cap counts these only
    std::uint64_t submitted = 0;
    std::uint64_t next_rank = 0;
    bool forgotten = false;  // erase when queued + running reaches 0
  };

  void runner_main();
  /// Admits one job (waiting or rejecting per the admission policy),
  /// chains its cancel source, arms its deadline, keys it into the
  /// urgency queue and tops up the runner count. `lock` must hold mutex_
  /// and may be released while blocked on queue space.
  std::future<MapJobResult> enqueue_locked(std::unique_lock<std::mutex>& lock, MapJob job,
                                           std::function<void(const MapJobResult&)> on_done,
                                           const char* caller, JobId* id_out);
  /// Picks the most urgent queued job whose client is under the in-flight
  /// cap; end() when nothing is eligible (queue may still be non-empty).
  std::map<SchedKey, QueuedJob>::iterator pop_candidate_locked();
  /// Removes one queued entry, maintaining the id index and size sum.
  QueuedJob extract_locked(std::map<SchedKey, QueuedJob>::iterator it);
  /// Releases a client slot after delivery; erases forgotten clients.
  void release_client_locked(std::uint64_t client_id);
  /// Resolves drained jobs with their token status (on_done first), then
  /// pings the space cv. Call WITHOUT mutex_ held.
  void deliver_cancelled(std::vector<QueuedJob>& drained);

  std::shared_ptr<ThreadPool> pool_;
  TopologyCache topo_cache_;
  int lane_budget_ = 1;
  int max_runners_ = 1;
  std::size_t max_queue_ = 0;
  AdmissionPolicy admission_ = AdmissionPolicy::kBlock;
  std::int64_t default_deadline_ms_ = 0;
  SchedulerPolicy scheduler_ = SchedulerPolicy::kPriority;
  std::uint64_t small_job_tasks_ = 64;
  std::uint64_t bulk_job_tasks_ = 256;
  std::int64_t interactive_deadline_ms_ = 1000;
  int max_inflight_per_client_ = 0;
  std::uint64_t max_queued_size_hint_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable space_cv_;
  std::map<SchedKey, QueuedJob> queue_;
  /// id -> queue key, for cancel() without a scan.
  std::unordered_map<JobId, SchedKey> queue_index_;
  std::vector<std::thread> runners_;
  /// Cancel channels of every admitted-but-not-delivered job.
  std::unordered_map<JobId, CancelSource> sources_;
  std::map<std::uint64_t, ClientState> clients_;
  JobId next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  /// Fair rank of the most recently popped job — the floor newly-arriving
  /// clients start at, so an idle client re-enters level with the head of
  /// the backlog instead of with infinite credit (start-time fair
  /// queuing).
  std::uint64_t rank_floor_ = 0;
  std::uint64_t queued_size_sum_ = 0;
  int active_ = 0;  // runners currently executing a job
  bool shutdown_ = false;
  // Cumulative scheduler counters (stats()).
  std::uint64_t stat_submitted_ = 0;
  std::uint64_t stat_completed_ = 0;
  std::uint64_t stat_shed_ = 0;
  std::uint64_t stat_cancelled_queued_ = 0;
  struct PriorityAgg {
    std::uint64_t started = 0;
    double total_wait_ms = 0.0;
    double max_wait_ms = 0.0;
  };
  std::map<int, PriorityAgg> priority_stats_;
};

}  // namespace mimdmap
