// MapService: the batch/portfolio mapping orchestrator.
//
// Single-instance mapping got fast (PR 1/2); this is how mapping is
// *consumed* at scale — experiment tables, replication matrices, CLI batch
// manifests, anything that answers a stream of "map this instance" job
// requests. Submitting each job to map_instance() in a serial loop wastes
// the machine; giving every job its own worker pool oversubscribes it.
// MapService does neither:
//
//  * jobs are queued and executed by up to max_concurrent_jobs runner
//    threads (spawned lazily);
//  * every job's EvalEngine is constructed against ONE shared ThreadPool,
//    so all inner parallel chunks shard the same lane budget;
//  * lane sharding: a job starting while J runners are busy gets
//    max(1, lane_budget / J) inner lanes — many small jobs run sequentially
//    side by side (job-level parallelism), while a job running with the
//    queue drained (the tail, or a lone big job) gets the full width
//    (chunk-level parallelism). RefineOptions::num_threads is overridden
//    by this policy;
//  * results come back as futures carrying the full MappingReport (with
//    per-job DeltaStats) plus wall time and the lane budget used, or
//    collected in submission order by map_batch() with a live progress
//    callback.
//
// Determinism: a job's output depends only on (instance, options, seed) —
// per-job RNG streams are isolated, engine evaluation is bit-identical for
// any lane count, and nothing in the service feeds timing back into
// mapping decisions. Hence any submission order, any concurrency level and
// any lane sharding yield bit-identical per-job results
// (tests/map_service_test.cpp enforces this against the sequential path).
//
// Fault tolerance (DESIGN.md section 15): every submitted job reaches
// exactly one terminal MapStatus. Deadlines and cancellation are
// cooperative (core/cancellation.hpp) — a cancelled or expired job stops
// within one evaluation wave and delivers its best incumbent as a degraded
// but valid result; a throwing build()/mapper is captured into
// MapJobResult::status without poisoning the runner, the progress stream
// or any other job; admission is optionally bounded (block or reject);
// cancel(id)/cancel_all() drain queued-not-started jobs immediately and
// signal running ones.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baseline/random_mapping.hpp"
#include "core/cancellation.hpp"
#include "core/mapper.hpp"
#include "service/thread_pool.hpp"

namespace mimdmap {

/// One mapping job request. The instance is borrowed and must stay alive
/// until the job's result has been delivered — or, for batches too big to
/// materialize up front, `build` defers construction into the job itself.
struct MapJob {
  const MappingInstance* instance = nullptr;
  /// Deferred materialization (used when `instance` is null): the runner
  /// invokes this at execution time and destroys the built instance before
  /// the result is delivered, so a batch's peak instance count is bounded
  /// by the number of concurrently-running jobs instead of the batch size
  /// (ROADMAP "windowed suite building"). Must be a pure function of its
  /// captures — it may run on any runner thread, and determinism of the
  /// job result rests on it.
  std::function<MappingInstance()> build;
  MapperOptions options;
  /// Nonzero overrides options.refine.seed — convenience for submitters
  /// that fan one configuration across many seeds.
  std::uint64_t seed = 0;
  /// Label carried through to the result (progress lines, tables).
  std::string name;
  /// When > 0, the job also replays this many random mappings on the same
  /// engine (the paper's evaluation protocol pairs every mapped instance
  /// with a random baseline).
  std::int64_t random_trials = 0;
  std::uint64_t random_seed = 99;
  /// Per-job wall-clock budget, armed when the job is admitted (so queue
  /// wait counts against it). > 0: that many milliseconds; 0: the
  /// service's default_deadline_ms; < 0: explicitly no deadline even when
  /// the service has a default. An expired job delivers its best incumbent
  /// with status kDeadlineExceeded within one evaluation wave.
  std::int64_t deadline_ms = 0;
  /// Optional submitter-owned cancellation token; the service chains its
  /// per-job source under it, so tripping it cancels this job wherever it
  /// is (queued jobs are drained, running ones stop at the next poll).
  CancelToken cancel;
};

struct MapJobResult {
  std::string name;
  MappingReport report;
  /// Filled iff the job requested random_trials > 0.
  RandomMappingStats random;
  double wall_ms = 0.0;
  /// Inner lane budget the sharding policy granted this job.
  int lanes = 1;
  /// True iff the job's topology tables were served from an earlier job's
  /// build in the service's TopologyCache instead of being rebuilt (false
  /// when no cache was in play, or when this job was the first for its
  /// topology). For jobs whose instance was built elsewhere, the hit
  /// amortizes the routing tables the engine adopts; the instance's own
  /// distance matrix was already built by then — full sharing (matrix
  /// included) needs the instance constructed against cache tables, as
  /// the CLI batch manifest does. Service-wide totals live on
  /// MapService::topology_cache().
  bool topology_cache_hit = false;
  /// Instance summary, filled by run_map_job — deferred-build jobs drop
  /// the instance before delivering, so consumers (experiment tables) read
  /// these instead of the instance.
  std::string system_name;
  NodeId np = 0;
  NodeId ns = 0;
  /// The job's one terminal status. kOk: full result. kCancelled /
  /// kDeadlineExceeded: report holds the best incumbent reached before the
  /// signal (or a default report if the job never started). kInvalidInput /
  /// kInternalError: the job threw; `error` says why and the report is
  /// empty. Runner exceptions land here, never on the future.
  MapStatus status = MapStatus::kOk;
  /// Diagnostic message for the error statuses (exception what()).
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return status == MapStatus::kOk; }
};

/// What submit() does when the admission queue is full (max_queue > 0).
enum class AdmissionPolicy {
  /// Block the submitter until a slot frees (backpressure). map_batch
  /// degrades gracefully: once the cap forces a wait, the batch is no
  /// longer enqueued atomically, so the sharding policy may grant the
  /// first jobs wider lanes — results stay bit-identical regardless.
  kBlock,
  /// Throw AdmissionRejectedError from submit()/map_batch() (load
  /// shedding).
  kReject,
};

/// Thrown by submit()/map_batch() under AdmissionPolicy::kReject when the
/// queue is at max_queue.
class AdmissionRejectedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct MapServiceOptions {
  /// Total lane budget sharded across concurrent jobs; 0 means the pool's
  /// lane limit.
  int lanes = 0;
  /// Upper bound on concurrently-executing jobs; 0 means the lane budget.
  int max_concurrent_jobs = 0;
  /// Pool shared by every job's engine; null acquires ThreadPool::shared().
  std::shared_ptr<ThreadPool> pool;
  /// Bound on queued-not-started jobs; 0 means unbounded (no admission
  /// control, `admission` is irrelevant).
  std::size_t max_queue = 0;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Deadline applied to jobs that leave MapJob::deadline_ms == 0;
  /// 0 means none.
  std::int64_t default_deadline_ms = 0;
};

/// Snapshot handed to the map_batch progress callback after each job.
struct BatchProgress {
  std::size_t completed = 0;
  std::size_t total = 0;
  /// The job that just finished (valid for the duration of the callback).
  const MapJobResult* last = nullptr;
};

/// Executes one job synchronously on the calling thread — the shared
/// kernel of MapService runners and of sequential callers
/// (run_experiment, benches) that must stay bit-identical to the batched
/// path. lanes > 0 overrides the job's RefineOptions::num_threads (the
/// service's sharding policy); lanes == 0 leaves the job's own setting in
/// charge. Null pool acquires ThreadPool::shared(). `topo_cache`, when
/// given, shares topology tables (distance matrix + routing) across jobs
/// with structurally identical machines — results are bit-identical with
/// or without it.
///
/// Honors MapJob::cancel and (when > 0) MapJob::deadline_ms — the deadline
/// is armed here, at execution start; the service arms queue-inclusive
/// deadlines itself and hands the job over with deadline_ms consumed.
/// Cancellation/deadline outcomes come back as MapJobResult::status;
/// invalid jobs and runtime failures THROW (the MapService runner is the
/// layer that captures those into status — sequential callers keep plain
/// exception semantics).
[[nodiscard]] MapJobResult run_map_job(const MapJob& job,
                                       const std::shared_ptr<ThreadPool>& pool = nullptr,
                                       int lanes = 0, TopologyCache* topo_cache = nullptr);

class MapService {
 public:
  explicit MapService(MapServiceOptions options = {});
  /// Drains: blocks until every queued and running job has delivered.
  ~MapService();

  MapService(const MapService&) = delete;
  MapService& operator=(const MapService&) = delete;

  /// Identifies a submitted job for cancel(); never reused within a
  /// service.
  using JobId = std::uint64_t;

  /// Enqueues one job; the future always carries a result — job failures
  /// are captured into MapJobResult::status/error, never set as the
  /// future's exception. Throws std::invalid_argument synchronously on a
  /// job with neither instance nor builder (a submitter bug, not a job
  /// outcome), and AdmissionRejectedError when the queue is full under
  /// AdmissionPolicy::kReject; blocks for space under kBlock. `id`, when
  /// given, receives a handle for cancel().
  [[nodiscard]] std::future<MapJobResult> submit(MapJob job, JobId* id = nullptr);

  /// Submits the whole batch and blocks until done, returning results in
  /// submission order (regardless of completion order). `progress`, when
  /// given, is invoked once per completed job from the completing runner
  /// thread — callbacks are serialized by the service, but must not call
  /// back into it (cancel()/cancel_all() from OTHER threads mid-batch is
  /// fine and the intended SIGINT path: affected jobs come back with
  /// cancelled statuses). Per-job failures come back as statuses in the
  /// results, never as exceptions — every job reaches a terminal status
  /// before this returns (submitted jobs borrow caller-owned instances, so
  /// no runner may outlive this call).
  [[nodiscard]] std::vector<MapJobResult> map_batch(
      std::vector<MapJob> jobs,
      const std::function<void(const BatchProgress&)>& progress = nullptr);

  /// Cancels one job: a queued-not-started job is drained immediately (its
  /// future resolves with status kCancelled before this returns, on_done
  /// included); a running one is signalled and stops at its next poll.
  /// Returns false when the id is unknown or the job already delivered.
  bool cancel(JobId id);

  /// Cancels everything: drains the whole queue (delivering kCancelled
  /// results) and signals every running job. Returns the number of jobs
  /// drained from the queue.
  std::size_t cancel_all();

  /// Total lane budget the sharding policy distributes.
  [[nodiscard]] int lane_budget() const noexcept { return lane_budget_; }
  [[nodiscard]] int max_concurrent_jobs() const noexcept { return max_runners_; }
  [[nodiscard]] const std::shared_ptr<ThreadPool>& pool() const noexcept { return pool_; }

  /// Service-level topology-table cache: jobs sharing a system graph
  /// (manifests and suites reuse a handful of machines) share one
  /// distance-matrix + routing build (ROADMAP "topology-table cache").
  /// Per-job hits are reported in MapJobResult::topology_cache_hit.
  [[nodiscard]] TopologyCache& topology_cache() noexcept { return topo_cache_; }
  [[nodiscard]] const TopologyCache& topology_cache() const noexcept { return topo_cache_; }

 private:
  struct QueuedJob {
    MapJob job;
    JobId id = 0;
    std::promise<MapJobResult> promise;
    /// Invoked after the job completes, before the future resolves (so a
    /// batch's last callback always precedes map_batch returning).
    std::function<void(const MapJobResult&)> on_done;
  };

  void runner_main();
  /// Admits one job (waiting or rejecting per the admission policy),
  /// chains its cancel source, arms its deadline, pushes it and tops up
  /// the runner count. `lock` must hold mutex_ and may be released while
  /// blocked on queue space.
  std::future<MapJobResult> enqueue_locked(std::unique_lock<std::mutex>& lock, MapJob job,
                                           std::function<void(const MapJobResult&)> on_done,
                                           const char* caller, JobId* id_out);
  /// Resolves drained jobs with their token status (on_done first), then
  /// pings the space cv. Call WITHOUT mutex_ held.
  void deliver_cancelled(std::vector<QueuedJob>& drained);

  std::shared_ptr<ThreadPool> pool_;
  TopologyCache topo_cache_;
  int lane_budget_ = 1;
  int max_runners_ = 1;
  std::size_t max_queue_ = 0;
  AdmissionPolicy admission_ = AdmissionPolicy::kBlock;
  std::int64_t default_deadline_ms_ = 0;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable space_cv_;
  std::deque<QueuedJob> queue_;
  std::vector<std::thread> runners_;
  /// Cancel channels of every admitted-but-not-delivered job.
  std::unordered_map<JobId, CancelSource> sources_;
  JobId next_id_ = 1;
  int active_ = 0;  // runners currently executing a job
  bool shutdown_ = false;
};

}  // namespace mimdmap
