// Pairwise-exchange refinement — the alternative the paper rejects.
//
// Section 4.3.3: "It has been verified by our experiment that this method
// [random re-placement of the non-critical nodes] works better than
// pairwise exchanges [2]." To regenerate that ablation we provide two
// pairwise refiners over the same trial budget and pinning rules as the
// paper's refinement:
//
//  * random-pair: each trial swaps one uniformly random pair of free
//    processors and keeps the swap iff it improves total time (equal
//    per-trial cost to the paper's random re-placement);
//  * steepest sweep: repeatedly applies the best improving swap until a
//    local minimum, counting each candidate evaluation as one trial.
#pragma once

#include <cstdint>

#include "core/ideal_graph.hpp"
#include "core/initial_assignment.hpp"
#include "core/refinement.hpp"

namespace mimdmap {

/// Random-pair exchange under the same options/diagnostics as refine().
/// Trials run on the engine's incremental delta evaluator as *verdict
/// trials* — the incumbent rides along as the cutoff, so a losing
/// cascade stops at the first certified ">= best" bound while accepted
/// totals stay exact (bit-identical accept streams to the full kernel);
/// counters reported in RefineResult::delta.
[[nodiscard]] RefineResult pairwise_exchange_refine(const EvalEngine& engine,
                                                    const IdealSchedule& ideal,
                                                    const InitialAssignmentResult& initial,
                                                    const RefineOptions& options = {});
[[nodiscard]] RefineResult pairwise_exchange_refine(const MappingInstance& instance,
                                                    const IdealSchedule& ideal,
                                                    const InitialAssignmentResult& initial,
                                                    const RefineOptions& options = {});

/// Steepest-descent sweeps until local minimum or trial budget exhaustion.
[[nodiscard]] RefineResult pairwise_sweep_refine(const EvalEngine& engine,
                                                 const IdealSchedule& ideal,
                                                 const InitialAssignmentResult& initial,
                                                 const RefineOptions& options = {});
[[nodiscard]] RefineResult pairwise_sweep_refine(const MappingInstance& instance,
                                                 const IdealSchedule& ideal,
                                                 const InitialAssignmentResult& initial,
                                                 const RefineOptions& options = {});

}  // namespace mimdmap
