// Greedy traffic-driven constructive mapping.
//
// A classical constructive baseline in the spirit of Sadayappan & Ercal's
// nearest-neighbor mapping (the paper's ref [7]): clusters are placed in
// descending communication-intensity (mca) order; each goes onto the free
// processor that minimises the traffic-weighted distance to its already
// placed abstract neighbours. Unlike the paper's initial assignment it
// ignores criticality and slack entirely — the ablation benches use it to
// isolate how much the critical-edge guidance specifically contributes.
#pragma once

#include "core/assignment.hpp"
#include "core/instance.hpp"

namespace mimdmap {

struct GreedyResult {
  Assignment assignment;
  /// Sum over abstract edges of traffic * distance under the final
  /// placement (the objective the construction greedily minimises).
  Weight weighted_distance_cost = 0;
};

/// Deterministic: ties break toward smaller ids.
[[nodiscard]] GreedyResult greedy_traffic_mapping(const MappingInstance& instance);

/// The construction's objective for any complete assignment.
[[nodiscard]] Weight weighted_distance_cost(const MappingInstance& instance,
                                            const Assignment& assignment);

}  // namespace mimdmap
