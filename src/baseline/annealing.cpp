#include "baseline/annealing.hpp"

#include <cmath>
#include <stdexcept>

#include "baseline/random_mapping.hpp"
#include "workload/rng.hpp"

namespace mimdmap {

AnnealingResult anneal_mapping(const EvalEngine& engine, const Assignment& start,
                               const AnnealingOptions& options) {
  if (options.cooling <= 0.0 || options.cooling >= 1.0) {
    throw std::invalid_argument("anneal_mapping: cooling must be in (0, 1)");
  }
  const MappingInstance& instance = engine.instance();
  const NodeId n = instance.num_processors();
  Rng rng(options.seed);
  EvalWorkspace& ws = engine.caller_workspace();

  AnnealingResult result;
  result.assignment = start;
  result.total_time = engine.evaluate(start, options.eval).total_time;

  if (n < 2) return result;

  Assignment current = start;
  Weight current_total = result.total_time;

  double temperature = options.initial_temperature;
  if (temperature <= 0.0) {
    // Estimate the energy scale from a handful of random assignments.
    Rng probe = rng.split();
    Weight lo = current_total;
    Weight hi = current_total;
    for (int i = 0; i < 8; ++i) {
      const Weight t = engine.trial_total_time(
          random_assignment(n, probe).host_of_vector(), options.eval, ws);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    temperature = std::max(1.0, static_cast<double>(hi - lo));
  }

  const std::int64_t moves = options.moves_per_step > 0
                                 ? options.moves_per_step
                                 : static_cast<std::int64_t>(n) * (n - 1) / 2;

  // Swap moves are scored incrementally against the accepted state: an
  // accepted move is committed, a rejected one is never applied (no undo
  // swap needed). Trials run with `current_total + 1` as the verdict
  // cutoff: a value at or below current_total is exact with delta <= 0 —
  // accepted outright, no RNG draw, exactly like the pre-delta loop
  // (weights are integral, so cand <= current <=> delta <= 0.0). A value
  // above is a certified lower bound B on the candidate (delta >= B -
  // current > 0), so the acceptance draw happens — same RNG stream — and
  // since exp is decreasing, u >= exp(-(B - current)/T) already certifies
  // u >= exp(-delta/T): a rejection identical to the exact one. Only when
  // u clears the bound's threshold (an actual-acceptance candidate, or a
  // trial that completed exactly despite the cutoff) is the exact total
  // needed; a verdict-exited trial is then re-scored without a cutoff.
  // The accept/reject stream is bit-identical to the pre-delta
  // implementation (enforced by tests/delta_eval_test.cpp).
  DeltaEval delta_eval = engine.begin_delta(current, options.eval);
  bool stop = false;
  for (std::int64_t step = 0; step < options.steps && !stop; ++step) {
    for (std::int64_t m = 0; m < moves; ++m) {
      // Cancellation point: one counting poll per move, before the RNG
      // draws, so cancelling after k polls leaves the exact state of an
      // anneal truncated to its first k moves.
      if (options.cancel.stop_requested()) {
        result.status = options.cancel.status();
        stop = true;
        break;
      }
      ++result.moves_tried;
      const NodeId p = static_cast<NodeId>(rng.uniform(0, n - 1));
      NodeId q = static_cast<NodeId>(rng.uniform(0, n - 2));
      if (q >= p) ++q;
      Weight cand =
          delta_eval.try_swap(current.cluster_on(p), current.cluster_on(q), current_total + 1);
      bool accept = cand <= current_total;  // exact, delta <= 0
      if (!accept) {
        const double u = rng.uniform01();
        const auto bound_delta = static_cast<double>(cand - current_total);
        if (u < std::exp(-bound_delta / temperature)) {
          // Undecided at the bound: fetch the exact total (free when the
          // trial already completed exactly) and apply the exact test.
          if (!delta_eval.has_pending()) {
            cand = delta_eval.try_swap(current.cluster_on(p), current.cluster_on(q));
          }
          const auto delta = static_cast<double>(cand - current_total);
          accept = delta <= 0.0 || u < std::exp(-delta / temperature);
        }
      }
      if (accept) {
        delta_eval.commit();
        current.swap_processors(p, q);
        current_total = cand;
        ++result.moves_accepted;
        if (cand < result.total_time) {
          result.total_time = cand;
          result.assignment = current;
        }
      }
    }
    temperature *= options.cooling;
  }
  result.delta = delta_eval.stats();
  return result;
}

AnnealingResult anneal_mapping(const MappingInstance& instance, const Assignment& start,
                               const AnnealingOptions& options) {
  const EvalEngine engine(instance);
  return anneal_mapping(engine, start, options);
}

}  // namespace mimdmap
