#include "baseline/lee.hpp"

#include <algorithm>
#include <stdexcept>

#include "baseline/random_mapping.hpp"
#include "graph/topological.hpp"
#include "workload/rng.hpp"

namespace mimdmap {

std::vector<NodeId> communication_phases(const MappingInstance& instance) {
  const auto levels = topological_levels(instance.problem());
  const auto& edges = instance.problem().edges();
  std::vector<NodeId> phase(edges.size(), -1);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!instance.clustering().same_cluster(edges[i].from, edges[i].to)) {
      phase[i] = levels[idx(edges[i].from)];
    }
  }
  return phase;
}

Weight phase_comm_cost(const MappingInstance& instance, const Assignment& assignment) {
  const auto phases = communication_phases(instance);
  const auto& edges = instance.problem().edges();
  const Clustering& clustering = instance.clustering();

  NodeId max_phase = -1;
  for (const NodeId p : phases) max_phase = std::max(max_phase, p);
  std::vector<Weight> phase_max(idx(max_phase + 1), 0);

  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (phases[i] < 0) continue;
    const NodeId pa = assignment.host_of(clustering.cluster_of(edges[i].from));
    const NodeId pb = assignment.host_of(clustering.cluster_of(edges[i].to));
    const Weight cost = edges[i].weight * instance.hops()(idx(pa), idx(pb));
    phase_max[idx(phases[i])] = std::max(phase_max[idx(phases[i])], cost);
  }
  Weight sum = 0;
  for (const Weight m : phase_max) sum += m;
  return sum;
}

LeeResult lee_mapping(const MappingInstance& instance, std::int64_t restarts,
                      std::uint64_t seed) {
  if (restarts <= 0) throw std::invalid_argument("lee_mapping: restarts must be > 0");
  const NodeId n = instance.num_processors();
  Rng rng(seed);
  LeeResult best;
  best.comm_cost = kUnreachable;

  for (std::int64_t r = 0; r < restarts; ++r) {
    Assignment a = (r == 0) ? Assignment::identity(n) : random_assignment(n, rng);
    Weight current = phase_comm_cost(instance, a);
    bool improved = true;
    while (improved) {
      improved = false;
      NodeId best_p = -1;
      NodeId best_q = -1;
      Weight best_cost = current;
      for (NodeId p = 0; p < n; ++p) {
        for (NodeId q = p + 1; q < n; ++q) {
          a.swap_processors(p, q);
          const Weight c = phase_comm_cost(instance, a);
          if (c < best_cost) {
            best_cost = c;
            best_p = p;
            best_q = q;
          }
          a.swap_processors(p, q);
        }
      }
      if (best_p >= 0) {
        a.swap_processors(best_p, best_q);
        current = best_cost;
        improved = true;
      }
    }
    if (current < best.comm_cost) {
      best.assignment = a;
      best.comm_cost = current;
    }
    ++best.restarts_used;
  }
  return best;
}

}  // namespace mimdmap
