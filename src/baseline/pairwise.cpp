#include "baseline/pairwise.hpp"

#include <stdexcept>
#include <vector>

#include "workload/rng.hpp"

namespace mimdmap {
namespace {

/// Processors whose clusters are allowed to move.
std::vector<NodeId> free_processors(const MappingInstance& instance,
                                    const InitialAssignmentResult& initial,
                                    const RefineOptions& options) {
  std::vector<NodeId> procs;
  for (NodeId c = 0; c < instance.num_processors(); ++c) {
    if (options.respect_pinned && initial.pinned[idx(c)]) continue;
    procs.push_back(initial.assignment.host_of(c));
  }
  return procs;
}

RefineResult start_result(const EvalEngine& engine, const IdealSchedule& ideal,
                          const InitialAssignmentResult& initial,
                          const RefineOptions& options) {
  if (!initial.assignment.complete()) {
    throw std::invalid_argument("pairwise refine: initial assignment is incomplete");
  }
  RefineResult r;
  r.assignment = initial.assignment;
  r.schedule = engine.evaluate(r.assignment, options.eval);
  r.lower_bound = ideal.lower_bound;
  r.initial_total = r.schedule.total_time;
  return r;
}

}  // namespace

RefineResult pairwise_exchange_refine(const EvalEngine& engine, const IdealSchedule& ideal,
                                      const InitialAssignmentResult& initial,
                                      const RefineOptions& options) {
  const MappingInstance& instance = engine.instance();
  RefineResult result = start_result(engine, ideal, initial, options);
  if (options.use_termination_condition &&
      result.schedule.total_time == result.lower_bound) {
    result.reached_lower_bound = true;
    result.terminated_early = true;
    return result;
  }

  const auto procs = free_processors(instance, initial, options);
  const std::int64_t budget = options.max_trials >= 0
                                  ? options.max_trials
                                  : static_cast<std::int64_t>(instance.num_processors());
  if (procs.size() < 2) {
    result.reached_lower_bound = result.schedule.total_time == result.lower_bound;
    return result;
  }

  Rng rng(options.seed);
  const auto m = static_cast<std::int64_t>(procs.size());
  Assignment best = result.assignment;
  Weight best_total = result.schedule.total_time;
  // Every trial is a two-cluster swap against the incumbent, so it runs on
  // the incremental delta evaluator as a *verdict trial*: the accept test
  // only needs `total < best_total`, so the incumbent rides along as the
  // cutoff and a losing cascade stops at the first certified ">= best"
  // end time. Values below the cutoff are exact and committable; values
  // at or above it are rejected exactly as their exact totals would be.
  // The termination check stays exact too: while the loop is live,
  // best_total is strictly above the lower bound (the equality cases
  // return), so a verdict bound >= best_total can never equal the lower
  // bound and a lower-bound-reaching candidate is never cut off. Hence
  // the accept stream matches the pre-delta implementation bit for bit.
  DeltaEval delta = engine.begin_delta(best, options.eval);
  bool improved_any = false;
  for (std::int64_t trial = 0; trial < budget; ++trial) {
    // Cancellation point: one counting poll per move, BEFORE the RNG
    // draws, so cancelling after k polls leaves the exact state of a run
    // whose budget was k trials (tests/cancellation_test.cpp).
    if (options.cancel.stop_requested()) {
      result.status = options.cancel.status();
      break;
    }
    ++result.trials_used;
    const auto i = rng.uniform(0, m - 1);
    auto j = rng.uniform(0, m - 2);
    if (j >= i) ++j;
    const NodeId pi = procs[static_cast<std::size_t>(i)];
    const NodeId pj = procs[static_cast<std::size_t>(j)];
    const Weight cand_total =
        delta.try_swap(best.cluster_on(pi), best.cluster_on(pj), best_total);
    if (options.use_termination_condition && cand_total == result.lower_bound) {
      best.swap_processors(pi, pj);
      result.assignment = best;
      result.schedule = engine.evaluate(best, options.eval);
      result.reached_lower_bound = true;
      result.terminated_early = trial + 1 < budget;
      ++result.improvements;
      result.delta = delta.stats();
      return result;
    }
    if (cand_total < best_total) {
      delta.commit();
      best.swap_processors(pi, pj);
      best_total = cand_total;
      improved_any = true;
      ++result.improvements;
    }
  }
  if (improved_any) {
    result.assignment = best;
    result.schedule = engine.evaluate(best, options.eval);
  }
  result.reached_lower_bound = result.schedule.total_time == result.lower_bound;
  result.delta = delta.stats();
  return result;
}

RefineResult pairwise_sweep_refine(const EvalEngine& engine, const IdealSchedule& ideal,
                                   const InitialAssignmentResult& initial,
                                   const RefineOptions& options) {
  const MappingInstance& instance = engine.instance();
  RefineResult result = start_result(engine, ideal, initial, options);
  if (options.use_termination_condition &&
      result.schedule.total_time == result.lower_bound) {
    result.reached_lower_bound = true;
    result.terminated_early = true;
    return result;
  }

  const auto procs = free_processors(instance, initial, options);
  const std::int64_t budget = options.max_trials >= 0
                                  ? options.max_trials
                                  : static_cast<std::int64_t>(instance.num_processors());
  bool improved = true;
  bool improved_any = false;
  bool stop = false;
  // Sweep trials are all swaps against the current assignment: score them
  // incrementally as verdict trials against the best total seen in the
  // sweep (only strictly-better candidates matter, so a cascade that
  // reaches the sweep incumbent stops early with a certified bound), then
  // re-score exactly and commit the winning pair (the extra trial is not
  // charged against the budget). The committed DeltaEval total is
  // bit-identical to a full evaluation, so the schedule is only
  // materialized once, on exit.
  DeltaEval delta = engine.begin_delta(result.assignment, options.eval);
  Weight current_total = result.schedule.total_time;
  while (improved && result.trials_used < budget) {
    improved = false;
    std::size_t best_i = 0;
    std::size_t best_j = 0;
    Weight best_total = current_total;
    for (std::size_t i = 0; i < procs.size() && result.trials_used < budget && !stop; ++i) {
      for (std::size_t j = i + 1; j < procs.size() && result.trials_used < budget && !stop;
           ++j) {
        // Cancellation point (one counting poll per candidate move). The
        // sweep's incumbent-so-far is the current assignment plus the best
        // pending pair of this partial sweep; on cancel, fall through and
        // apply it below exactly as a budget exhaustion mid-sweep would.
        if (options.cancel.stop_requested()) {
          result.status = options.cancel.status();
          stop = true;
          break;
        }
        ++result.trials_used;
        const Weight t = delta.try_swap(result.assignment.cluster_on(procs[i]),
                                        result.assignment.cluster_on(procs[j]), best_total);
        if (t < best_total) {
          best_total = t;
          best_i = i;
          best_j = j;
          improved = true;
        }
      }
    }
    if (improved) {
      (void)delta.try_swap(result.assignment.cluster_on(procs[best_i]),
                           result.assignment.cluster_on(procs[best_j]));
      delta.commit();
      result.assignment.swap_processors(procs[best_i], procs[best_j]);
      current_total = delta.committed_total();
      improved_any = true;
      ++result.improvements;
      if (options.use_termination_condition && current_total == result.lower_bound) {
        result.schedule = engine.evaluate(result.assignment, options.eval);
        result.reached_lower_bound = true;
        result.terminated_early = true;
        result.delta = delta.stats();
        return result;
      }
    }
  }
  if (improved_any) {
    result.schedule = engine.evaluate(result.assignment, options.eval);
  }
  result.reached_lower_bound = result.schedule.total_time == result.lower_bound;
  result.delta = delta.stats();
  return result;
}

RefineResult pairwise_exchange_refine(const MappingInstance& instance,
                                      const IdealSchedule& ideal,
                                      const InitialAssignmentResult& initial,
                                      const RefineOptions& options) {
  const EvalEngine engine(instance);
  return pairwise_exchange_refine(engine, ideal, initial, options);
}

RefineResult pairwise_sweep_refine(const MappingInstance& instance, const IdealSchedule& ideal,
                                   const InitialAssignmentResult& initial,
                                   const RefineOptions& options) {
  const EvalEngine engine(instance);
  return pairwise_sweep_refine(engine, ideal, initial, options);
}

}  // namespace mimdmap
