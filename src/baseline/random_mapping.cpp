#include "baseline/random_mapping.hpp"

#include <algorithm>
#include <stdexcept>

namespace mimdmap {

Assignment random_assignment(NodeId n, Rng& rng) {
  return Assignment::from_cluster_on(rng.permutation(n));
}

RandomMappingStats evaluate_random_mappings(const EvalEngine& engine, std::int64_t trials,
                                            std::uint64_t seed, const EvalOptions& eval) {
  if (trials <= 0) throw std::invalid_argument("evaluate_random_mappings: trials must be > 0");
  Rng rng(seed);
  RandomMappingStats stats;
  stats.totals.reserve(static_cast<std::size_t>(trials));
  EvalWorkspace& ws = engine.caller_workspace();
  Weight sum = 0;
  for (std::int64_t t = 0; t < trials; ++t) {
    const Assignment a = random_assignment(engine.instance().num_processors(), rng);
    const Weight total = engine.trial_total_time(a.host_of_vector(), eval, ws);
    stats.totals.push_back(total);
    sum += total;
  }
  stats.min = *std::min_element(stats.totals.begin(), stats.totals.end());
  stats.max = *std::max_element(stats.totals.begin(), stats.totals.end());
  stats.mean_milli = sum * 1000 / trials;
  return stats;
}

RandomMappingStats evaluate_random_mappings(const MappingInstance& instance,
                                            std::int64_t trials, std::uint64_t seed,
                                            const EvalOptions& eval) {
  const EvalEngine engine(instance);
  return evaluate_random_mappings(engine, trials, seed, eval);
}

}  // namespace mimdmap
