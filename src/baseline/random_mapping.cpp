#include "baseline/random_mapping.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

namespace mimdmap {

Assignment random_assignment(NodeId n, Rng& rng) {
  return Assignment::from_cluster_on(rng.permutation(n));
}

RandomMappingStats evaluate_random_mappings(const EvalEngine& engine, std::int64_t trials,
                                            std::uint64_t seed, const EvalOptions& eval) {
  if (trials <= 0) throw std::invalid_argument("evaluate_random_mappings: trials must be > 0");
  Rng rng(seed);
  RandomMappingStats stats;
  stats.totals.reserve(static_cast<std::size_t>(trials));
  // Candidates are drawn from the RNG stream in the legacy per-trial order
  // but scored in SoA waves — one topo walk per `width` mappings
  // (EvalEngine::evaluate_batch_soa), reusing the wave's scratch vectors so
  // memory stays O(width). Totals are bit-identical to the scalar loop.
  const int width = std::max(1, engine.resolve_batch_width(0, eval));
  std::vector<std::vector<NodeId>> wave(static_cast<std::size_t>(width));
  std::vector<Weight> totals(static_cast<std::size_t>(width), 0);
  Weight sum = 0;
  for (std::int64_t t = 0; t < trials;) {
    const std::size_t m = static_cast<std::size_t>(
        std::min<std::int64_t>(width, trials - t));
    for (std::size_t i = 0; i < m; ++i) {
      wave[i] = random_assignment(engine.instance().num_processors(), rng).host_of_vector();
    }
    engine.batch_total_times(std::span(wave.data(), m), eval, /*num_threads=*/1, width,
                             std::span(totals.data(), m));
    for (std::size_t i = 0; i < m; ++i) {
      stats.totals.push_back(totals[i]);
      sum += totals[i];
    }
    t += static_cast<std::int64_t>(m);
  }
  stats.min = *std::min_element(stats.totals.begin(), stats.totals.end());
  stats.max = *std::max_element(stats.totals.begin(), stats.totals.end());
  stats.mean_milli = sum * 1000 / trials;
  return stats;
}

RandomMappingStats evaluate_random_mappings(const MappingInstance& instance,
                                            std::int64_t trials, std::uint64_t seed,
                                            const EvalOptions& eval) {
  const EvalEngine engine(instance);
  return evaluate_random_mappings(engine, trials, seed, eval);
}

}  // namespace mimdmap
