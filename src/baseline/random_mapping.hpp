// Random mapping — the paper's experimental comparator (section 5).
//
// "To avoid criticism for having used only several special examples
// particularly suited to our approach, random mapping was chosen to be
// compared with our mapping strategy. ... we performed several random
// mappings of the same problem graph to the same system graph and take the
// average of the total times."
#pragma once

#include <cstdint>
#include <vector>

#include "core/assignment.hpp"
#include "core/eval_engine.hpp"
#include "core/evaluation.hpp"
#include "core/instance.hpp"
#include "workload/rng.hpp"

namespace mimdmap {

/// A uniformly random complete assignment of n clusters to n processors.
[[nodiscard]] Assignment random_assignment(NodeId n, Rng& rng);

struct RandomMappingStats {
  /// Total time of each trial.
  std::vector<Weight> totals;
  Weight min = 0;
  Weight max = 0;
  /// Mean total time in integer thousandths (the library is integer-only;
  /// divide by 1000.0 for a double).
  Weight mean_milli = 0;

  [[nodiscard]] double mean() const noexcept {
    return static_cast<double>(mean_milli) / 1000.0;
  }
};

/// Evaluates `trials` independent random assignments (paper: "several") and
/// aggregates their total times. The engine overload runs the trials on the
/// zero-allocation kernel.
[[nodiscard]] RandomMappingStats evaluate_random_mappings(const EvalEngine& engine,
                                                          std::int64_t trials,
                                                          std::uint64_t seed,
                                                          const EvalOptions& eval = {});
[[nodiscard]] RandomMappingStats evaluate_random_mappings(const MappingInstance& instance,
                                                          std::int64_t trials,
                                                          std::uint64_t seed,
                                                          const EvalOptions& eval = {});

}  // namespace mimdmap
