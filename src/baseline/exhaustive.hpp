// Exhaustive search over all ns! assignments.
//
// Ground truth for small instances: certifies optimality claims (the
// termination-condition property tests), and regenerates the paper's
// counter-examples exactly — "the cardinality-optimal assignment is not
// total-time optimal" (Figs. 7-12) and "the comm-cost-optimal assignment is
// not total-time optimal" (Figs. 13-17) are existence claims over the whole
// assignment space, which only enumeration can certify.
//
// Guarded to ns <= 10 (10! = 3.6M schedules); the intended sizes are the
// paper's 8-processor examples.
#pragma once

#include <functional>

#include "core/assignment.hpp"
#include "core/eval_engine.hpp"
#include "core/evaluation.hpp"
#include "core/instance.hpp"

namespace mimdmap {

/// Calls fn for every complete assignment of n clusters to n processors.
/// Throws std::invalid_argument for n > 10.
void for_each_assignment(NodeId n, const std::function<void(const Assignment&)>& fn);

struct ExhaustiveResult {
  Assignment assignment;
  Weight total_time = 0;
};

/// Assignment with the minimum total execution time. The engine overload
/// scans all ns! schedules on the zero-allocation trial kernel.
[[nodiscard]] ExhaustiveResult exhaustive_best_total(const EvalEngine& engine,
                                                     const EvalOptions& eval = {});
[[nodiscard]] ExhaustiveResult exhaustive_best_total(const MappingInstance& instance,
                                                     const EvalOptions& eval = {});

struct ExhaustiveObjectiveResult {
  /// Best (optimal) objective value over all assignments.
  Weight best_objective = 0;
  /// Minimum total time among objective-optimal assignments, and one
  /// assignment achieving it.
  Assignment best_assignment_at_objective;
  Weight best_total_at_objective = 0;
};

/// Maximum Bokhari cardinality, plus the best total time attainable while
/// staying cardinality-optimal.
[[nodiscard]] ExhaustiveObjectiveResult exhaustive_best_cardinality(
    const EvalEngine& engine, const EvalOptions& eval = {});
[[nodiscard]] ExhaustiveObjectiveResult exhaustive_best_cardinality(
    const MappingInstance& instance, const EvalOptions& eval = {});

/// Minimum Lee phase communication cost, plus the best total time
/// attainable while staying comm-cost-optimal.
[[nodiscard]] ExhaustiveObjectiveResult exhaustive_best_comm_cost(
    const EvalEngine& engine, const EvalOptions& eval = {});
[[nodiscard]] ExhaustiveObjectiveResult exhaustive_best_comm_cost(
    const MappingInstance& instance, const EvalOptions& eval = {});

}  // namespace mimdmap
