#include "baseline/exhaustive.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "baseline/bokhari.hpp"
#include "baseline/lee.hpp"

namespace mimdmap {

void for_each_assignment(NodeId n, const std::function<void(const Assignment&)>& fn) {
  if (n < 0 || n > 10) {
    throw std::invalid_argument("for_each_assignment: n must be in [0, 10]");
  }
  std::vector<NodeId> perm(idx(n));
  std::iota(perm.begin(), perm.end(), NodeId{0});
  do {
    fn(Assignment::from_cluster_on(perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
}

ExhaustiveResult exhaustive_best_total(const EvalEngine& engine, const EvalOptions& eval) {
  ExhaustiveResult best;
  best.total_time = kUnreachable;
  EvalWorkspace& ws = engine.caller_workspace();
  for_each_assignment(engine.instance().num_processors(), [&](const Assignment& a) {
    const Weight t = engine.trial_total_time(a.host_of_vector(), eval, ws);
    if (t < best.total_time) {
      best.total_time = t;
      best.assignment = a;
    }
  });
  return best;
}

ExhaustiveResult exhaustive_best_total(const MappingInstance& instance,
                                       const EvalOptions& eval) {
  const EvalEngine engine(instance);
  return exhaustive_best_total(engine, eval);
}

namespace {

/// Shared scan: keep the best objective value (per `better`), and among
/// ties the smallest total time.
template <typename Objective, typename Better>
ExhaustiveObjectiveResult scan(const EvalEngine& engine, const EvalOptions& eval,
                               Objective&& objective, Better&& better, Weight worst_init) {
  ExhaustiveObjectiveResult result;
  result.best_objective = worst_init;
  result.best_total_at_objective = kUnreachable;
  EvalWorkspace& ws = engine.caller_workspace();
  for_each_assignment(engine.instance().num_processors(), [&](const Assignment& a) {
    const Weight obj = objective(a);
    if (better(obj, result.best_objective)) {
      result.best_objective = obj;
      result.best_total_at_objective = kUnreachable;
    }
    if (obj == result.best_objective) {
      const Weight t = engine.trial_total_time(a.host_of_vector(), eval, ws);
      if (t < result.best_total_at_objective) {
        result.best_total_at_objective = t;
        result.best_assignment_at_objective = a;
      }
    }
  });
  return result;
}

}  // namespace

ExhaustiveObjectiveResult exhaustive_best_cardinality(const EvalEngine& engine,
                                                      const EvalOptions& eval) {
  const MappingInstance& instance = engine.instance();
  return scan(
      engine, eval,
      [&instance](const Assignment& a) { return static_cast<Weight>(cardinality(instance, a)); },
      [](Weight a, Weight b) { return a > b; }, std::numeric_limits<Weight>::min());
}

ExhaustiveObjectiveResult exhaustive_best_cardinality(const MappingInstance& instance,
                                                      const EvalOptions& eval) {
  const EvalEngine engine(instance);
  return exhaustive_best_cardinality(engine, eval);
}

ExhaustiveObjectiveResult exhaustive_best_comm_cost(const EvalEngine& engine,
                                                    const EvalOptions& eval) {
  const MappingInstance& instance = engine.instance();
  return scan(
      engine, eval,
      [&instance](const Assignment& a) { return phase_comm_cost(instance, a); },
      [](Weight a, Weight b) { return a < b; }, kUnreachable);
}

ExhaustiveObjectiveResult exhaustive_best_comm_cost(const MappingInstance& instance,
                                                    const EvalOptions& eval) {
  const EvalEngine engine(instance);
  return exhaustive_best_comm_cost(engine, eval);
}

}  // namespace mimdmap
