#include "baseline/greedy.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace mimdmap {

Weight weighted_distance_cost(const MappingInstance& instance, const Assignment& assignment) {
  const AbstractGraph& abs = instance.abstract();
  Weight cost = 0;
  for (NodeId a = 0; a < abs.node_count(); ++a) {
    for (const NodeId b : abs.neighbors(a)) {
      if (b <= a) continue;  // each undirected abstract edge once
      cost += abs.edge_traffic(a, b) *
              instance.hops()(idx(assignment.host_of(a)), idx(assignment.host_of(b)));
    }
  }
  return cost;
}

GreedyResult greedy_traffic_mapping(const MappingInstance& instance) {
  const AbstractGraph& abs = instance.abstract();
  const SystemGraph& sys = instance.system();
  const NodeId n = instance.num_processors();

  // Placement order: descending communication intensity, ties by id.
  std::vector<NodeId> order(idx(n));
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&abs](NodeId a, NodeId b) {
    return abs.mca(a) > abs.mca(b);
  });

  Assignment assignment = Assignment::partial(n);
  std::vector<bool> proc_used(idx(n), false);

  for (const NodeId cluster : order) {
    NodeId best_proc = -1;
    Weight best_cost = 0;
    NodeId best_degree = -1;
    for (NodeId p = 0; p < n; ++p) {
      if (proc_used[idx(p)]) continue;
      // Incremental cost against already placed neighbours.
      Weight cost = 0;
      for (const NodeId nb : abs.neighbors(cluster)) {
        const NodeId host = assignment.host_of(nb);
        if (host == Assignment::kUnassigned) continue;
        cost += abs.edge_traffic(cluster, nb) * instance.hops()(idx(p), idx(host));
      }
      // Prefer lower cost; among equals the higher-degree processor (more
      // room for future neighbours), then the smaller id.
      if (best_proc < 0 || cost < best_cost ||
          (cost == best_cost && sys.degree(p) > best_degree)) {
        best_proc = p;
        best_cost = cost;
        best_degree = sys.degree(p);
      }
    }
    assignment.place(cluster, best_proc);
    proc_used[idx(best_proc)] = true;
  }

  GreedyResult result;
  result.weighted_distance_cost = weighted_distance_cost(instance, assignment);
  result.assignment = std::move(assignment);
  return result;
}

}  // namespace mimdmap
