// Simulated-annealing mapping (paper refs [3] Kirkpatrick et al. and [14]
// Lee & Bic, "Comparing Quenching and Slow Simulated Annealing in the
// Mapping Problem").
//
// A stronger-but-slower comparator for the paper's refinement stage: moves
// are processor swaps; total execution time is the energy. Included so the
// ablation benches can show where the paper's cheap ns-trial refinement
// stands between random mapping and an expensive metaheuristic.
#pragma once

#include <cstdint>

#include "core/assignment.hpp"
#include "core/cancellation.hpp"
#include "core/eval_engine.hpp"
#include "core/evaluation.hpp"
#include "core/instance.hpp"

namespace mimdmap {

struct AnnealingOptions {
  /// Initial temperature; <= 0 derives one from the spread of a few random
  /// assignments.
  double initial_temperature = -1.0;
  /// Geometric cooling factor per temperature step.
  double cooling = 0.95;
  /// Swap attempts per temperature step; <= 0 means ns * (ns - 1) / 2.
  std::int64_t moves_per_step = -1;
  /// Temperature steps.
  std::int64_t steps = 60;
  std::uint64_t seed = 0xdecafbadULL;
  EvalOptions eval;
  /// Cooperative cancellation / deadline, polled once per move (before the
  /// RNG draws, so cancelling after k polls truncates the move stream to
  /// exactly its first k moves). A tripped token stops the anneal and
  /// returns the best assignment seen so far with status set.
  CancelToken cancel;
};

struct AnnealingResult {
  Assignment assignment;
  Weight total_time = 0;
  std::int64_t moves_tried = 0;
  std::int64_t moves_accepted = 0;
  /// Incremental-evaluation counters (swap moves run on a DeltaEval).
  DeltaStats delta;
  /// kOk for a full run; kCancelled / kDeadlineExceeded when
  /// AnnealingOptions::cancel stopped the anneal — assignment/total_time
  /// then hold the best state reached before the signal.
  MapStatus status = MapStatus::kOk;
};

/// Anneals from the given starting assignment (typically the identity or
/// the paper's initial assignment). Swap moves are scored on the engine's
/// incremental delta evaluator (bit-identical totals to the full kernel),
/// so per-move cost scales with the affected suffix, not with np.
[[nodiscard]] AnnealingResult anneal_mapping(const EvalEngine& engine, const Assignment& start,
                                             const AnnealingOptions& options = {});
[[nodiscard]] AnnealingResult anneal_mapping(const MappingInstance& instance,
                                             const Assignment& start,
                                             const AnnealingOptions& options = {});

}  // namespace mimdmap
