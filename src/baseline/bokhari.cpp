#include "baseline/bokhari.hpp"

#include <stdexcept>

#include "baseline/random_mapping.hpp"
#include "workload/rng.hpp"

namespace mimdmap {
namespace {

/// Shared pairwise-interchange ascent: repeatedly applies the best
/// improving swap until none exists.
template <typename Objective>
void hill_climb(const MappingInstance& instance, Assignment& a, Objective&& score) {
  const NodeId n = instance.num_processors();
  bool improved = true;
  auto current = score(a);
  while (improved) {
    improved = false;
    NodeId best_p = -1;
    NodeId best_q = -1;
    auto best = current;
    for (NodeId p = 0; p < n; ++p) {
      for (NodeId q = p + 1; q < n; ++q) {
        a.swap_processors(p, q);
        const auto s = score(a);
        if (s > best) {
          best = s;
          best_p = p;
          best_q = q;
        }
        a.swap_processors(p, q);  // undo
      }
    }
    if (best_p >= 0) {
      a.swap_processors(best_p, best_q);
      current = best;
      improved = true;
    }
  }
}

}  // namespace

std::int64_t cardinality(const MappingInstance& instance, const Assignment& assignment) {
  std::int64_t count = 0;
  const Clustering& clustering = instance.clustering();
  for (const TaskEdge& e : instance.problem().edges()) {
    const NodeId ca = clustering.cluster_of(e.from);
    const NodeId cb = clustering.cluster_of(e.to);
    if (ca == cb) continue;
    const Weight d = instance.hops()(idx(assignment.host_of(ca)), idx(assignment.host_of(cb)));
    if (d == 1) ++count;
  }
  return count;
}

Weight weighted_cardinality(const MappingInstance& instance, const Assignment& assignment) {
  Weight sum = 0;
  const Clustering& clustering = instance.clustering();
  for (const TaskEdge& e : instance.problem().edges()) {
    const NodeId ca = clustering.cluster_of(e.from);
    const NodeId cb = clustering.cluster_of(e.to);
    if (ca == cb) continue;
    const Weight d = instance.hops()(idx(assignment.host_of(ca)), idx(assignment.host_of(cb)));
    if (d == 1) sum += e.weight;
  }
  return sum;
}

BokhariResult bokhari_mapping(const MappingInstance& instance, std::int64_t restarts,
                              std::uint64_t seed) {
  if (restarts <= 0) throw std::invalid_argument("bokhari_mapping: restarts must be > 0");
  Rng rng(seed);
  BokhariResult best;
  best.cardinality = -1;
  for (std::int64_t r = 0; r < restarts; ++r) {
    Assignment a = (r == 0) ? Assignment::identity(instance.num_processors())
                            : random_assignment(instance.num_processors(), rng);
    hill_climb(instance, a,
               [&instance](const Assignment& x) { return cardinality(instance, x); });
    const std::int64_t card = cardinality(instance, a);
    if (card > best.cardinality) {
      best.assignment = a;
      best.cardinality = card;
    }
    ++best.restarts_used;
  }
  return best;
}

}  // namespace mimdmap
