// Bokhari-style cardinality mapping (paper section 2.2; Bokhari, "On the
// Mapping Problem", IEEE ToC 1981 — the paper's ref [1]).
//
// Bokhari evaluates a mapping by its *cardinality*: the number of problem
// edges that fall on system edges (hop distance exactly 1). The paper's
// Figs. 7-12 show that a cardinality-optimal assignment may be strictly
// worse in total execution time; this module supplies the objective and a
// pairwise-interchange hill climber in the spirit of Bokhari's algorithm so
// benches can regenerate that comparison.
#pragma once

#include <cstdint>

#include "core/assignment.hpp"
#include "core/instance.hpp"

namespace mimdmap {

/// Number of clustered problem edges whose endpoint clusters sit on
/// adjacent processors. Bokhari counts problem edges (all his problem edges
/// have equal weight); with a clustering in place the clustered edges play
/// that role.
[[nodiscard]] std::int64_t cardinality(const MappingInstance& instance,
                                       const Assignment& assignment);

/// Weighted variant: sums the weights of clustered edges falling on single
/// system edges (gives heavier messages more pull).
[[nodiscard]] Weight weighted_cardinality(const MappingInstance& instance,
                                          const Assignment& assignment);

struct BokhariResult {
  Assignment assignment;
  std::int64_t cardinality = 0;
  std::int64_t restarts_used = 0;
};

/// Maximises cardinality by steepest-ascent pairwise interchange with
/// random restarts (Bokhari's original algorithm alternates pairwise
/// interchanges with probabilistic jumps; restarts play the role of the
/// jumps). Deterministic in (instance, restarts, seed).
[[nodiscard]] BokhariResult bokhari_mapping(const MappingInstance& instance,
                                            std::int64_t restarts, std::uint64_t seed);

}  // namespace mimdmap
