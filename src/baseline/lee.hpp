// Lee-Aggarwal-style phase communication-cost mapping (paper section 2.2;
// Lee & Aggarwal, "A Mapping Strategy for Parallel Processing", IEEE ToC
// 1987 — the paper's ref [2]).
//
// Lee groups communications into *phases*; all communications of a phase
// are assumed to start simultaneously, so a phase costs as much as its most
// expensive message (weight x hop distance), and the objective is the sum
// of the phase costs. The paper's Figs. 13-17 show that a comm-cost-optimal
// assignment may lose in total execution time.
//
// Lee's phases come from the application; as a deterministic,
// assignment-independent proxy we put a clustered edge into the phase given
// by the topological level of its source task (the paper's Fig. 15 example
// decomposes into per-wavefront phases in exactly this way, modulo the
// ordering of independent communications).
#pragma once

#include <cstdint>
#include <vector>

#include "core/assignment.hpp"
#include "core/instance.hpp"

namespace mimdmap {

/// Phase index of every clustered edge (insertion order of
/// problem().edges(), entries for intra-cluster edges = -1).
[[nodiscard]] std::vector<NodeId> communication_phases(const MappingInstance& instance);

/// Sum over phases of the maximum (weight x hops) within the phase —
/// Lee's objective function (paper Fig. 15: "sum of commu. cost").
[[nodiscard]] Weight phase_comm_cost(const MappingInstance& instance,
                                     const Assignment& assignment);

struct LeeResult {
  Assignment assignment;
  Weight comm_cost = 0;
  std::int64_t restarts_used = 0;
};

/// Minimises the phase communication cost by steepest-descent pairwise
/// interchange with random restarts. Deterministic in (instance, restarts,
/// seed).
[[nodiscard]] LeeResult lee_mapping(const MappingInstance& instance, std::int64_t restarts,
                                    std::uint64_t seed);

}  // namespace mimdmap
