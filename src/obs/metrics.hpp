// Process-wide metrics registry: the ONE place every layer reports to.
//
// PRs 3-7 grew a serving stack whose observability was fragmented one-off
// structs — DeltaStats on reports, ServiceStats behind `op=stats`, ad-hoc
// `scheduler:` summary lines. This module unifies them behind a single
// lock-light registry of named instruments that any subsystem can bump on
// its hot path and any consumer (the `op=metrics` wire frame, `serve
// --metrics-dump`, the batch progress line, tests) can read as one
// consistent exposition:
//
//  * Counter — monotonic, sharded across cache-line-padded per-thread
//    cells: add() is one relaxed fetch_add on the caller's shard, so
//    concurrent writers never contend on a line; value() sums the shards
//    (reads are rare, writes are hot);
//  * Gauge — instantaneous int64, set/add (low-rate: queue depths,
//    in-flight jobs, pool width);
//  * Histogram — log-bucketed (4 sub-buckets per octave, <= 12.5%
//    relative error) with the same per-shard cells, exact count/sum/max,
//    and p50/p95/p99 extraction from the merged buckets;
//  * Registry — name -> instrument, created on first use and immortal
//    (callers cache references in function-local statics, so steady-state
//    lookups cost nothing and registration takes the mutex exactly once);
//  * render_prometheus() — text exposition in `name{label="v"} value`
//    lines (counters/gauges one line each; histograms expose _count,
//    _sum, _max and quantile series), the payload behind `op=metrics`.
//
// Determinism contract: instruments are write-only from the algorithms'
// point of view — nothing in the library reads a metric to make a
// decision, so accept streams and mapping results are bit-identical with
// or without observers. Overhead budget: a counter bump is one relaxed
// atomic add; a histogram record is two adds and a CAS-max; neither
// appears inside per-candidate kernel loops (instrumentation sits at
// chunk/wave/job granularity — see DESIGN.md section 17).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mimdmap::obs {

/// Small dense shard index of the calling thread (stable for the thread's
/// lifetime, assigned on first use). Counters and histograms hash it into
/// their cell arrays so concurrent writers land on distinct cache lines.
[[nodiscard]] unsigned thread_shard() noexcept;

/// Shards per instrument. Power of two; more than typical core counts is
/// wasted padding, fewer serializes writers — 16 covers the pools this
/// code fields while keeping each counter at one page worth of cells.
inline constexpr unsigned kShards = 16;

/// Monotonic counter. add() never contends across threads (per-shard
/// relaxed atomics); value() is a 16-load sum.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[thread_shard() & (kShards - 1)].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) total += cell.v.load(std::memory_order_relaxed);
    return total;
  }

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_;
};

/// Instantaneous value (queue depth, active jobs, pool width). Single
/// atomic — gauges are updated at scheduling granularity, not in kernels.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-bucketed latency/size histogram. record() is wait-free (two relaxed
/// adds on the caller's shard plus a relaxed CAS-max); quantiles come from
/// the merged bucket array with <= 12.5% relative error (4 sub-buckets per
/// octave), count/sum/max are exact.
class Histogram {
 public:
  /// Sub-octave resolution: each power-of-two range splits into
  /// 2^kSubBits linear buckets.
  static constexpr int kSubBits = 2;
  static constexpr int kBuckets = (64 - kSubBits) * (1 << kSubBits) + (1 << kSubBits);

  void record(std::int64_t value) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// Non-empty buckets in ascending order as (inclusive upper bound,
    /// per-bucket count) — the exposition turns these into cumulative
    /// Prometheus `_bucket{le="..."}` series. Only occupied buckets are
    /// kept so a sparse histogram stays a short vector, not 252 entries.
    std::vector<std::pair<double, std::uint64_t>> buckets;
  };
  /// Merges the shards and extracts the summary quantiles.
  [[nodiscard]] Snapshot snapshot() const;

  /// Bucket index of a value (clamped at 0). Exposed for tests.
  [[nodiscard]] static int bucket_of(std::uint64_t v) noexcept;
  /// Representative value (bucket midpoint) of a bucket index.
  [[nodiscard]] static double bucket_mid(int bucket) noexcept;
  /// Inclusive upper bound of a bucket (the Prometheus `le` edge): the
  /// largest integer value that bucket_of() maps to this bucket.
  [[nodiscard]] static double bucket_le(int bucket) noexcept;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint32_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  std::array<Shard, 8> shards_;  // histograms are bigger than counters; fewer shards
};

/// Windowed event rate (jobs/sec on the batch progress line): record()
/// drops events into per-second ring slots and per_second() averages the
/// trailing window, so consumers read a live rate without diffing counter
/// snapshots themselves. The explicit-time overloads (`*_at`) exist for
/// deterministic tests; production callers use the steady-clock versions.
/// Slot recycling is lossy under a same-slot write race by design — the
/// instrument feeds a progress line, not a correctness decision.
class Rate {
 public:
  /// Averaging window. Slots must exceed it so the current (partial)
  /// second never evicts a second still inside the window.
  static constexpr int kWindowSeconds = 10;
  static constexpr int kSlots = 16;

  void record(std::uint64_t n = 1) noexcept { record_at(n, now_seconds()); }
  void record_at(std::uint64_t n, std::int64_t second) noexcept;

  /// Events per second over the trailing window ending at `second`
  /// (inclusive). Averages over the occupied span, not the full window,
  /// so a burst that started two seconds ago reads as its true rate.
  [[nodiscard]] double per_second() const noexcept {
    return per_second_at(now_seconds());
  }
  [[nodiscard]] double per_second_at(std::int64_t second) const noexcept;

  Rate() = default;
  Rate(const Rate&) = delete;
  Rate& operator=(const Rate&) = delete;

 private:
  [[nodiscard]] static std::int64_t now_seconds() noexcept {
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  struct alignas(64) Slot {
    std::atomic<std::int64_t> second{-1};
    std::atomic<std::uint64_t> count{0};
  };
  std::array<Slot, kSlots> slots_;
};

/// One label pair baked into a series name at registration time
/// (`name{op="submit"}`). Labels identify distinct instruments — there is
/// no dynamic-label lookup on the hot path.
using Label = std::pair<std::string, std::string>;

/// The process-wide instrument registry. Instruments are created on first
/// request for a (name, labels) series and live forever; references stay
/// valid for the process lifetime, so callers cache them in function-local
/// statics and pay the mutex only once per call site.
class Registry {
 public:
  static Registry& instance();

  [[nodiscard]] Counter& counter(const std::string& name, std::vector<Label> labels = {});
  [[nodiscard]] Gauge& gauge(const std::string& name, std::vector<Label> labels = {});
  [[nodiscard]] Histogram& histogram(const std::string& name, std::vector<Label> labels = {});
  [[nodiscard]] Rate& rate(const std::string& name, std::vector<Label> labels = {});

  /// Text exposition: `# TYPE` headers plus one `series value` line per
  /// counter/gauge/rate (rates render as gauges of their current
  /// per-second value), and _count/_sum/_max/quantile lines plus
  /// cumulative `_bucket{le="..."}` series per histogram, sorted by
  /// series name (stable output for tests and diffing).
  [[nodiscard]] std::string render_prometheus() const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;

  enum class Kind { kCounter, kGauge, kHistogram, kRate };
  struct Entry {
    Kind kind = Kind::kCounter;
    std::string name;    // base name, no labels
    std::string labels;  // rendered `{k="v",...}` or empty
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Rate> rate;
  };

  Entry& find_or_create(Kind kind, const std::string& name, std::vector<Label>&& labels);

  mutable std::mutex mutex_;
  /// Registration order; render_prometheus() sorts by series at dump
  /// time (dumps are cold, registration is once per call site).
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Shorthand for the singleton.
[[nodiscard]] inline Registry& registry() { return Registry::instance(); }

}  // namespace mimdmap::obs
