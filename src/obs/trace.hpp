// Per-job span tracing: bounded per-thread rings + Chrome trace export.
//
// Every interesting stage of a job's life — admission, queue wait, build,
// topology-cache lookup, mapper stages, refinement chunks, SoA waves,
// pool lane activity — is wrapped in a Span. Spans record into a bounded
// per-thread ring buffer (drop-oldest, so a long-running daemon never
// grows without bound) and export as Chrome trace-event JSON that loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Cost contract: when tracing is disabled (the default), constructing a
// Span is ONE relaxed atomic load and a branch — no clock read, no TLS
// ring lookup, nothing. Enabled, a span is two steady_clock reads plus a
// ring slot write. Nothing in the library reads trace state to make a
// decision, so accept streams and mapping results stay bit-identical
// traced or not.
//
// Span names and categories are `const char*` by design: callers pass
// string literals (static storage), the ring stores the pointers, and
// export dereferences them. Dynamic context goes in the single numeric
// arg (job id, chunk index, wave width).
//
// Lifecycle: Tracer::instance().enable() before the work, export_chrome_json()
// after it quiesces (rings are owned by the tracer, so threads may have
// exited by then; concurrent recording during export yields torn-but-
// structurally-valid output). Setting MIMDMAP_TRACE=1 in the environment
// enables tracing at startup — used by CI to measure the enabled path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace mimdmap::obs {

/// The single global gate. Extern so the disabled check inlines to one
/// relaxed load at every span site.
extern std::atomic<bool> g_trace_enabled;

/// One completed span. Name/category must point at static storage.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  const char* arg_name = nullptr;  ///< optional numeric arg key (static storage)
  std::int64_t arg = 0;
};

/// Process-wide trace collector. Threads record into their own bounded
/// ring (registered on first use, owned here so export survives thread
/// exit); export merges all rings into one Chrome trace-event JSON.
class Tracer {
 public:
  static Tracer& instance();

  /// Start collecting. Clears prior events. `events_per_thread` bounds
  /// each ring; when full, the oldest events are overwritten.
  void enable(std::size_t events_per_thread = 16384);
  void disable();
  /// Drop all recorded events (rings stay registered).
  void clear();

  [[nodiscard]] bool enabled() const noexcept {
    return g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Monotonic timestamp in ns since the tracer's epoch (enable() time).
  [[nodiscard]] static std::int64_t now_ns() noexcept;

  /// Append a completed event to the calling thread's ring. No-op when
  /// disabled. Used directly for cross-thread spans (queue wait starts on
  /// the admitting thread, ends on the runner).
  void record(const TraceEvent& ev);

  /// Events currently held across all rings (post-drop).
  [[nodiscard]] std::size_t event_count() const;
  /// Total events overwritten by ring wrap since enable().
  [[nodiscard]] std::uint64_t dropped() const;

  /// Chrome trace-event JSON (`{"traceEvents":[...]}`), one complete
  /// "X" (duration) event per span, tid = recording thread's index.
  void export_chrome_json(std::ostream& os) const;
  [[nodiscard]] std::string export_chrome_json() const;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer();

  struct Ring {
    std::vector<TraceEvent> slots;
    /// Monotonic write index; slot = head % slots.size(). head > size
    /// means the oldest (head - size) events were overwritten. Atomic so
    /// the counters (event_count/dropped) read a sane value concurrently
    /// with recording; slot payloads are only read after quiescence (the
    /// export contract in the header comment).
    std::atomic<std::uint64_t> head{0};
    int tid = 0;
  };

  Ring* ring_for_this_thread();

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Ring>> rings_;
  std::size_t capacity_ = 16384;
  std::int64_t epoch_ns_ = 0;
};

/// RAII span: construct at stage entry, destruct (or end()) at exit.
/// Disabled cost: one relaxed load + branch in the ctor, same in the dtor.
class Span {
 public:
  /// `name`/`cat` must be string literals (or otherwise static).
  explicit Span(const char* name, const char* cat = "job") noexcept {
    if (g_trace_enabled.load(std::memory_order_relaxed)) begin(name, cat);
  }
  Span(const char* name, const char* cat, const char* arg_name,
       std::int64_t arg) noexcept {
    if (g_trace_enabled.load(std::memory_order_relaxed)) {
      begin(name, cat);
      ev_.arg_name = arg_name;
      ev_.arg = arg;
    }
  }
  ~Span() { end(); }

  /// Attach the numeric arg after construction (e.g. once a result size
  /// is known). No-op if the span is not live.
  void set_arg(const char* arg_name, std::int64_t arg) noexcept {
    if (live_) {
      ev_.arg_name = arg_name;
      ev_.arg = arg;
    }
  }

  /// Close the span early (idempotent).
  void end() noexcept;

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name, const char* cat) noexcept;

  TraceEvent ev_;
  bool live_ = false;
};

/// Shorthand for the singleton.
[[nodiscard]] inline Tracer& tracer() { return Tracer::instance(); }

}  // namespace mimdmap::obs
