#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

namespace mimdmap::obs {

std::atomic<bool> g_trace_enabled{false};

namespace {

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* const tracer = new Tracer();  // immortal: rings never dangle
  return *tracer;
}

Tracer::Tracer() {
  epoch_ns_ = steady_now_ns();
  // Opt-in from the environment so CI and ad-hoc runs can trace any
  // command without a flag.
  const char* env = std::getenv("MIMDMAP_TRACE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    g_trace_enabled.store(true, std::memory_order_relaxed);
  }
}

std::int64_t Tracer::now_ns() noexcept {
  return steady_now_ns() - instance().epoch_ns_;
}

void Tracer::enable(std::size_t events_per_thread) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = events_per_thread > 0 ? events_per_thread : 1;
    for (const std::shared_ptr<Ring>& ring : rings_) {
      ring->slots.assign(capacity_, TraceEvent{});
      ring->head.store(0, std::memory_order_relaxed);
    }
    epoch_ns_ = steady_now_ns();
  }
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { g_trace_enabled.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Ring>& ring : rings_) {
    ring->slots.assign(ring->slots.size(), TraceEvent{});
    ring->head.store(0, std::memory_order_relaxed);
  }
}

Tracer::Ring* Tracer::ring_for_this_thread() {
  // The shared_ptr keeps the ring alive in rings_ past thread exit; the
  // thread_local caches the raw pointer so steady-state recording takes
  // no lock. One cache per (thread, tracer) pair — the tracer is a
  // process singleton so a plain pointer cache is safe.
  thread_local Ring* cached = nullptr;
  if (cached != nullptr) return cached;
  const std::lock_guard<std::mutex> lock(mutex_);
  auto ring = std::make_shared<Ring>();
  ring->slots.assign(capacity_, TraceEvent{});
  ring->tid = static_cast<int>(rings_.size());
  rings_.push_back(ring);
  cached = ring.get();
  return cached;
}

void Tracer::record(const TraceEvent& ev) {
  if (!g_trace_enabled.load(std::memory_order_relaxed)) return;
  Ring* ring = ring_for_this_thread();
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  ring->slots[head % ring->slots.size()] = ev;
  ring->head.store(head + 1, std::memory_order_relaxed);
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const std::shared_ptr<Ring>& ring : rings_) {
    total += static_cast<std::size_t>(std::min<std::uint64_t>(
        ring->head.load(std::memory_order_relaxed), ring->slots.size()));
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const std::shared_ptr<Ring>& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    if (head > ring->slots.size()) total += head - ring->slots.size();
  }
  return total;
}

namespace {

void append_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';  // span names are literals; control bytes never expected
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

void Tracer::export_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Ring>& ring : rings_) {
    const std::uint64_t size = ring->slots.size();
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t held = std::min<std::uint64_t>(head, size);
    const std::uint64_t start = head - held;
    for (std::uint64_t i = start; i < head; ++i) {
      const TraceEvent& ev = ring->slots[i % size];
      if (ev.name == nullptr) continue;
      if (!first) os << ",";
      first = false;
      // Chrome trace "X" = complete event; ts/dur in microseconds
      // (fractional accepted by Perfetto, keeps ns precision).
      os << "{\"name\":";
      append_json_string(os, ev.name);
      os << ",\"cat\":";
      append_json_string(os, ev.cat != nullptr ? ev.cat : "default");
      os << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << ring->tid;
      os << ",\"ts\":" << static_cast<double>(ev.start_ns) / 1000.0;
      const std::int64_t dur = ev.end_ns > ev.start_ns ? ev.end_ns - ev.start_ns : 0;
      os << ",\"dur\":" << static_cast<double>(dur) / 1000.0;
      if (ev.arg_name != nullptr) {
        os << ",\"args\":{";
        append_json_string(os, ev.arg_name);
        os << ":" << ev.arg << "}";
      }
      os << "}";
    }
  }
  os << "]}";
}

std::string Tracer::export_chrome_json() const {
  std::ostringstream os;
  export_chrome_json(os);
  return os.str();
}

void Span::begin(const char* name, const char* cat) noexcept {
  ev_.name = name;
  ev_.cat = cat;
  ev_.start_ns = Tracer::now_ns();
  live_ = true;
}

void Span::end() noexcept {
  if (!live_) return;
  live_ = false;
  ev_.end_ns = Tracer::now_ns();
  Tracer::instance().record(ev_);
}

}  // namespace mimdmap::obs
