#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace mimdmap::obs {

unsigned thread_shard() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned shard = next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

void Histogram::record(std::int64_t value) noexcept {
  const std::uint64_t v = value > 0 ? static_cast<std::uint64_t>(value) : 0;
  Shard& shard = shards_[thread_shard() & (shards_.size() - 1)];
  shard.buckets[static_cast<std::size_t>(bucket_of(v))].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = shard.max.load(std::memory_order_relaxed);
  while (v > seen &&
         !shard.max.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

int Histogram::bucket_of(std::uint64_t v) noexcept {
  constexpr std::uint64_t kLinearLimit = std::uint64_t{1} << kSubBits;
  if (v < kLinearLimit) return static_cast<int>(v);  // small values exact
  const int msb = 63 - std::countl_zero(v);
  const int sub = static_cast<int>((v >> (msb - kSubBits)) & (kLinearLimit - 1));
  return ((msb - kSubBits + 1) << kSubBits) + sub;
}

double Histogram::bucket_mid(int bucket) noexcept {
  constexpr int kSub = 1 << kSubBits;
  if (bucket < kSub) return static_cast<double>(bucket);  // exact small values
  const int msb = (bucket >> kSubBits) + kSubBits - 1;
  const int sub = bucket & (kSub - 1);
  const double lower = std::ldexp(static_cast<double>(kSub + sub), msb - kSubBits);
  const double width = std::ldexp(1.0, msb - kSubBits);
  return lower + width / 2.0;
}

double Histogram::bucket_le(int bucket) noexcept {
  constexpr int kSub = 1 << kSubBits;
  if (bucket < kSub) return static_cast<double>(bucket);  // bucket holds exactly v
  const int msb = (bucket >> kSubBits) + kSubBits - 1;
  const int sub = bucket & (kSub - 1);
  const double lower = std::ldexp(static_cast<double>(kSub + sub), msb - kSubBits);
  const double width = std::ldexp(1.0, msb - kSubBits);
  // Recorded values are integers, so the last value of [lower, lower+width)
  // is lower + width - 1.
  return lower + width - 1.0;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::array<std::uint64_t, kBuckets> merged{};
  Snapshot snap;
  for (const Shard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
    for (int b = 0; b < kBuckets; ++b) {
      merged[static_cast<std::size_t>(b)] +=
          shard.buckets[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    }
  }
  if (snap.count == 0) return snap;

  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = merged[static_cast<std::size_t>(b)];
    if (n > 0) snap.buckets.emplace_back(bucket_le(b), n);
  }

  const auto quantile = [&](double q) {
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(snap.count)));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += merged[static_cast<std::size_t>(b)];
      if (seen >= rank) return bucket_mid(b);
    }
    return static_cast<double>(snap.max);
  };
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

void Rate::record_at(std::uint64_t n, std::int64_t second) noexcept {
  if (second < 0) second = 0;
  Slot& slot = slots_[static_cast<std::size_t>(second % kSlots)];
  if (slot.second.load(std::memory_order_relaxed) != second) {
    // Recycle the slot for the new second. Two threads racing this reset
    // may drop a few events — acceptable for a display instrument.
    slot.second.store(second, std::memory_order_relaxed);
    slot.count.store(0, std::memory_order_relaxed);
  }
  slot.count.fetch_add(n, std::memory_order_relaxed);
}

double Rate::per_second_at(std::int64_t second) const noexcept {
  std::uint64_t total = 0;
  std::int64_t earliest = second + 1;
  for (const Slot& slot : slots_) {
    const std::int64_t s = slot.second.load(std::memory_order_relaxed);
    if (s < 0 || s > second || s <= second - kWindowSeconds) continue;
    total += slot.count.load(std::memory_order_relaxed);
    earliest = std::min(earliest, s);
  }
  if (total == 0) return 0.0;
  const std::int64_t span =
      std::clamp<std::int64_t>(second - earliest + 1, 1, kWindowSeconds);
  return static_cast<double>(total) / static_cast<double>(span);
}

Registry& Registry::instance() {
  static Registry* const registry = new Registry();  // immortal: references never dangle
  return *registry;
}

namespace {

std::string render_labels(const std::vector<Label>& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += "\"";
  }
  out += "}";
  return out;
}

/// Inserts extra label pairs before the closing brace (or creates the
/// braces) — used for the quantile series of histograms.
std::string with_label(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

}  // namespace

Registry::Entry& Registry::find_or_create(Kind kind, const std::string& name,
                                          std::vector<Label>&& labels) {
  std::string rendered = render_labels(labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Entry>& entry : entries_) {
    if (entry->name == name && entry->labels == rendered) {
      return *entry;  // kind mismatches return the existing instrument's entry
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->labels = std::move(rendered);
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
    case Kind::kRate:
      entry->rate = std::make_unique<Rate>();
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name, std::vector<Label> labels) {
  Entry& entry = find_or_create(Kind::kCounter, name, std::move(labels));
  return *entry.counter;
}

Gauge& Registry::gauge(const std::string& name, std::vector<Label> labels) {
  Entry& entry = find_or_create(Kind::kGauge, name, std::move(labels));
  return *entry.gauge;
}

Histogram& Registry::histogram(const std::string& name, std::vector<Label> labels) {
  Entry& entry = find_or_create(Kind::kHistogram, name, std::move(labels));
  return *entry.histogram;
}

Rate& Registry::rate(const std::string& name, std::vector<Label> labels) {
  Entry& entry = find_or_create(Kind::kRate, name, std::move(labels));
  return *entry.rate;
}

std::string Registry::render_prometheus() const {
  struct Line {
    std::string series;
    std::string value;
  };
  // Snapshot under the lock, render outside it (exposition is cold, but
  // the instruments it reads stay hot).
  std::vector<Line> lines;
  std::vector<std::pair<std::string, const char*>> types;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::unique_ptr<Entry>& entry : entries_) {
      const auto number = [](double v) {
        std::ostringstream os;
        os << v;
        return os.str();
      };
      switch (entry->kind) {
        case Kind::kCounter:
          types.emplace_back(entry->name, "counter");
          lines.push_back({entry->name + entry->labels,
                           std::to_string(entry->counter->value())});
          break;
        case Kind::kGauge:
          types.emplace_back(entry->name, "gauge");
          lines.push_back({entry->name + entry->labels,
                           std::to_string(entry->gauge->value())});
          break;
        case Kind::kHistogram: {
          types.emplace_back(entry->name, "summary");
          const Histogram::Snapshot snap = entry->histogram->snapshot();
          lines.push_back({entry->name + "_count" + entry->labels,
                           std::to_string(snap.count)});
          lines.push_back({entry->name + "_sum" + entry->labels,
                           std::to_string(snap.sum)});
          lines.push_back({entry->name + "_max" + entry->labels,
                           std::to_string(snap.max)});
          lines.push_back({entry->name + with_label(entry->labels, "quantile=\"0.5\""),
                           number(snap.p50)});
          lines.push_back({entry->name + with_label(entry->labels, "quantile=\"0.95\""),
                           number(snap.p95)});
          lines.push_back({entry->name + with_label(entry->labels, "quantile=\"0.99\""),
                           number(snap.p99)});
          // Native Prometheus cumulative buckets alongside the summary:
          // only occupied edges plus the mandatory +Inf, so a sparse
          // histogram costs a handful of lines, not kBuckets.
          std::uint64_t cumulative = 0;
          for (const auto& [le, bucket_count] : snap.buckets) {
            cumulative += bucket_count;
            lines.push_back(
                {entry->name + "_bucket" +
                     with_label(entry->labels, "le=\"" + number(le) + "\""),
                 std::to_string(cumulative)});
          }
          lines.push_back({entry->name + "_bucket" +
                               with_label(entry->labels, "le=\"+Inf\""),
                           std::to_string(snap.count)});
          break;
        }
        case Kind::kRate:
          types.emplace_back(entry->name, "gauge");
          lines.push_back({entry->name + entry->labels, number(entry->rate->per_second())});
          break;
      }
    }
  }
  std::sort(lines.begin(), lines.end(),
            [](const Line& a, const Line& b) { return a.series < b.series; });
  std::sort(types.begin(), types.end());
  types.erase(std::unique(types.begin(), types.end()), types.end());

  std::ostringstream os;
  for (const auto& [name, type] : types) os << "# TYPE " << name << " " << type << "\n";
  for (const Line& line : lines) os << line.series << " " << line.value << "\n";
  return os.str();
}

}  // namespace mimdmap::obs
