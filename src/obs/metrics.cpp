#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace mimdmap::obs {

unsigned thread_shard() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned shard = next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

void Histogram::record(std::int64_t value) noexcept {
  const std::uint64_t v = value > 0 ? static_cast<std::uint64_t>(value) : 0;
  Shard& shard = shards_[thread_shard() & (shards_.size() - 1)];
  shard.buckets[static_cast<std::size_t>(bucket_of(v))].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = shard.max.load(std::memory_order_relaxed);
  while (v > seen &&
         !shard.max.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

int Histogram::bucket_of(std::uint64_t v) noexcept {
  constexpr std::uint64_t kLinearLimit = std::uint64_t{1} << kSubBits;
  if (v < kLinearLimit) return static_cast<int>(v);  // small values exact
  const int msb = 63 - std::countl_zero(v);
  const int sub = static_cast<int>((v >> (msb - kSubBits)) & (kLinearLimit - 1));
  return ((msb - kSubBits + 1) << kSubBits) + sub;
}

double Histogram::bucket_mid(int bucket) noexcept {
  constexpr int kSub = 1 << kSubBits;
  if (bucket < kSub) return static_cast<double>(bucket);  // exact small values
  const int msb = (bucket >> kSubBits) + kSubBits - 1;
  const int sub = bucket & (kSub - 1);
  const double lower = std::ldexp(static_cast<double>(kSub + sub), msb - kSubBits);
  const double width = std::ldexp(1.0, msb - kSubBits);
  return lower + width / 2.0;
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  std::array<std::uint64_t, kBuckets> merged{};
  Snapshot snap;
  for (const Shard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
    for (int b = 0; b < kBuckets; ++b) {
      merged[static_cast<std::size_t>(b)] +=
          shard.buckets[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    }
  }
  if (snap.count == 0) return snap;

  const auto quantile = [&](double q) {
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(snap.count)));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += merged[static_cast<std::size_t>(b)];
      if (seen >= rank) return bucket_mid(b);
    }
    return static_cast<double>(snap.max);
  };
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

Registry& Registry::instance() {
  static Registry* const registry = new Registry();  // immortal: references never dangle
  return *registry;
}

namespace {

std::string render_labels(const std::vector<Label>& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += "\"";
  }
  out += "}";
  return out;
}

/// Inserts extra label pairs before the closing brace (or creates the
/// braces) — used for the quantile series of histograms.
std::string with_label(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

}  // namespace

Registry::Entry& Registry::find_or_create(Kind kind, const std::string& name,
                                          std::vector<Label>&& labels) {
  std::string rendered = render_labels(labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Entry>& entry : entries_) {
    if (entry->name == name && entry->labels == rendered) {
      return *entry;  // kind mismatches return the existing instrument's entry
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->labels = std::move(rendered);
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name, std::vector<Label> labels) {
  Entry& entry = find_or_create(Kind::kCounter, name, std::move(labels));
  return *entry.counter;
}

Gauge& Registry::gauge(const std::string& name, std::vector<Label> labels) {
  Entry& entry = find_or_create(Kind::kGauge, name, std::move(labels));
  return *entry.gauge;
}

Histogram& Registry::histogram(const std::string& name, std::vector<Label> labels) {
  Entry& entry = find_or_create(Kind::kHistogram, name, std::move(labels));
  return *entry.histogram;
}

std::string Registry::render_prometheus() const {
  struct Line {
    std::string series;
    std::string value;
  };
  // Snapshot under the lock, render outside it (exposition is cold, but
  // the instruments it reads stay hot).
  std::vector<Line> lines;
  std::vector<std::pair<std::string, const char*>> types;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::unique_ptr<Entry>& entry : entries_) {
      const auto number = [](double v) {
        std::ostringstream os;
        os << v;
        return os.str();
      };
      switch (entry->kind) {
        case Kind::kCounter:
          types.emplace_back(entry->name, "counter");
          lines.push_back({entry->name + entry->labels,
                           std::to_string(entry->counter->value())});
          break;
        case Kind::kGauge:
          types.emplace_back(entry->name, "gauge");
          lines.push_back({entry->name + entry->labels,
                           std::to_string(entry->gauge->value())});
          break;
        case Kind::kHistogram: {
          types.emplace_back(entry->name, "summary");
          const Histogram::Snapshot snap = entry->histogram->snapshot();
          lines.push_back({entry->name + "_count" + entry->labels,
                           std::to_string(snap.count)});
          lines.push_back({entry->name + "_sum" + entry->labels,
                           std::to_string(snap.sum)});
          lines.push_back({entry->name + "_max" + entry->labels,
                           std::to_string(snap.max)});
          lines.push_back({entry->name + with_label(entry->labels, "quantile=\"0.5\""),
                           number(snap.p50)});
          lines.push_back({entry->name + with_label(entry->labels, "quantile=\"0.95\""),
                           number(snap.p95)});
          lines.push_back({entry->name + with_label(entry->labels, "quantile=\"0.99\""),
                           number(snap.p99)});
          break;
        }
      }
    }
  }
  std::sort(lines.begin(), lines.end(),
            [](const Line& a, const Line& b) { return a.series < b.series; });
  std::sort(types.begin(), types.end());
  types.erase(std::unique(types.begin(), types.end()), types.end());

  std::ostringstream os;
  for (const auto& [name, type] : types) os << "# TYPE " << name << " " << type << "\n";
  for (const Line& line : lines) os << line.series << " " << line.value << "\n";
  return os.str();
}

}  // namespace mimdmap::obs
