#include "cli/manifest.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

namespace mimdmap::cli {
namespace {

[[noreturn]] void fail(int line_no, const std::string& what) {
  throw std::invalid_argument("manifest line " + std::to_string(line_no) + ": " + what);
}

const std::set<std::string>& known_keys() {
  static const std::set<std::string> keys = {
      "problem",       "system",      "spec",          "clustering",
      "strategy",      "seed",        "name",          "trials",
      "refine-seed",   "serialize",   "contention",    "weighted-links",
      "extended-critical", "random-trials", "random-seed", "deadline-ms",
      "multilevel",    "coarsen-target", "level-trials"};
  return keys;
}

}  // namespace

std::map<std::string, std::string> parse_manifest_line(const std::string& line, int line_no) {
  std::map<std::string, std::string> kv;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    const std::string key = token.substr(0, eq);
    const std::string value = eq == std::string::npos ? "1" : token.substr(eq + 1);
    if (key.empty() || !kv.emplace(key, value).second) {
      fail(line_no, "bad or duplicate token '" + token + "'");
    }
  }
  return kv;
}

std::uint64_t manifest_seed(const std::map<std::string, std::string>& kv,
                            const std::string& key, std::uint64_t fallback, int line_no) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  const std::string& value = it->second;
  // All-digits only: stoull alone would accept '5k' as 5 or wrap '-1'.
  if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
    fail(line_no, key + "='" + value + "' is not a number");
  }
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    fail(line_no, key + "='" + value + "' is out of range");
  }
}

std::int64_t manifest_int(const std::map<std::string, std::string>& kv,
                          const std::string& key, std::int64_t fallback, int line_no) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  const std::string& value = it->second;
  const std::size_t digits_from = value.size() > 0 && value[0] == '-' ? 1 : 0;
  if (value.size() == digits_from ||
      value.find_first_not_of("0123456789", digits_from) != std::string::npos) {
    fail(line_no, key + "='" + value + "' is not a number");
  }
  try {
    return std::stoll(value);
  } catch (const std::exception&) {
    fail(line_no, key + "='" + value + "' is out of range");
  }
}

bool manifest_bool(const std::map<std::string, std::string>& kv, const std::string& key) {
  const auto it = kv.find(key);
  return it != kv.end() && it->second != "0" && it->second != "false";
}

std::vector<ManifestJobSpec> parse_manifest(const std::string& text) {
  std::vector<ManifestJobSpec> specs;
  std::istringstream manifest(text);
  std::string line;
  int line_no = 0;
  while (std::getline(manifest, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ManifestJobSpec spec;
    spec.line_no = line_no;
    spec.kv = parse_manifest_line(line, line_no);

    for (const auto& [key, value] : spec.kv) {
      (void)value;
      if (!known_keys().count(key)) fail(line_no, "unknown key '" + key + "'");
    }
    if (!spec.kv.count("problem")) fail(line_no, "missing required key 'problem'");
    if (spec.kv.count("system") && spec.kv.count("spec")) {
      fail(line_no, "give either system= or spec=, not both");
    }
    if (!spec.kv.count("system") && !spec.kv.count("spec")) {
      fail(line_no, "missing required key 'spec' (or 'system')");
    }
    if (spec.kv.count("clustering") && (spec.kv.count("strategy") || spec.kv.count("seed"))) {
      fail(line_no, "clustering= conflicts with strategy=/seed=");
    }
    // Validate every numeric field up front so a bad value is a parse
    // error with a line number, not a surprise mid-batch.
    (void)manifest_seed(spec.kv, "seed", 1, line_no);
    (void)manifest_seed(spec.kv, "refine-seed", 0, line_no);
    (void)manifest_seed(spec.kv, "trials", 0, line_no);
    (void)manifest_seed(spec.kv, "random-trials", 0, line_no);
    (void)manifest_seed(spec.kv, "random-seed", 0, line_no);
    (void)manifest_int(spec.kv, "deadline-ms", 0, line_no);
    (void)manifest_seed(spec.kv, "coarsen-target", 0, line_no);
    (void)manifest_int(spec.kv, "level-trials", -1, line_no);
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace mimdmap::cli
