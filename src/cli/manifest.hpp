// Batch-manifest parsing, split out of cmd_batch so the structural layer
// is a pure function of the manifest text: no file IO, no instance
// building. tests/fuzz_parser_test.cpp hammers it with mutated inputs —
// the contract is "malformed manifests throw std::invalid_argument with a
// line number, never crash, never silently misparse".
//
// Format: one job per line of whitespace-separated key=value tokens; a
// bare key means "1"; '#' starts a comment; blank lines are skipped.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mimdmap::cli {

/// One manifest job line, parsed and structurally validated (known keys,
/// key conflicts, required keys, numeric fields) but not yet resolved
/// against the filesystem.
struct ManifestJobSpec {
  int line_no = 0;
  std::map<std::string, std::string> kv;
};

/// Splits one line into key=value pairs (bare keys mean "1"). Throws
/// std::invalid_argument on empty keys or duplicates.
[[nodiscard]] std::map<std::string, std::string> parse_manifest_line(const std::string& line,
                                                                     int line_no);

/// Parses a whole manifest: comments and blanks stripped, every line
/// through parse_manifest_line, then per-line structural validation —
/// unknown keys, system=/spec= exclusivity, clustering= vs
/// strategy=/seed= conflicts, required problem= and machine keys, and all
/// numeric fields (deadline-ms may be negative — the explicit opt-out;
/// seeds and trial counts may not). Throws std::invalid_argument naming the first
/// offending line. An empty manifest parses to an empty vector — whether
/// that is an error is the caller's policy.
[[nodiscard]] std::vector<ManifestJobSpec> parse_manifest(const std::string& text);

/// Unsigned numeric field: all-digits only (stoull alone would accept
/// "5k" as 5 or wrap "-1"). Returns `fallback` when absent.
[[nodiscard]] std::uint64_t manifest_seed(const std::map<std::string, std::string>& kv,
                                          const std::string& key, std::uint64_t fallback,
                                          int line_no);

/// Signed numeric field (digits with optional leading '-').
[[nodiscard]] std::int64_t manifest_int(const std::map<std::string, std::string>& kv,
                                        const std::string& key, std::int64_t fallback,
                                        int line_no);

/// Bare key or any value other than "0"/"false" means true.
[[nodiscard]] bool manifest_bool(const std::map<std::string, std::string>& kv,
                                 const std::string& key);

}  // namespace mimdmap::cli
