// Minimal command-line flag parser for the mimdmap CLI and benches.
//
// Syntax: --name value, --name=value, or bare boolean switches --name.
// Positional arguments (no leading --) are collected in order. The parser
// records every flag that was *read* by the command so unknown/misspelled
// flags can be reported.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace mimdmap {

class Flags {
 public:
  /// Parses argv[start..argc). Throws std::invalid_argument on malformed
  /// input (e.g. a value-flag at the end with no value).
  Flags(int argc, const char* const* argv, int start = 1);

  /// Builds from explicit tokens (for tests).
  explicit Flags(const std::vector<std::string>& args);

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& name) const;

  /// String flag with default.
  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback);
  /// Required string flag; throws std::invalid_argument when missing.
  [[nodiscard]] std::string require_string(const std::string& name);

  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback);
  [[nodiscard]] std::uint64_t get_seed(const std::string& name, std::uint64_t fallback);

  /// Boolean switch: present (with no value or "true"/"1") => true.
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback = false);

  /// Names given on the command line but never read by the command —
  /// call after all get_*() calls to reject typos.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  void parse(const std::vector<std::string>& args);

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::set<std::string> used_;
};

/// Parses "0,2,3,1" into node ids; throws std::invalid_argument on junk.
[[nodiscard]] std::vector<NodeId> parse_id_list(const std::string& text);

}  // namespace mimdmap
