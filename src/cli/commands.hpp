// The mimdmap command-line interface, as a library so tests can drive it.
//
//   mimdmap_cli generate --workload layered --tasks 80 --seed 3 -o prog.txt
//   mimdmap_cli topology --spec hypercube-3 -o machine.txt
//   mimdmap_cli cluster  --problem prog.txt --clusters 8 --strategy block -o parts.txt
//   mimdmap_cli map      --problem prog.txt --system machine.txt --strategy block
//   mimdmap_cli eval     --problem prog.txt --system machine.txt \
//                        --clustering parts.txt --assignment 0,2,3,1,4,5,6,7
//   mimdmap_cli info     --problem prog.txt
//
// Every command prints to the given streams and returns a process exit
// code; main() is a thin wrapper.
#pragma once

#include <iosfwd>
#include <string>

#include "cli/flags.hpp"

namespace mimdmap::cli {

/// Dispatches argv[1] to a command; prints usage on errors. Returns the
/// process exit code.
int run(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

/// Individual commands (flags documented in help_text()).
int cmd_generate(Flags& flags, std::ostream& out, std::ostream& err);
int cmd_topology(Flags& flags, std::ostream& out, std::ostream& err);
int cmd_cluster(Flags& flags, std::ostream& out, std::ostream& err);
int cmd_map(Flags& flags, std::ostream& out, std::ostream& err);
int cmd_batch(Flags& flags, std::ostream& out, std::ostream& err);
int cmd_serve(Flags& flags, std::ostream& out, std::ostream& err);
int cmd_client(Flags& flags, std::ostream& out, std::ostream& err);
int cmd_eval(Flags& flags, std::ostream& out, std::ostream& err);
int cmd_info(Flags& flags, std::ostream& out, std::ostream& err);

/// Full usage text.
[[nodiscard]] std::string help_text();

}  // namespace mimdmap::cli
