#include "cli/flags.hpp"

#include <charconv>
#include <stdexcept>

namespace mimdmap {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("flags: " + what);
}

bool looks_like_flag(const std::string& token) {
  return token.size() > 2 && token[0] == '-' && token[1] == '-';
}

}  // namespace

Flags::Flags(int argc, const char* const* argv, int start) {
  std::vector<std::string> args;
  for (int i = start; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

Flags::Flags(const std::vector<std::string>& args) { parse(args); }

void Flags::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& token = args[i];
    if (!looks_like_flag(token)) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is itself a flag (or absent),
    // in which case it is a boolean switch.
    if (i + 1 < args.size() && !looks_like_flag(args[i + 1])) {
      values_[body] = args[i + 1];
      ++i;
    } else {
      values_[body] = "";
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get_string(const std::string& name, const std::string& fallback) {
  used_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::string Flags::require_string(const std::string& name) {
  used_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) fail("missing required flag --" + name);
  return it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) {
  used_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::int64_t value = 0;
  const std::string& text = it->second;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    fail("--" + name + " expects an integer, got '" + text + "'");
  }
  return value;
}

std::uint64_t Flags::get_seed(const std::string& name, std::uint64_t fallback) {
  used_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::uint64_t value = 0;
  const std::string& text = it->second;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    fail("--" + name + " expects an unsigned integer, got '" + text + "'");
  }
  return value;
}

bool Flags::get_bool(const std::string& name, bool fallback) {
  used_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  fail("--" + name + " expects a boolean, got '" + it->second + "'");
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!used_.count(name)) out.push_back(name);
  }
  return out;
}

std::vector<NodeId> parse_id_list(const std::string& text) {
  std::vector<NodeId> ids;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string token =
        text.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (token.empty()) fail("empty entry in id list '" + text + "'");
    NodeId value = 0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail("'" + token + "' is not a node id");
    }
    ids.push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return ids;
}

}  // namespace mimdmap
