#include "cli/commands.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "analysis/gantt.hpp"
#include "analysis/metrics.hpp"
#include "analysis/table.hpp"
#include "baseline/random_mapping.hpp"
#include "cli/manifest.hpp"
#include "cluster/cluster_io.hpp"
#include "cluster/strategies.hpp"
#include "core/cancellation.hpp"
#include "core/eval_engine.hpp"
#include "core/mapper.hpp"
#include "core/validate.hpp"
#include "graph/graph_io.hpp"
#include "graph/shortest_paths.hpp"
#include "graph/topological.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/map_service.hpp"
#include "service/server.hpp"
#include "topology/factory.hpp"
#include "workload/random_dag.hpp"
#include "workload/structured.hpp"

namespace mimdmap::cli {
namespace {

/// Writes `text` to the --out path, or to `fallback` when none given.
void emit(Flags& flags, std::ostream& fallback, const std::string& text) {
  const std::string path = flags.get_string("out", "");
  if (path.empty()) {
    fallback << text;
    return;
  }
  std::ofstream file(path);
  if (!file) throw std::invalid_argument("cannot open output file '" + path + "'");
  file << text;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::invalid_argument("cannot open input file '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TaskGraph load_problem(Flags& flags) {
  return task_graph_from_text(slurp(flags.require_string("problem")));
}

SystemGraph load_system(Flags& flags) {
  // Either a file (--system path) or a factory spec (--spec).
  if (flags.has("system")) return system_graph_from_text(slurp(flags.require_string("system")));
  return make_topology(flags.require_string("spec"));
}

/// Shared weight-range flags for the generators.
WeightRange node_range(Flags& flags) {
  return {flags.get_int("node-min", 1), flags.get_int("node-max", 10)};
}
WeightRange edge_range(Flags& flags) {
  return {flags.get_int("edge-min", 1), flags.get_int("edge-max", 10)};
}

int reject_unused(Flags& flags, std::ostream& err) {
  (void)flags.get_string("out", "");  // emit() reads it after this check
  const auto unknown = flags.unused();
  if (unknown.empty()) return 0;
  err << "unknown flag(s):";
  for (const std::string& name : unknown) err << " --" << name;
  err << "\n";
  return 2;
}

EvalOptions eval_options(Flags& flags) {
  EvalOptions opts;
  opts.serialize_within_processor = flags.get_bool("serialize");
  opts.link_contention = flags.get_bool("contention");
  return opts;
}

/// --trace out.json support: construct at command entry (enables the
/// tracer when the flag is present), call write() after the work — the
/// Chrome trace JSON lands in the given file, loadable in Perfetto.
class TraceFile {
 public:
  explicit TraceFile(Flags& flags) : path_(flags.get_string("trace", "")) {
    if (!path_.empty()) obs::tracer().enable();
  }

  void write() {
    if (path_.empty()) return;
    std::ofstream file(path_);
    if (!file) throw std::invalid_argument("cannot open trace file '" + path_ + "'");
    obs::tracer().export_chrome_json(file);
    obs::tracer().disable();
  }

 private:
  std::string path_;
};

}  // namespace

int cmd_generate(Flags& flags, std::ostream& out, std::ostream& err) {
  const std::string workload = flags.get_string("workload", "layered");
  const std::uint64_t seed = flags.get_seed("seed", 1);
  StructuredWeights sw{node_range(flags), edge_range(flags), seed};

  TaskGraph graph = [&]() -> TaskGraph {
    if (workload == "layered") {
      LayeredDagParams p;
      p.num_tasks = static_cast<NodeId>(flags.get_int("tasks", 60));
      p.num_layers = static_cast<NodeId>(flags.get_int("layers", 8));
      p.avg_out_degree = static_cast<double>(flags.get_int("degree10", 20)) / 10.0;
      p.node_weight = sw.node_weight;
      p.edge_weight = sw.edge_weight;
      return make_layered_dag(p, seed);
    }
    if (workload == "erdos") {
      ErdosRenyiDagParams p;
      p.num_tasks = static_cast<NodeId>(flags.get_int("tasks", 60));
      p.edge_probability = static_cast<double>(flags.get_int("percent", 5)) / 100.0;
      p.node_weight = sw.node_weight;
      p.edge_weight = sw.edge_weight;
      return make_erdos_renyi_dag(p, seed);
    }
    if (workload == "series-parallel") {
      SeriesParallelParams p;
      p.depth = static_cast<NodeId>(flags.get_int("depth", 5));
      p.node_weight = sw.node_weight;
      p.edge_weight = sw.edge_weight;
      return make_series_parallel(p, seed);
    }
    if (workload == "fork-join") {
      return make_fork_join(static_cast<NodeId>(flags.get_int("width", 8)),
                            static_cast<NodeId>(flags.get_int("stages", 2)), sw);
    }
    if (workload == "pipeline") {
      return make_pipeline(static_cast<NodeId>(flags.get_int("length", 16)), sw);
    }
    if (workload == "diamond") {
      return make_diamond(static_cast<NodeId>(flags.get_int("rows", 6)),
                          static_cast<NodeId>(flags.get_int("cols", 6)), sw);
    }
    if (workload == "fft") {
      return make_fft(static_cast<NodeId>(flags.get_int("points", 8)), sw);
    }
    if (workload == "gaussian") {
      return make_gaussian_elimination(static_cast<NodeId>(flags.get_int("order", 8)), sw);
    }
    if (workload == "cholesky") {
      return make_cholesky(static_cast<NodeId>(flags.get_int("tiles", 6)), sw);
    }
    if (workload == "lu") {
      return make_lu(static_cast<NodeId>(flags.get_int("tiles", 5)), sw);
    }
    throw std::invalid_argument("unknown --workload '" + workload + "'");
  }();

  const bool dot = flags.get_bool("dot");
  if (const int rc = reject_unused(flags, err); rc != 0) return rc;
  emit(flags, out, dot ? to_dot(graph) : to_text(graph));
  return 0;
}

int cmd_topology(Flags& flags, std::ostream& out, std::ostream& err) {
  const SystemGraph machine = make_topology(flags.require_string("spec"));
  const bool dot = flags.get_bool("dot");
  if (const int rc = reject_unused(flags, err); rc != 0) return rc;
  emit(flags, out, dot ? to_dot(machine) : to_text(machine));
  return 0;
}

int cmd_cluster(Flags& flags, std::ostream& out, std::ostream& err) {
  const TaskGraph problem = load_problem(flags);
  const auto clusters = static_cast<NodeId>(flags.get_int("clusters", 8));
  const std::string strategy = flags.get_string("strategy", "block");
  const std::uint64_t seed = flags.get_seed("seed", 1);
  const Clustering clustering = make_clustering(strategy, problem, clusters, seed);
  if (const int rc = reject_unused(flags, err); rc != 0) return rc;
  emit(flags, out, to_text(clustering));
  return 0;
}

int cmd_map(Flags& flags, std::ostream& out, std::ostream& err) {
  TraceFile trace(flags);
  obs::Span cmd_span("map_command", "cli");

  obs::Span load_span("load_inputs", "cli");
  TaskGraph problem = load_problem(flags);
  SystemGraph machine = load_system(flags);

  Clustering clustering = [&]() {
    if (flags.has("clustering")) {
      return clustering_from_text(slurp(flags.require_string("clustering")));
    }
    return make_clustering(flags.get_string("strategy", "block"), problem,
                           machine.node_count(), flags.get_seed("seed", 1));
  }();
  load_span.end();

  const DistanceModel model = flags.get_bool("weighted-links")
                                  ? DistanceModel::kWeightedLinks
                                  : DistanceModel::kHops;
  obs::Span build_span("build_instance", "cli", "np",
                       static_cast<std::int64_t>(problem.node_count()));
  const MappingInstance instance(std::move(problem), std::move(clustering),
                                 std::move(machine), model);

  MapperOptions opts;
  opts.refine.eval = eval_options(flags);
  opts.refine.seed = flags.get_seed("refine-seed", 0x9e3779b97f4a7c15ULL);
  opts.refine.max_trials = flags.get_int("trials", -1);
  opts.refine.num_threads = static_cast<int>(flags.get_int("threads", 1));
  opts.refine.eval_width = static_cast<int>(flags.get_int("width", 0));
  opts.critical.propagate_through_intra_cluster = flags.get_bool("extended-critical");
  opts.multilevel.enabled = flags.get_bool("multilevel");
  opts.multilevel.coarsen_target = static_cast<NodeId>(flags.get_int("coarsen-target", 0));
  opts.multilevel.level_trials = flags.get_int("level-trials", -1);

  const bool show_gantt = flags.get_bool("gantt");
  const auto random_trials = flags.get_int("random-trials", 0);
  const std::uint64_t random_seed = flags.get_seed("random-seed", 99);
  const std::int64_t deadline_ms = flags.get_int("deadline-ms", 0);
  if (const int rc = reject_unused(flags, err); rc != 0) return rc;

  // Wall-clock budget: the pipeline polls the token cooperatively and, on
  // expiry, ships the best incumbent it has with a degraded status instead
  // of overrunning (core/cancellation.hpp).
  CancelSource deadline_source;
  if (deadline_ms > 0) {
    deadline_source.set_deadline_after_ms(deadline_ms);
    opts.refine.cancel = deadline_source.token();
  }

  // One engine serves the whole command: the mapping pipeline, and the
  // random-mapping baseline below when requested.
  const EvalEngine engine(instance);
  build_span.end();
  const MappingReport report = map_instance(engine, opts);

  std::ostringstream os;
  os << "instance: np=" << instance.num_tasks() << " ns=" << instance.num_processors()
     << " system=" << instance.system().name() << "\n";
  os << "lower bound:        " << report.lower_bound << "\n";
  os << "critical edges:     " << report.critical.critical_edges.size() << "\n";
  os << "initial total:      " << report.initial_total << "\n";
  os << "final total:        " << report.total_time() << "  ("
     << report.percent_over_lower_bound() << "% of bound)\n";
  os << "refinement trials:  " << report.refinement_trials << "\n";
  const int threads_used = engine.resolve_num_threads(opts.refine.num_threads, opts.refine.eval);
  os << "eval threads:       " << threads_used
     << (opts.refine.num_threads == 0 ? " (auto)" : "") << "\n";
  os << "eval width:         " << report.eval_width
     << (opts.refine.eval_width == 0 ? " (auto)" : "") << "\n";
  if (report.delta.trials > 0) {
    os << "delta trials:       " << report.delta.trials << " ("
       << report.delta.delta_trials << " incremental, " << report.delta.full_fallbacks
       << " full; " << report.delta.shift_fast_paths << " shift hits, "
       << report.delta.verdict_exits << " verdict exits, " << report.delta.claims_skipped
       << " claims skipped)\n";
  }
  if (report.delta.potential_cache_disabled > 0) {
    os << "potential cache:    disabled/bypassed on " << report.delta.potential_cache_disabled
       << " lookups (weaker tail0 verdicts; tune MIMDMAP_DELTA_CACHE)\n";
  }
  if (!report.levels.empty()) {
    os << "multilevel:         " << report.levels.size() << " stages (coarsest first)\n";
    for (const MultilevelLevelStats& lvl : report.levels) {
      os << "  level " << lvl.level << ": np=" << lvl.np << " edges=" << lvl.edges
         << " trials=" << lvl.trials << " improvements=" << lvl.improvements << " total "
         << lvl.total_before << " -> " << lvl.total_after << " (" << lvl.ms << " ms)\n";
    }
  }
  os << "optimal:            " << (report.reached_lower_bound ? "yes (termination condition)"
                                                              : "not proven") << "\n";
  if (report.status != MapStatus::kOk) {
    os << "status:             " << to_string(report.status)
       << " (degraded: best incumbent at the deadline)\n";
  }
  os << "assignment (cluster on each processor): ";
  for (NodeId p = 0; p < instance.num_processors(); ++p) {
    os << (p == 0 ? "" : ",") << report.assignment.cluster_on(p);
  }
  os << "\n";
  if (random_trials > 0) {
    const obs::Span random_span("random_baseline", "cli", "trials", random_trials);
    const RandomMappingStats random =
        evaluate_random_mappings(engine, random_trials, random_seed, opts.refine.eval);
    os << "random mapping mean over " << random_trials << " trials: " << random.mean()
       << "  (" << percent_over_lower_bound(random.mean(), report.lower_bound)
       << "% of bound)\n";
  }
  if (show_gantt) {
    os << "\n" << render_gantt(instance, report.assignment, report.schedule);
  }
  emit(flags, out, os.str());
  cmd_span.end();
  trace.write();
  return 0;
}

int cmd_eval(Flags& flags, std::ostream& out, std::ostream& err) {
  TaskGraph problem = load_problem(flags);
  SystemGraph machine = load_system(flags);
  Clustering clustering = clustering_from_text(slurp(flags.require_string("clustering")));
  const std::vector<NodeId> cluster_on = parse_id_list(flags.require_string("assignment"));

  const MappingInstance instance(std::move(problem), std::move(clustering),
                                 std::move(machine));
  const Assignment assignment = Assignment::from_cluster_on(cluster_on);
  const EvalOptions opts = eval_options(flags);
  const bool show_gantt = flags.get_bool("gantt");
  if (const int rc = reject_unused(flags, err); rc != 0) return rc;

  const EvalEngine engine(instance);
  const ScheduleResult schedule = engine.evaluate(assignment, opts);
  validate_schedule(instance, assignment, schedule, opts);
  const Weight lb = compute_ideal_schedule(instance).lower_bound;

  std::ostringstream os;
  os << "total time:  " << schedule.total_time << "\n";
  os << "lower bound: " << lb << "  (" << percent_over_lower_bound(schedule.total_time, lb)
     << "%)\n";
  if (show_gantt) os << "\n" << render_gantt(instance, assignment, schedule);
  emit(flags, out, os.str());
  return 0;
}

int cmd_info(Flags& flags, std::ostream& out, std::ostream& err) {
  std::ostringstream os;
  if (flags.has("problem")) {
    const TaskGraph g = load_problem(flags);
    os << "task graph: " << g.node_count() << " tasks, " << g.edge_count() << " edges\n";
    os << "total work: " << g.total_work() << ", total traffic: " << g.total_traffic()
       << "\n";
    os << "critical path: " << critical_path_length(g) << "\n";
    const auto levels = topological_levels(g);
    NodeId depth = 0;
    for (const NodeId l : levels) depth = std::max(depth, l);
    os << "depth: " << depth + 1 << " levels\n";
  } else {
    const SystemGraph g = load_system(flags);
    os << "system graph '" << g.name() << "': " << g.node_count() << " processors, "
       << g.link_count() << " links\n";
    os << "max degree: " << g.max_degree() << ", diameter: " << diameter(g)
       << ", mean distance: "
       << static_cast<double>(mean_distance_milli(g)) / 1000.0 << "\n";
  }
  if (const int rc = reject_unused(flags, err); rc != 0) return rc;
  emit(flags, out, os.str());
  return 0;
}

namespace {

/// SIGINT flag for cmd_batch's cancel-and-drain path. The handler only
/// sets the flag (async-signal-safe); a watcher thread does the actual
/// cancellation.
volatile std::sig_atomic_t g_batch_interrupted = 0;

void batch_sigint_handler(int) { g_batch_interrupted = 1; }

}  // namespace

int cmd_batch(Flags& flags, std::ostream& out, std::ostream& err) {
  TraceFile trace(flags);
  obs::Span cmd_span("batch_command", "cli");
  const std::string manifest_path = flags.require_string("manifest");
  const int lanes = static_cast<int>(flags.get_int("lanes", 0));
  const int max_jobs = static_cast<int>(flags.get_int("jobs", 0));
  const bool live_progress = flags.get_bool("progress");
  const bool csv = flags.get_bool("csv");
  const std::int64_t timeout_ms = flags.get_int("timeout", 0);
  if (const int rc = reject_unused(flags, err); rc != 0) return rc;

  // Structure first (cli/manifest.hpp: pure text -> validated specs),
  // then resolution against the filesystem. Instances live in a deque so
  // MapJob pointers stay stable as lines are appended. Manifests typically
  // reuse a handful of machines, so the per-line topology tables (distance
  // matrix + routing) come from one shared cache: repeated machines cost
  // one build, and every job's engine adopts the shared routing instead of
  // rebuilding it.
  const std::vector<ManifestJobSpec> specs = parse_manifest(slurp(manifest_path));
  if (specs.empty()) throw std::invalid_argument("manifest has no jobs");
  TopologyCache topo_cache;
  std::deque<MappingInstance> instances;
  std::vector<MapJob> jobs;
  for (const ManifestJobSpec& spec : specs) {
    const auto& kv = spec.kv;
    const int line_no = spec.line_no;
    const auto get = [&](const std::string& key, const std::string& fallback) {
      const auto it = kv.find(key);
      return it == kv.end() ? fallback : it->second;
    };

    TaskGraph problem = task_graph_from_text(slurp(kv.at("problem")));
    SystemGraph machine = kv.count("system") ? system_graph_from_text(slurp(kv.at("system")))
                                             : make_topology(kv.at("spec"));
    Clustering clustering =
        kv.count("clustering")
            ? clustering_from_text(slurp(kv.at("clustering")))
            : make_clustering(get("strategy", "block"), problem, machine.node_count(),
                              manifest_seed(kv, "seed", 1, line_no));
    const DistanceModel model = manifest_bool(kv, "weighted-links")
                                    ? DistanceModel::kWeightedLinks
                                    : DistanceModel::kHops;
    std::shared_ptr<const TopologyTables> tables = topo_cache.acquire(machine, model);
    instances.emplace_back(std::move(problem), std::move(clustering), std::move(machine),
                           std::move(tables));

    MapJob job;
    job.instance = &instances.back();
    job.name = get("name", "job-" + std::to_string(jobs.size() + 1));
    job.options.refine.eval.serialize_within_processor = manifest_bool(kv, "serialize");
    job.options.refine.eval.link_contention = manifest_bool(kv, "contention");
    job.options.refine.seed =
        manifest_seed(kv, "refine-seed", 0x9e3779b97f4a7c15ULL, line_no);
    job.options.refine.max_trials =
        static_cast<std::int64_t>(manifest_seed(kv, "trials", static_cast<std::uint64_t>(-1),
                                                line_no));
    job.options.critical.propagate_through_intra_cluster =
        manifest_bool(kv, "extended-critical");
    job.options.multilevel.enabled = manifest_bool(kv, "multilevel");
    job.options.multilevel.coarsen_target =
        static_cast<NodeId>(manifest_int(kv, "coarsen-target", 0, line_no));
    job.options.multilevel.level_trials = manifest_int(kv, "level-trials", -1, line_no);
    job.random_trials =
        static_cast<std::int64_t>(manifest_seed(kv, "random-trials", 0, line_no));
    job.random_seed = manifest_seed(kv, "random-seed", 99, line_no);
    // Per-job wall budget; 0 defers to the batch-wide --timeout default.
    job.deadline_ms = manifest_int(kv, "deadline-ms", 0, line_no);
    jobs.push_back(std::move(job));
  }

  MapServiceOptions service_options;
  service_options.lanes = lanes;
  service_options.max_concurrent_jobs = max_jobs;
  service_options.default_deadline_ms = timeout_ms;
  MapService service(std::move(service_options));

  std::function<void(const BatchProgress&)> progress;
  if (live_progress) {
    // Live scheduler gauges from the registry (the same series op=metrics
    // exposes): queued-not-started and on-a-runner right now.
    obs::Gauge& queue_gauge = obs::registry().gauge("mimdmap_service_queue_depth");
    obs::Gauge& active_gauge = obs::registry().gauge("mimdmap_service_active_jobs");
    obs::Rate& rate_gauge = obs::registry().rate("mimdmap_service_jobs_per_sec");
    progress = [&err, &queue_gauge, &active_gauge, &rate_gauge](const BatchProgress& p) {
      err << "\r[" << p.completed << "/" << p.total << "] " << p.last->name << " ("
          << std::fixed << std::setprecision(1) << p.last->wall_ms << " ms)"
          << " queue=" << queue_gauge.value() << " inflight=" << active_gauge.value()
          << " " << rate_gauge.per_second() << " jobs/s"
          << "    " << std::defaultfloat << std::setprecision(6);
      if (p.completed == p.total) err << "\n";
      err.flush();
    };
  }

  // SIGINT cancels in-flight work instead of killing the process: the
  // handler sets a flag, the watcher calls cancel_all() — queued jobs
  // drain with status cancelled, running jobs stop within one evaluation
  // wave — and map_batch returns partial results, which are printed below
  // with their per-job statuses.
  g_batch_interrupted = 0;
  std::atomic<bool> watcher_stop{false};
  void (*previous_handler)(int) = std::signal(SIGINT, batch_sigint_handler);
  std::thread watcher([&service, &watcher_stop, &err] {
    bool cancelled = false;
    while (!watcher_stop.load(std::memory_order_relaxed)) {
      if (g_batch_interrupted != 0 && !cancelled) {
        cancelled = true;
        err << "\ninterrupt: cancelling batch, draining partial results...\n";
        err.flush();
        service.cancel_all();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const std::size_t total = jobs.size();
  std::vector<MapJobResult> results;
  try {
    results = service.map_batch(std::move(jobs), progress);
  } catch (...) {
    watcher_stop.store(true, std::memory_order_relaxed);
    watcher.join();
    std::signal(SIGINT, previous_handler == SIG_ERR ? SIG_DFL : previous_handler);
    throw;
  }
  watcher_stop.store(true, std::memory_order_relaxed);
  watcher.join();
  std::signal(SIGINT, previous_handler == SIG_ERR ? SIG_DFL : previous_handler);
  const bool interrupted = g_batch_interrupted != 0;
  const double batch_ms =
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();

  TextTable table({"job", "topology", "np", "ns", "lower_bound", "total", "pct", "optimal",
                   "status", "lanes", "ms"});
  std::size_t degraded = 0;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MapJobResult& r = results[i];
    const MappingInstance& inst = instances[i];
    // Guard the quality columns on the job status: a degraded row's total
    // is the best incumbent at the signal (marked "*"), a failed row has no
    // mapping at all ("-") — neither may masquerade as a completed pct.
    std::string total = std::to_string(r.report.total_time());
    std::string pct = std::to_string(r.report.percent_over_lower_bound());
    if (r.status == MapStatus::kCancelled || r.status == MapStatus::kDeadlineExceeded) {
      ++degraded;
      total += "*";
      pct += "*";
    } else if (!r.ok()) {
      ++failed;
      total = "-";
      pct = "-";
    }
    std::ostringstream ms;
    ms << std::fixed << std::setprecision(1) << r.wall_ms;
    table.add_row({r.name, inst.system().name(), std::to_string(inst.num_tasks()),
                   std::to_string(inst.num_processors()),
                   std::to_string(r.report.lower_bound), total, pct,
                   r.report.reached_lower_bound ? "yes" : "-", to_string(r.status),
                   std::to_string(r.lanes), ms.str()});
  }

  std::ostringstream os;
  os << (csv ? table.to_csv() : table.to_string());
  os << "batch: " << total << " jobs";
  if (degraded > 0) {
    os << ", " << degraded << " degraded (cancelled/deadline; * = incumbent at the signal)";
  }
  if (failed > 0) os << ", " << failed << " failed";
  os << ", lane budget " << service.lane_budget()
     << ", max concurrent " << service.max_concurrent_jobs() << ", topology cache "
     << topo_cache.hits() << "/" << (topo_cache.hits() + topo_cache.misses())
     << " hits, wall " << std::fixed << std::setprecision(1) << batch_ms << " ms\n";
  // Scheduler observability (same counters the serve stats frame exposes):
  // how long work waited per priority lane, and whether admission shed.
  const ServiceStats sched = service.stats();
  os << "scheduler:";
  for (const ServiceStats::PriorityLane& lane : sched.priorities) {
    const double avg =
        lane.started > 0 ? lane.total_wait_ms / static_cast<double>(lane.started) : 0.0;
    os << " prio " << lane.priority << ": " << lane.started << " started, wait avg "
       << std::setprecision(1) << avg << " ms max " << lane.max_wait_ms << " ms;";
  }
  os << " shed " << sched.shed << ", cancelled in queue " << sched.cancelled_queued << "\n"
     << std::defaultfloat << std::setprecision(6);
  if (interrupted) os << "batch interrupted: results above are partial\n";
  emit(flags, out, os.str());
  cmd_span.end();
  trace.write();
  // Exit contract (tests/cli_test.cpp): jobs that FAILED (invalid_input /
  // internal_error) make the batch exit nonzero; jobs merely degraded by
  // the wall budget or an interrupt (cancelled / deadline_exceeded) do
  // not — a --timeout batch that ran out of time still succeeded at
  // delivering its incumbents.
  return failed > 0 ? 1 : 0;
}

namespace {

volatile std::sig_atomic_t g_serve_signal = 0;

void serve_signal_handler(int) { g_serve_signal = g_serve_signal + 1; }

}  // namespace

int cmd_serve(Flags& flags, std::ostream& out, std::ostream& err) {
  const std::string socket_path = flags.get_string("socket", "");
  const bool stdio = flags.get_bool("stdio");
  const bool quiet = flags.get_bool("quiet");
  const bool metrics_dump = flags.get_bool("metrics-dump");
  const std::string drain_flag = flags.get_string("drain-mode", "finish");

  serve::ServerOptions options;
  options.service.lanes = static_cast<int>(flags.get_int("lanes", 0));
  options.service.max_concurrent_jobs = static_cast<int>(flags.get_int("jobs", 0));
  options.service.max_queue = static_cast<std::size_t>(flags.get_int("queue", 0));
  options.service.default_deadline_ms = flags.get_int("timeout", 0);
  options.service.max_inflight_per_client =
      static_cast<int>(flags.get_int("max-inflight", 0));
  options.service.max_queued_size_hint =
      static_cast<std::uint64_t>(flags.get_int("queue-tasks", 0));
  if (flags.get_bool("fifo")) options.service.scheduler = SchedulerPolicy::kFifo;
  options.log = quiet ? nullptr : &err;
  options.journal_dir = flags.get_string("journal", "");
  options.journal_fsync =
      serve::parse_fsync_policy(flags.get_string("journal-fsync", "batch"));
  options.journal_repair = flags.get_bool("journal-repair");
  options.cache_bytes = static_cast<std::uint64_t>(flags.get_int("cache-bytes", 0));
  if (const std::int64_t rotate = flags.get_int("journal-rotate-bytes", 0); rotate > 0) {
    options.journal_rotate_bytes = static_cast<std::uint64_t>(rotate);
  }
  if (const int rc = reject_unused(flags, err); rc != 0) return rc;

  if (socket_path.empty() == !stdio) {
    throw std::invalid_argument("serve needs exactly one of --socket <path> or --stdio");
  }
  const serve::DrainMode drain_mode = [&] {
    if (drain_flag == "finish") return serve::DrainMode::kFinish;
    if (drain_flag == "cancel") return serve::DrainMode::kCancel;
    throw std::invalid_argument("--drain-mode must be finish or cancel");
  }();

  serve::MapServer server(std::move(options));

  // First SIGTERM/SIGINT drains per --drain-mode; a second escalates to
  // cancelling whatever is still in flight (results arrive degraded but
  // every accepted job still gets its terminal frame). SIGPIPE is ignored
  // so a vanished stdio peer surfaces as a write error, not process death.
  g_serve_signal = 0;
  void (*prev_int)(int) = std::signal(SIGINT, serve_signal_handler);
  void (*prev_term)(int) = std::signal(SIGTERM, serve_signal_handler);
  void (*prev_pipe)(int) = std::signal(SIGPIPE, SIG_IGN);
  std::atomic<bool> watcher_stop{false};
  std::thread watcher([&server, &watcher_stop, &err, drain_mode, quiet] {
    int handled = 0;
    while (!watcher_stop.load(std::memory_order_relaxed)) {
      const int seen = g_serve_signal;
      if (seen > handled) {
        if (handled == 0) {
          if (!quiet) err << "serve: signal received, draining\n";
          server.request_drain(drain_mode);
        } else {
          if (!quiet) err << "serve: second signal, cancelling in-flight jobs\n";
          (void)server.service().cancel_all();
        }
        handled = seen;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  int rc = 0;
  try {
    if (stdio) {
      server.serve_fd(0, 1);
      // stdin closed (or drain): nothing more can arrive — finish what was
      // accepted and flush.
      server.request_drain(serve::DrainMode::kFinish);
    } else {
      server.listen_unix(socket_path);
    }
    server.wait();
  } catch (const std::exception& e) {
    err << "serve: fatal: " << e.what() << "\n";
    server.request_drain(serve::DrainMode::kCancel);
    server.wait();
    rc = 1;
  }
  watcher_stop.store(true, std::memory_order_relaxed);
  watcher.join();
  std::signal(SIGINT, prev_int == SIG_ERR ? SIG_DFL : prev_int);
  std::signal(SIGTERM, prev_term == SIG_ERR ? SIG_DFL : prev_term);
  std::signal(SIGPIPE, prev_pipe == SIG_ERR ? SIG_DFL : prev_pipe);

  const serve::ServerStats stats = server.stats();
  out << "serve: " << stats.connections_opened << " connections, " << stats.accepted
      << " accepted, " << stats.terminal_frames << " results, " << stats.shed << " shed, "
      << stats.parse_errors << " protocol errors, " << stats.disconnect_cancels
      << " disconnect cancels";
  if (stats.replayed > 0) out << ", " << stats.replayed << " replayed";
  if (stats.cached_results > 0) out << ", " << stats.cached_results << " cached";
  out << "\n";
  // The invariant the whole design hangs on — if it ever fails in the
  // field, say so loudly and exit nonzero so supervisors notice.
  if (stats.terminal_frames != stats.accepted) {
    err << "serve: TERMINAL FRAME MISMATCH: accepted " << stats.accepted << " vs results "
        << stats.terminal_frames << "\n";
    rc = 1;
  }
  // Final registry exposition (counters/gauges/histograms of every layer
  // this process touched) — same text `op=metrics` serves live.
  if (metrics_dump) out << obs::registry().render_prometheus();
  return rc;
}

namespace {

/// Blocking Unix-socket connect; -1 on failure (caller retries).
int client_connect(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool client_send(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  const char* p = framed.data();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int cmd_client(Flags& flags, std::ostream& out, std::ostream& err) {
  const std::string socket_path = flags.require_string("socket");
  const std::string request = flags.get_string("request", "");
  const std::string manifest_path = flags.get_string("manifest", "");
  serve::RetryPolicy policy;
  policy.max_attempts = static_cast<int>(flags.get_int("retries", policy.max_attempts));
  policy.base_ms = flags.get_int("base-ms", policy.base_ms);
  policy.cap_ms = flags.get_int("cap-ms", policy.cap_ms);
  policy.seed = static_cast<std::uint64_t>(flags.get_int("seed", 0));
  const bool quiet = flags.get_bool("quiet");
  if (const int rc = reject_unused(flags, err); rc != 0) return rc;
  if (request.empty() == manifest_path.empty()) {
    throw std::invalid_argument("client needs exactly one of --request or --manifest");
  }
  if (policy.max_attempts < 1) throw std::invalid_argument("--retries must be >= 1");

  std::vector<std::string> lines;
  if (!request.empty()) {
    lines.push_back(request);
  } else {
    std::istringstream file(slurp(manifest_path));
    std::string line;
    while (std::getline(file, line)) {
      const std::size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      lines.push_back(line);
    }
  }
  if (lines.empty()) throw std::invalid_argument("no requests to send");

  // Requests are validated locally first: a typo costs an error here, not
  // a round of retries against the daemon.
  for (const std::string& line : lines) (void)serve::parse_request(line);

  int failed = 0;
  int fd = -1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    bool terminal = false;
    // Retry loop: overloaded answers and dropped connections are both
    // retryable — resubmission is idempotent by fingerprint, so a result
    // the daemon already computed comes back cached=1 instead of
    // re-running the mapper. Everything else is final on first answer.
    for (int attempt = 1; attempt <= policy.max_attempts && !terminal; ++attempt) {
      std::int64_t hint_ms = 0;
      const auto backoff = [&] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(policy.delay_ms(attempt, hint_ms)));
      };
      if (fd < 0) fd = client_connect(socket_path);
      if (fd < 0) {
        if (!quiet) err << "client: connect failed, retrying\n";
        backoff();
        continue;
      }
      if (!client_send(fd, line)) {
        ::close(fd);
        fd = -1;
        if (!quiet) err << "client: send failed, reconnecting\n";
        backoff();
        continue;
      }
      serve::FrameReader reader;
      bool disconnected = false;
      while (!terminal && !disconnected) {
        char buf[4096];
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          ::close(fd);
          fd = -1;
          disconnected = true;
          break;
        }
        for (const serve::FrameReader::Line& frame :
             reader.feed(buf, static_cast<std::size_t>(n))) {
          if (!frame.ok()) continue;
          std::map<std::string, std::string> kv;
          try {
            kv = serve::parse_response(frame.text);
          } catch (const std::exception&) {
            continue;  // not ours to enforce; wait for a terminal frame
          }
          const std::string& event = kv["event"];
          if (event == "accepted") continue;
          if (event == "overloaded") {
            hint_ms = kv.count("retry-ms") ? std::strtoll(kv["retry-ms"].c_str(), nullptr, 10)
                                           : 0;
            if (hint_ms < 0) {
              // Drain sentinel: the daemon is going away, stop retrying.
              err << "client: server draining, giving up on request " << (i + 1) << "\n";
              attempt = policy.max_attempts;
            } else if (!quiet) {
              err << "client: overloaded, retry " << attempt << "/"
                  << (policy.max_attempts - 1) << " after "
                  << policy.delay_ms(attempt, hint_ms) << " ms\n";
            }
            disconnected = true;  // leave the read loop, back off, resubmit
            break;
          }
          if (event == "result" || event == "error") {
            out << frame.text << "\n";
            terminal = true;
            const std::string status = kv.count("status") ? kv["status"] : "";
            if (event == "error" || status == "invalid_input" ||
                status == "internal_error") {
              ++failed;
            }
            break;
          }
        }
      }
      if (!terminal && attempt < policy.max_attempts) backoff();
    }
    if (!terminal) {
      err << "client: request " << (i + 1) << " got no terminal frame after "
          << policy.max_attempts << " attempt(s)\n";
      ++failed;
    }
  }
  if (fd >= 0) ::close(fd);
  return failed > 0 ? 1 : 0;
}

std::string help_text() {
  return R"(mimdmap_cli — critical-edge task mapping for MIMD computers (Yang/Bic/Nicolau 1991)

usage: mimdmap_cli <command> [--flag value ...]

commands:
  generate  make a problem graph
            --workload layered|erdos|series-parallel|fork-join|pipeline|
                       diamond|fft|gaussian|cholesky|lu     (default layered)
            size flags per workload: --tasks --layers --depth --width --stages
            --length --rows --cols --points --order --tiles
            --node-min/--node-max --edge-min/--edge-max --seed
            [--dot] [--out file]
  topology  make a system graph
            --spec hypercube-3|mesh-4x4|torus-3x3|ring-8|star-8|chain-6|
                   complete-6|tree-2x3|random-N-PCT-SEED|mesh3d-2x2x2|
                   debruijn-4|ccc-3|chordal-12-4|bipartite-3x4
            [--dot] [--out file]
  cluster   partition a problem graph
            --problem file --clusters N
            [--strategy random|round-robin|block|level|list|edge-zeroing|linear]
            [--seed S] [--out file]
  map       run the full mapping pipeline
            --problem file (--system file | --spec topo)
            [--clustering file | --strategy name --seed S]
            [--trials N] [--refine-seed S] [--threads T (0 = auto)]
            [--width W (candidates per SoA wave; 0 = auto / MIMDMAP_EVAL_WIDTH)]
            [--contention] [--serialize] [--weighted-links] [--extended-critical] [--gantt]
            [--random-trials N --random-seed S]   (adds the paper's baseline)
            [--multilevel]      (coarsen-map-refine for huge instances)
            [--coarsen-target N (stop coarsening at N tasks; 0 = auto)]
            [--level-trials K   (refinement trials per uncoarsen level; -1 = ns)]
            [--deadline-ms MS]  (wall budget; on expiry prints the best
                                 incumbent with a degraded status)
            [--trace out.json]  (Chrome trace-event spans; open in Perfetto)
            [--out file]
  eval      evaluate an explicit assignment
            --problem file (--system file | --spec topo) --clustering file
            --assignment 0,2,3,1  [--contention] [--serialize] [--gantt]
  batch     map a manifest of instances concurrently (MapService)
            --manifest file  [--lanes L (0 = auto)] [--jobs J (0 = auto)]
            [--timeout MS (per-job deadline default)] [--progress] [--csv]
            [--trace out.json (per-job span trace; open in Perfetto)]
            [--out file]
            SIGINT cancels in-flight jobs, drains, and prints partial
            results with per-job statuses.
            manifest: one job per line of key=value tokens (# comments):
              problem=<file> (spec=<topo> | system=<file>)
              [clustering=<file> | strategy=<name> seed=<S>] [name=<label>]
              [trials=N] [refine-seed=S] [serialize] [contention]
              [weighted-links] [extended-critical]
              [multilevel] [coarsen-target=N] [level-trials=K]
              [random-trials=N] [random-seed=S]
              [deadline-ms=MS (overrides --timeout; -1 = no deadline)]
  serve     run the streaming mapping daemon (warm MapService, shared
            thread pool + topology cache across all clients)
            (--socket /path/to.sock | --stdio)
            [--lanes L] [--jobs J] [--queue N (shed beyond; default 256)]
            [--queue-tasks T (shed when queued size hints exceed T)]
            [--timeout MS (default per-job deadline)]
            [--max-inflight N (per-client running-job cap)]
            [--fifo (disable the priority scheduler; for A/B benching)]
            [--drain-mode finish|cancel] [--quiet]
            [--metrics-dump (print the metrics registry exposition on exit)]
            [--journal DIR (write-ahead request journal: accepted submits
                            are logged before the accepted frame; on
                            restart, unfinished ones replay with
                            replayed=1 results)]
            [--journal-fsync always|batch|none (durability vs throughput;
                            default batch)]
            [--journal-repair (truncate a corrupt journal record instead
                            of refusing to start)]
            [--journal-rotate-bytes N (compact once idle and larger)]
            [--cache-bytes N (idempotent result cache budget; repeat
                            identical-fingerprint submits answer cached=1
                            without re-running; 0 = off)]
            protocol: newline-framed key=value frames (manifest grammar).
            requests:  [op=submit] problem=<file>|gen=<kind> gen-a/gen-b/
                       gen-seed spec=|system= [id=] [priority=] [size-hint=]
                       [deadline-ms=] + all batch manifest keys
                       op=cancel id=... | op=stats | op=metrics |
                       op=ping | op=drain [mode=finish|cancel]
            responses: event=accepted|result|overloaded|error|stats|
                       metrics|pong|draining|bye
            SIGTERM/SIGINT drains per --drain-mode (second signal cancels
            in-flight); every accepted job gets exactly one result frame.
  client    submit requests to a running daemon with retry/backoff
            --socket /path/to.sock (--request "LINE" | --manifest file)
            [--retries N (total tries; default 5)] [--base-ms MS]
            [--cap-ms MS] [--seed S (jitter stream)] [--quiet]
            Overloaded answers honor the server's retry-ms hint under a
            capped exponential backoff with deterministic jitter; dropped
            connections reconnect and resubmit (idempotent by fingerprint
            against a --cache-bytes daemon). Prints each terminal frame;
            exits nonzero if any request fails.
  info      print statistics
            (--problem file | --system file | --spec topo)
  help      this text
)";
}

int run(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    err << help_text();
    return 2;
  }
  const std::string command = argv[1];
  try {
    Flags flags(argc, argv, 2);
    if (command == "generate") return cmd_generate(flags, out, err);
    if (command == "topology") return cmd_topology(flags, out, err);
    if (command == "cluster") return cmd_cluster(flags, out, err);
    if (command == "map") return cmd_map(flags, out, err);
    if (command == "batch") return cmd_batch(flags, out, err);
    if (command == "serve") return cmd_serve(flags, out, err);
    if (command == "client") return cmd_client(flags, out, err);
    if (command == "eval") return cmd_eval(flags, out, err);
    if (command == "info") return cmd_info(flags, out, err);
    if (command == "help" || command == "--help") {
      out << help_text();
      return 0;
    }
    err << "unknown command '" << command << "'\n\n" << help_text();
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace mimdmap::cli
