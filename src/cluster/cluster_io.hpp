// Text serialization of clusterings (and, in core, assignments reuse the
// same style): lets experiments be stored, diffed and replayed alongside
// the graph files from graph/graph_io.hpp.
//
//   clustering <np> <na>
//   task <id> <cluster>     (np lines, ids consecutive from 0)
#pragma once

#include <iosfwd>
#include <string>

#include "cluster/clustering.hpp"

namespace mimdmap {

void write_text(std::ostream& os, const Clustering& clustering);
[[nodiscard]] std::string to_text(const Clustering& clustering);

/// Parses the text format; throws std::invalid_argument with a line number
/// on malformed input.
[[nodiscard]] Clustering read_clustering(std::istream& is);
[[nodiscard]] Clustering clustering_from_text(const std::string& text);

}  // namespace mimdmap
