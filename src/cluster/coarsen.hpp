// Within-cluster task-graph coarsening for the multilevel mapper
// (DESIGN.md section 18).
//
// The mapping search space is the cluster -> processor assignment, so the
// hierarchy coarsens *inside* clusters only: heavy-edge matching contracts
// task pairs that share a cluster, never across clusters. Every level is
// therefore a valid MappingInstance over the SAME ns clusters — a coarse
// assignment IS a fine assignment (projection is the identity on host_of),
// and per-cluster compute (summed node weights) and per-cluster-pair
// communication (summed inter-cluster edge weights) are preserved exactly
// at every level. Refinement during uncoarsening re-scores the same moves
// against progressively finer (more exact) schedules.
//
// DAG safety: contracting a simultaneous matching can create cycles even
// when every matched edge connects adjacent topological levels (two pairs
// with crossing edges already close a 2-cycle). We therefore only contract
// edge (u, v) when in_degree(v) == 1 or out_degree(u) == 1, degrees taken
// at pass start. Proof sketch: a cycle through contracted pairs must enter
// some pair externally at v (impossible when u is v's only predecessor) or
// leave it externally from u (impossible when v is u's only successor);
// with the rule, every cycle segment through a pair lifts to a path in the
// fine graph via the contracted edge, so a coarse cycle would imply a fine
// cycle. Matching passes are fully deterministic (weight-descending with
// id tie-breaks), so hierarchies — and everything mapped on them — are
// reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/clustering.hpp"
#include "graph/task_graph.hpp"

namespace mimdmap {

struct CoarsenOptions {
  /// Stop once a level's task count is <= target. 0 = auto:
  /// max(8 * num_clusters, 64). Matching can stall above the target when
  /// clusters run out of contractible internal edges — the hierarchy then
  /// simply ends earlier.
  NodeId target = 0;
  /// Hard cap on hierarchy depth (levels below the original).
  int max_levels = 32;
  /// A pass that shrinks the node count by less than this fraction ends
  /// the hierarchy (diminishing returns). Kept small by default: the
  /// degree rule contracts long chains one pair per pass, so useful
  /// hierarchies often build through several low-yield passes.
  double min_reduction = 0.02;
};

/// One coarse level produced by a matching pass over the previous level.
struct CoarseLevel {
  /// Coarse problem graph: merged node weights are sums, parallel edges
  /// between merged endpoints aggregate their weights, and the contracted
  /// (intra-cluster) edge disappears — exactly the weight it contributed
  /// to the clustered problem graph (zero).
  TaskGraph graph;
  /// Induced partition: a merged node belongs to its members' (shared)
  /// cluster, so num_clusters is identical at every level.
  Clustering clustering;
  /// parent[fine] = coarse node holding fine task `fine`, where fine ids
  /// are the previous level's node ids (the original problem's for the
  /// first level).
  std::vector<NodeId> parent;
};

struct CoarseningHierarchy {
  /// Finest-to-coarsest. Empty = the trivial hierarchy (target >= np or no
  /// contractible edge): the multilevel mapper then degenerates to the
  /// flat pipeline bit-for-bit.
  std::vector<CoarseLevel> levels;

  [[nodiscard]] bool trivial() const noexcept { return levels.empty(); }
  [[nodiscard]] const CoarseLevel& coarsest() const { return levels.back(); }

  /// Composes the per-level parent maps: original task -> coarsest node.
  [[nodiscard]] std::vector<NodeId> project_to_coarsest() const;
};

/// Builds the level hierarchy by repeated deterministic heavy-edge
/// within-cluster matching passes (see file comment). Every level's graph
/// is validated acyclic.
[[nodiscard]] CoarseningHierarchy coarsen_hierarchy(const TaskGraph& problem,
                                                    const Clustering& clustering,
                                                    const CoarsenOptions& options = {});

}  // namespace mimdmap
