#include "cluster/coarsen.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>

namespace mimdmap {

namespace {

constexpr NodeId kUnmatched = std::numeric_limits<NodeId>::max();

struct MatchCandidate {
  NodeId from = 0;
  NodeId to = 0;
  Weight weight = 0;
};

/// Result of one heavy-edge matching + contraction pass.
struct PassResult {
  TaskGraph graph;
  std::vector<NodeId> cluster_of;
  std::vector<NodeId> parent;
  NodeId merges = 0;
};

/// One deterministic matching pass over `graph`: contracts up to
/// `merge_budget` disjoint same-cluster edges satisfying the cycle-safety
/// degree rule, heaviest first.
PassResult matching_pass(const TaskGraph& graph, const std::vector<NodeId>& cluster_of,
                         NodeId merge_budget) {
  const NodeId n = graph.node_count();

  std::vector<MatchCandidate> candidates;
  candidates.reserve(graph.edge_count() / 4 + 1);
  for (const TaskEdge& e : graph.edges()) {
    if (cluster_of[idx(e.from)] != cluster_of[idx(e.to)]) continue;
    // Degrees at pass start; see the header's cycle-safety argument.
    if (graph.in_degree(e.to) != 1 && graph.out_degree(e.from) != 1) continue;
    candidates.push_back({e.from, e.to, e.weight});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const MatchCandidate& a, const MatchCandidate& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });

  // partner[v] = the node v is merged with (kUnmatched if v stays single).
  std::vector<NodeId> partner(idx(n), kUnmatched);
  PassResult result;
  for (const MatchCandidate& c : candidates) {
    if (result.merges >= merge_budget) break;
    if (partner[idx(c.from)] != kUnmatched || partner[idx(c.to)] != kUnmatched) continue;
    partner[idx(c.from)] = c.to;
    partner[idx(c.to)] = c.from;
    ++result.merges;
  }
  if (result.merges == 0) return result;

  // Assign coarse ids in ascending fine-id order (deterministic: a pair
  // takes the id slot of its lower member).
  result.parent.assign(idx(n), kUnmatched);
  NodeId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (result.parent[idx(v)] != kUnmatched) continue;  // higher half of a pair
    result.parent[idx(v)] = next;
    const NodeId mate = partner[idx(v)];
    if (mate != kUnmatched) result.parent[idx(mate)] = next;
    ++next;
  }

  // Coarse nodes: weights sum over members.
  std::vector<Weight> coarse_weight(idx(next), 0);
  result.cluster_of.assign(idx(next), 0);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId cv = result.parent[idx(v)];
    coarse_weight[idx(cv)] += graph.node_weight(v);
    result.cluster_of[idx(cv)] = cluster_of[idx(v)];
  }
  for (const Weight w : coarse_weight) result.graph.add_node(w);

  // Coarse edges: aggregate parallel fine edges, drop the (intra-cluster)
  // contracted edges. First-seen insertion order keeps output deterministic.
  std::unordered_map<std::uint64_t, std::size_t> edge_index;
  edge_index.reserve(graph.edge_count());
  std::vector<TaskEdge> coarse_edges;
  coarse_edges.reserve(graph.edge_count());
  for (const TaskEdge& e : graph.edges()) {
    const NodeId cf = result.parent[idx(e.from)];
    const NodeId ct = result.parent[idx(e.to)];
    if (cf == ct) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(cf) << 32) | static_cast<std::uint64_t>(ct);
    const auto [it, inserted] = edge_index.emplace(key, coarse_edges.size());
    if (inserted) {
      coarse_edges.push_back({cf, ct, e.weight});
    } else {
      coarse_edges[it->second].weight += e.weight;
    }
  }
  for (const TaskEdge& e : coarse_edges) result.graph.add_edge(e.from, e.to, e.weight);

  return result;
}

}  // namespace

std::vector<NodeId> CoarseningHierarchy::project_to_coarsest() const {
  if (levels.empty()) return {};
  std::vector<NodeId> projected = levels.front().parent;
  for (std::size_t k = 1; k < levels.size(); ++k) {
    const std::vector<NodeId>& parent = levels[k].parent;
    for (NodeId& p : projected) p = parent[idx(p)];
  }
  return projected;
}

CoarseningHierarchy coarsen_hierarchy(const TaskGraph& problem, const Clustering& clustering,
                                      const CoarsenOptions& options) {
  CoarseningHierarchy hierarchy;
  const NodeId nc = clustering.num_clusters();
  const NodeId target = options.target > 0
                            ? options.target
                            : std::max<NodeId>(8 * std::max<NodeId>(nc, 1), 64);

  const TaskGraph* graph = &problem;
  const std::vector<NodeId>* cluster_of = &clustering.cluster_map();
  for (int level = 0; level < options.max_levels; ++level) {
    const NodeId n = graph->node_count();
    if (n <= target) break;
    PassResult pass = matching_pass(*graph, *cluster_of, n - target);
    if (pass.merges == 0) break;
    pass.graph.validate();  // fail fast if contraction ever broke acyclicity

    const bool stalled =
        static_cast<double>(pass.merges) < options.min_reduction * static_cast<double>(n);
    hierarchy.levels.push_back(
        {std::move(pass.graph), Clustering(std::move(pass.cluster_of), nc),
         std::move(pass.parent)});
    if (stalled) break;
    graph = &hierarchy.levels.back().graph;
    cluster_of = &hierarchy.levels.back().clustering.cluster_map();
  }
  return hierarchy;
}

}  // namespace mimdmap
