#include "cluster/clustering.hpp"

#include <stdexcept>
#include <string>

namespace mimdmap {

Clustering::Clustering(std::vector<NodeId> cluster_of, NodeId num_clusters)
    : cluster_of_(std::move(cluster_of)), num_clusters_(num_clusters) {
  if (num_clusters_ < 0) throw std::invalid_argument("Clustering: negative cluster count");
  members_.resize(idx(num_clusters_));
  for (std::size_t task = 0; task < cluster_of_.size(); ++task) {
    const NodeId c = cluster_of_[task];
    if (c < 0 || c >= num_clusters_) {
      throw std::invalid_argument("Clustering: task " + std::to_string(task) +
                                  " has invalid cluster " + std::to_string(c));
    }
    members_[idx(c)].push_back(node_id(task));
  }
}

NodeId Clustering::non_empty_clusters() const {
  NodeId count = 0;
  for (const auto& m : members_) {
    if (!m.empty()) ++count;
  }
  return count;
}

Matrix<Weight> clustered_edge_matrix(const TaskGraph& problem, const Clustering& clustering) {
  if (problem.node_count() != clustering.num_tasks()) {
    throw std::invalid_argument("clustered_edge_matrix: task count mismatch");
  }
  auto m = Matrix<Weight>::square(idx(problem.node_count()), 0);
  for (const TaskEdge& e : problem.edges()) {
    if (!clustering.same_cluster(e.from, e.to)) m(idx(e.from), idx(e.to)) = e.weight;
  }
  return m;
}

Weight inter_cluster_traffic(const TaskGraph& problem, const Clustering& clustering) {
  Weight sum = 0;
  for (const TaskEdge& e : problem.edges()) {
    if (!clustering.same_cluster(e.from, e.to)) sum += e.weight;
  }
  return sum;
}

}  // namespace mimdmap
