#include "cluster/strategies.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/topological.hpp"
#include "workload/rng.hpp"

namespace mimdmap {
namespace {

void require_clusters(const TaskGraph& problem, NodeId num_clusters) {
  if (num_clusters <= 0) throw std::invalid_argument("clustering: num_clusters must be positive");
  if (problem.node_count() == 0) throw std::invalid_argument("clustering: empty problem graph");
}

}  // namespace

Clustering random_clustering(const TaskGraph& problem, NodeId num_clusters, std::uint64_t seed,
                             bool ensure_non_empty) {
  require_clusters(problem, num_clusters);
  Rng rng(seed);
  const NodeId np = problem.node_count();
  std::vector<NodeId> cluster_of(idx(np), 0);
  if (ensure_non_empty && np >= num_clusters) {
    // Deal one random task to every cluster, then the rest uniformly.
    const std::vector<NodeId> perm = rng.permutation(np);
    for (NodeId c = 0; c < num_clusters; ++c) cluster_of[idx(perm[idx(c)])] = c;
    for (NodeId i = num_clusters; i < np; ++i) {
      cluster_of[idx(perm[idx(i)])] = static_cast<NodeId>(rng.uniform(0, num_clusters - 1));
    }
  } else {
    for (NodeId t = 0; t < np; ++t) {
      cluster_of[idx(t)] = static_cast<NodeId>(rng.uniform(0, num_clusters - 1));
    }
  }
  return Clustering(std::move(cluster_of), num_clusters);
}

Clustering round_robin_clustering(const TaskGraph& problem, NodeId num_clusters) {
  require_clusters(problem, num_clusters);
  std::vector<NodeId> cluster_of(idx(problem.node_count()));
  for (NodeId t = 0; t < problem.node_count(); ++t) cluster_of[idx(t)] = t % num_clusters;
  return Clustering(std::move(cluster_of), num_clusters);
}

Clustering block_clustering(const TaskGraph& problem, NodeId num_clusters) {
  require_clusters(problem, num_clusters);
  const auto order = topological_order(problem);
  if (!order) throw std::invalid_argument("block_clustering: problem graph has a cycle");
  const NodeId np = problem.node_count();
  const NodeId block = (np + num_clusters - 1) / num_clusters;  // ceil
  std::vector<NodeId> cluster_of(idx(np));
  for (NodeId pos = 0; pos < np; ++pos) {
    cluster_of[idx((*order)[idx(pos)])] = std::min<NodeId>(pos / block, num_clusters - 1);
  }
  return Clustering(std::move(cluster_of), num_clusters);
}

Clustering level_clustering(const TaskGraph& problem, NodeId num_clusters) {
  require_clusters(problem, num_clusters);
  const auto levels = topological_levels(problem);
  std::vector<NodeId> cluster_of(idx(problem.node_count()));
  for (NodeId t = 0; t < problem.node_count(); ++t) {
    cluster_of[idx(t)] = levels[idx(t)] % num_clusters;
  }
  return Clustering(std::move(cluster_of), num_clusters);
}

Clustering list_scheduling_clustering(const TaskGraph& problem, NodeId num_clusters) {
  require_clusters(problem, num_clusters);
  const auto order = topological_order(problem);
  if (!order) throw std::invalid_argument("list_scheduling_clustering: cycle");
  const NodeId np = problem.node_count();
  std::vector<NodeId> cluster_of(idx(np), -1);
  std::vector<Weight> proc_free(idx(num_clusters), 0);
  std::vector<Weight> task_end(idx(np), 0);

  for (const NodeId v : *order) {
    Weight best_start = kUnreachable;
    NodeId best_proc = 0;
    for (NodeId p = 0; p < num_clusters; ++p) {
      Weight ready = 0;
      for (const auto& [pred, w] : problem.predecessors(v)) {
        const Weight comm = (cluster_of[idx(pred)] == p) ? 0 : w;
        ready = std::max(ready, task_end[idx(pred)] + comm);
      }
      const Weight start = std::max(ready, proc_free[idx(p)]);
      if (start < best_start) {
        best_start = start;
        best_proc = p;
      }
    }
    cluster_of[idx(v)] = best_proc;
    task_end[idx(v)] = best_start + problem.node_weight(v);
    proc_free[idx(best_proc)] = task_end[idx(v)];
  }
  return Clustering(std::move(cluster_of), num_clusters);
}

Clustering edge_zeroing_clustering(const TaskGraph& problem, NodeId num_clusters) {
  require_clusters(problem, num_clusters);
  const NodeId np = problem.node_count();

  // Union-find over tasks.
  std::vector<NodeId> parent(idx(np));
  std::iota(parent.begin(), parent.end(), NodeId{0});
  const auto find = [&parent](NodeId v) {
    while (parent[idx(v)] != v) {
      parent[idx(v)] = parent[idx(parent[idx(v)])];
      v = parent[idx(v)];
    }
    return v;
  };

  NodeId groups = np;
  if (groups > num_clusters) {
    // Merge across the heaviest edges first (stable order: weight desc,
    // then insertion order).
    std::vector<TaskEdge> edges = problem.edges();
    std::stable_sort(edges.begin(), edges.end(),
                     [](const TaskEdge& a, const TaskEdge& b) { return a.weight > b.weight; });
    for (const TaskEdge& e : edges) {
      if (groups <= num_clusters) break;
      const NodeId ra = find(e.from);
      const NodeId rb = find(e.to);
      if (ra != rb) {
        parent[idx(rb)] = ra;
        --groups;
      }
    }
  }
  // If the problem graph has several weakly connected components, edges may
  // run out before reaching ns groups; merge the smallest groups pairwise.
  while (groups > num_clusters) {
    std::vector<NodeId> size(idx(np), 0);
    for (NodeId t = 0; t < np; ++t) ++size[idx(find(t))];
    NodeId smallest = -1;
    NodeId second = -1;
    for (NodeId r = 0; r < np; ++r) {
      if (size[idx(r)] == 0) continue;
      if (smallest < 0 || size[idx(r)] < size[idx(smallest)]) {
        second = smallest;
        smallest = r;
      } else if (second < 0 || size[idx(r)] < size[idx(second)]) {
        second = r;
      }
    }
    parent[idx(second)] = smallest;
    --groups;
  }

  // Compact root ids to 0..groups-1 and pad to exactly num_clusters ids
  // (possibly leaving empty clusters when np < ns).
  std::vector<NodeId> label(idx(np), -1);
  NodeId next = 0;
  std::vector<NodeId> cluster_of(idx(np));
  for (NodeId t = 0; t < np; ++t) {
    const NodeId r = find(t);
    if (label[idx(r)] < 0) label[idx(r)] = next++;
    cluster_of[idx(t)] = label[idx(r)];
  }
  return Clustering(std::move(cluster_of), num_clusters);
}

Clustering linear_clustering(const TaskGraph& problem, NodeId num_clusters) {
  require_clusters(problem, num_clusters);
  const auto order = topological_order(problem);
  if (!order) throw std::invalid_argument("linear_clustering: problem graph has a cycle");
  const NodeId np = problem.node_count();
  std::vector<NodeId> cluster_of(idx(np), -1);
  std::vector<char> assigned(idx(np), 0);

  NodeId path_index = 0;
  NodeId remaining = np;
  std::vector<Weight> best(idx(np));
  std::vector<NodeId> best_pred(idx(np));
  while (remaining > 0) {
    // Longest path (node + edge weights) over the unassigned subgraph.
    NodeId tail = -1;
    for (const NodeId v : *order) {
      if (assigned[idx(v)]) continue;
      best[idx(v)] = problem.node_weight(v);
      best_pred[idx(v)] = -1;
      for (const auto& [pred, w] : problem.predecessors(v)) {
        if (assigned[idx(pred)]) continue;
        const Weight via = best[idx(pred)] + w + problem.node_weight(v);
        if (via > best[idx(v)]) {
          best[idx(v)] = via;
          best_pred[idx(v)] = pred;
        }
      }
      if (tail < 0 || best[idx(v)] > best[idx(tail)]) tail = v;
    }
    // Peel the path off.
    for (NodeId v = tail; v >= 0; v = best_pred[idx(v)]) {
      cluster_of[idx(v)] = path_index % num_clusters;
      assigned[idx(v)] = 1;
      --remaining;
    }
    ++path_index;
  }
  return Clustering(std::move(cluster_of), num_clusters);
}

Clustering make_clustering(const std::string& strategy, const TaskGraph& problem,
                           NodeId num_clusters, std::uint64_t seed) {
  if (strategy == "random") return random_clustering(problem, num_clusters, seed);
  if (strategy == "round-robin") return round_robin_clustering(problem, num_clusters);
  if (strategy == "block") return block_clustering(problem, num_clusters);
  if (strategy == "level") return level_clustering(problem, num_clusters);
  if (strategy == "list") return list_scheduling_clustering(problem, num_clusters);
  if (strategy == "edge-zeroing") return edge_zeroing_clustering(problem, num_clusters);
  if (strategy == "linear") return linear_clustering(problem, num_clusters);
  throw std::invalid_argument("make_clustering: unknown strategy '" + strategy + "'");
}

std::vector<std::string> clustering_strategies() {
  return {"random", "round-robin", "block", "level", "list", "edge-zeroing", "linear"};
}

}  // namespace mimdmap
