// Clustering strategies.
//
// The paper treats clustering as an external step (section 1: "we assume
// that an existing technique is first applied"); its experiments use a
// random clustering program. We provide that plus several classical
// strategies from the literature the paper cites, so examples and benches
// can explore how clustering quality interacts with the mapping stage:
//
//  * random          — the paper's experimental setup (section 5)
//  * round-robin     — task i -> cluster i mod ns
//  * block           — contiguous blocks in topological order (locality)
//  * level           — topological level l -> cluster l mod ns (wavefronts)
//  * list-scheduling — ETF-flavoured greedy over ns virtual processors
//                      (paper refs [9], [10])
//  * edge-zeroing    — Sarkar-flavoured heavy-edge merging until exactly ns
//                      clusters remain (paper ref [8])
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/clustering.hpp"
#include "graph/task_graph.hpp"

namespace mimdmap {

/// Uniform random clustering. When `ensure_non_empty` and np >= ns, one
/// random task is dealt to every cluster first so no processor is idle by
/// construction (the paper's generator produces np >> ns, where empty
/// clusters are vanishingly rare anyway).
[[nodiscard]] Clustering random_clustering(const TaskGraph& problem, NodeId num_clusters,
                                           std::uint64_t seed, bool ensure_non_empty = true);

/// Task i -> cluster i mod ns.
[[nodiscard]] Clustering round_robin_clustering(const TaskGraph& problem, NodeId num_clusters);

/// Contiguous blocks of ceil(np/ns) tasks in topological order.
[[nodiscard]] Clustering block_clustering(const TaskGraph& problem, NodeId num_clusters);

/// Topological level l -> cluster l mod ns; keeps each dependence wavefront
/// together.
[[nodiscard]] Clustering level_clustering(const TaskGraph& problem, NodeId num_clusters);

/// Greedy list scheduling onto ns virtual processors: tasks are visited in
/// topological order; each goes to the processor minimising its earliest
/// start time, counting an edge's communication weight only when the
/// predecessor sits on a different processor. The processor index is the
/// cluster id.
[[nodiscard]] Clustering list_scheduling_clustering(const TaskGraph& problem,
                                                    NodeId num_clusters);

/// Heavy-edge merging: every task starts in its own cluster; edges are
/// scanned by descending weight and their endpoint clusters merged while
/// more than ns clusters remain; leftover clusters are merged smallest-
/// first. A simplified Sarkar edge-zeroing pass.
[[nodiscard]] Clustering edge_zeroing_clustering(const TaskGraph& problem, NodeId num_clusters);

/// Linear (longest-path) clustering in the style of Kim & Browne:
/// repeatedly peel the heaviest remaining path (node + edge weights) off
/// the DAG and make it a cluster; the i-th path goes to cluster i mod ns.
/// Keeps the dominant dependence chains communication-free.
[[nodiscard]] Clustering linear_clustering(const TaskGraph& problem, NodeId num_clusters);

/// Dispatch by name: "random" (uses seed), "round-robin", "block",
/// "level", "list", "edge-zeroing", "linear". Throws std::invalid_argument
/// on an unknown name.
[[nodiscard]] Clustering make_clustering(const std::string& strategy, const TaskGraph& problem,
                                         NodeId num_clusters, std::uint64_t seed);

/// All strategy names accepted by make_clustering.
[[nodiscard]] std::vector<std::string> clustering_strategies();

}  // namespace mimdmap
