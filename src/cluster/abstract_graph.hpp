// AbstractGraph: the paper's abstract graph Ga (section 2.1, Fig. 4).
//
// Each cluster becomes one abstract node; all clustered problem edges
// between the same pair of clusters collapse into one abstract edge. The
// abstract graph also carries the communication-intensity vector mca
// (paper Fig. 20-c): mca[i] is the sum of the weights of all clustered
// problem edges incident to cluster i.
#pragma once

#include <vector>

#include "cluster/clustering.hpp"
#include "graph/matrix.hpp"
#include "graph/task_graph.hpp"

namespace mimdmap {

class AbstractGraph {
 public:
  AbstractGraph() = default;

  /// Builds the abstraction of (problem, clustering).
  AbstractGraph(const TaskGraph& problem, const Clustering& clustering);

  [[nodiscard]] NodeId node_count() const noexcept { return n_; }

  /// 1 iff any clustered problem edge connects the two clusters (in either
  /// direction) — the paper's abs_edge[na][na] (Fig. 20-a). Symmetric.
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const { return adj_(idx(a), idx(b)) != 0; }

  /// Total clustered-edge weight between two clusters (both directions).
  [[nodiscard]] Weight edge_traffic(NodeId a, NodeId b) const {
    return traffic_(idx(a), idx(b));
  }

  /// Communication intensity of a cluster (paper's mca[i]).
  [[nodiscard]] Weight mca(NodeId a) const { return mca_.at(idx(a)); }
  [[nodiscard]] const std::vector<Weight>& mca_vector() const noexcept { return mca_; }

  /// Abstract neighbours of a cluster.
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId a) const {
    return neighbors_.at(idx(a));
  }

  /// Number of (undirected) abstract edges.
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

 private:
  NodeId n_ = 0;
  Matrix<Weight> adj_;      // 0/1 abstract adjacency
  Matrix<Weight> traffic_;  // summed clustered edge weights per cluster pair
  std::vector<Weight> mca_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::size_t edge_count_ = 0;
};

}  // namespace mimdmap
