#include "cluster/abstract_graph.hpp"

#include <stdexcept>

namespace mimdmap {

AbstractGraph::AbstractGraph(const TaskGraph& problem, const Clustering& clustering) {
  if (problem.node_count() != clustering.num_tasks()) {
    throw std::invalid_argument("AbstractGraph: task count mismatch");
  }
  n_ = clustering.num_clusters();
  adj_ = Matrix<Weight>::square(idx(n_), 0);
  traffic_ = Matrix<Weight>::square(idx(n_), 0);
  mca_.assign(idx(n_), 0);
  neighbors_.resize(idx(n_));

  for (const TaskEdge& e : problem.edges()) {
    const NodeId ca = clustering.cluster_of(e.from);
    const NodeId cb = clustering.cluster_of(e.to);
    if (ca == cb) continue;  // removed by clustering
    traffic_(idx(ca), idx(cb)) += e.weight;
    traffic_(idx(cb), idx(ca)) += e.weight;
    mca_[idx(ca)] += e.weight;
    mca_[idx(cb)] += e.weight;
    if (adj_(idx(ca), idx(cb)) == 0) {
      adj_(idx(ca), idx(cb)) = 1;
      adj_(idx(cb), idx(ca)) = 1;
      neighbors_[idx(ca)].push_back(cb);
      neighbors_[idx(cb)].push_back(ca);
      ++edge_count_;
    }
  }
}

}  // namespace mimdmap
