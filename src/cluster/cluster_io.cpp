#include "cluster/cluster_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mimdmap {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("cluster_io: line " + std::to_string(line) + ": " + what);
}

bool next_line(std::istream& is, std::string& out, std::size_t& line_no) {
  while (std::getline(is, out)) {
    ++line_no;
    const auto first = out.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (out[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void write_text(std::ostream& os, const Clustering& clustering) {
  os << "clustering " << clustering.num_tasks() << " " << clustering.num_clusters() << "\n";
  for (NodeId t = 0; t < clustering.num_tasks(); ++t) {
    os << "task " << t << " " << clustering.cluster_of(t) << "\n";
  }
}

std::string to_text(const Clustering& clustering) {
  std::ostringstream os;
  write_text(os, clustering);
  return os.str();
}

Clustering read_clustering(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!next_line(is, line, line_no)) fail(line_no, "empty input");
  std::istringstream header(line);
  std::string tag;
  NodeId np = 0;
  NodeId na = 0;
  if (!(header >> tag >> np >> na) || tag != "clustering" || np < 0 || na < 0) {
    fail(line_no, "expected 'clustering <np> <na>'");
  }
  std::vector<NodeId> cluster_of(idx(np), -1);
  for (NodeId expected = 0; expected < np; ++expected) {
    if (!next_line(is, line, line_no)) fail(line_no, "unexpected EOF in task list");
    std::istringstream ls(line);
    NodeId id = 0;
    NodeId cluster = 0;
    if (!(ls >> tag >> id >> cluster) || tag != "task") {
      fail(line_no, "expected 'task <id> <cluster>'");
    }
    if (id != expected) fail(line_no, "task ids must be consecutive from 0");
    cluster_of[idx(id)] = cluster;
  }
  return Clustering(std::move(cluster_of), na);  // validates cluster ranges
}

Clustering clustering_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_clustering(is);
}

}  // namespace mimdmap
