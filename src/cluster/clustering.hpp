// Clustering: the partition of problem-graph tasks into clusters.
//
// The paper's first scheduling step (section 1) combines the np problem
// nodes into na groups where na equals the number of system nodes ns; the
// paper *assumes* an existing clustering technique (refs [8]-[11]) and its
// experiments use a random clustering program. This module provides the
// partition data structure (the paper's clus_pnode[na][np] matrix, Fig.
// 19-b) and the derived clustered-problem-graph edge matrix (clus_edge,
// Fig. 19-a). Concrete clustering strategies live in strategies.hpp.
#pragma once

#include <vector>

#include "graph/matrix.hpp"
#include "graph/task_graph.hpp"
#include "graph/types.hpp"

namespace mimdmap {

class Clustering {
 public:
  Clustering() = default;

  /// Partition described by `cluster_of[task] = cluster`. Cluster ids must
  /// lie in [0, num_clusters); clusters may be empty (a processor that
  /// receives no work). Throws std::invalid_argument otherwise.
  Clustering(std::vector<NodeId> cluster_of, NodeId num_clusters);

  [[nodiscard]] NodeId num_tasks() const noexcept { return node_id(cluster_of_.size()); }
  [[nodiscard]] NodeId num_clusters() const noexcept { return num_clusters_; }

  /// Cluster (abstract node) containing the given task.
  [[nodiscard]] NodeId cluster_of(NodeId task) const { return cluster_of_.at(idx(task)); }
  [[nodiscard]] const std::vector<NodeId>& cluster_map() const noexcept { return cluster_of_; }

  /// Tasks inside one cluster — one row of the paper's clus_pnode matrix.
  [[nodiscard]] const std::vector<NodeId>& members(NodeId cluster) const {
    return members_.at(idx(cluster));
  }

  /// True iff tasks a and b live in the same cluster.
  [[nodiscard]] bool same_cluster(NodeId a, NodeId b) const {
    return cluster_of(a) == cluster_of(b);
  }

  /// Number of clusters with at least one task.
  [[nodiscard]] NodeId non_empty_clusters() const;

 private:
  std::vector<NodeId> cluster_of_;
  std::vector<std::vector<NodeId>> members_;
  NodeId num_clusters_ = 0;
};

/// The clustered-problem-graph edge matrix (paper Fig. 19-a): identical to
/// the problem edge matrix except that intra-cluster entries are zeroed —
/// "the edges connecting problem nodes within the same group are removed".
[[nodiscard]] Matrix<Weight> clustered_edge_matrix(const TaskGraph& problem,
                                                   const Clustering& clustering);

/// Total weight of inter-cluster (surviving) edges — the communication the
/// mapping stage must place.
[[nodiscard]] Weight inter_cluster_traffic(const TaskGraph& problem,
                                           const Clustering& clustering);

}  // namespace mimdmap
