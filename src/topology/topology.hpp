// System-graph (topology) generators.
//
// The paper evaluates mapping onto hypercubes (Table 1), meshes (Table 2)
// and randomly produced topologies (Table 3) with 4-40 processors. We also
// provide the standard families used by the mapping literature the paper
// builds on (ring, star, tree, torus, complete) — the complete graph doubles
// as the system-graph *closure* (paper Fig. 5-b).
//
// Every generator returns a connected SystemGraph with unit link weights
// and a descriptive name.
#pragma once

#include <cstdint>

#include "graph/system_graph.hpp"

namespace mimdmap {

/// Binary hypercube of 2^dim processors; node i links to i ^ (1 << b).
[[nodiscard]] SystemGraph make_hypercube(NodeId dim);

/// rows x cols 2-D mesh (no wraparound).
[[nodiscard]] SystemGraph make_mesh(NodeId rows, NodeId cols);

/// rows x cols 2-D torus (mesh with wraparound links).
[[nodiscard]] SystemGraph make_torus(NodeId rows, NodeId cols);

/// Cycle of n >= 3 processors.
[[nodiscard]] SystemGraph make_ring(NodeId n);

/// Node 0 is the hub connected to every other processor (n >= 2).
[[nodiscard]] SystemGraph make_star(NodeId n);

/// Fully connected graph on n processors.
[[nodiscard]] SystemGraph make_complete(NodeId n);

/// Linear chain of n processors.
[[nodiscard]] SystemGraph make_chain(NodeId n);

/// Balanced tree: `depth` levels below the root, `branching` children per
/// node.
[[nodiscard]] SystemGraph make_balanced_tree(NodeId depth, NodeId branching);

/// Random connected topology: a random spanning tree (guaranteeing
/// connectivity) plus each remaining pair linked with probability
/// `extra_edge_probability`. Deterministic in (n, p, seed). This mirrors
/// the paper's "randomly produced system architectures" (Table 3).
[[nodiscard]] SystemGraph make_random_connected(NodeId n, double extra_edge_probability,
                                                std::uint64_t seed);

/// x * y * z 3-D mesh (no wraparound).
[[nodiscard]] SystemGraph make_mesh3d(NodeId x, NodeId y, NodeId z);

/// Binary de Bruijn graph on 2^dim nodes: v links to (2v) mod n and
/// (2v + 1) mod n (undirected; self-loops and parallel links collapsed).
/// Diameter dim with degree <= 4 — a classic low-degree alternative to the
/// hypercube.
[[nodiscard]] SystemGraph make_de_bruijn(NodeId dim);

/// Cube-connected cycles CCC(dim): each hypercube corner is replaced by a
/// dim-cycle; node (w, i) has cycle links to (w, i±1) and a cube link to
/// (w ^ 2^i, i). 3-regular for dim >= 3.
[[nodiscard]] SystemGraph make_cube_connected_cycles(NodeId dim);

/// Ring of n nodes plus chords v -- (v + chord) mod n. Requires
/// 2 <= chord < n.
[[nodiscard]] SystemGraph make_chordal_ring(NodeId n, NodeId chord);

/// Complete bipartite graph K(a, b): nodes 0..a-1 on the left, a..a+b-1 on
/// the right, all cross links.
[[nodiscard]] SystemGraph make_complete_bipartite(NodeId a, NodeId b);

}  // namespace mimdmap
