#include "topology/topology.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "workload/rng.hpp"

namespace mimdmap {
namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("topology: ") + what);
}

}  // namespace

SystemGraph make_hypercube(NodeId dim) {
  require(dim >= 0 && dim < 20, "hypercube dimension must be in [0, 20)");
  const NodeId n = NodeId{1} << dim;
  SystemGraph g(n, "hypercube-" + std::to_string(dim));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId b = 0; b < dim; ++b) {
      const NodeId u = v ^ (NodeId{1} << b);
      if (v < u) g.add_link(v, u);
    }
  }
  return g;
}

SystemGraph make_mesh(NodeId rows, NodeId cols) {
  require(rows > 0 && cols > 0, "mesh dimensions must be positive");
  SystemGraph g(rows * cols, "mesh-" + std::to_string(rows) + "x" + std::to_string(cols));
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (r + 1 < rows) g.add_link(id(r, c), id(r + 1, c));
      if (c + 1 < cols) g.add_link(id(r, c), id(r, c + 1));
    }
  }
  return g;
}

SystemGraph make_torus(NodeId rows, NodeId cols) {
  require(rows > 0 && cols > 0, "torus dimensions must be positive");
  SystemGraph g(rows * cols, "torus-" + std::to_string(rows) + "x" + std::to_string(cols));
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      const NodeId down = id((r + 1) % rows, c);
      const NodeId right = id(r, (c + 1) % cols);
      if (!g.has_link(id(r, c), down)) g.add_link(id(r, c), down);
      if (!g.has_link(id(r, c), right)) g.add_link(id(r, c), right);
    }
  }
  return g;
}

SystemGraph make_ring(NodeId n) {
  require(n >= 3, "ring needs at least 3 nodes");
  SystemGraph g(n, "ring-" + std::to_string(n));
  for (NodeId v = 0; v < n; ++v) g.add_link(v, (v + 1) % n);
  return g;
}

SystemGraph make_star(NodeId n) {
  require(n >= 2, "star needs at least 2 nodes");
  SystemGraph g(n, "star-" + std::to_string(n));
  for (NodeId v = 1; v < n; ++v) g.add_link(0, v);
  return g;
}

SystemGraph make_complete(NodeId n) {
  require(n >= 1, "complete graph needs at least 1 node");
  SystemGraph g(n, "complete-" + std::to_string(n));
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) g.add_link(a, b);
  }
  return g;
}

SystemGraph make_chain(NodeId n) {
  require(n >= 1, "chain needs at least 1 node");
  SystemGraph g(n, "chain-" + std::to_string(n));
  for (NodeId v = 0; v + 1 < n; ++v) g.add_link(v, v + 1);
  return g;
}

SystemGraph make_balanced_tree(NodeId depth, NodeId branching) {
  require(depth >= 0, "tree depth must be non-negative");
  require(branching >= 1, "tree branching must be positive");
  // Count nodes: 1 + b + b^2 + ... + b^depth.
  NodeId n = 1;
  NodeId level_size = 1;
  for (NodeId d = 0; d < depth; ++d) {
    level_size *= branching;
    n += level_size;
  }
  SystemGraph g(n, "tree-" + std::to_string(depth) + "x" + std::to_string(branching));
  // Children of node v are v*b+1 .. v*b+b in BFS numbering.
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId c = 0; c < branching; ++c) {
      const NodeId child = v * branching + 1 + c;
      if (child < n) g.add_link(v, child);
    }
  }
  return g;
}

SystemGraph make_random_connected(NodeId n, double extra_edge_probability, std::uint64_t seed) {
  require(n >= 1, "random topology needs at least 1 node");
  require(extra_edge_probability >= 0.0 && extra_edge_probability <= 1.0,
          "edge probability must be in [0, 1]");
  Rng rng(seed);
  SystemGraph g(n, "random-" + std::to_string(n));
  // Random spanning tree: attach each node (in random order) to a random
  // already-attached node.
  const std::vector<NodeId> order = rng.permutation(n);
  for (NodeId i = 1; i < n; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform(0, i - 1));
    g.add_link(order[idx(i)], order[j]);
  }
  // Sprinkle extra links.
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (!g.has_link(a, b) && rng.bernoulli(extra_edge_probability)) g.add_link(a, b);
    }
  }
  return g;
}

SystemGraph make_mesh3d(NodeId x, NodeId y, NodeId z) {
  require(x > 0 && y > 0 && z > 0, "3-D mesh dimensions must be positive");
  SystemGraph g(x * y * z, "mesh3d-" + std::to_string(x) + "x" + std::to_string(y) + "x" +
                               std::to_string(z));
  const auto id = [y, z](NodeId i, NodeId j, NodeId k) { return (i * y + j) * z + k; };
  for (NodeId i = 0; i < x; ++i) {
    for (NodeId j = 0; j < y; ++j) {
      for (NodeId k = 0; k < z; ++k) {
        if (i + 1 < x) g.add_link(id(i, j, k), id(i + 1, j, k));
        if (j + 1 < y) g.add_link(id(i, j, k), id(i, j + 1, k));
        if (k + 1 < z) g.add_link(id(i, j, k), id(i, j, k + 1));
      }
    }
  }
  return g;
}

SystemGraph make_de_bruijn(NodeId dim) {
  require(dim >= 1 && dim < 20, "de Bruijn dimension must be in [1, 20)");
  const NodeId n = NodeId{1} << dim;
  SystemGraph g(n, "debruijn-" + std::to_string(dim));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId bit = 0; bit <= 1; ++bit) {
      const NodeId u = (2 * v + bit) % n;
      if (u != v && !g.has_link(v, u)) g.add_link(v, u);
    }
  }
  return g;
}

SystemGraph make_cube_connected_cycles(NodeId dim) {
  require(dim >= 1 && dim < 16, "CCC dimension must be in [1, 16)");
  const NodeId corners = NodeId{1} << dim;
  SystemGraph g(corners * dim, "ccc-" + std::to_string(dim));
  // Node (w, i) has id w * dim + i.
  const auto id = [dim](NodeId w, NodeId i) { return w * dim + i; };
  for (NodeId w = 0; w < corners; ++w) {
    // Cycle links (a dim-cycle per hypercube corner; dim < 3 degenerates).
    for (NodeId i = 0; i < dim; ++i) {
      const NodeId next = (i + 1) % dim;
      if (next != i && !g.has_link(id(w, i), id(w, next))) {
        g.add_link(id(w, i), id(w, next));
      }
    }
    // Cube links along dimension i.
    for (NodeId i = 0; i < dim; ++i) {
      const NodeId u = w ^ (NodeId{1} << i);
      if (w < u) g.add_link(id(w, i), id(u, i));
    }
  }
  return g;
}

SystemGraph make_chordal_ring(NodeId n, NodeId chord) {
  require(n >= 3, "chordal ring needs at least 3 nodes");
  require(chord >= 2 && chord < n, "chord must be in [2, n)");
  SystemGraph g(n, "chordal-" + std::to_string(n) + "-" + std::to_string(chord));
  for (NodeId v = 0; v < n; ++v) g.add_link(v, (v + 1) % n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId u = (v + chord) % n;
    if (!g.has_link(v, u)) g.add_link(v, u);
  }
  return g;
}

SystemGraph make_complete_bipartite(NodeId a, NodeId b) {
  require(a >= 1 && b >= 1, "bipartite sides must be positive");
  SystemGraph g(a + b, "bipartite-" + std::to_string(a) + "x" + std::to_string(b));
  for (NodeId left = 0; left < a; ++left) {
    for (NodeId right = a; right < a + b; ++right) g.add_link(left, right);
  }
  return g;
}

}  // namespace mimdmap
