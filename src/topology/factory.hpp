// String-spec topology factory.
//
// Benches and examples accept topology specs on the command line; the
// factory turns a spec into a SystemGraph:
//
//   "hypercube-3"        2^3-node hypercube
//   "mesh-4x5"           4 x 5 mesh
//   "torus-3x3"          3 x 3 torus
//   "ring-8"             8-node ring
//   "star-8"             8-node star
//   "chain-6"            6-node chain
//   "complete-6"         fully connected, 6 nodes
//   "tree-2x3"           balanced tree, depth 2, branching 3
//   "random-16-25-42"    16 nodes, extra-edge probability 25%, seed 42
//                        (probability given as integer percent)
#pragma once

#include <string>
#include <vector>

#include "graph/system_graph.hpp"

namespace mimdmap {

/// Builds the topology described by `spec`; throws std::invalid_argument
/// with a descriptive message on malformed specs.
[[nodiscard]] SystemGraph make_topology(const std::string& spec);

/// Names of all supported topology families (for --help output).
[[nodiscard]] std::vector<std::string> topology_families();

}  // namespace mimdmap
