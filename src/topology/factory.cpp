#include "topology/factory.hpp"

#include <charconv>
#include <stdexcept>

#include "topology/topology.hpp"

namespace mimdmap {
namespace {

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("make_topology: bad spec '" + spec + "': " + why);
}

/// Splits "a-b-c" into {"a", "b", "c"}.
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::int64_t parse_int(const std::string& spec, const std::string& token) {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail(spec, "'" + token + "' is not an integer");
  }
  return value;
}

/// Parses "RxC" into two integers.
std::pair<NodeId, NodeId> parse_dims(const std::string& spec, const std::string& token) {
  const auto x = token.find('x');
  if (x == std::string::npos) fail(spec, "expected '<rows>x<cols>', got '" + token + "'");
  return {static_cast<NodeId>(parse_int(spec, token.substr(0, x))),
          static_cast<NodeId>(parse_int(spec, token.substr(x + 1)))};
}

}  // namespace

SystemGraph make_topology(const std::string& spec) {
  const auto parts = split(spec, '-');
  const std::string& family = parts[0];
  const std::size_t args = parts.size() - 1;

  if (family == "hypercube" && args == 1) {
    return make_hypercube(static_cast<NodeId>(parse_int(spec, parts[1])));
  }
  if (family == "mesh" && args == 1) {
    const auto [r, c] = parse_dims(spec, parts[1]);
    return make_mesh(r, c);
  }
  if (family == "torus" && args == 1) {
    const auto [r, c] = parse_dims(spec, parts[1]);
    return make_torus(r, c);
  }
  if (family == "ring" && args == 1) {
    return make_ring(static_cast<NodeId>(parse_int(spec, parts[1])));
  }
  if (family == "star" && args == 1) {
    return make_star(static_cast<NodeId>(parse_int(spec, parts[1])));
  }
  if (family == "chain" && args == 1) {
    return make_chain(static_cast<NodeId>(parse_int(spec, parts[1])));
  }
  if (family == "complete" && args == 1) {
    return make_complete(static_cast<NodeId>(parse_int(spec, parts[1])));
  }
  if (family == "tree" && args == 1) {
    const auto [depth, branching] = parse_dims(spec, parts[1]);
    return make_balanced_tree(depth, branching);
  }
  if (family == "random" && args == 3) {
    const auto n = static_cast<NodeId>(parse_int(spec, parts[1]));
    const auto percent = parse_int(spec, parts[2]);
    const auto seed = static_cast<std::uint64_t>(parse_int(spec, parts[3]));
    if (percent < 0 || percent > 100) fail(spec, "probability percent must be in [0, 100]");
    return make_random_connected(n, static_cast<double>(percent) / 100.0, seed);
  }
  if (family == "mesh3d" && args == 1) {
    const auto first = parts[1].find('x');
    const auto second = parts[1].find('x', first == std::string::npos ? 0 : first + 1);
    if (first == std::string::npos || second == std::string::npos) {
      fail(spec, "expected '<x>x<y>x<z>'");
    }
    return make_mesh3d(
        static_cast<NodeId>(parse_int(spec, parts[1].substr(0, first))),
        static_cast<NodeId>(parse_int(spec, parts[1].substr(first + 1, second - first - 1))),
        static_cast<NodeId>(parse_int(spec, parts[1].substr(second + 1))));
  }
  if (family == "debruijn" && args == 1) {
    return make_de_bruijn(static_cast<NodeId>(parse_int(spec, parts[1])));
  }
  if (family == "ccc" && args == 1) {
    return make_cube_connected_cycles(static_cast<NodeId>(parse_int(spec, parts[1])));
  }
  if (family == "chordal" && args == 2) {
    return make_chordal_ring(static_cast<NodeId>(parse_int(spec, parts[1])),
                             static_cast<NodeId>(parse_int(spec, parts[2])));
  }
  if (family == "bipartite" && args == 1) {
    const auto [a, b] = parse_dims(spec, parts[1]);
    return make_complete_bipartite(a, b);
  }
  fail(spec, "unknown family or wrong argument count");
}

std::vector<std::string> topology_families() {
  return {"hypercube-D", "mesh-RxC",   "torus-RxC",  "ring-N",
          "star-N",      "chain-N",    "complete-N", "tree-DxB",
          "random-N-PCT-SEED",         "mesh3d-XxYxZ",
          "debruijn-D",  "ccc-D",      "chordal-N-C", "bipartite-AxB"};
}

}  // namespace mimdmap
