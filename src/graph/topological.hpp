// Topological utilities over TaskGraph: Kahn's algorithm, acyclicity check,
// and topological level assignment.
//
// The ideal graph (paper section 4.1) is "the topologically sorted form of
// the clustered problem graph"; these helpers provide the traversal order
// every scheduling routine relies on. Levels additionally drive the
// Lee-Aggarwal phase decomposition (paper section 2.2, ref [2]).
#pragma once

#include <optional>
#include <vector>

#include "graph/task_graph.hpp"
#include "graph/types.hpp"

namespace mimdmap {

/// Topological order of all nodes (Kahn's algorithm; ties broken by node
/// id so the order is deterministic). Returns std::nullopt on a cycle.
[[nodiscard]] std::optional<std::vector<NodeId>> topological_order(const TaskGraph& g);

/// True iff the graph is acyclic.
[[nodiscard]] bool is_dag(const TaskGraph& g);

/// Topological level of each node: sources have level 0, every other node
/// is 1 + max level of its predecessors. Throws std::invalid_argument on a
/// cycle.
[[nodiscard]] std::vector<NodeId> topological_levels(const TaskGraph& g);

/// Length (sum of node weights + edge weights) of the heaviest path in the
/// DAG — the classic critical-path lower bound, used by tests to
/// cross-check the ideal-graph lower bound when every task sits in its own
/// cluster. Throws std::invalid_argument on a cycle.
[[nodiscard]] Weight critical_path_length(const TaskGraph& g);

}  // namespace mimdmap
