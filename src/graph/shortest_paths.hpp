// All-pairs shortest paths over system graphs.
//
// The paper's evaluation model (section 4.3.4, algorithm I) multiplies each
// clustered-edge weight by the *number of system edges on the shortest path*
// between the two hosting processors — the shortest[ns][ns] matrix of
// Fig. 21-b. For unit links that is plain BFS; Dijkstra and Floyd-Warshall
// support the weighted-link extension.
#pragma once

#include <vector>

#include "graph/matrix.hpp"
#include "graph/system_graph.hpp"
#include "graph/types.hpp"

namespace mimdmap {

/// Hop distances from src (ignores link weights). Unreachable nodes get
/// kUnreachable.
[[nodiscard]] std::vector<Weight> bfs_hops(const SystemGraph& g, NodeId src);

/// All-pairs hop-count matrix — the paper's shortest[ns][ns]. Throws
/// std::invalid_argument if the graph is disconnected.
[[nodiscard]] Matrix<Weight> all_pairs_hops(const SystemGraph& g);

/// Weighted single-source shortest path costs (binary-heap Dijkstra).
[[nodiscard]] std::vector<Weight> dijkstra(const SystemGraph& g, NodeId src);

/// All-pairs weighted shortest path costs via Floyd-Warshall. Throws
/// std::invalid_argument if the graph is disconnected.
[[nodiscard]] Matrix<Weight> floyd_warshall(const SystemGraph& g);

/// Longest shortest-path (hop) distance — the topology diameter.
[[nodiscard]] Weight diameter(const SystemGraph& g);

/// Mean hop distance over all ordered pairs of distinct nodes (x1000,
/// returned as integer thousandths to keep the library integer-only).
[[nodiscard]] Weight mean_distance_milli(const SystemGraph& g);

}  // namespace mimdmap
