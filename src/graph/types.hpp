// Fundamental identifier and weight types shared by every mimdmap module.
//
// The paper (Yang/Bic/Nicolau, ICPP'91) measures task execution times and
// communication times in integral "time units" (section 2.1); we follow that
// model with 64-bit integers so that perturbation-based test oracles can
// rescale weights without overflow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace mimdmap {

/// Identifier of a node in any of the paper's five graphs (problem,
/// clustered, abstract, ideal, system). 0-based; the paper numbers tasks
/// from 1, so figure reconstructions subtract one.
using NodeId = std::int32_t;

/// Execution or communication time measured in the paper's integral
/// "time units". Also used for hop counts and path lengths.
using Weight = std::int64_t;

/// Sentinel for "no value yet" in start/end-time tables.
inline constexpr Weight kUnknownTime = std::numeric_limits<Weight>::min();

/// Sentinel distance for unreachable node pairs.
inline constexpr Weight kUnreachable = std::numeric_limits<Weight>::max();

/// Converts a node id to a container index. Centralised so that the
/// (checked) narrowing cast appears exactly once.
[[nodiscard]] constexpr std::size_t idx(NodeId v) noexcept {
  return static_cast<std::size_t>(v);
}

/// Converts a container size/index back to a NodeId.
[[nodiscard]] constexpr NodeId node_id(std::size_t i) noexcept {
  return static_cast<NodeId>(i);
}

}  // namespace mimdmap
