// TaskGraph: the paper's *problem graph* Gp = {Vp, Ep} (section 2.1, Fig. 2).
//
// A weighted directed acyclic graph. Each node is a task whose weight is its
// execution time in time units; each directed edge (u, v) carries the
// communication time required between the end of task u and the start of
// task v when they run on distinct processors.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/matrix.hpp"
#include "graph/types.hpp"

namespace mimdmap {

/// One directed, weighted edge of a TaskGraph.
struct TaskEdge {
  NodeId from = 0;
  NodeId to = 0;
  Weight weight = 0;

  friend bool operator==(const TaskEdge&, const TaskEdge&) = default;
};

/// Weighted task DAG; the paper's problem graph and (with intra-cluster
/// edges removed) the backbone of the clustered problem graph.
///
/// Invariants enforced:
///  * node weights are strictly positive (a task takes at least one unit),
///  * edge weights are strictly positive (an edge models a real message),
///  * no self loops, no duplicate edges,
///  * the graph is acyclic (checked lazily by `validate()` / topological
///    utilities, since edges may be added in any order).
class TaskGraph {
 public:
  TaskGraph() = default;

  /// Creates `n` tasks, all with weight 1.
  explicit TaskGraph(NodeId n);

  [[nodiscard]] NodeId node_count() const noexcept { return node_id(weights_.size()); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Appends a task with the given execution time; returns its id.
  NodeId add_node(Weight exec_time);

  /// Sets the execution time of an existing task.
  void set_node_weight(NodeId v, Weight exec_time);
  [[nodiscard]] Weight node_weight(NodeId v) const { return weights_.at(idx(v)); }
  [[nodiscard]] const std::vector<Weight>& node_weights() const noexcept { return weights_; }

  /// Adds edge (from, to) with the given communication time.
  /// Throws std::invalid_argument on self loops, duplicates, or w <= 0.
  void add_edge(NodeId from, NodeId to, Weight w);

  [[nodiscard]] bool has_edge(NodeId from, NodeId to) const;
  /// Communication weight of (from, to); 0 when the edge does not exist —
  /// mirroring the paper's prob_edge[i][j] matrix convention (Fig. 18).
  [[nodiscard]] Weight edge_weight(NodeId from, NodeId to) const;

  /// Successors of v with edge weights.
  [[nodiscard]] const std::vector<std::pair<NodeId, Weight>>& successors(NodeId v) const {
    return out_.at(idx(v));
  }
  /// Predecessors of v with edge weights. The paper repeatedly scans
  /// prob_edge columns to find predecessors (algorithm I of section 4.1);
  /// the adjacency list makes that O(indegree).
  [[nodiscard]] const std::vector<std::pair<NodeId, Weight>>& predecessors(NodeId v) const {
    return in_.at(idx(v));
  }

  /// All edges in insertion order.
  [[nodiscard]] const std::vector<TaskEdge>& edges() const noexcept { return edges_; }

  [[nodiscard]] NodeId in_degree(NodeId v) const { return node_id(in_.at(idx(v)).size()); }
  [[nodiscard]] NodeId out_degree(NodeId v) const { return node_id(out_.at(idx(v)).size()); }
  /// Undirected degree (used by the paper's Fig. 7/8 discussion).
  [[nodiscard]] NodeId degree(NodeId v) const { return in_degree(v) + out_degree(v); }

  /// Dense np x np weight matrix — the paper's prob_edge[np][np] (Fig. 18).
  [[nodiscard]] Matrix<Weight> edge_matrix() const;

  /// Sum of all node weights (serial execution time; a trivial upper bound
  /// interface used by tests).
  [[nodiscard]] Weight total_work() const;

  /// Sum of all edge weights.
  [[nodiscard]] Weight total_traffic() const;

  /// Throws std::invalid_argument if the graph contains a cycle.
  void validate() const;

  friend bool operator==(const TaskGraph&, const TaskGraph&) = default;

 private:
  void check_node(NodeId v) const;

  std::vector<Weight> weights_;
  std::vector<std::vector<std::pair<NodeId, Weight>>> out_;
  std::vector<std::vector<std::pair<NodeId, Weight>>> in_;
  std::vector<TaskEdge> edges_;
};

}  // namespace mimdmap
