#include "graph/system_graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace mimdmap {

SystemGraph::SystemGraph(NodeId n, std::string name) : name_(std::move(name)) {
  if (n < 0) throw std::invalid_argument("SystemGraph: negative node count");
  adj_.resize(idx(n));
}

void SystemGraph::add_link(NodeId a, NodeId b, Weight w) {
  check_node(a);
  check_node(b);
  if (a == b) throw std::invalid_argument("SystemGraph: self loop");
  if (w <= 0) throw std::invalid_argument("SystemGraph: link weight must be positive");
  if (has_link(a, b)) {
    throw std::invalid_argument("SystemGraph: duplicate link (" + std::to_string(a) + "," +
                                std::to_string(b) + ")");
  }
  adj_[idx(a)].emplace_back(b, w);
  adj_[idx(b)].emplace_back(a, w);
  links_.push_back(SystemLink{std::min(a, b), std::max(a, b), w});
}

bool SystemGraph::has_link(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  for (const auto& [nb, w] : adj_[idx(a)]) {
    if (nb == b) return true;
  }
  return false;
}

Weight SystemGraph::link_weight(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  for (const auto& [nb, w] : adj_[idx(a)]) {
    if (nb == b) return w;
  }
  return 0;
}

std::vector<NodeId> SystemGraph::degrees() const {
  std::vector<NodeId> d(idx(node_count()));
  for (NodeId v = 0; v < node_count(); ++v) d[idx(v)] = degree(v);
  return d;
}

NodeId SystemGraph::max_degree() const {
  NodeId best = 0;
  for (NodeId v = 0; v < node_count(); ++v) best = std::max(best, degree(v));
  return best;
}

bool SystemGraph::is_connected() const {
  const NodeId n = node_count();
  if (n == 0) return true;
  std::vector<char> seen(idx(n), 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  NodeId reached = 1;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const auto& [nb, w] : adj_[idx(v)]) {
      if (!seen[idx(nb)]) {
        seen[idx(nb)] = 1;
        ++reached;
        q.push(nb);
      }
    }
  }
  return reached == n;
}

Matrix<Weight> SystemGraph::adjacency_matrix() const {
  auto m = Matrix<Weight>::square(idx(node_count()), 0);
  for (const SystemLink& l : links_) {
    m(idx(l.a), idx(l.b)) = l.weight;
    m(idx(l.b), idx(l.a)) = l.weight;
  }
  return m;
}

SystemGraph SystemGraph::closure() const {
  SystemGraph c(node_count(), name_ + "-closure");
  for (NodeId a = 0; a < node_count(); ++a) {
    for (NodeId b = a + 1; b < node_count(); ++b) c.add_link(a, b, 1);
  }
  return c;
}

void SystemGraph::validate() const {
  if (!is_connected()) throw std::invalid_argument("SystemGraph: not connected");
}

void SystemGraph::check_node(NodeId v) const {
  if (v < 0 || idx(v) >= adj_.size()) {
    throw std::out_of_range("SystemGraph: node id " + std::to_string(v) + " out of range");
  }
}

}  // namespace mimdmap
