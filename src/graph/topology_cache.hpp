// TopologyCache: shared, immutable per-topology evaluation tables.
//
// Every MappingInstance needs the all-pairs distance matrix of its system
// graph, and every contention-mode EvalEngine needs a RoutingTable plus the
// pre-flattened per-route link sequences. A batch (MapService manifest,
// experiment suite) typically reuses a handful of machines across many
// jobs, so rebuilding those tables per instance is pure waste. This module
// factors them into one immutable bundle (TopologyTables) and a
// process-safe cache (TopologyCache) keyed by the topology's structural
// fingerprint, so jobs sharing a system graph share one build:
//
//  * MappingInstance accepts a shared TopologyTables and skips its own
//    distance-matrix construction;
//  * EvalEngine::ensure_routing adopts the shared routing + route CSR
//    instead of rebuilding them (EvalEngine::adopt_topology);
//  * MapService owns a TopologyCache and threads it through run_map_job,
//    reporting per-job hits in MapJobResult::topology_cache_hit.
//
// Tables are immutable after construction and shared by const pointer, so
// any number of concurrent engines may read them. Determinism: the tables
// are a pure function of (system graph structure, distance model) — a
// cache hit hands back byte-identical data to what a fresh build would
// produce, so mapping results are unchanged by caching (enforced by
// tests/map_service_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/matrix.hpp"
#include "graph/routing.hpp"
#include "graph/system_graph.hpp"
#include "graph/types.hpp"

namespace mimdmap {

/// How inter-processor distances are measured.
enum class DistanceModel {
  /// Hop counts (the paper's model: a k-hop message costs k * weight).
  kHops,
  /// Weighted shortest paths over the link weights (extension for
  /// heterogeneous interconnects; reduces to kHops on unit links).
  kWeightedLinks,
};

/// Everything evaluation derives from a system graph alone: the all-pairs
/// distance matrix (the paper's shortest[ns][ns]), the deterministic
/// routing table, and every route pre-flattened to its link-index sequence
/// (CSR over ordered processor pairs, the layout EvalEngine's kernels
/// consume). Immutable after construction.
struct TopologyTables {
  TopologyTables(const SystemGraph& system, DistanceModel model);

  DistanceModel model = DistanceModel::kHops;
  NodeId ns = 0;
  Matrix<Weight> hops;
  RoutingTable routing;
  std::vector<std::uint32_t> route_offset;  // CSR over (from * ns + to)
  std::vector<std::int32_t> route_links;    // link indices along each route
};

/// Structural fingerprint of (system graph, distance model): node count
/// plus the link list with weights in insertion order. Two graphs with the
/// same fingerprint produce byte-identical TopologyTables.
[[nodiscard]] std::string topology_fingerprint(const SystemGraph& system, DistanceModel model);

/// Flattens every fixed route of `routing` into the link-index CSR the
/// evaluation kernels consume (offsets over ordered processor pairs,
/// from * ns + to). The ONE definition of this layout: TopologyTables and
/// EvalEngine's private build both call it, so cache adopters and
/// self-builders issue claims along byte-identical hop sequences by
/// construction.
void flatten_routes(const RoutingTable& routing, std::vector<std::uint32_t>& route_offset,
                    std::vector<std::int32_t>& route_links);

/// Thread-safe build-once cache of TopologyTables keyed by
/// topology_fingerprint. Entries live for the cache's lifetime (a batch
/// reuses a handful of machines, so the working set is tiny).
class TopologyCache {
 public:
  /// Returns the shared tables for (system, model), building them on first
  /// use. `hit`, when given, reports whether the tables already existed.
  [[nodiscard]] std::shared_ptr<const TopologyTables> acquire(const SystemGraph& system,
                                                              DistanceModel model,
                                                              bool* hit = nullptr);

  [[nodiscard]] std::int64_t hits() const;
  [[nodiscard]] std::int64_t misses() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const TopologyTables>> entries_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace mimdmap
