#include "graph/topological.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace mimdmap {

std::optional<std::vector<NodeId>> topological_order(const TaskGraph& g) {
  const NodeId n = g.node_count();
  std::vector<NodeId> indeg(idx(n), 0);
  for (NodeId v = 0; v < n; ++v) indeg[idx(v)] = g.in_degree(v);

  // Min-heap on node id keeps the order deterministic across platforms.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[idx(v)] == 0) ready.push(v);
  }

  std::vector<NodeId> order;
  order.reserve(idx(n));
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (const auto& [succ, w] : g.successors(v)) {
      if (--indeg[idx(succ)] == 0) ready.push(succ);
    }
  }
  if (order.size() != idx(n)) return std::nullopt;
  return order;
}

bool is_dag(const TaskGraph& g) { return topological_order(g).has_value(); }

std::vector<NodeId> topological_levels(const TaskGraph& g) {
  const auto order = topological_order(g);
  if (!order) throw std::invalid_argument("topological_levels: graph has a cycle");
  std::vector<NodeId> level(idx(g.node_count()), 0);
  for (const NodeId v : *order) {
    for (const auto& [pred, w] : g.predecessors(v)) {
      level[idx(v)] = std::max(level[idx(v)], level[idx(pred)] + 1);
    }
  }
  return level;
}

Weight critical_path_length(const TaskGraph& g) {
  const auto order = topological_order(g);
  if (!order) throw std::invalid_argument("critical_path_length: graph has a cycle");
  Weight best = 0;
  std::vector<Weight> finish(idx(g.node_count()), 0);
  for (const NodeId v : *order) {
    Weight start = 0;
    for (const auto& [pred, w] : g.predecessors(v)) {
      start = std::max(start, finish[idx(pred)] + w);
    }
    finish[idx(v)] = start + g.node_weight(v);
    best = std::max(best, finish[idx(v)]);
  }
  return best;
}

}  // namespace mimdmap
