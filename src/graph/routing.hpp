// Deterministic shortest-path routing over a system graph.
//
// The paper's cost model only needs hop *counts* (section 4.3.4); the
// contention-aware evaluation extension additionally needs the concrete
// links a message crosses. RoutingTable fixes one shortest route per
// ordered processor pair — BFS trees with smallest-id tie-breaking, so
// routes are platform-independent and stable across runs (the analogue of
// deterministic e-cube/XY routing on regular topologies).
#pragma once

#include <vector>

#include "graph/matrix.hpp"
#include "graph/system_graph.hpp"
#include "graph/types.hpp"

namespace mimdmap {

class RoutingTable {
 public:
  /// Precomputes BFS parents from every source. Throws
  /// std::invalid_argument if the graph is disconnected.
  explicit RoutingTable(const SystemGraph& g);

  [[nodiscard]] NodeId node_count() const noexcept { return n_; }

  /// Hop distance (same values as all_pairs_hops).
  [[nodiscard]] Weight hops(NodeId from, NodeId to) const {
    return dist_(idx(from), idx(to));
  }

  /// The fixed route from -> to as a node sequence including both
  /// endpoints; a single-element sequence when from == to.
  [[nodiscard]] std::vector<NodeId> route(NodeId from, NodeId to) const;

  /// Index of the undirected link {a, b} in SystemGraph::links();
  /// -1 when the processors are not adjacent.
  [[nodiscard]] std::int32_t link_index(NodeId a, NodeId b) const {
    return link_index_(idx(a), idx(b));
  }

  /// Number of links (valid link indices are [0, link_count)).
  [[nodiscard]] std::size_t link_count() const noexcept { return link_count_; }

 private:
  NodeId n_ = 0;
  std::size_t link_count_ = 0;
  Matrix<Weight> dist_;
  // parent_(src, v): predecessor of v on the fixed shortest path from src.
  Matrix<NodeId> parent_;
  Matrix<std::int32_t> link_index_;
};

}  // namespace mimdmap
