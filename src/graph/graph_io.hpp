// Serialization of task and system graphs.
//
// Two formats:
//  * DOT (Graphviz) export for visual inspection of problem graphs, system
//    graphs, and assignments;
//  * a line-based text format with full round-trip support, so experiment
//    inputs can be checked into a repository and replayed:
//
//      taskgraph <np>
//      node <id> <weight>          (np lines)
//      edge <from> <to> <weight>   (one per edge)
//
//      systemgraph <ns> <name>
//      link <a> <b> <weight>       (one per link)
#pragma once

#include <iosfwd>
#include <string>

#include "graph/system_graph.hpp"
#include "graph/task_graph.hpp"

namespace mimdmap {

/// DOT digraph of a task DAG; node labels are "id (weight)", edge labels
/// are communication weights.
[[nodiscard]] std::string to_dot(const TaskGraph& g);

/// DOT graph of a system topology.
[[nodiscard]] std::string to_dot(const SystemGraph& g);

void write_text(std::ostream& os, const TaskGraph& g);
void write_text(std::ostream& os, const SystemGraph& g);

[[nodiscard]] std::string to_text(const TaskGraph& g);
[[nodiscard]] std::string to_text(const SystemGraph& g);

/// Parses the text format; throws std::invalid_argument with a line number
/// on malformed input.
[[nodiscard]] TaskGraph read_task_graph(std::istream& is);
[[nodiscard]] SystemGraph read_system_graph(std::istream& is);

[[nodiscard]] TaskGraph task_graph_from_text(const std::string& text);
[[nodiscard]] SystemGraph system_graph_from_text(const std::string& text);

}  // namespace mimdmap
