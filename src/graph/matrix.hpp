// Dense row-major matrix.
//
// The paper's internal representation (section 3) is matrix based:
// prob_edge[np][np], clus_edge[np][np], i_edge[np][np], comm[np][np],
// sys_edge[ns][ns], shortest[ns][ns], c_abs_edge[na][na+1]. Matrix<T> is the
// common substrate for all of them.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace mimdmap {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, every element initialised to `init`.
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  /// Square n x n matrix.
  static Matrix square(std::size_t n, T init = T{}) { return Matrix(n, n, init); }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Unchecked-in-release element access (asserted in debug builds).
  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Checked element access.
  [[nodiscard]] T& at(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& at(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of one row.
  [[nodiscard]] std::span<T> row(std::size_t r) {
    check(r, 0);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    check(r, 0);
    return {data_.data() + r * cols_, cols_};
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || (cols_ > 0 && c >= cols_)) {
      throw std::out_of_range("Matrix index out of range");
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace mimdmap
