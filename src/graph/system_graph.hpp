// SystemGraph: the paper's *system graph* Gs = {Vs, Es} (section 2.1,
// Fig. 5-a) — the interconnection topology of a parallel machine with
// homogeneous processing elements.
//
// Links are undirected. By default every link has unit cost (the paper's
// model: a message over k hops costs k times its weight, section 4.3.4);
// per-link weights are supported as an extension for heterogeneous
// interconnects (used with the Dijkstra/Floyd-Warshall path routines).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/matrix.hpp"
#include "graph/types.hpp"

namespace mimdmap {

/// One undirected, weighted link of a SystemGraph (stored once with
/// from < to).
struct SystemLink {
  NodeId a = 0;
  NodeId b = 0;
  Weight weight = 1;

  friend bool operator==(const SystemLink&, const SystemLink&) = default;
};

class SystemGraph {
 public:
  SystemGraph() = default;

  /// Creates `n` processors with no links.
  explicit SystemGraph(NodeId n, std::string name = "custom");

  [[nodiscard]] NodeId node_count() const noexcept { return node_id(adj_.size()); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }

  /// Human-readable topology name ("hypercube-3", "mesh-4x4", ...). Set by
  /// the topology factory; purely informational.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds an undirected link {a, b} with the given cost (default 1 hop).
  /// Throws std::invalid_argument on self loops, duplicates, or w <= 0.
  void add_link(NodeId a, NodeId b, Weight w = 1);

  [[nodiscard]] bool has_link(NodeId a, NodeId b) const;
  /// Link cost; 0 when the link does not exist (paper's sys_edge matrix
  /// convention, Fig. 21-a).
  [[nodiscard]] Weight link_weight(NodeId a, NodeId b) const;

  /// Neighbours of v with link weights.
  [[nodiscard]] const std::vector<std::pair<NodeId, Weight>>& neighbors(NodeId v) const {
    return adj_.at(idx(v));
  }

  /// All links (a < b) in insertion order.
  [[nodiscard]] const std::vector<SystemLink>& links() const noexcept { return links_; }

  /// Node degree — the paper's deg[ns] matrix (Fig. 21-c).
  [[nodiscard]] NodeId degree(NodeId v) const { return node_id(adj_.at(idx(v)).size()); }
  [[nodiscard]] std::vector<NodeId> degrees() const;
  [[nodiscard]] NodeId max_degree() const;

  /// True iff every processor can reach every other.
  [[nodiscard]] bool is_connected() const;

  /// Dense ns x ns adjacency matrix — the paper's sys_edge[ns][ns].
  [[nodiscard]] Matrix<Weight> adjacency_matrix() const;

  /// The fully connected *closure* of this graph (paper Fig. 5-b): same
  /// nodes, a unit link between every pair. Used to define the ideal graph.
  [[nodiscard]] SystemGraph closure() const;

  /// Throws std::invalid_argument unless the graph is connected — every
  /// mapping routine requires connectivity.
  void validate() const;

  friend bool operator==(const SystemGraph&, const SystemGraph&) = default;

 private:
  void check_node(NodeId v) const;

  std::string name_ = "custom";
  std::vector<std::vector<std::pair<NodeId, Weight>>> adj_;
  std::vector<SystemLink> links_;
};

}  // namespace mimdmap
