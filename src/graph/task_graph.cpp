#include "graph/task_graph.hpp"

#include <stdexcept>
#include <string>

#include "graph/topological.hpp"

namespace mimdmap {

TaskGraph::TaskGraph(NodeId n) {
  if (n < 0) throw std::invalid_argument("TaskGraph: negative node count");
  weights_.assign(idx(n), Weight{1});
  out_.resize(idx(n));
  in_.resize(idx(n));
}

NodeId TaskGraph::add_node(Weight exec_time) {
  if (exec_time <= 0) throw std::invalid_argument("TaskGraph: task weight must be positive");
  weights_.push_back(exec_time);
  out_.emplace_back();
  in_.emplace_back();
  return node_id(weights_.size() - 1);
}

void TaskGraph::set_node_weight(NodeId v, Weight exec_time) {
  check_node(v);
  if (exec_time <= 0) throw std::invalid_argument("TaskGraph: task weight must be positive");
  weights_[idx(v)] = exec_time;
}

void TaskGraph::add_edge(NodeId from, NodeId to, Weight w) {
  check_node(from);
  check_node(to);
  if (from == to) throw std::invalid_argument("TaskGraph: self loop");
  if (w <= 0) throw std::invalid_argument("TaskGraph: edge weight must be positive");
  if (has_edge(from, to)) {
    throw std::invalid_argument("TaskGraph: duplicate edge (" + std::to_string(from) + "," +
                                std::to_string(to) + ")");
  }
  out_[idx(from)].emplace_back(to, w);
  in_[idx(to)].emplace_back(from, w);
  edges_.push_back(TaskEdge{from, to, w});
}

bool TaskGraph::has_edge(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  for (const auto& [succ, w] : out_[idx(from)]) {
    if (succ == to) return true;
  }
  return false;
}

Weight TaskGraph::edge_weight(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  for (const auto& [succ, w] : out_[idx(from)]) {
    if (succ == to) return w;
  }
  return 0;
}

Matrix<Weight> TaskGraph::edge_matrix() const {
  auto m = Matrix<Weight>::square(idx(node_count()), 0);
  for (const TaskEdge& e : edges_) m(idx(e.from), idx(e.to)) = e.weight;
  return m;
}

Weight TaskGraph::total_work() const {
  Weight sum = 0;
  for (Weight w : weights_) sum += w;
  return sum;
}

Weight TaskGraph::total_traffic() const {
  Weight sum = 0;
  for (const TaskEdge& e : edges_) sum += e.weight;
  return sum;
}

void TaskGraph::validate() const {
  if (!is_dag(*this)) throw std::invalid_argument("TaskGraph: cycle detected");
}

void TaskGraph::check_node(NodeId v) const {
  if (v < 0 || idx(v) >= weights_.size()) {
    throw std::out_of_range("TaskGraph: node id " + std::to_string(v) + " out of range");
  }
}

}  // namespace mimdmap
