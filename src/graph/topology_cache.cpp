#include "graph/topology_cache.hpp"

#include "graph/shortest_paths.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
// Dependency-free chaos-testing crosscut (service/fault_injection.hpp):
// the cache fill is a shared-state failure point MapService must isolate,
// so the harness plants its allocation-failure hook here.
#include "service/fault_injection.hpp"

namespace mimdmap {

void flatten_routes(const RoutingTable& routing, std::vector<std::uint32_t>& route_offset,
                    std::vector<std::int32_t>& route_links) {
  const NodeId ns = routing.node_count();
  route_offset.assign(idx(ns) * idx(ns) + 1, 0);
  route_links.clear();
  for (NodeId a = 0; a < ns; ++a) {
    for (NodeId b = 0; b < ns; ++b) {
      route_offset[idx(a) * idx(ns) + idx(b)] = static_cast<std::uint32_t>(route_links.size());
      const std::vector<NodeId> path = routing.route(a, b);
      for (std::size_t k = 0; k + 1 < path.size(); ++k) {
        route_links.push_back(routing.link_index(path[k], path[k + 1]));
      }
    }
  }
  route_offset.back() = static_cast<std::uint32_t>(route_links.size());
}

TopologyTables::TopologyTables(const SystemGraph& system, DistanceModel distance_model)
    : model(distance_model),
      ns(system.node_count()),
      hops(distance_model == DistanceModel::kHops ? all_pairs_hops(system)
                                                  : floyd_warshall(system)),
      routing(system) {
  flatten_routes(routing, route_offset, route_links);
}

std::string topology_fingerprint(const SystemGraph& system, DistanceModel model) {
  std::string key;
  key.reserve(16 + system.link_count() * 12);
  key += model == DistanceModel::kHops ? 'h' : 'w';
  key += std::to_string(system.node_count());
  for (const SystemLink& link : system.links()) {
    key += ';';
    key += std::to_string(link.a);
    key += ',';
    key += std::to_string(link.b);
    key += ',';
    key += std::to_string(link.weight);
  }
  return key;
}

std::shared_ptr<const TopologyTables> TopologyCache::acquire(const SystemGraph& system,
                                                             DistanceModel model, bool* hit) {
  static obs::Counter& hit_counter =
      obs::registry().counter("mimdmap_topo_cache_hits_total");
  static obs::Counter& miss_counter =
      obs::registry().counter("mimdmap_topo_cache_misses_total");
  const obs::Span span("topo_acquire", "cache", "nodes",
                       static_cast<std::int64_t>(system.node_count()));
  const std::string key = topology_fingerprint(system, model);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    hit_counter.inc();
    if (hit != nullptr) *hit = true;
    return it->second;
  }
  ++misses_;
  miss_counter.inc();
  if (hit != nullptr) *hit = false;
  // Built under the lock: concurrent first requests for one topology would
  // otherwise race to duplicate the most expensive part of the job, and
  // the tables are small enough that serializing the build is the lesser
  // evil.
  fault_point_topo_alloc();
  auto tables = std::make_shared<const TopologyTables>(system, model);
  entries_.emplace(key, tables);
  return tables;
}

std::int64_t TopologyCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t TopologyCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t TopologyCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace mimdmap
