#include "graph/routing.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace mimdmap {

RoutingTable::RoutingTable(const SystemGraph& g)
    : n_(g.node_count()),
      link_count_(g.link_count()),
      dist_(idx(n_), idx(n_), kUnreachable),
      parent_(idx(n_), idx(n_), NodeId{-1}),
      link_index_(idx(n_), idx(n_), std::int32_t{-1}) {
  for (std::size_t i = 0; i < g.links().size(); ++i) {
    const SystemLink& l = g.links()[i];
    link_index_(idx(l.a), idx(l.b)) = static_cast<std::int32_t>(i);
    link_index_(idx(l.b), idx(l.a)) = static_cast<std::int32_t>(i);
  }

  // Sorted adjacency gives smallest-id tie-breaking and thus one canonical
  // BFS tree per source.
  std::vector<std::vector<NodeId>> sorted_adj(idx(n_));
  for (NodeId v = 0; v < n_; ++v) {
    for (const auto& [nb, w] : g.neighbors(v)) sorted_adj[idx(v)].push_back(nb);
    std::sort(sorted_adj[idx(v)].begin(), sorted_adj[idx(v)].end());
  }

  for (NodeId src = 0; src < n_; ++src) {
    std::queue<NodeId> q;
    dist_(idx(src), idx(src)) = 0;
    q.push(src);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (const NodeId nb : sorted_adj[idx(v)]) {
        if (dist_(idx(src), idx(nb)) == kUnreachable) {
          dist_(idx(src), idx(nb)) = dist_(idx(src), idx(v)) + 1;
          parent_(idx(src), idx(nb)) = v;
          q.push(nb);
        }
      }
    }
    for (NodeId v = 0; v < n_; ++v) {
      if (dist_(idx(src), idx(v)) == kUnreachable) {
        throw std::invalid_argument("RoutingTable: system graph is disconnected");
      }
    }
  }
}

std::vector<NodeId> RoutingTable::route(NodeId from, NodeId to) const {
  if (from < 0 || from >= n_ || to < 0 || to >= n_) {
    throw std::out_of_range("RoutingTable::route: node out of range");
  }
  std::vector<NodeId> nodes;
  for (NodeId v = to; v != from; v = parent_(idx(from), idx(v))) nodes.push_back(v);
  nodes.push_back(from);
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace mimdmap
