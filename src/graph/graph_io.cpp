#include "graph/graph_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mimdmap {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("graph_io: line " + std::to_string(line) + ": " + what);
}

/// Reads one significant (non-empty, non-comment) line; returns false on EOF.
bool next_line(std::istream& is, std::string& out, std::size_t& line_no) {
  while (std::getline(is, out)) {
    ++line_no;
    const auto first = out.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (out[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

std::string to_dot(const TaskGraph& g) {
  std::ostringstream os;
  os << "digraph taskgraph {\n  rankdir=TB;\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "  t" << v << " [label=\"" << v << " (" << g.node_weight(v) << ")\"];\n";
  }
  for (const TaskEdge& e : g.edges()) {
    os << "  t" << e.from << " -> t" << e.to << " [label=\"" << e.weight << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const SystemGraph& g) {
  std::ostringstream os;
  os << "graph \"" << g.name() << "\" {\n  node [shape=box];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "  p" << v << " [label=\"P" << v << "\"];\n";
  }
  for (const SystemLink& l : g.links()) {
    os << "  p" << l.a << " -- p" << l.b;
    if (l.weight != 1) os << " [label=\"" << l.weight << "\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

void write_text(std::ostream& os, const TaskGraph& g) {
  os << "taskgraph " << g.node_count() << "\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "node " << v << " " << g.node_weight(v) << "\n";
  }
  for (const TaskEdge& e : g.edges()) {
    os << "edge " << e.from << " " << e.to << " " << e.weight << "\n";
  }
}

void write_text(std::ostream& os, const SystemGraph& g) {
  os << "systemgraph " << g.node_count() << " " << g.name() << "\n";
  for (const SystemLink& l : g.links()) {
    os << "link " << l.a << " " << l.b << " " << l.weight << "\n";
  }
}

std::string to_text(const TaskGraph& g) {
  std::ostringstream os;
  write_text(os, g);
  return os.str();
}

std::string to_text(const SystemGraph& g) {
  std::ostringstream os;
  write_text(os, g);
  return os.str();
}

TaskGraph read_task_graph(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!next_line(is, line, line_no)) fail(line_no, "empty input");
  std::istringstream header(line);
  std::string tag;
  NodeId n = 0;
  if (!(header >> tag >> n) || tag != "taskgraph" || n < 0) {
    fail(line_no, "expected 'taskgraph <np>'");
  }
  TaskGraph g(n);
  NodeId nodes_seen = 0;
  while (nodes_seen < n) {
    if (!next_line(is, line, line_no)) fail(line_no, "unexpected EOF in node list");
    std::istringstream ls(line);
    NodeId id = 0;
    Weight w = 0;
    if (!(ls >> tag >> id >> w) || tag != "node") fail(line_no, "expected 'node <id> <weight>'");
    if (id != nodes_seen) fail(line_no, "node ids must be consecutive from 0");
    g.set_node_weight(id, w);
    ++nodes_seen;
  }
  while (next_line(is, line, line_no)) {
    std::istringstream ls(line);
    NodeId from = 0;
    NodeId to = 0;
    Weight w = 0;
    if (!(ls >> tag >> from >> to >> w) || tag != "edge") {
      fail(line_no, "expected 'edge <from> <to> <weight>'");
    }
    g.add_edge(from, to, w);
  }
  g.validate();
  return g;
}

SystemGraph read_system_graph(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!next_line(is, line, line_no)) fail(line_no, "empty input");
  std::istringstream header(line);
  std::string tag;
  std::string name;
  NodeId n = 0;
  if (!(header >> tag >> n) || tag != "systemgraph" || n < 0) {
    fail(line_no, "expected 'systemgraph <ns> [name]'");
  }
  if (!(header >> name)) name = "custom";
  SystemGraph g(n, name);
  while (next_line(is, line, line_no)) {
    std::istringstream ls(line);
    NodeId a = 0;
    NodeId b = 0;
    Weight w = 0;
    if (!(ls >> tag >> a >> b >> w) || tag != "link") {
      fail(line_no, "expected 'link <a> <b> <weight>'");
    }
    g.add_link(a, b, w);
  }
  return g;
}

TaskGraph task_graph_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_task_graph(is);
}

SystemGraph system_graph_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_system_graph(is);
}

}  // namespace mimdmap
