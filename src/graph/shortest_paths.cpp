#include "graph/shortest_paths.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace mimdmap {

std::vector<Weight> bfs_hops(const SystemGraph& g, NodeId src) {
  const NodeId n = g.node_count();
  if (src < 0 || src >= n) throw std::out_of_range("bfs_hops: source out of range");
  std::vector<Weight> dist(idx(n), kUnreachable);
  std::queue<NodeId> q;
  dist[idx(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const auto& [nb, w] : g.neighbors(v)) {
      if (dist[idx(nb)] == kUnreachable) {
        dist[idx(nb)] = dist[idx(v)] + 1;
        q.push(nb);
      }
    }
  }
  return dist;
}

Matrix<Weight> all_pairs_hops(const SystemGraph& g) {
  const NodeId n = g.node_count();
  auto m = Matrix<Weight>::square(idx(n), 0);
  for (NodeId s = 0; s < n; ++s) {
    const auto dist = bfs_hops(g, s);
    for (NodeId t = 0; t < n; ++t) {
      if (dist[idx(t)] == kUnreachable) {
        throw std::invalid_argument("all_pairs_hops: system graph is disconnected");
      }
      m(idx(s), idx(t)) = dist[idx(t)];
    }
  }
  return m;
}

std::vector<Weight> dijkstra(const SystemGraph& g, NodeId src) {
  const NodeId n = g.node_count();
  if (src < 0 || src >= n) throw std::out_of_range("dijkstra: source out of range");
  std::vector<Weight> dist(idx(n), kUnreachable);
  using Item = std::pair<Weight, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[idx(src)] = 0;
  heap.emplace(0, src);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[idx(v)]) continue;
    for (const auto& [nb, w] : g.neighbors(v)) {
      const Weight nd = d + w;
      if (nd < dist[idx(nb)]) {
        dist[idx(nb)] = nd;
        heap.emplace(nd, nb);
      }
    }
  }
  return dist;
}

Matrix<Weight> floyd_warshall(const SystemGraph& g) {
  const std::size_t n = idx(g.node_count());
  Matrix<Weight> d(n, n, kUnreachable);
  for (std::size_t v = 0; v < n; ++v) d(v, v) = 0;
  for (const SystemLink& l : g.links()) {
    d(idx(l.a), idx(l.b)) = std::min(d(idx(l.a), idx(l.b)), l.weight);
    d(idx(l.b), idx(l.a)) = std::min(d(idx(l.b), idx(l.a)), l.weight);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (d(i, k) == kUnreachable) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (d(k, j) == kUnreachable) continue;
        d(i, j) = std::min(d(i, j), d(i, k) + d(k, j));
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (d(i, j) == kUnreachable) {
        throw std::invalid_argument("floyd_warshall: system graph is disconnected");
      }
    }
  }
  return d;
}

Weight diameter(const SystemGraph& g) {
  const auto m = all_pairs_hops(g);
  Weight best = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) best = std::max(best, m(i, j));
  }
  return best;
}

Weight mean_distance_milli(const SystemGraph& g) {
  const auto m = all_pairs_hops(g);
  const std::size_t n = m.rows();
  if (n < 2) return 0;
  Weight sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) sum += m(i, j);
    }
  }
  return sum * 1000 / static_cast<Weight>(n * (n - 1));
}

}  // namespace mimdmap
