// Random problem-graph generators.
//
// The paper's experiments (section 5) map "random problem graphs" with
// 30-300 nodes onto system graphs with 4-40 nodes; node and edge weights are
// produced randomly. The paper does not publish its generator, so we provide
// two standard ones:
//
//  * LayeredDagParams — tasks are arranged into layers; edges only go from
//    earlier to later layers, preferring adjacent layers. This produces the
//    "parallel program"-shaped DAGs (fan-out / fan-in phases) that static
//    task-scheduling papers of the era evaluate on.
//  * ErdosRenyiDagParams — each forward pair (i < j in a random topological
//    order) is an edge with probability p; the classic G(n, p) DAG.
//
// Both guarantee the stated node count, strictly positive weights, and
// acyclicity by construction.
#pragma once

#include "graph/task_graph.hpp"
#include "workload/rng.hpp"

namespace mimdmap {

struct LayeredDagParams {
  NodeId num_tasks = 60;
  /// Number of layers; clamped to [1, num_tasks].
  NodeId num_layers = 8;
  /// Average number of outgoing edges attached to each non-sink task.
  double avg_out_degree = 2.0;
  /// Probability that an edge skips beyond the next layer.
  double skip_probability = 0.15;
  WeightRange node_weight = {1, 10};
  WeightRange edge_weight = {1, 10};
  /// When true, every non-source task is guaranteed at least one
  /// predecessor, so the DAG has no spurious isolated components.
  bool connect_orphans = true;
};

/// Generates a layered random DAG. Deterministic in (params, seed).
[[nodiscard]] TaskGraph make_layered_dag(const LayeredDagParams& params, std::uint64_t seed);

struct ErdosRenyiDagParams {
  NodeId num_tasks = 60;
  /// Probability of each forward edge.
  double edge_probability = 0.05;
  WeightRange node_weight = {1, 10};
  WeightRange edge_weight = {1, 10};
};

/// Generates a G(n, p) DAG over a random topological order.
[[nodiscard]] TaskGraph make_erdos_renyi_dag(const ErdosRenyiDagParams& params,
                                             std::uint64_t seed);

struct SeriesParallelParams {
  /// Recursion depth: depth 0 is a single task; each level either chains
  /// two sub-graphs (series) or joins 2..max_branches of them between a
  /// fork and a join node (parallel).
  NodeId depth = 5;
  /// Probability of a parallel composition at each level.
  double parallel_probability = 0.5;
  NodeId max_branches = 3;
  WeightRange node_weight = {1, 10};
  WeightRange edge_weight = {1, 10};
};

/// Random series-parallel DAG (single source, single sink) — the structured
/// control-flow shape of divide-and-conquer and task-parallel programs.
[[nodiscard]] TaskGraph make_series_parallel(const SeriesParallelParams& params,
                                             std::uint64_t seed);

}  // namespace mimdmap
