#include "workload/random_dag.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace mimdmap {

TaskGraph make_layered_dag(const LayeredDagParams& params, std::uint64_t seed) {
  if (params.num_tasks <= 0) throw std::invalid_argument("make_layered_dag: num_tasks <= 0");
  if (params.avg_out_degree < 0) {
    throw std::invalid_argument("make_layered_dag: negative avg_out_degree");
  }
  Rng rng(seed);
  const NodeId n = params.num_tasks;
  const NodeId layers = std::clamp<NodeId>(params.num_layers, 1, n);

  TaskGraph g(n);
  for (NodeId v = 0; v < n; ++v) g.set_node_weight(v, params.node_weight.sample(rng));

  // Assign every task to a layer: one guaranteed task per layer, the rest
  // uniformly, then sort so ids ascend with layers (cosmetic but makes the
  // generated graphs easier to read in DOT dumps).
  std::vector<NodeId> layer_of(idx(n));
  for (NodeId v = 0; v < n; ++v) {
    layer_of[idx(v)] = (v < layers) ? v : static_cast<NodeId>(rng.uniform(0, layers - 1));
  }
  std::sort(layer_of.begin(), layer_of.end());

  // Buckets of task ids per layer.
  std::vector<std::vector<NodeId>> bucket(idx(layers));
  for (NodeId v = 0; v < n; ++v) bucket[idx(layer_of[idx(v)])].push_back(v);

  // Attach forward edges.
  for (NodeId v = 0; v < n; ++v) {
    const NodeId lv = layer_of[idx(v)];
    if (lv + 1 >= layers) continue;
    // Sample the out-degree around the requested average.
    const auto hi = static_cast<std::int64_t>(2.0 * params.avg_out_degree + 0.5);
    const auto want = rng.uniform(0, std::max<std::int64_t>(hi, 0));
    for (std::int64_t k = 0; k < want; ++k) {
      NodeId target_layer = lv + 1;
      while (target_layer + 1 < layers && rng.bernoulli(params.skip_probability)) {
        ++target_layer;
      }
      const auto& candidates = bucket[idx(target_layer)];
      if (candidates.empty()) continue;
      const NodeId to =
          candidates[static_cast<std::size_t>(rng.uniform(
              0, static_cast<std::int64_t>(candidates.size()) - 1))];
      if (!g.has_edge(v, to)) g.add_edge(v, to, params.edge_weight.sample(rng));
    }
  }

  if (params.connect_orphans) {
    // Every non-layer-0 task gets at least one predecessor from the
    // previous layer, keeping the DAG free of isolated late tasks.
    for (NodeId v = 0; v < n; ++v) {
      const NodeId lv = layer_of[idx(v)];
      if (lv == 0 || g.in_degree(v) > 0) continue;
      const auto& candidates = bucket[idx(lv - 1)];
      const NodeId from =
          candidates[static_cast<std::size_t>(rng.uniform(
              0, static_cast<std::int64_t>(candidates.size()) - 1))];
      g.add_edge(from, v, params.edge_weight.sample(rng));
    }
  }

  g.validate();
  return g;
}

TaskGraph make_erdos_renyi_dag(const ErdosRenyiDagParams& params, std::uint64_t seed) {
  if (params.num_tasks <= 0) throw std::invalid_argument("make_erdos_renyi_dag: num_tasks <= 0");
  Rng rng(seed);
  const NodeId n = params.num_tasks;
  TaskGraph g(n);
  for (NodeId v = 0; v < n; ++v) g.set_node_weight(v, params.node_weight.sample(rng));

  // Random topological order; edges only from earlier to later position.
  const std::vector<NodeId> order = rng.permutation(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(params.edge_probability)) {
        g.add_edge(order[idx(i)], order[idx(j)], params.edge_weight.sample(rng));
      }
    }
  }
  g.validate();
  return g;
}

namespace {

/// Recursive series-parallel builder; returns {entry, exit} of the
/// sub-graph just created.
std::pair<NodeId, NodeId> build_sp(TaskGraph& g, const SeriesParallelParams& params,
                                   Rng& rng, NodeId depth) {
  if (depth <= 0) {
    const NodeId v = g.add_node(params.node_weight.sample(rng));
    return {v, v};
  }
  if (rng.bernoulli(params.parallel_probability)) {
    // Parallel: fork -> branches -> join.
    const NodeId fork = g.add_node(params.node_weight.sample(rng));
    const NodeId join = g.add_node(params.node_weight.sample(rng));
    const auto branches = rng.uniform(2, std::max<std::int64_t>(2, params.max_branches));
    for (std::int64_t k = 0; k < branches; ++k) {
      const auto [entry, exit] = build_sp(g, params, rng, depth - 1);
      g.add_edge(fork, entry, params.edge_weight.sample(rng));
      g.add_edge(exit, join, params.edge_weight.sample(rng));
    }
    return {fork, join};
  }
  // Series: first then second.
  const auto [e1, x1] = build_sp(g, params, rng, depth - 1);
  const auto [e2, x2] = build_sp(g, params, rng, depth - 1);
  g.add_edge(x1, e2, params.edge_weight.sample(rng));
  return {e1, x2};
}

}  // namespace

TaskGraph make_series_parallel(const SeriesParallelParams& params, std::uint64_t seed) {
  if (params.depth < 0) throw std::invalid_argument("make_series_parallel: negative depth");
  if (params.max_branches < 2) {
    throw std::invalid_argument("make_series_parallel: max_branches must be >= 2");
  }
  Rng rng(seed);
  TaskGraph g;
  build_sp(g, params, rng, params.depth);
  g.validate();
  return g;
}

}  // namespace mimdmap
