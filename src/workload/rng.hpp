// Deterministic random number generation.
//
// Every randomized component in mimdmap (problem-graph generators, random
// clustering, the refinement stage's random re-placements, the random
// mapping baseline) takes an explicit 64-bit seed so that experiments are
// bit-reproducible across runs and platforms — a requirement for
// regenerating the paper's tables. We implement xoshiro256** seeded through
// SplitMix64 rather than relying on std::mt19937 so the stream is identical
// on every standard library.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace mimdmap {

/// SplitMix64 step — used to expand a single seed into xoshiro state and to
/// derive independent child seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna) with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }
  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// Uniformly random permutation of 0..n-1.
  [[nodiscard]] std::vector<NodeId> permutation(NodeId n);

  /// Derives a statistically independent child generator; advancing the
  /// child never perturbs the parent stream.
  [[nodiscard]] Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Inclusive integer range for sampling node / edge weights. The paper's
/// generator produces "random" weights without stating bounds; the
/// experiment harness defaults to [1, 10] for both.
struct WeightRange {
  Weight min = 1;
  Weight max = 10;

  [[nodiscard]] Weight sample(Rng& rng) const { return rng.uniform(min, max); }
};

}  // namespace mimdmap
