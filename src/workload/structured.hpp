// Structured task-graph generators.
//
// The paper motivates static mapping with classic parallel workloads and
// cites Gaussian elimination DAG scheduling ([10], [11]) as a clustering
// source. These generators produce the standard benchmark DAG families used
// throughout the task-scheduling literature; the examples and benches use
// them as realistic problem graphs. Structure is deterministic; node/edge
// weights are sampled from the given ranges with the given seed (pass a
// range with min == max for fixed weights).
#pragma once

#include "graph/task_graph.hpp"
#include "workload/rng.hpp"

namespace mimdmap {

/// Weight configuration shared by all structured generators.
struct StructuredWeights {
  WeightRange node_weight = {1, 10};
  WeightRange edge_weight = {1, 10};
  std::uint64_t seed = 1;
};

/// source -> `width` parallel tasks -> sink, repeated `stages` times
/// (the sink of one stage is the source of the next).
[[nodiscard]] TaskGraph make_fork_join(NodeId width, NodeId stages, const StructuredWeights& w);

/// Rooted tree with edges pointing away from the root (fan-out /
/// broadcast). `depth` levels below the root, `branching` children each.
[[nodiscard]] TaskGraph make_out_tree(NodeId depth, NodeId branching, const StructuredWeights& w);

/// Reduction tree: edges point from the leaves toward the root.
[[nodiscard]] TaskGraph make_in_tree(NodeId depth, NodeId branching, const StructuredWeights& w);

/// rows x cols grid where cell (i, j) precedes (i+1, j) and (i, j+1) —
/// the wavefront / stencil dependence pattern.
[[nodiscard]] TaskGraph make_diamond(NodeId rows, NodeId cols, const StructuredWeights& w);

/// Linear chain of `length` tasks.
[[nodiscard]] TaskGraph make_pipeline(NodeId length, const StructuredWeights& w);

/// FFT butterfly on `points` inputs (must be a power of two): log2(points)
/// ranks; node r,i feeds nodes r+1,i and r+1,i^bit(r).
[[nodiscard]] TaskGraph make_fft(NodeId points, const StructuredWeights& w);

/// Gaussian-elimination DAG for an n x n matrix (paper ref [11]): task
/// T(k,j) updates column j at elimination step k (0 <= k < j < n). The
/// pivot task T(k,k+1) precedes every T(k+1,j), and T(k,j) precedes
/// T(k+1,j). Produces n*(n-1)/2 tasks.
[[nodiscard]] TaskGraph make_gaussian_elimination(NodeId n, const StructuredWeights& w);

/// Balanced binary divide-and-conquer: out-tree of `depth` splits followed
/// by the mirrored reduction.
[[nodiscard]] TaskGraph make_divide_and_conquer(NodeId depth, const StructuredWeights& w);

/// source -> mappers -> reducers (complete bipartite) -> sink.
[[nodiscard]] TaskGraph make_map_reduce(NodeId mappers, NodeId reducers,
                                        const StructuredWeights& w);

/// Tiled Cholesky factorization DAG on a tiles x tiles matrix: kernels
/// POTRF(k), TRSM(i,k), SYRK(i,k), GEMM(i,j,k) with the standard
/// dependence pattern. tiles >= 1; produces
/// tiles + tiles*(tiles-1) + C(tiles,3) tasks.
[[nodiscard]] TaskGraph make_cholesky(NodeId tiles, const StructuredWeights& w);

/// Tiled LU factorization DAG (no pivoting): GETRF(k), row/column TRSMs and
/// trailing GEMM updates. tiles >= 1.
[[nodiscard]] TaskGraph make_lu(NodeId tiles, const StructuredWeights& w);

}  // namespace mimdmap
