#include "workload/rng.hpp"

#include <algorithm>
#include <stdexcept>

namespace mimdmap {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo);
  if (span == ~0ULL) return static_cast<std::int64_t>(next_u64());
  // Rejection sampling for exact uniformity.
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = ~0ULL - (~0ULL % bound);
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % bound);
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::vector<NodeId> Rng::permutation(NodeId n) {
  std::vector<NodeId> perm(idx(n));
  for (NodeId i = 0; i < n; ++i) perm[idx(i)] = i;
  shuffle(perm);
  return perm;
}

Rng Rng::split() noexcept {
  std::uint64_t seed = next_u64();
  std::uint64_t sm = seed;
  return Rng(splitmix64(sm));
}

}  // namespace mimdmap
