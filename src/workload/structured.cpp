#include "workload/structured.hpp"

#include <stdexcept>
#include <vector>

namespace mimdmap {
namespace {

/// All generators share the same skeleton: build nodes/edges with weights
/// drawn from `w`, then validate.
class Builder {
 public:
  explicit Builder(const StructuredWeights& w) : w_(w), rng_(w.seed) {}

  NodeId node() { return g_.add_node(w_.node_weight.sample(rng_)); }
  void edge(NodeId from, NodeId to) { g_.add_edge(from, to, w_.edge_weight.sample(rng_)); }

  TaskGraph finish() {
    g_.validate();
    return std::move(g_);
  }

 private:
  StructuredWeights w_;
  Rng rng_;
  TaskGraph g_;
};

void require_positive(NodeId v, const char* what) {
  if (v <= 0) throw std::invalid_argument(std::string("structured generator: ") + what);
}

}  // namespace

TaskGraph make_fork_join(NodeId width, NodeId stages, const StructuredWeights& w) {
  require_positive(width, "width must be positive");
  require_positive(stages, "stages must be positive");
  Builder b(w);
  NodeId source = b.node();
  for (NodeId s = 0; s < stages; ++s) {
    std::vector<NodeId> mid(idx(width));
    for (NodeId i = 0; i < width; ++i) {
      mid[idx(i)] = b.node();
      b.edge(source, mid[idx(i)]);
    }
    const NodeId sink = b.node();
    for (NodeId i = 0; i < width; ++i) b.edge(mid[idx(i)], sink);
    source = sink;  // next stage forks from this join
  }
  return b.finish();
}

TaskGraph make_out_tree(NodeId depth, NodeId branching, const StructuredWeights& w) {
  require_positive(depth, "depth must be positive");
  require_positive(branching, "branching must be positive");
  Builder b(w);
  std::vector<NodeId> frontier{b.node()};
  for (NodeId d = 0; d < depth; ++d) {
    std::vector<NodeId> next;
    for (const NodeId parent : frontier) {
      for (NodeId c = 0; c < branching; ++c) {
        const NodeId child = b.node();
        b.edge(parent, child);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return b.finish();
}

TaskGraph make_in_tree(NodeId depth, NodeId branching, const StructuredWeights& w) {
  require_positive(depth, "depth must be positive");
  require_positive(branching, "branching must be positive");
  // Build the mirrored out-tree shape, but point edges child -> parent.
  Builder b(w);
  std::vector<NodeId> frontier{b.node()};
  for (NodeId d = 0; d < depth; ++d) {
    std::vector<NodeId> next;
    for (const NodeId parent : frontier) {
      for (NodeId c = 0; c < branching; ++c) {
        const NodeId child = b.node();
        b.edge(child, parent);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return b.finish();
}

TaskGraph make_diamond(NodeId rows, NodeId cols, const StructuredWeights& w) {
  require_positive(rows, "rows must be positive");
  require_positive(cols, "cols must be positive");
  Builder b(w);
  Matrix<NodeId> id(idx(rows), idx(cols));
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) id(idx(r), idx(c)) = b.node();
  }
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (r + 1 < rows) b.edge(id(idx(r), idx(c)), id(idx(r + 1), idx(c)));
      if (c + 1 < cols) b.edge(id(idx(r), idx(c)), id(idx(r), idx(c + 1)));
    }
  }
  return b.finish();
}

TaskGraph make_pipeline(NodeId length, const StructuredWeights& w) {
  require_positive(length, "length must be positive");
  Builder b(w);
  NodeId prev = b.node();
  for (NodeId i = 1; i < length; ++i) {
    const NodeId cur = b.node();
    b.edge(prev, cur);
    prev = cur;
  }
  return b.finish();
}

TaskGraph make_fft(NodeId points, const StructuredWeights& w) {
  require_positive(points, "points must be positive");
  if ((points & (points - 1)) != 0) {
    throw std::invalid_argument("make_fft: points must be a power of two");
  }
  Builder b(w);
  NodeId ranks = 0;
  for (NodeId p = points; p > 1; p >>= 1) ++ranks;
  // (ranks + 1) rows of `points` nodes each.
  std::vector<std::vector<NodeId>> grid(idx(ranks + 1), std::vector<NodeId>(idx(points)));
  for (NodeId r = 0; r <= ranks; ++r) {
    for (NodeId i = 0; i < points; ++i) grid[idx(r)][idx(i)] = b.node();
  }
  for (NodeId r = 0; r < ranks; ++r) {
    for (NodeId i = 0; i < points; ++i) {
      const NodeId partner = i ^ (NodeId{1} << r);
      b.edge(grid[idx(r)][idx(i)], grid[idx(r + 1)][idx(i)]);
      b.edge(grid[idx(r)][idx(i)], grid[idx(r + 1)][idx(partner)]);
    }
  }
  return b.finish();
}

TaskGraph make_gaussian_elimination(NodeId n, const StructuredWeights& w) {
  if (n < 2) throw std::invalid_argument("make_gaussian_elimination: n must be >= 2");
  Builder b(w);
  // id(k, j) for 0 <= k < j < n.
  Matrix<NodeId> id(idx(n), idx(n), NodeId{-1});
  for (NodeId k = 0; k + 1 < n; ++k) {
    for (NodeId j = k + 1; j < n; ++j) id(idx(k), idx(j)) = b.node();
  }
  for (NodeId k = 0; k + 2 < n; ++k) {
    // Pivot task of step k is T(k, k+1); it feeds every task of step k+1.
    const NodeId pivot = id(idx(k), idx(k + 1));
    for (NodeId j = k + 2; j < n; ++j) {
      b.edge(pivot, id(idx(k + 1), idx(j)));
      b.edge(id(idx(k), idx(j)), id(idx(k + 1), idx(j)));
    }
  }
  return b.finish();
}

TaskGraph make_divide_and_conquer(NodeId depth, const StructuredWeights& w) {
  require_positive(depth, "depth must be positive");
  Builder b(w);
  // Split phase: binary out-tree.
  std::vector<NodeId> frontier{b.node()};
  std::vector<std::vector<NodeId>> levels{frontier};
  for (NodeId d = 0; d < depth; ++d) {
    std::vector<NodeId> next;
    for (const NodeId parent : frontier) {
      for (int c = 0; c < 2; ++c) {
        const NodeId child = b.node();
        b.edge(parent, child);
        next.push_back(child);
      }
    }
    levels.push_back(next);
    frontier = std::move(next);
  }
  // Merge phase: mirrored binary reduction back to one task.
  while (frontier.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < frontier.size(); i += 2) {
      const NodeId merged = b.node();
      b.edge(frontier[i], merged);
      b.edge(frontier[i + 1], merged);
      next.push_back(merged);
    }
    frontier = std::move(next);
  }
  return b.finish();
}

TaskGraph make_cholesky(NodeId tiles, const StructuredWeights& w) {
  require_positive(tiles, "tiles must be positive");
  Builder b(w);
  const NodeId T = tiles;
  // Task id tables; -1 = absent.
  Matrix<NodeId> potrf(idx(T), 1, NodeId{-1});
  Matrix<NodeId> trsm(idx(T), idx(T), NodeId{-1});  // (i, k), i > k
  Matrix<NodeId> syrk(idx(T), idx(T), NodeId{-1});  // (i, k), i > k
  // gemm(i, j, k) stored per k in a map-free dense cube via vector.
  std::vector<Matrix<NodeId>> gemm(idx(T), Matrix<NodeId>(idx(T), idx(T), NodeId{-1}));

  for (NodeId k = 0; k < T; ++k) {
    potrf(idx(k), 0) = b.node();
    if (k > 0) b.edge(syrk(idx(k), idx(k - 1)), potrf(idx(k), 0));
    for (NodeId i = k + 1; i < T; ++i) {
      trsm(idx(i), idx(k)) = b.node();
      b.edge(potrf(idx(k), 0), trsm(idx(i), idx(k)));
      if (k > 0) b.edge(gemm[idx(k - 1)](idx(i), idx(k)), trsm(idx(i), idx(k)));
    }
    for (NodeId i = k + 1; i < T; ++i) {
      syrk(idx(i), idx(k)) = b.node();
      b.edge(trsm(idx(i), idx(k)), syrk(idx(i), idx(k)));
      if (k > 0) b.edge(syrk(idx(i), idx(k - 1)), syrk(idx(i), idx(k)));
      for (NodeId j = k + 1; j < i; ++j) {
        gemm[idx(k)](idx(i), idx(j)) = b.node();
        b.edge(trsm(idx(i), idx(k)), gemm[idx(k)](idx(i), idx(j)));
        b.edge(trsm(idx(j), idx(k)), gemm[idx(k)](idx(i), idx(j)));
        if (k > 0) b.edge(gemm[idx(k - 1)](idx(i), idx(j)), gemm[idx(k)](idx(i), idx(j)));
      }
    }
  }
  return b.finish();
}

TaskGraph make_lu(NodeId tiles, const StructuredWeights& w) {
  require_positive(tiles, "tiles must be positive");
  Builder b(w);
  const NodeId T = tiles;
  Matrix<NodeId> getrf(idx(T), 1, NodeId{-1});
  Matrix<NodeId> trsm_row(idx(T), idx(T), NodeId{-1});  // (k, j), j > k
  Matrix<NodeId> trsm_col(idx(T), idx(T), NodeId{-1});  // (i, k), i > k
  std::vector<Matrix<NodeId>> gemm(idx(T), Matrix<NodeId>(idx(T), idx(T), NodeId{-1}));

  for (NodeId k = 0; k < T; ++k) {
    getrf(idx(k), 0) = b.node();
    if (k > 0) b.edge(gemm[idx(k - 1)](idx(k), idx(k)), getrf(idx(k), 0));
    for (NodeId j = k + 1; j < T; ++j) {
      trsm_row(idx(k), idx(j)) = b.node();
      b.edge(getrf(idx(k), 0), trsm_row(idx(k), idx(j)));
      if (k > 0) b.edge(gemm[idx(k - 1)](idx(k), idx(j)), trsm_row(idx(k), idx(j)));
    }
    for (NodeId i = k + 1; i < T; ++i) {
      trsm_col(idx(i), idx(k)) = b.node();
      b.edge(getrf(idx(k), 0), trsm_col(idx(i), idx(k)));
      if (k > 0) b.edge(gemm[idx(k - 1)](idx(i), idx(k)), trsm_col(idx(i), idx(k)));
    }
    for (NodeId i = k + 1; i < T; ++i) {
      for (NodeId j = k + 1; j < T; ++j) {
        gemm[idx(k)](idx(i), idx(j)) = b.node();
        b.edge(trsm_col(idx(i), idx(k)), gemm[idx(k)](idx(i), idx(j)));
        b.edge(trsm_row(idx(k), idx(j)), gemm[idx(k)](idx(i), idx(j)));
        if (k > 0) b.edge(gemm[idx(k - 1)](idx(i), idx(j)), gemm[idx(k)](idx(i), idx(j)));
      }
    }
  }
  return b.finish();
}

TaskGraph make_map_reduce(NodeId mappers, NodeId reducers, const StructuredWeights& w) {
  require_positive(mappers, "mappers must be positive");
  require_positive(reducers, "reducers must be positive");
  Builder b(w);
  const NodeId source = b.node();
  std::vector<NodeId> map_ids(idx(mappers));
  for (NodeId i = 0; i < mappers; ++i) {
    map_ids[idx(i)] = b.node();
    b.edge(source, map_ids[idx(i)]);
  }
  std::vector<NodeId> red_ids(idx(reducers));
  for (NodeId i = 0; i < reducers; ++i) red_ids[idx(i)] = b.node();
  for (const NodeId m : map_ids) {
    for (const NodeId r : red_ids) b.edge(m, r);
  }
  const NodeId sink = b.node();
  for (const NodeId r : red_ids) b.edge(r, sink);
  return b.finish();
}

}  // namespace mimdmap
