#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

namespace mimdmap {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.topology = "hypercube-3";
  cfg.workload.num_tasks = 40;
  cfg.seed = 7;
  cfg.random_trials = 5;
  return cfg;
}

TEST(ExperimentTest, RowFieldsConsistent) {
  const ExperimentRow row = run_experiment(small_config(), 1);
  EXPECT_EQ(row.id, 1);
  EXPECT_EQ(row.topology, "hypercube-3");
  EXPECT_EQ(row.np, 40);
  EXPECT_EQ(row.ns, 8);
  EXPECT_GT(row.lower_bound, 0);
  EXPECT_GE(row.ours_total, row.lower_bound);
  EXPECT_GE(row.ours_pct, 100);
  EXPECT_GE(row.random_pct, 100);
  EXPECT_EQ(row.improvement, row.random_pct - row.ours_pct);
  EXPECT_EQ(row.reached_lower_bound, row.ours_total == row.lower_bound);
}

TEST(ExperimentTest, DeterministicForSameSeed) {
  const ExperimentRow a = run_experiment(small_config(), 1);
  const ExperimentRow b = run_experiment(small_config(), 1);
  EXPECT_EQ(a.ours_total, b.ours_total);
  EXPECT_EQ(a.random_mean, b.random_mean);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
}

TEST(ExperimentTest, DifferentSeedsGiveDifferentInstances) {
  ExperimentConfig cfg = small_config();
  const ExperimentRow a = run_experiment(cfg, 1);
  cfg.seed = 8;
  const ExperimentRow b = run_experiment(cfg, 2);
  // Lower bounds of two random instances virtually never coincide with
  // identical totals; check the instance actually changed.
  EXPECT_TRUE(a.lower_bound != b.lower_bound || a.ours_total != b.ours_total ||
              a.random_mean != b.random_mean);
}

TEST(ExperimentTest, SuiteRunsAllConfigs) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    ExperimentConfig cfg = small_config();
    cfg.seed = s;
    configs.push_back(cfg);
  }
  const auto rows = run_suite(configs);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].id, 1);
  EXPECT_EQ(rows[2].id, 3);
}

TEST(ExperimentTest, PaperTableFormat) {
  const auto rows = run_suite({small_config()});
  const std::string table = format_paper_table(rows);
  EXPECT_NE(table.find("expts"), std::string::npos);
  EXPECT_NE(table.find("our approach"), std::string::npos);
  EXPECT_NE(table.find("improvement"), std::string::npos);
}

TEST(ExperimentTest, CsvFormatHasDiagnostics) {
  const auto rows = run_suite({small_config()});
  const std::string csv = format_csv(rows);
  EXPECT_NE(csv.find("lower_bound"), std::string::npos);
  EXPECT_NE(csv.find("reached_lb"), std::string::npos);
  EXPECT_NE(csv.find("hypercube-3"), std::string::npos);
}

TEST(ExperimentTest, FigureRendering) {
  const auto rows = run_suite({small_config()});
  const std::string fig = render_figure(rows);
  EXPECT_NE(fig.find("% over lower bound"), std::string::npos);
}

TEST(ExperimentTest, SummaryLine) {
  const auto rows = run_suite({small_config()});
  const std::string summary = summarize_suite(rows);
  EXPECT_NE(summary.find("experiments: 1"), std::string::npos);
  EXPECT_NE(summary.find("reached lower bound"), std::string::npos);
  EXPECT_EQ(summarize_suite({}), "(no experiments)\n");
}

TEST(ExperimentTest, MeshAndRandomTopologiesWork) {
  ExperimentConfig cfg = small_config();
  cfg.topology = "mesh-2x3";
  EXPECT_EQ(run_experiment(cfg, 1).ns, 6);
  cfg.topology = "random-10-20-4";
  EXPECT_EQ(run_experiment(cfg, 1).ns, 10);
}

TEST(ExperimentTest, ErdosRenyiWorkloadKind) {
  ExperimentConfig cfg = small_config();
  cfg.workload_kind = WorkloadKind::kErdosRenyi;
  cfg.erdos.num_tasks = 35;
  cfg.erdos.edge_probability = 0.1;
  const ExperimentRow row = run_experiment(cfg, 1);
  EXPECT_EQ(row.np, 35);
  EXPECT_GE(row.ours_pct, 100);
}

TEST(ExperimentTest, SeriesParallelWorkloadKind) {
  ExperimentConfig cfg = small_config();
  cfg.workload_kind = WorkloadKind::kSeriesParallel;
  cfg.series_parallel.depth = 5;
  const ExperimentRow row = run_experiment(cfg, 1);
  EXPECT_GT(row.np, 1);
  EXPECT_GE(row.ours_pct, 100);
  EXPECT_GE(row.random_pct, 100);
}

TEST(ExperimentTest, WorkloadKindsProduceDifferentInstances) {
  ExperimentConfig layered = small_config();
  ExperimentConfig erdos = small_config();
  erdos.workload_kind = WorkloadKind::kErdosRenyi;
  erdos.erdos.num_tasks = layered.workload.num_tasks;
  const ExperimentRow a = run_experiment(layered, 1);
  const ExperimentRow b = run_experiment(erdos, 1);
  EXPECT_TRUE(a.lower_bound != b.lower_bound || a.ours_total != b.ours_total);
}

TEST(ExperimentTest, AlternativeClusteringStrategies) {
  ExperimentConfig cfg = small_config();
  for (const char* strategy : {"round-robin", "block", "level", "list", "edge-zeroing"}) {
    cfg.clustering = strategy;
    const ExperimentRow row = run_experiment(cfg, 1);
    EXPECT_GE(row.ours_pct, 100) << strategy;
  }
}

}  // namespace
}  // namespace mimdmap
