#include "core/refinement.hpp"

#include <gtest/gtest.h>

#include "cluster/strategies.hpp"
#include "paper_example.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

using testing::make_running_example;

struct Pipeline {
  MappingInstance instance;
  IdealSchedule ideal;
  InitialAssignmentResult initial;
};

Pipeline build_pipeline(NodeId np, NodeId ns, const SystemGraph& sys, std::uint64_t seed) {
  LayeredDagParams p;
  p.num_tasks = np;
  TaskGraph g = make_layered_dag(p, seed);
  Clustering c = random_clustering(g, ns, seed + 1);
  MappingInstance inst(std::move(g), std::move(c), sys);
  IdealSchedule ideal = compute_ideal_schedule(inst);
  const CriticalInfo critical = find_critical(inst, ideal);
  InitialAssignmentResult initial = initial_assignment(inst, critical);
  return Pipeline{std::move(inst), std::move(ideal), std::move(initial)};
}

TEST(RefinementTest, TerminatesImmediatelyAtLowerBound) {
  // The running example's initial assignment is optimal (paper Fig. 24):
  // refinement must stop before spending any trial.
  const auto ex = make_running_example();
  Pipeline pl{ex.instance(), {}, {}};
  pl.ideal = compute_ideal_schedule(pl.instance);
  pl.initial = initial_assignment(pl.instance, find_critical(pl.instance, pl.ideal));
  const RefineResult r = refine(pl.instance, pl.ideal, pl.initial);
  EXPECT_TRUE(r.reached_lower_bound);
  EXPECT_TRUE(r.terminated_early);
  EXPECT_EQ(r.trials_used, 0);
  EXPECT_EQ(r.schedule.total_time, 14);
}

TEST(RefinementTest, NeverWorseThanInitial) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Pipeline pl = build_pipeline(60, 8, make_hypercube(3), seed);
    const RefineResult r = refine(pl.instance, pl.ideal, pl.initial);
    EXPECT_LE(r.schedule.total_time, r.initial_total) << "seed " << seed;
    EXPECT_GE(r.schedule.total_time, r.lower_bound) << "seed " << seed;
  }
}

TEST(RefinementTest, DefaultBudgetIsNs) {
  Pipeline pl = build_pipeline(60, 8, make_ring(8), 3);
  RefineOptions opts;
  opts.use_termination_condition = false;  // force the full budget
  const RefineResult r = refine(pl.instance, pl.ideal, pl.initial, opts);
  EXPECT_EQ(r.trials_used, 8);
}

TEST(RefinementTest, ExplicitBudgetHonored) {
  Pipeline pl = build_pipeline(60, 8, make_ring(8), 3);
  RefineOptions opts;
  opts.max_trials = 25;
  opts.use_termination_condition = false;
  const RefineResult r = refine(pl.instance, pl.ideal, pl.initial, opts);
  EXPECT_EQ(r.trials_used, 25);
}

TEST(RefinementTest, PinnedClustersNeverMove) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Pipeline pl = build_pipeline(50, 8, make_mesh(2, 4), seed);
    RefineOptions opts;
    opts.max_trials = 40;
    const RefineResult r = refine(pl.instance, pl.ideal, pl.initial, opts);
    for (NodeId c = 0; c < 8; ++c) {
      if (pl.initial.pinned[idx(c)]) {
        EXPECT_EQ(r.assignment.host_of(c), pl.initial.assignment.host_of(c))
            << "pinned cluster " << c << " moved (seed " << seed << ")";
      }
    }
  }
}

TEST(RefinementTest, UnpinnedModeMayMoveEverything) {
  Pipeline pl = build_pipeline(50, 8, make_mesh(2, 4), 5);
  RefineOptions opts;
  opts.respect_pinned = false;
  opts.max_trials = 40;
  const RefineResult r = refine(pl.instance, pl.ideal, pl.initial, opts);
  EXPECT_LE(r.schedule.total_time, r.initial_total);
}

TEST(RefinementTest, DeterministicPerSeed) {
  Pipeline pl = build_pipeline(60, 8, make_hypercube(3), 7);
  RefineOptions opts;
  opts.seed = 123;
  const RefineResult a = refine(pl.instance, pl.ideal, pl.initial, opts);
  const RefineResult b = refine(pl.instance, pl.ideal, pl.initial, opts);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.schedule.total_time, b.schedule.total_time);
  EXPECT_EQ(a.trials_used, b.trials_used);
}

TEST(RefinementTest, ResultConsistentWithReportedSchedule) {
  Pipeline pl = build_pipeline(70, 8, make_hypercube(3), 11);
  const RefineResult r = refine(pl.instance, pl.ideal, pl.initial);
  EXPECT_EQ(r.schedule.total_time, total_time(pl.instance, r.assignment));
  EXPECT_EQ(r.reached_lower_bound, r.schedule.total_time == r.lower_bound);
}

TEST(RefinementTest, AllPinnedFallsBackToMovingEverything) {
  // Force every cluster pinned: pin saturation. Refinement must fall back
  // to full re-placement rather than silently doing nothing, and can never
  // regress below the initial assignment.
  Pipeline pl = build_pipeline(40, 4, make_ring(4), 13);
  pl.initial.pinned.assign(4, true);
  RefineOptions opts;
  opts.use_termination_condition = false;
  const RefineResult r = refine(pl.instance, pl.ideal, pl.initial, opts);
  EXPECT_EQ(r.trials_used, 4);  // full ns budget on the fallback pool
  EXPECT_LE(r.schedule.total_time, r.initial_total);
}

TEST(RefinementTest, PinSaturationFallbackCanEscapeBadInitial) {
  // A dense instance that pins 7/8 clusters (found by probing): without the
  // fallback the refinement would run zero trials and keep a poor initial
  // assignment.
  Pipeline pl = build_pipeline(215, 8, make_hypercube(3), 99);
  pl.initial.pinned.assign(8, true);  // simulate full saturation
  RefineOptions opts;
  opts.max_trials = 32;
  const RefineResult r = refine(pl.instance, pl.ideal, pl.initial, opts);
  EXPECT_GT(r.trials_used, 0);
  EXPECT_LE(r.schedule.total_time, r.initial_total);
}

TEST(RefinementTest, TerminationConditionSavesTrials) {
  // On the closure (complete graph) every assignment hits the lower bound,
  // so the very first check terminates.
  Pipeline pl = build_pipeline(50, 6, make_complete(6), 17);
  const RefineResult with_tc = refine(pl.instance, pl.ideal, pl.initial);
  EXPECT_TRUE(with_tc.reached_lower_bound);
  EXPECT_EQ(with_tc.trials_used, 0);

  RefineOptions no_tc;
  no_tc.use_termination_condition = false;
  no_tc.respect_pinned = false;  // guarantee movable clusters exist
  const RefineResult without = refine(pl.instance, pl.ideal, pl.initial, no_tc);
  EXPECT_EQ(without.trials_used, 6);  // the full ns budget is wasted
  // Still optimal, of course — just wasted work.
  EXPECT_EQ(without.schedule.total_time, without.lower_bound);
  EXPECT_TRUE(without.reached_lower_bound);
  EXPECT_FALSE(without.terminated_early);
}

TEST(RefinementTest, IncompleteInitialThrows) {
  Pipeline pl = build_pipeline(30, 4, make_ring(4), 19);
  InitialAssignmentResult broken;
  broken.assignment = Assignment::partial(4);
  broken.pinned.assign(4, false);
  EXPECT_THROW(refine(pl.instance, pl.ideal, broken), std::invalid_argument);
}

}  // namespace
}  // namespace mimdmap
