// Regenerates the paper's two counter-examples (section 2.2):
//
//  * Figs. 7-12 — a cardinality-optimal assignment (Bokhari's measure) is
//    NOT total-time optimal;
//  * Figs. 13-17 — a phase-comm-cost-optimal assignment (Lee's measure) is
//    NOT total-time optimal.
//
// The instances are reconstructions (DESIGN.md section 6); the claims are
// certified *exhaustively* over all 8! assignments, which is stronger than
// the paper's two-assignment comparison.
#include <gtest/gtest.h>

#include "baseline/bokhari.hpp"
#include "baseline/exhaustive.hpp"
#include "baseline/lee.hpp"
#include "core/ideal_graph.hpp"
#include "paper_example.hpp"
#include "topology/topology.hpp"

namespace mimdmap {
namespace {

using testing::identity_clustering;
using testing::make_bokhari_problem;
using testing::make_lee_problem;

TEST(CounterexampleTest, BokhariProblemShapeMatchesFig7) {
  const TaskGraph g = make_bokhari_problem();
  EXPECT_EQ(g.node_count(), 8);
  EXPECT_EQ(g.edge_count(), 9u);
  // Node 3 (paper numbering) == node 2 here has degree 4; the system graph
  // is 3-regular, so one of its edges must span two system edges.
  EXPECT_EQ(g.degree(2), 4);
}

TEST(CounterexampleTest, SystemGraphIsThreeRegular) {
  const SystemGraph q3 = make_hypercube(3);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(q3.degree(v), 3);
}

TEST(CounterexampleTest, CardinalityOptimalIsNotTimeOptimal) {
  const MappingInstance inst(make_bokhari_problem(), identity_clustering(8),
                             make_hypercube(3));
  const ExhaustiveObjectiveResult card = exhaustive_best_cardinality(inst);
  const ExhaustiveResult best = exhaustive_best_total(inst);
  // The BEST total time achievable while staying cardinality-optimal is
  // still strictly worse than the global optimum: optimizing Bokhari's
  // measure provably sacrifices execution time on this instance.
  EXPECT_GT(card.best_total_at_objective, best.total_time)
      << "cardinality-optimal assignments include a time-optimal one; "
         "the reconstruction lost the paper's property";
}

TEST(CounterexampleTest, CardinalityCapIsMet) {
  // Paper: "at least one problem edge ... has to be mapped to two
  // non-adjacent system nodes", i.e. max cardinality <= 8 of 9 edges.
  const MappingInstance inst(make_bokhari_problem(), identity_clustering(8),
                             make_hypercube(3));
  const ExhaustiveObjectiveResult card = exhaustive_best_cardinality(inst);
  EXPECT_LE(card.best_objective, 8);
}

TEST(CounterexampleTest, LeeProblemShapeMatchesFig13) {
  const TaskGraph g = make_lee_problem();
  EXPECT_EQ(g.node_count(), 8);
  EXPECT_EQ(g.edge_count(), 7u);
  // The printed edge weights of Fig. 15.
  EXPECT_EQ(g.edge_weight(0, 2), 3);
  EXPECT_EQ(g.edge_weight(1, 2), 3);
  EXPECT_EQ(g.edge_weight(1, 6), 2);
  EXPECT_EQ(g.edge_weight(2, 3), 4);
  EXPECT_EQ(g.edge_weight(2, 4), 2);
  EXPECT_EQ(g.edge_weight(3, 5), 1);
  EXPECT_EQ(g.edge_weight(4, 7), 3);
}

TEST(CounterexampleTest, CommCostOptimalIsNotTimeOptimal) {
  const MappingInstance inst(make_lee_problem(), identity_clustering(8), make_hypercube(3));
  const ExhaustiveObjectiveResult comm = exhaustive_best_comm_cost(inst);
  const ExhaustiveResult best = exhaustive_best_total(inst);
  EXPECT_GT(comm.best_total_at_objective, best.total_time)
      << "comm-cost-optimal assignments include a time-optimal one; "
         "the reconstruction lost the paper's property";
}

TEST(CounterexampleTest, TimeOptimalSacrificesCommCost) {
  // The flip side the paper shows with A4 (comm cost 15 > optimal 11 but
  // total 21 < 23): the time-optimal assignment pays more communication.
  const MappingInstance inst(make_lee_problem(), identity_clustering(8), make_hypercube(3));
  const ExhaustiveObjectiveResult comm = exhaustive_best_comm_cost(inst);
  const ExhaustiveResult best = exhaustive_best_total(inst);
  EXPECT_GT(phase_comm_cost(inst, best.assignment), comm.best_objective);
}

TEST(CounterexampleTest, HeuristicsActuallyLoseTimeOnTheseInstances) {
  // Running the Bokhari/Lee optimizers (not exhaustive) also lands above
  // the true optimum, matching the paper's argument against indirect
  // measures.
  const MappingInstance bokhari_inst(make_bokhari_problem(), identity_clustering(8),
                                     make_hypercube(3));
  const ExhaustiveResult best_b = exhaustive_best_total(bokhari_inst);
  const BokhariResult b = bokhari_mapping(bokhari_inst, 6, 1);
  EXPECT_GE(total_time(bokhari_inst, b.assignment), best_b.total_time);

  const MappingInstance lee_inst(make_lee_problem(), identity_clustering(8),
                                 make_hypercube(3));
  const ExhaustiveResult best_l = exhaustive_best_total(lee_inst);
  const LeeResult l = lee_mapping(lee_inst, 6, 1);
  EXPECT_GE(total_time(lee_inst, l.assignment), best_l.total_time);
}

TEST(CounterexampleTest, LowerBoundHoldsOnBothInstances) {
  for (const TaskGraph& g : {make_bokhari_problem(), make_lee_problem()}) {
    const MappingInstance inst(g, identity_clustering(8), make_hypercube(3));
    const Weight lb = compute_ideal_schedule(inst).lower_bound;
    const ExhaustiveResult best = exhaustive_best_total(inst);
    EXPECT_GE(best.total_time, lb);
  }
}

}  // namespace
}  // namespace mimdmap
