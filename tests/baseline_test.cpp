#include <gtest/gtest.h>

#include "baseline/annealing.hpp"
#include "baseline/bokhari.hpp"
#include "baseline/exhaustive.hpp"
#include "baseline/lee.hpp"
#include "baseline/pairwise.hpp"
#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "paper_example.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

using testing::identity_clustering;

MappingInstance random_instance(NodeId np, NodeId ns, const SystemGraph& sys,
                                std::uint64_t seed) {
  LayeredDagParams p;
  p.num_tasks = np;
  TaskGraph g = make_layered_dag(p, seed);
  Clustering c = random_clustering(g, ns, seed + 1);
  return MappingInstance(std::move(g), std::move(c), sys);
}

// --------------------------------------------------------- random mapping

TEST(RandomMappingTest, AssignmentIsPermutation) {
  Rng rng(1);
  const Assignment a = random_assignment(8, rng);
  EXPECT_TRUE(a.complete());
  std::vector<bool> seen(8, false);
  for (NodeId p = 0; p < 8; ++p) {
    EXPECT_FALSE(seen[idx(a.cluster_on(p))]);
    seen[idx(a.cluster_on(p))] = true;
  }
}

TEST(RandomMappingTest, StatsAggregateCorrectly) {
  const MappingInstance inst = random_instance(40, 6, make_ring(6), 2);
  const RandomMappingStats stats = evaluate_random_mappings(inst, 20, 3);
  EXPECT_EQ(stats.totals.size(), 20u);
  EXPECT_LE(stats.min, stats.max);
  EXPECT_GE(stats.mean(), static_cast<double>(stats.min));
  EXPECT_LE(stats.mean(), static_cast<double>(stats.max));
  Weight sum = 0;
  for (const Weight t : stats.totals) sum += t;
  EXPECT_NEAR(stats.mean(), static_cast<double>(sum) / 20.0, 0.001);
}

TEST(RandomMappingTest, DeterministicPerSeed) {
  const MappingInstance inst = random_instance(40, 6, make_ring(6), 2);
  const auto a = evaluate_random_mappings(inst, 10, 7);
  const auto b = evaluate_random_mappings(inst, 10, 7);
  EXPECT_EQ(a.totals, b.totals);
}

TEST(RandomMappingTest, RejectsNonPositiveTrials) {
  const MappingInstance inst = random_instance(30, 4, make_ring(4), 2);
  EXPECT_THROW(evaluate_random_mappings(inst, 0, 1), std::invalid_argument);
}

TEST(RandomMappingTest, BoundedBelowByLowerBound) {
  const MappingInstance inst = random_instance(50, 8, make_hypercube(3), 5);
  const Weight lb = compute_ideal_schedule(inst).lower_bound;
  const RandomMappingStats stats = evaluate_random_mappings(inst, 30, 9);
  EXPECT_GE(stats.min, lb);
}

// ----------------------------------------------------------------- Bokhari

TEST(BokhariTest, CardinalityCountsAdjacentEdgesOnly) {
  // Two tasks adjacent, one pair two hops apart on a chain.
  TaskGraph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(0, 2, 7);
  const MappingInstance inst(g, identity_clustering(3), make_chain(3));
  const Assignment a = Assignment::identity(3);
  EXPECT_EQ(cardinality(inst, a), 1);
  EXPECT_EQ(weighted_cardinality(inst, a), 5);
}

TEST(BokhariTest, IntraClusterEdgesDoNotCount) {
  TaskGraph g(2);
  g.add_edge(0, 1, 5);
  const MappingInstance inst(g, Clustering({0, 0}, 2), make_chain(2));
  EXPECT_EQ(cardinality(inst, Assignment::identity(2)), 0);
}

TEST(BokhariTest, HillClimbReachesPerfectCardinalityWhenEmbeddable) {
  // A 4-cycle problem graph embeds perfectly into the 4-cycle system graph.
  TaskGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(0, 3, 1);
  const MappingInstance inst(g, identity_clustering(4), make_ring(4));
  const BokhariResult r = bokhari_mapping(inst, 4, 1);
  EXPECT_EQ(r.cardinality, 4);
}

TEST(BokhariTest, CardinalityNeverExceedsEdgeCount) {
  const MappingInstance inst = random_instance(40, 8, make_hypercube(3), 6);
  const BokhariResult r = bokhari_mapping(inst, 3, 2);
  std::int64_t inter = 0;
  for (const TaskEdge& e : inst.problem().edges()) {
    if (!inst.clustering().same_cluster(e.from, e.to)) ++inter;
  }
  EXPECT_LE(r.cardinality, inter);
  EXPECT_GE(r.cardinality, 0);
}

TEST(BokhariTest, MoreRestartsNeverHurt) {
  const MappingInstance inst = random_instance(50, 8, make_ring(8), 7);
  const BokhariResult one = bokhari_mapping(inst, 1, 3);
  const BokhariResult many = bokhari_mapping(inst, 8, 3);
  EXPECT_GE(many.cardinality, one.cardinality);
}

TEST(BokhariTest, RejectsNonPositiveRestarts) {
  const MappingInstance inst = random_instance(30, 4, make_ring(4), 8);
  EXPECT_THROW(bokhari_mapping(inst, 0, 1), std::invalid_argument);
}

// --------------------------------------------------------------------- Lee

TEST(LeeTest, PhasesFollowSourceLevels) {
  const auto lee = testing::make_lee_problem();
  const MappingInstance inst(lee, identity_clustering(8), make_hypercube(3));
  const auto phases = communication_phases(inst);
  const auto& edges = inst.problem().edges();
  ASSERT_EQ(phases.size(), edges.size());
  // Paper Fig. 15 decomposition: (1,3),(2,3),(2,7) in phase 0 (sources are
  // level-0 tasks 1,2); (3,4),(3,5) in phase 1; (4,6),(5,8) in phase 2.
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].from == 0 || edges[i].from == 1) EXPECT_EQ(phases[i], 0);
    if (edges[i].from == 2) EXPECT_EQ(phases[i], 1);
    if (edges[i].from == 3 || edges[i].from == 4) EXPECT_EQ(phases[i], 2);
  }
}

TEST(LeeTest, PhaseCostIsSumOfPhaseMaxima) {
  // Chain topology, identity assignment: hop distance |i - j|.
  const auto lee = testing::make_lee_problem();
  const MappingInstance inst(lee, identity_clustering(8), make_chain(8));
  const Assignment a = Assignment::identity(8);
  // phase 0: (0,2) 3*2=6, (1,2) 3*1=3, (1,6) 2*5=10 -> max 10
  // phase 1: (2,3) 4*1=4, (2,4) 2*2=4 -> max 4
  // phase 2: (3,5) 1*2=2, (4,7) 3*3=9 -> max 9
  EXPECT_EQ(phase_comm_cost(inst, a), 10 + 4 + 9);
}

TEST(LeeTest, IntraClusterEdgesExcludedFromPhases) {
  TaskGraph g(3);
  g.add_edge(0, 1, 5);  // intra
  g.add_edge(1, 2, 2);
  const MappingInstance inst(g, Clustering({0, 0, 1}, 2), make_chain(2));
  const auto phases = communication_phases(inst);
  EXPECT_EQ(phases[0], -1);
  EXPECT_EQ(phases[1], 1);
  EXPECT_EQ(phase_comm_cost(inst, Assignment::identity(2)), 2);
}

TEST(LeeTest, OptimizerNeverWorseThanIdentity) {
  const MappingInstance inst = random_instance(50, 8, make_hypercube(3), 9);
  const LeeResult r = lee_mapping(inst, 4, 5);
  EXPECT_LE(r.comm_cost, phase_comm_cost(inst, Assignment::identity(8)));
}

// ---------------------------------------------------------------- pairwise

TEST(PairwiseTest, ExchangeNeverWorseThanInitial) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const MappingInstance inst = random_instance(60, 8, make_hypercube(3), seed);
    const IdealSchedule ideal = compute_ideal_schedule(inst);
    const auto initial = initial_assignment(inst, find_critical(inst, ideal));
    const RefineResult r = pairwise_exchange_refine(inst, ideal, initial);
    EXPECT_LE(r.schedule.total_time, r.initial_total);
    EXPECT_GE(r.schedule.total_time, r.lower_bound);
  }
}

TEST(PairwiseTest, SweepReachesLocalMinimum) {
  const MappingInstance inst = random_instance(60, 8, make_ring(8), 21);
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const auto initial = initial_assignment(inst, find_critical(inst, ideal));
  RefineOptions opts;
  opts.max_trials = 100000;  // effectively unlimited
  const RefineResult r = pairwise_sweep_refine(inst, ideal, initial, opts);
  // Verify no single unpinned swap improves further.
  for (NodeId p = 0; p < 8; ++p) {
    for (NodeId q = p + 1; q < 8; ++q) {
      const NodeId cp = r.assignment.cluster_on(p);
      const NodeId cq = r.assignment.cluster_on(q);
      if (initial.pinned[idx(cp)] || initial.pinned[idx(cq)]) continue;
      Assignment probe = r.assignment;
      probe.swap_processors(p, q);
      EXPECT_GE(total_time(inst, probe), r.schedule.total_time);
    }
  }
}

TEST(PairwiseTest, RespectsPinning) {
  const MappingInstance inst = random_instance(50, 8, make_mesh(2, 4), 23);
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const auto initial = initial_assignment(inst, find_critical(inst, ideal));
  RefineOptions opts;
  opts.max_trials = 60;
  const RefineResult r = pairwise_exchange_refine(inst, ideal, initial, opts);
  for (NodeId c = 0; c < 8; ++c) {
    if (initial.pinned[idx(c)]) {
      EXPECT_EQ(r.assignment.host_of(c), initial.assignment.host_of(c));
    }
  }
}

// --------------------------------------------------------------- annealing

TEST(AnnealingTest, NeverWorseThanStart) {
  const MappingInstance inst = random_instance(60, 8, make_hypercube(3), 31);
  const Assignment start = Assignment::identity(8);
  AnnealingOptions opts;
  opts.steps = 20;
  const AnnealingResult r = anneal_mapping(inst, start, opts);
  EXPECT_LE(r.total_time, total_time(inst, start));
  EXPECT_EQ(r.total_time, total_time(inst, r.assignment));
  EXPECT_GT(r.moves_tried, 0);
}

TEST(AnnealingTest, RejectsBadCooling) {
  const MappingInstance inst = random_instance(30, 4, make_ring(4), 32);
  AnnealingOptions opts;
  opts.cooling = 1.5;
  EXPECT_THROW(anneal_mapping(inst, Assignment::identity(4), opts), std::invalid_argument);
}

TEST(AnnealingTest, SingleProcessorNoMoves) {
  TaskGraph g(3);
  const MappingInstance inst(g, Clustering({0, 0, 0}, 1), make_complete(1));
  const AnnealingResult r = anneal_mapping(inst, Assignment::identity(1));
  EXPECT_EQ(r.moves_tried, 0);
}

// -------------------------------------------------------------- exhaustive

TEST(ExhaustiveTest, EnumeratesAllPermutations) {
  int count = 0;
  for_each_assignment(4, [&count](const Assignment& a) {
    EXPECT_TRUE(a.complete());
    ++count;
  });
  EXPECT_EQ(count, 24);
}

TEST(ExhaustiveTest, RejectsLargeN) {
  EXPECT_THROW(for_each_assignment(11, [](const Assignment&) {}), std::invalid_argument);
}

TEST(ExhaustiveTest, BestTotalIsGlobalMinimum) {
  const MappingInstance inst = random_instance(30, 5, make_ring(5), 41);
  const ExhaustiveResult best = exhaustive_best_total(inst);
  for_each_assignment(5, [&](const Assignment& a) {
    EXPECT_GE(total_time(inst, a), best.total_time);
  });
  EXPECT_GE(best.total_time, compute_ideal_schedule(inst).lower_bound);
}

TEST(ExhaustiveTest, MapperNeverBeatsExhaustive) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const MappingInstance inst = random_instance(40, 6, make_ring(6), seed + 50);
    const ExhaustiveResult best = exhaustive_best_total(inst);
    const MappingReport r = map_instance(inst);
    EXPECT_GE(r.total_time(), best.total_time);
  }
}

TEST(ExhaustiveTest, CardinalityScanIsConsistent) {
  const MappingInstance inst = random_instance(30, 5, make_chain(5), 43);
  const auto scan = exhaustive_best_cardinality(inst);
  EXPECT_EQ(static_cast<Weight>(cardinality(inst, scan.best_assignment_at_objective)),
            scan.best_objective);
  EXPECT_EQ(total_time(inst, scan.best_assignment_at_objective),
            scan.best_total_at_objective);
  for_each_assignment(5, [&](const Assignment& a) {
    EXPECT_LE(static_cast<Weight>(cardinality(inst, a)), scan.best_objective);
  });
}

TEST(ExhaustiveTest, CommCostScanIsConsistent) {
  const MappingInstance inst = random_instance(30, 5, make_chain(5), 44);
  const auto scan = exhaustive_best_comm_cost(inst);
  EXPECT_EQ(phase_comm_cost(inst, scan.best_assignment_at_objective), scan.best_objective);
  for_each_assignment(5, [&](const Assignment& a) {
    EXPECT_GE(phase_comm_cost(inst, a), scan.best_objective);
  });
}

}  // namespace
}  // namespace mimdmap
