#include <gtest/gtest.h>

#include "graph/topological.hpp"
#include "workload/random_dag.hpp"
#include "workload/structured.hpp"

namespace mimdmap {
namespace {

// ---------------------------------------------------------------- layered

TEST(LayeredDagTest, NodeCountAndAcyclicity) {
  LayeredDagParams p;
  p.num_tasks = 80;
  const TaskGraph g = make_layered_dag(p, 1);
  EXPECT_EQ(g.node_count(), 80);
  EXPECT_TRUE(is_dag(g));
}

TEST(LayeredDagTest, Deterministic) {
  LayeredDagParams p;
  EXPECT_EQ(make_layered_dag(p, 5), make_layered_dag(p, 5));
  EXPECT_FALSE(make_layered_dag(p, 5) == make_layered_dag(p, 6));
}

TEST(LayeredDagTest, WeightsWithinRange) {
  LayeredDagParams p;
  p.node_weight = {2, 6};
  p.edge_weight = {3, 7};
  const TaskGraph g = make_layered_dag(p, 2);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(g.node_weight(v), 2);
    EXPECT_LE(g.node_weight(v), 6);
  }
  for (const TaskEdge& e : g.edges()) {
    EXPECT_GE(e.weight, 3);
    EXPECT_LE(e.weight, 7);
  }
}

TEST(LayeredDagTest, ConnectOrphansGuaranteesPredecessors) {
  LayeredDagParams p;
  p.num_tasks = 60;
  p.avg_out_degree = 0.0;  // no organic edges: every non-source needs rescue
  p.connect_orphans = true;
  const TaskGraph g = make_layered_dag(p, 3);
  const auto levels = topological_levels(g);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.in_degree(v) == 0) {
      // Only genuine first-layer tasks may lack predecessors.
      EXPECT_EQ(levels[idx(v)], 0);
    }
  }
}

TEST(LayeredDagTest, RejectsBadParams) {
  LayeredDagParams p;
  p.num_tasks = 0;
  EXPECT_THROW(make_layered_dag(p, 1), std::invalid_argument);
  p.num_tasks = 5;
  p.avg_out_degree = -1.0;
  EXPECT_THROW(make_layered_dag(p, 1), std::invalid_argument);
}

TEST(LayeredDagTest, SingleLayerHasNoEdges) {
  LayeredDagParams p;
  p.num_tasks = 10;
  p.num_layers = 1;
  const TaskGraph g = make_layered_dag(p, 4);
  EXPECT_EQ(g.edge_count(), 0u);
}

struct LayeredSweepParam {
  NodeId tasks;
  NodeId layers;
  double degree;

  friend void PrintTo(const LayeredSweepParam& p, std::ostream* os) {
    *os << "tasks" << p.tasks << "_layers" << p.layers << "_deg" << p.degree;
  }
};

class LayeredDagSweep : public ::testing::TestWithParam<LayeredSweepParam> {};

TEST_P(LayeredDagSweep, AlwaysValidDag) {
  LayeredDagParams p;
  p.num_tasks = GetParam().tasks;
  p.num_layers = GetParam().layers;
  p.avg_out_degree = GetParam().degree;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const TaskGraph g = make_layered_dag(p, seed);
    EXPECT_EQ(g.node_count(), p.num_tasks);
    EXPECT_TRUE(is_dag(g));
    for (NodeId v = 0; v < g.node_count(); ++v) EXPECT_GT(g.node_weight(v), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LayeredDagSweep,
    ::testing::Values(LayeredSweepParam{1, 1, 2.0}, LayeredSweepParam{2, 5, 1.0},
                      LayeredSweepParam{30, 4, 2.0}, LayeredSweepParam{100, 12, 3.0},
                      LayeredSweepParam{300, 20, 2.5}, LayeredSweepParam{50, 50, 1.0}));

// ------------------------------------------------------------ Erdos-Renyi

TEST(ErdosRenyiDagTest, ZeroProbabilityMeansNoEdges) {
  ErdosRenyiDagParams p;
  p.num_tasks = 20;
  p.edge_probability = 0.0;
  EXPECT_EQ(make_erdos_renyi_dag(p, 1).edge_count(), 0u);
}

TEST(ErdosRenyiDagTest, FullProbabilityMeansTournament) {
  ErdosRenyiDagParams p;
  p.num_tasks = 10;
  p.edge_probability = 1.0;
  EXPECT_EQ(make_erdos_renyi_dag(p, 1).edge_count(), 45u);  // C(10,2)
}

TEST(ErdosRenyiDagTest, AcyclicAcrossSeeds) {
  ErdosRenyiDagParams p;
  p.num_tasks = 40;
  p.edge_probability = 0.15;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_TRUE(is_dag(make_erdos_renyi_dag(p, seed)));
  }
}

TEST(ErdosRenyiDagTest, Deterministic) {
  ErdosRenyiDagParams p;
  EXPECT_EQ(make_erdos_renyi_dag(p, 9), make_erdos_renyi_dag(p, 9));
}

// -------------------------------------------------------------- structured

StructuredWeights unit_weights() {
  return StructuredWeights{{1, 1}, {1, 1}, 1};
}

TEST(StructuredTest, ForkJoinShape) {
  const TaskGraph g = make_fork_join(4, 1, unit_weights());
  EXPECT_EQ(g.node_count(), 6);  // source + 4 + sink
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_EQ(g.out_degree(0), 4);
  EXPECT_EQ(g.in_degree(5), 4);
}

TEST(StructuredTest, ForkJoinStagesChain) {
  const TaskGraph g = make_fork_join(3, 2, unit_weights());
  EXPECT_EQ(g.node_count(), 1 + 3 + 1 + 3 + 1);
  EXPECT_TRUE(is_dag(g));
}

TEST(StructuredTest, OutTreeShape) {
  const TaskGraph g = make_out_tree(2, 2, unit_weights());
  EXPECT_EQ(g.node_count(), 7);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.in_degree(0), 0);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(g.in_degree(v), 1);
}

TEST(StructuredTest, InTreeIsReversedOutTree) {
  const TaskGraph g = make_in_tree(2, 2, unit_weights());
  EXPECT_EQ(g.node_count(), 7);
  EXPECT_EQ(g.out_degree(0), 0);
  EXPECT_EQ(g.in_degree(0), 2);
  // leaves have no predecessors
  NodeId sources = 0;
  for (NodeId v = 0; v < 7; ++v) {
    if (g.in_degree(v) == 0) ++sources;
  }
  EXPECT_EQ(sources, 4);
}

TEST(StructuredTest, DiamondShape) {
  const TaskGraph g = make_diamond(3, 4, unit_weights());
  EXPECT_EQ(g.node_count(), 12);
  // edges: 3*(4-1) + (3-1)*4 = 17
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_TRUE(is_dag(g));
  const auto levels = topological_levels(g);
  EXPECT_EQ(levels[idx(11)], 5);  // corner to corner
}

TEST(StructuredTest, PipelineShape) {
  const TaskGraph g = make_pipeline(5, unit_weights());
  EXPECT_EQ(g.node_count(), 5);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(critical_path_length(g), 9);  // 5 nodes + 4 unit edges
}

TEST(StructuredTest, PipelineSingleton) {
  const TaskGraph g = make_pipeline(1, unit_weights());
  EXPECT_EQ(g.node_count(), 1);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(StructuredTest, FftShape) {
  const TaskGraph g = make_fft(4, unit_weights());
  // (log2(4)+1) ranks x 4 points
  EXPECT_EQ(g.node_count(), 12);
  EXPECT_EQ(g.edge_count(), 16u);  // 2 ranks x 4 points x 2 edges
  EXPECT_TRUE(is_dag(g));
}

TEST(StructuredTest, FftRejectsNonPowerOfTwo) {
  EXPECT_THROW(make_fft(6, unit_weights()), std::invalid_argument);
}

TEST(StructuredTest, GaussianEliminationShape) {
  const TaskGraph g = make_gaussian_elimination(5, unit_weights());
  EXPECT_EQ(g.node_count(), 10);  // n(n-1)/2
  EXPECT_TRUE(is_dag(g));
  // the first pivot T(0,1) feeds all of step 1
  EXPECT_EQ(g.out_degree(0), 3);
}

TEST(StructuredTest, GaussianEliminationMinimumSize) {
  EXPECT_EQ(make_gaussian_elimination(2, unit_weights()).node_count(), 1);
  EXPECT_THROW(make_gaussian_elimination(1, unit_weights()), std::invalid_argument);
}

TEST(StructuredTest, DivideAndConquerShape) {
  const TaskGraph g = make_divide_and_conquer(2, unit_weights());
  // split: 1 + 2 + 4; merge: 2 + 1
  EXPECT_EQ(g.node_count(), 10);
  EXPECT_TRUE(is_dag(g));
  NodeId sinks = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.out_degree(v) == 0) ++sinks;
  }
  EXPECT_EQ(sinks, 1);
}

TEST(StructuredTest, MapReduceShape) {
  const TaskGraph g = make_map_reduce(3, 2, unit_weights());
  EXPECT_EQ(g.node_count(), 1 + 3 + 2 + 1);
  EXPECT_EQ(g.edge_count(), 3u + 6u + 2u);
  EXPECT_TRUE(is_dag(g));
}

TEST(StructuredTest, GeneratorsRejectNonPositiveSizes) {
  EXPECT_THROW(make_fork_join(0, 1, unit_weights()), std::invalid_argument);
  EXPECT_THROW(make_out_tree(1, 0, unit_weights()), std::invalid_argument);
  EXPECT_THROW(make_diamond(0, 3, unit_weights()), std::invalid_argument);
  EXPECT_THROW(make_pipeline(0, unit_weights()), std::invalid_argument);
  EXPECT_THROW(make_map_reduce(3, 0, unit_weights()), std::invalid_argument);
}

TEST(StructuredTest, RandomWeightsAreDeterministicPerSeed) {
  StructuredWeights w{{1, 9}, {1, 9}, 77};
  EXPECT_EQ(make_diamond(3, 3, w), make_diamond(3, 3, w));
  StructuredWeights w2 = w;
  w2.seed = 78;
  EXPECT_FALSE(make_diamond(3, 3, w) == make_diamond(3, 3, w2));
}

}  // namespace
}  // namespace mimdmap
