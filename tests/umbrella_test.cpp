// Compile-and-smoke test for the umbrella header: every public API must be
// reachable through a single include.
#include "mimdmap.hpp"

#include <gtest/gtest.h>

namespace mimdmap {
namespace {

TEST(UmbrellaTest, EndToEndThroughSingleInclude) {
  TaskGraph program(4);
  program.add_edge(0, 1, 2);
  program.add_edge(0, 2, 3);
  program.add_edge(1, 3, 1);
  program.add_edge(2, 3, 4);

  const SystemGraph machine = make_ring(4);
  const Clustering clusters = round_robin_clustering(program, machine.node_count());
  const MappingInstance instance(program, clusters, machine);
  const MappingReport report = map_instance(instance);

  EXPECT_GE(report.total_time(), report.lower_bound);
  EXPECT_TRUE(schedule_violations(instance, report.assignment, report.schedule).empty());
  EXPECT_FALSE(render_gantt(instance, report.assignment, report.schedule).empty());
  EXPECT_FALSE(to_dot(program).empty());
  EXPECT_FALSE(topology_families().empty());
  EXPECT_FALSE(clustering_strategies().empty());
}

}  // namespace
}  // namespace mimdmap
