#include "core/instance.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "core/ideal_graph.hpp"
#include "topology/topology.hpp"

namespace mimdmap {
namespace {

TaskGraph two_task_graph() {
  TaskGraph g(2);
  g.add_edge(0, 1, 3);
  return g;
}

TEST(InstanceTest, ValidConstruction) {
  const MappingInstance inst(two_task_graph(), Clustering({0, 1}, 2), make_chain(2));
  EXPECT_EQ(inst.num_tasks(), 2);
  EXPECT_EQ(inst.num_processors(), 2);
  EXPECT_EQ(inst.clustered_weight(0, 1), 3);
  EXPECT_EQ(inst.hops()(0, 1), 1);
  EXPECT_EQ(inst.distance_model(), DistanceModel::kHops);
}

TEST(InstanceTest, RejectsCyclicProblem) {
  TaskGraph g(2);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, 1);
  EXPECT_THROW(MappingInstance(g, Clustering({0, 1}, 2), make_chain(2)),
               std::invalid_argument);
}

TEST(InstanceTest, RejectsDisconnectedSystem) {
  SystemGraph disconnected(2);
  EXPECT_THROW(MappingInstance(two_task_graph(), Clustering({0, 1}, 2), disconnected),
               std::invalid_argument);
}

TEST(InstanceTest, RejectsClusteringSizeMismatch) {
  EXPECT_THROW(MappingInstance(two_task_graph(), Clustering({0, 1, 0}, 2), make_chain(2)),
               std::invalid_argument);
}

TEST(InstanceTest, RejectsClusterCountNotEqualProcessorCount) {
  // The paper's precondition na == ns (section 1).
  EXPECT_THROW(MappingInstance(two_task_graph(), Clustering({0, 1}, 2), make_ring(3)),
               std::invalid_argument);
}

TEST(InstanceTest, IntraClusterWeightIsZero) {
  TaskGraph g(3);
  g.add_edge(0, 1, 7);
  g.add_edge(1, 2, 4);
  const MappingInstance inst(g, Clustering({0, 0, 1}, 2), make_chain(2));
  EXPECT_EQ(inst.clustered_weight(0, 1), 0);
  EXPECT_EQ(inst.clustered_weight(1, 2), 4);
}

TEST(InstanceTest, WeightedLinkDistanceModel) {
  SystemGraph sys(3, "weighted");
  sys.add_link(0, 1, 5);
  sys.add_link(1, 2, 5);
  sys.add_link(0, 2, 30);

  TaskGraph g(3);
  g.add_edge(0, 2, 2);

  const MappingInstance hops(g, Clustering({0, 1, 2}, 3), sys, DistanceModel::kHops);
  // Hop model: direct link = 1 hop.
  EXPECT_EQ(hops.hops()(0, 2), 1);

  const MappingInstance weighted(g, Clustering({0, 1, 2}, 3), sys,
                                 DistanceModel::kWeightedLinks);
  // Weighted model: 5 + 5 through node 1 beats the direct 30.
  EXPECT_EQ(weighted.hops()(0, 2), 10);
  EXPECT_EQ(weighted.distance_model(), DistanceModel::kWeightedLinks);

  // The evaluation inherits the distances: message of weight 2 costs 2 vs 20.
  EXPECT_EQ(total_time(hops, Assignment::identity(3)), 1 + 2 * 1 + 1);
  EXPECT_EQ(total_time(weighted, Assignment::identity(3)), 1 + 2 * 10 + 1);
}

TEST(InstanceTest, WeightedModelEqualsHopsOnUnitLinks) {
  TaskGraph g(4);
  g.add_edge(0, 3, 2);
  g.add_edge(1, 2, 1);
  const Clustering c({0, 1, 2, 3}, 4);
  const MappingInstance a(g, c, make_ring(4), DistanceModel::kHops);
  const MappingInstance b(g, c, make_ring(4), DistanceModel::kWeightedLinks);
  EXPECT_EQ(a.hops(), b.hops());
  EXPECT_EQ(compute_ideal_schedule(a).lower_bound, compute_ideal_schedule(b).lower_bound);
}

}  // namespace
}  // namespace mimdmap
