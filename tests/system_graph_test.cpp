#include "graph/system_graph.hpp"

#include <gtest/gtest.h>

namespace mimdmap {
namespace {

TEST(SystemGraphTest, Construction) {
  SystemGraph g(3, "test");
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.link_count(), 0u);
  EXPECT_EQ(g.name(), "test");
}

TEST(SystemGraphTest, DefaultName) {
  SystemGraph g(2);
  EXPECT_EQ(g.name(), "custom");
  g.set_name("renamed");
  EXPECT_EQ(g.name(), "renamed");
}

TEST(SystemGraphTest, LinksAreUndirected) {
  SystemGraph g(3);
  g.add_link(0, 1);
  EXPECT_TRUE(g.has_link(0, 1));
  EXPECT_TRUE(g.has_link(1, 0));
  EXPECT_EQ(g.link_weight(0, 1), 1);
  EXPECT_EQ(g.link_weight(1, 0), 1);
  EXPECT_EQ(g.link_weight(0, 2), 0);
}

TEST(SystemGraphTest, LinkStoredCanonically) {
  SystemGraph g(3);
  g.add_link(2, 0, 5);
  ASSERT_EQ(g.links().size(), 1u);
  EXPECT_EQ(g.links()[0].a, 0);
  EXPECT_EQ(g.links()[0].b, 2);
  EXPECT_EQ(g.links()[0].weight, 5);
}

TEST(SystemGraphTest, SelfLoopAndDuplicateThrow) {
  SystemGraph g(3);
  g.add_link(0, 1);
  EXPECT_THROW(g.add_link(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_link(1, 0), std::invalid_argument);  // duplicate, reversed
  EXPECT_THROW(g.add_link(0, 2, 0), std::invalid_argument);
}

TEST(SystemGraphTest, Degrees) {
  SystemGraph g(4);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(0, 3);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.max_degree(), 3);
  const auto d = g.degrees();
  EXPECT_EQ(d, (std::vector<NodeId>{3, 1, 1, 1}));
}

TEST(SystemGraphTest, Connectivity) {
  SystemGraph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  EXPECT_FALSE(g.is_connected());
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g.add_link(1, 2);
  EXPECT_TRUE(g.is_connected());
  EXPECT_NO_THROW(g.validate());
}

TEST(SystemGraphTest, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(SystemGraph(0).is_connected());
  EXPECT_TRUE(SystemGraph(1).is_connected());
}

TEST(SystemGraphTest, AdjacencyMatrixIsSymmetric) {
  SystemGraph g(3);
  g.add_link(0, 1, 2);
  g.add_link(1, 2, 3);
  const auto m = g.adjacency_matrix();
  EXPECT_EQ(m(0, 1), 2);
  EXPECT_EQ(m(1, 0), 2);
  EXPECT_EQ(m(1, 2), 3);
  EXPECT_EQ(m(2, 1), 3);
  EXPECT_EQ(m(0, 2), 0);
  EXPECT_EQ(m(0, 0), 0);
}

TEST(SystemGraphTest, ClosureIsFullyConnected) {
  SystemGraph g(4, "ring");
  g.add_link(0, 1);
  const SystemGraph c = g.closure();
  EXPECT_EQ(c.node_count(), 4);
  EXPECT_EQ(c.link_count(), 6u);  // C(4,2)
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      if (a != b) EXPECT_TRUE(c.has_link(a, b));
    }
  }
  EXPECT_EQ(c.name(), "ring-closure");
}

TEST(SystemGraphTest, NeighborLists) {
  SystemGraph g(3);
  g.add_link(0, 1);
  g.add_link(0, 2);
  ASSERT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(0)[0].first, 1);
  EXPECT_EQ(g.neighbors(0)[1].first, 2);
  EXPECT_EQ(g.neighbors(1).size(), 1u);
}

TEST(SystemGraphTest, OutOfRangeThrows) {
  SystemGraph g(2);
  EXPECT_THROW(g.add_link(0, 2), std::out_of_range);
  EXPECT_THROW(g.degree(-1), std::out_of_range);
}

}  // namespace
}  // namespace mimdmap
