// Multilevel coarsen–map–refine suite (DESIGN.md section 18).
//
// Two invariance families anchor the subsystem:
//  * hierarchy invariants — every coarse level preserves cluster
//    membership, per-cluster work and per-cluster-pair inter-cluster
//    traffic exactly, stays a DAG, and the parent maps compose into a
//    consistent projection;
//  * the trivial-hierarchy contract — coarsen_target >= np reproduces the
//    flat paper pipeline bit-for-bit, so multilevel is a pure superset.
#include "cluster/coarsen.hpp"

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "cluster/strategies.hpp"
#include "core/cancellation.hpp"
#include "core/mapper.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

TaskGraph layered(NodeId np, std::uint64_t seed) {
  LayeredDagParams p;
  p.num_tasks = np;
  p.num_layers = std::max<NodeId>(4, np / 12);
  return make_layered_dag(p, seed);
}

/// Per-cluster node-weight sums and per-(cluster,cluster)-pair edge-weight
/// sums over inter-cluster edges — the two quantities coarsening must
/// conserve exactly (they determine the abstract graph and every
/// assignment's communication placement).
struct ClusterAggregates {
  std::map<NodeId, Weight> work;
  std::map<std::pair<NodeId, NodeId>, Weight> traffic;
};

ClusterAggregates aggregate(const TaskGraph& g, const Clustering& c) {
  ClusterAggregates agg;
  for (NodeId v = 0; v < g.node_count(); ++v) agg.work[c.cluster_of(v)] += g.node_weight(v);
  for (const TaskEdge& e : g.edges()) {
    const NodeId cf = c.cluster_of(e.from);
    const NodeId ct = c.cluster_of(e.to);
    if (cf != ct) agg.traffic[{cf, ct}] += e.weight;
  }
  return agg;
}

TEST(CoarsenTest, HierarchyInvariants) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TaskGraph g = layered(node_id(300 + 40 * (seed % 4)), seed);
    const Clustering c = random_clustering(g, 8, seed + 5);
    CoarsenOptions opts;
    opts.target = 32;
    const CoarseningHierarchy h = coarsen_hierarchy(g, c, opts);
    ASSERT_FALSE(h.trivial()) << "seed=" << seed;

    const ClusterAggregates want = aggregate(g, c);
    const TaskGraph* fine = &g;
    const Clustering* fine_clustering = &c;
    for (std::size_t k = 0; k < h.levels.size(); ++k) {
      const CoarseLevel& level = h.levels[k];
      // Strictly smaller, same cluster universe, still a DAG.
      EXPECT_LT(level.graph.node_count(), fine->node_count()) << "seed=" << seed << " k=" << k;
      EXPECT_EQ(level.clustering.num_clusters(), c.num_clusters());
      EXPECT_NO_THROW(level.graph.validate()) << "seed=" << seed << " k=" << k;

      // The parent map covers the finer level and respects its clusters.
      ASSERT_EQ(level.parent.size(), idx(fine->node_count()));
      for (NodeId v = 0; v < fine->node_count(); ++v) {
        const NodeId parent = level.parent[idx(v)];
        ASSERT_LT(idx(parent), idx(level.graph.node_count()));
        EXPECT_EQ(level.clustering.cluster_of(parent), fine_clustering->cluster_of(v))
            << "seed=" << seed << " k=" << k << " v=" << v;
      }

      // Exact conservation of per-cluster work and inter-cluster traffic.
      const ClusterAggregates got = aggregate(level.graph, level.clustering);
      EXPECT_EQ(got.work, want.work) << "seed=" << seed << " k=" << k;
      EXPECT_EQ(got.traffic, want.traffic) << "seed=" << seed << " k=" << k;

      fine = &level.graph;
      fine_clustering = &level.clustering;
    }
  }
}

TEST(CoarsenTest, ProjectionComposesParentMaps) {
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    const TaskGraph g = layered(260, seed * 7);
    const Clustering c = random_clustering(g, 8, seed);
    CoarsenOptions opts;
    opts.target = 40;
    const CoarseningHierarchy h = coarsen_hierarchy(g, c, opts);
    ASSERT_FALSE(h.trivial());

    const std::vector<NodeId> projected = h.project_to_coarsest();
    ASSERT_EQ(projected.size(), idx(g.node_count()));
    for (NodeId v = 0; v < g.node_count(); ++v) {
      NodeId p = v;
      for (const CoarseLevel& level : h.levels) p = level.parent[idx(p)];
      EXPECT_EQ(projected[idx(v)], p) << "seed=" << seed << " v=" << v;
      // Original tasks land in their own cluster at the coarsest level.
      EXPECT_EQ(h.coarsest().clustering.cluster_of(projected[idx(v)]), c.cluster_of(v));
    }
  }
}

TEST(CoarsenTest, DeterministicAndTargetRespecting) {
  const TaskGraph g = layered(300, 77);
  const Clustering c = random_clustering(g, 8, 9);
  CoarsenOptions opts;
  opts.target = 48;
  const CoarseningHierarchy a = coarsen_hierarchy(g, c, opts);
  const CoarseningHierarchy b = coarsen_hierarchy(g, c, opts);
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t k = 0; k < a.levels.size(); ++k) {
    EXPECT_EQ(a.levels[k].graph, b.levels[k].graph);
    EXPECT_EQ(a.levels[k].parent, b.levels[k].parent);
  }
  // Coarsening never overshoots: each pass stops merging at the target.
  EXPECT_GE(a.coarsest().graph.node_count(), 48);
}

TEST(CoarsenTest, TrivialWhenTargetAboveSize) {
  const TaskGraph g = layered(120, 3);
  const Clustering c = random_clustering(g, 8, 4);
  CoarsenOptions opts;
  opts.target = 120;
  EXPECT_TRUE(coarsen_hierarchy(g, c, opts).trivial());
}

MappingInstance big_instance(NodeId np, NodeId ns, const SystemGraph& sys, std::uint64_t seed) {
  TaskGraph g = layered(np, seed);
  Clustering c = random_clustering(g, ns, seed + 1);
  return MappingInstance(std::move(g), std::move(c), sys);
}

TEST(MultilevelTest, TrivialHierarchyReproducesFlatPipelineBitForBit) {
  // The acceptance anchor: coarsen_target >= np must take the flat path
  // exactly — same assignment, schedule, trial counts and delta counters.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const MappingInstance inst = big_instance(90, 8, make_hypercube(3), seed);
    MapperOptions flat;
    flat.refine.seed = 1000 + seed;
    MapperOptions ml = flat;
    ml.multilevel.enabled = true;
    ml.multilevel.coarsen_target = inst.num_tasks();

    const MappingReport a = map_instance(inst, flat);
    const MappingReport b = map_instance(inst, ml);
    EXPECT_EQ(a.assignment, b.assignment) << "seed=" << seed;
    EXPECT_EQ(a.initial_assignment, b.initial_assignment);
    EXPECT_EQ(a.total_time(), b.total_time());
    EXPECT_EQ(a.initial_total, b.initial_total);
    EXPECT_EQ(a.refinement_trials, b.refinement_trials);
    EXPECT_EQ(a.improvements, b.improvements);
    EXPECT_EQ(a.delta.trials, b.delta.trials);
    EXPECT_EQ(a.lower_bound, b.lower_bound);
    EXPECT_TRUE(b.levels.empty());
  }
}

TEST(MultilevelTest, EndToEndValidAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const MappingInstance inst = big_instance(500, 8, make_hypercube(3), seed * 13);
    MapperOptions opts;
    opts.multilevel.enabled = true;
    opts.multilevel.coarsen_target = 64;
    opts.refine.seed = seed;

    const MappingReport r = map_instance(inst, opts);
    EXPECT_TRUE(r.assignment.complete());
    EXPECT_GE(r.total_time(), r.lower_bound);
    EXPECT_EQ(r.total_time(), total_time(inst, r.assignment)) << "seed=" << seed;
    EXPECT_EQ(r.status, MapStatus::kOk);

    // Stage trace: coarsest first, finishing at level 0 with the full np.
    ASSERT_GE(r.levels.size(), 2u);
    EXPECT_EQ(r.levels.back().level, 0);
    EXPECT_EQ(r.levels.back().np, inst.num_tasks());
    for (std::size_t i = 1; i < r.levels.size(); ++i) {
      EXPECT_GT(r.levels[i - 1].level, r.levels[i].level);
      EXPECT_LE(r.levels[i - 1].np, r.levels[i].np);
    }

    const MappingReport again = map_instance(inst, opts);
    EXPECT_EQ(r.assignment, again.assignment);
    EXPECT_EQ(r.total_time(), again.total_time());
    EXPECT_EQ(r.refinement_trials, again.refinement_trials);
  }
}

TEST(MultilevelTest, LevelTrialBudgetIsHonored) {
  const MappingInstance inst = big_instance(400, 8, make_mesh(2, 4), 5);
  MapperOptions opts;
  opts.multilevel.enabled = true;
  opts.multilevel.coarsen_target = 50;
  opts.multilevel.level_trials = 3;
  const MappingReport r = map_instance(inst, opts);
  ASSERT_FALSE(r.levels.empty());
  // Every uncoarsen level (not the coarsest, which runs the flat budget)
  // spends at most the per-level budget.
  for (std::size_t i = 1; i < r.levels.size(); ++i) {
    EXPECT_LE(r.levels[i].trials, 3) << "level " << r.levels[i].level;
  }
}

TEST(MultilevelTest, PreTrippedCancelShipsDegradedValidAssignment) {
  const MappingInstance inst = big_instance(400, 8, make_hypercube(3), 11);
  CancelSource source;
  source.request_cancel();
  MapperOptions opts;
  opts.multilevel.enabled = true;
  opts.multilevel.coarsen_target = 64;
  opts.refine.cancel = source.token();
  const MappingReport r = map_instance(inst, opts);
  EXPECT_NE(r.status, MapStatus::kOk);
  EXPECT_TRUE(r.assignment.complete());
  EXPECT_EQ(r.total_time(), total_time(inst, r.assignment));
  EXPECT_GE(r.total_time(), r.lower_bound);
}

}  // namespace
}  // namespace mimdmap