#include "core/critical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/strategies.hpp"
#include "paper_example.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

using testing::identity_clustering;
using testing::make_running_example;

using EdgeSet = std::set<std::pair<NodeId, NodeId>>;

EdgeSet to_set(const std::vector<TaskEdge>& edges) {
  EdgeSet s;
  for (const TaskEdge& e : edges) s.emplace(e.from, e.to);
  return s;
}

TEST(CriticalTest, RunningExamplePaperAlgorithm) {
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const CriticalInfo info = find_critical(inst, ideal);

  // The chain 1 -> 3 -> 7 -> 9 (paper ids) is critical.
  const EdgeSet expected{{0, 2}, {2, 6}, {6, 8}};
  EXPECT_EQ(to_set(info.critical_edges), expected);

  // e79 carries weight 2 in crit_edge (Fig. 22-c semantics).
  EXPECT_EQ(info.critical_weight(6, 8), 2);
  // e59 is not critical (the text's counter-example).
  EXPECT_EQ(info.critical_weight(4, 8), 0);
}

TEST(CriticalTest, RunningExampleAbstractAggregation) {
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  const CriticalInfo info = find_critical(inst, compute_ideal_schedule(inst));

  // All three critical edges run between clusters 0 and 2 -> the only
  // critical abstract edge, total weight 6 (Fig. 20-b has positive entries
  // only in rows/cols touching cluster 0).
  EXPECT_EQ(info.c_abs_edge(0, 2), 6);
  EXPECT_EQ(info.c_abs_edge(2, 0), 6);
  EXPECT_EQ(info.c_abs_edge(0, 1), 0);
  EXPECT_EQ(info.c_abs_edge(1, 3), 0);
  EXPECT_TRUE(info.abstract_edge_critical(0, 2));
  EXPECT_FALSE(info.abstract_edge_critical(0, 1));

  EXPECT_EQ(info.critical_degree, (std::vector<Weight>{6, 0, 6, 0}));
  EXPECT_TRUE(info.has_critical_edges());
}

TEST(CriticalTest, NoCriticalEdgesWhenBottleneckIsIntraCluster) {
  // Latest task fed only through an intra-cluster precedence: the paper's
  // walk finds nothing (and pins nothing).
  TaskGraph g(3);
  g.set_node_weight(0, 1);
  g.set_node_weight(1, 5);
  g.set_node_weight(2, 5);
  g.add_edge(0, 1, 1);  // inter, plenty of slack
  g.add_edge(1, 2, 1);  // intra (same cluster)
  const Clustering c({0, 1, 1}, 3);
  const MappingInstance inst(g, c, make_complete(3));
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const CriticalInfo paper_mode = find_critical(inst, ideal);
  EXPECT_FALSE(paper_mode.has_critical_edges());

  // The perturbation oracle shows (0,1) *is* critical: the paper's
  // algorithm is sound but incomplete (DESIGN.md section 6).
  const auto oracle = critical_edges_oracle(g, inst.clus_edge());
  EXPECT_EQ(to_set(oracle), (EdgeSet{{0, 1}}));

  // Extended mode recovers it.
  const CriticalInfo extended =
      find_critical(inst, ideal, CriticalOptions{.propagate_through_intra_cluster = true});
  EXPECT_EQ(to_set(extended.critical_edges), to_set(oracle));
}

TEST(CriticalTest, ForkWithSlackOnOneBranch) {
  TaskGraph g(4);
  g.set_node_weight(0, 1);
  g.set_node_weight(1, 5);
  g.set_node_weight(2, 1);
  g.set_node_weight(3, 1);
  g.add_edge(0, 1, 2);  // tight branch: 0 ends 1, 1 starts 3, ends 8
  g.add_edge(0, 2, 2);  // slack branch: 2 ends 4
  g.add_edge(1, 3, 1);  // 3 starts 9, ends 10 (latest)
  g.add_edge(2, 3, 1);  // 4 + 1 = 5 < 9: slack
  const MappingInstance inst(g, identity_clustering(4), make_complete(4));
  const CriticalInfo info = find_critical(inst, compute_ideal_schedule(inst));
  EXPECT_EQ(to_set(info.critical_edges), (EdgeSet{{0, 1}, {1, 3}}));
}

TEST(CriticalTest, TiedPredecessorsAreBothCritical) {
  TaskGraph g(3);
  g.add_edge(0, 2, 3);
  g.add_edge(1, 2, 3);
  const MappingInstance inst(g, identity_clustering(3), make_complete(3));
  const CriticalInfo info = find_critical(inst, compute_ideal_schedule(inst));
  EXPECT_EQ(to_set(info.critical_edges), (EdgeSet{{0, 2}, {1, 2}}));
}

TEST(CriticalTest, OracleMatchesRunningExample) {
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  const auto oracle = critical_edges_oracle(inst.problem(), inst.clus_edge());
  const CriticalInfo info = find_critical(inst, compute_ideal_schedule(inst));
  EXPECT_EQ(to_set(info.critical_edges), to_set(oracle));
}

// Property sweep: on random instances, the paper algorithm's critical set
// is a subset of the oracle set, and extended mode equals the oracle.
struct CriticalSweepParam {
  NodeId np;
  NodeId ns;
  std::uint64_t seed;

  friend void PrintTo(const CriticalSweepParam& p, std::ostream* os) {
    *os << "np" << p.np << "_ns" << p.ns << "_seed" << p.seed;
  }
};

class CriticalSweep : public ::testing::TestWithParam<CriticalSweepParam> {};

TEST_P(CriticalSweep, PaperSubsetOfOracleAndExtendedExact) {
  const auto param = GetParam();
  LayeredDagParams p;
  p.num_tasks = param.np;
  const TaskGraph g = make_layered_dag(p, param.seed);
  const Clustering c = random_clustering(g, param.ns, param.seed * 7 + 1);
  const MappingInstance inst(g, c, make_complete(param.ns));
  const IdealSchedule ideal = compute_ideal_schedule(inst);

  const EdgeSet paper_set = to_set(find_critical(inst, ideal).critical_edges);
  const EdgeSet extended_set = to_set(
      find_critical(inst, ideal, CriticalOptions{.propagate_through_intra_cluster = true})
          .critical_edges);
  const EdgeSet oracle_set = to_set(critical_edges_oracle(g, inst.clus_edge()));

  EXPECT_TRUE(std::includes(oracle_set.begin(), oracle_set.end(), paper_set.begin(),
                            paper_set.end()))
      << "paper algorithm reported a non-critical edge";
  EXPECT_EQ(extended_set, oracle_set);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, CriticalSweep,
    ::testing::Values(CriticalSweepParam{20, 4, 1}, CriticalSweepParam{20, 4, 2},
                      CriticalSweepParam{30, 5, 3}, CriticalSweepParam{40, 6, 4},
                      CriticalSweepParam{50, 8, 5}, CriticalSweepParam{60, 8, 6},
                      CriticalSweepParam{80, 10, 7}, CriticalSweepParam{100, 12, 8},
                      CriticalSweepParam{35, 7, 9}, CriticalSweepParam{45, 9, 10}));

TEST(CriticalTest, CriticalDegreeIsRowSum) {
  LayeredDagParams p;
  p.num_tasks = 60;
  const TaskGraph g = make_layered_dag(p, 17);
  const Clustering c = random_clustering(g, 6, 18);
  const MappingInstance inst(g, c, make_complete(6));
  const CriticalInfo info = find_critical(inst, compute_ideal_schedule(inst));
  for (NodeId a = 0; a < 6; ++a) {
    Weight sum = 0;
    for (NodeId b = 0; b < 6; ++b) sum += info.c_abs_edge(idx(a), idx(b));
    EXPECT_EQ(info.critical_degree[idx(a)], sum);
  }
}

TEST(CriticalTest, CAbsEdgeIsSymmetric) {
  LayeredDagParams p;
  p.num_tasks = 70;
  const TaskGraph g = make_layered_dag(p, 21);
  const Clustering c = random_clustering(g, 7, 22);
  const MappingInstance inst(g, c, make_complete(7));
  const CriticalInfo info = find_critical(inst, compute_ideal_schedule(inst));
  for (NodeId a = 0; a < 7; ++a) {
    for (NodeId b = 0; b < 7; ++b) {
      EXPECT_EQ(info.c_abs_edge(idx(a), idx(b)), info.c_abs_edge(idx(b), idx(a)));
    }
  }
}

TEST(CriticalTest, EveryCriticalEdgeHasZeroSlack) {
  LayeredDagParams p;
  p.num_tasks = 80;
  const TaskGraph g = make_layered_dag(p, 31);
  const Clustering c = random_clustering(g, 8, 32);
  const MappingInstance inst(g, c, make_complete(8));
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const CriticalInfo info = find_critical(inst, ideal);
  for (const TaskEdge& e : info.critical_edges) {
    const Weight cw = inst.clus_edge()(idx(e.from), idx(e.to));
    EXPECT_GT(cw, 0);
    EXPECT_EQ(ideal.end[idx(e.from)] + cw, ideal.start[idx(e.to)]);
    EXPECT_EQ(e.weight, cw);
  }
}

}  // namespace
}  // namespace mimdmap
