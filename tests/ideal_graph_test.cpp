#include "core/ideal_graph.hpp"

#include <gtest/gtest.h>

#include "graph/topological.hpp"
#include "paper_example.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

using testing::identity_clustering;
using testing::make_running_example;

TEST(IdealGraphTest, ChainScheduleWithInterClusterComm) {
  TaskGraph g(3);
  g.set_node_weight(0, 2);
  g.set_node_weight(1, 3);
  g.set_node_weight(2, 1);
  g.add_edge(0, 1, 4);
  g.add_edge(1, 2, 5);
  const MappingInstance inst(g, identity_clustering(3), make_complete(3));
  const IdealSchedule s = compute_ideal_schedule(inst);
  EXPECT_EQ(s.start, (std::vector<Weight>{0, 6, 14}));
  EXPECT_EQ(s.end, (std::vector<Weight>{2, 9, 15}));
  EXPECT_EQ(s.lower_bound, 15);
  EXPECT_EQ(s.latest_tasks, (std::vector<NodeId>{2}));
}

TEST(IdealGraphTest, IntraClusterEdgesCostNothing) {
  TaskGraph g(3);
  g.set_node_weight(0, 2);
  g.set_node_weight(1, 3);
  g.set_node_weight(2, 1);
  g.add_edge(0, 1, 4);
  g.add_edge(1, 2, 5);
  // All tasks in one cluster of a 1-processor system.
  const MappingInstance inst(g, Clustering({0, 0, 0}, 1), make_complete(1));
  const IdealSchedule s = compute_ideal_schedule(inst);
  EXPECT_EQ(s.end, (std::vector<Weight>{2, 5, 6}));
  EXPECT_EQ(s.lower_bound, 6);
}

TEST(IdealGraphTest, PrecedenceThroughRemovedEdgeStillConstrains) {
  // The paper's explicit warning (section 4.1): task 4 depends on task 1
  // through an edge the clustering removed; the schedule must still respect
  // the precedence with zero communication.
  TaskGraph g(2);
  g.set_node_weight(0, 3);
  g.set_node_weight(1, 2);
  g.add_edge(0, 1, 10);
  const MappingInstance inst(g, Clustering({0, 0}, 2), make_complete(2));
  const IdealSchedule s = compute_ideal_schedule(inst);
  EXPECT_EQ(s.start[1], 3);  // not 0, and not 13
  EXPECT_EQ(s.lower_bound, 5);
}

TEST(IdealGraphTest, SingletonClustersEqualCriticalPath) {
  // With every task in its own cluster, every edge costs its full weight on
  // the closure, so the lower bound equals the classic critical path.
  LayeredDagParams p;
  p.num_tasks = 40;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const TaskGraph g = make_layered_dag(p, seed);
    const MappingInstance inst(g, identity_clustering(40), make_complete(40));
    EXPECT_EQ(compute_ideal_schedule(inst).lower_bound, critical_path_length(g));
  }
}

TEST(IdealGraphTest, MultipleLatestTasks) {
  TaskGraph g(3);
  g.set_node_weight(0, 1);
  g.set_node_weight(1, 4);
  g.set_node_weight(2, 4);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 1);
  const MappingInstance inst(g, identity_clustering(3), make_complete(3));
  const IdealSchedule s = compute_ideal_schedule(inst);
  EXPECT_EQ(s.lower_bound, 6);
  EXPECT_EQ(s.latest_tasks, (std::vector<NodeId>{1, 2}));
}

TEST(IdealGraphTest, RunningExampleReproducesPaperFig22b) {
  // The paper's printed start/end matrices (Fig. 22-b), 0-based here.
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  const IdealSchedule s = compute_ideal_schedule(inst);
  EXPECT_EQ(s.start, (std::vector<Weight>{0, 2, 3, 1, 6, 7, 7, 7, 12, 10, 13}));
  EXPECT_EQ(s.end, (std::vector<Weight>{1, 3, 5, 4, 9, 8, 10, 9, 14, 13, 14}));
  EXPECT_EQ(s.lower_bound, 14);
  // "tasks 9 and 11 are the latest tasks" (paper ids) -> 8 and 10.
  EXPECT_EQ(s.latest_tasks, (std::vector<NodeId>{8, 10}));
}

TEST(IdealGraphTest, IdealEdgeMatrixHasNonNegativeSlack) {
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  const IdealSchedule s = compute_ideal_schedule(inst);
  const auto i_edge = ideal_edge_matrix(inst.problem(), inst.clus_edge(), s);
  for (const TaskEdge& e : inst.problem().edges()) {
    const Weight cw = inst.clus_edge()(idx(e.from), idx(e.to));
    if (cw > 0) {
      EXPECT_GE(i_edge(idx(e.from), idx(e.to)), cw);
    } else {
      EXPECT_EQ(i_edge(idx(e.from), idx(e.to)), 0);  // intra-cluster: no ideal edge
    }
  }
}

TEST(IdealGraphTest, RunningExampleIdealEdgeValues) {
  // Slack examples from the text: e79 (paper ids) is tight, e59 has the
  // printed weight 1 but ideal weight 3 ("only when the increase is by more
  // than 2, will the ideal graph edge be affected"); e6,11 has clustered
  // weight 1 and a much larger ideal weight.
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  const IdealSchedule s = compute_ideal_schedule(inst);
  const auto i_edge = ideal_edge_matrix(inst.problem(), inst.clus_edge(), s);
  EXPECT_EQ(i_edge(6, 8), 2);  // e79: i_edge == clus_edge == 2 (critical)
  EXPECT_EQ(i_edge(4, 8), 3);  // e59: clustered weight 1, slack 2
  EXPECT_EQ(i_edge(5, 10), 5); // e6,11: clustered weight 1, ideal 5
}

TEST(IdealGraphTest, CycleThrows) {
  TaskGraph g(2);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, 1);
  const auto m = Matrix<Weight>::square(2, 0);
  EXPECT_THROW(compute_ideal_schedule(g, m), std::invalid_argument);
}

}  // namespace
}  // namespace mimdmap
