// The shared ThreadPool's contracts: exactly-once index coverage, dense
// per-chunk lanes within budget, safe concurrent and nested chunks, lazy
// spawning, process-wide reference counting and cached calibration. Pools
// here are given explicit worker counts so the concurrency paths are
// exercised even on single-core hosts.
#include "service/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace mimdmap {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (const std::size_t count : {0u, 1u, 2u, 3u, 7u, 100u, 1000u}) {
    std::vector<std::atomic<int>> hits(count);
    pool.run_chunk(count, 4, [&](std::size_t i, int) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " of " << count;
    }
  }
}

TEST(ThreadPoolTest, LanesAreDenseAndWithinBudget) {
  ThreadPool pool(7);
  constexpr int kMaxLanes = 3;
  std::atomic<int> max_lane{0};
  pool.run_chunk(2000, kMaxLanes, [&](std::size_t, int lane) {
    ASSERT_GE(lane, 0);
    ASSERT_LT(lane, kMaxLanes);
    int seen = max_lane.load(std::memory_order_relaxed);
    while (lane > seen && !max_lane.compare_exchange_weak(seen, lane)) {
    }
  });
  // Lane tickets are dense from 0; at most max_lanes - 1 workers joined.
  EXPECT_LE(pool.thread_count(), kMaxLanes - 1);
}

TEST(ThreadPoolTest, SequentialFallbackSpawnsNoWorkers) {
  ThreadPool pool(0);
  std::vector<int> hits(50, 0);
  pool.run_chunk(hits.size(), 8, [&](std::size_t i, int lane) {
    EXPECT_EQ(lane, 0);
    ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(pool.thread_count(), 0);
  EXPECT_EQ(pool.lane_limit(), 1);
}

TEST(ThreadPoolTest, TinyChunksClampLanesToCount) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.run_chunk(2, 64, [&](std::size_t, int lane) {
    EXPECT_LT(lane, 2);  // count clamps the lane budget
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 2);
  EXPECT_LE(pool.thread_count(), 1);  // lazy: at most count - 1 spawned
}

TEST(ThreadPoolTest, ConcurrentChunksAllComplete) {
  // Several threads inside run_chunk at once: the pool shards its workers
  // across the chunks and every chunk still covers its own index space.
  const auto pool = std::make_shared<ThreadPool>(4);
  constexpr int kCallers = 6;
  constexpr std::size_t kCount = 400;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    std::vector<std::atomic<int>> fresh(kCount);
    h.swap(fresh);
  }
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool->run_chunk(kCount, 3, [&, c](std::size_t i, int) {
        hits[static_cast<std::size_t>(c)][i].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(c)][i].load(), 1) << "caller " << c;
    }
  }
}

TEST(ThreadPoolTest, NestedChunksMakeProgress) {
  // A chunk body may itself dispatch a chunk (a MapService job's inner
  // refinement loop); the caller always drives lane 0, so this completes
  // even when every worker is busy elsewhere.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.run_chunk(4, 3, [&](std::size_t, int) {
    pool.run_chunk(8, 2, [&](std::size_t, int) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPoolTest, SharedPoolIsRefCountedProcessWide) {
  const std::shared_ptr<ThreadPool> a = ThreadPool::shared();
  const std::shared_ptr<ThreadPool> b = ThreadPool::shared();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // same pool while any holder is alive
  // At least: caller + all engines share it; a fresh acquisition after the
  // last release must still hand out a working pool.
  std::vector<int> hits(16, 0);
  a->run_chunk(hits.size(), a->lane_limit(), [&](std::size_t i, int) { ++hits[i]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, SyncOverheadCalibrationIsCachedAndSane) {
  ThreadPool sequential(0);
  EXPECT_EQ(sequential.chunk_sync_overhead_ns(), 0.0);

  ThreadPool pool(2);
  const double first = pool.chunk_sync_overhead_ns();
  EXPECT_GT(first, 0.0);
  EXPECT_EQ(pool.chunk_sync_overhead_ns(), first);  // measured once, cached
}

}  // namespace
}  // namespace mimdmap
