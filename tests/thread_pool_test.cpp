// The shared ThreadPool's contracts: exactly-once index coverage, dense
// per-chunk lanes within budget, safe concurrent and nested chunks, lazy
// spawning, process-wide reference counting and cached calibration. Pools
// here are given explicit worker counts so the concurrency paths are
// exercised even on single-core hosts.
#include "service/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace mimdmap {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (const std::size_t count : {0u, 1u, 2u, 3u, 7u, 100u, 1000u}) {
    std::vector<std::atomic<int>> hits(count);
    pool.run_chunk(count, 4, [&](std::size_t i, int) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " of " << count;
    }
  }
}

TEST(ThreadPoolTest, LanesAreDenseAndWithinBudget) {
  ThreadPool pool(7);
  constexpr int kMaxLanes = 3;
  std::atomic<int> max_lane{0};
  pool.run_chunk(2000, kMaxLanes, [&](std::size_t, int lane) {
    ASSERT_GE(lane, 0);
    ASSERT_LT(lane, kMaxLanes);
    int seen = max_lane.load(std::memory_order_relaxed);
    while (lane > seen && !max_lane.compare_exchange_weak(seen, lane)) {
    }
  });
  // Lane tickets are dense from 0; at most max_lanes - 1 workers joined.
  EXPECT_LE(pool.thread_count(), kMaxLanes - 1);
}

TEST(ThreadPoolTest, SequentialFallbackSpawnsNoWorkers) {
  ThreadPool pool(0);
  std::vector<int> hits(50, 0);
  pool.run_chunk(hits.size(), 8, [&](std::size_t i, int lane) {
    EXPECT_EQ(lane, 0);
    ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(pool.thread_count(), 0);
  EXPECT_EQ(pool.lane_limit(), 1);
}

TEST(ThreadPoolTest, TinyChunksClampLanesToCount) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.run_chunk(2, 64, [&](std::size_t, int lane) {
    EXPECT_LT(lane, 2);  // count clamps the lane budget
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 2);
  EXPECT_LE(pool.thread_count(), 1);  // lazy: at most count - 1 spawned
}

TEST(ThreadPoolTest, ConcurrentChunksAllComplete) {
  // Several threads inside run_chunk at once: the pool shards its workers
  // across the chunks and every chunk still covers its own index space.
  const auto pool = std::make_shared<ThreadPool>(4);
  constexpr int kCallers = 6;
  constexpr std::size_t kCount = 400;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    std::vector<std::atomic<int>> fresh(kCount);
    h.swap(fresh);
  }
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool->run_chunk(kCount, 3, [&, c](std::size_t i, int) {
        hits[static_cast<std::size_t>(c)][i].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(c)][i].load(), 1) << "caller " << c;
    }
  }
}

TEST(ThreadPoolTest, NestedChunksMakeProgress) {
  // A chunk body may itself dispatch a chunk (a MapService job's inner
  // refinement loop); the caller always drives lane 0, so this completes
  // even when every worker is busy elsewhere.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.run_chunk(4, 3, [&](std::size_t, int) {
    pool.run_chunk(8, 2, [&](std::size_t, int) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPoolTest, SharedPoolIsRefCountedProcessWide) {
  const std::shared_ptr<ThreadPool> a = ThreadPool::shared();
  const std::shared_ptr<ThreadPool> b = ThreadPool::shared();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // same pool while any holder is alive
  // At least: caller + all engines share it; a fresh acquisition after the
  // last release must still hand out a working pool.
  std::vector<int> hits(16, 0);
  a->run_chunk(hits.size(), a->lane_limit(), [&](std::size_t i, int) { ++hits[i]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ThrowingBodyIsRethrownOnCallingThread) {
  // Exception-safety contract (ISSUE 6 satellite): the first exception a
  // chunk body throws — on whichever lane — poisons only that chunk, is
  // rethrown from run_chunk on the calling thread, and never crashes a
  // worker or leaks the in-flight indices.
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  const auto throwing = [&](std::size_t i, int) {
    calls.fetch_add(1, std::memory_order_relaxed);
    if (i == 7) throw std::runtime_error("lane boom");
  };
  EXPECT_THROW(
      {
        try {
          pool.run_chunk(64, 4, throwing);
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "lane boom");
          throw;
        }
      },
      std::runtime_error);
  // The poisoned chunk stops early: index 7 always runs, but the full 64
  // need not (and with >1 lane usually do not).
  EXPECT_GE(calls.load(), 1);
  EXPECT_LE(calls.load(), 64);
}

TEST(ThreadPoolTest, PoolSurvivesThrowingChunkAndKeepsServing) {
  // After a poisoned chunk, the same pool must serve later chunks with the
  // exactly-once guarantee intact — no stuck workers, no stale error.
  ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.run_chunk(100, 4,
                                [&](std::size_t i, int) {
                                  if (i % 9 == 0) throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
    std::vector<std::atomic<int>> hits(200);
    pool.run_chunk(hits.size(), 4, [&](std::size_t i, int) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, FirstExceptionWinsOnConcurrentThrows) {
  // Every index throws; exactly one exception is claimed and rethrown —
  // the others are swallowed with their lanes' remaining work.
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  try {
    pool.run_chunk(32, 4, [&](std::size_t i, int) {
      calls.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("idx " + std::to_string(i));
    });
    FAIL() << "run_chunk must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("idx ", 0), 0u);
  }
  EXPECT_GE(calls.load(), 1);
}

TEST(ThreadPoolTest, SequentialModeRethrowsToo) {
  ThreadPool pool(0);  // no workers: caller-only drain path
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.run_chunk(10, 1,
                              [&](std::size_t i, int) {
                                calls.fetch_add(1);
                                if (i == 3) throw std::runtime_error("seq boom");
                              }),
               std::runtime_error);
  EXPECT_EQ(calls.load(), 4);  // indices 0..3, then the poisoned chunk stops
}

TEST(ThreadPoolTest, SyncOverheadCalibrationIsCachedAndSane) {
  ThreadPool sequential(0);
  EXPECT_EQ(sequential.chunk_sync_overhead_ns(), 0.0);

  ThreadPool pool(2);
  const double first = pool.chunk_sync_overhead_ns();
  EXPECT_GT(first, 0.0);
  EXPECT_EQ(pool.chunk_sync_overhead_ns(), first);  // measured once, cached
}

}  // namespace
}  // namespace mimdmap
