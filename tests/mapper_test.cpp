#include "core/mapper.hpp"

#include <gtest/gtest.h>

#include "cluster/strategies.hpp"
#include "paper_example.hpp"
#include "topology/factory.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

using testing::make_running_example;

MappingInstance random_instance(NodeId np, NodeId ns, const SystemGraph& sys,
                                std::uint64_t seed) {
  LayeredDagParams p;
  p.num_tasks = np;
  TaskGraph g = make_layered_dag(p, seed);
  Clustering c = random_clustering(g, ns, seed + 1);
  return MappingInstance(std::move(g), std::move(c), sys);
}

TEST(MapperTest, RunningExampleEndToEnd) {
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  const MappingReport report = map_instance(inst);
  EXPECT_EQ(report.lower_bound, 14);
  EXPECT_EQ(report.total_time(), 14);
  EXPECT_TRUE(report.reached_lower_bound);
  EXPECT_EQ(report.refinement_trials, 0);  // optimal at the initial assignment
  EXPECT_EQ(report.percent_over_lower_bound(), 100);
}

TEST(MapperTest, ReportInvariants) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const MappingInstance inst = random_instance(60, 8, make_hypercube(3), seed);
    const MappingReport r = map_instance(inst);
    EXPECT_GE(r.total_time(), r.lower_bound);
    EXPECT_GE(r.percent_over_lower_bound(), 100);
    EXPECT_LE(r.total_time(), r.initial_total);
    EXPECT_EQ(r.reached_lower_bound, r.total_time() == r.lower_bound);
    EXPECT_EQ(r.total_time(), total_time(inst, r.assignment));
    EXPECT_EQ(r.ideal.lower_bound, r.lower_bound);
    EXPECT_EQ(r.pinned.size(), 8u);
  }
}

TEST(MapperTest, DeterministicGivenOptions) {
  const MappingInstance inst = random_instance(70, 8, make_mesh(2, 4), 9);
  MapperOptions opts;
  opts.refine.seed = 555;
  const MappingReport a = map_instance(inst, opts);
  const MappingReport b = map_instance(inst, opts);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.total_time(), b.total_time());
}

TEST(MapperTest, ExtendedCriticalModeStillValid) {
  const MappingInstance inst = random_instance(60, 8, make_hypercube(3), 10);
  MapperOptions opts;
  opts.critical.propagate_through_intra_cluster = true;
  const MappingReport r = map_instance(inst, opts);
  EXPECT_GE(r.total_time(), r.lower_bound);
  EXPECT_TRUE(r.assignment.complete());
}

TEST(MapperTest, CompleteTopologyAlwaysOptimal) {
  const MappingInstance inst = random_instance(50, 6, make_complete(6), 11);
  const MappingReport r = map_instance(inst);
  EXPECT_TRUE(r.reached_lower_bound);
  EXPECT_EQ(r.percent_over_lower_bound(), 100);
}

TEST(MapperTest, PercentRounding) {
  MappingReport r;
  r.lower_bound = 3;
  r.schedule.total_time = 4;  // 133.33 -> 133
  EXPECT_EQ(r.percent_over_lower_bound(), 133);
  r.schedule.total_time = 5;  // 166.67 -> 167
  EXPECT_EQ(r.percent_over_lower_bound(), 167);
}

struct MapperSweepParam {
  const char* topology;
  NodeId np;
  std::uint64_t seed;

  friend void PrintTo(const MapperSweepParam& p, std::ostream* os) {
    *os << p.topology << "_np" << p.np << "_seed" << p.seed;
  }
};

class MapperSweep : public ::testing::TestWithParam<MapperSweepParam> {};

TEST_P(MapperSweep, PipelineInvariantsAcrossTopologies) {
  const auto param = GetParam();
  const SystemGraph sys = make_topology(param.topology);
  const MappingInstance inst = random_instance(param.np, sys.node_count(), sys, param.seed);
  const MappingReport r = map_instance(inst);
  EXPECT_GE(r.total_time(), r.lower_bound);
  EXPECT_LE(r.total_time(), r.initial_total);
  EXPECT_TRUE(r.assignment.complete());
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MapperSweep,
    ::testing::Values(MapperSweepParam{"hypercube-3", 60, 1},
                      MapperSweepParam{"hypercube-4", 120, 2},
                      MapperSweepParam{"mesh-3x3", 70, 3}, MapperSweepParam{"mesh-4x4", 130, 4},
                      MapperSweepParam{"torus-3x3", 80, 5}, MapperSweepParam{"ring-6", 40, 6},
                      MapperSweepParam{"star-8", 60, 7}, MapperSweepParam{"tree-2x2", 50, 8},
                      MapperSweepParam{"random-10-25-3", 80, 9},
                      MapperSweepParam{"random-16-15-5", 100, 10},
                      MapperSweepParam{"chain-5", 45, 11},
                      MapperSweepParam{"random-24-10-8", 150, 12},
                      MapperSweepParam{"mesh3d-2x2x2", 70, 13},
                      MapperSweepParam{"debruijn-3", 65, 14},
                      MapperSweepParam{"ccc-3", 120, 15},
                      MapperSweepParam{"chordal-10-4", 75, 16},
                      MapperSweepParam{"bipartite-3x4", 55, 17}));

}  // namespace
}  // namespace mimdmap
