#include <gtest/gtest.h>

#include "cluster/abstract_graph.hpp"
#include "cluster/clustering.hpp"
#include "cluster/strategies.hpp"
#include "workload/random_dag.hpp"
#include "workload/structured.hpp"

namespace mimdmap {
namespace {

TaskGraph small_graph() {
  // 0 -> 1 (w2), 0 -> 2 (w3), 1 -> 3 (w4), 2 -> 3 (w5)
  TaskGraph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 2, 3);
  g.add_edge(1, 3, 4);
  g.add_edge(2, 3, 5);
  return g;
}

// ------------------------------------------------------------- Clustering

TEST(ClusteringTest, BasicPartition) {
  Clustering c({0, 1, 0, 1}, 2);
  EXPECT_EQ(c.num_tasks(), 4);
  EXPECT_EQ(c.num_clusters(), 2);
  EXPECT_EQ(c.cluster_of(2), 0);
  EXPECT_TRUE(c.same_cluster(0, 2));
  EXPECT_FALSE(c.same_cluster(0, 1));
  EXPECT_EQ(c.members(0), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(c.members(1), (std::vector<NodeId>{1, 3}));
}

TEST(ClusteringTest, EmptyClustersAllowed) {
  Clustering c({0, 0}, 3);
  EXPECT_EQ(c.non_empty_clusters(), 1);
  EXPECT_TRUE(c.members(2).empty());
}

TEST(ClusteringTest, RejectsOutOfRangeClusterIds) {
  EXPECT_THROW(Clustering({0, 3}, 3), std::invalid_argument);
  EXPECT_THROW(Clustering({0, -1}, 3), std::invalid_argument);
}

TEST(ClusteringTest, ClusteredEdgeMatrixRemovesIntraClusterEdges) {
  const TaskGraph g = small_graph();
  const Clustering c({0, 0, 1, 1}, 2);
  const auto m = clustered_edge_matrix(g, c);
  EXPECT_EQ(m(0, 1), 0);  // intra cluster 0: removed
  EXPECT_EQ(m(0, 2), 3);  // inter
  EXPECT_EQ(m(1, 3), 4);  // inter
  EXPECT_EQ(m(2, 3), 0);  // intra cluster 1: removed
}

TEST(ClusteringTest, ClusteredEdgeMatrixSizeMismatchThrows) {
  const TaskGraph g = small_graph();
  const Clustering c({0, 1}, 2);
  EXPECT_THROW(clustered_edge_matrix(g, c), std::invalid_argument);
}

TEST(ClusteringTest, InterClusterTraffic) {
  const TaskGraph g = small_graph();
  EXPECT_EQ(inter_cluster_traffic(g, Clustering({0, 0, 1, 1}, 2)), 3 + 4);
  EXPECT_EQ(inter_cluster_traffic(g, Clustering({0, 0, 0, 0}, 1)), 0);
  EXPECT_EQ(inter_cluster_traffic(g, Clustering({0, 1, 2, 3}, 4)), 14);
}

// ----------------------------------------------------------- AbstractGraph

TEST(AbstractGraphTest, CollapsesParallelEdges) {
  TaskGraph g(4);
  g.add_edge(0, 2, 2);
  g.add_edge(1, 3, 3);  // same cluster pair as (0,2)
  g.add_edge(0, 3, 5);
  const Clustering c({0, 0, 1, 1}, 2);
  const AbstractGraph a(g, c);
  EXPECT_EQ(a.node_count(), 2);
  EXPECT_EQ(a.edge_count(), 1u);
  EXPECT_TRUE(a.has_edge(0, 1));
  EXPECT_TRUE(a.has_edge(1, 0));
  EXPECT_EQ(a.edge_traffic(0, 1), 10);
  EXPECT_EQ(a.mca(0), 10);
  EXPECT_EQ(a.mca(1), 10);
}

TEST(AbstractGraphTest, IgnoresIntraClusterEdges) {
  TaskGraph g(3);
  g.add_edge(0, 1, 9);  // intra
  g.add_edge(1, 2, 1);
  const Clustering c({0, 0, 1}, 2);
  const AbstractGraph a(g, c);
  EXPECT_EQ(a.edge_count(), 1u);
  EXPECT_EQ(a.mca(0), 1);
  EXPECT_EQ(a.neighbors(0), (std::vector<NodeId>{1}));
}

TEST(AbstractGraphTest, RunningExampleMcaMirrorsPaperShape) {
  // mca is the row-sum of clustered traffic (paper Fig. 20-c semantics).
  const TaskGraph g = small_graph();
  const Clustering c({0, 1, 2, 3}, 4);
  const AbstractGraph a(g, c);
  EXPECT_EQ(a.mca(0), 5);   // edges (0,1)+(0,2)
  EXPECT_EQ(a.mca(3), 9);   // edges (1,3)+(2,3)
  Weight total = 0;
  for (NodeId i = 0; i < 4; ++i) total += a.mca(i);
  EXPECT_EQ(total, 2 * g.total_traffic());  // each edge counted at both ends
}

// ------------------------------------------------------------- strategies

TEST(StrategiesTest, RandomClusteringCoversAllClusters) {
  LayeredDagParams p;
  p.num_tasks = 50;
  const TaskGraph g = make_layered_dag(p, 1);
  const Clustering c = random_clustering(g, 8, 42);
  EXPECT_EQ(c.num_tasks(), 50);
  EXPECT_EQ(c.num_clusters(), 8);
  EXPECT_EQ(c.non_empty_clusters(), 8);  // ensure_non_empty default
}

TEST(StrategiesTest, RandomClusteringDeterministic) {
  LayeredDagParams p;
  const TaskGraph g = make_layered_dag(p, 1);
  const Clustering a = random_clustering(g, 6, 9);
  const Clustering b = random_clustering(g, 6, 9);
  EXPECT_EQ(a.cluster_map(), b.cluster_map());
}

TEST(StrategiesTest, RandomClusteringFewerTasksThanClusters) {
  const TaskGraph g = make_pipeline(3, StructuredWeights{});
  const Clustering c = random_clustering(g, 5, 1);
  EXPECT_EQ(c.num_clusters(), 5);
  EXPECT_LE(c.non_empty_clusters(), 3);
}

TEST(StrategiesTest, RoundRobin) {
  const TaskGraph g = make_pipeline(7, StructuredWeights{});
  const Clustering c = round_robin_clustering(g, 3);
  EXPECT_EQ(c.cluster_of(0), 0);
  EXPECT_EQ(c.cluster_of(1), 1);
  EXPECT_EQ(c.cluster_of(2), 2);
  EXPECT_EQ(c.cluster_of(3), 0);
  EXPECT_EQ(c.non_empty_clusters(), 3);
}

TEST(StrategiesTest, BlockClusteringKeepsTopologicalPrefixes) {
  const TaskGraph g = make_pipeline(9, StructuredWeights{});
  const Clustering c = block_clustering(g, 3);
  // pipeline: topological order is 0..8, blocks of 3
  EXPECT_EQ(c.cluster_of(0), 0);
  EXPECT_EQ(c.cluster_of(2), 0);
  EXPECT_EQ(c.cluster_of(3), 1);
  EXPECT_EQ(c.cluster_of(8), 2);
}

TEST(StrategiesTest, LevelClusteringGroupsWavefronts) {
  const TaskGraph g = make_fork_join(4, 1, StructuredWeights{{1, 1}, {1, 1}, 1});
  const Clustering c = level_clustering(g, 3);
  // source level 0, middles level 1, sink level 2
  EXPECT_EQ(c.cluster_of(0), 0);
  for (NodeId v = 1; v <= 4; ++v) EXPECT_EQ(c.cluster_of(v), 1);
  EXPECT_EQ(c.cluster_of(5), 2);
}

TEST(StrategiesTest, ListSchedulingProducesValidClustering) {
  LayeredDagParams p;
  p.num_tasks = 60;
  const TaskGraph g = make_layered_dag(p, 3);
  const Clustering c = list_scheduling_clustering(g, 6);
  EXPECT_EQ(c.num_tasks(), 60);
  EXPECT_GE(c.non_empty_clusters(), 1);
}

TEST(StrategiesTest, ListSchedulingBalancesIndependentTasks) {
  TaskGraph g(4);  // 4 independent unit tasks on 4 processors
  const Clustering c = list_scheduling_clustering(g, 4);
  EXPECT_EQ(c.non_empty_clusters(), 4);
}

TEST(StrategiesTest, EdgeZeroingReachesExactClusterCount) {
  LayeredDagParams p;
  p.num_tasks = 40;
  const TaskGraph g = make_layered_dag(p, 5);
  const Clustering c = edge_zeroing_clustering(g, 5);
  EXPECT_EQ(c.non_empty_clusters(), 5);
}

TEST(StrategiesTest, EdgeZeroingMergesHeaviestEdgeFirst) {
  TaskGraph g(4);
  g.add_edge(0, 1, 100);  // must be zeroed first
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  const Clustering c = edge_zeroing_clustering(g, 3);
  EXPECT_TRUE(c.same_cluster(0, 1));
}

TEST(StrategiesTest, EdgeZeroingHandlesDisconnectedComponents) {
  TaskGraph g(6);  // no edges at all
  const Clustering c = edge_zeroing_clustering(g, 2);
  EXPECT_EQ(c.non_empty_clusters(), 2);
}

TEST(StrategiesTest, LinearClusteringPeelsHeaviestPath) {
  // Heavy chain 0 -> 1 -> 2 plus a light stray task: the chain must land in
  // one cluster (the first peeled path).
  TaskGraph g(4);
  g.set_node_weight(0, 5);
  g.set_node_weight(1, 5);
  g.set_node_weight(2, 5);
  g.set_node_weight(3, 1);
  g.add_edge(0, 1, 9);
  g.add_edge(1, 2, 9);
  g.add_edge(0, 3, 1);
  const Clustering c = linear_clustering(g, 2);
  EXPECT_TRUE(c.same_cluster(0, 1));
  EXPECT_TRUE(c.same_cluster(1, 2));
  EXPECT_FALSE(c.same_cluster(0, 3));
}

TEST(StrategiesTest, LinearClusteringZeroesTheCriticalPathCommunication) {
  // The lower bound with linear clustering can never exceed the one where
  // every task is its own cluster, because the heaviest chain pays no
  // communication.
  LayeredDagParams p;
  p.num_tasks = 50;
  const TaskGraph g = make_layered_dag(p, 8);
  const Clustering c = linear_clustering(g, 6);
  EXPECT_EQ(c.num_tasks(), 50);
  EXPECT_LE(inter_cluster_traffic(g, c), g.total_traffic());
}

TEST(StrategiesTest, LinearClusteringCoversEveryTask) {
  LayeredDagParams p;
  p.num_tasks = 80;
  const TaskGraph g = make_layered_dag(p, 13);
  const Clustering c = linear_clustering(g, 7);
  for (NodeId t = 0; t < 80; ++t) {
    EXPECT_GE(c.cluster_of(t), 0);
    EXPECT_LT(c.cluster_of(t), 7);
  }
}

TEST(StrategiesTest, DispatchByName) {
  const TaskGraph g = make_pipeline(12, StructuredWeights{});
  for (const std::string& name : clustering_strategies()) {
    const Clustering c = make_clustering(name, g, 4, 11);
    EXPECT_EQ(c.num_tasks(), 12) << name;
    EXPECT_EQ(c.num_clusters(), 4) << name;
  }
  EXPECT_THROW(make_clustering("nope", g, 4, 1), std::invalid_argument);
}

TEST(StrategiesTest, RejectNonPositiveClusterCount) {
  const TaskGraph g = make_pipeline(4, StructuredWeights{});
  EXPECT_THROW(random_clustering(g, 0, 1), std::invalid_argument);
  EXPECT_THROW(round_robin_clustering(g, -2), std::invalid_argument);
}

}  // namespace
}  // namespace mimdmap
