#include "graph/shortest_paths.hpp"

#include <gtest/gtest.h>

#include "topology/topology.hpp"

namespace mimdmap {
namespace {

TEST(ShortestPathsTest, BfsOnChain) {
  const SystemGraph g = make_chain(4);
  const auto d = bfs_hops(g, 0);
  EXPECT_EQ(d, (std::vector<Weight>{0, 1, 2, 3}));
}

TEST(ShortestPathsTest, BfsUnreachable) {
  SystemGraph g(3);
  g.add_link(0, 1);
  const auto d = bfs_hops(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(ShortestPathsTest, AllPairsMatchesPaperFig21) {
  // The paper's Fig. 5-a system graph is the 4-cycle; Fig. 21-b gives its
  // shortest-path matrix: opposite corners at distance 2, neighbours at 1.
  const SystemGraph g = make_ring(4);
  const auto m = all_pairs_hops(g);
  EXPECT_EQ(m(0, 0), 0);
  EXPECT_EQ(m(0, 1), 1);
  EXPECT_EQ(m(0, 2), 2);
  EXPECT_EQ(m(0, 3), 1);
  EXPECT_EQ(m(1, 3), 2);
}

TEST(ShortestPathsTest, AllPairsIsSymmetric) {
  const SystemGraph g = make_random_connected(12, 0.2, 99);
  const auto m = all_pairs_hops(g);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      EXPECT_EQ(m(i, j), m(j, i));
    }
  }
}

TEST(ShortestPathsTest, AllPairsThrowsOnDisconnected) {
  SystemGraph g(3);
  g.add_link(0, 1);
  EXPECT_THROW(all_pairs_hops(g), std::invalid_argument);
}

TEST(ShortestPathsTest, TriangleInequality) {
  const SystemGraph g = make_random_connected(10, 0.3, 7);
  const auto m = all_pairs_hops(g);
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_LE(m(i, j), m(i, k) + m(k, j));
      }
    }
  }
}

TEST(ShortestPathsTest, DijkstraEqualsBfsOnUnitWeights) {
  const SystemGraph g = make_mesh(3, 3);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    EXPECT_EQ(dijkstra(g, s), bfs_hops(g, s));
  }
}

TEST(ShortestPathsTest, DijkstraUsesLinkWeights) {
  SystemGraph g(3);
  g.add_link(0, 1, 10);
  g.add_link(1, 2, 10);
  g.add_link(0, 2, 5);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[1], 10);
  EXPECT_EQ(d[2], 5);
}

TEST(ShortestPathsTest, DijkstraPrefersMultiHopWhenCheaper) {
  SystemGraph g(3);
  g.add_link(0, 1, 2);
  g.add_link(1, 2, 2);
  g.add_link(0, 2, 100);
  EXPECT_EQ(dijkstra(g, 0)[2], 4);
}

TEST(ShortestPathsTest, FloydWarshallMatchesDijkstra) {
  SystemGraph g(5);
  g.add_link(0, 1, 3);
  g.add_link(1, 2, 4);
  g.add_link(2, 3, 1);
  g.add_link(3, 4, 2);
  g.add_link(0, 4, 9);
  g.add_link(1, 3, 2);
  const auto fw = floyd_warshall(g);
  for (NodeId s = 0; s < 5; ++s) {
    const auto d = dijkstra(g, s);
    for (NodeId t = 0; t < 5; ++t) EXPECT_EQ(fw(idx(s), idx(t)), d[idx(t)]);
  }
}

TEST(ShortestPathsTest, FloydWarshallThrowsOnDisconnected) {
  SystemGraph g(2);
  EXPECT_THROW(floyd_warshall(g), std::invalid_argument);
}

TEST(ShortestPathsTest, DiameterOfKnownTopologies) {
  EXPECT_EQ(diameter(make_hypercube(3)), 3);
  EXPECT_EQ(diameter(make_ring(6)), 3);
  EXPECT_EQ(diameter(make_mesh(3, 4)), 5);
  EXPECT_EQ(diameter(make_complete(5)), 1);
  EXPECT_EQ(diameter(make_star(6)), 2);
}

TEST(ShortestPathsTest, MeanDistanceOfCompleteGraph) {
  EXPECT_EQ(mean_distance_milli(make_complete(6)), 1000);
}

TEST(ShortestPathsTest, MeanDistanceSingleton) {
  EXPECT_EQ(mean_distance_milli(make_complete(1)), 0);
}

TEST(ShortestPathsTest, SourceOutOfRangeThrows) {
  const SystemGraph g = make_ring(4);
  EXPECT_THROW(bfs_hops(g, 4), std::out_of_range);
  EXPECT_THROW(dijkstra(g, -1), std::out_of_range);
}

}  // namespace
}  // namespace mimdmap
