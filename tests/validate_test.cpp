#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "cluster/strategies.hpp"
#include "core/ideal_graph.hpp"
#include "core/mapper.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

MappingInstance small_instance() {
  TaskGraph g(4);
  g.set_node_weight(0, 2);
  g.set_node_weight(1, 3);
  g.set_node_weight(2, 1);
  g.set_node_weight(3, 2);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 2, 1);
  g.add_edge(1, 3, 2);
  g.add_edge(2, 3, 3);
  return MappingInstance(g, Clustering({0, 1, 2, 3}, 4), make_ring(4));
}

TEST(ValidateTest, EvaluateOutputIsAlwaysValid) {
  const MappingInstance inst = small_instance();
  const Assignment a = Assignment::identity(4);
  const ScheduleResult s = evaluate(inst, a);
  EXPECT_TRUE(schedule_violations(inst, a, s).empty());
  EXPECT_NO_THROW(validate_schedule(inst, a, s));
}

TEST(ValidateTest, DetectsWrongDuration) {
  const MappingInstance inst = small_instance();
  const Assignment a = Assignment::identity(4);
  ScheduleResult s = evaluate(inst, a);
  s.end[1] += 1;
  const auto violations = schedule_violations(inst, a, s);
  EXPECT_FALSE(violations.empty());
  EXPECT_THROW(validate_schedule(inst, a, s), std::logic_error);
}

TEST(ValidateTest, DetectsPrecedenceViolation) {
  const MappingInstance inst = small_instance();
  const Assignment a = Assignment::identity(4);
  ScheduleResult s = evaluate(inst, a);
  // Start task 3 too early (shift the whole task to keep duration valid).
  s.start[3] = 0;
  s.end[3] = 2;
  bool precedence_flagged = false;
  for (const std::string& v : schedule_violations(inst, a, s)) {
    if (v.find("edge") != std::string::npos) precedence_flagged = true;
  }
  EXPECT_TRUE(precedence_flagged);
}

TEST(ValidateTest, DetectsWrongTotalTime) {
  const MappingInstance inst = small_instance();
  const Assignment a = Assignment::identity(4);
  ScheduleResult s = evaluate(inst, a);
  s.total_time += 5;
  EXPECT_FALSE(schedule_violations(inst, a, s).empty());
}

TEST(ValidateTest, DetectsNegativeStart) {
  const MappingInstance inst = small_instance();
  const Assignment a = Assignment::identity(4);
  ScheduleResult s = evaluate(inst, a);
  s.start[0] = -1;
  s.end[0] = 1;
  EXPECT_FALSE(schedule_violations(inst, a, s).empty());
}

TEST(ValidateTest, DetectsBadLatestTasks) {
  const MappingInstance inst = small_instance();
  const Assignment a = Assignment::identity(4);
  ScheduleResult s = evaluate(inst, a);
  s.latest_tasks = {0};  // task 0 is certainly not latest
  EXPECT_FALSE(schedule_violations(inst, a, s).empty());
}

TEST(ValidateTest, DetectsWrongTableSizes) {
  const MappingInstance inst = small_instance();
  const Assignment a = Assignment::identity(4);
  ScheduleResult s = evaluate(inst, a);
  s.start.pop_back();
  EXPECT_FALSE(schedule_violations(inst, a, s).empty());
}

TEST(ValidateTest, DetectsIncompleteAssignment) {
  const MappingInstance inst = small_instance();
  const ScheduleResult s = evaluate(inst, Assignment::identity(4));
  EXPECT_FALSE(schedule_violations(inst, Assignment::partial(4), s).empty());
}

TEST(ValidateTest, SerializedModeOverlapDetection) {
  // Two unit tasks in one cluster; paper model overlaps them, which the
  // serialized validator must flag.
  TaskGraph g(2);
  const MappingInstance inst(g, Clustering({0, 0}, 1), make_complete(1));
  const Assignment a = Assignment::identity(1);
  const ScheduleResult overlap = evaluate(inst, a);  // both run at [0,1)
  EvalOptions serialized;
  serialized.serialize_within_processor = true;
  EXPECT_TRUE(schedule_violations(inst, a, overlap).empty());
  EXPECT_FALSE(schedule_violations(inst, a, overlap, serialized).empty());
  // The serialized evaluator's own output is clean.
  const ScheduleResult ok = evaluate(inst, a, serialized);
  EXPECT_TRUE(schedule_violations(inst, a, ok, serialized).empty());
}

TEST(ValidateTest, PipelineOutputsValidateAcrossModels) {
  LayeredDagParams p;
  p.num_tasks = 50;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const TaskGraph g = make_layered_dag(p, seed);
    const Clustering c = block_clustering(g, 6);
    const MappingInstance inst(g, c, make_mesh(2, 3));
    for (const bool contention : {false, true}) {
      for (const bool serialize : {false, true}) {
        EvalOptions opts;
        opts.link_contention = contention;
        opts.serialize_within_processor = serialize;
        MapperOptions mopts;
        mopts.refine.eval = opts;
        const MappingReport r = map_instance(inst, mopts);
        EXPECT_TRUE(schedule_violations(inst, r.assignment, r.schedule, opts).empty())
            << "seed=" << seed << " contention=" << contention
            << " serialize=" << serialize;
      }
    }
  }
}

}  // namespace
}  // namespace mimdmap
