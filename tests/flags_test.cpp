#include "cli/flags.hpp"

#include <gtest/gtest.h>

namespace mimdmap {
namespace {

TEST(FlagsTest, NameValuePairs) {
  Flags flags({"--tasks", "80", "--strategy", "block"});
  EXPECT_EQ(flags.get_int("tasks", 0), 80);
  EXPECT_EQ(flags.get_string("strategy", ""), "block");
}

TEST(FlagsTest, EqualsSyntax) {
  Flags flags({"--tasks=42", "--name=hello"});
  EXPECT_EQ(flags.get_int("tasks", 0), 42);
  EXPECT_EQ(flags.get_string("name", ""), "hello");
}

TEST(FlagsTest, BooleanSwitches) {
  Flags flags({"--gantt", "--contention", "--flag=false"});
  EXPECT_TRUE(flags.get_bool("gantt"));
  EXPECT_TRUE(flags.get_bool("contention"));
  EXPECT_FALSE(flags.get_bool("flag"));
  EXPECT_FALSE(flags.get_bool("absent"));
  EXPECT_TRUE(flags.get_bool("absent", true));
}

TEST(FlagsTest, BooleanBeforeAnotherFlag) {
  Flags flags({"--verbose", "--tasks", "5"});
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_int("tasks", 0), 5);
}

TEST(FlagsTest, Positional) {
  Flags flags({"map", "--tasks", "5", "extra"});
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"map", "extra"}));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags flags({});
  EXPECT_EQ(flags.get_int("n", 7), 7);
  EXPECT_EQ(flags.get_string("s", "d"), "d");
  EXPECT_EQ(flags.get_seed("seed", 9), 9u);
  EXPECT_FALSE(flags.has("n"));
}

TEST(FlagsTest, RequireStringThrowsWhenMissing) {
  Flags flags({});
  EXPECT_THROW((void)flags.require_string("problem"), std::invalid_argument);
}

TEST(FlagsTest, BadIntegerThrows) {
  Flags flags({"--tasks", "abc"});
  EXPECT_THROW((void)flags.get_int("tasks", 0), std::invalid_argument);
}

TEST(FlagsTest, BadBooleanThrows) {
  Flags flags({"--flag", "maybe"});
  EXPECT_THROW((void)flags.get_bool("flag"), std::invalid_argument);
}

TEST(FlagsTest, UnusedDetection) {
  Flags flags({"--tasks", "5", "--typo", "x"});
  (void)flags.get_int("tasks", 0);
  EXPECT_EQ(flags.unused(), (std::vector<std::string>{"typo"}));
  (void)flags.get_string("typo", "");
  EXPECT_TRUE(flags.unused().empty());
}

TEST(FlagsTest, ArgvConstructor) {
  const char* argv[] = {"prog", "map", "--tasks", "9"};
  Flags flags(4, argv, 2);
  EXPECT_EQ(flags.get_int("tasks", 0), 9);
  EXPECT_TRUE(flags.positional().empty());
}

TEST(ParseIdListTest, ValidLists) {
  EXPECT_EQ(parse_id_list("0,2,3,1"), (std::vector<NodeId>{0, 2, 3, 1}));
  EXPECT_EQ(parse_id_list("7"), (std::vector<NodeId>{7}));
}

TEST(ParseIdListTest, RejectsJunk) {
  EXPECT_THROW(parse_id_list("1,,2"), std::invalid_argument);
  EXPECT_THROW(parse_id_list("a,b"), std::invalid_argument);
  EXPECT_THROW(parse_id_list(""), std::invalid_argument);
}

}  // namespace
}  // namespace mimdmap
