#include "baseline/greedy.hpp"

#include <gtest/gtest.h>

#include "baseline/exhaustive.hpp"
#include "cluster/strategies.hpp"
#include "core/evaluation.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

MappingInstance random_instance(NodeId np, NodeId ns, const SystemGraph& sys,
                                std::uint64_t seed) {
  LayeredDagParams p;
  p.num_tasks = np;
  TaskGraph g = make_layered_dag(p, seed);
  Clustering c = random_clustering(g, ns, seed + 1);
  return MappingInstance(std::move(g), std::move(c), sys);
}

TEST(GreedyTest, ProducesCompleteBijection) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const MappingInstance inst = random_instance(50, 8, make_hypercube(3), seed);
    const GreedyResult r = greedy_traffic_mapping(inst);
    ASSERT_TRUE(r.assignment.complete());
    std::vector<bool> used(8, false);
    for (NodeId c = 0; c < 8; ++c) {
      EXPECT_FALSE(used[idx(r.assignment.host_of(c))]);
      used[idx(r.assignment.host_of(c))] = true;
    }
  }
}

TEST(GreedyTest, Deterministic) {
  const MappingInstance inst = random_instance(60, 8, make_mesh(2, 4), 7);
  EXPECT_EQ(greedy_traffic_mapping(inst).assignment,
            greedy_traffic_mapping(inst).assignment);
}

TEST(GreedyTest, CostIsConsistentWithReportedAssignment) {
  const MappingInstance inst = random_instance(50, 6, make_ring(6), 9);
  const GreedyResult r = greedy_traffic_mapping(inst);
  EXPECT_EQ(r.weighted_distance_cost, weighted_distance_cost(inst, r.assignment));
}

TEST(GreedyTest, HeaviestPairPlacedAdjacent) {
  // Two clusters exchange almost all the traffic; greedy must put them on
  // adjacent processors of a ring.
  TaskGraph g(4);
  g.add_edge(0, 1, 100);  // clusters 0 -> 1: dominant
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  const MappingInstance inst(g, Clustering({0, 1, 2, 3}, 4), make_ring(4));
  const GreedyResult r = greedy_traffic_mapping(inst);
  EXPECT_EQ(inst.hops()(idx(r.assignment.host_of(0)), idx(r.assignment.host_of(1))), 1);
}

TEST(GreedyTest, NearOptimalCostOnSmallInstances) {
  // Greedy has no guarantee, but its weighted-distance cost should stay
  // within 2x of the exhaustive optimum on small instances.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const MappingInstance inst = random_instance(30, 5, make_chain(5), seed + 40);
    const GreedyResult r = greedy_traffic_mapping(inst);
    Weight best = kUnreachable;
    for_each_assignment(5, [&](const Assignment& a) {
      best = std::min(best, weighted_distance_cost(inst, a));
    });
    EXPECT_LE(r.weighted_distance_cost, 2 * best) << "seed " << seed;
    EXPECT_GE(r.weighted_distance_cost, best);
  }
}

TEST(GreedyTest, CostZeroWhenNoInterClusterTraffic) {
  TaskGraph g(4);
  g.add_edge(0, 1, 5);
  const MappingInstance inst(g, Clustering({0, 0, 1, 2}, 4), make_ring(4));
  const GreedyResult r = greedy_traffic_mapping(inst);
  EXPECT_EQ(r.weighted_distance_cost, 0);
}

}  // namespace
}  // namespace mimdmap
