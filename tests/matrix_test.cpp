#include "graph/matrix.hpp"

#include <gtest/gtest.h>

#include "graph/types.hpp"

namespace mimdmap {
namespace {

TEST(MatrixTest, DefaultConstructedIsEmpty) {
  Matrix<int> m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructionInitialises) {
  Matrix<int> m(2, 3, 7);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.empty());
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 7);
  }
}

TEST(MatrixTest, SquareFactory) {
  auto m = Matrix<Weight>::square(4, -1);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m(3, 3), -1);
}

TEST(MatrixTest, ElementWrite) {
  Matrix<int> m(3, 3);
  m(1, 2) = 42;
  EXPECT_EQ(m(1, 2), 42);
  EXPECT_EQ(m(2, 1), 0);
}

TEST(MatrixTest, AtThrowsOutOfRange) {
  Matrix<int> m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(MatrixTest, ConstAtThrowsOutOfRange) {
  const Matrix<int> m(2, 2);
  EXPECT_THROW(m.at(5, 5), std::out_of_range);
  EXPECT_EQ(m.at(0, 0), 0);
}

TEST(MatrixTest, RowSpanViewsContiguousData) {
  Matrix<int> m(2, 3);
  m(1, 0) = 1;
  m(1, 1) = 2;
  m(1, 2) = 3;
  auto row = m.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 1);
  EXPECT_EQ(row[1], 2);
  EXPECT_EQ(row[2], 3);
  row[0] = 9;
  EXPECT_EQ(m(1, 0), 9);
}

TEST(MatrixTest, RowThrowsOutOfRange) {
  Matrix<int> m(2, 3);
  EXPECT_THROW(m.row(2), std::out_of_range);
}

TEST(MatrixTest, Fill) {
  Matrix<int> m(2, 2, 1);
  m.fill(5);
  EXPECT_EQ(m(0, 0), 5);
  EXPECT_EQ(m(1, 1), 5);
}

TEST(MatrixTest, Equality) {
  Matrix<int> a(2, 2, 1);
  Matrix<int> b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(0, 1) = 2;
  EXPECT_FALSE(a == b);
  Matrix<int> c(2, 3, 1);
  EXPECT_FALSE(a == c);
}

TEST(TypesTest, IdxRoundTrip) {
  EXPECT_EQ(idx(5), 5u);
  EXPECT_EQ(node_id(7u), 7);
  EXPECT_EQ(node_id(idx(123)), 123);
}

}  // namespace
}  // namespace mimdmap
