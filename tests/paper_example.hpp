// Reconstruction of the paper's worked examples.
//
// The technical report's figures are images (only the matrices survive in
// the text), so the graphs are *reconstructions*: instances built to agree
// with every number the text does print. See DESIGN.md section 6.
//
// RunningExample — the section 2-4 example: 11 tasks in 4 clusters mapped
// onto the 4-node cycle of Fig. 5-a. The reconstruction reproduces, exactly:
//   * the printed start/end vectors of Fig. 22-b
//       i_start = (0 2 3 1 6 7 7 7 12 10 13)
//       i_end   = (1 3 5 4 9 8 10 9 14 13 14)
//   * lower bound 14 with latest tasks 9 and 11 (section 2.1, term 1),
//   * a chain of critical problem edges ending in e79 (the text's example
//     of a critical edge), with e59 non-critical with slack 2 ("only when
//     the increase is by more than 2..."),
//   * exactly one critical abstract edge group touching cluster 0
//     (Fig. 20-b has positive entries only in rows/cols 0),
//   * an initial assignment whose total time equals the lower bound, so no
//     refinement is needed (Fig. 24).
//
// Tasks are 0-based here; the paper numbers them 1-11.
#pragma once

#include "cluster/clustering.hpp"
#include "core/instance.hpp"
#include "graph/system_graph.hpp"
#include "graph/task_graph.hpp"
#include "topology/topology.hpp"

namespace mimdmap::testing {

struct RunningExample {
  TaskGraph problem;
  Clustering clustering;
  SystemGraph system;

  [[nodiscard]] MappingInstance instance() const {
    return MappingInstance(problem, clustering, system);
  }
};

inline RunningExample make_running_example() {
  TaskGraph g(11);
  // Paper task ids 1..11 -> 0..10. Weights from i_end - i_start.
  const Weight weights[11] = {1, 1, 2, 3, 3, 1, 3, 2, 2, 3, 1};
  for (NodeId v = 0; v < 11; ++v) g.set_node_weight(v, weights[idx(v)]);

  // (paper ids)          from to  w
  g.add_edge(0, 1, 1);   // 1 -> 2   1
  g.add_edge(0, 2, 2);   // 1 -> 3   2   (text: "the weight on the edge (1,3) is 2")
  g.add_edge(0, 3, 2);   // 1 -> 4   2   intra-cluster, removed by clustering
  g.add_edge(2, 4, 1);   // 3 -> 5   1
  g.add_edge(3, 5, 3);   // 4 -> 6   3
  g.add_edge(2, 6, 2);   // 3 -> 7   2   critical
  g.add_edge(3, 7, 3);   // 4 -> 8   3
  g.add_edge(6, 8, 2);   // 7 -> 9   2   critical (text's example e79)
  g.add_edge(4, 8, 1);   // 5 -> 9   1   slack 2 (text's example e59)
  g.add_edge(5, 8, 1);   // 6 -> 9   1
  g.add_edge(6, 9, 2);   // 7 -> 10  2   intra-cluster
  g.add_edge(9, 10, 1);  // 10 -> 11 1   intra-cluster
  g.add_edge(5, 10, 1);  // 6 -> 11  1   (text: clustered weight 1)

  // Clusters: c0 = {1,4,7,10,11}, c1 = {2,6}, c2 = {3,9}, c3 = {5,8}
  // (paper ids; tasks 1 and 4 share cluster 0 per the text).
  std::vector<NodeId> cluster_of = {0, 1, 2, 0, 3, 1, 0, 3, 2, 0, 0};
  Clustering clustering(std::move(cluster_of), 4);

  return RunningExample{std::move(g), std::move(clustering), make_ring(4)};
}

/// Lee counter-example DAG (paper Fig. 13): 8 tasks with the printed edge
/// weights (1,3)=3, (2,3)=3, (2,7)=2, (3,4)=4, (3,5)=2, (4,6)=1, (5,8)=3.
/// Node weights are not printed; the given values make the qualitative
/// claim of Figs. 14-17 certifiable by exhaustive search (see
/// counterexample tests/bench). np == ns == 8, so the clustering is the
/// identity (the paper's section 2.2 setting).
inline TaskGraph make_lee_problem() {
  TaskGraph g(8);
  // Node weights chosen (by exhaustive search over all 8! assignments) so
  // that the comm-cost-optimal assignments lose >= 2 time units against the
  // time-optimal one — the paper's 23-vs-21 shaped gap.
  const Weight weights[8] = {6, 1, 4, 2, 2, 2, 3, 3};
  for (NodeId v = 0; v < 8; ++v) g.set_node_weight(v, weights[idx(v)]);
  g.add_edge(0, 2, 3);  // (1,3) = 3
  g.add_edge(1, 2, 3);  // (2,3) = 3
  g.add_edge(1, 6, 2);  // (2,7) = 2
  g.add_edge(2, 3, 4);  // (3,4) = 4
  g.add_edge(2, 4, 2);  // (3,5) = 2
  g.add_edge(3, 5, 1);  // (4,6) = 1
  g.add_edge(4, 7, 3);  // (5,8) = 3
  return g;
}

/// Bokhari counter-example problem graph (paper Fig. 7): 8 nodes, 9 edges,
/// node 3 (paper numbering) of degree 4 — one more than the degree-3 system
/// graph, so at least one problem edge must span two system edges. Edge
/// directions/weights are reconstructions; the counterexample tests verify
/// the qualitative property exhaustively.
inline TaskGraph make_bokhari_problem() {
  TaskGraph g(8);
  // Weights chosen (exhaustive search) so that the maximum cardinality is 8
  // of 9 edges (the paper's A1) and every cardinality-8 assignment loses
  // >= 2 time units against the time-optimal assignment.
  const Weight weights[8] = {3, 1, 5, 1, 1, 1, 1, 3};
  for (NodeId v = 0; v < 8; ++v) g.set_node_weight(v, weights[idx(v)]);
  g.add_edge(0, 1, 1);  // (1,2)
  g.add_edge(0, 2, 5);  // (1,3)
  g.add_edge(1, 3, 3);  // (2,4)
  g.add_edge(2, 3, 1);  // (3,4)  node 3 carries degree 4
  g.add_edge(2, 4, 3);  // (3,5)
  g.add_edge(2, 5, 4);  // (3,6)
  g.add_edge(4, 6, 1);  // (5,7)
  g.add_edge(5, 7, 4);  // (6,8)
  g.add_edge(6, 7, 2);  // (7,8)
  return g;
}

/// Identity clustering for np == ns instances (each task is its own
/// cluster), the setting of both counter-examples.
inline Clustering identity_clustering(NodeId n) {
  std::vector<NodeId> cluster_of(idx(n));
  for (NodeId i = 0; i < n; ++i) cluster_of[idx(i)] = i;
  return Clustering(std::move(cluster_of), n);
}

}  // namespace mimdmap::testing
