// Cooperative cancellation contracts (core/cancellation.hpp, ISSUE 6):
//
//  * the token primitive itself — empty tokens are free and never trip,
//    first cause wins, parent chaining, the counting vs non-counting poll
//    split, deadlines;
//  * cancellation determinism — cancelling a refinement loop after exactly
//    k counting polls leaves the bit-exact state of the same loop run with
//    a budget of k moves/waves (the accept stream is a pure function of
//    the RNG stream, so stopping early must equal never having scheduled
//    the tail), across delta modes v1/v2 and SoA widths;
//  * graceful degradation through the pipeline — cancelled/expired jobs
//    return the best incumbent with the right status, valid assignments
//    included, from refine() up through map_instance and MapService;
//  * service-level cancel/deadline plumbing: queued-job draining,
//    cancel_all, per-job and default deadlines.
#include "core/cancellation.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "baseline/annealing.hpp"
#include "baseline/pairwise.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "core/refinement.hpp"
#include "service/map_service.hpp"
#include "topology/factory.hpp"
#include "workload/structured.hpp"

namespace mimdmap {
namespace {

MappingInstance make_instance(std::uint64_t seed = 7) {
  const StructuredWeights sw{{1, 9}, {1, 9}, seed};
  TaskGraph problem = make_diamond(6, 6, sw);
  SystemGraph system = make_topology("mesh-2x4");
  Clustering clustering = make_clustering("random", problem, system.node_count(), seed);
  return MappingInstance(std::move(problem), std::move(clustering), std::move(system));
}

TEST(CancelTokenTest, EmptyTokenNeverTrips) {
  const CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(token.signalled());
  EXPECT_EQ(token.status(), MapStatus::kOk);
}

TEST(CancelTokenTest, RequestCancelTripsStickily) {
  const CancelSource source;
  const CancelToken token = source.token();
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.signalled());
  EXPECT_EQ(token.status(), MapStatus::kOk);
  source.request_cancel();
  EXPECT_TRUE(token.signalled());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.status(), MapStatus::kCancelled);
  source.request_cancel();  // idempotent
  EXPECT_EQ(token.status(), MapStatus::kCancelled);
}

TEST(CancelTokenTest, ExpiredDeadlineTripsWithDeadlineStatus) {
  const CancelSource source;
  source.set_deadline_after_ms(0);  // already expired
  const CancelToken token = source.token();
  EXPECT_TRUE(token.signalled());
  EXPECT_EQ(token.status(), MapStatus::kDeadlineExceeded);
}

TEST(CancelTokenTest, FirstCauseWins) {
  // Cancel lands before the (expired) deadline is ever polled: the status
  // must stay kCancelled.
  const CancelSource source;
  source.request_cancel();
  source.set_deadline_after_ms(0);
  EXPECT_EQ(source.token().status(), MapStatus::kCancelled);
}

TEST(CancelTokenTest, CancelAfterPollsCountsOnlyCountingPolls) {
  const CancelSource source;
  source.cancel_after_polls(3);
  const CancelToken token = source.token();
  // signalled() is the non-counting check: it must never consume budget.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(token.signalled());
  EXPECT_FALSE(token.stop_requested());  // poll 1
  EXPECT_FALSE(token.stop_requested());  // poll 2
  EXPECT_FALSE(token.stop_requested());  // poll 3
  EXPECT_TRUE(token.stop_requested());   // poll 4 trips
  EXPECT_TRUE(token.signalled());
  EXPECT_TRUE(token.stop_requested());  // sticky
  EXPECT_EQ(token.status(), MapStatus::kCancelled);
}

TEST(CancelTokenTest, ChildTokenSeesParentTrip) {
  const CancelSource parent;
  const CancelSource child(parent.token());
  const CancelToken token = child.token();
  EXPECT_FALSE(token.signalled());
  parent.request_cancel();
  EXPECT_TRUE(token.signalled());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.status(), MapStatus::kCancelled);
  // The parent's own token is unaffected by child-side state.
  EXPECT_TRUE(parent.token().signalled());
}

TEST(CancelTokenTest, ChildTripDoesNotPropagateUp) {
  const CancelSource parent;
  const CancelSource child(parent.token());
  child.request_cancel();
  EXPECT_TRUE(child.token().signalled());
  EXPECT_FALSE(parent.token().signalled());
}

/// Everything that must be bit-identical between "cancelled after k polls"
/// and "budget of k trials".
void expect_same_refine(const RefineResult& cancelled, const RefineResult& budget,
                        const std::string& what) {
  EXPECT_EQ(cancelled.assignment, budget.assignment) << what;
  EXPECT_EQ(cancelled.schedule.total_time, budget.schedule.total_time) << what;
  EXPECT_EQ(cancelled.trials_used, budget.trials_used) << what;
  EXPECT_EQ(cancelled.improvements, budget.improvements) << what;
}

TEST(CancellationDeterminismTest, PairwiseExchangeCancelAtMoveKEqualsBudgetK) {
  const MappingInstance instance = make_instance();
  const EvalEngine engine(instance);
  const IdealSchedule ideal = compute_ideal_schedule(instance);
  const CriticalInfo critical = find_critical(instance, ideal);
  const InitialAssignmentResult initial = initial_assignment(instance, critical);

  for (const char* mode : {"1", "2"}) {
    setenv("MIMDMAP_DELTA_MODE", mode, 1);
    for (const std::int64_t k : {0, 1, 7, 23}) {
      RefineOptions budget_options;
      budget_options.max_trials = k;
      const RefineResult budget =
          pairwise_exchange_refine(engine, ideal, initial, budget_options);
      EXPECT_EQ(budget.status, MapStatus::kOk);
      EXPECT_EQ(budget.trials_used, k);

      RefineOptions cancel_options;
      cancel_options.max_trials = 500;  // would run much further
      const CancelSource source;
      source.cancel_after_polls(k);
      cancel_options.cancel = source.token();
      const RefineResult cancelled =
          pairwise_exchange_refine(engine, ideal, initial, cancel_options);
      EXPECT_EQ(cancelled.status, MapStatus::kCancelled);
      expect_same_refine(cancelled, budget,
                         "exchange k=" + std::to_string(k) + " v" + mode);
    }
  }
  unsetenv("MIMDMAP_DELTA_MODE");
}

TEST(CancellationDeterminismTest, PairwiseSweepCancelAtMoveKEqualsBudgetK) {
  const MappingInstance instance = make_instance(11);
  const EvalEngine engine(instance);
  const IdealSchedule ideal = compute_ideal_schedule(instance);
  const CriticalInfo critical = find_critical(instance, ideal);
  const InitialAssignmentResult initial = initial_assignment(instance, critical);

  for (const char* mode : {"1", "2"}) {
    setenv("MIMDMAP_DELTA_MODE", mode, 1);
    // The sweep may converge (full pass without improvement) before a
    // fixed k of evaluations — pinning can leave few movable pairs — and a
    // converged run ends kOk before the cancel poll ever fires. So probe
    // the natural length first and cancel strictly inside it.
    RefineOptions probe;
    probe.max_trials = 500;
    const RefineResult natural = pairwise_sweep_refine(engine, ideal, initial, probe);
    ASSERT_GT(natural.trials_used, 2) << "instance too easy to exercise cancellation";
    for (const std::int64_t k :
         {std::int64_t{0}, std::int64_t{1}, natural.trials_used / 2, natural.trials_used - 1}) {
      RefineOptions budget_options;
      budget_options.max_trials = k;
      const RefineResult budget = pairwise_sweep_refine(engine, ideal, initial, budget_options);
      EXPECT_EQ(budget.status, MapStatus::kOk);

      RefineOptions cancel_options;
      cancel_options.max_trials = 500;
      const CancelSource source;
      source.cancel_after_polls(k);
      cancel_options.cancel = source.token();
      const RefineResult cancelled =
          pairwise_sweep_refine(engine, ideal, initial, cancel_options);
      EXPECT_EQ(cancelled.status, MapStatus::kCancelled);
      expect_same_refine(cancelled, budget, "sweep k=" + std::to_string(k) + " v" + mode);
    }
  }
  unsetenv("MIMDMAP_DELTA_MODE");
}

TEST(CancellationDeterminismTest, RefineCancelAtWaveKEqualsBudgetOfKWaves) {
  const MappingInstance instance = make_instance(3);
  const EvalEngine engine(instance);
  const IdealSchedule ideal = compute_ideal_schedule(instance);
  const CriticalInfo critical = find_critical(instance, ideal);
  const InitialAssignmentResult initial = initial_assignment(instance, critical);

  // Sequential refine polls once per chunk, and a sequential chunk is one
  // wave of `width` candidates — so cancelling after k polls must equal a
  // budget of k * width trials, for the scalar width, an explicit wide
  // width and the auto-resolved width.
  EvalOptions eval;
  for (const int width : {1, 8, 0 /* auto */}) {
    const int resolved = std::max(1, engine.resolve_batch_width(width, eval));
    for (const std::int64_t k : {1, 3}) {
      RefineOptions budget_options;
      budget_options.num_threads = 1;
      budget_options.eval_width = width;
      budget_options.max_trials = k * resolved;
      const RefineResult budget = refine(engine, ideal, initial, budget_options);
      EXPECT_EQ(budget.status, MapStatus::kOk);

      RefineOptions cancel_options = budget_options;
      cancel_options.max_trials = k * resolved + 400;
      const CancelSource source;
      source.cancel_after_polls(k);
      cancel_options.cancel = source.token();
      const RefineResult cancelled = refine(engine, ideal, initial, cancel_options);
      EXPECT_EQ(cancelled.status, MapStatus::kCancelled);
      expect_same_refine(cancelled, budget,
                         "refine width=" + std::to_string(width) + " (resolved " +
                             std::to_string(resolved) + ") k=" + std::to_string(k));
    }
  }
}

TEST(CancellationDeterminismTest, UncancelledTokenLeavesRefineBitIdentical) {
  // A token that never trips must not perturb anything — same RNG stream,
  // same accept stream, same result as no token at all.
  const MappingInstance instance = make_instance(5);
  const EvalEngine engine(instance);
  const IdealSchedule ideal = compute_ideal_schedule(instance);
  const CriticalInfo critical = find_critical(instance, ideal);
  const InitialAssignmentResult initial = initial_assignment(instance, critical);

  RefineOptions plain;
  plain.max_trials = 60;
  const RefineResult without = refine(engine, ideal, initial, plain);

  RefineOptions with = plain;
  const CancelSource source;  // never tripped
  with.cancel = source.token();
  const RefineResult armed = refine(engine, ideal, initial, with);
  EXPECT_EQ(armed.status, MapStatus::kOk);
  expect_same_refine(armed, without, "armed-but-untripped token");

  const RefineResult pairwise_without = pairwise_exchange_refine(engine, ideal, initial, plain);
  const RefineResult pairwise_with = pairwise_exchange_refine(engine, ideal, initial, with);
  expect_same_refine(pairwise_with, pairwise_without, "pairwise armed-but-untripped");
}

TEST(CancellationDeterminismTest, AnnealCancelAtMoveKEqualsTruncatedAnneal) {
  const MappingInstance instance = make_instance(13);
  const EvalEngine engine(instance);
  const Assignment start = Assignment::identity(instance.num_processors());

  // First k moves of a long anneal all happen inside step 0 (same
  // temperature, same RNG stream), so they must equal a one-step anneal
  // whose moves_per_step is exactly k.
  const std::int64_t k = 17;
  AnnealingOptions truncated;
  truncated.steps = 1;
  truncated.moves_per_step = k;
  const AnnealingResult budget = anneal_mapping(engine, start, truncated);
  EXPECT_EQ(budget.status, MapStatus::kOk);
  EXPECT_EQ(budget.moves_tried, k);

  AnnealingOptions long_run;
  long_run.steps = 10;
  long_run.moves_per_step = 40;
  const CancelSource source;
  source.cancel_after_polls(k);
  long_run.cancel = source.token();
  const AnnealingResult cancelled = anneal_mapping(engine, start, long_run);
  EXPECT_EQ(cancelled.status, MapStatus::kCancelled);
  EXPECT_EQ(cancelled.moves_tried, k);
  EXPECT_EQ(cancelled.assignment, budget.assignment);
  EXPECT_EQ(cancelled.total_time, budget.total_time);
  EXPECT_EQ(cancelled.moves_accepted, budget.moves_accepted);
}

TEST(CancellationPipelineTest, PreTrippedTokenYieldsDegradedInitialAssignmentReport) {
  const MappingInstance instance = make_instance(17);
  MapperOptions options;
  const CancelSource source;
  source.request_cancel();
  options.refine.cancel = source.token();

  const MappingReport report = map_instance(instance, options);
  EXPECT_EQ(report.status, MapStatus::kCancelled);
  // Degraded but valid: the initial assignment ships as the final one.
  EXPECT_TRUE(report.assignment.complete());
  EXPECT_EQ(report.assignment, report.initial_assignment);
  EXPECT_EQ(report.total_time(), report.initial_total);
  EXPECT_EQ(report.refinement_trials, 0);
}

TEST(CancellationPipelineTest, MidRefineCancelShipsBestIncumbent) {
  const MappingInstance instance = make_instance(19);
  MapperOptions options;
  options.refine.max_trials = 400;
  const MappingReport full = map_instance(instance, options);

  MapperOptions cancelled_options = options;
  const CancelSource source;
  source.cancel_after_polls(5);
  cancelled_options.refine.cancel = source.token();
  const MappingReport degraded = map_instance(instance, cancelled_options);
  EXPECT_EQ(degraded.status, MapStatus::kCancelled);
  EXPECT_TRUE(degraded.assignment.complete());
  // The incumbent never regresses below the initial assignment, and a
  // truncated search can never beat the full one (keep-iff-better).
  EXPECT_LE(degraded.total_time(), degraded.initial_total);
  EXPECT_GE(degraded.total_time(), full.total_time());
}

TEST(CancellationServiceTest, QueueInclusiveDeadlineExpiresWhileQueued) {
  const MappingInstance instance = make_instance(23);
  MapServiceOptions options;
  options.max_concurrent_jobs = 1;
  options.lanes = 1;
  MapService service(options);

  // Occupy the single runner so the deadline job sits in the queue past
  // its budget: the deadline is armed at admission, so queue wait counts
  // and the runner's pre-start check must deliver kDeadlineExceeded.
  // Wait until the blocker is actually executing before submitting the
  // doomed job — its tight wall budget classifies it interactive, so if
  // both sat queued the priority scheduler would (correctly) start it
  // first and it would finish inside its budget.
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::promise<void> slow_started;
  MapJob slow;
  slow.build = [&instance, &slow_started, gate_future] {
    slow_started.set_value();
    gate_future.wait();
    return instance;
  };
  slow.name = "slow";
  std::future<MapJobResult> slow_future = service.submit(std::move(slow));
  slow_started.get_future().wait();

  MapJob doomed;
  doomed.instance = &instance;
  doomed.name = "doomed";
  doomed.deadline_ms = 1;
  std::future<MapJobResult> doomed_future = service.submit(std::move(doomed));

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.set_value();
  const MapJobResult doomed_result = doomed_future.get();
  EXPECT_EQ(doomed_result.status, MapStatus::kDeadlineExceeded);
  EXPECT_EQ(doomed_result.name, "doomed");
  EXPECT_EQ(slow_future.get().status, MapStatus::kOk);
}

TEST(CancellationServiceTest, ExplicitNoDeadlineOverridesServiceDefault) {
  const MappingInstance instance = make_instance(23);
  MapJob job;
  job.instance = &instance;
  job.name = "deadline-job";
  job.options.refine.max_trials = 60;
  const MapJobResult reference = run_map_job(job);
  EXPECT_EQ(reference.status, MapStatus::kOk);

  // A generous service default must not perturb results...
  MapServiceOptions opts;
  opts.default_deadline_ms = 60000;
  MapService service(opts);
  const MapJobResult with_default = service.submit(job).get();
  EXPECT_EQ(with_default.status, MapStatus::kOk);
  EXPECT_EQ(with_default.report.total_time(), reference.report.total_time());

  // ...and deadline_ms = -1 explicitly opts a job out of it.
  MapJob opted_out = job;
  opted_out.deadline_ms = -1;
  const MapJobResult no_deadline = service.submit(std::move(opted_out)).get();
  EXPECT_EQ(no_deadline.status, MapStatus::kOk);
  EXPECT_EQ(no_deadline.report.total_time(), reference.report.total_time());

  // A submitter-side cancel before the runner starts: degraded, valid.
  const CancelSource source;
  source.request_cancel();
  MapJob cancelled = job;
  cancelled.cancel = source.token();
  const MapJobResult result = service.submit(std::move(cancelled)).get();
  EXPECT_EQ(result.status, MapStatus::kCancelled);
  EXPECT_EQ(result.name, "deadline-job");
}

TEST(CancellationServiceTest, CancelDrainsQueuedJobAndSignalsRunning) {
  const MappingInstance instance = make_instance(29);
  // One runner: the first job occupies it, the second stays queued.
  MapServiceOptions options;
  options.max_concurrent_jobs = 1;
  options.lanes = 1;
  MapService service(options);

  // A slow job: deferred build that waits until we let it proceed.
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  MapJob slow;
  slow.build = [&instance, gate_future] {
    gate_future.wait();
    return instance;
  };
  slow.name = "slow";
  MapService::JobId slow_id = 0;
  std::future<MapJobResult> slow_future = service.submit(std::move(slow), &slow_id);

  MapJob queued;
  queued.instance = &instance;
  queued.name = "queued";
  MapService::JobId queued_id = 0;
  std::future<MapJobResult> queued_future = service.submit(std::move(queued), &queued_id);

  // Drain the queued job while it has never started: its future must
  // resolve promptly with kCancelled even though the runner is busy.
  EXPECT_TRUE(service.cancel(queued_id));
  const MapJobResult drained = queued_future.get();
  EXPECT_EQ(drained.status, MapStatus::kCancelled);
  EXPECT_EQ(drained.name, "queued");

  gate.set_value();
  const MapJobResult slow_result = slow_future.get();
  EXPECT_EQ(slow_result.status, MapStatus::kOk);

  // Unknown / already-delivered ids report false.
  EXPECT_FALSE(service.cancel(queued_id));
  EXPECT_FALSE(service.cancel(987654));
}

TEST(CancellationServiceTest, CancelAllDrainsQueueAndReportsStatuses) {
  const MappingInstance instance = make_instance(31);
  MapServiceOptions options;
  options.max_concurrent_jobs = 1;
  options.lanes = 1;
  MapService service(options);

  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::promise<void> started;
  MapJob slow;
  slow.build = [&instance, gate_future, &started] {
    started.set_value();
    gate_future.wait();
    return instance;
  };
  slow.name = "slow";
  std::future<MapJobResult> slow_future = service.submit(std::move(slow));
  // Wait until the runner has actually picked the slow job up — otherwise
  // cancel_all() may still find it queued and drain 5 jobs, not 4.
  started.get_future().wait();

  std::vector<std::future<MapJobResult>> queued;
  for (int i = 0; i < 4; ++i) {
    MapJob job;
    job.instance = &instance;
    job.name = "queued-" + std::to_string(i);
    queued.push_back(service.submit(std::move(job)));
  }

  EXPECT_EQ(service.cancel_all(), 4u);
  for (std::future<MapJobResult>& f : queued) {
    const MapJobResult r = f.get();
    EXPECT_EQ(r.status, MapStatus::kCancelled);
  }
  gate.set_value();
  // The running job was signalled; with the gate released it finishes as
  // cancelled-degraded (the signal lands before the mapper starts) —
  // either way it must deliver exactly one terminal status.
  const MapJobResult slow_result = slow_future.get();
  EXPECT_EQ(slow_result.status, MapStatus::kCancelled);
}

TEST(CancellationServiceTest, StatusTaxonomyStrings) {
  EXPECT_STREQ(to_string(MapStatus::kOk), "ok");
  EXPECT_STREQ(to_string(MapStatus::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(MapStatus::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(to_string(MapStatus::kInvalidInput), "invalid_input");
  EXPECT_STREQ(to_string(MapStatus::kInternalError), "internal_error");
}

}  // namespace
}  // namespace mimdmap
