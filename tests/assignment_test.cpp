#include "core/assignment.hpp"

#include <gtest/gtest.h>

namespace mimdmap {
namespace {

TEST(AssignmentTest, Identity) {
  const Assignment a = Assignment::identity(4);
  EXPECT_EQ(a.size(), 4);
  EXPECT_TRUE(a.complete());
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(a.cluster_on(i), i);
    EXPECT_EQ(a.host_of(i), i);
  }
}

TEST(AssignmentTest, FromClusterOnMatchesPaperExample) {
  // Paper Fig. 23-b: assi = [0 1 3 2] — abstract node 3 on system node 2.
  const Assignment a = Assignment::from_cluster_on({0, 1, 3, 2});
  EXPECT_EQ(a.cluster_on(2), 3);
  EXPECT_EQ(a.host_of(3), 2);
  EXPECT_EQ(a.host_of(2), 3);
  EXPECT_TRUE(a.complete());
}

TEST(AssignmentTest, FromHostOfIsInverse) {
  const Assignment a = Assignment::from_cluster_on({2, 0, 1});
  const Assignment b = Assignment::from_host_of(a.host_of_vector());
  EXPECT_EQ(a, b);
}

TEST(AssignmentTest, RejectsNonPermutations) {
  EXPECT_THROW(Assignment::from_cluster_on({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Assignment::from_cluster_on({0, 3, 1}), std::invalid_argument);
  EXPECT_THROW(Assignment::from_host_of({1, 1}), std::invalid_argument);
  EXPECT_THROW(Assignment::from_host_of({-1, 0}), std::invalid_argument);
}

TEST(AssignmentTest, PartialGrowsByPlace) {
  Assignment a = Assignment::partial(3);
  EXPECT_FALSE(a.complete());
  EXPECT_EQ(a.cluster_on(0), Assignment::kUnassigned);
  a.place(2, 0);
  EXPECT_EQ(a.cluster_on(0), 2);
  EXPECT_EQ(a.host_of(2), 0);
  EXPECT_FALSE(a.complete());
  a.place(0, 1);
  a.place(1, 2);
  EXPECT_TRUE(a.complete());
}

TEST(AssignmentTest, PlaceRejectsDoubleBooking) {
  Assignment a = Assignment::partial(3);
  a.place(0, 0);
  EXPECT_THROW(a.place(0, 1), std::invalid_argument);  // cluster reused
  EXPECT_THROW(a.place(1, 0), std::invalid_argument);  // processor reused
  EXPECT_THROW(a.place(5, 1), std::out_of_range);
}

TEST(AssignmentTest, SwapProcessors) {
  Assignment a = Assignment::identity(4);
  a.swap_processors(1, 3);
  EXPECT_EQ(a.cluster_on(1), 3);
  EXPECT_EQ(a.cluster_on(3), 1);
  EXPECT_EQ(a.host_of(3), 1);
  EXPECT_EQ(a.host_of(1), 3);
  // Swap back restores identity.
  a.swap_processors(1, 3);
  EXPECT_EQ(a, Assignment::identity(4));
}

TEST(AssignmentTest, SwapRejectsEmptyProcessor) {
  Assignment a = Assignment::partial(3);
  a.place(0, 0);
  EXPECT_THROW(a.swap_processors(0, 1), std::invalid_argument);
}

TEST(AssignmentTest, NegativeSizeThrows) {
  EXPECT_THROW(Assignment::partial(-1), std::invalid_argument);
}

}  // namespace
}  // namespace mimdmap
